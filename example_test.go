package ssbyzclock_test

import (
	"fmt"
	"log"

	ssbyzclock "ssbyzclock"
)

// Example shows the smallest end-to-end use of the library: start an
// in-process cluster with one Byzantine node and scrambled initial
// memory, run until the honest clocks are synchronized and incrementing
// in lockstep, and read the common clock.
func Example() {
	cluster, err := ssbyzclock.NewCluster(
		ssbyzclock.Config{N: 4, F: 1, K: 16, Coin: ssbyzclock.CoinRabin, Seed: 7},
		ssbyzclock.ClusterOptions{Adversary: ssbyzclock.AdvSilent, ScrambleStart: true},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	_, synced, err := cluster.RunUntilSynced(500, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synchronized:", synced)
	// Output: synchronized: true
}

// ExampleNode shows the transport-agnostic API: the caller owns the
// network and drives each node with BeginBeat / EndBeat. Here the
// "network" is a slice of inboxes; a real deployment would move the
// bytes over its own links, preserving the beat discipline.
func ExampleNode() {
	cfg := ssbyzclock.Config{N: 4, F: 0, K: 8, Coin: ssbyzclock.CoinRabin, Seed: 3}
	nodes := make([]*ssbyzclock.Node, cfg.N)
	for i := range nodes {
		n, err := ssbyzclock.NewNode(cfg, i)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = n
	}
	for beat := uint64(0); beat < 30; beat++ {
		inboxes := make([][]ssbyzclock.InMessage, cfg.N)
		for id, n := range nodes {
			outs, err := n.BeginBeat(beat)
			if err != nil {
				log.Fatal(err)
			}
			for _, o := range outs {
				if o.To == ssbyzclock.BroadcastTo {
					for to := range inboxes {
						inboxes[to] = append(inboxes[to], ssbyzclock.InMessage{From: id, Data: o.Data})
					}
				} else {
					inboxes[o.To] = append(inboxes[o.To], ssbyzclock.InMessage{From: id, Data: o.Data})
				}
			}
		}
		for id, n := range nodes {
			n.EndBeat(beat, inboxes[id])
		}
	}
	a, _ := nodes[0].Clock()
	b, _ := nodes[3].Clock()
	fmt.Println("clocks equal:", a == b)
	// Output: clocks equal: true
}
