// Command faultinjection demonstrates self-stabilization, the property
// that distinguishes this protocol from classic Byzantine clock sync: a
// transient fault overwrites every honest node's memory mid-run (clock
// values, coin pipelines, phase tallies — everything), and the cluster
// re-synchronizes in expected constant beats, with two active Byzantine
// equivocators attacking throughout.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"
	"strings"

	ssbyzclock "ssbyzclock"
)

func main() {
	const (
		n        = 7
		f        = 2
		k        = 32
		beats    = 240
		faultAt1 = 120
		faultAt2 = 180
	)
	cluster, err := ssbyzclock.NewCluster(
		ssbyzclock.Config{N: n, F: f, K: k, Coin: ssbyzclock.CoinFM, Seed: 77},
		ssbyzclock.ClusterOptions{
			Adversary:     ssbyzclock.AdvSplitter, // active equivocation
			ScrambleStart: true,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Ribbon: one character per beat. '#' = honest clocks synchronized,
	// '.' = not (yet) synchronized, '!' = the beat we injected the fault.
	var ribbon strings.Builder
	firstSync := -1
	resyncs := []int{}
	lastFault := -1
	for beat := 0; beat < beats; beat++ {
		if beat == faultAt1 || beat == faultAt2 {
			cluster.ScrambleHonest(int64(beat))
			ribbon.WriteByte('!')
			lastFault = beat
			continue
		}
		res, err := cluster.Step()
		if err != nil {
			log.Fatal(err)
		}
		if res.Synced {
			ribbon.WriteByte('#')
			if firstSync < 0 {
				firstSync = beat
			}
			if lastFault >= 0 {
				resyncs = append(resyncs, beat-lastFault)
				lastFault = -1
			}
		} else {
			ribbon.WriteByte('.')
		}
	}

	fmt.Printf("n=%d f=%d k=%d, splitter adversary active throughout\n\n", n, f, k)
	out := ribbon.String()
	for i := 0; i < len(out); i += 80 {
		end := i + 80
		if end > len(out) {
			end = len(out)
		}
		fmt.Printf("beats %3d-%3d  %s\n", i, end-1, out[i:end])
	}
	fmt.Println("\nlegend: '#' synced, '.' unsynced, '!' transient fault injected")
	fmt.Printf("\nfirst synchronization after scrambled start: beat %d\n", firstSync)
	for i, r := range resyncs {
		fmt.Printf("re-synchronization after fault %d: %d beats\n", i+1, r)
	}
	if len(resyncs) < 2 {
		fmt.Println("warning: a fault window did not re-synchronize within the demo")
	}
}
