// Command beacon uses the by-product the paper highlights in Section 6.1:
// the self-stabilizing coin-flipping pipeline gives every honest node a
// stream of shared random bits, one per beat — a randomness beacon that
// survives Byzantine nodes and transient memory corruption. Here the
// cluster uses the stream to run a distributed lottery: every beat, the
// shared bits accumulate into a draw, and all honest nodes announce the
// same winner without exchanging any application messages.
//
// Section 6.1's caveat applies and is printed: the adversary sees each
// bit in the beat it appears, so the bits must only select among options
// committed in earlier beats (here: the fixed ticket assignment).
//
//	go run ./examples/beacon
package main

import (
	"fmt"
	"log"

	ssbyzclock "ssbyzclock"
)

func main() {
	const (
		n = 4
		f = 1
	)
	cfg := ssbyzclock.Config{N: n, F: f, K: 16, Coin: ssbyzclock.CoinFM, Seed: 6}
	nodes := make([]*ssbyzclock.Node, n)
	for i := range nodes {
		nd, err := ssbyzclock.NewNode(cfg, i)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = nd
	}

	honest := n - f
	// Warm up: let the coin pipelines fill (Δ_A beats) and the clocks
	// converge, then collect 3 bits per draw.
	draws := 0
	agreeDraws := 0
	var accum []byte
	for beat := uint64(0); beat < 120; beat++ {
		inboxes := make([][]ssbyzclock.InMessage, n)
		for id := 0; id < honest; id++ {
			outs, err := nodes[id].BeginBeat(beat)
			if err != nil {
				log.Fatal(err)
			}
			for _, o := range outs {
				if o.To == ssbyzclock.BroadcastTo {
					for to := range inboxes {
						inboxes[to] = append(inboxes[to], ssbyzclock.InMessage{From: id, Data: o.Data})
					}
				} else {
					inboxes[o.To] = append(inboxes[o.To], ssbyzclock.InMessage{From: id, Data: o.Data})
				}
			}
		}
		for id := 0; id < honest; id++ {
			nodes[id].EndBeat(beat, inboxes[id])
		}
		if beat < 10 {
			continue // pipeline warm-up
		}

		// Each honest node reads its local view of the shared bit.
		bit0 := nodes[0].RandomBit()
		agreed := true
		for id := 1; id < honest; id++ {
			if nodes[id].RandomBit() != bit0 {
				agreed = false
			}
		}
		if !agreed {
			// Constant-probability disagreement is part of the coin's
			// contract; a draw simply isn't held on such beats (nodes
			// can detect this at the application layer by exchanging
			// commitments — out of scope here).
			continue
		}
		accum = append(accum, bit0)
		if len(accum) == 3 {
			winner := int(accum[0])<<2 | int(accum[1])<<1 | int(accum[2])
			draws++
			agreeDraws++
			if draws <= 8 {
				fmt.Printf("draw %2d: bits=%d%d%d -> ticket %d wins\n",
					draws, accum[0], accum[1], accum[2], winner)
			}
			accum = accum[:0]
		}
	}
	fmt.Printf("\nheld %d lottery draws from the shared beacon (all honest nodes agreed)\n", agreeDraws)
	fmt.Println("\ncaveat (paper §6.1): the adversary sees each bit as it is produced;")
	fmt.Println("use the stream only to choose among outcomes committed in earlier beats.")
}
