// Command quickstart is the smallest possible use of the library: a
// 4-node cluster with one crashed (silent Byzantine) node, started from
// scrambled memory, that synchronizes its digital clocks in a handful of
// beats and keeps them in lockstep.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ssbyzclock "ssbyzclock"
)

func main() {
	cluster, err := ssbyzclock.NewCluster(
		ssbyzclock.Config{
			N:    4,                 // cluster size
			F:    1,                 // tolerated Byzantine nodes (F < N/3)
			K:    16,                // clock modulus: values cycle 0..15
			Coin: ssbyzclock.CoinFM, // the paper's GVSS-based common coin
			Seed: 2008,
		},
		ssbyzclock.ClusterOptions{
			Adversary:     ssbyzclock.AdvSilent, // node 3 crashes
			ScrambleStart: true,                 // arbitrary initial memory
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Println("beat | node0 node1 node2 | synced")
	fmt.Println("-----+-------------------+-------")
	syncedStreak := 0
	for beat := 0; beat < 120 && syncedStreak < 12; beat++ {
		res, err := cluster.Step()
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if res.Synced {
			mark = fmt.Sprintf("yes (clock=%d)", res.Value)
			syncedStreak++
		} else {
			syncedStreak = 0
		}
		fmt.Printf("%4d | %5d %5d %5d | %s\n",
			res.Beat, res.Clocks[0], res.Clocks[1], res.Clocks[2], mark)
	}
	if syncedStreak >= 12 {
		fmt.Println("\nclocks synchronized and incrementing in lockstep — done")
	} else {
		fmt.Println("\nno convergence within the demo window (unexpected)")
	}
}
