// Command statemachine shows the clock doing the job the paper's
// introduction motivates: coordinating a distributed task without any
// further agreement protocol. Each node owns the "work slot" when
// slot = clock mod n points at it; because all honest nodes hold the same
// clock, they agree on the full leader schedule beat by beat — even
// though one node is Byzantine and the cluster started from garbage
// memory.
//
// This example also demonstrates the transport-agnostic Node API
// (BeginBeat / EndBeat with wire bytes) rather than the built-in Cluster,
// i.e. exactly what wiring the library to a real network looks like.
//
//	go run ./examples/statemachine
package main

import (
	"fmt"
	"log"

	ssbyzclock "ssbyzclock"
)

const (
	n = 4
	f = 1 // node 3 will be "faulty": we simply unplug it
	k = 64
)

func main() {
	cfg := ssbyzclock.Config{N: n, F: f, K: k, Coin: ssbyzclock.CoinFM, Seed: 99}
	nodes := make([]*ssbyzclock.Node, n)
	for i := range nodes {
		nd, err := ssbyzclock.NewNode(cfg, i)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = nd
	}

	// Per-node append-only logs of "who worked when": they must agree on
	// every slot once the clocks synchronize.
	logs := make([][]int, n-f)

	syncedBeats := 0
	for beat := uint64(0); beat < 200; beat++ {
		// The "network": gather every node's outgoing bytes, deliver all
		// of them before the next beat. Node 3 is unplugged (crash).
		inboxes := make([][]ssbyzclock.InMessage, n)
		for id, nd := range nodes {
			if id >= n-f {
				continue
			}
			outs, err := nd.BeginBeat(beat)
			if err != nil {
				log.Fatal(err)
			}
			for _, o := range outs {
				if o.To == ssbyzclock.BroadcastTo {
					for to := range inboxes {
						inboxes[to] = append(inboxes[to], ssbyzclock.InMessage{From: id, Data: o.Data})
					}
				} else {
					inboxes[o.To] = append(inboxes[o.To], ssbyzclock.InMessage{From: id, Data: o.Data})
				}
			}
		}
		for id, nd := range nodes {
			if id >= n-f {
				continue
			}
			nd.EndBeat(beat, inboxes[id])
		}

		// Application layer: each honest node independently computes the
		// current worker from its own clock. No extra messages needed.
		agree := true
		var slot uint64
		for id := 0; id < n-f; id++ {
			v, ok := nodes[id].Clock()
			if id == 0 {
				slot = v
			} else if !ok || v != slot {
				agree = false
			}
		}
		if agree {
			syncedBeats++
			worker := int(slot % uint64(n))
			for id := 0; id < n-f; id++ {
				logs[id] = append(logs[id], worker)
			}
		}
	}

	fmt.Printf("clocks agreed on %d of 200 beats (initial convergence takes a few)\n", syncedBeats)
	fmt.Printf("log length per node: %d entries\n", len(logs[0]))
	identical := true
	for id := 1; id < n-f; id++ {
		if len(logs[id]) != len(logs[0]) {
			identical = false
			break
		}
		for j := range logs[id] {
			if logs[id][j] != logs[0][j] {
				identical = false
			}
		}
	}
	fmt.Printf("all honest nodes computed the identical work schedule: %v\n", identical)
	tail := logs[0]
	if len(tail) > 12 {
		tail = tail[len(tail)-12:]
	}
	fmt.Printf("last 12 scheduled workers: %v\n", tail)
	fmt.Println("\n(worker rotation is driven purely by the synchronized clock —")
	fmt.Println(" no leader election traffic exists in this program)")
}
