// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, so the per-beat benchmark trajectory can be recorded
// (BENCH_beat.json) and compared across PRs by CI or scripts/bench.sh.
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkBeat -benchmem . | go run ./cmd/benchjson > BENCH_beat.json
//
// Gate mode compares two recorded runs and fails (exit 1) when any
// benchmark present in both regressed beyond the thresholds — ns/op
// against -threshold, B/op and allocs/op against -memthreshold (the
// memory gate locks in the payload-pooling win; tiny absolute jitters
// below 1 KiB / 16 allocs never fail it), and the custom
// resident-bytes/tenant metric (BenchmarkResidentTenants) against
// -residentthreshold, which locks in the resident-tenant memory floor:
//
//	go run ./cmd/benchjson -gate old.json new.json [-threshold 15] [-memthreshold 25] [-residentthreshold 10]
//
// Merge mode rewrites a fresh recording while carrying forward baseline
// entries whose names match -carry and were not re-run. scripts/bench.sh
// uses it so a default (fast) re-record does not silently drop the
// BenchmarkResidentTenants series, whose single iteration at T=1e5 takes
// ~20 minutes and is only re-measured on demand (BENCH_RESIDENT=1):
//
//	go run ./cmd/benchjson -merge -carry '^BenchmarkResidentTenants/' base.json fresh.json > out.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Extra holds custom metrics such as
// beats/convergence or agreement-rate.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	gate := flag.Bool("gate", false, "compare two JSON files: -gate old.json new.json")
	threshold := flag.Float64("threshold", 15, "max allowed ns/op regression, percent")
	memThreshold := flag.Float64("memthreshold", 25, "max allowed B/op and allocs/op regression, percent")
	residentThreshold := flag.Float64("residentthreshold", 10, "max allowed resident-bytes/tenant regression, percent")
	merge := flag.Bool("merge", false, "merge two JSON files: -merge -carry <regexp> base.json fresh.json")
	carry := flag.String("carry", "", "with -merge: regexp of baseline benchmark names to carry forward when absent from the fresh run")
	flag.Parse()
	if *gate {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -gate needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runGate(flag.Arg(0), flag.Arg(1), *threshold, *memThreshold, *residentThreshold))
	}
	if *merge {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -merge needs exactly two files: base.json fresh.json")
			os.Exit(2)
		}
		os.Exit(runMerge(flag.Arg(0), flag.Arg(1), *carry, os.Stdout))
	}
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo so the tool can sit in a pipeline without hiding output.
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = int64(val)
			case "allocs/op":
				r.AllocsPerOp = int64(val)
			default:
				if r.Extra == nil {
					r.Extra = make(map[string]float64)
				}
				r.Extra[unit] = val
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runMerge writes the fresh recording plus any baseline entries whose
// names match carryRe and were not re-run, appended in baseline order.
// Only matched names are carried — a benchmark that was renamed or
// deleted must not be resurrected from the baseline — so an empty
// pattern makes the merge a plain copy of the fresh file.
func runMerge(basePath, freshPath, carryRe string, out io.Writer) int {
	loadList := func(path string) ([]Result, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rs []Result
		if err := json.Unmarshal(data, &rs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return rs, nil
	}
	base, err := loadList(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	fresh, err := loadList(freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	merged := fresh
	if carryRe != "" {
		re, err := regexp.Compile(carryRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -carry pattern:", err)
			return 2
		}
		have := make(map[string]bool, len(fresh))
		for _, r := range fresh {
			have[r.Name] = true
		}
		for _, r := range base {
			if re.MatchString(r.Name) && !have[r.Name] {
				merged = append(merged, r)
				fmt.Fprintf(os.Stderr, "benchjson: carried forward %s\n", r.Name)
			}
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// memRegressed reports whether a memory metric (B/op or allocs/op) rose
// beyond the threshold. Absolute deltas below the floor never count:
// single-digit alloc and sub-KiB byte counts jitter with scheduler
// goroutine reuse, and a gate that cries wolf gets disabled.
func memRegressed(old, new int64, thresholdPct float64, floor int64) bool {
	if old <= 0 || new <= old || new-old < floor {
		return false
	}
	return float64(new-old)/float64(old)*100 > thresholdPct
}

// residentMetric is the custom-unit key under which the parser records
// BenchmarkResidentTenants' b.ReportMetric reading. The gate treats it
// as a first-class metric with its own threshold: resident bytes/tenant
// is the service-capacity number (how many tenants fit in RAM), and a
// regression there is invisible to B/op, which counts allocation
// throughput rather than what stays live between beats.
const residentMetric = "resident-bytes/tenant"

// runGate loads two recorded runs and reports per-benchmark deltas;
// returns 1 when any benchmark present in both regressed beyond the
// ns/op threshold, the B/op / allocs/op memory threshold, or the
// resident-bytes/tenant threshold. Benchmarks present in only one file
// are reported but never fail the gate (new or removed cases are
// legitimate).
func runGate(oldPath, newPath string, thresholdPct, memThresholdPct, residentThresholdPct float64) int {
	load := func(path string) (map[string]Result, []Result, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var rs []Result
		if err := json.Unmarshal(data, &rs); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]Result, len(rs))
		for _, r := range rs {
			m[r.Name] = r
		}
		return m, rs, nil
	}
	oldM, _, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	_, newList, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	failed := false
	seen := make(map[string]bool, len(newList))
	for _, nr := range newList {
		seen[nr.Name] = true
		or, ok := oldM[nr.Name]
		if !ok || or.NsPerOp <= 0 {
			fmt.Printf("NEW      %-45s %14.0f ns/op\n", nr.Name, nr.NsPerOp)
			continue
		}
		deltaPct := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp * 100
		status := "ok"
		if deltaPct > thresholdPct {
			status = "REGRESSED"
			failed = true
		}
		// Memory gate: B/op within 1 KiB and allocs/op within 16 of the
		// baseline pass regardless of percentage (noise floor).
		if memRegressed(or.BytesPerOp, nr.BytesPerOp, memThresholdPct, 1024) {
			status = "MEM-REGRESSED"
			failed = true
		}
		if memRegressed(or.AllocsPerOp, nr.AllocsPerOp, memThresholdPct, 16) {
			status = "MEM-REGRESSED"
			failed = true
		}
		resident := ""
		if ov, nv := or.Extra[residentMetric], nr.Extra[residentMetric]; ov > 0 && nv > 0 {
			if nv > ov && (nv-ov)/ov*100 > residentThresholdPct {
				status = "RES-REGRESSED"
				failed = true
			}
			resident = fmt.Sprintf("  %11.0f -> %11.0f resident-B/tenant (%+.1f%%)", ov, nv, (nv-ov)/ov*100)
		}
		fmt.Printf("%-14s%-45s %12.0f -> %12.0f ns/op (%+.1f%%)  %9d -> %9d B/op  %6d -> %6d allocs/op%s\n",
			status, nr.Name, or.NsPerOp, nr.NsPerOp, deltaPct,
			or.BytesPerOp, nr.BytesPerOp, or.AllocsPerOp, nr.AllocsPerOp, resident)
	}
	for name := range oldM {
		if !seen[name] {
			fmt.Printf("REMOVED  %-45s (present in baseline only)\n", name)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: regression beyond thresholds (ns/op %.1f%%, mem %.1f%%, resident %.1f%%)\n",
			thresholdPct, memThresholdPct, residentThresholdPct)
		return 1
	}
	return 0
}
