package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeRun(t *testing.T, dir, name string, rs []Result) string {
	t.Helper()
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateCoversMemoryMetrics(t *testing.T) {
	dir := t.TempDir()
	base := []Result{{Name: "BenchmarkBeat/n=16", Iterations: 50, NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 100}}
	old := writeRun(t, dir, "old.json", base)

	cases := []struct {
		name string
		new  Result
		want int
	}{
		{"unchanged", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 100}, 0},
		{"ns regression", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 3e6, BytesPerOp: 2000, AllocsPerOp: 100}, 1},
		{"bytes regression", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2_000_000, AllocsPerOp: 100}, 1},
		{"allocs regression", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 1000}, 1},
		// Large percentage but tiny absolute delta: noise floor passes it.
		{"bytes jitter under floor", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2900, AllocsPerOp: 100}, 0},
		{"allocs jitter under floor", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 112}, 0},
		// Improvements never fail.
		{"improvement", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 1e6, BytesPerOp: 100, AllocsPerOp: 10}, 0},
	}
	for _, tc := range cases {
		newPath := writeRun(t, dir, "new.json", []Result{tc.new})
		if got := runGate(old, newPath, 15, 25); got != tc.want {
			t.Errorf("%s: gate returned %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestMemRegressed(t *testing.T) {
	if memRegressed(0, 5000, 25, 1024) {
		t.Error("zero baseline must not regress")
	}
	if memRegressed(2000, 2000, 25, 1024) {
		t.Error("equal values must not regress")
	}
	if !memRegressed(2000, 4000, 25, 1024) {
		t.Error("2x growth above floor must regress")
	}
	if memRegressed(10, 20, 25, 16) {
		t.Error("sub-floor absolute delta must not regress")
	}
}
