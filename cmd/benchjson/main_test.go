package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeRun(t *testing.T, dir, name string, rs []Result) string {
	t.Helper()
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGateCoversMemoryMetrics(t *testing.T) {
	dir := t.TempDir()
	base := []Result{{Name: "BenchmarkBeat/n=16", Iterations: 50, NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 100}}
	old := writeRun(t, dir, "old.json", base)

	cases := []struct {
		name string
		new  Result
		want int
	}{
		{"unchanged", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 100}, 0},
		{"ns regression", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 3e6, BytesPerOp: 2000, AllocsPerOp: 100}, 1},
		{"bytes regression", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2_000_000, AllocsPerOp: 100}, 1},
		{"allocs regression", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 1000}, 1},
		// Large percentage but tiny absolute delta: noise floor passes it.
		{"bytes jitter under floor", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2900, AllocsPerOp: 100}, 0},
		{"allocs jitter under floor", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 2e6, BytesPerOp: 2000, AllocsPerOp: 112}, 0},
		// Improvements never fail.
		{"improvement", Result{Name: "BenchmarkBeat/n=16", NsPerOp: 1e6, BytesPerOp: 100, AllocsPerOp: 10}, 0},
	}
	for _, tc := range cases {
		newPath := writeRun(t, dir, "new.json", []Result{tc.new})
		if got := runGate(old, newPath, 15, 25, 10); got != tc.want {
			t.Errorf("%s: gate returned %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestGateCoversResidentMetric(t *testing.T) {
	dir := t.TempDir()
	name := "BenchmarkResidentTenants/ClockSyncFM/n=4/T=1000"
	mk := func(resident float64) Result {
		r := Result{Name: name, Iterations: 1, NsPerOp: 5e9}
		if resident > 0 {
			r.Extra = map[string]float64{residentMetric: resident}
		}
		return r
	}
	old := writeRun(t, dir, "old.json", []Result{mk(58_000)})

	cases := []struct {
		name string
		new  Result
		want int
	}{
		{"unchanged", mk(58_000), 0},
		{"within threshold", mk(60_000), 0},
		{"regressed", mk(70_000), 1},
		{"improved", mk(40_000), 0},
		// A run that stopped reporting the metric can't be compared;
		// like NEW/REMOVED benchmarks, that never fails the gate.
		{"metric dropped", mk(0), 0},
	}
	for _, tc := range cases {
		newPath := writeRun(t, dir, "new.json", []Result{tc.new})
		if got := runGate(old, newPath, 15, 25, 10); got != tc.want {
			t.Errorf("%s: gate returned %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestMemRegressed(t *testing.T) {
	if memRegressed(0, 5000, 25, 1024) {
		t.Error("zero baseline must not regress")
	}
	if memRegressed(2000, 2000, 25, 1024) {
		t.Error("equal values must not regress")
	}
	if !memRegressed(2000, 4000, 25, 1024) {
		t.Error("2x growth above floor must regress")
	}
	if memRegressed(10, 20, 25, 16) {
		t.Error("sub-floor absolute delta must not regress")
	}
}

// TestMergeCarriesMatchingBaselines: -merge keeps the fresh run
// verbatim and appends only baseline entries matching -carry that the
// fresh run did not re-record — a renamed benchmark outside the carry
// pattern must stay gone, and a re-recorded carried name must take the
// fresh value.
func TestMergeCarriesMatchingBaselines(t *testing.T) {
	dir := t.TempDir()
	base := writeRun(t, dir, "base.json", []Result{
		{Name: "BenchmarkBeat/n=16", Iterations: 50, NsPerOp: 2e6},
		{Name: "BenchmarkOld/renamed", Iterations: 10, NsPerOp: 1e6},
		{Name: "BenchmarkResidentTenants/ClockSyncFM/n=4/T=1000", Iterations: 1, NsPerOp: 1e9,
			Extra: map[string]float64{"resident-bytes/tenant": 58840}},
		{Name: "BenchmarkResidentTenants/ClockSyncFM/n=7/T=1000", Iterations: 1, NsPerOp: 5e9,
			Extra: map[string]float64{"resident-bytes/tenant": 198647}},
	})
	fresh := writeRun(t, dir, "fresh.json", []Result{
		{Name: "BenchmarkBeat/n=16", Iterations: 60, NsPerOp: 1.9e6},
		{Name: "BenchmarkResidentTenants/ClockSyncFM/n=4/T=1000", Iterations: 1, NsPerOp: 1.1e9,
			Extra: map[string]float64{"resident-bytes/tenant": 58000}},
	})

	run := func(carry string) []Result {
		t.Helper()
		out := filepath.Join(dir, "out.json")
		f, err := os.Create(out)
		if err != nil {
			t.Fatal(err)
		}
		if got := runMerge(base, fresh, carry, f); got != 0 {
			t.Fatalf("runMerge = %d, want 0", got)
		}
		f.Close()
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var rs []Result
		if err := json.Unmarshal(data, &rs); err != nil {
			t.Fatal(err)
		}
		return rs
	}

	got := run(`^BenchmarkResidentTenants/`)
	wantNames := []string{
		"BenchmarkBeat/n=16",
		"BenchmarkResidentTenants/ClockSyncFM/n=4/T=1000",
		"BenchmarkResidentTenants/ClockSyncFM/n=7/T=1000",
	}
	if len(got) != len(wantNames) {
		t.Fatalf("merged %d entries, want %d: %+v", len(got), len(wantNames), got)
	}
	for i, name := range wantNames {
		if got[i].Name != name {
			t.Fatalf("entry %d = %s, want %s", i, got[i].Name, name)
		}
	}
	// The re-recorded carried name took the fresh measurement.
	if got[1].Extra["resident-bytes/tenant"] != 58000 {
		t.Fatalf("re-recorded entry kept the baseline value: %+v", got[1])
	}
	// The n=7 entry was carried forward with its baseline value intact.
	if got[2].Extra["resident-bytes/tenant"] != 198647 {
		t.Fatalf("carried entry lost its baseline value: %+v", got[2])
	}

	// Empty pattern: plain copy of the fresh run, nothing resurrected.
	if got := run(""); len(got) != 2 {
		t.Fatalf("empty carry merged %d entries, want 2", len(got))
	}
}
