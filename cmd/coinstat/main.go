// Command coinstat inspects the self-stabilizing common coin
// (ss-Byz-Coin-Flip, Figure 1): it prints the per-beat bit stream across
// honest nodes and summarizes agreement rate and bias — the fastest way
// to see Definition 2.7's properties hold (or degrade under an attack).
//
// Usage:
//
//	coinstat [-n 7] [-f 2] [-coin fm] [-adv gradesplitter] [-beats 200] [-seed 1] [-show 40]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
	"ssbyzclock/internal/sscoin"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n        = flag.Int("n", 7, "cluster size")
		f        = flag.Int("f", 2, "Byzantine nodes")
		coinName = flag.String("coin", "fm", "coin: fm | rabin | local")
		advName  = flag.String("adv", "passive", "adversary: passive | silent | gradesplitter | sharecorruptor")
		beats    = flag.Int("beats", 200, "beats to measure (after warm-up)")
		seed     = flag.Int64("seed", 1, "run seed")
		show     = flag.Int("show", 40, "beats of raw bit stream to print")
	)
	flag.Parse()

	var cf coin.Factory
	switch *coinName {
	case "fm":
		cf = coin.FMFactory{}
	case "rabin":
		cf = coin.RabinFactory{Seed: *seed}
	case "local":
		cf = coin.LocalFactory{}
	default:
		fmt.Fprintf(os.Stderr, "unknown coin %q\n", *coinName)
		return 2
	}
	var mk func(*adversary.Context) adversary.Adversary
	switch *advName {
	case "passive":
	case "silent":
		mk = func(*adversary.Context) adversary.Adversary { return adversary.Silent{} }
	case "gradesplitter":
		mk = func(ctx *adversary.Context) adversary.Adversary { return &adversary.GradeSplitter{Ctx: ctx} }
	case "sharecorruptor":
		mk = func(ctx *adversary.Context) adversary.Adversary { return &adversary.ShareCorruptor{Ctx: ctx} }
	default:
		fmt.Fprintf(os.Stderr, "unknown adversary %q\n", *advName)
		return 2
	}

	e := sim.New(sim.Config{N: *n, F: *f, Seed: *seed, NewAdversary: mk},
		func(env proto.Env) proto.Protocol { return sscoin.New(env, cf) })
	e.Run(cf.Rounds() + 1) // pipeline warm-up

	fmt.Printf("coin=%s n=%d f=%d adversary=%s; per-beat honest outputs ('.' = agreed 0, '#' = agreed 1, 'X' = disagreement)\n\n",
		*coinName, *n, *f, *advName)
	agree, ones := 0, 0
	var ribbon strings.Builder
	for b := 0; b < *beats; b++ {
		e.Step()
		bits := sim.ReadBits(e)
		if v, ok := bits.Agreed(); ok {
			agree++
			if v == 1 {
				ones++
				ribbon.WriteByte('#')
			} else {
				ribbon.WriteByte('.')
			}
		} else {
			ribbon.WriteByte('X')
		}
	}
	out := ribbon.String()
	limit := *show
	if limit > len(out) {
		limit = len(out)
	}
	for i := 0; i < limit; i += 80 {
		end := i + 80
		if end > limit {
			end = limit
		}
		fmt.Println(out[i:end])
	}
	fmt.Printf("\nagreement: %d/%d beats (%.1f%%)\n", agree, *beats, 100*float64(agree)/float64(*beats))
	if agree > 0 {
		fmt.Printf("bias: %d ones / %d agreed beats (%.1f%%); p0-hat=%.2f p1-hat=%.2f\n",
			ones, agree, 100*float64(ones)/float64(agree),
			float64(agree-ones)/float64(*beats), float64(ones)/float64(*beats))
	}
	return 0
}
