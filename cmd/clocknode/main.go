// Command clocknode runs ONE clock-synchronization node as a network
// daemon: it binds a socket, exchanges wire-framed protocol messages
// with its peers, and derives beats from message arrival (Real mode of
// internal/noderuntime — quorum advancement, retransmission with
// jittered backoff, catch-up after partitions). Start n of these, one
// per host or port, and they synchronize their clocks; kill and restart
// one with arbitrary state and it resyncs — the paper's
// self-stabilization claim as a running system.
//
// Usage:
//
//	clocknode -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//	          [-listen ADDR] [-transport udp|tcp] [-f 1] [-k 16] [-seed 1] \
//	          [-faults loss20+reorder] [-fault-seed 7] [-loss 10] \
//	          [-beats 0] [-beat-timeout 1s] [-metrics-addr ADDR] \
//	          [-heartbeat 10s] [-quiet]
//
// The cluster size is len(-peers); -listen defaults to the node's own
// peers entry. -faults/-loss put the node's OUTGOING links on a seeded
// faulty network (every daemon should be given the same -faults and
// -fault-seed for a coherent schedule). -metrics-addr serves the node's
// internal/obs registry as Prometheus text on /metrics plus a /healthz
// that turns 503 when the beat stops advancing; -heartbeat logs a
// periodic one-line status (beat, beat delta, clock, retries) whatever
// the metrics setting. SIGINT/SIGTERM stop the node gracefully: the
// loop exits between beats and prints a summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id          = flag.Int("id", 0, "this node's id (index into -peers)")
		peersFlag   = flag.String("peers", "", "comma-separated peer addresses, node 0 first (required)")
		listen      = flag.String("listen", "", "listen address (default: own -peers entry)")
		transport   = flag.String("transport", "udp", "transport: udp | tcp")
		f           = flag.Int("f", -1, "fault tolerance (default floor((n-1)/3))")
		k           = flag.Uint64("k", 16, "clock modulus")
		seed        = flag.Int64("seed", 1, "protocol randomness seed")
		faults      = flag.String("faults", "", "fault schedule for outgoing links (faultnet.Parse syntax; empty = ideal)")
		faultSeed   = flag.Uint64("fault-seed", 1, "schedule seed (same on every daemon)")
		loss        = flag.Int("loss", 0, "per-attempt outgoing loss %, retries beat it")
		beats       = flag.Int("beats", 0, "stop after this many beats (0 = run until signalled)")
		beatTimeout = flag.Duration("beat-timeout", time.Second, "advance the beat even without a quorum after this long")
		scramble    = flag.Bool("scramble", true, "start from scrambled (arbitrary) protocol state")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = off)")
		heartbeat   = flag.Duration("heartbeat", 0, "log a one-line status this often (0 = off)")
		quiet       = flag.Bool("quiet", false, "only print the summary")
	)
	flag.Parse()
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "clocknode:", err)
		return 1
	}

	peers := strings.Split(*peersFlag, ",")
	n := len(peers)
	if *peersFlag == "" || n < 2 {
		return fail(fmt.Errorf("need -peers with at least 2 addresses"))
	}
	if *id < 0 || *id >= n {
		return fail(fmt.Errorf("-id %d out of range for %d peers", *id, n))
	}
	ff := *f
	if ff < 0 {
		ff = (n - 1) / 3
	}
	addr := *listen
	if addr == "" {
		addr = peers[*id]
	}

	var (
		ep  net.Endpoint
		err error
	)
	switch *transport {
	case "udp":
		ep, err = net.NewUDPEndpoint(*id, addr, peers, 0)
	case "tcp":
		ep, err = net.NewTCPEndpointSeeded(*id, addr, peers, 0, *seed)
	default:
		err = fmt.Errorf("unknown transport %q", *transport)
	}
	if err != nil {
		return fail(err)
	}

	// The registry exists whether or not it is served: the heartbeat and
	// the exit summary read the same counters the exporter would.
	reg := obs.NewRegistry()
	if rc, ok := ep.(net.ReconnectCounter); ok {
		reg.Func("ssbyz_net_reconnects_total", "Successful transport redials after each link's first connection.",
			obs.KindCounter, func() float64 { return float64(rc.Reconnects()) },
			obs.Label{Key: "node", Value: strconv.Itoa(*id)})
	}

	var sched *faultnet.HashSchedule
	wrapped := ep
	if *faults != "" && *faults != "none" {
		if sched, err = faultnet.Parse(*faults); err != nil {
			return fail(err)
		}
		sched.Seed = *faultSeed
	}
	var fep *faultnet.Endpoint
	if sched != nil || *loss > 0 {
		var link faultnet.Schedule
		if sched != nil {
			link = sched
		}
		fep = faultnet.Wrap(ep, link, faultnet.WrapConfig{
			FaultMarkers:   true,
			AttemptLossPct: *loss,
			AttemptSeed:    *faultSeed ^ uint64(*id)<<16,
			Metrics:        faultnet.NewEndpointMetrics(reg, *id),
		})
		wrapped = fep
	}

	inst := core.NewClockSyncProtocol(*k, coin.FMFactory{})(proto.Env{
		N: n, F: ff, ID: *id, Rng: sim.NodeRng(*seed, *id),
	})
	if *scramble {
		if s, ok := inst.(proto.Scrambler); ok {
			s.Scramble(sim.ScrambleRng(*seed ^ int64(*id)<<8))
		}
	}

	// lastAdvance/lastBeat/lastClock feed /healthz and the heartbeat
	// line; they are written from the node's loop goroutine, read from
	// HTTP handlers and the heartbeat ticker.
	var lastAdvance atomic.Int64 // unix nanos of the newest delivered beat
	var lastBeat atomic.Uint64
	var lastClock atomic.Int64 // -1 = undefined (⊥)
	lastAdvance.Store(time.Now().UnixNano())
	lastClock.Store(-1)
	verbose := !*quiet
	onBeat := func(beat uint64, p proto.Protocol) {
		lastAdvance.Store(time.Now().UnixNano())
		lastBeat.Store(beat)
		if cr, ok := p.(proto.ClockReader); ok {
			if v, defined := cr.Clock(); defined {
				lastClock.Store(int64(v))
				if verbose {
					fmt.Printf("beat %d clock %d\n", beat, v)
				}
				return
			}
			lastClock.Store(-1)
			if verbose {
				fmt.Printf("beat %d clock ⊥\n", beat)
			}
		}
	}
	var linkSched faultnet.Schedule
	if sched != nil {
		linkSched = sched
	}
	nd := noderuntime.NewNode(noderuntime.NodeConfig{
		N: n, F: ff, ID: *id,
		Mode:     noderuntime.Real,
		Endpoint: wrapped,
		Links:    linkSched,
		Protocol: inst,
		OnBeat:   onBeat,
		MaxBeats: uint64(*beats),
		Timing:   noderuntime.Timing{BeatTimeout: *beatTimeout},
		// Jitter decorrelates retries across daemons sharing a seed.
		RetrySeed: *seed ^ int64(*id)<<32,
		Metrics:   noderuntime.NewNodeMetrics(reg, *id),
	})

	if *metricsAddr != "" {
		// Healthy = a beat was delivered recently; a wedged loop (dead
		// peers, hard partition) turns the endpoint red while the process
		// lives on.
		stall := 5 * *beatTimeout
		srv, bound, err := obs.Serve(*metricsAddr, reg, func() bool {
			return time.Since(time.Unix(0, lastAdvance.Load())) < stall
		})
		if err != nil {
			wrapped.Close()
			return fail(err)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	fmt.Printf("clocknode %d/%d (f=%d) on %s/%s k=%d faults=%q loss=%d%%\n",
		*id, n, ff, *transport, addr, *k, *faults, *loss)
	nd.Start()

	if *heartbeat > 0 {
		// Handle dedup: these are the SAME counters the node increments.
		nodeLbl := obs.Label{Key: "node", Value: strconv.Itoa(*id)}
		retrans := reg.Counter("ssbyz_node_retransmits_total", "", nodeLbl)
		timeouts := reg.Counter("ssbyz_node_beat_timeouts_total", "", nodeLbl)
		hbDone := make(chan struct{})
		defer close(hbDone)
		go func() {
			tick := time.NewTicker(*heartbeat)
			defer tick.Stop()
			var prevBeat uint64
			for {
				select {
				case <-hbDone:
					return
				case <-tick.C:
					b := lastBeat.Load()
					clock := "⊥"
					if c := lastClock.Load(); c >= 0 {
						clock = strconv.FormatInt(c, 10)
					}
					fmt.Printf("heartbeat beat=%d Δbeat=%d clock=%s retransmits=%d timeouts=%d\n",
						b, b-prevBeat, clock, retrans.Load(), timeouts.Load())
					prevBeat = b
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	donec := make(chan struct{})
	go func() { nd.Wait(); close(donec) }()
	select {
	case <-sigc:
		fmt.Println("signal: stopping after the beat in flight")
		nd.Stop()
		nd.Wait()
	case <-donec:
	}
	signal.Stop(sigc)
	wrapped.Close()

	fmt.Printf("stopped after %d beats", nd.Beat())
	if fep != nil {
		st := fep.Stats()
		fmt.Printf("; injected faults: dropped=%d duplicated=%d delayed=%d attempt-lost=%d",
			st.Dropped, st.Duplicated, st.Delayed, st.AttemptLost)
	}
	fmt.Println()
	return 0
}
