// Command clocksim runs one clock-synchronization simulation and prints
// the honest clocks beat by beat, with optional transient-fault
// injection — the interactive way to watch the protocols work.
//
// Usage:
//
//	clocksim [-n 7] [-f 2] [-k 16] [-proto clocksync] [-coin fm]
//	         [-layout shared] [-adv silent] [-beats 120] [-seed 1]
//	         [-scramble-at 60] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/baseline"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n          = flag.Int("n", 7, "cluster size")
		f          = flag.Int("f", 2, "Byzantine nodes (last f ids)")
		k          = flag.Uint64("k", 16, "clock modulus")
		protoName  = flag.String("proto", "clocksync", "protocol: clocksync | twoclock | fourclock | dolevwelch | phaseking | naive")
		coinName   = flag.String("coin", "fm", "coin: fm | rabin | local")
		layoutName = flag.String("layout", core.DefaultLayout().String(), "coin layout: shared (one pipeline per node, Remark 4.1) | paper (one per consumer)")
		advName    = flag.String("adv", "silent", "adversary: passive | silent | splitter | gradesplitter | delayer | replayer")
		beats      = flag.Int("beats", 120, "beats to run")
		seed       = flag.Int64("seed", 1, "run seed")
		scrambleAt = flag.Int("scramble-at", -1, "inject a transient fault at this beat (-1 = never)")
		quiet      = flag.Bool("quiet", false, "only print the summary")
	)
	flag.Parse()

	layout, err := core.ParseLayout(*layoutName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	factory, kk, err := protocolFactory(*protoName, *coinName, *k, *seed, layout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	adv, err := adversaryFactory(*advName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	e := sim.New(sim.Config{
		N: *n, F: *f, Seed: *seed,
		NewAdversary: adv, ScrambleStart: true,
	}, factory)

	fmt.Printf("proto=%s coin=%s layout=%s n=%d f=%d k=%d adversary=%s seed=%d\n\n",
		*protoName, *coinName, layout, *n, *f, kk, *advName, *seed)

	syncedBeats, firstSync := 0, -1
	var prev uint64
	havePrev := false
	for b := 0; b < *beats; b++ {
		if b == *scrambleAt {
			e.ScrambleHonest()
			havePrev = false
			if !*quiet {
				fmt.Printf("%4d  *** transient fault: honest memory scrambled ***\n", b)
			}
			continue
		}
		e.Step()
		st := sim.ReadClocks(e)
		v, ok := st.Synced()
		good := ok && (!havePrev || v == (prev+1)%kk)
		prev, havePrev = v, ok
		if good {
			syncedBeats++
			if firstSync < 0 {
				firstSync = b
			}
		}
		if !*quiet {
			var cells []string
			for i, val := range st.Values {
				if st.OK[i] {
					cells = append(cells, fmt.Sprintf("%3d", val))
				} else {
					cells = append(cells, "  ⊥")
				}
			}
			mark := ""
			if good {
				mark = " <- synced"
			}
			fmt.Printf("%4d  %s%s\n", b, strings.Join(cells, " "), mark)
		}
	}
	fmt.Printf("\nsynced beats: %d/%d; first sync at beat %d\n", syncedBeats, *beats, firstSync)
	fmt.Printf("honest messages: %d (%.1f per node-beat)\n",
		e.HonestMsgs, float64(e.HonestMsgs)/float64(*beats)/float64(*n-*f))
	return 0
}

func protocolFactory(name, coinName string, k uint64, seed int64, l core.Layout) (sim.NodeFactory, uint64, error) {
	var cf coin.Factory
	switch coinName {
	case "fm":
		cf = coin.FMFactory{}
	case "rabin":
		cf = coin.RabinFactory{Seed: seed}
	case "local":
		cf = coin.LocalFactory{}
	default:
		return nil, 0, fmt.Errorf("unknown coin %q", coinName)
	}
	switch name {
	case "clocksync":
		return core.NewClockSyncProtocolLayout(k, cf, l), k, nil
	case "twoclock":
		return core.NewTwoClockProtocolLayout(cf, l), 2, nil
	case "fourclock":
		return core.NewFourClockProtocolLayout(cf, l), 4, nil
	case "dolevwelch":
		return baseline.NewDolevWelchProtocol(k), k, nil
	case "phaseking":
		return baseline.NewPhaseKingProtocol(k), k, nil
	case "naive":
		return baseline.NewNaiveProtocol(k), k, nil
	default:
		return nil, 0, fmt.Errorf("unknown protocol %q", name)
	}
}

func adversaryFactory(name string) (func(*adversary.Context) adversary.Adversary, error) {
	switch name {
	case "passive":
		return nil, nil
	case "silent":
		return func(*adversary.Context) adversary.Adversary { return adversary.Silent{} }, nil
	case "splitter":
		return func(ctx *adversary.Context) adversary.Adversary { return &adversary.ClockSplitter{Ctx: ctx} }, nil
	case "gradesplitter":
		return func(ctx *adversary.Context) adversary.Adversary { return &adversary.GradeSplitter{Ctx: ctx} }, nil
	case "delayer":
		return func(ctx *adversary.Context) adversary.Adversary { return &adversary.Delayer{Ctx: ctx, Drop: 0.5} }, nil
	case "replayer":
		return func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} }, nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}
