package main

import (
	"math"
	"testing"
	"time"

	"ssbyzclock/internal/faultnet"
)

func TestParseSchedule(t *testing.T) {
	st, err := parseSchedule("0:none,12s:loss30+reorder,27s:partition,40s:none", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 4 {
		t.Fatalf("got %d stages", len(st))
	}
	if st[0].at != 0 || st[0].sched != nil || st[0].attemptLoss != 0 {
		t.Fatalf("stage 0 not ideal: %+v", st[0])
	}
	if st[1].at != 12*time.Second || st[1].attemptLoss != 30 {
		t.Fatalf("stage 1: %+v", st[1])
	}
	hs, ok := st[1].sched.(*faultnet.HashSchedule)
	if !ok || !hs.Reorder || hs.LossPct != 0 {
		t.Fatalf("stage 1 schedule: %+v (loss must move to attempt-loss)", st[1].sched)
	}
	hs, ok = st[2].sched.(*faultnet.HashSchedule)
	if !ok || len(hs.Partitions) != 1 {
		t.Fatalf("stage 2 schedule: %+v", st[2].sched)
	}
	// A soak partition holds for the whole stage, not Parse's beat window.
	if p := hs.Partitions[0]; p.From != 0 || p.Until != math.MaxUint64 {
		t.Fatalf("partition window [%d,%d), want whole-stage", p.From, p.Until)
	}
	if st[3].sched != nil {
		t.Fatalf("heal stage still faulted: %+v", st[3].sched)
	}

	for _, bad := range []string{"", "5s:loss10", "0:none,3s:bogus", "0:none,5s:loss10,2s:none", "none"} {
		if _, err := parseSchedule(bad, 1); err == nil {
			t.Fatalf("parseSchedule(%q) accepted", bad)
		}
	}
}
