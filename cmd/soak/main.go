// Command soak runs a networked clock-sync cluster for a wall-clock
// duration under a scripted sequence of live fault stages, and judges
// liveness from the cluster's own metrics registry — the same counters
// /metrics exports are the assertions, so a green soak certifies both
// the runtime and its observability.
//
// Usage:
//
//	soak [-n 4] [-f -1] [-k 16] [-transport chan|udp|tcp]
//	     [-duration 60s] [-schedule 0:none,20s:loss30,40s:none]
//	     [-seed 1] [-fault-seed 7] [-beat-timeout 100ms]
//	     [-min-rate 1.0] [-stall 10s] [-metrics-addr ADDR] [-quiet]
//
// -schedule is a comma-separated list of OFFSET:SPEC stages; at each
// OFFSET (from process start) the SPEC becomes the live fault regime.
// SPEC uses faultnet.Parse syntax with soak semantics: lossNN is
// per-ATTEMPT loss (retransmission beats it — toggled through
// Cluster.SetAttemptLossPct), partition cuts even from odd ids for the
// whole stage (healed by the next stage), and dup/delay/reorder swap in
// through a faultnet.Switch. SIGHUP skips to the next stage
// immediately, so an operator can drive the toggling by hand.
//
// Liveness assertions, all metrics-derived:
//
//   - no stall: the slowest honest node's ssbyz_node_beats_total must
//     advance within every -stall window;
//   - overall rate: that node's beats/sec over the whole run must be at
//     least -min-rate;
//   - recovery: from the final stage's activation to the end of the
//     run, the slowest node must again sustain -min-rate (the final
//     stage should be a heal for this to mean recovery).
//
// Exit status: 0 all assertions green, 1 an assertion failed, 2 bad
// usage or setup.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/obs"
)

func main() {
	os.Exit(run())
}

// stage is one live fault regime, activated at offset `at` from start.
type stage struct {
	at          time.Duration
	spec        string
	attemptLoss int
	sched       faultnet.Schedule // nil = ideal links
}

// parseSchedule parses "0:none,20s:loss30+reorder,40s:none". Offsets
// must be ascending and the first must be 0.
func parseSchedule(s string, faultSeed uint64) ([]stage, error) {
	var out []stage
	for _, part := range strings.Split(s, ",") {
		off, spec, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("stage %q wants OFFSET:SPEC", part)
		}
		if off == "0" {
			off = "0s"
		}
		d, err := time.ParseDuration(off)
		if err != nil {
			return nil, fmt.Errorf("stage %q: %w", part, err)
		}
		st := stage{at: d, spec: spec}
		hs, err := faultnet.Parse(spec)
		if err != nil {
			return nil, err
		}
		hs.Seed = faultSeed
		// Soak semantics: lossNN is per-attempt (retries beat it), and a
		// partition holds for the whole stage rather than Parse's fixed
		// beat window.
		st.attemptLoss = hs.LossPct
		hs.LossPct = 0
		for i := range hs.Partitions {
			hs.Partitions[i].From, hs.Partitions[i].Until = 0, math.MaxUint64
		}
		if hs.DupPct != 0 || hs.DelayPct != 0 || hs.Reorder || len(hs.Partitions) > 0 {
			st.sched = hs
		}
		if len(out) > 0 && d <= out[len(out)-1].at {
			return nil, fmt.Errorf("stage offsets must ascend (%v after %v)", d, out[len(out)-1].at)
		}
		out = append(out, st)
	}
	if len(out) == 0 || out[0].at != 0 {
		return nil, fmt.Errorf("schedule needs a stage at offset 0")
	}
	return out, nil
}

func run() int {
	var (
		n           = flag.Int("n", 4, "cluster size")
		f           = flag.Int("f", -1, "fault tolerance (default floor((n-1)/3))")
		k           = flag.Uint64("k", 16, "clock modulus")
		transport   = flag.String("transport", "chan", "transport: chan | udp | tcp")
		duration    = flag.Duration("duration", 60*time.Second, "wall-clock run length")
		scheduleStr = flag.String("schedule", "0:none,20s:loss30,40s:none", "comma-separated OFFSET:SPEC fault stages")
		seed        = flag.Int64("seed", 1, "run seed")
		faultSeed   = flag.Uint64("fault-seed", 7, "fault schedule seed")
		beatTimeout = flag.Duration("beat-timeout", 100*time.Millisecond, "real-mode beat timeout")
		minRate     = flag.Float64("min-rate", 1.0, "required beats/sec for the slowest honest node")
		stallLimit  = flag.Duration("stall", 10*time.Second, "fail if the slowest node gains no beat for this long")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = off)")
		quiet       = flag.Bool("quiet", false, "only print stage changes and the verdict")
	)
	flag.Parse()
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "soak:", err)
		return 2
	}
	ff := *f
	if ff < 0 {
		ff = (*n - 1) / 3
	}
	stages, err := parseSchedule(*scheduleStr, *faultSeed)
	if err != nil {
		return fail(err)
	}

	var tr net.Transport
	switch *transport {
	case "chan":
		tr = nil
	case "udp":
		tr, err = net.NewLoopbackUDP(*n, 0)
	case "tcp":
		tr, err = net.NewLoopbackTCPSeeded(*n, 0, *seed)
	default:
		err = fmt.Errorf("unknown transport %q", *transport)
	}
	if err != nil {
		return fail(err)
	}

	reg := obs.NewRegistry()
	sw := faultnet.NewSwitch(stages[0].sched)
	cl, err := noderuntime.NewCluster(noderuntime.ClusterConfig{
		N: *n, F: ff, Seed: *seed, ScrambleStart: true,
		Mode:           noderuntime.Real,
		Factory:        core.NewClockSyncProtocol(*k, coin.FMFactory{}),
		Links:          sw,
		AttemptLossPct: stages[0].attemptLoss,
		Transport:      tr,
		Timing:         noderuntime.Timing{BeatTimeout: *beatTimeout},
		Metrics:        reg,
	})
	if err != nil {
		return fail(err)
	}

	// The assertions read the SAME counters the nodes increment: the
	// registry dedups (name, labels) to one handle.
	honest := cl.HonestIDs()
	beatCtr := make(map[int]*obs.Counter, len(honest))
	for _, id := range honest {
		beatCtr[id] = reg.Counter("ssbyz_node_beats_total", "", obs.Label{Key: "node", Value: strconv.Itoa(id)})
	}
	minBeats := func() uint64 {
		min := uint64(math.MaxUint64)
		for _, c := range beatCtr {
			if v := c.Load(); v < min {
				min = v
			}
		}
		return min
	}

	start := time.Now()
	// lastMin/lastGain are written by the sampler loop and read by the
	// /healthz handler goroutine.
	var lastMin atomic.Uint64
	var lastGain atomic.Int64
	lastGain.Store(start.UnixNano())
	if *metricsAddr != "" {
		srv, bound, serr := obs.Serve(*metricsAddr, reg, func() bool {
			// Healthy = the slowest node gained a beat recently.
			return minBeats() > lastMin.Load() ||
				time.Since(time.Unix(0, lastGain.Load())) < *stallLimit
		})
		if serr != nil {
			return fail(serr)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	fmt.Printf("soak n=%d f=%d k=%d transport=%s duration=%v schedule=%q seed=%d\n",
		*n, ff, *k, *transport, *duration, *scheduleStr, *seed)
	cl.Start()

	applyStage := func(i int) {
		st := stages[i]
		sw.Set(st.sched)
		cl.SetAttemptLossPct(st.attemptLoss)
		fmt.Printf("[%7.1fs] stage %d/%d: %s (attempt-loss=%d%%)\n",
			time.Since(start).Seconds(), i+1, len(stages), st.spec, st.attemptLoss)
	}
	applyStage(0)

	sighup := make(chan os.Signal, 1)
	signal.Notify(sighup, syscall.SIGHUP)
	sigstop := make(chan os.Signal, 1)
	signal.Notify(sigstop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sighup)
	defer signal.Stop(sigstop)

	next := 1
	stageTimer := time.NewTimer(stageDelay(stages, next, start))
	defer stageTimer.Stop()
	sample := time.NewTicker(250 * time.Millisecond)
	defer sample.Stop()
	endTimer := time.NewTimer(*duration)
	defer endTimer.Stop()

	// finalStart/finalMin anchor the recovery-rate assertion at the last
	// stage's activation.
	finalStart, finalMin := start, uint64(0)
	stalled := false

	advance := func() {
		if next < len(stages) {
			applyStage(next)
			if next == len(stages)-1 {
				finalStart, finalMin = time.Now(), minBeats()
			}
			next++
			stageTimer.Reset(stageDelay(stages, next, start))
		}
	}
	if len(stages) == 1 {
		finalMin = minBeats()
	}

loop:
	for {
		select {
		case <-endTimer.C:
			break loop
		case <-sigstop:
			fmt.Println("signal: stopping early")
			break loop
		case <-sighup:
			advance()
		case <-stageTimer.C:
			advance()
		case <-sample.C:
			m := minBeats()
			if m > lastMin.Load() {
				lastMin.Store(m)
				lastGain.Store(time.Now().UnixNano())
			} else if time.Since(time.Unix(0, lastGain.Load())) > *stallLimit {
				stalled = true
				fmt.Printf("[%7.1fs] STALL: slowest node stuck at beat %d for >%v\n",
					time.Since(start).Seconds(), m, *stallLimit)
				break loop
			}
			if !*quiet {
				fmt.Printf("[%7.1fs] min-beat=%d\n", time.Since(start).Seconds(), m)
			}
		}
	}
	elapsed := time.Since(start)
	finalElapsed := time.Since(finalStart)
	endMin := minBeats()
	cl.Stop()

	// Summary straight from the registry snapshot — what a scraper saw.
	printSummary(reg, cl)

	ok := true
	if stalled {
		ok = false
	}
	overall := float64(endMin) / elapsed.Seconds()
	fmt.Printf("overall: min-beats=%d over %v = %.2f beats/s (min %.2f)\n", endMin, elapsed.Round(time.Millisecond), overall, *minRate)
	if overall < *minRate {
		fmt.Println("FAIL: overall rate below -min-rate")
		ok = false
	}
	if finalElapsed > time.Second { // recovery window too short to judge otherwise
		recov := float64(endMin-finalMin) / finalElapsed.Seconds()
		fmt.Printf("recovery: %d beats over %v = %.2f beats/s (min %.2f)\n", endMin-finalMin, finalElapsed.Round(time.Millisecond), recov, *minRate)
		if recov < *minRate {
			fmt.Println("FAIL: recovery rate below -min-rate")
			ok = false
		}
	}
	if !ok {
		fmt.Println("SOAK FAILED")
		return 1
	}
	fmt.Println("SOAK OK")
	return 0
}

// stageDelay returns the wait until stage i activates (a long park when
// all stages are done — SIGHUP still works, the end timer still rules).
func stageDelay(stages []stage, i int, start time.Time) time.Duration {
	if i >= len(stages) {
		return 24 * time.Hour
	}
	d := time.Until(start.Add(stages[i].at))
	if d < 0 {
		d = 0
	}
	return d
}

// printSummary prints the node and faultnet series from the registry
// snapshot, aggregated across node labels.
func printSummary(reg *obs.Registry, cl *noderuntime.Cluster) {
	totals := map[string]float64{}
	for _, s := range reg.Snapshot() {
		if s.Kind == obs.KindCounter {
			totals[s.Name] += s.Value
		}
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s %.0f\n", name, totals[name])
	}
	st := cl.Stats()
	fmt.Printf("injected faults: dropped=%d duplicated=%d delayed=%d attempt-lost=%d\n",
		st.Dropped, st.Duplicated, st.Delayed, st.AttemptLost)
}
