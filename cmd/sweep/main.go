// Command sweep plans, executes, merges and reports sharded experiment
// sweeps (internal/sweep): the scale-out path for the E-series
// experiments and the large-n / adversary-grid workloads the in-process
// harness cannot hold.
//
// Usage:
//
//	sweep -store DIR [flags] <plan|run|merge|report|all>
//
//	plan    initialize DIR from -grid FILE (a sweep.Grid JSON) or
//	        -exp NAME (a named E-series grid; -runs/-maxbeats/-hold
//	        override its defaults). Re-planning an existing store with
//	        the same grid is a no-op; a different grid is an error.
//	run     execute work units. -shards M -shard I runs one shard of a
//	        manual (possibly multi-machine) layout; -procs P spawns P
//	        worker processes on this machine, one shard each. Completed
//	        units are skipped, so run resumes after any interruption;
//	        -max-units U stops after U fresh units (an interruption
//	        stand-in for tests).
//	merge   assemble the final column files. Requires every unit
//	        complete; the output is byte-identical for every shard
//	        layout and completion order.
//	report  print the per-cell aggregate table from the merged columns.
//	all     plan + run + merge + report.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"

	"ssbyzclock/internal/experiments"
	"ssbyzclock/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		store    = flag.String("store", "", "store directory (required)")
		gridFile = flag.String("grid", "", "grid JSON file (plan)")
		exp      = flag.String("exp", "", fmt.Sprintf("named E-series grid (plan): %s", strings.Join(experiments.SweepGridNames(), " ")))
		runs     = flag.Int("runs", 0, "override -exp seeds per cell (0 = experiment default)")
		maxBeats = flag.Int("maxbeats", 0, "override -exp per-run beat cap")
		hold     = flag.Int("hold", 0, "override -exp convergence hold")
		shards   = flag.Int("shards", 1, "total shard count (run)")
		shard    = flag.Int("shard", 0, "this process's shard index (run)")
		procs    = flag.Int("procs", 0, "spawn this many worker processes, one shard each (run)")
		workers  = flag.Int("workers", 1, "sim.Config.Workers per unit engine (0 = GOMAXPROCS)")
		maxUnits = flag.Int("max-units", 0, "stop after this many fresh units (0 = no limit; simulates interruption)")
		verbose  = flag.Bool("v", false, "print per-unit progress")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sweep -store DIR [flags] <plan|run|merge|report|all>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 || *store == "" {
		flag.Usage()
		return 2
	}
	cmd := flag.Arg(0)
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}

	// SIGINT/SIGTERM interrupt the sweep gracefully: the unit in flight
	// finishes and is recorded, chunk files are flushed, and a later run
	// resumes from exactly where this one stopped. A second signal kills
	// the process the hard way (NotifyContext restores default handling
	// once the context is done).
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	loadGrid := func() (sweep.Grid, error) {
		switch {
		case *gridFile != "" && *exp != "":
			return sweep.Grid{}, fmt.Errorf("give -grid or -exp, not both")
		case *gridFile != "":
			b, err := os.ReadFile(*gridFile)
			if err != nil {
				return sweep.Grid{}, err
			}
			var g sweep.Grid
			if err := json.Unmarshal(b, &g); err != nil {
				return sweep.Grid{}, fmt.Errorf("%s: %w", *gridFile, err)
			}
			return g, nil
		case *exp != "":
			return experiments.SweepGrid(*exp, experiments.Params{Runs: *runs, MaxBeats: *maxBeats, Hold: *hold})
		default:
			return sweep.Grid{}, fmt.Errorf("plan needs -grid FILE or -exp NAME")
		}
	}

	plan := func() (*sweep.Store, error) {
		g, err := loadGrid()
		if err != nil {
			return nil, err
		}
		st, err := sweep.Create(*store, g)
		if err != nil {
			return nil, err
		}
		fmt.Printf("planned %d units in %s (grid %.12s)\n", st.Units(), st.Dir(), st.Grid().Hash())
		return st, nil
	}

	shardsSet, shardSet, maxUnitsSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shards":
			shardsSet = true
		case "shard":
			shardSet = true
		case "max-units":
			maxUnitsSet = true
		}
	})

	runShards := func(st *sweep.Store) error {
		if *procs > 1 {
			// Workers each own one of -procs shards and run to completion;
			// a manual layout or a unit cap cannot be forwarded coherently,
			// so reject the combination instead of silently ignoring it.
			if shardsSet || shardSet || maxUnitsSet {
				return fmt.Errorf("-procs cannot be combined with -shards/-shard/-max-units")
			}
			return spawnWorkers(ctx, *store, *procs, *workers, *verbose)
		}
		r := sweep.Runner{Workers: *workers}
		var progress func(sweep.Unit, sweep.Result)
		if *verbose {
			progress = func(u sweep.Unit, res sweep.Result) {
				fmt.Printf("unit %d/%d n=%d adv=%s layout=%s fault=%s seed=%d: converged=%v beats=%d\n",
					u.Index, st.Units(), u.N, u.Adversary, u.Layout, u.Fault, u.SeedIdx, res.Converged, res.ConvBeats)
			}
		}
		ran, err := sweep.ExecuteShard(ctx, st, *shard, *shards, r, *maxUnits, progress)
		interrupted := errors.Is(err, context.Canceled)
		if err != nil && !interrupted {
			return err
		}
		_, doneCount, cerr := st.Completed()
		if cerr != nil {
			return cerr
		}
		fmt.Printf("shard %d/%d: ran %d units; %d/%d complete\n", *shard, *shards, ran, doneCount, st.Units())
		if interrupted {
			return fmt.Errorf("interrupted; everything recorded so far is kept — re-run to resume")
		}
		return nil
	}

	switch cmd {
	case "plan":
		if _, err := plan(); err != nil {
			return fail(err)
		}
	case "run":
		st, err := sweep.Open(*store)
		if err != nil {
			return fail(err)
		}
		if err := runShards(st); err != nil {
			return fail(err)
		}
	case "merge":
		st, err := sweep.Open(*store)
		if err != nil {
			return fail(err)
		}
		if err := st.Merge(); err != nil {
			return fail(err)
		}
		fmt.Printf("merged %d units into %s/columns\n", st.Units(), st.Dir())
	case "report":
		st, err := sweep.Open(*store)
		if err != nil {
			return fail(err)
		}
		if err := sweep.Render(os.Stdout, st); err != nil {
			return fail(err)
		}
	case "all":
		st, err := plan()
		if err != nil {
			return fail(err)
		}
		if err := runShards(st); err != nil {
			return fail(err)
		}
		if err := st.Merge(); err != nil {
			return fail(err)
		}
		if err := sweep.Render(os.Stdout, st); err != nil {
			return fail(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		flag.Usage()
		return 2
	}
	return 0
}

// spawnWorkers re-executes this binary as procs worker processes, one
// shard each, and waits for all of them. Workers share nothing but the
// store directory; each appends to its own chunk file, so a crashed or
// killed worker never corrupts another's output and the whole sweep can
// simply be re-run to resume. A cancelled ctx forwards SIGINT to every
// worker, which finishes its unit in flight and flushes before exiting.
func spawnWorkers(ctx context.Context, store string, procs, workers int, verbose bool) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	cmds := make([]*exec.Cmd, procs)
	for i := range cmds {
		args := []string{
			"-store", store,
			"-shards", fmt.Sprint(procs),
			"-shard", fmt.Sprint(i),
			"-workers", fmt.Sprint(workers),
		}
		if verbose {
			args = append(args, "-v")
		}
		args = append(args, "run")
		c := exec.Command(self, args...)
		c.Stdout = os.Stdout
		c.Stderr = os.Stderr
		if err := c.Start(); err != nil {
			// Don't leave already-started workers orphaned: a re-run would
			// race them on the same chunk files (and ShardWriter's
			// truncate-on-open could chop a record an orphan just wrote).
			for j := 0; j < i; j++ {
				cmds[j].Process.Kill()
				cmds[j].Wait()
			}
			return fmt.Errorf("worker %d: %w", i, err)
		}
		cmds[i] = c
	}
	stopForward := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			for _, c := range cmds {
				c.Process.Signal(os.Interrupt)
			}
		case <-stopForward:
		}
	}()
	var firstErr error
	for i, c := range cmds {
		if err := c.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %d: %w", i, err)
		}
	}
	close(stopForward)
	if ctx.Err() != nil && firstErr != nil {
		return fmt.Errorf("interrupted; everything recorded so far is kept — re-run to resume")
	}
	return firstErr
}
