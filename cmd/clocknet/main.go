// Command clocknet runs a whole networked clock-sync cluster in one
// process — n event-loop nodes over a real transport (in-process
// channels, loopback UDP or loopback TCP) with transport-level fault
// injection — and reports whether the cluster converged. It is the
// interactive and CI face of internal/noderuntime: the chaos smoke runs
// it under -race with 30% loss, reordering and a partition/heal cycle
// and gates on the convergence verdict.
//
// Usage:
//
//	clocknet [-n 4] [-f -1] [-k 16] [-transport chan|udp|tcp]
//	         [-mode real|lockstep] [-adv passive|splitter|replayer]
//	         [-faults partition+reorder] [-fault-seed 7] [-loss 30]
//	         [-latency 2ms] [-beats 60] [-hold 8] [-seed 1]
//	         [-beat-timeout 250ms] [-metrics-addr ADDR] [-quiet]
//
// -metrics-addr serves the whole cluster's internal/obs registry
// (per-node runtime and faultnet series) on /metrics, with /healthz
// going 503 when no node delivers a beat for a while.
//
// Exit status 0 means the honest clocks agreed for -hold consecutive
// beats somewhere in the run (under faults the interesting streak is at
// the tail, after the partition heals); 1 means they never did.
// SIGINT/SIGTERM stop the cluster gracefully and still print the
// summary for the beats that ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/proto"
)

func main() {
	os.Exit(run())
}

type reading struct {
	val uint64
	ok  bool
}

func run() int {
	var (
		n           = flag.Int("n", 4, "cluster size")
		f           = flag.Int("f", -1, "fault tolerance (default floor((n-1)/3))")
		k           = flag.Uint64("k", 16, "clock modulus")
		transport   = flag.String("transport", "chan", "transport: chan | udp | tcp")
		mode        = flag.String("mode", "real", "mode: real (quorum+timeouts) | lockstep (engine-equivalent)")
		advName     = flag.String("adv", "passive", "adversary (lockstep only): passive | splitter | replayer")
		faults      = flag.String("faults", "", "fault schedule (faultnet.Parse syntax; empty = ideal network)")
		faultSeed   = flag.Uint64("fault-seed", 7, "schedule seed")
		loss        = flag.Int("loss", 0, "per-attempt loss %, retries beat it (real mode)")
		latency     = flag.Duration("latency", 0, "random extra delivery latency up to this (real mode)")
		beats       = flag.Int("beats", 60, "beats to run")
		hold        = flag.Int("hold", 8, "consecutive agreeing beats required for exit 0")
		seed        = flag.Int64("seed", 1, "run seed")
		beatTimeout = flag.Duration("beat-timeout", 250*time.Millisecond, "real-mode beat timeout")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /healthz on this address (empty = off)")
		quiet       = flag.Bool("quiet", false, "only print the summary")
	)
	flag.Parse()
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "clocknet:", err)
		return 2
	}
	ff := *f
	if ff < 0 {
		ff = (*n - 1) / 3
	}

	var tr net.Transport
	var err error
	switch *transport {
	case "chan":
		tr = nil // ClusterConfig default
	case "udp":
		tr, err = net.NewLoopbackUDP(*n, 0)
	case "tcp":
		tr, err = net.NewLoopbackTCPSeeded(*n, 0, *seed)
	default:
		err = fmt.Errorf("unknown transport %q", *transport)
	}
	if err != nil {
		return fail(err)
	}

	var md noderuntime.Mode
	switch *mode {
	case "real":
		md = noderuntime.Real
	case "lockstep":
		md = noderuntime.Lockstep
	default:
		return fail(fmt.Errorf("unknown mode %q", *mode))
	}

	var newAdv func(*adversary.Context) adversary.Adversary
	switch *advName {
	case "passive":
	case "splitter":
		newAdv = func(ctx *adversary.Context) adversary.Adversary { return &adversary.ClockSplitter{Ctx: ctx} }
	case "replayer":
		newAdv = func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} }
	default:
		return fail(fmt.Errorf("unknown adversary %q", *advName))
	}

	var links faultnet.Schedule
	if *faults != "" && *faults != "none" {
		sched, err := faultnet.Parse(*faults)
		if err != nil {
			return fail(err)
		}
		sched.Seed = *faultSeed
		links = sched
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	var lastAdvance atomic.Int64
	lastAdvance.Store(time.Now().UnixNano())

	var mu sync.Mutex
	byBeat := map[uint64]map[int]reading{}
	cl, err := noderuntime.NewCluster(noderuntime.ClusterConfig{
		N: *n, F: ff, Seed: *seed, ScrambleStart: true,
		Mode:         md,
		Factory:      core.NewClockSyncProtocol(*k, coin.FMFactory{}),
		NewAdversary: newAdv,
		Links:        links,
		AttemptLossPct: func() int {
			if md == noderuntime.Real {
				return *loss
			}
			return 0
		}(),
		MaxLatency: *latency,
		Transport:  tr,
		MaxBeats:   uint64(*beats),
		Timing:     noderuntime.Timing{BeatTimeout: *beatTimeout},
		Metrics:    reg,
		OnBeat: func(id int, beat uint64, p proto.Protocol) {
			lastAdvance.Store(time.Now().UnixNano())
			var r reading
			if cr, ok := p.(proto.ClockReader); ok {
				r.val, r.ok = cr.Clock()
			}
			mu.Lock()
			m := byBeat[beat]
			if m == nil {
				m = make(map[int]reading)
				byBeat[beat] = m
			}
			m[id] = r
			mu.Unlock()
		},
	})
	if err != nil {
		return fail(err)
	}

	if reg != nil {
		stall := 5 * *beatTimeout
		if stall < 2*time.Second {
			stall = 2 * time.Second
		}
		srv, bound, serr := obs.Serve(*metricsAddr, reg, func() bool {
			return time.Since(time.Unix(0, lastAdvance.Load())) < stall
		})
		if serr != nil {
			return fail(serr)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", bound)
	}

	fmt.Printf("clocknet n=%d f=%d k=%d transport=%s mode=%s adv=%s faults=%q loss=%d%% beats=%d seed=%d\n",
		*n, ff, *k, *transport, *mode, *advName, *faults, *loss, *beats, *seed)
	cl.Start()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	donec := make(chan struct{})
	go func() { cl.Wait(); close(donec) }()
	select {
	case <-sigc:
		fmt.Println("signal: stopping the cluster")
	case <-donec:
	}
	signal.Stop(sigc)
	cl.Stop()

	honest := len(cl.HonestIDs())
	streak, bestStart := agreeStreak(byBeat, honest)
	if !*quiet {
		printTrajectory(byBeat, *n)
	}
	st := cl.Stats()
	fmt.Printf("injected faults: dropped=%d duplicated=%d delayed=%d attempt-lost=%d\n",
		st.Dropped, st.Duplicated, st.Delayed, st.AttemptLost)
	if streak >= *hold {
		fmt.Printf("CONVERGED: %d consecutive agreeing beats (>= %d) starting at beat %d\n",
			streak, *hold, bestStart)
		return 0
	}
	fmt.Printf("NOT CONVERGED: best agreement streak %d beats (< %d)\n", streak, *hold)
	return 1
}

// agreeStreak finds the longest run of consecutive beats in which every
// honest node recorded the same defined clock, and where it starts.
func agreeStreak(byBeat map[uint64]map[int]reading, honest int) (best int, bestStart uint64) {
	if len(byBeat) == 0 {
		return 0, 0
	}
	var max uint64
	for b := range byBeat {
		if b > max {
			max = b
		}
	}
	cur, curStart := 0, uint64(0)
	for b := uint64(0); b <= max; b++ {
		m := byBeat[b]
		agreed := len(m) >= honest
		var ref reading
		first := true
		for _, r := range m {
			if !r.ok {
				agreed = false
				break
			}
			if first {
				ref, first = r, false
			} else if r != ref {
				agreed = false
				break
			}
		}
		if !agreed {
			cur = 0
			continue
		}
		if cur == 0 {
			curStart = b
		}
		cur++
		if cur > best {
			best, bestStart = cur, curStart
		}
	}
	return best, bestStart
}

// printTrajectory prints the recorded clocks beat by beat, one column
// per node id, ⊥ for undefined and · for beats a node skipped.
func printTrajectory(byBeat map[uint64]map[int]reading, n int) {
	beats := make([]uint64, 0, len(byBeat))
	for b := range byBeat {
		beats = append(beats, b)
	}
	sort.Slice(beats, func(i, j int) bool { return beats[i] < beats[j] })
	for _, b := range beats {
		m := byBeat[b]
		fmt.Printf("%4d ", b)
		for id := 0; id < n; id++ {
			r, seen := m[id]
			switch {
			case !seen:
				fmt.Print("   ·")
			case !r.ok:
				fmt.Print("   ⊥")
			default:
				fmt.Printf(" %3d", r.val)
			}
		}
		fmt.Println()
	}
}
