// Command repro regenerates every experiment in the reproduction
// (DESIGN.md §5): the paper's Table 1 and the empirical validation of
// Figures 1-4, plus the ablations. Outputs are plain-text tables; the
// recorded copies live in EXPERIMENTS.md.
//
// Usage:
//
//	repro [-runs N] [-quick] [-store DIR] <experiment|all>
//
// Experiments: table1 coin twoclock fourclock clocksync ablation-rand
// resilience msgcomplexity ablation-coin selfstab sweep all
//
// The "sweep" experiment does not re-run anything: it reads a completed
// (merged) columnar store produced by cmd/sweep from -store DIR and
// prints its aggregates — the sweep-backed path for grids too large for
// the in-process loop (large n, many seeds, adversary × layout grids).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssbyzclock/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	runs := flag.Int("runs", 0, "seeds per configuration (0 = experiment default)")
	quick := flag.Bool("quick", false, "smaller budgets for a fast smoke pass")
	store := flag.String("store", "", "completed cmd/sweep store directory (for the sweep experiment)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [-runs N] [-quick] <experiment|all>\nexperiments: %s\n",
			strings.Join(names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	p := experiments.Params{Runs: *runs}
	if *quick {
		if p.Runs == 0 {
			p.Runs = 3
		}
		p.MaxBeats = 4000
		p.Hold = 8
	}
	target := flag.Arg(0)
	if target == "sweep" {
		if *store == "" {
			fmt.Fprintln(os.Stderr, "the sweep experiment reads a cmd/sweep store: repro -store DIR sweep")
			return 2
		}
		if err := experiments.ReportStore(os.Stdout, *store); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return 1
		}
		return 0
	}
	ran := false
	for _, e := range registry() {
		if target == "all" || target == e.name {
			e.fn(p)
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", target)
		flag.Usage()
		return 2
	}
	return 0
}

type entry struct {
	name string
	fn   func(experiments.Params)
}

func registry() []entry {
	w := os.Stdout
	return []entry{
		{"table1", func(p experiments.Params) { experiments.Table1(w, p) }},
		{"coin", func(p experiments.Params) { experiments.CoinQuality(w, p) }},
		{"twoclock", func(p experiments.Params) { experiments.TwoClock(w, p) }},
		{"fourclock", func(p experiments.Params) { experiments.FourClock(w, p) }},
		{"clocksync", func(p experiments.Params) { experiments.ClockSync(w, p) }},
		{"ablation-rand", func(p experiments.Params) { experiments.AblationRand(w, p) }},
		{"resilience", func(p experiments.Params) { experiments.Resilience(w, p) }},
		{"msgcomplexity", func(p experiments.Params) { experiments.MsgComplexity(w, p) }},
		{"ablation-coin", func(p experiments.Params) { experiments.AblationCoin(w, p) }},
		{"powerclock", func(p experiments.Params) { experiments.PowerVsSync(w, p) }},
		{"dw-adapted", func(p experiments.Params) { experiments.DWAdaptation(w, p) }},
		{"selfstab", func(p experiments.Params) { experiments.SelfStab(w, p) }},
	}
}

func names() []string {
	out := []string{"all"}
	for _, e := range registry() {
		out = append(out, e.name)
	}
	return append(out, "sweep")
}
