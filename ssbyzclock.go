// Package ssbyzclock is a self-stabilizing, Byzantine-tolerant digital
// clock synchronization library, implementing Ben-Or, Dolev & Hoch,
// "Fast Self-Stabilizing Byzantine Tolerant Digital Clock
// Synchronization" (PODC 2008).
//
// A cluster of n nodes, up to f < n/3 of them Byzantine, driven by a
// common beat signal, agrees on a clock value in [0, k) that increments
// by one every beat — converging from *any* initial state (arbitrary
// memory corruption, stale network buffers) in expected constant time.
//
// Three levels of API:
//
//   - Node: a single protocol participant with a byte-oriented message
//     interface, ready to be wired to any transport that can deliver all
//     of a beat's messages before the next beat.
//   - Cluster: an in-process deployment of n nodes on goroutines with a
//     built-in beat system and optional Byzantine adversary — the
//     quickest way to see the protocol run.
//   - The experiment harness behind `go test -bench` and cmd/repro,
//     which reproduces the paper's Table 1 and validates Figures 1-4.
//
// The underlying common coin is a Feldman–Micali-style protocol over
// graded verifiable secret sharing (CoinFM); a trusted-beacon coin
// (CoinRabin) and a deliberately non-common local coin (CoinLocal) are
// available for experiments. See DESIGN.md for substitution notes.
package ssbyzclock

import (
	"errors"
	"fmt"
	"math/rand"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/runtime"
	"ssbyzclock/internal/wire"
)

// CoinKind selects the common-coin implementation.
type CoinKind int

// Coin kinds. CoinFM is the paper's setting and the default.
const (
	// CoinFM is the Feldman–Micali-style GVSS coin: no setup assumptions,
	// f < n/3, constant agreement probability. Δ_A = 5 rounds.
	CoinFM CoinKind = iota
	// CoinRabin is an idealized predistributed beacon (always agrees).
	// It relies on shared initialization — exactly what the paper's
	// footnote 1 rules out for the headline result — but is fast and
	// handy for large-n experiments.
	CoinRabin
	// CoinLocal is independent per-node randomness: NOT a common coin.
	// With it the clock degrades to Dolev–Welch-style exponential
	// convergence; provided for the E9 ablation.
	CoinLocal
)

func (k CoinKind) String() string {
	switch k {
	case CoinFM:
		return "fm"
	case CoinRabin:
		return "rabin"
	case CoinLocal:
		return "local"
	default:
		return fmt.Sprintf("coin(%d)", int(k))
	}
}

// Layout selects how the clock stack wires its sub-protocols to
// ss-Byz-Coin-Flip pipelines. Both layouts implement the same theorems;
// the differential harness in internal/core holds them equivalent under
// the full adversary suite.
type Layout int

// Coin-pipeline layouts. LayoutShared is the default.
const (
	// LayoutShared runs ONE coin pipeline per node, shared by the stack's
	// three consumers via derived per-consumer bits (the paper's Remark
	// 4.1) — about half the messages and a third of the coin cost of the
	// paper layout.
	LayoutShared Layout = iota
	// LayoutPaper runs one pipeline per consumer, the literal layout of
	// the paper's Figures 2-4.
	LayoutPaper
)

func (l Layout) String() string {
	switch l {
	case LayoutShared:
		return "shared"
	case LayoutPaper:
		return "paper"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Config describes one clock-synchronization deployment.
type Config struct {
	// N is the cluster size; F the tolerated Byzantine count. The
	// protocol requires F < N/3.
	N, F int
	// K is the clock modulus (Definition 3.2's k). Zero means 64.
	K uint64
	// Coin selects the common-coin implementation (default CoinFM).
	Coin CoinKind
	// Layout selects the coin-pipeline layout (default LayoutShared).
	Layout Layout
	// Seed drives all node randomness; runs with equal seeds replay
	// exactly in simulation.
	Seed int64
}

// normalize applies defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.K == 0 {
		c.K = 64
	}
	if c.N <= 0 {
		return c, errors.New("ssbyzclock: N must be positive")
	}
	if c.F < 0 || 3*c.F >= c.N {
		return c, fmt.Errorf("ssbyzclock: need F < N/3, got N=%d F=%d", c.N, c.F)
	}
	if c.Layout != LayoutShared && c.Layout != LayoutPaper {
		return c, fmt.Errorf("ssbyzclock: unknown layout %v", c.Layout)
	}
	return c, nil
}

func (c Config) coreLayout() core.Layout {
	if c.Layout == LayoutPaper {
		return core.LayoutPaper
	}
	return core.LayoutShared
}

func (c Config) coinFactory() coin.Factory {
	switch c.Coin {
	case CoinRabin:
		return coin.RabinFactory{Seed: c.Seed}
	case CoinLocal:
		return coin.LocalFactory{}
	default:
		return coin.FMFactory{}
	}
}

// OutMessage is a message a Node wants delivered this beat. To is a node
// id, or BroadcastTo for all nodes. Data must reach the recipient before
// the next beat (the paper's synchrony assumption).
type OutMessage struct {
	To   int
	Data []byte
}

// BroadcastTo addresses an OutMessage to every node (self included).
const BroadcastTo = proto.Broadcast

// InMessage is a message received during the current beat. From must be
// the authenticated sender id: the model assumes sender identities cannot
// be forged (Definition 2.2), so transports must provide that property.
type InMessage struct {
	From int
	Data []byte
}

// Node is one protocol participant, transport-agnostic: call BeginBeat on
// every beat signal, deliver its messages, collect the beat's incoming
// messages, then call EndBeat. Clock is valid between beats.
//
// Node is not safe for concurrent use; drive it from one goroutine.
type Node struct {
	id   int
	prot *core.ClockSync
}

// NewNode builds participant id (0 <= id < cfg.N).
func NewNode(cfg Config, id int) (*Node, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if id < 0 || id >= cfg.N {
		return nil, fmt.Errorf("ssbyzclock: id %d out of range [0,%d)", id, cfg.N)
	}
	env := proto.Env{
		N: cfg.N, F: cfg.F, ID: id,
		Rng: rand.New(rand.NewSource(cfg.Seed + int64(id)*1_000_003)),
	}
	return &Node{id: id, prot: core.NewClockSyncLayout(env, cfg.K, cfg.coinFactory(), false, cfg.coreLayout())}, nil
}

// BeginBeat must be called exactly once per beat signal, with the beat
// number from the beat source; it returns the wire-encoded messages to
// send this beat.
func (n *Node) BeginBeat(beat uint64) ([]OutMessage, error) {
	sends := n.prot.Compose(beat)
	out := make([]OutMessage, 0, len(sends))
	for _, s := range sends {
		data, err := wire.Encode(s.Msg)
		if err != nil {
			return nil, fmt.Errorf("ssbyzclock: encode: %w", err)
		}
		out = append(out, OutMessage{To: s.To, Data: data})
	}
	return out, nil
}

// EndBeat must be called once all of the beat's messages have arrived.
// Undecodable messages are ignored (only faulty peers produce them).
func (n *Node) EndBeat(beat uint64, inbox []InMessage) {
	recvs := make([]proto.Recv, 0, len(inbox))
	for _, im := range inbox {
		m, err := wire.Decode(im.Data)
		if err != nil {
			continue
		}
		recvs = append(recvs, proto.Recv{From: im.From, Msg: m})
	}
	n.prot.Deliver(beat, recvs)
}

// Clock returns the node's current clock value in [0, K). Whether the
// cluster is synchronized is a global property: self-stabilization rules
// out a reliable local "converged" flag, so ok here only reports that the
// value is well-defined (always true for the full clock).
func (n *Node) Clock() (value uint64, ok bool) { return n.prot.Clock() }

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// RandomBit returns the node's current common random bit — the output of
// the underlying self-stabilizing coin-flipping pipeline (ss-Byz-Coin-
// Flip, Figure 1), one fresh bit per beat with constant probability of
// being common to all honest nodes. Per the paper's Section 6.1, the
// adversary also sees this bit in the beat it is produced, so protocols
// built on it must only use it to choose between states committed in the
// previous beat.
func (n *Node) RandomBit() byte { return n.prot.RandBit() }

// AdversaryKind selects a built-in Byzantine strategy for Cluster runs.
type AdversaryKind int

// Built-in adversaries, from benign to protocol-aware.
const (
	// AdvPassive: faulty nodes follow the protocol.
	AdvPassive AdversaryKind = iota
	// AdvSilent: faulty nodes crash (send nothing).
	AdvSilent
	// AdvSplitter: rushing, equivocating attack on the clock layer.
	AdvSplitter
	// AdvGradeSplitter: equivocating attack on the coin's grades.
	AdvGradeSplitter
)

func (k AdversaryKind) String() string {
	switch k {
	case AdvPassive:
		return "passive"
	case AdvSilent:
		return "silent"
	case AdvSplitter:
		return "splitter"
	case AdvGradeSplitter:
		return "grade-splitter"
	default:
		return fmt.Sprintf("adv(%d)", int(k))
	}
}

func (k AdversaryKind) build() func(ctx *adversary.Context) adversary.Adversary {
	switch k {
	case AdvSilent:
		return func(*adversary.Context) adversary.Adversary { return adversary.Silent{} }
	case AdvSplitter:
		return func(ctx *adversary.Context) adversary.Adversary { return &adversary.ClockSplitter{Ctx: ctx} }
	case AdvGradeSplitter:
		return func(ctx *adversary.Context) adversary.Adversary { return &adversary.GradeSplitter{Ctx: ctx} }
	default:
		return nil
	}
}

// ClusterOptions configures NewCluster beyond the protocol Config.
type ClusterOptions struct {
	// Adversary controls the last Config.F nodes (default AdvPassive).
	Adversary AdversaryKind
	// ScrambleStart starts every honest node from an arbitrary state, as
	// after a transient fault. Recommended: a fresh cluster is otherwise
	// trivially synchronized.
	ScrambleStart bool
}

// Cluster is an in-process deployment: n nodes on goroutines, a built-in
// global beat system, wire-serialized traffic, and an optional Byzantine
// adversary. Always Close it.
type Cluster struct {
	inner *runtime.Cluster
	cfg   Config
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config, opts ClusterOptions) (*Cluster, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	rc, err := runtime.New(runtime.Config{
		N: cfg.N, F: cfg.F, Seed: cfg.Seed,
		NewProtocol:   core.NewClockSyncProtocolLayout(cfg.K, cfg.coinFactory(), cfg.coreLayout()),
		NewAdversary:  opts.Adversary.build(),
		ScrambleStart: opts.ScrambleStart,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: rc, cfg: cfg}, nil
}

// BeatResult reports the cluster state after one beat.
type BeatResult struct {
	Beat uint64
	// Clocks holds every node's clock (honest nodes first; the last F
	// entries are the adversary's bookkeeping copies).
	Clocks []uint64
	// Synced reports whether all honest nodes agree, and on what.
	Synced bool
	Value  uint64
}

// Step executes one beat.
func (c *Cluster) Step() (BeatResult, error) {
	snap, err := c.inner.Step()
	if err != nil {
		return BeatResult{}, err
	}
	res := BeatResult{Beat: snap.Beat, Clocks: make([]uint64, len(snap.Clocks))}
	for i, cr := range snap.Clocks {
		res.Clocks[i] = cr.Value
	}
	res.Value, res.Synced = snap.SyncedHonest(c.cfg.F)
	return res, nil
}

// RunUntilSynced steps until the honest clocks have been synchronized and
// incrementing for hold consecutive beats, or maxBeats elapse. It returns
// the number of beats executed and whether synchronization was reached.
func (c *Cluster) RunUntilSynced(maxBeats, hold int) (int, bool, error) {
	streak := 0
	var prev uint64
	havePrev := false
	for b := 1; b <= maxBeats; b++ {
		res, err := c.Step()
		if err != nil {
			return b, false, err
		}
		if res.Synced && (!havePrev || res.Value == (prev+1)%c.cfg.K) {
			streak++
		} else {
			streak = 0
		}
		prev, havePrev = res.Value, res.Synced
		if streak >= hold {
			return b, true, nil
		}
	}
	return maxBeats, false, nil
}

// ScrambleHonest injects a transient fault into every honest node's
// memory; the protocol must re-converge within expected constant beats.
func (c *Cluster) ScrambleHonest(seed int64) { c.inner.ScrambleHonest(seed) }

// Close stops all node goroutines.
func (c *Cluster) Close() { c.inner.Close() }
