module ssbyzclock

go 1.22
