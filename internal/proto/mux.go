package proto

// Env wrapping for protocol composition: a parent protocol that embeds
// child protocols (e.g. ss-Byz-4-Clock embeds two ss-Byz-2-Clock
// instances, each of which embeds a coin pipeline) wraps each child's
// messages in an Envelope tagged with the child's index, and routes
// delivered envelopes back to the matching child. Tags are small constants
// fixed in the code, so routing is self-stabilizing: no routing state can
// be corrupted by a transient fault.

// SharedCoinChild is the reserved envelope child tag under which a clock
// stack's root protocol carries the shared ss-Byz-Coin-Flip pipeline's
// traffic (Remark 4.1's layout; see coin.SharedPipeline). The value is a
// fixed constant above every root protocol's own child tags (ClockSync
// uses 0-2, FourClock/PowerClock 0-1, TwoClock 0-1), so the same tag
// works at any stack root, and — like all child tags — it is code, not
// state: a transient fault cannot corrupt the routing. Sub-protocols
// never use the tag; their splitters drop it as out of range, exactly
// like any other foreign traffic.
const SharedCoinChild uint8 = 3

// Envelope wraps a child protocol's message with the child's index within
// its parent. Byzantine senders may use arbitrary child indices; routers
// must drop unknown ones.
type Envelope struct {
	Child uint8
	Inner Message
}

// Kind implements Message.
func (e Envelope) Kind() string { return "env" }

// AsEnvelope reports whether m is an envelope, accepting both the value
// form (hand-built in tests and by adversaries) and the pointer form
// (produced by WrapSends, which boxes one backing array instead of one
// heap copy per message). All envelope consumers must go through this
// helper.
func AsEnvelope(m Message) (Envelope, bool) {
	switch v := m.(type) {
	case Envelope:
		return v, true
	case *Envelope:
		return *v, true
	}
	return Envelope{}, false
}

// SendArena recycles envelope boxes and send slices across beats for a
// protocol that wraps child traffic every Compose. Under the message-
// lifetime contract an envelope is dead once its beat's Deliver phase
// completes, so the arena simply reuses its backing from the start of
// the owner's next Compose — wrapping becomes allocation-free at steady
// state. One arena per protocol instance, reset at the top of Compose;
// not safe for concurrent use (per-node protocols never are).
type SendArena struct {
	envs []Envelope
	used int
}

// Reset starts a new beat: every envelope handed out since the previous
// Reset may be overwritten. Call only from the owner's Compose, when the
// previous beat's messages are dead.
func (a *SendArena) Reset() { a.used = 0 }

// alloc returns the next reusable envelope box. Growth appends to the
// arena; boxes handed out before a growth keep pointing into the old
// backing array, which stays valid for the rest of the beat.
func (a *SendArena) alloc() *Envelope {
	if a.used == len(a.envs) {
		a.envs = append(a.envs, Envelope{})
	}
	e := &a.envs[a.used]
	a.used++
	return e
}

// Wrap appends sends to dst with each message wrapped under child,
// boxing the envelopes from the arena.
func (a *SendArena) Wrap(child uint8, sends []Send, dst []Send) []Send {
	for _, s := range sends {
		e := a.alloc()
		*e = Envelope{Child: child, Inner: s.Msg}
		dst = append(dst, Send{To: s.To, Msg: e})
	}
	return dst
}

// Box returns a single send wrapping m under child.
func (a *SendArena) Box(child uint8, to int, m Message) Send {
	e := a.alloc()
	*e = Envelope{Child: child, Inner: m}
	return Send{To: to, Msg: e}
}

// WrapSends wraps every message in sends with the given child tag. The
// envelopes are sliced out of one backing array, so wrapping costs two
// allocations regardless of fan-out; recipients must unwrap with
// AsEnvelope. Hot per-beat paths use a SendArena instead, which also
// recycles the envelope boxes across beats.
func WrapSends(child uint8, sends []Send) []Send {
	if len(sends) == 0 {
		return nil
	}
	envs := make([]Envelope, len(sends))
	out := make([]Send, len(sends))
	for i, s := range sends {
		envs[i] = Envelope{Child: child, Inner: s.Msg}
		out[i] = Send{To: s.To, Msg: &envs[i]}
	}
	return out
}

// SplitInbox routes enveloped messages into per-child inboxes covering
// children [0, numChildren). Messages that are not envelopes or carry an
// out-of-range child tag are dropped: only Byzantine nodes produce them,
// and dropping is the safe interpretation.
//
// Two passes keep it at three allocations: a counting pass sizes one flat
// backing array, and the routing pass partitions it into per-child
// windows (full-capacity slices, so a child's inbox cannot grow into its
// neighbor's).
func SplitInbox(inbox []Recv, numChildren int) [][]Recv {
	var s InboxSplitter
	return s.Split(inbox, numChildren)
}

// InboxSplitter is SplitInbox with reusable backing buffers: a parent
// protocol that splits an inbox every beat holds one and amortizes the
// three allocations away. The returned inboxes (and the Recv entries
// behind them) are valid only until the next Split call, which is exactly
// the lifetime the Protocol.Deliver contract grants an inbox; splitters
// must not be shared across protocol instances that may run on different
// goroutines (each node holds its own).
type InboxSplitter struct {
	out    [][]Recv
	counts []int
	flat   []Recv
}

// Split routes enveloped messages into per-child inboxes covering
// children [0, numChildren); see SplitInbox.
func (s *InboxSplitter) Split(inbox []Recv, numChildren int) [][]Recv {
	if cap(s.out) < numChildren {
		s.out = make([][]Recv, numChildren)
		s.counts = make([]int, numChildren)
	}
	out := s.out[:numChildren]
	counts := s.counts[:numChildren]
	for c := range counts {
		counts[c] = 0
	}
	total := 0
	for _, r := range inbox {
		if env, ok := AsEnvelope(r.Msg); ok && int(env.Child) < numChildren {
			counts[env.Child]++
			total++
		}
	}
	if cap(s.flat) < total {
		s.flat = make([]Recv, total)
	}
	flat := s.flat[:total]
	off := 0
	for c, cnt := range counts {
		out[c] = flat[off : off : off+cnt]
		off += cnt
	}
	for _, r := range inbox {
		if env, ok := AsEnvelope(r.Msg); ok && int(env.Child) < numChildren {
			out[env.Child] = append(out[env.Child], Recv{From: r.From, Msg: env.Inner})
		}
	}
	return out
}
