package proto

import "sync"

// Env wrapping for protocol composition: a parent protocol that embeds
// child protocols (e.g. ss-Byz-4-Clock embeds two ss-Byz-2-Clock
// instances, each of which embeds a coin pipeline) wraps each child's
// messages in an Envelope tagged with the child's index, and routes
// delivered envelopes back to the matching child. Tags are small constants
// fixed in the code, so routing is self-stabilizing: no routing state can
// be corrupted by a transient fault.

// SharedCoinChild is the reserved envelope child tag under which a clock
// stack's root protocol carries the shared ss-Byz-Coin-Flip pipeline's
// traffic (Remark 4.1's layout; see coin.SharedPipeline). The value is a
// fixed constant above every root protocol's own child tags (ClockSync
// uses 0-2, FourClock/PowerClock 0-1, TwoClock 0-1), so the same tag
// works at any stack root, and — like all child tags — it is code, not
// state: a transient fault cannot corrupt the routing. Sub-protocols
// never use the tag; their splitters drop it as out of range, exactly
// like any other foreign traffic.
const SharedCoinChild uint8 = 3

// Envelope wraps a child protocol's message with the child's index within
// its parent. Byzantine senders may use arbitrary child indices; routers
// must drop unknown ones.
type Envelope struct {
	Child uint8
	Inner Message
}

// Kind implements Message.
func (e Envelope) Kind() string { return "env" }

// AsEnvelope reports whether m is an envelope, accepting both the value
// form (hand-built in tests and by adversaries) and the pointer form
// (produced by WrapSends, which boxes one backing array instead of one
// heap copy per message). All envelope consumers must go through this
// helper.
func AsEnvelope(m Message) (Envelope, bool) {
	switch v := m.(type) {
	case Envelope:
		return v, true
	case *Envelope:
		return *v, true
	}
	return Envelope{}, false
}

// BeatEnder is an optional protocol extension: the engine (and the
// networked runtime's event loop) calls EndBeat once per beat, after
// the Deliver phase, when every message of the beat is dead. Protocols
// use it to hand per-beat backing — envelope arenas, splitter slabs,
// compose buffers — back to process-wide pools, so an idle resident
// node holds no per-beat memory at all. Purely an optimization hook:
// correctness never depends on it being called.
type BeatEnder interface{ EndBeat() }

// envSlab is a SendArena's poolable backing. Pooled as a pointer so
// returning it to the sync.Pool does not allocate an interface box.
type envSlab struct{ envs []Envelope }

var envSlabPool sync.Pool

// SendArena recycles envelope boxes and send slices across beats for a
// protocol that wraps child traffic every Compose. Under the message-
// lifetime contract an envelope is dead once its beat's Deliver phase
// completes, so the arena simply reuses its backing from the start of
// the owner's next Compose — wrapping becomes allocation-free at steady
// state. One arena per protocol instance, reset at the top of Compose;
// not safe for concurrent use (per-node protocols never are). Owners
// that implement BeatEnder call Release there, parking the backing in a
// process pool between beats so resident idle protocols hold none.
type SendArena struct {
	slab *envSlab
	used int
}

// Reset starts a new beat: every envelope handed out since the previous
// Reset may be overwritten. Call only from the owner's Compose, when the
// previous beat's messages are dead.
func (a *SendArena) Reset() { a.used = 0 }

// Release parks the arena's backing in the process pool until the next
// alloc. Call only when the current beat's messages are dead (the
// EndBeat hook); the envelopes' message references are dropped so a
// parked slab pins nothing.
func (a *SendArena) Release() {
	if a.slab == nil {
		return
	}
	clear(a.slab.envs)
	envSlabPool.Put(a.slab)
	a.slab = nil
	a.used = 0
}

// alloc returns the next reusable envelope box. Growth appends to the
// arena; boxes handed out before a growth keep pointing into the old
// backing array, which stays valid for the rest of the beat.
func (a *SendArena) alloc() *Envelope {
	if a.slab == nil {
		if v, ok := envSlabPool.Get().(*envSlab); ok {
			a.slab = v
		} else {
			a.slab = &envSlab{}
		}
	}
	if a.used == len(a.slab.envs) {
		a.slab.envs = append(a.slab.envs, Envelope{})
	}
	e := &a.slab.envs[a.used]
	a.used++
	return e
}

// Wrap appends sends to dst with each message wrapped under child,
// boxing the envelopes from the arena.
func (a *SendArena) Wrap(child uint8, sends []Send, dst []Send) []Send {
	for _, s := range sends {
		e := a.alloc()
		*e = Envelope{Child: child, Inner: s.Msg}
		dst = append(dst, Send{To: s.To, Msg: e})
	}
	return dst
}

// Box returns a single send wrapping m under child.
func (a *SendArena) Box(child uint8, to int, m Message) Send {
	e := a.alloc()
	*e = Envelope{Child: child, Inner: m}
	return Send{To: to, Msg: e}
}

// WrapSends wraps every message in sends with the given child tag. The
// envelopes are sliced out of one backing array, so wrapping costs two
// allocations regardless of fan-out; recipients must unwrap with
// AsEnvelope. Hot per-beat paths use a SendArena instead, which also
// recycles the envelope boxes across beats.
func WrapSends(child uint8, sends []Send) []Send {
	if len(sends) == 0 {
		return nil
	}
	envs := make([]Envelope, len(sends))
	out := make([]Send, len(sends))
	for i, s := range sends {
		envs[i] = Envelope{Child: child, Inner: s.Msg}
		out[i] = Send{To: s.To, Msg: &envs[i]}
	}
	return out
}

// SplitInbox routes enveloped messages into per-child inboxes covering
// children [0, numChildren). Messages that are not envelopes or carry an
// out-of-range child tag are dropped: only Byzantine nodes produce them,
// and dropping is the safe interpretation.
//
// Two passes keep it at three allocations: a counting pass sizes one flat
// backing array, and the routing pass partitions it into per-child
// windows (full-capacity slices, so a child's inbox cannot grow into its
// neighbor's).
func SplitInbox(inbox []Recv, numChildren int) [][]Recv {
	var s InboxSplitter
	return s.Split(inbox, numChildren)
}

// splitSlab is an InboxSplitter's poolable backing (see envSlab).
type splitSlab struct {
	out    [][]Recv
	counts []int
	flat   []Recv
}

var splitSlabPool sync.Pool

// InboxSplitter is SplitInbox with reusable backing buffers: a parent
// protocol that splits an inbox every beat holds one and amortizes the
// three allocations away. The returned inboxes (and the Recv entries
// behind them) are valid only until the next Split call, which is exactly
// the lifetime the Protocol.Deliver contract grants an inbox; splitters
// must not be shared across protocol instances that may run on different
// goroutines (each node holds its own). Owners that implement BeatEnder
// call Release there to park the backing between beats.
type InboxSplitter struct {
	slab *splitSlab
}

// Release parks the splitter's backing in the process pool until the
// next Split. Call only once the most recent Split's inboxes are dead
// (the EndBeat hook); the buffered message references are dropped so a
// parked slab pins nothing.
func (s *InboxSplitter) Release() {
	if s.slab == nil {
		return
	}
	clear(s.slab.flat[:cap(s.slab.flat)])
	clear(s.slab.out[:cap(s.slab.out)])
	splitSlabPool.Put(s.slab)
	s.slab = nil
}

// Split routes enveloped messages into per-child inboxes covering
// children [0, numChildren); see SplitInbox.
func (s *InboxSplitter) Split(inbox []Recv, numChildren int) [][]Recv {
	if s.slab == nil {
		if v, ok := splitSlabPool.Get().(*splitSlab); ok {
			s.slab = v
		} else {
			s.slab = &splitSlab{}
		}
	}
	b := s.slab
	if cap(b.out) < numChildren {
		b.out = make([][]Recv, numChildren)
		b.counts = make([]int, numChildren)
	}
	out := b.out[:numChildren]
	counts := b.counts[:numChildren]
	for c := range counts {
		counts[c] = 0
	}
	total := 0
	for _, r := range inbox {
		if env, ok := AsEnvelope(r.Msg); ok && int(env.Child) < numChildren {
			counts[env.Child]++
			total++
		}
	}
	if cap(b.flat) < total {
		b.flat = make([]Recv, total)
	}
	flat := b.flat[:total]
	off := 0
	for c, cnt := range counts {
		out[c] = flat[off : off : off+cnt]
		off += cnt
	}
	for _, r := range inbox {
		if env, ok := AsEnvelope(r.Msg); ok && int(env.Child) < numChildren {
			out[env.Child] = append(out[env.Child], Recv{From: r.From, Msg: env.Inner})
		}
	}
	return out
}

// sendSlab is a SendBuf's poolable backing (see envSlab).
type sendSlab struct{ s []Send }

var sendSlabPool sync.Pool

// SendBuf is a pooled compose buffer: the []Send a protocol's Compose
// appends its outgoing messages into. Take hands out the (empty)
// buffer, Keep stores the final slice back (append may have regrown
// it), and Release parks the backing in a process pool between beats.
// Zero value ready; not safe for concurrent use.
type SendBuf struct {
	slab *sendSlab
}

// Take returns the empty compose buffer for this beat, acquiring pooled
// backing on first use after a Release.
func (b *SendBuf) Take() []Send {
	if b.slab == nil {
		if v, ok := sendSlabPool.Get().(*sendSlab); ok {
			b.slab = v
		} else {
			b.slab = &sendSlab{}
		}
	}
	return b.slab.s[:0]
}

// Keep records the composed slice so its (possibly regrown) backing is
// what Release parks and the next Take reuses.
func (b *SendBuf) Keep(s []Send) {
	if b.slab != nil {
		b.slab.s = s
	}
}

// Release parks the buffer's backing until the next Take; call only
// when the beat's messages are dead (the EndBeat hook).
func (b *SendBuf) Release() {
	if b.slab == nil {
		return
	}
	clear(b.slab.s[:cap(b.slab.s)])
	sendSlabPool.Put(b.slab)
	b.slab = nil
}
