package proto

// Env wrapping for protocol composition: a parent protocol that embeds
// child protocols (e.g. ss-Byz-4-Clock embeds two ss-Byz-2-Clock
// instances, each of which embeds a coin pipeline) wraps each child's
// messages in an Envelope tagged with the child's index, and routes
// delivered envelopes back to the matching child. Tags are small constants
// fixed in the code, so routing is self-stabilizing: no routing state can
// be corrupted by a transient fault.

// Envelope wraps a child protocol's message with the child's index within
// its parent. Byzantine senders may use arbitrary child indices; routers
// must drop unknown ones.
type Envelope struct {
	Child uint8
	Inner Message
}

// Kind implements Message.
func (e Envelope) Kind() string { return "env" }

// WrapSends wraps every message in sends with the given child tag.
func WrapSends(child uint8, sends []Send) []Send {
	if len(sends) == 0 {
		return nil
	}
	out := make([]Send, len(sends))
	for i, s := range sends {
		out[i] = Send{To: s.To, Msg: Envelope{Child: child, Inner: s.Msg}}
	}
	return out
}

// SplitInbox routes enveloped messages into per-child inboxes covering
// children [0, numChildren). Messages that are not envelopes or carry an
// out-of-range child tag are dropped: only Byzantine nodes produce them,
// and dropping is the safe interpretation.
func SplitInbox(inbox []Recv, numChildren int) [][]Recv {
	out := make([][]Recv, numChildren)
	for _, r := range inbox {
		env, okEnv := r.Msg.(Envelope)
		if !okEnv || int(env.Child) >= numChildren {
			continue
		}
		out[env.Child] = append(out[env.Child], Recv{From: r.From, Msg: env.Inner})
	}
	return out
}
