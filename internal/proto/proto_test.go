package proto

import (
	"math/rand"
	"testing"
)

type fakeMsg struct{ id int }

func (fakeMsg) Kind() string { return "test.fake" }

func TestWrapSendsPreservesDestinations(t *testing.T) {
	in := []Send{
		{To: Broadcast, Msg: fakeMsg{1}},
		{To: 3, Msg: fakeMsg{2}},
	}
	out := WrapSends(7, in)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	for i, s := range out {
		env, ok := AsEnvelope(s.Msg)
		if !ok || env.Child != 7 {
			t.Fatalf("send %d not wrapped with child 7: %#v", i, s.Msg)
		}
		if s.To != in[i].To {
			t.Fatalf("destination changed: %d -> %d", in[i].To, s.To)
		}
		if env.Inner.(fakeMsg).id != in[i].Msg.(fakeMsg).id {
			t.Fatalf("payload changed")
		}
	}
}

func TestWrapSendsEmpty(t *testing.T) {
	if out := WrapSends(1, nil); out != nil {
		t.Fatalf("wrapping nil produced %v", out)
	}
}

func TestSplitInboxRoutes(t *testing.T) {
	inbox := []Recv{
		{From: 0, Msg: Envelope{Child: 0, Inner: fakeMsg{10}}},
		{From: 1, Msg: Envelope{Child: 2, Inner: fakeMsg{11}}},
		{From: 2, Msg: Envelope{Child: 1, Inner: fakeMsg{12}}},
		{From: 3, Msg: Envelope{Child: 2, Inner: fakeMsg{13}}},
	}
	boxes := SplitInbox(inbox, 3)
	if len(boxes[0]) != 1 || len(boxes[1]) != 1 || len(boxes[2]) != 2 {
		t.Fatalf("routing counts wrong: %d %d %d", len(boxes[0]), len(boxes[1]), len(boxes[2]))
	}
	if boxes[2][0].From != 1 || boxes[2][1].From != 3 {
		t.Fatalf("senders lost in routing")
	}
	if boxes[2][0].Msg.(fakeMsg).id != 11 {
		t.Fatalf("payload lost in routing")
	}
}

func TestSplitInboxDropsByzantineShapes(t *testing.T) {
	inbox := []Recv{
		{From: 0, Msg: fakeMsg{1}},                           // not an envelope
		{From: 1, Msg: Envelope{Child: 9, Inner: fakeMsg{}}}, // out-of-range child
		{From: 2, Msg: Envelope{Child: 1, Inner: fakeMsg{}}}, // valid
	}
	boxes := SplitInbox(inbox, 2)
	if len(boxes[0]) != 0 || len(boxes[1]) != 1 {
		t.Fatalf("invalid messages not dropped: %d %d", len(boxes[0]), len(boxes[1]))
	}
}

func TestEnvValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		env  Env
		want bool
	}{
		{Env{N: 4, F: 1, ID: 0, Rng: rng}, true},
		{Env{N: 4, F: 1, ID: 3, Rng: rng}, true},
		{Env{N: 4, F: 1, ID: 4, Rng: rng}, false},
		{Env{N: 4, F: 1, ID: -1, Rng: rng}, false},
		{Env{N: 0, F: 0, ID: 0, Rng: rng}, false},
		{Env{N: 4, F: -1, ID: 0, Rng: rng}, false},
		{Env{N: 4, F: 1, ID: 0, Rng: nil}, false},
	}
	for i, c := range cases {
		if got := c.env.Valid(); got != c.want {
			t.Errorf("case %d: Valid() = %v, want %v", i, got, c.want)
		}
	}
}

func TestQuorum(t *testing.T) {
	e := Env{N: 10, F: 3}
	if q := e.Quorum(); q != 7 {
		t.Fatalf("quorum = %d", q)
	}
}
