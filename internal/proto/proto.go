// Package proto defines the synchronous protocol model shared by every
// algorithm in this repository: beats, messages, the Compose/Deliver
// protocol interface, and envelopes for protocol composition.
//
// The model follows Ben-Or, Dolev, Hoch (PODC 2008), Section 2: nodes are
// fully connected, a global beat system delivers simultaneous beats, and
// every message sent at beat r is received before beat r+1. One beat is
// executed as
//
//  1. every honest node calls Compose(beat) to produce this beat's
//     outgoing messages from its current state,
//  2. the adversary picks the faulty nodes' messages (rushing: it may first
//     inspect honest messages addressed to faulty nodes),
//  3. every honest node calls Deliver(beat, inbox) with all messages sent
//     this beat and updates its state.
package proto

import (
	"math/rand"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/pool"
)

// Broadcast is the destination value meaning "send to every node,
// including the sender itself". The paper's "broadcast" is shorthand for
// sending the message to all nodes over point-to-point links (no broadcast
// channel is assumed), so a Byzantine sender may equivocate; the engine
// expands honest broadcasts into identical point-to-point copies.
const Broadcast = -1

// Message is the marker interface implemented by every concrete protocol
// message. Concrete types live next to the protocol that owns them.
//
// Message lifetime contract: a Message (and everything reachable from it
// — slices, nested envelopes) is valid only for the beat in which it was
// sent. Senders may recycle a message's backing memory — and the message
// value itself, for pointer-form messages — as soon as the beat's
// Deliver phase has completed; the simulation engine pools the big
// compose payloads on exactly this schedule (package pool). Any
// component that keeps a message across beats — recording adversaries,
// tracing tools — must capture a deep copy via Clone, never the
// reference. Within the beat, a delivered message may be shared between
// several nodes' concurrent Deliver calls, so received contents are
// immutable: never write into a delivered message.
type Message interface {
	// Kind returns a short stable name used for tracing and wire encoding.
	Kind() string
}

// Send is an outgoing message produced by Compose.
type Send struct {
	// To is a node index in [0, n), or Broadcast.
	To  int
	Msg Message
}

// Recv is an incoming message handed to Deliver. From is authenticated by
// the network (Definition 2.2: sender identity is not tampered with).
type Recv struct {
	From int
	Msg  Message
}

// Protocol is a per-node synchronous state machine driven by beats.
//
// Implementations must tolerate arbitrary inbox contents (Byzantine
// senders) and, for self-stabilizing protocols, arbitrary internal state
// (see Scrambler).
//
// Cross-goroutine contract: drivers (the parallel lockstep engine and the
// goroutine runtime) may call Compose on all nodes concurrently, and
// likewise Deliver, with a barrier between the two phases; a single
// node's calls are never concurrent with each other. A Message delivered
// to several nodes is shared between their concurrent Deliver calls, so
// implementations must treat received Message contents as immutable —
// never write into a delivered message's slices — and must not mutate
// any state shared across nodes from Compose or Deliver.
type Protocol interface {
	// Compose returns the messages this node sends at the given beat.
	// It must not mutate state observable by Deliver ordering: the engine
	// always calls Compose before Deliver within one beat.
	Compose(beat uint64) []Send
	// Deliver processes every message sent at this beat and updates state.
	// The inbox slice is only valid for the duration of the call — the
	// engine reuses its backing array across beats — and the Message
	// values themselves are only valid for the beat (see Message's
	// lifetime contract: payloads may be pooled and recycled after the
	// Deliver phase). Implementations must copy out anything they keep —
	// protocol state is copied field by field, whole messages via Clone —
	// and must treat received contents as immutable (see Protocol's
	// cross-goroutine contract).
	Deliver(beat uint64, inbox []Recv)
}

// Scrambler is implemented by self-stabilizing protocols so tests and the
// fault injector can overwrite their entire state with arbitrary values,
// modelling the paper's transient faults. Implementations must scramble
// recursively into sub-protocols and must include out-of-range values.
type Scrambler interface {
	Scramble(rng *rand.Rand)
}

// ClockReader is implemented by the digital clock protocols. Value is the
// node's current clock; ok is false while the node holds the undefined
// value ("⊥" in the paper). Modulus is k, the wrap-around value.
type ClockReader interface {
	Clock() (value uint64, ok bool)
	Modulus() uint64
}

// BitReader is implemented by coin pipelines: Bit returns the random bit
// output at the most recent beat.
type BitReader interface {
	Bit() byte
}

// Env carries per-node construction parameters shared by all protocols.
type Env struct {
	// N is the number of nodes; F the Byzantine bound, F < N/3 for the
	// paper's protocols. ID is this node's index in [0, N).
	N, F, ID int
	// Rng is this node's private randomness source. The engine seeds each
	// node deterministically from the run seed so simulations replay.
	Rng *rand.Rand
	// Pool is this node's beat-scoped payload pool, owned and recycled by
	// the driver (the simulation engine) after each beat's Deliver phase.
	// Compose paths route their big payload allocations through it; nil
	// selects fresh allocations (the SSBYZ_POOL=off path, and drivers
	// like the goroutine runtime that do not pool).
	Pool *pool.Node
	// Batch, when non-nil, defers this node's grid evaluations: compose
	// paths enqueue their EvalGridT calls on it instead of evaluating
	// inline, and the driver flushes after the compose fan-out so jobs
	// from many nodes — in the multi-tenant engine, many tenants —
	// stack into deep kernel passes. The values are bit-identical either
	// way (see field.EvalBatch); nil selects immediate evaluation.
	Batch *field.EvalBatch
}

// Quorum returns n-f, the size of the quorum used throughout the paper.
func (e Env) Quorum() int { return e.N - e.F }

// Valid reports whether the environment is well formed.
func (e Env) Valid() bool {
	return e.N > 0 && e.F >= 0 && e.ID >= 0 && e.ID < e.N && e.Rng != nil
}
