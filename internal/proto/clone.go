package proto

import "errors"

// The deep-copy facility of the message-lifetime contract: messages are
// valid only for the beat they were sent in (see Message), so anything
// that keeps one longer — a recording adversary, a tracer — captures it
// with Clone. The implementation is a wire encode/decode roundtrip
// (package wire registers it at init), which covers every registered
// message type with zero per-type copying code and guarantees the copy
// shares no memory with the original: decoding always builds fresh
// values.
//
// proto cannot import wire (wire imports the message-owning packages,
// which import proto), so the cloner is injected.

// ErrNoCloner is returned by Clone when no cloner has been registered —
// i.e. the program never imported package wire.
var ErrNoCloner = errors.New("proto: no message cloner registered (import ssbyzclock/internal/wire)")

var cloner func(Message) (Message, error)

// RegisterCloner installs the deep-copy implementation. Called from
// package wire's init; later registrations overwrite earlier ones.
func RegisterCloner(fn func(Message) (Message, error)) { cloner = fn }

// Clone returns a deep copy of m that shares no memory with the
// original, or an error for unregistered message types (only test
// doubles and foreign types are unregistered; every type a protocol in
// this repository sends over the wire is covered). Callers that may
// legitimately see unregistered types — they are never pooled, so
// retaining the original is safe for them — can fall back to m itself on
// error.
func Clone(m Message) (Message, error) {
	if cloner == nil {
		return nil, ErrNoCloner
	}
	return cloner(m)
}
