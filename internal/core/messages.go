// Package core implements the paper's three digital clock synchronization
// algorithms: ss-Byz-2-Clock (Figure 2), ss-Byz-4-Clock (Figure 3) and
// ss-Byz-Clock-Sync (Figure 4) — self-stabilizing, Byzantine-tolerant
// (f < n/3) protocols converging in expected constant time.
//
// Timing convention. The engine executes one beat as Compose (send) then
// Deliver (receive everything sent this beat). Figure 2's "On beat" block
// broadcasts and then processes the same beat's messages, which maps
// directly. Figure 4's phases examine values "received in the previous
// beat", so ClockSync records a tally of each beat's messages in Deliver
// and consumes it in the next beat's phase logic.
package core

// Bot is the ⊥ ("undefined") clock value of ss-Byz-2-Clock.
const Bot uint8 = 2

// TwoClockMsg is the per-beat clock broadcast of ss-Byz-2-Clock: V is 0,
// 1 or Bot. Any other value is Byzantine garbage and is ignored.
type TwoClockMsg struct {
	V uint8
}

// Kind implements proto.Message.
func (TwoClockMsg) Kind() string { return "core.clock2" }

// FullClockMsg is the phase-0 broadcast of ss-Byz-Clock-Sync: the
// sender's full clock value in [0, k).
type FullClockMsg struct {
	V uint64
}

// Kind implements proto.Message.
func (FullClockMsg) Kind() string { return "core.fullclock" }

// ProposeMsg is the phase-1 broadcast of ss-Byz-Clock-Sync: the value the
// sender saw an n-f quorum for, or ⊥ (Bot=true).
type ProposeMsg struct {
	V   uint64
	Bot bool
}

// Kind implements proto.Message.
func (ProposeMsg) Kind() string { return "core.propose" }

// BitMsg is the phase-2 broadcast of ss-Byz-Clock-Sync: whether the
// sender saw an n-f quorum of non-⊥ proposals for its save value.
type BitMsg struct {
	B uint8 // 0 or 1; anything else is ignored
}

// Kind implements proto.Message.
func (BitMsg) Kind() string { return "core.bit" }
