package core

import (
	"math/rand"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
)

// Envelope child tags of ClockSync.
const (
	clockSyncChildA    = 0 // embedded ss-Byz-4-Clock
	clockSyncChildCoin = 1 // own ss-Byz-Coin-Flip pipeline (phase 3's rand)
	clockSyncChildMsg  = 2 // FullClockMsg / ProposeMsg / BitMsg
	clockSyncKids      = 3
)

// tally summarizes one beat's received ClockSync messages; each phase of
// the next beat consumes the part sent by its predecessor phase. Values
// are deduplicated per sender and validated before counting.
type tally struct {
	// fullClock counts per received full-clock value (phase-0 traffic).
	fullClock pairTally
	// propose counts per proposed value, excluding ⊥ (phase-1 traffic).
	propose pairTally
	// bits counts received 0s and 1s (phase-2 traffic).
	bits [2]int
}

// pairTally counts occurrences per value as a short (value, count) pair
// list. Deduplication bounds a beat's distinct values by n, so linear
// probing beats a map — and the pair slices are two small flat arrays
// instead of the several hundred resident bytes a hash map's buckets
// cost per tenant, which is what evicted the maps from this struct.
type pairTally struct {
	vals []uint64
	cnts []int
}

func (p *pairTally) reset() {
	p.vals = p.vals[:0]
	p.cnts = p.cnts[:0]
}

func (p *pairTally) inc(v uint64) {
	for i, x := range p.vals {
		if x == v {
			p.cnts[i]++
			return
		}
	}
	p.vals = append(p.vals, v)
	p.cnts = append(p.cnts, 1)
}

// set resets the tally to the single entry {v: cnt} (Scramble's
// arbitrary-state injection).
func (p *pairTally) set(v uint64, cnt int) {
	p.reset()
	p.vals = append(p.vals, v)
	p.cnts = append(p.cnts, cnt)
}

// get returns the count for v (0 when absent).
func (p *pairTally) get(v uint64) int {
	for i, x := range p.vals {
		if x == v {
			return p.cnts[i]
		}
	}
	return 0
}

// size returns the number of distinct counted values.
func (p *pairTally) size() int { return len(p.vals) }

// ClockSync is ss-Byz-Clock-Sync (Figure 4): the k-Clock algorithm for
// arbitrary k with constant expected convergence time and constant
// message overhead (Theorem 4). An embedded ss-Byz-4-Clock partitions
// beats into four phases; the full clock is incremented every beat and
// re-agreed once per 4-beat cycle via a Turpin–Coan-style
// broadcast/propose/vote exchange whose fallback is the common coin
// (Rabin-style randomized agreement).
type ClockSync struct {
	env proto.Env
	k   uint64
	a   *FourClock
	// pipe feeds phase 3's rand: an own ss-Byz-Coin-Flip pipeline under
	// LayoutPaper, a derived handle onto the shared pipeline otherwise.
	pipe coin.Feed
	// shared is the node's single coin pipeline when this stack runs
	// LayoutShared (Remark 4.1); ClockSync is the stack root and owns it.
	shared *coin.SharedPipeline

	fullClock uint64
	save      uint64

	// stale selects the E6 ablation: phase 3 falls back on the *previous*
	// beat's random bit, which the coin's recover round already made
	// public — so the adversary knows it when committing the phase-2 bit
	// votes, exactly the correlation Remark 3.1 warns against. The
	// published algorithm (stale=false) uses the bit produced by this
	// beat's coin step, committed one round after the votes.
	stale    bool
	staleBit byte

	prev tally // messages received last beat
	// phase is the Compose-time snapshot of clock(A) for the current
	// beat ("consider u.clock(A) at the beginning of the beat");
	// phaseOK is false while A is unconverged at this node.
	phase   uint64
	phaseOK bool

	// Per-beat scratch: the retired tally is recycled for the next beat's
	// counting, the dedup bitmaps, compose buffer and envelope arena are
	// reused across beats.
	spare                tally
	splitter             proto.InboxSplitter
	seenFC, seenP, seenB []bool
	sends                proto.SendBuf
	arena                proto.SendArena
}

var (
	_ proto.Protocol    = (*ClockSync)(nil)
	_ proto.ClockReader = (*ClockSync)(nil)
	_ proto.Scrambler   = (*ClockSync)(nil)
)

// NewClockSync constructs ss-Byz-Clock-Sync for modulus k >= 1 over the
// given coin factory, under DefaultLayout.
func NewClockSync(env proto.Env, k uint64, factory coin.Factory) *ClockSync {
	return NewClockSyncStale(env, k, factory, false)
}

// NewClockSyncStale additionally selects the stale-rand ablation variant
// (see the stale field); production users always want stale=false.
func NewClockSyncStale(env proto.Env, k uint64, factory coin.Factory, stale bool) *ClockSync {
	return NewClockSyncLayout(env, k, factory, stale, DefaultLayout())
}

// NewClockSyncLayout additionally pins the coin layout. Under
// LayoutShared the stack's three coin consumers — the embedded 4-clock's
// A1 and A2 and this protocol's phase-3 rand — share one pipeline owned
// here (Remark 4.1); under LayoutPaper each runs its own, as in Figure 4.
func NewClockSyncLayout(env proto.Env, k uint64, factory coin.Factory, stale bool, l Layout) *ClockSync {
	if k == 0 {
		k = 1
	}
	supply, sp := newSupply(env, factory, l)
	c := &ClockSync{
		env:    env,
		k:      k,
		shared: sp,
		stale:  stale,
	}
	c.a = newFourClock(env, supply, "cs/4clock")
	c.pipe = supply.Feed(env, "cs")
	return c
}

// Compose implements proto.Protocol: one beat of A and of the coin
// pipeline, the full-clock increment (Figure 4 line 2), and the current
// phase's broadcast, computed from the previous beat's tally.
func (c *ClockSync) Compose(beat uint64) []proto.Send {
	c.arena.Reset()
	out := c.arena.Wrap(clockSyncChildA, c.a.Compose(beat), c.sends.Take())
	out = c.arena.Wrap(clockSyncChildCoin, c.pipe.Compose(beat), out)
	out = composeShared(&c.arena, out, c.shared, beat)

	c.phase, c.phaseOK = c.a.Clock()
	c.staleBit = c.pipe.Bit() // the previous beat's (already public) bit

	// Line 2: increment every beat. The mod also normalizes any
	// transient-fault garbage left in fullClock.
	c.fullClock = (c.fullClock + 1) % c.k

	if !c.phaseOK {
		c.sends.Keep(out)
		return out
	}
	quorum := c.env.Quorum()
	var msg proto.Message
	switch c.phase {
	case 0: // Block 3.a: broadcast the full clock.
		msg = FullClockMsg{V: c.fullClock}
	case 1: // Block 3.b: propose the quorum value seen in the previous beat.
		p := ProposeMsg{Bot: true}
		for i, v := range c.prev.fullClock.vals {
			if c.prev.fullClock.cnts[i] >= quorum {
				p = ProposeMsg{V: v}
				break
			}
		}
		msg = p
	case 2: // Block 3.c: adopt the majority proposal, vote on its support.
		bestV, bestCnt := uint64(0), 0
		for i, v := range c.prev.propose.vals {
			if cnt := c.prev.propose.cnts[i]; cnt > bestCnt || (cnt == bestCnt && bestCnt > 0 && v < bestV) {
				bestV, bestCnt = v, cnt
			}
		}
		b := BitMsg{B: 0}
		if bestCnt > 0 {
			c.save = bestV
			if bestCnt >= quorum {
				b.B = 1
			}
		} else {
			c.save = 0 // "if save = ⊥ set save := 0"
		}
		msg = b
	case 3: // Block 3.d sends nothing; the decision happens in Deliver.
	}
	if msg != nil {
		out = append(out, c.arena.Box(clockSyncChildMsg, proto.Broadcast, msg))
	}
	c.sends.Keep(out)
	return out
}

// EndBeat implements proto.BeatEnder: park this layer's per-beat backing
// (envelope arena, splitter slab, compose buffer) in the process pools
// and forward the hook down the stack, so an idle resident node holds no
// per-beat memory between beats.
func (c *ClockSync) EndBeat() {
	c.arena.Release()
	c.splitter.Release()
	c.sends.Release()
	c.a.EndBeat()
	if be, ok := c.pipe.(proto.BeatEnder); ok {
		be.EndBeat()
	}
	if c.shared != nil {
		c.shared.EndBeat()
	}
}

// Deliver implements proto.Protocol: step A and the coin, apply Block 3.d
// when in phase 3, and record this beat's tally for the next beat. Under
// LayoutShared the shared pipeline is delivered before any consumer, so
// the rand consumed below — and by A's 2-clocks — is the bit produced
// this beat (the freshness Lemma 8 depends on).
func (c *ClockSync) Deliver(beat uint64, inbox []proto.Recv) {
	boxes := deliverShared(&c.splitter, c.shared, clockSyncKids, beat, inbox)
	c.a.Deliver(beat, boxes[clockSyncChildA])
	c.pipe.Deliver(beat, boxes[clockSyncChildCoin])

	if c.phaseOK && c.phase == 3 {
		// Block 3.d: the bit votes were committed in the previous beat;
		// rand was produced by this beat's coin step, so it is
		// independent of them (Lemma 8).
		quorum := c.env.Quorum()
		rand := c.pipe.Bit()
		if c.stale {
			rand = c.staleBit
		}
		switch {
		case c.prev.bits[1] >= quorum:
			c.fullClock = (c.save%c.k + 3) % c.k
		case c.prev.bits[0] >= quorum:
			c.fullClock = 0
		case rand == 1:
			c.fullClock = (c.save%c.k + 3) % c.k
		default:
			c.fullClock = 0
		}
	}

	// Record this beat's ClockSync traffic for the next beat's phase,
	// recycling the tally retired two beats ago (a scrambled or zero-value
	// spare gets fresh maps).
	next := c.spare
	next.fullClock.reset()
	next.propose.reset()
	next.bits = [2]int{}
	if c.seenFC == nil {
		c.seenFC = make([]bool, c.env.N)
		c.seenP = make([]bool, c.env.N)
		c.seenB = make([]bool, c.env.N)
	}
	seenFC, seenP, seenB := c.seenFC, c.seenP, c.seenB
	for i := range seenFC {
		seenFC[i] = false
		seenP[i] = false
		seenB[i] = false
	}
	for _, r := range boxes[clockSyncChildMsg] {
		if r.From < 0 || r.From >= c.env.N {
			continue
		}
		switch m := r.Msg.(type) {
		case FullClockMsg:
			if !seenFC[r.From] && m.V < c.k {
				seenFC[r.From] = true
				next.fullClock.inc(m.V)
			}
		case ProposeMsg:
			if !seenP[r.From] {
				seenP[r.From] = true
				if !m.Bot && m.V < c.k {
					next.propose.inc(m.V)
				}
			}
		case BitMsg:
			if !seenB[r.From] && m.B <= 1 {
				seenB[r.From] = true
				next.bits[m.B]++
			}
		}
	}
	c.spare = c.prev
	c.prev = next
}

// Clock implements proto.ClockReader. The full clock is always defined
// (it increments regardless of agreement); callers needing a "synced"
// signal must compare across nodes, as self-stabilization precludes a
// local converged flag.
func (c *ClockSync) Clock() (uint64, bool) { return c.fullClock % c.k, true }

// Modulus implements proto.ClockReader.
func (c *ClockSync) Modulus() uint64 { return c.k }

// Phase returns clock(A) as of the last Compose, for observability.
func (c *ClockSync) Phase() (uint64, bool) { return c.phase, c.phaseOK }

// RandBit returns the node's most recent common random bit. After a beat
// completes this value is public knowledge (the coin's recover round
// revealed it), which is what makes the stale variant attackable.
func (c *ClockSync) RandBit() byte { return c.pipe.Bit() }

// ConvergenceBound returns Δ_node, as in ss-Byz-4-Clock (Section 5).
func (c *ClockSync) ConvergenceBound() int { return c.a.ConvergenceBound() }

// Scramble implements proto.Scrambler: arbitrary values everywhere,
// including out-of-range clocks and corrupted tallies.
func (c *ClockSync) Scramble(rng *rand.Rand) {
	c.a.Scramble(rng)
	c.pipe.Scramble(rng)
	if c.shared != nil {
		c.shared.Scramble(rng)
	}
	c.fullClock = rng.Uint64()
	c.save = rng.Uint64()
	c.phase = rng.Uint64() % 8
	c.phaseOK = rng.Intn(2) == 0
	c.prev.fullClock.set(rng.Uint64()%(c.k+3), rng.Intn(c.env.N+2))
	c.prev.propose.set(rng.Uint64()%(c.k+3), rng.Intn(c.env.N+2))
	c.prev.bits = [2]int{rng.Intn(c.env.N + 2), rng.Intn(c.env.N + 2)}
}

// NewTwoClockProtocol, NewFourClockProtocol and NewClockSyncProtocol are
// sim.NodeFactory adapters used by tests, benchmarks and the CLIs; they
// run DefaultLayout. The *ProtocolLayout variants pin the layout, which
// the differential harness and the E8 complexity tests need.
func NewTwoClockProtocol(factory coin.Factory) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol { return NewTwoClock(env, factory) }
}

// NewTwoClockProtocolLayout adapts NewTwoClockLayout to a node factory.
func NewTwoClockProtocolLayout(factory coin.Factory, l Layout) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol {
		return NewTwoClockLayout(env, factory, VariantCorrect, l)
	}
}

// NewFourClockProtocol adapts NewFourClock to a node factory.
func NewFourClockProtocol(factory coin.Factory) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol { return NewFourClock(env, factory) }
}

// NewFourClockProtocolLayout adapts NewFourClockLayout to a node factory.
func NewFourClockProtocolLayout(factory coin.Factory, l Layout) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol { return NewFourClockLayout(env, factory, l) }
}

// NewClockSyncProtocol adapts NewClockSync to a node factory.
func NewClockSyncProtocol(k uint64, factory coin.Factory) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol { return NewClockSync(env, k, factory) }
}

// NewClockSyncProtocolLayout adapts NewClockSyncLayout to a node factory.
func NewClockSyncProtocolLayout(k uint64, factory coin.Factory, l Layout) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol {
		return NewClockSyncLayout(env, k, factory, false, l)
	}
}

// NewClockSyncStaleProtocolLayout adapts the Remark 3.1 stale-rand
// ablation variant to a node factory; the sweep runner's
// "clocksyncstale" protocol (E6 grids) runs it.
func NewClockSyncStaleProtocolLayout(k uint64, factory coin.Factory, l Layout) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol {
		return NewClockSyncLayout(env, k, factory, true, l)
	}
}
