package core

import (
	"math/rand"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
)

// Envelope child tags of FourClock.
const (
	fourClockChildA1 = 0
	fourClockChildA2 = 1
	fourClockKids    = 2
)

// FourClock is ss-Byz-4-Clock (Figure 3): two ss-Byz-2-Clock instances
// A1, A2, where A2 executes a beat only when clock(A1) = 0 at the
// beginning of the beat, and the output clock is 2·clock(A2) + clock(A1).
// After both instances converge (expected constant time each, Theorem 3),
// the output cycles 0,1,2,3.
type FourClock struct {
	env proto.Env
	a1  *TwoClock
	a2  *TwoClock
	// shared is non-nil when this instance is a stack root that owns the
	// node's shared coin pipeline (LayoutShared, standalone 4-clock).
	shared *coin.SharedPipeline
	// stepA2 records the Compose-time decision "clock(A1) = 0" so
	// Deliver applies the same beat's choice. It is per-beat scratch, not
	// protocol state: a transient fault corrupting it perturbs one beat.
	stepA2   bool
	splitter proto.InboxSplitter
	sends    proto.SendBuf
	arena    proto.SendArena
}

var (
	_ proto.Protocol    = (*FourClock)(nil)
	_ proto.ClockReader = (*FourClock)(nil)
	_ proto.Scrambler   = (*FourClock)(nil)
)

// NewFourClock constructs ss-Byz-4-Clock under DefaultLayout. Under
// LayoutShared both embedded 2-clocks read derived bits from one shared
// coin pipeline (Remark 4.1, the constant-factor saving the paper
// points out); under LayoutPaper each gets its own pipeline from the
// factory, the literal layout of Figure 3.
func NewFourClock(env proto.Env, factory coin.Factory) *FourClock {
	return NewFourClockLayout(env, factory, DefaultLayout())
}

// NewFourClockLayout additionally pins the coin layout.
func NewFourClockLayout(env proto.Env, factory coin.Factory, l Layout) *FourClock {
	supply, sp := newSupply(env, factory, l)
	c := newFourClock(env, supply, "4clock")
	c.shared = sp
	return c
}

// newFourClock wires a 4-clock's two 2-clocks as consumers of the given
// coin supply, labelled under prefix.
func newFourClock(env proto.Env, supply coin.Supply, prefix string) *FourClock {
	return &FourClock{
		env: env,
		a1:  newTwoClock(env, supply, VariantCorrect, prefix+"/a1"),
		a2:  newTwoClock(env, supply, VariantCorrect, prefix+"/a2"),
	}
}

// Compose implements proto.Protocol: Figure 3 lines 1-2 (send halves).
// Figure 3's guard "if clock(A1) = 0" reads clock(A1) *after* line 1
// executed A1's beat; since a converged A1 flips every beat, that equals
// clock(A1) = 1 at the beginning of the beat, which is the value
// available before this beat's messages are exchanged.
func (c *FourClock) Compose(beat uint64) []proto.Send {
	c.arena.Reset()
	out := c.arena.Wrap(fourClockChildA1, c.a1.Compose(beat), c.sends.Take())
	v1, ok1 := c.a1.Clock()
	c.stepA2 = ok1 && v1 == 1
	if c.stepA2 {
		out = c.arena.Wrap(fourClockChildA2, c.a2.Compose(beat), out)
	}
	out = composeShared(&c.arena, out, c.shared, beat)
	c.sends.Keep(out)
	return out
}

// EndBeat implements proto.BeatEnder: park per-beat backing in the
// process pools and forward the hook to the halves (and the shared
// pipeline when this instance owns it).
func (c *FourClock) EndBeat() {
	c.arena.Release()
	c.splitter.Release()
	c.sends.Release()
	c.a1.EndBeat()
	c.a2.EndBeat()
	if c.shared != nil {
		c.shared.EndBeat()
	}
}

// Deliver implements proto.Protocol: Figure 3 lines 1-2 (receive halves).
// Line 3's output composition is performed lazily by Clock. An owned
// shared pipeline is delivered first so both 2-clocks consume the bit
// produced this beat.
func (c *FourClock) Deliver(beat uint64, inbox []proto.Recv) {
	boxes := deliverShared(&c.splitter, c.shared, fourClockKids, beat, inbox)
	if c.stepA2 {
		c.a2.Deliver(beat, boxes[fourClockChildA2])
	}
	c.a1.Deliver(beat, boxes[fourClockChildA1])
}

// Clock implements proto.ClockReader: 2·clock(A2) + clock(A1), undefined
// while either half is ⊥.
func (c *FourClock) Clock() (uint64, bool) {
	v1, ok1 := c.a1.Clock()
	v2, ok2 := c.a2.Clock()
	if !ok1 || !ok2 {
		return 0, false
	}
	return 2*v2 + v1, true
}

// Modulus implements proto.ClockReader.
func (c *FourClock) Modulus() uint64 { return 4 }

// ConvergenceBound returns Δ_node for this protocol: Section 4 sets it to
// max(Δ_A1, 2·Δ_A2) = 2·Δ_ss-Byz-2-Clock since A2 steps every other beat.
func (c *FourClock) ConvergenceBound() int {
	return 2 * c.a2.ConvergenceBound()
}

// Scramble implements proto.Scrambler.
func (c *FourClock) Scramble(rng *rand.Rand) {
	c.a1.Scramble(rng)
	c.a2.Scramble(rng)
	if c.shared != nil {
		c.shared.Scramble(rng)
	}
	c.stepA2 = rng.Intn(2) == 0
}
