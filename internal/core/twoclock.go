package core

import (
	"math/rand"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
)

// Variant selects between the paper's algorithm and the deliberately
// broken scheme of Remark 3.1, kept for the E6 ablation.
type Variant uint8

const (
	// VariantCorrect is Figure 2 as published: nodes broadcast ⊥ and the
	// *receiver* substitutes the current beat's rand, which the Byzantine
	// nodes could not know when they committed their clock messages.
	VariantCorrect Variant = iota
	// VariantPreRand is Remark 3.1's flawed alternative: a node holding ⊥
	// broadcasts the *previous* beat's rand directly. The adversary has
	// already seen that bit (the coin's recover round made it public), so
	// it can choose its clock values as a function of the bit and stall
	// convergence — demonstrated by experiment E6.
	VariantPreRand
)

// Envelope child tags of TwoClock.
const (
	twoClockChildMsg  = 0 // TwoClockMsg broadcasts
	twoClockChildCoin = 1 // ss-Byz-Coin-Flip pipeline traffic
	twoClockChildren  = 2
)

// TwoClock is ss-Byz-2-Clock (Figure 2): each beat every node broadcasts
// its clock value (0, 1 or ⊥), messages carrying ⊥ are counted as the
// beat's common random bit, and a node seeing an n-f majority for v sets
// its clock to 1-v, otherwise to ⊥. Once all correct nodes agree they
// alternate 0,1,0,... forever (Lemma 2); from an arbitrary state the
// expected convergence time is constant (Theorem 2).
type TwoClock struct {
	env     proto.Env
	variant Variant
	// pipe is this clock's coin feed: its own ss-Byz-Coin-Flip pipeline
	// under LayoutPaper, a derived handle onto the stack's shared
	// pipeline under LayoutShared.
	pipe coin.Feed
	// shared is non-nil when this instance is a stack root that owns the
	// node's shared pipeline (LayoutShared, standalone 2-clock).
	shared *coin.SharedPipeline
	clock  uint8 // 0, 1, Bot; a transient fault may leave garbage

	splitter proto.InboxSplitter
	seen     []bool // per-beat dedup scratch
	sends    proto.SendBuf
	arena    proto.SendArena
}

var (
	_ proto.Protocol    = (*TwoClock)(nil)
	_ proto.ClockReader = (*TwoClock)(nil)
	_ proto.Scrambler   = (*TwoClock)(nil)
)

// NewTwoClock constructs ss-Byz-2-Clock over the given coin-flipping
// factory (the paper's algorithm C; Δ_node must be at least the
// factory's round count — see ConvergenceBound), under DefaultLayout.
func NewTwoClock(env proto.Env, factory coin.Factory) *TwoClock {
	return NewTwoClockVariant(env, factory, VariantCorrect)
}

// NewTwoClockVariant additionally selects the Remark 3.1 ablation
// variant.
func NewTwoClockVariant(env proto.Env, factory coin.Factory, v Variant) *TwoClock {
	return NewTwoClockLayout(env, factory, v, DefaultLayout())
}

// NewTwoClockLayout additionally pins the coin layout. A standalone
// 2-clock has a single coin consumer, so the layouts cost the same here;
// both are kept selectable for the differential harness.
func NewTwoClockLayout(env proto.Env, factory coin.Factory, v Variant, l Layout) *TwoClock {
	supply, sp := newSupply(env, factory, l)
	c := newTwoClock(env, supply, v, "2clock")
	c.shared = sp
	return c
}

// newTwoClock wires a 2-clock as a consumer of the given coin supply;
// label must be unique within the supply's stack.
func newTwoClock(env proto.Env, supply coin.Supply, v Variant, label string) *TwoClock {
	return &TwoClock{
		env:     env,
		variant: v,
		pipe:    supply.Feed(env, label),
		clock:   Bot,
	}
}

// Compose implements proto.Protocol: Figure 2 line 1 (broadcast clock)
// plus one beat of the coin pipeline.
func (c *TwoClock) Compose(beat uint64) []proto.Send {
	v := c.clock
	if v > Bot {
		v = Bot // normalize transient-fault garbage
	}
	if c.variant == VariantPreRand && v == Bot {
		// Remark 3.1's broken scheme: substitute the previous beat's
		// public random bit at the sender.
		v = c.pipe.Bit()
	}
	c.arena.Reset()
	out := append(c.sends.Take(), c.arena.Box(twoClockChildMsg, proto.Broadcast, TwoClockMsg{V: v}))
	out = c.arena.Wrap(twoClockChildCoin, c.pipe.Compose(beat), out)
	out = composeShared(&c.arena, out, c.shared, beat)
	c.sends.Keep(out)
	return out
}

// EndBeat implements proto.BeatEnder: park per-beat backing in the
// process pools and forward the hook to the coin feed (and the shared
// pipeline when this instance owns it).
func (c *TwoClock) EndBeat() {
	c.arena.Release()
	c.splitter.Release()
	c.sends.Release()
	if be, ok := c.pipe.(proto.BeatEnder); ok {
		be.EndBeat()
	}
	if c.shared != nil {
		c.shared.EndBeat()
	}
}

// Deliver implements proto.Protocol: Figure 2 lines 2-6. When this
// instance owns the stack's shared pipeline it delivers the pipeline
// first, so the bit consumed below is the one produced this beat.
func (c *TwoClock) Deliver(beat uint64, inbox []proto.Recv) {
	boxes := deliverShared(&c.splitter, c.shared, twoClockChildren, beat, inbox)
	c.pipe.Deliver(beat, boxes[twoClockChildCoin])
	rand := c.pipe.Bit()

	// Tally clock values, counting each sender once and mapping ⊥ to
	// rand (line 3). In the PreRand variant senders already substituted
	// a bit, so ⊥ messages are Byzantine noise and are dropped.
	var count [2]int
	if c.seen == nil {
		c.seen = make([]bool, c.env.N)
	}
	seen := c.seen
	for i := range seen {
		seen[i] = false
	}
	for _, r := range boxes[twoClockChildMsg] {
		m, ok := r.Msg.(TwoClockMsg)
		if !ok || r.From < 0 || r.From >= c.env.N || seen[r.From] {
			continue
		}
		v := m.V
		if v == Bot {
			if c.variant == VariantPreRand {
				continue
			}
			v = rand
		}
		if v > 1 {
			continue // Byzantine garbage
		}
		seen[r.From] = true
		count[v]++
	}
	maj := uint8(0)
	if count[1] > count[0] {
		maj = 1
	}
	if count[maj] >= c.env.Quorum() {
		c.clock = 1 - maj // line 5
	} else {
		c.clock = Bot // line 6
	}
}

// Clock implements proto.ClockReader; ok is false while the clock is ⊥.
func (c *TwoClock) Clock() (uint64, bool) {
	if c.clock > 1 {
		return 0, false
	}
	return uint64(c.clock), true
}

// Modulus implements proto.ClockReader.
func (c *TwoClock) Modulus() uint64 { return 2 }

// Bit exposes the node's current common random bit (the underlying
// ss-Byz-Coin-Flip output); consumers above (none in the paper's stack,
// but available to library users) must heed Section 6.1's warning that
// the adversary sees the bit in the same beat.
func (c *TwoClock) Bit() byte { return c.pipe.Bit() }

// ConvergenceBound returns Δ_node for this protocol instance: the number
// of fault-free beats after which convergence guarantees start to apply
// (the coin pipeline depth; Section 3.2 requires Δ_node >= Δ_C).
func (c *TwoClock) ConvergenceBound() int { return c.pipe.Rounds() }

// Scramble implements proto.Scrambler: arbitrary clock value — covering
// the in-domain values 0, 1 and ⊥ as well as out-of-range garbage — and
// a scrambled coin pipeline.
func (c *TwoClock) Scramble(rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0:
		c.clock = 0
	case 1:
		c.clock = 1
	case 2:
		c.clock = Bot
	default:
		c.clock = uint8(rng.Intn(256))
	}
	c.pipe.Scramble(rng)
	if c.shared != nil {
		c.shared.Scramble(rng)
	}
}
