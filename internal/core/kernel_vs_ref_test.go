package core_test

// Differential harness for the wide evaluation kernels and fused sweep
// primitives: a run on the installed (possibly AVX2) kernel and wide
// sweeps must replay byte-identically to the same run on the scalar
// references. All variants compute exact canonical values, so the only
// acceptable divergence is none — any mismatch in clock traces, rand
// streams, or cumulative message/byte metrics means a kernel computed a
// different field element somewhere and the protocol trajectory forked.
//
// The suite crosses the adversary suite with n ∈ {4, 8, 16, 32} (the
// full kernel dispatch ladder: tails only, one 4-lane block, two 8-point
// blocks, deep blocks) under the FM coin, whose GVSS matrices are what
// the fused DeliverEcho/DeliverVote/DeliverRecover sweeps chew on.

import (
	"fmt"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/sim"
)

// withScalarRefs runs fn with the scalar reference eval kernel and
// scalar sweep implementations installed, restoring the previous
// configuration afterwards.
func withScalarRefs(t *testing.T, fn func()) {
	t.Helper()
	prevKernel, err := field.SetEvalKernel("ref")
	if err != nil {
		t.Fatalf("SetEvalKernel(ref): %v", err)
	}
	prevWide := field.SetWideSweeps(false)
	defer func() {
		field.SetWideSweeps(prevWide)
		if _, err := field.SetEvalKernel(prevKernel); err != nil {
			t.Fatalf("restoring kernel %q: %v", prevKernel, err)
		}
	}()
	fn()
}

// TestKernelVsScalarRefDifferential is the wide-kernel equivalence
// proof: installed-kernel runs replay the scalar reference bit for bit
// across the adversary suite, with a mid-run scramble, at worker counts
// 1 and 8. Beats shrink as n grows (a reference-kernel beat at n=32
// costs tens of milliseconds) but every size still crosses a scramble
// and every suite adversary.
func TestKernelVsScalarRefDifferential(t *testing.T) {
	suite := adversarySuite()
	beatsFor := map[int]int{4: 24, 8: 12, 16: 5, 32: 2}
	for _, n := range []int{4, 8, 16, 32} {
		f := (n - 1) / 3
		beats := beatsFor[n]
		for _, adv := range suite {
			advBeats := beats
			if n == 32 && adv.name == "coinattack" {
				// The corruptor chain forces the error-correcting decode
				// fallback in every instance; at n=32 one beat of that costs
				// seconds, so a single beat per half keeps the tier-1 budget
				// while still crossing the scramble at full size.
				advBeats = 1
			}
			t.Run(fmt.Sprintf("n=%d/%s", n, adv.name), func(t *testing.T) {
				beats := advBeats
				var ref poolTrace
				withScalarRefs(t, func() {
					ref = runPoolTrace(n, f, 7, coin.FMFactory{}, adv, sim.PoolOn, 1, beats)
				})
				for _, workers := range []int{1, 8} {
					got := runPoolTrace(n, f, 7, coin.FMFactory{}, adv, sim.PoolOn, workers, beats)
					diffPoolTraces(t, ref, got, fmt.Sprintf("wide kernel, workers=%d", workers))
				}
			})
		}
	}
}
