package core_test

import (
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

func silentAdv(*adversary.Context) adversary.Adversary { return adversary.Silent{} }

// converge runs the protocol and requires convergence plus closure.
func converge(t *testing.T, cfg sim.Config, factory sim.NodeFactory, k uint64, maxBeats int) sim.ConvergenceResult {
	t.Helper()
	e := sim.New(cfg, factory)
	res := sim.MeasureConvergence(e, k, maxBeats, 24)
	if !res.Converged {
		t.Fatalf("n=%d f=%d seed=%d: no convergence within %d beats", cfg.N, cfg.F, cfg.Seed, maxBeats)
	}
	// Closure: after convergence the clocks must stay in lockstep.
	st := sim.ReadClocks(e)
	prev, ok := st.Synced()
	if !ok {
		t.Fatalf("not synced at end of measurement")
	}
	for i := 0; i < 50; i++ {
		e.Step()
		v, ok := sim.ReadClocks(e).Synced()
		if !ok || v != (prev+1)%k {
			t.Fatalf("closure violated at beat %d: got (%d,%v) want %d", e.Beat(), v, ok, (prev+1)%k)
		}
		prev = v
	}
	return res
}

func TestTwoClockConvergesNoFaults(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := sim.Config{N: 4, F: 0, Seed: seed, ScrambleStart: true}
		converge(t, cfg, core.NewTwoClockProtocol(coin.FMFactory{}), 2, 300)
	}
}

func TestTwoClockConvergesSilentByzantine(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		f := (n - 1) / 3
		cfg := sim.Config{N: n, F: f, Seed: int64(n), NewAdversary: silentAdv}
		converge(t, cfg, core.NewTwoClockProtocol(coin.FMFactory{}), 2, 400)
	}
}

func TestTwoClockConvergesRabinCoin(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cfg := sim.Config{N: 7, F: 2, Seed: seed, NewAdversary: silentAdv, ScrambleStart: true}
		converge(t, cfg, core.NewTwoClockProtocol(coin.RabinFactory{Seed: seed}), 2, 200)
	}
}

func TestTwoClockAlternates(t *testing.T) {
	// Lemma 2: once synced the clock flips every beat — verified by
	// converge's closure loop with k=2; here we additionally check both
	// values occur.
	cfg := sim.Config{N: 4, F: 1, Seed: 3, NewAdversary: silentAdv, ScrambleStart: true}
	e := sim.New(cfg, core.NewTwoClockProtocol(coin.RabinFactory{Seed: 1}))
	res := sim.MeasureConvergence(e, 2, 200, 10)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		e.Step()
		v, ok := sim.ReadClocks(e).Synced()
		if !ok {
			t.Fatal("lost sync")
		}
		seen[v] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("clock not alternating: %v", seen)
	}
}

func TestTwoClockSelfStabilizes(t *testing.T) {
	cfg := sim.Config{N: 7, F: 2, Seed: 5, NewAdversary: silentAdv, ScrambleStart: true}
	e := sim.New(cfg, core.NewTwoClockProtocol(coin.RabinFactory{Seed: 2}))
	res := sim.MeasureConvergence(e, 2, 200, 10)
	if !res.Converged {
		t.Fatal("no initial convergence")
	}
	for trial := 0; trial < 5; trial++ {
		e.ScrambleHonest()
		res := sim.MeasureConvergence(e, 2, 200, 10)
		if !res.Converged {
			t.Fatalf("trial %d: no re-convergence after scramble", trial)
		}
	}
}

func TestFourClockConvergesAndCycles(t *testing.T) {
	cfg := sim.Config{N: 4, F: 1, Seed: 7, NewAdversary: silentAdv, ScrambleStart: true}
	e := sim.New(cfg, core.NewFourClockProtocol(coin.RabinFactory{Seed: 3}))
	res := sim.MeasureConvergence(e, 4, 400, 16)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	// Theorem 3: pattern 0,1,2,3 repeating.
	var seq []uint64
	for i := 0; i < 12; i++ {
		e.Step()
		v, ok := sim.ReadClocks(e).Synced()
		if !ok {
			t.Fatal("lost sync")
		}
		seq = append(seq, v)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != (seq[i-1]+1)%4 {
			t.Fatalf("pattern broken: %v", seq)
		}
	}
}

func TestFourClockWithFMCoin(t *testing.T) {
	cfg := sim.Config{N: 4, F: 1, Seed: 11, NewAdversary: silentAdv, ScrambleStart: true}
	converge(t, cfg, core.NewFourClockProtocol(coin.FMFactory{}), 4, 600)
}

func TestClockSyncConvergesVariousK(t *testing.T) {
	for _, k := range []uint64{1, 2, 4, 16, 64, 1024} {
		cfg := sim.Config{N: 7, F: 2, Seed: int64(k), NewAdversary: silentAdv, ScrambleStart: true}
		converge(t, cfg, core.NewClockSyncProtocol(k, coin.RabinFactory{Seed: 4}), k, 600)
	}
}

func TestClockSyncWithFMCoin(t *testing.T) {
	cfg := sim.Config{N: 4, F: 1, Seed: 13, NewAdversary: silentAdv, ScrambleStart: true}
	converge(t, cfg, core.NewClockSyncProtocol(64, coin.FMFactory{}), 64, 900)
}

func TestClockSyncPassiveByzantine(t *testing.T) {
	cfg := sim.Config{N: 7, F: 2, Seed: 17, ScrambleStart: true}
	converge(t, cfg, core.NewClockSyncProtocol(32, coin.RabinFactory{Seed: 5}), 32, 600)
}

func TestClockSyncSelfStabilizes(t *testing.T) {
	cfg := sim.Config{N: 7, F: 2, Seed: 19, NewAdversary: silentAdv, ScrambleStart: true}
	e := sim.New(cfg, core.NewClockSyncProtocol(64, coin.RabinFactory{Seed: 6}))
	res := sim.MeasureConvergence(e, 64, 600, 16)
	if !res.Converged {
		t.Fatal("no initial convergence")
	}
	for trial := 0; trial < 3; trial++ {
		e.ScrambleHonest()
		res := sim.MeasureConvergence(e, 64, 600, 16)
		if !res.Converged {
			t.Fatalf("trial %d: no re-convergence after scramble", trial)
		}
	}
}

func TestClockSyncSurvivesPhantomMessages(t *testing.T) {
	// Definition 2.2: stale buffered messages delivered once must not
	// derail the protocol for longer than the convergence window.
	cfg := sim.Config{N: 7, F: 2, Seed: 23, NewAdversary: silentAdv, ScrambleStart: true}
	e := sim.New(cfg, core.NewClockSyncProtocol(16, coin.RabinFactory{Seed: 7}))
	res := sim.MeasureConvergence(e, 16, 600, 16)
	if !res.Converged {
		t.Fatal("no initial convergence")
	}
	phantoms := []proto.Message{
		proto.Envelope{Child: 2, Inner: core.FullClockMsg{V: 9}},
		proto.Envelope{Child: 2, Inner: core.BitMsg{B: 1}},
		proto.Envelope{Child: 2, Inner: core.ProposeMsg{V: 3}},
		proto.Envelope{Child: 0, Inner: proto.Envelope{Child: 0, Inner: proto.Envelope{Child: 0, Inner: core.TwoClockMsg{V: 1}}}},
	}
	for trial := 0; trial < 3; trial++ {
		e.InjectPhantoms(phantoms)
		res := sim.MeasureConvergence(e, 16, 600, 16)
		if !res.Converged {
			t.Fatalf("trial %d: no re-convergence after phantom injection", trial)
		}
	}
}

func TestTwoClockRejectsGarbageValues(t *testing.T) {
	// An adversary sending out-of-domain clock values must not crash or
	// stall the protocol.
	garbage := func(ctx *adversary.Context) adversary.Adversary {
		return garbageClockAdv{ctx: ctx}
	}
	cfg := sim.Config{N: 4, F: 1, Seed: 29, NewAdversary: garbage, ScrambleStart: true}
	converge(t, cfg, core.NewTwoClockProtocol(coin.RabinFactory{Seed: 8}), 2, 300)
}

type garbageClockAdv struct {
	ctx *adversary.Context
}

func (a garbageClockAdv) Act(_ uint64, composed []adversary.Sends, _ []adversary.Intercept) []adversary.Sends {
	out := make([]adversary.Sends, 0, len(composed))
	for _, s := range composed {
		g := adversary.Sends{From: s.From}
		for to := 0; to < a.ctx.N; to++ {
			g.Out = append(g.Out, proto.Send{
				To:  to,
				Msg: proto.Envelope{Child: 0, Inner: core.TwoClockMsg{V: uint8(a.ctx.Rng.Intn(250)) + 3}},
			})
		}
		out = append(out, g)
	}
	return out
}
