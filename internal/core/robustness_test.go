package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
)

// randomInbox builds an arbitrary (Byzantine-shaped) inbox: random
// senders, random message types, random envelope nesting, random values.
func randomInbox(rng *rand.Rand, n int) []proto.Recv {
	var inbox []proto.Recv
	count := rng.Intn(3 * n)
	for i := 0; i < count; i++ {
		var leaf proto.Message
		switch rng.Intn(4) {
		case 0:
			leaf = core.TwoClockMsg{V: uint8(rng.Intn(256))}
		case 1:
			leaf = core.FullClockMsg{V: rng.Uint64()}
		case 2:
			leaf = core.ProposeMsg{V: rng.Uint64(), Bot: rng.Intn(2) == 0}
		default:
			leaf = core.BitMsg{B: uint8(rng.Intn(256))}
		}
		msg := leaf
		for d := rng.Intn(4); d > 0; d-- {
			msg = proto.Envelope{Child: uint8(rng.Intn(6)), Inner: msg}
		}
		inbox = append(inbox, proto.Recv{From: rng.Intn(n+2) - 1, Msg: msg})
	}
	return inbox
}

// TestProtocolsSurviveArbitraryInboxes is the fuzz-shaped safety net: no
// sequence of garbage inboxes and scrambles may panic any protocol or
// drive its clock out of range.
func TestProtocolsSurviveArbitraryInboxes(t *testing.T) {
	builders := map[string]func(env proto.Env) interface {
		proto.Protocol
		proto.ClockReader
		proto.Scrambler
	}{
		"twoclock": func(env proto.Env) interface {
			proto.Protocol
			proto.ClockReader
			proto.Scrambler
		} {
			return core.NewTwoClock(env, coin.FMFactory{})
		},
		"fourclock": func(env proto.Env) interface {
			proto.Protocol
			proto.ClockReader
			proto.Scrambler
		} {
			return core.NewFourClock(env, coin.RabinFactory{Seed: 1})
		},
		"clocksync": func(env proto.Env) interface {
			proto.Protocol
			proto.ClockReader
			proto.Scrambler
		} {
			return core.NewClockSync(env, 16, coin.FMFactory{})
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				env := proto.Env{N: 4, F: 1, ID: rng.Intn(4), Rng: rng}
				p := build(env)
				for beat := uint64(0); beat < 12; beat++ {
					if rng.Intn(5) == 0 {
						p.Scramble(rng)
					}
					p.Compose(beat)
					p.Deliver(beat, randomInbox(rng, env.N))
					if v, ok := p.Clock(); ok && v >= p.Modulus() {
						t.Errorf("clock %d out of range [0,%d)", v, p.Modulus())
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTwoClockSelfMessageCounted: a node's broadcast includes itself, so
// with n=1, f=0 the node forms its own quorum and ticks alone.
func TestTwoClockSingleNode(t *testing.T) {
	env := proto.Env{N: 1, F: 0, ID: 0, Rng: rand.New(rand.NewSource(1))}
	p := core.NewTwoClock(env, coin.RabinFactory{Seed: 1})
	var last uint64
	haveLast := false
	for beat := uint64(0); beat < 20; beat++ {
		sends := p.Compose(beat)
		var inbox []proto.Recv
		for _, s := range sends {
			inbox = append(inbox, proto.Recv{From: 0, Msg: s.Msg})
		}
		p.Deliver(beat, inbox)
		if v, ok := p.Clock(); ok {
			if haveLast && v != (last+1)%2 {
				t.Fatalf("single node clock not alternating: %d -> %d", last, v)
			}
			last, haveLast = v, true
		}
	}
	if !haveLast {
		t.Fatal("single-node clock never defined")
	}
}

// TestClockSyncModulusOne: k=1 is degenerate but legal; the clock is
// constant zero.
func TestClockSyncModulusOne(t *testing.T) {
	env := proto.Env{N: 4, F: 1, ID: 0, Rng: rand.New(rand.NewSource(2))}
	p := core.NewClockSync(env, 1, coin.RabinFactory{Seed: 1})
	for beat := uint64(0); beat < 10; beat++ {
		p.Compose(beat)
		p.Deliver(beat, nil)
		if v, _ := p.Clock(); v != 0 {
			t.Fatalf("k=1 clock = %d", v)
		}
	}
}

// TestDuplicateSenderMessagesCountedOnce: a Byzantine node sending five
// clock votes in one beat contributes at most one to the tally.
func TestDuplicateSenderMessagesCountedOnce(t *testing.T) {
	env := proto.Env{N: 4, F: 1, ID: 0, Rng: rand.New(rand.NewSource(3))}
	p := core.NewTwoClock(env, coin.RabinFactory{Seed: 2})
	// One honest vote for 0 plus five duplicate votes for 0 from a single
	// Byzantine sender: two distinct voters < quorum (3), so the clock
	// must stay ⊥. If duplicates each counted, one Byzantine sender could
	// fabricate a quorum alone.
	inbox := []proto.Recv{
		{From: 1, Msg: proto.Envelope{Child: 0, Inner: core.TwoClockMsg{V: 0}}},
	}
	for i := 0; i < 5; i++ {
		inbox = append(inbox, proto.Recv{From: 3, Msg: proto.Envelope{Child: 0, Inner: core.TwoClockMsg{V: 0}}})
	}
	p.Compose(0)
	p.Deliver(0, inbox)
	if _, ok := p.Clock(); ok {
		t.Fatal("duplicates from one sender fabricated a quorum")
	}
}
