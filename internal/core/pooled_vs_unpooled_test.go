package core_test

// Differential harness for the message-payload pooling introduced with
// the message-lifetime ownership contract (proto.Message): a pooled
// engine must replay byte-identically to the unpooled reference
// (SSBYZ_POOL=off path) from the same seed — same per-beat clock traces,
// same phase-3 rand streams, same cumulative message and byte metrics —
// across the full adversary suite, cluster sizes 4/8/16 and scheduler
// worker counts 1 and 8, through a mid-run memory scramble.
//
// The pooled side runs in POISON mode: recycled buffers are scribbled
// with invalid field elements, so any component that illegally retains a
// reference into a beat's payload (the bug class the ownership contract
// exists to prevent) corrupts its own behavior and shows up as a trace
// divergence here. Replayer is the load-bearing suite member: it records
// intercepted traffic across beats and must deep-copy (proto.Clone)
// everything it keeps.

import (
	"fmt"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/sim"
)

// poolTrace fingerprints one run: per-beat honest clock values and rand
// bits, plus the engine's cumulative metrics (bytes are content-
// sensitive: a single stale byte in a pooled payload changes them).
type poolTrace struct {
	clocks      [][]uint64
	rands       [][]byte
	honestMsgs  uint64
	faultyMsgs  uint64
	honestBytes uint64
}

func runPoolTrace(n, f int, seed int64, factory coin.Factory, adv advCase, mode sim.PoolMode, workers, beats int) poolTrace {
	var eng *sim.Engine
	cfg := sim.Config{
		N: n, F: f, Seed: seed, Workers: workers,
		CountBytes:    true,
		ScrambleStart: true,
		Pool:          mode,
		NewAdversary:  adv.mk(&eng),
	}
	eng = sim.New(cfg, core.NewClockSyncProtocolLayout(16, factory, core.LayoutShared))
	var tr poolTrace
	record := func(count int) {
		for i := 0; i < count; i++ {
			eng.Step()
			st := sim.ReadClocks(eng)
			tr.clocks = append(tr.clocks, append([]uint64(nil), st.Values...))
			rands := make([]byte, 0, len(st.Values))
			for _, id := range eng.HonestIDs() {
				rands = append(rands, eng.Node(id).(*core.ClockSync).RandBit())
			}
			tr.rands = append(tr.rands, rands)
		}
	}
	record(beats)
	// A transient fault mid-run: scrambled pipelines (corruptFlipper
	// wrappers, garbage tallies) must also behave identically pooled.
	eng.ScrambleHonest()
	record(beats)
	tr.honestMsgs, tr.faultyMsgs, tr.honestBytes = eng.HonestMsgs, eng.FaultyMsgs, eng.HonestBytes
	return tr
}

func diffPoolTraces(t *testing.T, want, got poolTrace, label string) {
	t.Helper()
	if got.honestMsgs != want.honestMsgs || got.faultyMsgs != want.faultyMsgs || got.honestBytes != want.honestBytes {
		t.Fatalf("%s: metrics diverged: honest %d vs %d, faulty %d vs %d, bytes %d vs %d",
			label, got.honestMsgs, want.honestMsgs, got.faultyMsgs, want.faultyMsgs,
			got.honestBytes, want.honestBytes)
	}
	for b := range want.clocks {
		for i := range want.clocks[b] {
			if got.clocks[b][i] != want.clocks[b][i] {
				t.Fatalf("%s: clock trace diverged at beat %d node %d: %d vs %d",
					label, b, i, got.clocks[b][i], want.clocks[b][i])
			}
		}
		for i := range want.rands[b] {
			if got.rands[b][i] != want.rands[b][i] {
				t.Fatalf("%s: rand trace diverged at beat %d honest#%d", label, b, i)
			}
		}
	}
}

// TestPooledVsUnpooledDifferential is the ownership-contract equivalence
// proof: poisoned-pool runs replay the unpooled reference bit for bit.
// The FM coin exercises the real GVSS payload path (the pooled share and
// echo matrices) at every size; beats are kept moderate at n=16 where a
// beat costs milliseconds.
func TestPooledVsUnpooledDifferential(t *testing.T) {
	suite := adversarySuite()
	for _, n := range []int{4, 8, 16} {
		f := (n - 1) / 3
		beats := 48
		if n == 16 {
			beats = 20
		}
		for _, adv := range suite {
			advBeats := beats
			if n == 16 && adv.name == "coinattack" {
				// The coin-directed chain deep-copies n² payloads per
				// recipient per stage; a short window keeps the tier-1
				// budget while still covering the attack at full size.
				advBeats = 8
			}
			t.Run(fmt.Sprintf("n=%d/%s", n, adv.name), func(t *testing.T) {
				beats := advBeats
				ref := runPoolTrace(n, f, 7, coin.FMFactory{}, adv, sim.PoolOff, 1, beats)
				for _, workers := range []int{1, 8} {
					got := runPoolTrace(n, f, 7, coin.FMFactory{}, adv, sim.PoolPoison, workers, beats)
					diffPoolTraces(t, ref, got, fmt.Sprintf("poisoned pool, workers=%d", workers))
				}
			})
		}
	}
}

// TestPooledPaperLayoutDifferential covers the paper layout too: three
// per-consumer pipelines per node triple the concurrently pooled
// sessions, the shape most likely to surface cross-instance aliasing.
func TestPooledPaperLayoutDifferential(t *testing.T) {
	run := func(mode sim.PoolMode) poolTrace {
		var eng *sim.Engine
		adv := adversarySuite()[0] // replayer: the recording adversary
		cfg := sim.Config{
			N: 7, F: 2, Seed: 11, CountBytes: true, ScrambleStart: true,
			Pool: mode, NewAdversary: adv.mk(&eng),
		}
		eng = sim.New(cfg, core.NewClockSyncProtocolLayout(16, coin.FMFactory{}, core.LayoutPaper))
		var tr poolTrace
		for i := 0; i < 60; i++ {
			eng.Step()
			st := sim.ReadClocks(eng)
			tr.clocks = append(tr.clocks, append([]uint64(nil), st.Values...))
			tr.rands = append(tr.rands, nil)
		}
		tr.honestMsgs, tr.faultyMsgs, tr.honestBytes = eng.HonestMsgs, eng.FaultyMsgs, eng.HonestBytes
		return tr
	}
	diffPoolTraces(t, run(sim.PoolOff), run(sim.PoolPoison), "paper layout, poisoned pool")
}
