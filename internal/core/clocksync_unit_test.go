package core

// White-box unit tests of ss-Byz-Clock-Sync's phase machinery, exercising
// Figure 4's blocks in isolation from the simulation engine.

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
)

func unitEnv(id int) proto.Env {
	return proto.Env{N: 4, F: 1, ID: id, Rng: rand.New(rand.NewSource(int64(id) + 1))}
}

// driveToPhase advances a single isolated node (fed only its own
// messages) until its 4-clock reports the wanted phase at compose time,
// returning the beat to use next. The embedded clocks converge alone
// because a single sender forms its own quorum at n=1... at n=4 it
// cannot, so we instead drive four nodes in lockstep and return them.
func driveCluster(t *testing.T, k uint64, beats int) []*ClockSync {
	t.Helper()
	nodes := make([]*ClockSync, 4)
	for i := range nodes {
		nodes[i] = NewClockSync(unitEnv(i), k, coin.RabinFactory{Seed: 5})
	}
	for beat := uint64(0); beat < uint64(beats); beat++ {
		inboxes := make([][]proto.Recv, len(nodes))
		for id, nd := range nodes {
			for _, s := range nd.Compose(beat) {
				if s.To == proto.Broadcast {
					for to := range inboxes {
						inboxes[to] = append(inboxes[to], proto.Recv{From: id, Msg: s.Msg})
					}
				} else if s.To >= 0 && s.To < len(nodes) {
					inboxes[s.To] = append(inboxes[s.To], proto.Recv{From: id, Msg: s.Msg})
				}
			}
		}
		for id, nd := range nodes {
			nd.Deliver(beat, inboxes[id])
		}
	}
	return nodes
}

func TestPhasesCycleAfterConvergence(t *testing.T) {
	nodes := driveCluster(t, 16, 40)
	// All nodes must report the same phase, and phases must cycle
	// 0,1,2,3 over the next beats.
	var seq []uint64
	for beat := uint64(40); beat < 48; beat++ {
		inboxes := make([][]proto.Recv, len(nodes))
		for id, nd := range nodes {
			for _, s := range nd.Compose(beat) {
				if s.To == proto.Broadcast {
					for to := range inboxes {
						inboxes[to] = append(inboxes[to], proto.Recv{From: id, Msg: s.Msg})
					}
				}
			}
		}
		p0, ok := nodes[0].Phase()
		if !ok {
			t.Fatal("phase undefined after 40 beats")
		}
		for _, nd := range nodes[1:] {
			p, ok := nd.Phase()
			if !ok || p != p0 {
				t.Fatalf("phases diverged: %d vs %d", p0, p)
			}
		}
		seq = append(seq, p0)
		for id, nd := range nodes {
			nd.Deliver(beat, inboxes[id])
		}
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] != (seq[i-1]+1)%4 {
			t.Fatalf("phase sequence broken: %v", seq)
		}
	}
}

func TestFullClockAlwaysBelowModulus(t *testing.T) {
	nodes := driveCluster(t, 7, 60) // non-power-of-two modulus
	for _, nd := range nodes {
		v, ok := nd.Clock()
		if !ok || v >= 7 {
			t.Fatalf("clock %d out of range for k=7", v)
		}
	}
}

func TestTallyValidation(t *testing.T) {
	// Feed one node Byzantine phase traffic directly: out-of-range full
	// clocks and bits must not enter the tallies used next beat.
	nd := NewClockSync(unitEnv(0), 8, coin.RabinFactory{Seed: 1})
	nd.Compose(0)
	nd.Deliver(0, []proto.Recv{
		{From: 1, Msg: proto.Envelope{Child: clockSyncChildMsg, Inner: FullClockMsg{V: 99}}}, // >= k
		{From: 2, Msg: proto.Envelope{Child: clockSyncChildMsg, Inner: BitMsg{B: 7}}},        // not 0/1
		{From: 3, Msg: proto.Envelope{Child: clockSyncChildMsg, Inner: ProposeMsg{V: 1000}}}, // >= k
		{From: -1, Msg: proto.Envelope{Child: clockSyncChildMsg, Inner: FullClockMsg{V: 1}}}, // bad sender
		{From: 99, Msg: proto.Envelope{Child: clockSyncChildMsg, Inner: FullClockMsg{V: 1}}}, // bad sender
	})
	if nd.prev.fullClock.size() != 0 || nd.prev.propose.size() != 0 || nd.prev.bits != [2]int{} {
		t.Fatalf("invalid traffic entered tallies: %+v", nd.prev)
	}
}

func TestTallyDedupPerSender(t *testing.T) {
	nd := NewClockSync(unitEnv(0), 8, coin.RabinFactory{Seed: 2})
	nd.Compose(0)
	inbox := []proto.Recv{}
	for i := 0; i < 5; i++ {
		inbox = append(inbox, proto.Recv{From: 1, Msg: proto.Envelope{Child: clockSyncChildMsg, Inner: FullClockMsg{V: 3}}})
	}
	nd.Deliver(0, inbox)
	if nd.prev.fullClock.get(3) != 1 {
		t.Fatalf("duplicate sender counted %d times", nd.prev.fullClock.get(3))
	}
}

func TestScrambleLeavesUsableState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nd := NewClockSync(unitEnv(0), 8, coin.RabinFactory{Seed: 3})
	for i := 0; i < 50; i++ {
		nd.Scramble(rng)
		beat := uint64(i)
		nd.Compose(beat)
		nd.Deliver(beat, nil)
		if v, ok := nd.Clock(); !ok || v >= 8 {
			t.Fatalf("clock invalid after scramble: %d %v", v, ok)
		}
	}
}
