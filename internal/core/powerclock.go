package core

import (
	"fmt"
	"math/rand"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
)

// clockProto is what PowerClock needs from a sub-clock.
type clockProto interface {
	proto.Protocol
	proto.ClockReader
	proto.Scrambler
}

// PowerClock is the recursive 2^j-Clock construction sketched at the top
// of the paper's Section 5: a 2m-clock is built from A1 solving the
// m-clock problem and A2 solving the 2-clock problem, where A2 executes a
// beat exactly when A1 is about to wrap, and the output is
// clock(A1) + m·clock(A2).
//
// The paper introduces this construction only to reject it: it solves
// k-Clock for k = 2^j, but each doubling adds a concurrent 2-clock
// (log k message overhead) and the slowest level flips every k/2 beats,
// so expected convergence grows with k instead of staying constant.
// Experiment E11 measures exactly that against ss-Byz-Clock-Sync, which
// is the paper's replacement (Figure 4, constant overhead).
type PowerClock struct {
	env proto.Env
	m   uint64 // modulus of this level, a power of two >= 2
	a1  clockProto
	a2  *TwoClock
	// shared is non-nil on the top-level instance when the stack runs
	// LayoutShared: one coin pipeline serves every level's 2-clock.
	shared   *coin.SharedPipeline
	stepA2   bool
	splitter proto.InboxSplitter
	sends    proto.SendBuf
	arena    proto.SendArena
}

var (
	_ proto.Protocol    = (*PowerClock)(nil)
	_ proto.ClockReader = (*PowerClock)(nil)
	_ proto.Scrambler   = (*PowerClock)(nil)
)

// NewPowerClock builds the recursive construction for modulus m, which
// must be a power of two >= 2, under DefaultLayout. Under LayoutShared
// every level's 2-clock reads a derived bit from one shared pipeline —
// which removes the construction's log k *coin* overhead but not its
// fundamental flaw, the k/2-beat top-level flip; under LayoutPaper each
// level gets its own pipelines from the factory.
func NewPowerClock(env proto.Env, m uint64, factory coin.Factory) (*PowerClock, error) {
	return NewPowerClockLayout(env, m, factory, DefaultLayout())
}

// NewPowerClockLayout additionally pins the coin layout.
func NewPowerClockLayout(env proto.Env, m uint64, factory coin.Factory, l Layout) (*PowerClock, error) {
	if m < 2 || m&(m-1) != 0 {
		return nil, fmt.Errorf("core: power-clock modulus %d is not a power of two >= 2", m)
	}
	supply, sp := newSupply(env, factory, l)
	pc, err := newPowerClock(env, m, supply)
	if err != nil {
		return nil, err
	}
	pc.shared = sp
	return pc, nil
}

// newPowerClock wires one level (and, recursively, the levels below it)
// as consumers of the given coin supply.
func newPowerClock(env proto.Env, m uint64, supply coin.Supply) (*PowerClock, error) {
	if m < 2 || m&(m-1) != 0 {
		return nil, fmt.Errorf("core: power-clock modulus %d is not a power of two >= 2", m)
	}
	pc := &PowerClock{env: env, m: m, a2: newTwoClock(env, supply, VariantCorrect, fmt.Sprintf("power/m%d/a2", m))}
	switch {
	case m == 2:
		// Degenerate level: a bare 2-clock (a1 unused).
		pc.a1 = nil
	case m == 4:
		pc.a1 = newTwoClock(env, supply, VariantCorrect, "power/m4/a1")
	default:
		inner, err := newPowerClock(env, m/2, supply)
		if err != nil {
			return nil, err
		}
		pc.a1 = inner
	}
	return pc, nil
}

// Compose implements proto.Protocol. The same child tags as FourClock:
// 0 = A1, 1 = A2. A2 executes exactly on the beats where A1 is about to
// wrap to 0 — the generalization of Figure 3's guard (for m = 4, A1 is a
// 2-clock and the guard is clock(A1) = 1, matching FourClock).
func (pc *PowerClock) Compose(beat uint64) []proto.Send {
	pc.arena.Reset()
	if pc.m == 2 {
		// The degenerate level forwards A2's sends unwrapped; an owned
		// shared pipeline still rides the reserved root-level tag, which
		// A2's own splitter drops as out of range.
		out := append(pc.sends.Take(), pc.a2.Compose(beat)...)
		out = composeShared(&pc.arena, out, pc.shared, beat)
		pc.sends.Keep(out)
		return out
	}
	out := pc.arena.Wrap(fourClockChildA1, pc.a1.Compose(beat), pc.sends.Take())
	v1, ok1 := pc.a1.Clock()
	pc.stepA2 = ok1 && v1 == pc.m/2-1
	if pc.stepA2 {
		out = pc.arena.Wrap(fourClockChildA2, pc.a2.Compose(beat), out)
	}
	out = composeShared(&pc.arena, out, pc.shared, beat)
	pc.sends.Keep(out)
	return out
}

// EndBeat implements proto.BeatEnder: park per-beat backing in the
// process pools and forward the hook down the levels.
func (pc *PowerClock) EndBeat() {
	pc.arena.Release()
	pc.splitter.Release()
	pc.sends.Release()
	if be, ok := pc.a1.(proto.BeatEnder); ok {
		be.EndBeat()
	}
	pc.a2.EndBeat()
	if pc.shared != nil {
		pc.shared.EndBeat()
	}
}

// Deliver implements proto.Protocol. An owned shared pipeline is
// delivered before any level, so every 2-clock consumes the bit produced
// this beat.
func (pc *PowerClock) Deliver(beat uint64, inbox []proto.Recv) {
	if pc.m == 2 {
		if pc.shared != nil {
			boxes := pc.splitter.Split(inbox, int(proto.SharedCoinChild)+1)
			pc.shared.Deliver(beat, boxes[proto.SharedCoinChild])
		}
		// A2 splits the (unwrapped) inbox itself; foreign tags — including
		// the shared-coin tag just consumed — are dropped by its splitter.
		pc.a2.Deliver(beat, inbox)
		return
	}
	boxes := deliverShared(&pc.splitter, pc.shared, fourClockKids, beat, inbox)
	if pc.stepA2 {
		pc.a2.Deliver(beat, boxes[fourClockChildA2])
	}
	pc.a1.Deliver(beat, boxes[fourClockChildA1])
}

// Clock implements proto.ClockReader: clock(A1) + (m/2)·clock(A2).
func (pc *PowerClock) Clock() (uint64, bool) {
	if pc.m == 2 {
		return pc.a2.Clock()
	}
	v1, ok1 := pc.a1.Clock()
	v2, ok2 := pc.a2.Clock()
	if !ok1 || !ok2 {
		return 0, false
	}
	return v1 + pc.m/2*v2, true
}

// Modulus implements proto.ClockReader.
func (pc *PowerClock) Modulus() uint64 { return pc.m }

// Scramble implements proto.Scrambler.
func (pc *PowerClock) Scramble(rng *rand.Rand) {
	if pc.a1 != nil {
		pc.a1.Scramble(rng)
	}
	pc.a2.Scramble(rng)
	if pc.shared != nil {
		pc.shared.Scramble(rng)
	}
	pc.stepA2 = rng.Intn(2) == 0
}

// NewPowerClockProtocol adapts NewPowerClock to a sim.NodeFactory; it
// panics on invalid moduli (a programming error in experiment code).
func NewPowerClockProtocol(m uint64, factory coin.Factory) func(proto.Env) proto.Protocol {
	return NewPowerClockProtocolLayout(m, factory, DefaultLayout())
}

// NewPowerClockProtocolLayout adapts NewPowerClockLayout to a node
// factory, pinning the coin layout.
func NewPowerClockProtocolLayout(m uint64, factory coin.Factory, l Layout) func(proto.Env) proto.Protocol {
	return func(env proto.Env) proto.Protocol {
		pc, err := NewPowerClockLayout(env, m, factory, l)
		if err != nil {
			panic(err)
		}
		return pc
	}
}
