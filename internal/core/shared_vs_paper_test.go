package core_test

// Differential harness for the shared coin pipeline (Remark 4.1): the
// shared-layout clock stack must behave exactly like the paper-layout
// stack — converge under every adversary in the suite, hold closure in
// lockstep afterwards, and self-stabilize after a memory scramble — and
// every shared-layout run must replay byte-identically across reruns and
// scheduler worker counts.
//
// What "identical" means here, and why:
//
//   - Within a layout, everything is asserted bit-for-bit: convergence
//     beat, the full per-beat clock trace, the phase-3 rand stream and
//     the cumulative message/byte metrics are identical across reruns
//     and across Workers=1 vs Workers=8. This is the replay guarantee
//     consumers rely on.
//   - Across layouts, the *protocol properties* are asserted: both
//     stacks converge under the same adversary/seed/size, both then
//     tick in lockstep forever (their synced clocks keep a constant
//     offset — each obeys the +1 (mod k) law, so any closure slip in
//     either stack breaks the offset), and both re-converge after a
//     scramble. Bit-level trace equality across layouts is not a
//     property the remark claims: the shared pipeline derives
//     per-consumer bits from one word where the paper layout draws
//     three independent pipelines, so the random processes differ even
//     though their distributions (and every theorem about them) match.
//
// The adversary suite is everything in internal/adversary that applies
// to the stack: Replayer (stale-message noise), KingSpoiler (hostile to
// the baseline's messages — a no-op against this stack, kept so the
// suite stays the full one), OracleSplitter (clock-layer splitting with
// the public bit), Phase3Splitter (agreement-phase equivocation with the
// public bit), and the CoinAttack chain (grade splitting + share
// corruption + recovery corruption, the full attack on the coin
// itself).

import (
	"fmt"
	"math/rand"
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

func testEnv(n, f, id int, seed int64) proto.Env {
	return proto.Env{N: n, F: f, ID: id, Rng: rand.New(rand.NewSource(seed))}
}

// advCase builds one suite adversary; eng lets oracle-equipped attacks
// read the public bit from the engine they run inside (assigned after
// sim.New returns, before the first Step).
type advCase struct {
	name string
	mk   func(eng **sim.Engine) func(*adversary.Context) adversary.Adversary
}

func adversarySuite() []advCase {
	return []advCase{
		{"replayer", func(**sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} }
		}},
		{"kingspoiler", func(**sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary { return &adversary.KingSpoiler{Ctx: ctx} }
		}},
		{"oraclesplitter", func(eng **sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary {
				return &adversary.OracleSplitter{Ctx: ctx, BitOracle: func() byte {
					return (*eng).Node(0).(*core.ClockSync).RandBit()
				}}
			}
		}},
		{"phase3", func(eng **sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary {
				return &adversary.Phase3Splitter{Ctx: ctx, BitOracle: func() byte {
					return (*eng).Node(0).(*core.ClockSync).RandBit()
				}}
			}
		}},
		{"coinattack", func(**sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary {
				return adversary.Chain{Advs: []adversary.Adversary{
					&adversary.GradeSplitter{Ctx: ctx},
					&adversary.ShareCorruptor{Ctx: ctx},
					&adversary.RecoverCorruptor{Ctx: ctx},
				}}
			}
		}},
	}
}

// newStack builds one engine running the clock-sync stack at the given
// layout under the given suite adversary.
func newStack(n, f int, k uint64, seed int64, factory coin.Factory, l core.Layout, adv advCase) *sim.Engine {
	var eng *sim.Engine
	cfg := sim.Config{
		N: n, F: f, Seed: seed,
		NewAdversary:  adv.mk(&eng),
		ScrambleStart: true,
	}
	eng = sim.New(cfg, core.NewClockSyncProtocolLayout(k, factory, l))
	return eng
}

// TestSharedVsPaperDifferential runs both layouts side by side across
// the adversary suite, seeds, and n in {4, 8, 16}: the Rabin coin covers
// every size (its message-free pipeline keeps n=16 affordable), the FM
// coin covers n in {4, 8} in full and n=16 under the coin-directed
// attack, where the shared pipeline's GVSS path is actually stressed.
func TestSharedVsPaperDifferential(t *testing.T) {
	const (
		k        = 16
		maxBeats = 1500
		hold     = 12
		window   = 32 // post-convergence lockstep beats
	)
	type job struct {
		coinName string
		factory  func(seed int64) coin.Factory
		sizes    []int
		seeds    []int64
		advs     []advCase
	}
	suite := adversarySuite()
	jobs := []job{
		{"rabin", func(seed int64) coin.Factory { return coin.RabinFactory{Seed: seed} },
			[]int{4, 8, 16}, []int64{1, 2}, suite},
		{"fm", func(int64) coin.Factory { return coin.FMFactory{} },
			[]int{4, 8}, []int64{1, 2}, suite},
		// One FM leg at n=16 keeps the GVSS path honest at the benchmark
		// size; the replayer is the affordable suite member there (the
		// coin-directed chain deep-copies n^2-share payloads per recipient
		// and would dominate the tier-1 budget — it runs at n <= 8 above).
		{"fm", func(int64) coin.Factory { return coin.FMFactory{} },
			[]int{16}, []int64{1}, suite[0:1]},
	}
	for _, jb := range jobs {
		for _, n := range jb.sizes {
			f := (n - 1) / 3
			for _, adv := range jb.advs {
				for _, seed := range jb.seeds {
					name := fmt.Sprintf("%s/n=%d/%s/seed=%d", jb.coinName, n, adv.name, seed)
					t.Run(name, func(t *testing.T) {
						paper := newStack(n, f, k, seed, jb.factory(seed), core.LayoutPaper, adv)
						shared := newStack(n, f, k, seed, jb.factory(seed), core.LayoutShared, adv)

						// Both layouts converge under the same adversary and seed.
						pres := sim.MeasureConvergence(paper, k, maxBeats, hold)
						sres := sim.MeasureConvergence(shared, k, maxBeats, hold)
						if !pres.Converged {
							t.Fatalf("paper layout did not converge within %d beats", maxBeats)
						}
						if !sres.Converged {
							t.Fatalf("shared layout did not converge within %d beats", maxBeats)
						}

						// Lockstep closure: once both are synced, their clocks
						// keep a constant offset (each must tick +1 mod k every
						// beat; any slip in either breaks the offset).
						assertLockstep(t, paper, shared, k, window)

						// Self-stabilization: a transient fault hits every
						// honest node in both stacks; both must re-converge and
						// return to lockstep.
						paper.ScrambleHonest()
						shared.ScrambleHonest()
						pres = sim.MeasureConvergence(paper, k, maxBeats, hold)
						sres = sim.MeasureConvergence(shared, k, maxBeats, hold)
						if !pres.Converged {
							t.Fatalf("paper layout did not re-converge after scramble")
						}
						if !sres.Converged {
							t.Fatalf("shared layout did not re-converge after scramble")
						}
						assertLockstep(t, paper, shared, k, window)
					})
				}
			}
		}
	}
}

// assertLockstep steps both engines window beats; both must stay synced
// with a constant clock offset throughout.
func assertLockstep(t *testing.T, paper, shared *sim.Engine, k uint64, window int) {
	t.Helper()
	offset := uint64(0)
	haveOffset := false
	for i := 0; i < window; i++ {
		paper.Step()
		shared.Step()
		pv, pok := sim.ReadClocks(paper).Synced()
		sv, sok := sim.ReadClocks(shared).Synced()
		if !pok || !sok {
			t.Fatalf("lockstep beat %d: lost sync (paper ok=%v, shared ok=%v)", i, pok, sok)
		}
		d := (sv + k - pv) % k
		if !haveOffset {
			offset, haveOffset = d, true
		} else if d != offset {
			t.Fatalf("lockstep beat %d: clock offset drifted %d -> %d (closure slipped in one layout)",
				i, offset, d)
		}
	}
}

// sharedTrace is one deterministic-replay fingerprint of a shared-layout
// run: per-beat clocks, per-beat phase-3 rand bits, and the engine's
// cumulative metrics.
type sharedTrace struct {
	convergedAt int
	clocks      [][]uint64
	rands       [][]byte
	honestMsgs  uint64
	honestBytes uint64
}

func runSharedTrace(workers int, seed int64, beats int) sharedTrace {
	var eng *sim.Engine
	cfg := sim.Config{
		N: 7, F: 2, Seed: seed, Workers: workers, CountBytes: true,
		ScrambleStart: true,
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
			return &adversary.OracleSplitter{Ctx: ctx, BitOracle: func() byte {
				return eng.Node(0).(*core.ClockSync).RandBit()
			}}
		},
	}
	eng = sim.New(cfg, core.NewClockSyncProtocolLayout(16, coin.FMFactory{}, core.LayoutShared))
	res := sim.MeasureConvergence(eng, 16, 1500, 12)
	tr := sharedTrace{convergedAt: -1}
	if res.Converged {
		tr.convergedAt = res.ConvergedAt
	}
	for i := 0; i < beats; i++ {
		eng.Step()
		st := sim.ReadClocks(eng)
		tr.clocks = append(tr.clocks, append([]uint64(nil), st.Values...))
		rands := make([]byte, 0, eng.N())
		for _, id := range eng.HonestIDs() {
			rands = append(rands, eng.Node(id).(*core.ClockSync).RandBit())
		}
		tr.rands = append(tr.rands, rands)
	}
	tr.honestMsgs, tr.honestBytes = eng.HonestMsgs, eng.HonestBytes
	return tr
}

// TestSharedLayoutDeterministicReplay: identical convergence beats and
// clock/rand traces, byte for byte, across reruns and worker counts —
// the shared pipeline's consumer derivation depends only on consumer
// labels and the shared word, never on scheduling or subscription
// timing.
func TestSharedLayoutDeterministicReplay(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		base := runSharedTrace(1, seed, 24)
		if base.convergedAt < 0 {
			t.Fatalf("seed %d: no convergence", seed)
		}
		for _, workers := range []int{1, 8} {
			got := runSharedTrace(workers, seed, 24)
			if got.convergedAt != base.convergedAt {
				t.Fatalf("seed %d workers=%d: convergence beat %d != %d",
					seed, workers, got.convergedAt, base.convergedAt)
			}
			for b := range base.clocks {
				for i := range base.clocks[b] {
					if got.clocks[b][i] != base.clocks[b][i] {
						t.Fatalf("seed %d workers=%d: clock trace diverged at beat %d node %d",
							seed, workers, b, i)
					}
					if got.rands[b][i] != base.rands[b][i] {
						t.Fatalf("seed %d workers=%d: rand trace diverged at beat %d node %d",
							seed, workers, b, i)
					}
				}
			}
			if got.honestMsgs != base.honestMsgs || got.honestBytes != base.honestBytes {
				t.Fatalf("seed %d workers=%d: metrics diverged: msgs %d vs %d, bytes %d vs %d",
					seed, workers, got.honestMsgs, base.honestMsgs, got.honestBytes, base.honestBytes)
			}
		}
	}
}

// TestStackLabelsCollisionFree: constructing every shared-layout stack —
// including a deep power clock, the stack with the most consumers — must
// not trip SharedPipeline's duplicate/collision panic, i.e. the label
// sets wired in core are valid per the consumer-handle contract.
func TestStackLabelsCollisionFree(t *testing.T) {
	env := testEnv(4, 1, 0, 20)
	core.NewTwoClockLayout(env, coin.RabinFactory{Seed: 1}, core.VariantCorrect, core.LayoutShared)
	core.NewFourClockLayout(env, coin.RabinFactory{Seed: 1}, core.LayoutShared)
	core.NewClockSyncLayout(env, 64, coin.RabinFactory{Seed: 1}, false, core.LayoutShared)
	if _, err := core.NewPowerClockLayout(env, 1024, coin.RabinFactory{Seed: 1}, core.LayoutShared); err != nil {
		t.Fatal(err)
	}
}

// TestSharedPowerClockConverges: the shared layout also serves the
// recursive 2^j-clock (every level one consumer); it must converge and
// cycle exactly like the paper layout.
func TestSharedPowerClockConverges(t *testing.T) {
	for _, m := range []uint64{4, 8, 16} {
		for _, l := range []core.Layout{core.LayoutPaper, core.LayoutShared} {
			cfg := sim.Config{N: 4, F: 1, Seed: int64(m), NewAdversary: silentAdv, ScrambleStart: true}
			e := sim.New(cfg, core.NewPowerClockProtocolLayout(m, coin.RabinFactory{Seed: int64(m)}, l))
			res := sim.MeasureConvergence(e, m, 400*int(m), int(2*m))
			if !res.Converged {
				t.Fatalf("m=%d %v: no convergence", m, l)
			}
		}
	}
}
