package core_test

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

func TestPowerClockRejectsBadModulus(t *testing.T) {
	env := proto.Env{N: 4, F: 1, ID: 0, Rng: rand.New(rand.NewSource(1))}
	for _, m := range []uint64{0, 1, 3, 6, 12, 100} {
		if _, err := core.NewPowerClock(env, m, coin.LocalFactory{}); err == nil {
			t.Errorf("modulus %d accepted", m)
		}
	}
	for _, m := range []uint64{2, 4, 8, 64} {
		if _, err := core.NewPowerClock(env, m, coin.LocalFactory{}); err != nil {
			t.Errorf("modulus %d rejected: %v", m, err)
		}
	}
}

func TestPowerClockConvergesAndCycles(t *testing.T) {
	for _, m := range []uint64{2, 4, 8, 16} {
		cfg := sim.Config{N: 4, F: 1, Seed: int64(m), NewAdversary: silentAdv, ScrambleStart: true}
		e := sim.New(cfg, core.NewPowerClockProtocol(m, coin.RabinFactory{Seed: int64(m)}))
		// Convergence budget grows with m: the top-level 2-clock flips
		// only every m/2 beats (the construction's weakness).
		res := sim.MeasureConvergence(e, m, 400*int(m), int(2*m))
		if !res.Converged {
			t.Fatalf("m=%d: no convergence", m)
		}
		var prev uint64
		havePrev := false
		for i := 0; i < int(2*m); i++ {
			e.Step()
			v, ok := sim.ReadClocks(e).Synced()
			if !ok {
				t.Fatalf("m=%d: lost sync during closure check", m)
			}
			if havePrev && v != (prev+1)%m {
				t.Fatalf("m=%d: clock jumped %d -> %d", m, prev, v)
			}
			prev, havePrev = v, true
		}
	}
}

func TestPowerClockMatchesFourClockShape(t *testing.T) {
	// m=4 PowerClock is structurally FourClock; both must produce the
	// 0,1,2,3 cycle.
	cfg := sim.Config{N: 4, F: 1, Seed: 9, NewAdversary: silentAdv, ScrambleStart: true}
	e := sim.New(cfg, core.NewPowerClockProtocol(4, coin.RabinFactory{Seed: 9}))
	res := sim.MeasureConvergence(e, 4, 1000, 8)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		e.Step()
		v, ok := sim.ReadClocks(e).Synced()
		if !ok {
			t.Fatal("lost sync")
		}
		seen[v] = true
	}
	for v := uint64(0); v < 4; v++ {
		if !seen[v] {
			t.Fatalf("value %d never appeared: %v", v, seen)
		}
	}
}

func TestPowerClockConvergenceGrowsWithK(t *testing.T) {
	// The reason the paper rejects this construction (Section 5): its
	// convergence grows with k, while ss-Byz-Clock-Sync stays flat.
	mean := func(m uint64) float64 {
		total := 0
		const runs = 8
		for seed := int64(0); seed < runs; seed++ {
			cfg := sim.Config{N: 4, F: 1, Seed: seed, NewAdversary: silentAdv, ScrambleStart: true}
			e := sim.New(cfg, core.NewPowerClockProtocol(m, coin.RabinFactory{Seed: seed}))
			res := sim.MeasureConvergence(e, m, 500*int(m), 8)
			if !res.Converged {
				total += 500 * int(m)
				continue
			}
			total += res.ConvergedAt
		}
		return float64(total) / runs
	}
	small := mean(4)
	large := mean(32)
	if large < small+8 {
		t.Fatalf("power-clock convergence did not grow with k: m=4 %.1f vs m=32 %.1f", small, large)
	}
}

func TestPowerClockSelfStabilizes(t *testing.T) {
	cfg := sim.Config{N: 4, F: 1, Seed: 3, NewAdversary: silentAdv, ScrambleStart: true}
	e := sim.New(cfg, core.NewPowerClockProtocol(8, coin.RabinFactory{Seed: 3}))
	res := sim.MeasureConvergence(e, 8, 3000, 16)
	if !res.Converged {
		t.Fatal("no initial convergence")
	}
	e.ScrambleHonest()
	res = sim.MeasureConvergence(e, 8, 3000, 16)
	if !res.Converged {
		t.Fatal("no re-convergence after scramble")
	}
}
