package core_test

// Message-complexity spec tests: the per-beat traffic of each protocol
// follows a closed-form count, and the engine's tallies must match it
// (steady state, no faults). This pins down experiment E8's numbers
// analytically:
//
//   FM coin pipeline, per node per beat (Δ_A = 5 concurrent instances,
//   one per round): share n unicasts + echo n unicasts + vote/accept/
//   recover broadcasts (n deliveries each) = 5n deliveries.
//
//   ss-Byz-2-Clock    = pipeline + 1 clock broadcast      = 6n
//   ss-Byz-4-Clock    = A1 (6n) + A2 on alternate beats   = 9n averaged
//   ss-Byz-Clock-Sync = 4-clock (9n) + own pipeline (5n)
//                       + 1 phase broadcast               = 15n averaged
//
// A mismatch means a protocol sends messages on beats it should not (or
// drops ones it should send) — a regression canary.

import (
	"math"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/sim"
)

func measureMsgs(t *testing.T, factory sim.NodeFactory, n, f, beats int) float64 {
	t.Helper()
	e := sim.New(sim.Config{N: n, F: f, Seed: 1}, factory)
	e.Run(12) // settle pipelines and the A1/A2 alternation
	base := e.HonestMsgs
	e.Run(beats)
	return float64(e.HonestMsgs-base) / float64(beats) / float64(n-f)
}

func TestTwoClockMessageFormula(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		f := (n - 1) / 3
		got := measureMsgs(t, core.NewTwoClockProtocol(coin.FMFactory{}), n, f, 40)
		want := 6 * float64(n)
		if got != want {
			t.Fatalf("n=%d: %.2f msgs/node-beat, want exactly %.0f", n, got, want)
		}
	}
}

func TestFourClockMessageFormula(t *testing.T) {
	for _, n := range []int{4, 7} {
		f := (n - 1) / 3
		got := measureMsgs(t, core.NewFourClockProtocol(coin.FMFactory{}), n, f, 64)
		want := 9 * float64(n)
		if math.Abs(got-want) > float64(n)/2 {
			t.Fatalf("n=%d: %.2f msgs/node-beat, want ~%.0f", n, got, want)
		}
	}
}

func TestClockSyncMessageFormula(t *testing.T) {
	for _, n := range []int{4, 7} {
		f := (n - 1) / 3
		got := measureMsgs(t, core.NewClockSyncProtocol(64, coin.FMFactory{}), n, f, 64)
		want := 15 * float64(n)
		if math.Abs(got-want) > float64(n)/2 {
			t.Fatalf("n=%d: %.2f msgs/node-beat, want ~%.0f", n, got, want)
		}
	}
}

func TestRabinClockSyncMessageFormula(t *testing.T) {
	// With the message-free Rabin coin the formula drops to the clock
	// layers alone: 2-clock broadcasts (1 + 1/2 per beat averaged) plus
	// the phase broadcast ~ 2.5n per node-beat.
	for _, n := range []int{4, 7} {
		f := (n - 1) / 3
		got := measureMsgs(t, core.NewClockSyncProtocol(64, coin.RabinFactory{Seed: 1}), n, f, 64)
		want := 2.5 * float64(n)
		if math.Abs(got-want) > float64(n)/2 {
			t.Fatalf("n=%d: %.2f msgs/node-beat, want ~%.1f", n, got, want)
		}
	}
}
