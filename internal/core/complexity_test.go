package core_test

// Message-complexity spec tests: the per-beat traffic of each protocol
// follows a closed-form count, and the engine's tallies must match it
// (steady state, no faults). This pins down experiment E8's numbers
// analytically — for BOTH coin layouts, so the Δ-formula rows stay
// locked while the shared layout's savings are asserted exactly:
//
//   FM coin pipeline, per node per beat (Δ_A = 5 concurrent instances,
//   one per round): share n unicasts + echo n unicasts + vote/accept/
//   recover broadcasts (n deliveries each) = 5n deliveries.
//
//   Paper layout (one pipeline per consumer, Figures 2-4):
//     ss-Byz-2-Clock    = pipeline + 1 clock broadcast        = 6n
//     ss-Byz-4-Clock    = A1 (6n) + A2 on alternate beats     = 9n averaged
//     ss-Byz-Clock-Sync = 4-clock (9n) + own pipeline (5n)
//                         + phase broadcast on 3 of 4 beats   = 14.75n averaged
//
//   Shared layout (one pipeline per node, Remark 4.1):
//     ss-Byz-2-Clock    = pipeline + 1 clock broadcast        = 6n (single
//                         consumer: sharing saves nothing here)
//     ss-Byz-4-Clock    = pipeline (5n) + A1 bcast (n)
//                         + A2 bcast alternate beats (n/2)    = 6.5n averaged
//     ss-Byz-Clock-Sync = pipeline (5n) + A1 (n) + A2 (n/2)
//                         + phase broadcast (3n/4)            = 7.25n averaged
//
// A mismatch means a protocol sends messages on beats it should not (or
// drops ones it should send) — a regression canary. The shared layout
// must additionally be strictly cheaper than the paper layout wherever
// more than one consumer shares the pipeline.

import (
	"math"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/sim"
)

func measureMsgs(t *testing.T, factory sim.NodeFactory, n, f, beats int) float64 {
	t.Helper()
	e := sim.New(sim.Config{N: n, F: f, Seed: 1}, factory)
	e.Run(12) // settle pipelines and the A1/A2 alternation
	base := e.HonestMsgs
	e.Run(beats)
	return float64(e.HonestMsgs-base) / float64(beats) / float64(n-f)
}

func TestTwoClockMessageFormula(t *testing.T) {
	for _, l := range []core.Layout{core.LayoutPaper, core.LayoutShared} {
		for _, n := range []int{4, 7, 10} {
			f := (n - 1) / 3
			got := measureMsgs(t, core.NewTwoClockProtocolLayout(coin.FMFactory{}, l), n, f, 40)
			want := 6 * float64(n)
			if got != want {
				t.Fatalf("%v n=%d: %.2f msgs/node-beat, want exactly %.0f", l, n, got, want)
			}
		}
	}
}

func TestFourClockMessageFormula(t *testing.T) {
	for _, cse := range []struct {
		layout core.Layout
		factor float64
	}{
		{core.LayoutPaper, 9},
		{core.LayoutShared, 6.5},
	} {
		for _, n := range []int{4, 7} {
			f := (n - 1) / 3
			got := measureMsgs(t, core.NewFourClockProtocolLayout(coin.FMFactory{}, cse.layout), n, f, 64)
			want := cse.factor * float64(n)
			if math.Abs(got-want) > float64(n)/2 {
				t.Fatalf("%v n=%d: %.2f msgs/node-beat, want ~%.1f", cse.layout, n, got, want)
			}
		}
	}
}

func TestClockSyncMessageFormula(t *testing.T) {
	for _, cse := range []struct {
		layout core.Layout
		factor float64
	}{
		{core.LayoutPaper, 14.75},
		{core.LayoutShared, 7.25},
	} {
		for _, n := range []int{4, 7} {
			f := (n - 1) / 3
			got := measureMsgs(t, core.NewClockSyncProtocolLayout(64, coin.FMFactory{}, cse.layout), n, f, 64)
			want := cse.factor * float64(n)
			if math.Abs(got-want) > float64(n)/2 {
				t.Fatalf("%v n=%d: %.2f msgs/node-beat, want ~%.1f", cse.layout, n, got, want)
			}
		}
	}
}

// TestSharedLayoutStrictlyCheaper is the E8 regression the shared
// pipeline exists for: wherever the stack has more than one coin
// consumer, the shared layout's per-beat message AND byte traffic must
// be strictly below the paper layout's (about 7.25n vs 14.75n messages
// for the full stack, and roughly a third of the bytes, since the GVSS
// payloads dominate).
func TestSharedLayoutStrictlyCheaper(t *testing.T) {
	measure := func(factory sim.NodeFactory, n, f int) (msgs, bytes float64) {
		e := sim.New(sim.Config{N: n, F: f, Seed: 1, CountBytes: true}, factory)
		e.Run(12)
		baseM, baseB := e.HonestMsgs, e.HonestBytes
		e.Run(64)
		div := 64 * float64(n-f)
		return float64(e.HonestMsgs-baseM) / div, float64(e.HonestBytes-baseB) / div
	}
	for _, n := range []int{4, 7, 10} {
		f := (n - 1) / 3
		pm, pb := measure(core.NewClockSyncProtocolLayout(64, coin.FMFactory{}, core.LayoutPaper), n, f)
		sm, sb := measure(core.NewClockSyncProtocolLayout(64, coin.FMFactory{}, core.LayoutShared), n, f)
		if sm >= pm {
			t.Errorf("n=%d: shared msgs/node-beat %.2f not below paper %.2f", n, sm, pm)
		}
		if sb >= pb {
			t.Errorf("n=%d: shared bytes/node-beat %.0f not below paper %.0f", n, sb, pb)
		}
		// The stack drops from 3 pipelines per node to 1: the coin term
		// dominates, so shared must land under 60% of paper on both axes.
		if sm > 0.6*pm || sb > 0.6*pb {
			t.Errorf("n=%d: shared layout saves too little: msgs %.2f vs %.2f, bytes %.0f vs %.0f",
				n, sm, pm, sb, pb)
		}

		fpm, _ := measure(core.NewFourClockProtocolLayout(coin.FMFactory{}, core.LayoutPaper), n, f)
		fsm, _ := measure(core.NewFourClockProtocolLayout(coin.FMFactory{}, core.LayoutShared), n, f)
		if fsm >= fpm {
			t.Errorf("n=%d: shared 4-clock msgs/node-beat %.2f not below paper %.2f", n, fsm, fpm)
		}
	}
}

func TestRabinClockSyncMessageFormula(t *testing.T) {
	// With the message-free Rabin coin the formula drops to the clock
	// layers alone — 2-clock broadcasts (1 + 1/2 per beat averaged) plus
	// the phase broadcast ~ 2.5n per node-beat — and the layouts tie:
	// there is no coin traffic to share.
	for _, l := range []core.Layout{core.LayoutPaper, core.LayoutShared} {
		for _, n := range []int{4, 7} {
			f := (n - 1) / 3
			got := measureMsgs(t, core.NewClockSyncProtocolLayout(64, coin.RabinFactory{Seed: 1}, l), n, f, 64)
			want := 2.5 * float64(n)
			if math.Abs(got-want) > float64(n)/2 {
				t.Fatalf("%v n=%d: %.2f msgs/node-beat, want ~%.1f", l, n, got, want)
			}
		}
	}
}
