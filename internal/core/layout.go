package core

import (
	"fmt"
	"os"
	"sync"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sscoin"
)

// Layout selects how a clock stack wires its consumers to ss-Byz-Coin-
// Flip pipelines. Both layouts stay supported forever: the paper layout
// is the literal transcription of Figures 2-4, the shared layout is
// Remark 4.1's optimization, and the differential harness
// (shared_vs_paper_test.go) holds them equivalent under the full
// adversary suite.
type Layout uint8

const (
	// LayoutShared (the default) runs ONE ss-Byz-Coin-Flip pipeline per
	// node, owned by the stack's root protocol; every consumer (the
	// clock-sync phase machinery, the 4-clock's A1/A2 2-clocks, each
	// power-clock level) reads a per-consumer bit derived from the shared
	// per-beat output (Remark 4.1; see coin.SharedPipeline). For the full
	// clock-sync stack this cuts the dominant GVSS cost and the coin
	// message complexity to a third.
	LayoutShared Layout = iota
	// LayoutPaper runs one pipeline per consumer — three per node for the
	// full stack — exactly as in the paper's figures.
	LayoutPaper
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutShared:
		return "shared"
	case LayoutPaper:
		return "paper"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// ParseLayout maps the names accepted by the SSBYZ_COIN_LAYOUT
// environment variable and CLI flags.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "shared":
		return LayoutShared, nil
	case "paper":
		return LayoutPaper, nil
	default:
		return LayoutShared, fmt.Errorf("core: unknown coin layout %q (want shared or paper)", s)
	}
}

// defaultLayout reads SSBYZ_COIN_LAYOUT once. CI runs the tier-1 suite
// under both values; unknown values fall back to shared so a typo cannot
// silently disable the layout under test (tests asserting a layout pass
// it explicitly).
var defaultLayout = sync.OnceValue(func() Layout {
	l, err := ParseLayout(os.Getenv("SSBYZ_COIN_LAYOUT"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err, "- using shared")
	}
	return l
})

// DefaultLayout is the layout used by constructors that do not take one:
// LayoutShared, unless the SSBYZ_COIN_LAYOUT environment variable says
// "paper".
func DefaultLayout() Layout { return defaultLayout() }

// newSupply builds the coin wiring for a stack root: the paper layout's
// per-instance supply, or a shared pipeline (returned separately so the
// root can own — compose, deliver, scramble — it).
func newSupply(env proto.Env, factory coin.Factory, l Layout) (coin.Supply, *coin.SharedPipeline) {
	if l == LayoutPaper {
		return sscoin.PerInstance(factory), nil
	}
	sp := coin.NewSharedPipeline(sscoin.New(env, factory))
	return sp, sp
}

// composeShared appends the shared pipeline's beat traffic to dst,
// wrapped under the reserved root-level envelope tag via the root's
// envelope arena; a no-op when this protocol is not the stack's owner
// (paper layout, or an embedded instance).
func composeShared(a *proto.SendArena, dst []proto.Send, sp *coin.SharedPipeline, beat uint64) []proto.Send {
	if sp == nil {
		return dst
	}
	return a.Wrap(proto.SharedCoinChild, sp.Compose(beat), dst)
}

// deliverShared is the root-side receive half shared by every stack
// root: split the inbox into the root's own child boxes — widened to
// cover the reserved shared-coin tag when this root owns the pipeline —
// and deliver the shared pipeline BEFORE any consumer, so the bits
// consumers read during their own Deliver are the ones produced this
// beat (the freshness Lemma 8 and Remark 3.1 require).
func deliverShared(splitter *proto.InboxSplitter, sp *coin.SharedPipeline, ownKids int, beat uint64, inbox []proto.Recv) [][]proto.Recv {
	kids := ownKids
	if sp != nil {
		kids = int(proto.SharedCoinChild) + 1
	}
	boxes := splitter.Split(inbox, kids)
	if sp != nil {
		sp.Deliver(beat, boxes[proto.SharedCoinChild])
	}
	return boxes
}
