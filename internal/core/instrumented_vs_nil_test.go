package core_test

// Differential harness for the observability registry (internal/obs):
// an engine wired to a live metrics registry must replay byte-identically
// to a nil-registry run from the same seed — same per-beat clock traces,
// same phase-3 rand streams, same cumulative message and byte counters —
// across the full adversary suite, cluster sizes 4/8/16 and scheduler
// worker counts 1 and 8, through a mid-run memory scramble. This is the
// hard invariant behind shipping metrics on by default: instrumentation
// observes the run, it never steers it.
//
// The same runs double as the wiring proof: after each instrumented
// run, the registry's engine series must equal the engine's own
// cumulative counters exactly.

import (
	"fmt"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/sim"
)

func runObsTrace(n, f int, seed int64, adv advCase, reg *obs.Registry, workers, beats int) poolTrace {
	var eng *sim.Engine
	cfg := sim.Config{
		N: n, F: f, Seed: seed, Workers: workers,
		CountBytes:    true,
		ScrambleStart: true,
		NewAdversary:  adv.mk(&eng),
		Metrics:       reg,
	}
	eng = sim.New(cfg, core.NewClockSyncProtocolLayout(16, coin.FMFactory{}, core.LayoutShared))
	var tr poolTrace
	record := func(count int) {
		for i := 0; i < count; i++ {
			eng.Step()
			st := sim.ReadClocks(eng)
			tr.clocks = append(tr.clocks, append([]uint64(nil), st.Values...))
			rands := make([]byte, 0, len(st.Values))
			for _, id := range eng.HonestIDs() {
				rands = append(rands, eng.Node(id).(*core.ClockSync).RandBit())
			}
			tr.rands = append(tr.rands, rands)
		}
	}
	record(beats)
	eng.ScrambleHonest()
	record(beats)
	tr.honestMsgs, tr.faultyMsgs, tr.honestBytes = eng.HonestMsgs, eng.FaultyMsgs, eng.HonestBytes
	return tr
}

// counterValue reads one counter series from a snapshot (0 if absent).
func counterValue(reg *obs.Registry, name string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// TestInstrumentedVsNilDifferential is the zero-footprint proof for the
// metrics registry, plus the exactness proof for the engine series.
func TestInstrumentedVsNilDifferential(t *testing.T) {
	suite := adversarySuite()
	for _, n := range []int{4, 8, 16} {
		f := (n - 1) / 3
		beats := 32
		if n == 16 {
			beats = 12
		}
		for _, adv := range suite {
			advBeats := beats
			if n == 16 && adv.name == "coinattack" {
				advBeats = 6 // the deep-copying chain is expensive at n=16
			}
			t.Run(fmt.Sprintf("n=%d/%s", n, adv.name), func(t *testing.T) {
				beats := advBeats
				ref := runObsTrace(n, f, 7, adv, nil, 1, beats)
				for _, workers := range []int{1, 8} {
					reg := obs.NewRegistry()
					got := runObsTrace(n, f, 7, adv, reg, workers, beats)
					diffPoolTraces(t, ref, got, fmt.Sprintf("instrumented, workers=%d", workers))
					// Wiring exactness: the scraped series ARE the engine's
					// cumulative counters.
					checks := []struct {
						series string
						want   uint64
					}{
						{"ssbyz_engine_beats_total", uint64(2 * beats)},
						{"ssbyz_engine_honest_msgs_total", got.honestMsgs},
						{"ssbyz_engine_faulty_msgs_total", got.faultyMsgs},
						{"ssbyz_engine_honest_bytes_total", got.honestBytes},
					}
					for _, c := range checks {
						if v := counterValue(reg, c.series); v != float64(c.want) {
							t.Fatalf("workers=%d: %s = %v, engine says %d", workers, c.series, v, c.want)
						}
					}
				}
			})
		}
	}
}

// TestSharedRegistryAccumulates pins the shared-registry contract: two
// engines on one registry add into the same series (restart and
// multi-engine scraping both rely on it).
func TestSharedRegistryAccumulates(t *testing.T) {
	reg := obs.NewRegistry()
	adv := adversarySuite()[0]
	one := runObsTrace(4, 1, 7, adv, reg, 1, 8)
	after1 := counterValue(reg, "ssbyz_engine_honest_msgs_total")
	two := runObsTrace(4, 1, 9, adv, reg, 1, 8)
	if after1 != float64(one.honestMsgs) {
		t.Fatalf("first run: series %v, engine %d", after1, one.honestMsgs)
	}
	if got, want := counterValue(reg, "ssbyz_engine_honest_msgs_total"), float64(one.honestMsgs+two.honestMsgs); got != want {
		t.Fatalf("shared registry: series %v, want %v", got, want)
	}
}

// TestEnginePoolRecycledSeries checks the pool lease/recycle counter:
// with pooling on, every beat recycles the leased compose payloads, so
// the series must be positive and stable across worker counts.
func TestEnginePoolRecycledSeries(t *testing.T) {
	run := func(workers int) float64 {
		reg := obs.NewRegistry()
		cfg := sim.Config{
			N: 4, F: 1, Seed: 3, Workers: workers,
			Pool:    sim.PoolOn,
			Metrics: reg,
		}
		eng := sim.New(cfg, core.NewClockSyncProtocolLayout(16, coin.FMFactory{}, core.LayoutShared))
		eng.Run(12)
		return counterValue(reg, "ssbyz_engine_pool_recycled_total")
	}
	w1 := run(1)
	if w1 == 0 {
		t.Fatalf("pooled run recycled nothing")
	}
	if w8 := run(8); w8 != w1 {
		t.Fatalf("pool_recycled differs across workers: %v vs %v", w1, w8)
	}
}
