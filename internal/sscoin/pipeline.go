// Package sscoin implements ss-Byz-Coin-Flip (Figure 1 of the paper): the
// transformation of a Δ_A-round probabilistic coin-flipping algorithm A
// into a self-stabilizing pipelined coin that emits one random bit every
// beat.
//
// The pipeline holds Δ_A concurrently executing instances of A, one per
// "age" 1..Δ_A. On every beat, the instance of age a executes its a-th
// round; the oldest instance's output becomes this beat's bit; instances
// shift one age older; and a fresh instance is created at age 1. Messages
// are tagged with the sender instance's age, which is positional rather
// than stored state — the recycled "session numbers" of the paper — so
// routing itself cannot be corrupted by a transient fault, and any
// corrupted instance state is flushed out of the pipeline within Δ_A
// beats (Lemma 1: convergence time Δ_ss-Byz-Coin-Flip = Δ_A).
//
// A clock stack wires its consumers to pipelines through a coin.Supply:
// PerInstance (this package) reproduces the paper's layout of one
// pipeline per consumer, while coin.SharedPipeline multiplexes a single
// Pipeline per node among all consumers (Remark 4.1) — Pipeline
// implements coin.Driver for that purpose.
package sscoin

import (
	"math/rand"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
)

// Pipeline is the per-node state of ss-Byz-Coin-Flip. It implements
// proto.Protocol, proto.BitReader, proto.Scrambler, and coin.Driver (so
// one pipeline can back a coin.SharedPipeline for a whole clock stack).
type Pipeline struct {
	env     proto.Env
	factory coin.Factory
	// slots[i] is the instance of age i+1; slots[len-1] is the oldest,
	// about to emit its output.
	slots []coin.Flipper
	bit   byte
	// word/rich widen the beat's output for shared-pipeline consumer
	// derivation: the retiring instance's OutputWord when it implements
	// coin.WordFlipper, else the bare bit (rich = false).
	word uint64
	rich bool

	// Per-beat scratch: the compose output buffer (its contents are
	// consumed within the beat per the engine contract), the envelope
	// arena recycling the age-tag boxes, and the inbox splitter. All
	// three park their backing in process pools at EndBeat, so an idle
	// resident pipeline holds no per-beat memory.
	sends    proto.SendBuf
	arena    proto.SendArena
	splitter proto.InboxSplitter
}

var (
	_ proto.Protocol  = (*Pipeline)(nil)
	_ proto.BitReader = (*Pipeline)(nil)
	_ proto.Scrambler = (*Pipeline)(nil)
	_ coin.Driver     = (*Pipeline)(nil)
	_ coin.Feed       = (*Pipeline)(nil)
)

// PerInstance returns the paper's coin wiring as a coin.Supply: every
// consumer gets its own independent pipeline, exactly the layout of
// Figures 2-4 (three pipelines per node for the full clock-sync stack).
// The alternative supply is coin.SharedPipeline (Remark 4.1).
func PerInstance(factory coin.Factory) coin.Supply {
	return perInstance{factory: factory}
}

type perInstance struct{ factory coin.Factory }

// Feed implements coin.Supply; the label is irrelevant when every
// consumer owns its pipeline.
func (p perInstance) Feed(env proto.Env, _ string) coin.Feed {
	return New(env, p.factory)
}

// New constructs the pipeline, filling every slot with a fresh instance.
// The pipeline's first Δ_A bits are unconverged (the initial instances
// never ran their early rounds), exactly as after a transient fault.
func New(env proto.Env, factory coin.Factory) *Pipeline {
	p := &Pipeline{env: env, factory: factory}
	p.slots = make([]coin.Flipper, factory.Rounds())
	for i := range p.slots {
		p.slots[i] = factory.New(env, 0)
	}
	return p
}

// Rounds returns Δ_A, the pipeline depth and the convergence time of the
// pipeline after a transient fault.
func (p *Pipeline) Rounds() int { return p.factory.Rounds() }

// Compose implements proto.Protocol: every instance sends its
// current-round messages, wrapped in an envelope carrying its age.
func (p *Pipeline) Compose(beat uint64) []proto.Send {
	out := p.sends.Take()
	p.arena.Reset()
	for i, slot := range p.slots {
		age := uint8(i + 1)
		out = p.arena.Wrap(age, slot.Compose(i+1), out)
	}
	p.sends.Keep(out)
	return out
}

// EndBeat implements proto.BeatEnder: the beat's messages are dead, so
// the envelope arena, splitter slab and compose buffer go back to the
// process pools, and instances that support the hook release their own.
func (p *Pipeline) EndBeat() {
	p.arena.Release()
	p.splitter.Release()
	p.sends.Release()
	for _, slot := range p.slots {
		if be, ok := slot.(proto.BeatEnder); ok {
			be.EndBeat()
		}
	}
}

// Deliver implements proto.Protocol: route messages to instances by age,
// capture the oldest instance's output as this beat's bit, then shift the
// pipeline and admit a fresh instance. When the factory supports
// recycling, the retiring oldest instance is re-initialized in place as
// the fresh one instead of being left to the garbage collector.
func (p *Pipeline) Deliver(beat uint64, inbox []proto.Recv) {
	depth := len(p.slots)
	// Child tag 0 is unused (ages are 1-based); the split covers 0..depth.
	boxes := p.splitter.Split(inbox, depth+1)
	for i, slot := range p.slots {
		slot.Deliver(i+1, boxes[i+1])
	}
	oldest := p.slots[depth-1]
	p.bit = oldest.Output()
	if wf, ok := oldest.(coin.WordFlipper); ok {
		p.word, p.rich = wf.OutputWord(), true
	} else {
		p.word, p.rich = uint64(p.bit), false
	}
	copy(p.slots[1:], p.slots[:depth-1])
	if r, ok := p.factory.(coin.Recycler); ok {
		p.slots[0] = r.Renew(oldest, p.env, beat)
	} else {
		p.slots[0] = p.factory.New(p.env, beat)
	}
}

// Bit implements proto.BitReader: the random bit emitted at the most
// recent beat.
func (p *Pipeline) Bit() byte { return p.bit }

// Word implements coin.Driver: the most recent beat's output widened to
// a word for per-consumer derivation, and whether it carries more
// randomness than the bare bit.
func (p *Pipeline) Word() (uint64, bool) { return p.word, p.rich }

// Scramble implements proto.Scrambler: model a transient fault by
// putting every in-flight instance into an arbitrary state. Corrupted
// instances keep exchanging (garbage) messages but emit an arbitrary,
// per-node-random output bit when they reach the end of the pipeline —
// the worst consistent interpretation of "memory set to an arbitrary
// value". Within Rounds() beats all corrupted instances are flushed and
// the pipeline emits properly distributed common bits again (Lemma 1).
func (p *Pipeline) Scramble(rng *rand.Rand) {
	for i := range p.slots {
		if rng.Intn(4) > 0 {
			// The corrupted word reuses the scramble seed draw: any
			// arbitrary value serves the fault model, and not drawing again
			// keeps the rng stream — hence every seeded paper-layout trace —
			// identical to the pre-shared-pipeline engine.
			seed := rng.Uint64()
			p.slots[i] = &corruptFlipper{
				inner: p.factory.New(p.env, seed),
				out:   byte(rng.Intn(2)),
				word:  seed,
			}
		}
	}
	p.bit = byte(rng.Intn(2))
	// The captured word is per-beat scratch (recaptured on the next
	// Deliver); deriving it from the scrambled bit instead of fresh draws
	// keeps the stream unchanged, as above.
	p.word, p.rich = uint64(p.bit), false
}

// corruptFlipper models a coin instance whose memory was hit by a
// transient fault: its protocol messages are garbage relative to its
// peers (a fresh instance started at the wrong round) and its output —
// bit and word alike — is arbitrary instead of the protocol's result.
type corruptFlipper struct {
	inner coin.Flipper
	out   byte
	word  uint64
}

func (c *corruptFlipper) Rounds() int                        { return c.inner.Rounds() }
func (c *corruptFlipper) Compose(round int) []proto.Send     { return c.inner.Compose(round) }
func (c *corruptFlipper) Deliver(round int, in []proto.Recv) { c.inner.Deliver(round, in) }
func (c *corruptFlipper) Output() byte                       { return c.out }
func (c *corruptFlipper) OutputWord() uint64                 { return c.word }

func (c *corruptFlipper) EndBeat() {
	if be, ok := c.inner.(proto.BeatEnder); ok {
		be.EndBeat()
	}
}
