package sscoin_test

import (
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
	"ssbyzclock/internal/sscoin"
)

func pipelineFactory(factory coin.Factory) sim.NodeFactory {
	return func(env proto.Env) proto.Protocol {
		return sscoin.New(env, factory)
	}
}

// runCoinStats runs the pipeline for warmup+beats beats and returns the
// per-beat agreement count and ones count over the measured window.
func runCoinStats(t *testing.T, cfg sim.Config, factory coin.Factory, warmup, beats int) (agree, ones int) {
	t.Helper()
	e := sim.New(cfg, pipelineFactory(factory))
	e.Run(warmup)
	for i := 0; i < beats; i++ {
		e.Step()
		st := sim.ReadBits(e)
		if b, ok := st.Agreed(); ok {
			agree++
			if b == 1 {
				ones++
			}
		}
	}
	return agree, ones
}

func TestFMCoinAllHonestAgreesEveryBeat(t *testing.T) {
	cfg := sim.Config{N: 4, F: 0, Seed: 1}
	warm := coin.FMRounds + 1
	beats := 60
	agree, ones := runCoinStats(t, cfg, coin.FMFactory{}, warm, beats)
	if agree != beats {
		t.Fatalf("agreement on %d/%d beats; want all (no faults)", agree, beats)
	}
	// The bit stream must not be constant.
	if ones == 0 || ones == beats {
		t.Fatalf("degenerate bit stream: %d ones of %d", ones, beats)
	}
}

func TestFMCoinUnderPassiveByzantine(t *testing.T) {
	cfg := sim.Config{N: 7, F: 2, Seed: 2}
	beats := 40
	agree, _ := runCoinStats(t, cfg, coin.FMFactory{}, coin.FMRounds+1, beats)
	if agree != beats {
		t.Fatalf("passive faulty nodes broke agreement: %d/%d", agree, beats)
	}
}

func TestFMCoinUnderSilentByzantine(t *testing.T) {
	cfg := sim.Config{
		N: 7, F: 2, Seed: 3,
		NewAdversary: func(*adversary.Context) adversary.Adversary { return adversary.Silent{} },
	}
	beats := 40
	agree, ones := runCoinStats(t, cfg, coin.FMFactory{}, coin.FMRounds+1, beats)
	if agree != beats {
		t.Fatalf("silent faulty nodes broke agreement: %d/%d", agree, beats)
	}
	if ones == 0 || ones == beats {
		t.Fatalf("degenerate bit stream under silent adversary: %d/%d", ones, beats)
	}
}

func TestFMCoinBalanced(t *testing.T) {
	// Definition 2.6's E0/E1: both outputs occur with constant
	// probability. With no faults agreement is certain, so over 200 beats
	// both sides must show up often (p0 = p1 = 1/2 up to leader parity).
	cfg := sim.Config{N: 4, F: 1, Seed: 4}
	beats := 200
	agree, ones := runCoinStats(t, cfg, coin.FMFactory{}, coin.FMRounds+1, beats)
	if agree < beats*9/10 {
		t.Fatalf("agreement too rare: %d/%d", agree, beats)
	}
	if ones < agree/4 || ones > agree*3/4 {
		t.Fatalf("biased coin: %d ones of %d agreed beats", ones, agree)
	}
}

func TestPipelineSelfStabilizes(t *testing.T) {
	// Lemma 1: after arbitrary state corruption the pipeline is a proper
	// pipelined coin again within Δ_A beats.
	cfg := sim.Config{N: 4, F: 1, Seed: 5}
	e := sim.New(cfg, pipelineFactory(coin.FMFactory{}))
	e.Run(coin.FMRounds + 2)
	e.ScrambleHonest()
	e.Run(coin.FMRounds) // convergence window
	agree := 0
	beats := 30
	for i := 0; i < beats; i++ {
		e.Step()
		if _, ok := sim.ReadBits(e).Agreed(); ok {
			agree++
		}
	}
	if agree != beats {
		t.Fatalf("after scramble+Δ_A, agreement %d/%d", agree, beats)
	}
}

func TestRabinCoinPerfectAgreement(t *testing.T) {
	cfg := sim.Config{N: 10, F: 3, Seed: 6,
		NewAdversary: func(*adversary.Context) adversary.Adversary { return adversary.Silent{} }}
	beats := 100
	agree, ones := runCoinStats(t, cfg, coin.RabinFactory{Seed: 42}, 2, beats)
	if agree != beats {
		t.Fatalf("rabin beacon disagreed: %d/%d", agree, beats)
	}
	if ones < beats/4 || ones > beats*3/4 {
		t.Fatalf("rabin beacon biased: %d/%d", ones, beats)
	}
}

func TestLocalCoinIsNotCommon(t *testing.T) {
	// The local coin must frequently disagree — that is the point of the
	// E9 ablation.
	cfg := sim.Config{N: 7, F: 0, Seed: 7}
	beats := 100
	agree, _ := runCoinStats(t, cfg, coin.LocalFactory{}, 2, beats)
	if agree > beats/4 {
		t.Fatalf("local coin agreed suspiciously often: %d/%d", agree, beats)
	}
}

func TestPipelineEmitsEveryBeat(t *testing.T) {
	// A pipelined coin yields one bit per beat (Definition 2.7's "each
	// round" outputs), not one bit per Δ_A beats: check the stream is
	// fresh by observing both values within a short window repeatedly.
	cfg := sim.Config{N: 4, F: 0, Seed: 8}
	e := sim.New(cfg, pipelineFactory(coin.FMFactory{}))
	e.Run(coin.FMRounds + 1)
	var stream []byte
	for i := 0; i < 64; i++ {
		e.Step()
		b, ok := sim.ReadBits(e).Agreed()
		if !ok {
			t.Fatalf("beat %d: no agreement", i)
		}
		stream = append(stream, b)
	}
	// No run of 20 identical bits in 64 fair flips (p ~ 2^-15 per run).
	run, longest := 1, 1
	for i := 1; i < len(stream); i++ {
		if stream[i] == stream[i-1] {
			run++
		} else {
			run = 1
		}
		if run > longest {
			longest = run
		}
	}
	if longest >= 20 {
		t.Fatalf("bit stream stuck: run of %d identical bits", longest)
	}
}
