package sscoin_test

import (
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
	"ssbyzclock/internal/sscoin"
)

// misTagger rewrites the age tag on every coin message the faulty nodes
// send, shifting it by one (mod pipeline depth): round-1 share messages
// arrive at peers' round-2 instances and so on. The pipeline's positional
// session routing must treat these as ordinary Byzantine garbage for the
// receiving instance — agreement and balance must survive.
type misTagger struct {
	ctx *adversary.Context
}

func (a misTagger) Act(_ uint64, composed []adversary.Sends, _ []adversary.Intercept) []adversary.Sends {
	out := make([]adversary.Sends, 0, len(composed))
	for _, s := range composed {
		shifted := make([]proto.Send, 0, len(s.Out))
		for _, snd := range s.Out {
			env, ok := proto.AsEnvelope(snd.Msg)
			if !ok {
				shifted = append(shifted, snd)
				continue
			}
			next := env.Child%uint8(coin.FMRounds) + 1 // 1..Δ_A shifted by one
			shifted = append(shifted, proto.Send{To: snd.To, Msg: proto.Envelope{Child: next, Inner: env.Inner}})
		}
		out = append(out, adversary.Sends{From: s.From, Out: shifted})
	}
	return out
}

func TestPipelineSurvivesAgeTagConfusion(t *testing.T) {
	cfg := sim.Config{
		N: 7, F: 2, Seed: 9,
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary { return misTagger{ctx: ctx} },
	}
	e := sim.New(cfg, func(env proto.Env) proto.Protocol {
		return sscoin.New(env, coin.FMFactory{})
	})
	e.Run(coin.FMRounds + 1)
	agree, ones, beats := 0, 0, 80
	for i := 0; i < beats; i++ {
		e.Step()
		if b, ok := sim.ReadBits(e).Agreed(); ok {
			agree++
			if b == 1 {
				ones++
			}
		}
	}
	if agree != beats {
		t.Fatalf("mis-tagged coin traffic broke agreement: %d/%d", agree, beats)
	}
	if ones == 0 || ones == agree {
		t.Fatalf("mis-tagged coin traffic froze the stream: %d/%d ones", ones, agree)
	}
}

// TestPipelineIgnoresOutOfRangeTags: tags outside 1..Δ_A must be dropped
// by the router, not crash or corrupt slot state.
func TestPipelineIgnoresOutOfRangeTags(t *testing.T) {
	badTagger := func(ctx *adversary.Context) adversary.Adversary {
		return tagBlaster{ctx: ctx}
	}
	cfg := sim.Config{N: 4, F: 1, Seed: 10, NewAdversary: badTagger}
	e := sim.New(cfg, func(env proto.Env) proto.Protocol {
		return sscoin.New(env, coin.FMFactory{})
	})
	e.Run(coin.FMRounds + 1)
	agree, beats := 0, 40
	for i := 0; i < beats; i++ {
		e.Step()
		if _, ok := sim.ReadBits(e).Agreed(); ok {
			agree++
		}
	}
	if agree != beats {
		t.Fatalf("out-of-range tags broke agreement: %d/%d", agree, beats)
	}
}

type tagBlaster struct {
	ctx *adversary.Context
}

func (a tagBlaster) Act(_ uint64, composed []adversary.Sends, _ []adversary.Intercept) []adversary.Sends {
	out := make([]adversary.Sends, 0, len(composed))
	for _, s := range composed {
		mangled := make([]proto.Send, 0, len(s.Out))
		for _, snd := range s.Out {
			if env, ok := proto.AsEnvelope(snd.Msg); ok {
				mangled = append(mangled, proto.Send{
					To:  snd.To,
					Msg: proto.Envelope{Child: 200 + env.Child, Inner: env.Inner},
				})
			}
		}
		out = append(out, adversary.Sends{From: s.From, Out: mangled})
	}
	return out
}
