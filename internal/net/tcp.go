package net

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPTransport runs the cluster over stream sockets, one lazily-dialled
// connection per (sender, receiver) direction carrying uvarint
// length-prefixed frames. TCP removes the wire's loss and reordering but
// the runtime cannot rely on that — connections drop and redial (with
// jittered exponential backoff), and each direction's per-peer send
// queue is bounded, so a dead peer costs a constant amount of memory and
// its frames are dropped, not hoarded.
type TCPTransport struct {
	mu       sync.Mutex
	addrs    []string
	prebound []*gonet.TCPListener
	attached []bool
	qcap     int
	seed     int64
}

// NewTCPTransport builds a transport over an explicit address book
// (addrs[i] is node i's listen address). qcap <= 0 selects DefaultQueue.
// Reconnect jitter uses a fixed default seed; thread the run seed with
// NewTCPTransportSeeded.
func NewTCPTransport(addrs []string, qcap int) *TCPTransport {
	return NewTCPTransportSeeded(addrs, qcap, 1)
}

// NewTCPTransportSeeded is NewTCPTransport with the run seed threaded
// into the endpoints' reconnect-backoff jitter: every (endpoint, peer)
// link derives a private deterministic stream from (seed, ids), so
// runs replay and many endpoints never contend on a shared rng.
func NewTCPTransportSeeded(addrs []string, qcap int, seed int64) *TCPTransport {
	if qcap <= 0 {
		qcap = DefaultQueue
	}
	return &TCPTransport{
		addrs:    append([]string(nil), addrs...),
		prebound: make([]*gonet.TCPListener, len(addrs)),
		attached: make([]bool, len(addrs)),
		qcap:     qcap,
		seed:     seed,
	}
}

// NewLoopbackTCP binds n listeners on 127.0.0.1 with kernel-chosen ports
// and returns a transport over them.
func NewLoopbackTCP(n, qcap int) (*TCPTransport, error) {
	return NewLoopbackTCPSeeded(n, qcap, 1)
}

// NewLoopbackTCPSeeded is NewLoopbackTCP with the run seed threaded
// into the backoff jitter (see NewTCPTransportSeeded).
func NewLoopbackTCPSeeded(n, qcap int, seed int64) (*TCPTransport, error) {
	t := NewTCPTransportSeeded(make([]string, n), qcap, seed)
	for i := 0; i < n; i++ {
		ln, err := gonet.ListenTCP("tcp", &gonet.TCPAddr{IP: gonet.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Close()
			return nil, err
		}
		t.prebound[i] = ln
		t.addrs[i] = ln.Addr().String()
	}
	return t, nil
}

// Endpoint implements Transport; after a Close, calling it again
// rebinds the node's listen address.
func (t *TCPTransport) Endpoint(id int) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.addrs) {
		return nil, fmt.Errorf("net: endpoint id %d out of range [0,%d)", id, len(t.addrs))
	}
	if t.attached[id] {
		return nil, fmt.Errorf("net: endpoint %d already attached", id)
	}
	ln := t.prebound[id]
	t.prebound[id] = nil
	if ln == nil {
		la, err := gonet.ResolveTCPAddr("tcp", t.addrs[id])
		if err != nil {
			return nil, fmt.Errorf("net: resolve %q: %w", t.addrs[id], err)
		}
		if ln, err = gonet.ListenTCP("tcp", la); err != nil {
			return nil, err
		}
	}
	t.attached[id] = true
	e := newTCPEndpoint(id, ln, t.addrs, t.qcap, t.seed)
	e.onClose = func() {
		t.mu.Lock()
		t.attached[id] = false
		t.mu.Unlock()
	}
	return e, nil
}

// Close implements Transport, releasing listeners not yet handed out.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, ln := range t.prebound {
		if ln != nil {
			ln.Close()
			t.prebound[i] = nil
		}
	}
	return nil
}

// NewTCPEndpoint builds a standalone endpoint for a node daemon: listen
// on listen, dial peers[i] for node i. Reconnect jitter uses a fixed
// default seed; daemons thread their run seed with NewTCPEndpointSeeded.
func NewTCPEndpoint(id int, listen string, peers []string, qcap int) (Endpoint, error) {
	return NewTCPEndpointSeeded(id, listen, peers, qcap, 1)
}

// NewTCPEndpointSeeded is NewTCPEndpoint with the run seed threaded
// into the reconnect-backoff jitter (see NewTCPTransportSeeded).
func NewTCPEndpointSeeded(id int, listen string, peers []string, qcap int, seed int64) (Endpoint, error) {
	if qcap <= 0 {
		qcap = DefaultQueue
	}
	la, err := gonet.ResolveTCPAddr("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("net: resolve %q: %w", listen, err)
	}
	ln, err := gonet.ListenTCP("tcp", la)
	if err != nil {
		return nil, err
	}
	return newTCPEndpoint(id, ln, peers, qcap, seed), nil
}

// maxStreamFrame bounds one length-prefixed record; a peer claiming more
// is corrupt or hostile and its connection is dropped.
const maxStreamFrame = 1 << 20

type tcpEndpoint struct {
	id      int
	ln      *gonet.TCPListener
	peers   []string
	qcap    int
	seed    int64
	recv    chan Packet
	dropped atomic.Uint64
	redials atomic.Uint64
	closed  atomic.Bool
	done    chan struct{}
	onClose func()

	mu    sync.Mutex
	links map[int]*tcpLink
	conns map[gonet.Conn]struct{}
	wg    sync.WaitGroup
}

// tcpLink is one outgoing direction: a bounded queue drained by a writer
// goroutine that owns dialling and redialling.
type tcpLink struct {
	queue chan []byte
}

func newTCPEndpoint(id int, ln *gonet.TCPListener, peers []string, qcap int, seed int64) *tcpEndpoint {
	e := &tcpEndpoint{
		id: id, ln: ln, peers: peers, qcap: qcap, seed: seed,
		recv:  make(chan Packet, qcap),
		done:  make(chan struct{}),
		links: make(map[int]*tcpLink),
		conns: make(map[gonet.Conn]struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed.Load() {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.conns[c] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.serve(c)
	}
}

// serve reads one inbound connection: a uvarint peer-id handshake, then
// length-prefixed frames until the stream breaks.
func (e *tcpEndpoint) serve(c gonet.Conn) {
	defer e.wg.Done()
	defer func() {
		e.mu.Lock()
		delete(e.conns, c)
		e.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	from, err := binary.ReadUvarint(br)
	if err != nil || from >= uint64(len(e.peers)) {
		return
	}
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxStreamFrame {
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(br, data); err != nil {
			return
		}
		select {
		case e.recv <- Packet{From: int(from), Data: data}:
		default:
			e.dropped.Add(1)
		}
	}
}

func (e *tcpEndpoint) ID() int { return e.id }

func (e *tcpEndpoint) Send(to int, frame []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= len(e.peers) {
		return fmt.Errorf("net: send to %d out of range", to)
	}
	e.mu.Lock()
	link := e.links[to]
	if link == nil {
		link = &tcpLink{queue: make(chan []byte, e.qcap)}
		e.links[to] = link
		e.wg.Add(1)
		go e.writeLoop(link, to, e.peers[to])
	}
	e.mu.Unlock()
	data := make([]byte, len(frame))
	copy(data, frame)
	select {
	case link.queue <- data:
	default:
		e.dropped.Add(1)
	}
	return nil
}

// backoffRng derives the (endpoint, peer) link's private jitter stream
// from the run seed, splitmix-style (the faultnet.Wrap seeding
// pattern). Each writeLoop goroutine owns its own rng: reconnect
// jitter is deterministic per (seed, from, to) — runs replay — and a
// process hosting thousands of endpoints never serializes its
// redial storms on the global math/rand lock.
func backoffRng(seed int64, from, to int) *rand.Rand {
	x := uint64(seed) ^ uint64(from)<<40 ^ uint64(to)<<20
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return rand.New(rand.NewSource(int64(x ^ (x >> 31))))
}

// writeLoop drains one peer's queue. The connection is dialled on first
// need and redialled after failures with jittered exponential backoff;
// frames that race a broken connection are dropped (counted), matching
// the layer's best-effort contract.
func (e *tcpEndpoint) writeLoop(link *tcpLink, to int, addr string) {
	defer e.wg.Done()
	var conn gonet.Conn
	var bw *bufio.Writer
	var lenBuf [binary.MaxVarintLen64]byte
	rng := backoffRng(e.seed, e.id, to)
	backoff := 50 * time.Millisecond
	dialed := false // first successful dial is a connect, not a reconnect
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var frame []byte
		select {
		case <-e.done:
			return
		case frame = <-link.queue:
		}
		for conn == nil {
			c, err := gonet.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
				if backoff < 3*time.Second {
					backoff *= 2
				}
				select {
				case <-e.done:
					return
				case <-time.After(sleep):
				}
				continue
			}
			conn, bw = c, bufio.NewWriter(c)
			backoff = 50 * time.Millisecond
			if dialed {
				e.redials.Add(1)
			}
			dialed = true
			n := binary.PutUvarint(lenBuf[:], uint64(e.id))
			if _, err := bw.Write(lenBuf[:n]); err != nil {
				conn.Close()
				conn = nil
			}
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(frame)))
		if _, err := bw.Write(lenBuf[:n]); err == nil {
			_, err = bw.Write(frame)
			if err == nil {
				err = bw.Flush()
			}
			if err == nil {
				continue
			}
		}
		conn.Close()
		conn = nil
		e.dropped.Add(1)
	}
}

func (e *tcpEndpoint) Recv() <-chan Packet { return e.recv }

func (e *tcpEndpoint) Dropped() uint64 { return e.dropped.Load() }

// Reconnects implements ReconnectCounter: successful redials after a
// link's first connection (dial retries that fail are backoff, not
// reconnects).
func (e *tcpEndpoint) Reconnects() uint64 { return e.redials.Load() }

func (e *tcpEndpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.done)
	err := e.ln.Close()
	e.mu.Lock()
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	e.wg.Wait()
	if e.onClose != nil {
		e.onClose()
	}
	return err
}
