// Package net is the transport layer of the networked runtime: node ids
// exchanging opaque frames over a pluggable medium. Three transports
// implement the same two-interface contract — an in-process channel
// transport for deterministic tests and the differential harness, and
// UDP and TCP transports for real sockets — so the event-loop runtime
// (package noderuntime) and the fault injector (package faultnet) are
// transport-agnostic.
//
// Delivery semantics are deliberately weak, matching the protocols'
// needs: Send is asynchronous and best-effort, per-peer queues are
// BOUNDED (a slow or partitioned peer costs a constant amount of memory,
// never an unbounded backlog — overflow drops the newest frame and
// counts it), and nothing is retried at this layer. Reliability, to the
// degree the self-stabilizing protocols need it, lives above: the
// runtime's retry/backoff and marker heartbeats, and below that the
// protocols' own tolerance of loss as just another transient fault.
package net

import "errors"

// Packet is one received frame. Data is owned by the receiver.
type Packet struct {
	// From is the transport-authenticated sender id, or -1 when the
	// transport cannot authenticate the peer (UDP); receivers then fall
	// back to the frame header's claim, which only Byzantine senders can
	// forge — and a Byzantine sender owns its traffic in any case.
	From int
	Data []byte
}

// Endpoint is one node's attachment to the network.
//
// Send enqueues frame for delivery to peer `to` and returns without
// waiting. The frame is read-only from the moment it is passed in — it
// may be shared by several concurrent Sends (a broadcast encodes once)
// — and must not be mutated by any transport. Send never blocks on a
// slow peer: a full queue drops the frame (counted in Dropped).
//
// Close detaches the endpoint; frames sent to a closed endpoint are
// dropped, modelling a crashed process whose kernel buffers are gone.
type Endpoint interface {
	ID() int
	Send(to int, frame []byte) error
	Recv() <-chan Packet
	// Dropped counts frames lost to bounded-queue overflow or detached
	// peers at this endpoint's sending side (observability; the chaos
	// tests assert boundedness with it).
	Dropped() uint64
	Close() error
}

// ReconnectCounter is the optional interface of endpoints whose
// transport redials broken connections (TCP). Metrics exporters probe
// for it with a type assertion on the raw (pre-wrap) endpoint.
type ReconnectCounter interface {
	// Reconnects counts successful redials after each link's first
	// connection.
	Reconnects() uint64
}

// Transport is a cluster-wide medium handing out endpoints by node id.
// Endpoint may be called again for an id after its previous endpoint
// closed — a restart re-attaches — but two live endpoints for one id are
// an error.
type Transport interface {
	Endpoint(id int) (Endpoint, error)
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint or transport.
var ErrClosed = errors.New("net: closed")
