package net

import (
	"errors"
	"fmt"
	gonet "net"
	"sync"
	"sync/atomic"
)

// UDPTransport runs the cluster over real datagrams. The address book is
// fixed up front (addrs[i] is node i's listen address); Endpoint(id)
// binds the socket and starts a read loop. UDP gives exactly the model's
// network for free: loss, duplication and reordering are all allowed,
// and the runtime's retries plus the protocols' self-stabilization
// absorb them.
type UDPTransport struct {
	mu       sync.Mutex
	addrs    []*gonet.UDPAddr
	prebound []*gonet.UDPConn
	attached []bool
	qcap     int
}

// NewUDPTransport builds a transport over an explicit address book.
// Endpoints bind lazily; qcap <= 0 selects DefaultQueue.
func NewUDPTransport(addrs []string, qcap int) (*UDPTransport, error) {
	if qcap <= 0 {
		qcap = DefaultQueue
	}
	t := &UDPTransport{
		addrs:    make([]*gonet.UDPAddr, len(addrs)),
		prebound: make([]*gonet.UDPConn, len(addrs)),
		attached: make([]bool, len(addrs)),
		qcap:     qcap,
	}
	for i, a := range addrs {
		ua, err := gonet.ResolveUDPAddr("udp", a)
		if err != nil {
			return nil, fmt.Errorf("net: resolve %q: %w", a, err)
		}
		t.addrs[i] = ua
	}
	return t, nil
}

// NewLoopbackUDP binds n sockets on 127.0.0.1 with kernel-chosen ports
// and returns a transport over them — the in-process way to run a real
// UDP cluster in tests without picking ports.
func NewLoopbackUDP(n, qcap int) (*UDPTransport, error) {
	if qcap <= 0 {
		qcap = DefaultQueue
	}
	t := &UDPTransport{
		addrs:    make([]*gonet.UDPAddr, n),
		prebound: make([]*gonet.UDPConn, n),
		attached: make([]bool, n),
		qcap:     qcap,
	}
	for i := 0; i < n; i++ {
		conn, err := gonet.ListenUDP("udp", &gonet.UDPAddr{IP: gonet.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Close()
			return nil, err
		}
		t.prebound[i] = conn
		t.addrs[i] = conn.LocalAddr().(*gonet.UDPAddr)
	}
	return t, nil
}

// Endpoint implements Transport. After a Close, calling it again rebinds
// the node's recorded address — a restart.
func (t *UDPTransport) Endpoint(id int) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.addrs) {
		return nil, fmt.Errorf("net: endpoint id %d out of range [0,%d)", id, len(t.addrs))
	}
	if t.attached[id] {
		return nil, fmt.Errorf("net: endpoint %d already attached", id)
	}
	conn := t.prebound[id]
	t.prebound[id] = nil
	if conn == nil {
		var err error
		conn, err = gonet.ListenUDP("udp", t.addrs[id])
		if err != nil {
			return nil, err
		}
	}
	t.attached[id] = true
	e := newUDPEndpoint(id, conn, t.addrs, t.qcap)
	e.onClose = func() {
		t.mu.Lock()
		t.attached[id] = false
		t.mu.Unlock()
	}
	return e, nil
}

// Close implements Transport, releasing any sockets not yet handed out.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, c := range t.prebound {
		if c != nil {
			c.Close()
			t.prebound[i] = nil
		}
	}
	return nil
}

// NewUDPEndpoint builds a standalone endpoint for a node daemon (cmd/
// clocknode): bind listen, address peers[i] as node i. qcap <= 0 selects
// DefaultQueue.
func NewUDPEndpoint(id int, listen string, peers []string, qcap int) (Endpoint, error) {
	if qcap <= 0 {
		qcap = DefaultQueue
	}
	la, err := gonet.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("net: resolve %q: %w", listen, err)
	}
	conn, err := gonet.ListenUDP("udp", la)
	if err != nil {
		return nil, err
	}
	addrs := make([]*gonet.UDPAddr, len(peers))
	for i, p := range peers {
		if addrs[i], err = gonet.ResolveUDPAddr("udp", p); err != nil {
			conn.Close()
			return nil, fmt.Errorf("net: resolve peer %q: %w", p, err)
		}
	}
	return newUDPEndpoint(id, conn, addrs, qcap), nil
}

type udpEndpoint struct {
	id      int
	conn    *gonet.UDPConn
	peers   []*gonet.UDPAddr
	recv    chan Packet
	dropped atomic.Uint64
	closed  atomic.Bool
	onClose func()
	done    sync.WaitGroup
}

// maxDatagram bounds one UDP read. Protocol messages are small (a beat's
// worth of field elements); anything larger is not ours.
const maxDatagram = 64 << 10

func newUDPEndpoint(id int, conn *gonet.UDPConn, peers []*gonet.UDPAddr, qcap int) *udpEndpoint {
	e := &udpEndpoint{id: id, conn: conn, peers: peers, recv: make(chan Packet, qcap)}
	e.done.Add(1)
	go e.readLoop()
	return e
}

func (e *udpEndpoint) readLoop() {
	defer e.done.Done()
	defer close(e.recv)
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			if e.closed.Load() || errors.Is(err, gonet.ErrClosed) {
				return
			}
			continue
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		select {
		case e.recv <- Packet{From: -1, Data: data}:
		default:
			e.dropped.Add(1)
		}
	}
}

func (e *udpEndpoint) ID() int { return e.id }

func (e *udpEndpoint) Send(to int, frame []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= len(e.peers) {
		return fmt.Errorf("net: send to %d out of range", to)
	}
	if _, err := e.conn.WriteToUDP(frame, e.peers[to]); err != nil {
		// Best-effort, like the wire itself: count and move on.
		e.dropped.Add(1)
	}
	return nil
}

func (e *udpEndpoint) Recv() <-chan Packet { return e.recv }

func (e *udpEndpoint) Dropped() uint64 { return e.dropped.Load() }

func (e *udpEndpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := e.conn.Close()
	e.done.Wait()
	if e.onClose != nil {
		e.onClose()
	}
	return err
}
