package net_test

import (
	"testing"
	"time"

	"ssbyzclock/internal/net"
)

// transports under test; each factory builds a fresh n-node medium with
// the given queue capacity.
func transports(n, qcap int) map[string]func(t *testing.T) net.Transport {
	return map[string]func(t *testing.T) net.Transport{
		"chan": func(t *testing.T) net.Transport { return net.NewChanTransport(n, qcap) },
		"udp": func(t *testing.T) net.Transport {
			tr, err := net.NewLoopbackUDP(n, qcap)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
		"tcp": func(t *testing.T) net.Transport {
			tr, err := net.NewLoopbackTCP(n, qcap)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	}
}

func attachAll(t *testing.T, tr net.Transport, n int) []net.Endpoint {
	t.Helper()
	eps := make([]net.Endpoint, n)
	for i := range eps {
		ep, err := tr.Endpoint(i)
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
		eps[i] = ep
	}
	return eps
}

func recvOne(t *testing.T, ep net.Endpoint) net.Packet {
	t.Helper()
	select {
	case p := <-ep.Recv():
		return p
	case <-time.After(5 * time.Second):
		t.Fatalf("endpoint %d: no packet within 5s", ep.ID())
		return net.Packet{}
	}
}

func TestTransportRoundTrip(t *testing.T) {
	const n = 4
	for name, mk := range transports(n, 64) {
		t.Run(name, func(t *testing.T) {
			tr := mk(t)
			defer tr.Close()
			eps := attachAll(t, tr, n)
			defer func() {
				for _, ep := range eps {
					ep.Close()
				}
			}()
			// Everyone sends one tagged frame to everyone (including self).
			for from, ep := range eps {
				for to := 0; to < n; to++ {
					frame := []byte{byte(from), byte(to), 0xAB}
					if err := ep.Send(to, frame); err != nil {
						t.Fatalf("send %d->%d: %v", from, to, err)
					}
				}
			}
			for to, ep := range eps {
				seen := make(map[byte]bool)
				for len(seen) < n {
					p := recvOne(t, ep)
					if len(p.Data) != 3 || int(p.Data[1]) != to || p.Data[2] != 0xAB {
						t.Fatalf("endpoint %d: bad frame %x", to, p.Data)
					}
					if p.From >= 0 && int(p.Data[0]) != p.From {
						t.Fatalf("endpoint %d: transport From=%d but frame claims %d", to, p.From, p.Data[0])
					}
					seen[p.Data[0]] = true
				}
			}
		})
	}
}

// TestTransportBoundedQueues drowns one receiver and checks the memory
// contract: at most qcap frames are held, the rest are counted drops.
func TestTransportBoundedQueues(t *testing.T) {
	const n, qcap, burst = 2, 8, 512
	for name, mk := range transports(n, qcap) {
		t.Run(name, func(t *testing.T) {
			if name == "udp" {
				// UDP drops in the kernel as well as our queue; the counter
				// contract is still checked but via a retry loop below.
			}
			tr := mk(t)
			defer tr.Close()
			eps := attachAll(t, tr, n)
			defer func() {
				for _, ep := range eps {
					ep.Close()
				}
			}()
			for i := 0; i < burst; i++ {
				if err := eps[0].Send(1, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			// Give socket transports time to land what will land.
			deadline := time.Now().Add(5 * time.Second)
			for {
				held := len(eps[1].Recv())
				if held > qcap {
					t.Fatalf("receiver holds %d frames, queue capacity %d", held, qcap)
				}
				dropped := eps[0].Dropped() + eps[1].Dropped()
				if dropped > 0 && held > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("no drops recorded after %d-frame burst into capacity %d (held %d)", burst, qcap, held)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestTransportCrashRestart closes an endpoint (sends to it drop), then
// re-attaches the same id and checks traffic flows again.
func TestTransportCrashRestart(t *testing.T) {
	const n = 2
	for name, mk := range transports(n, 64) {
		t.Run(name, func(t *testing.T) {
			tr := mk(t)
			defer tr.Close()
			eps := attachAll(t, tr, n)
			defer eps[0].Close()

			if _, err := tr.Endpoint(1); err == nil {
				t.Fatal("double attach allowed")
			}
			if err := eps[1].Close(); err != nil {
				t.Fatal(err)
			}
			if err := eps[1].Send(0, []byte{1}); err != net.ErrClosed {
				t.Fatalf("send on closed endpoint: err=%v", err)
			}
			// Sends into the crash window must not error or block.
			for i := 0; i < 4; i++ {
				if err := eps[0].Send(1, []byte{0xCC}); err != nil {
					t.Fatal(err)
				}
			}
			reborn, err := tr.Endpoint(1)
			if err != nil {
				t.Fatalf("re-attach: %v", err)
			}
			defer reborn.Close()
			// Real sockets may need a beat to rebind; retry until delivery.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if err := eps[0].Send(1, []byte{0xDD}); err != nil {
					t.Fatal(err)
				}
				select {
				case p := <-reborn.Recv():
					if len(p.Data) == 1 && p.Data[0] == 0xDD {
						return
					}
					if name == "chan" && p.Data[0] == 0xCC {
						t.Fatal("frame sent into the crash window survived the restart")
					}
				case <-time.After(50 * time.Millisecond):
				}
				if time.Now().After(deadline) {
					t.Fatal("no delivery after re-attach")
				}
			}
		})
	}
}

func TestTransportOutOfRange(t *testing.T) {
	tr := net.NewChanTransport(2, 4)
	if _, err := tr.Endpoint(2); err == nil {
		t.Fatal("out-of-range attach allowed")
	}
	if _, err := tr.Endpoint(-1); err == nil {
		t.Fatal("negative attach allowed")
	}
	ep, err := tr.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Send(5, []byte{1}); err == nil {
		t.Fatal("out-of-range send allowed")
	}
}
