package net

import "testing"

// TestBackoffRngDeterministicPerLink: the reconnect-jitter stream is a
// pure function of (seed, from, to) — identical links replay the same
// sleeps across runs — while distinct links and distinct seeds draw
// from decorrelated streams (the thundering-herd property the jitter
// exists for).
func TestBackoffRngDeterministicPerLink(t *testing.T) {
	draw := func(seed int64, from, to int) [8]int64 {
		rng := backoffRng(seed, from, to)
		var out [8]int64
		for i := range out {
			out[i] = rng.Int63n(1 << 20)
		}
		return out
	}
	if draw(7, 0, 1) != draw(7, 0, 1) {
		t.Fatal("same (seed, from, to) produced different jitter streams")
	}
	base := draw(7, 0, 1)
	for _, alt := range [][3]int64{{7, 1, 0}, {7, 0, 2}, {8, 0, 1}} {
		if draw(alt[0], int(alt[1]), int(alt[2])) == base {
			t.Fatalf("link (%d,%d,%d) collided with (7,0,1)", alt[0], alt[1], alt[2])
		}
	}
}

// TestSeededConstructorsThreadSeed: the seed reaches the endpoints a
// transport hands out.
func TestSeededConstructorsThreadSeed(t *testing.T) {
	tr, err := NewLoopbackTCPSeeded(2, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ep, err := tr.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if got := ep.(*tcpEndpoint).seed; got != 42 {
		t.Fatalf("endpoint seed = %d, want 42", got)
	}
}
