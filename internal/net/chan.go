package net

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ChanTransport is the in-process transport: per-node mailboxes backed
// by buffered channels. It is the medium of the differential harness and
// the chaos smoke tests — reliable and FIFO per sender-receiver pair
// (faults are injected above it by package faultnet), with the same
// bounded-queue drop semantics as the socket transports.
//
// Mailboxes are persistent per id: closing an endpoint detaches it
// (sends to it are dropped, like a crashed process), and Endpoint(id)
// may be called again to re-attach after a restart, draining whatever
// queued while detached.
type ChanTransport struct {
	mu    sync.Mutex
	boxes []*mailbox
}

type mailbox struct {
	ch       chan Packet
	attached atomic.Bool
}

// chanEndpoint implements Endpoint over a ChanTransport.
type chanEndpoint struct {
	tr      *ChanTransport
	id      int
	box     *mailbox
	dropped atomic.Uint64
	closed  atomic.Bool
}

// DefaultQueue is the per-node mailbox capacity when NewChanTransport is
// given qcap <= 0. Sized for the lockstep runtime's worst case (a full
// beat of traffic from every peer plus a small delay window) with room
// to spare; overflow drops, so the bound is memory, not correctness.
const DefaultQueue = 4096

// NewChanTransport builds an n-node in-process transport with per-node
// queue capacity qcap (<= 0 selects DefaultQueue).
func NewChanTransport(n, qcap int) *ChanTransport {
	if qcap <= 0 {
		qcap = DefaultQueue
	}
	t := &ChanTransport{boxes: make([]*mailbox, n)}
	for i := range t.boxes {
		t.boxes[i] = &mailbox{ch: make(chan Packet, qcap)}
	}
	return t
}

// Endpoint implements Transport. Re-attaching to an id whose previous
// endpoint closed drains frames queued while detached (a restarted
// process does not see the old kernel buffers).
func (t *ChanTransport) Endpoint(id int) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.boxes) {
		return nil, fmt.Errorf("net: endpoint id %d out of range [0,%d)", id, len(t.boxes))
	}
	box := t.boxes[id]
	if !box.attached.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("net: endpoint %d already attached", id)
	}
	for {
		select {
		case <-box.ch:
		default:
			return &chanEndpoint{tr: t, id: id, box: box}, nil
		}
	}
}

// Close implements Transport.
func (t *ChanTransport) Close() error { return nil }

// ID implements Endpoint.
func (e *chanEndpoint) ID() int { return e.id }

// Send implements Endpoint: a copy of frame is enqueued to the peer's
// mailbox. A full mailbox or a detached peer drops the frame.
func (e *chanEndpoint) Send(to int, frame []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= len(e.tr.boxes) {
		return fmt.Errorf("net: send to %d out of range", to)
	}
	box := e.tr.boxes[to]
	if !box.attached.Load() {
		e.dropped.Add(1)
		return nil
	}
	data := make([]byte, len(frame))
	copy(data, frame)
	select {
	case box.ch <- Packet{From: e.id, Data: data}:
	default:
		e.dropped.Add(1)
	}
	return nil
}

// Recv implements Endpoint.
func (e *chanEndpoint) Recv() <-chan Packet { return e.box.ch }

// Dropped implements Endpoint.
func (e *chanEndpoint) Dropped() uint64 { return e.dropped.Load() }

// Close implements Endpoint: detaches the mailbox so in-flight senders
// drop, and allows a later re-attach.
func (e *chanEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		e.box.attached.Store(false)
	}
	return nil
}
