package wire_test

import (
	"bytes"
	"testing"

	"ssbyzclock/internal/wire"
)

// batchCorpus builds a realistic batch payload: three tenants starting
// at tenant 5, mixed empty and multi-message runs, with payloads drawn
// from real beat traffic.
func batchCorpus(t testing.TB) (start int, runs [][]wire.BatchMsg, payload []byte) {
	t.Helper()
	frames := beatTraffic(t)
	var msgs [][]byte
	for _, enc := range frames {
		f, err := wire.DecodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind == wire.KindMsg {
			msgs = append(msgs, f.Payload)
		}
	}
	if len(msgs) < 3 {
		t.Fatalf("corpus too small: %d messages", len(msgs))
	}
	start = 5
	runs = [][]wire.BatchMsg{
		{{Seq: 0, Payload: msgs[0]}, {Seq: 1, Payload: msgs[1]}},
		{}, // tenant with no traffic this beat: window stays contiguous
		{{Seq: 7, Payload: msgs[2]}, {Seq: 9, Payload: nil}},
	}
	return start, runs, wire.AppendBatchPayload(nil, start, runs)
}

func TestBatchPayloadRoundTrip(t *testing.T) {
	start, runs, payload := batchCorpus(t)
	type rec struct {
		tenant int
		seq    uint32
		msg    []byte
	}
	var got []rec
	if err := wire.DecodeBatchPayload(payload, 64, func(tenant int, seq uint32, msg []byte) {
		got = append(got, rec{tenant, seq, msg})
	}); err != nil {
		t.Fatal(err)
	}
	var want []rec
	for i, run := range runs {
		for _, m := range run {
			want = append(want, rec{start + i, m.Seq, m.Payload})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].tenant != want[i].tenant || got[i].seq != want[i].seq || !bytes.Equal(got[i].msg, want[i].msg) {
			t.Fatalf("message %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBatchPayloadRejectsMalformed(t *testing.T) {
	_, _, good := batchCorpus(t)
	seen := 0
	count := func(int, uint32, []byte) { seen++ }

	// Truncation at every byte boundary: error, no panic, and — the
	// all-or-nothing contract — not a single callback.
	for cut := 0; cut < len(good); cut++ {
		seen = 0
		if err := wire.DecodeBatchPayload(good[:cut], 64, count); err == nil {
			t.Fatalf("truncated payload (%d bytes) decoded", cut)
		}
		if seen != 0 {
			t.Fatalf("truncated payload (%d bytes) invoked %d callbacks", cut, seen)
		}
	}

	bad := [][]byte{
		append(append([]byte{}, good...), 0xAB),                         // trailing bytes
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0}, // tenant start overflow
		wire.AppendBatchPayload(nil, wire.MaxBatchTenants+1, nil),       // start beyond bound
		{0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // tenant count overflow
		{0, 1, 0xff, 0xff, 0xff, 0x7f},                                  // run length beyond MaxBatchMsgs
		{0, 1, 1, 0xff, 0xff, 0xff, 0xff, 0x7f, 0},                      // seq beyond uint32
		{0, 1, 1, 0, 0x20}, // msg length beyond remaining bytes
	}
	for i, b := range bad {
		seen = 0
		if err := wire.DecodeBatchPayload(b, 0, count); err == nil {
			t.Fatalf("case %d: decoded malformed batch %x", i, b)
		}
		if seen != 0 {
			t.Fatalf("case %d: malformed batch invoked %d callbacks", i, seen)
		}
	}
}

// TestBatchPayloadTenantBound: a structurally valid batch whose window
// reaches past the receiver's tenant count is rejected whole — the
// receiver-side index-safety guarantee.
func TestBatchPayloadTenantBound(t *testing.T) {
	payload := wire.AppendBatchPayload(nil, 6, [][]wire.BatchMsg{{}, {}}) // window [6, 8)
	if err := wire.DecodeBatchPayload(payload, 8, func(int, uint32, []byte) {}); err != nil {
		t.Fatalf("window [6,8) with 8 tenants rejected: %v", err)
	}
	if err := wire.DecodeBatchPayload(payload, 7, func(int, uint32, []byte) {}); err == nil {
		t.Fatal("window [6,8) with 7 tenants decoded")
	}
	// maxTenant <= 0 disables the bound (senders validating their own
	// encodes), never panics.
	if err := wire.DecodeBatchPayload(payload, 0, func(int, uint32, []byte) {}); err != nil {
		t.Fatalf("unbounded decode rejected: %v", err)
	}
}

// FuzzDecodeBatchPayload fuzzes the batch decoder exactly as
// FuzzDecodeFrame fuzzes the frame decoder: never panic, and anything
// that decodes must survive a re-encode/re-decode round trip with
// identical (tenant, seq, payload) triples. Seeds cover real traffic,
// truncated windows, and oversized varints.
func FuzzDecodeBatchPayload(f *testing.F) {
	_, _, good := batchCorpus(f)
	f.Add(good, 64)
	f.Add(good[:len(good)/2], 64)
	f.Add([]byte{0, 2, 0, 0}, 2)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 8)
	f.Fuzz(func(t *testing.T, data []byte, maxTenant int) {
		if maxTenant < 0 || maxTenant > wire.MaxBatchTenants {
			maxTenant = 64
		}
		type rec struct {
			tenant int
			seq    uint32
			msg    []byte
		}
		var got []rec
		lo, hi := -1, -1
		if err := wire.DecodeBatchPayload(data, maxTenant, func(tenant int, seq uint32, msg []byte) {
			if maxTenant > 0 && tenant >= maxTenant {
				t.Fatalf("callback tenant %d >= bound %d", tenant, maxTenant)
			}
			if lo < 0 {
				lo = tenant
			}
			if tenant < hi {
				t.Fatalf("tenants out of order: %d after %d", tenant, hi)
			}
			hi = tenant
			got = append(got, rec{tenant, seq, msg})
		}); err != nil {
			if len(got) != 0 {
				t.Fatalf("error after %d callbacks: all-or-nothing violated", len(got))
			}
			return
		}
		if len(got) == 0 {
			return
		}
		// Re-encode the decoded window and require a stable round trip.
		runs := make([][]wire.BatchMsg, hi-lo+1)
		for _, r := range got {
			runs[r.tenant-lo] = append(runs[r.tenant-lo], wire.BatchMsg{Seq: r.seq, Payload: r.msg})
		}
		re := wire.AppendBatchPayload(nil, lo, runs)
		var back []rec
		if err := wire.DecodeBatchPayload(re, maxTenant, func(tenant int, seq uint32, msg []byte) {
			back = append(back, rec{tenant, seq, msg})
		}); err != nil {
			t.Fatalf("re-encoded batch undecodable: %v", err)
		}
		if len(back) != len(got) {
			t.Fatalf("round trip changed message count: %d vs %d", len(back), len(got))
		}
		for i := range got {
			if back[i].tenant != got[i].tenant || back[i].seq != got[i].seq || !bytes.Equal(back[i].msg, got[i].msg) {
				t.Fatalf("message %d not stable: %+v vs %+v", i, got[i], back[i])
			}
		}
	})
}
