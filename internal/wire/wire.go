// Package wire is the binary codec for every protocol message in this
// repository. The lockstep simulator passes messages as Go values for
// speed; the goroutine runtime (package runtime) serializes them through
// this codec, and the E8 experiment uses Size to report on-the-wire
// message complexity.
//
// Format: one tag byte selecting the concrete type, followed by the
// type's fields; integers are unsigned varints, field elements are
// varints of their canonical value, bool matrices are bit-packed
// row-major. Envelopes nest recursively. Decode never panics on
// malformed input — Byzantine peers own the wire.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ssbyzclock/internal/baseline"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/gvss"
	"ssbyzclock/internal/proto"
)

// ErrMalformed is returned by Decode for any undecodable input.
var ErrMalformed = errors.New("wire: malformed message")

// Type tags. Stable on the wire; append only.
const (
	tagEnvelope      byte = 1
	tagShare         byte = 2
	tagEcho          byte = 3
	tagVote          byte = 4
	tagRecover       byte = 5
	tagAccept        byte = 6
	tagTwoClock      byte = 7
	tagFullClock     byte = 8
	tagPropose       byte = 9
	tagBit           byte = 10
	tagBaseClock     byte = 11
	tagBasePropose   byte = 12
	tagBaseBit       byte = 13
	tagBaseKing      byte = 14
	maxNestingDepth       = 16
	maxSliceElements      = 1 << 20
)

// Encode serializes a message into a fresh buffer. It errors on
// unregistered concrete types.
func Encode(m proto.Message) ([]byte, error) {
	return AppendTo(nil, m)
}

// AppendTo appends m's encoding to buf and returns the extended slice
// (which may alias buf's backing array, like append). Hot paths — the
// engine's byte accounting, the goroutine runtime's transport arena —
// pass a recycled buffer and encode without allocating; on error the
// returned slice carries whatever prefix was written and must be
// discarded by the caller.
func AppendTo(buf []byte, m proto.Message) ([]byte, error) {
	err := encodeTo(&buf, m, 0)
	if err != nil {
		return buf, err
	}
	return buf, nil
}

// Size returns the encoded size in bytes, or 0 for unregistered types.
// Hot byte-accounting paths (the engine's CountBytes phase) use AppendTo
// with their own recycled buffers instead.
func Size(m proto.Message) int {
	b, err := Encode(m)
	if err != nil {
		return 0
	}
	return len(b)
}

func encodeTo(b *[]byte, m proto.Message, depth int) error {
	if depth > maxNestingDepth {
		return fmt.Errorf("wire: envelope nesting exceeds %d", maxNestingDepth)
	}
	switch v := m.(type) {
	case proto.Envelope:
		*b = append(*b, tagEnvelope, v.Child)
		return encodeTo(b, v.Inner, depth+1)
	case *proto.Envelope:
		*b = append(*b, tagEnvelope, v.Child)
		return encodeTo(b, v.Inner, depth+1)
	// The five bulk payload types come in value and pointer form: compose
	// paths send pointers into per-instance message slots (no interface
	// boxing on the hot path), while adversaries and tests hand-build
	// values. Both encode identically.
	case gvss.ShareMsg:
		encodeShare(b, v)
	case *gvss.ShareMsg:
		encodeShare(b, *v)
	case gvss.EchoMsg:
		encodeEcho(b, v)
	case *gvss.EchoMsg:
		encodeEcho(b, *v)
	case gvss.VoteMsg:
		encodeVote(b, v)
	case *gvss.VoteMsg:
		encodeVote(b, *v)
	case gvss.RecoverMsg:
		encodeRecover(b, v)
	case *gvss.RecoverMsg:
		encodeRecover(b, *v)
	case coin.AcceptMsg:
		encodeAccept(b, v)
	case *coin.AcceptMsg:
		encodeAccept(b, *v)
	case core.TwoClockMsg:
		*b = append(*b, tagTwoClock, v.V)
	case core.FullClockMsg:
		*b = append(*b, tagFullClock)
		putUvarint(b, v.V)
	case core.ProposeMsg:
		*b = append(*b, tagPropose, boolByte(v.Bot))
		putUvarint(b, v.V)
	case core.BitMsg:
		*b = append(*b, tagBit, v.B)
	case baseline.ClockMsg:
		*b = append(*b, tagBaseClock)
		putUvarint(b, v.V)
	case baseline.PhaseProposeMsg:
		*b = append(*b, tagBasePropose, boolByte(v.Bot))
		putUvarint(b, v.V)
	case baseline.PhaseBitMsg:
		*b = append(*b, tagBaseBit, v.B)
	case baseline.KingMsg:
		*b = append(*b, tagBaseKing)
		putUvarint(b, v.V)
	default:
		return fmt.Errorf("wire: unregistered message type %T", m)
	}
	return nil
}

// Decode parses a message, consuming the whole buffer.
func Decode(data []byte) (proto.Message, error) {
	m, rest, err := decodeFrom(data, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(rest))
	}
	return m, nil
}

func decodeFrom(data []byte, depth int) (proto.Message, []byte, error) {
	if depth > maxNestingDepth {
		return nil, nil, fmt.Errorf("%w: nesting too deep", ErrMalformed)
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("%w: empty", ErrMalformed)
	}
	tag, data := data[0], data[1:]
	switch tag {
	case tagEnvelope:
		if len(data) == 0 {
			return nil, nil, ErrMalformed
		}
		child := data[0]
		inner, rest, err := decodeFrom(data[1:], depth+1)
		if err != nil {
			return nil, nil, err
		}
		return proto.Envelope{Child: child, Inner: inner}, rest, nil
	case tagShare:
		n, data, err := getUvarint(data)
		// Every declared row costs at least one byte of input, so a count
		// beyond the remaining data is malformed — checked BEFORE the
		// allocation, so a truncated or corrupted datagram cannot demand
		// megabytes of row headers with a three-byte varint.
		if err != nil || n > maxSliceElements || n > uint64(len(data)) {
			return nil, nil, ErrMalformed
		}
		rows := make([]field.Poly, n)
		for i := range rows {
			rows[i], data, err = getElems(data)
			if err != nil {
				return nil, nil, err
			}
		}
		return gvss.ShareMsg{Rows: rows}, data, nil
	case tagEcho:
		vals, data, err := getElemMatrix(data)
		if err != nil {
			return nil, nil, err
		}
		has, data, err := getBoolMatrix(data)
		if err != nil {
			return nil, nil, err
		}
		return gvss.EchoMsg{Vals: vals, Has: has}, data, nil
	case tagVote:
		ok, data, err := getBoolMatrix(data)
		if err != nil {
			return nil, nil, err
		}
		return gvss.VoteMsg{OK: ok}, data, nil
	case tagRecover:
		shares, data, err := getElemMatrix(data)
		if err != nil {
			return nil, nil, err
		}
		has, data, err := getBoolMatrix(data)
		if err != nil {
			return nil, nil, err
		}
		return gvss.RecoverMsg{Shares: shares, HasRow: has}, data, nil
	case tagAccept:
		n, data, err := getUvarint(data)
		if err != nil || n > maxSliceElements || n > uint64(len(data)) {
			return nil, nil, ErrMalformed
		}
		set := make([]uint16, n)
		for i := range set {
			var v uint64
			v, data, err = getUvarint(data)
			if err != nil || v > 1<<16-1 {
				return nil, nil, ErrMalformed
			}
			set[i] = uint16(v)
		}
		return coin.AcceptMsg{Set: set}, data, nil
	case tagTwoClock:
		if len(data) < 1 {
			return nil, nil, ErrMalformed
		}
		return core.TwoClockMsg{V: data[0]}, data[1:], nil
	case tagFullClock:
		v, data, err := getUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		return core.FullClockMsg{V: v}, data, nil
	case tagPropose:
		if len(data) < 1 {
			return nil, nil, ErrMalformed
		}
		bot := data[0] != 0
		v, data, err := getUvarint(data[1:])
		if err != nil {
			return nil, nil, err
		}
		return core.ProposeMsg{V: v, Bot: bot}, data, nil
	case tagBit:
		if len(data) < 1 {
			return nil, nil, ErrMalformed
		}
		return core.BitMsg{B: data[0]}, data[1:], nil
	case tagBaseClock:
		v, data, err := getUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		return baseline.ClockMsg{V: v}, data, nil
	case tagBasePropose:
		if len(data) < 1 {
			return nil, nil, ErrMalformed
		}
		bot := data[0] != 0
		v, data, err := getUvarint(data[1:])
		if err != nil {
			return nil, nil, err
		}
		return baseline.PhaseProposeMsg{V: v, Bot: bot}, data, nil
	case tagBaseBit:
		if len(data) < 1 {
			return nil, nil, ErrMalformed
		}
		return baseline.PhaseBitMsg{B: data[0]}, data[1:], nil
	case tagBaseKing:
		v, data, err := getUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		return baseline.KingMsg{V: v}, data, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown tag %d", ErrMalformed, tag)
	}
}

func encodeShare(b *[]byte, v gvss.ShareMsg) {
	*b = append(*b, tagShare)
	putUvarint(b, uint64(len(v.Rows)))
	for _, row := range v.Rows {
		putElems(b, row)
	}
}

func encodeEcho(b *[]byte, v gvss.EchoMsg) {
	*b = append(*b, tagEcho)
	putElemMatrix(b, v.Vals)
	putBoolMatrix(b, v.Has)
}

func encodeVote(b *[]byte, v gvss.VoteMsg) {
	*b = append(*b, tagVote)
	putBoolMatrix(b, v.OK)
}

func encodeRecover(b *[]byte, v gvss.RecoverMsg) {
	*b = append(*b, tagRecover)
	putElemMatrix(b, v.Shares)
	putBoolMatrix(b, v.HasRow)
}

func encodeAccept(b *[]byte, v coin.AcceptMsg) {
	*b = append(*b, tagAccept)
	putUvarint(b, uint64(len(v.Set)))
	for _, d := range v.Set {
		putUvarint(b, uint64(d))
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func putUvarint(b *[]byte, v uint64) {
	*b = binary.AppendUvarint(*b, v)
}

func getUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, ErrMalformed
	}
	return v, data[n:], nil
}

func putElems(b *[]byte, es []field.Elem) {
	putUvarint(b, uint64(len(es)))
	for _, e := range es {
		putUvarint(b, uint64(e))
	}
}

func getElems(data []byte) (field.Poly, []byte, error) {
	n, data, err := getUvarint(data)
	// Elements are at least one byte each on the wire; bounding the count
	// by the remaining input keeps the allocation proportional to the
	// datagram, not to what a corrupted header claims.
	if err != nil || n > maxSliceElements || n > uint64(len(data)) {
		return nil, nil, ErrMalformed
	}
	es := make(field.Poly, n)
	for i := range es {
		var v uint64
		v, data, err = getUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		es[i] = field.Reduce(v) // canonicalize: the wire may carry garbage
	}
	return es, data, nil
}

func putElemMatrix(b *[]byte, m [][]field.Elem) {
	putUvarint(b, uint64(len(m)))
	for _, row := range m {
		putElems(b, row)
	}
}

func getElemMatrix(data []byte) ([][]field.Elem, []byte, error) {
	n, data, err := getUvarint(data)
	if err != nil || n > maxSliceElements || n > uint64(len(data)) {
		return nil, nil, ErrMalformed
	}
	m := make([][]field.Elem, n)
	for i := range m {
		var row field.Poly
		row, data, err = getElems(data)
		if err != nil {
			return nil, nil, err
		}
		m[i] = row
	}
	return m, data, nil
}

// putBoolMatrix writes row count, then per row the bit count and the
// bit-packed bits.
func putBoolMatrix(b *[]byte, m [][]bool) {
	putUvarint(b, uint64(len(m)))
	for _, row := range m {
		putUvarint(b, uint64(len(row)))
		var cur byte
		for i, v := range row {
			if v {
				cur |= 1 << (i % 8)
			}
			if i%8 == 7 {
				*b = append(*b, cur)
				cur = 0
			}
		}
		if len(row)%8 != 0 {
			*b = append(*b, cur)
		}
	}
}

func getBoolMatrix(data []byte) ([][]bool, []byte, error) {
	n, data, err := getUvarint(data)
	if err != nil || n > maxSliceElements || n > uint64(len(data)) {
		return nil, nil, ErrMalformed
	}
	m := make([][]bool, n)
	for i := range m {
		var cnt uint64
		cnt, data, err = getUvarint(data)
		if err != nil || cnt > maxSliceElements {
			return nil, nil, ErrMalformed
		}
		nbytes := int((cnt + 7) / 8)
		if len(data) < nbytes {
			return nil, nil, ErrMalformed
		}
		row := make([]bool, cnt)
		for j := range row {
			row[j] = data[j/8]&(1<<(j%8)) != 0
		}
		data = data[nbytes:]
		m[i] = row
	}
	return m, data, nil
}
