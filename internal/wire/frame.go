package wire

import (
	"encoding/binary"
	"fmt"
)

// Frame is the transport envelope of the networked runtime (package
// noderuntime): every datagram or stream record that crosses a
// net.Transport is one encoded Frame. The header carries the routing and
// ordering metadata the event-driven runtime derives its beats from —
// there is no global clock on the wire, only frames:
//
//   - From is the sender's node id. Transports that authenticate the
//     peer (in-proc channels, TCP connections) cross-check it; UDP
//     cannot, which the model permits (a Byzantine sender owns its
//     traffic anyway, and honest ids are checked against the transport
//     where possible).
//   - Beat is the sender's beat when the message was composed.
//   - DeliveryBeat >= Beat is the beat the message is due in a
//     receiver's inbox. It differs from Beat only when a fault schedule
//     (package faultnet) delayed the frame by whole beats.
//   - Seq is the message's position in its sender's compose order (for
//     adversary-controlled senders: in the adversary's global send
//     order). Receivers sort a beat's inbox by it, which is what makes
//     an in-proc networked run replay the lockstep engine exactly.
//   - Copy distinguishes fault-injected duplicates (Copy=1,2,...) from
//     retransmissions (same Copy): receivers deduplicate on
//     (From, Beat, Seq, Copy), so a retried frame delivers once while an
//     injected duplicate delivers twice.
//
// Markers (KindMark) carry no payload: a marker for beat r is the
// sender's statement that all of its beat-r traffic has been sent. It is
// the runtime's pulse — beat advancement is derived from marker arrival
// — and doubles as the idle-peer heartbeat.
type Frame struct {
	Kind         byte
	From         int
	Beat         uint64
	DeliveryBeat uint64
	Seq          uint32
	Copy         uint8
	// Payload is the wire-encoded message (KindMsg only). DecodeFrame
	// aliases it into the input buffer; callers that keep the frame must
	// copy it out.
	Payload []byte
}

// Frame kinds.
const (
	// KindMsg carries one wire-encoded protocol message.
	KindMsg byte = 1
	// KindMark is a beat-complete marker / heartbeat; no payload.
	KindMark byte = 2
	// KindBatch carries a contiguous run of tenants' protocol messages
	// from one multiplexed sender — one frame per (from, to, beat)
	// regardless of the tenant count, which is what makes a
	// multi-tenant node's frames/beat O(links) instead of O(tenants).
	// The payload layout is defined in batch.go. The frame-level
	// metadata (Beat, DeliveryBeat, Seq, Copy) applies to the whole
	// batch: the fault schedule's verdicts are per (beat, from, to), so
	// a dropped/delayed/duplicated batch fares exactly as every
	// tenant's individual frames would have — the property the
	// multi-tenant differential harness pins.
	KindBatch byte = 3

	frameVersion byte = 1
)

// AppendFrame appends f's encoding to buf and returns the extended
// slice. Layout: version, kind, then uvarints for from, beat, the
// delivery-beat delta and seq, the copy byte, and the payload (KindMsg
// only, running to the end of the frame).
func AppendFrame(buf []byte, f Frame) []byte {
	buf = append(buf, frameVersion, f.Kind)
	buf = binary.AppendUvarint(buf, uint64(f.From))
	buf = binary.AppendUvarint(buf, f.Beat)
	delta := uint64(0)
	if f.DeliveryBeat > f.Beat {
		delta = f.DeliveryBeat - f.Beat
	}
	buf = binary.AppendUvarint(buf, delta)
	buf = binary.AppendUvarint(buf, uint64(f.Seq))
	buf = append(buf, f.Copy)
	if f.Kind == KindMsg || f.Kind == KindBatch {
		buf = append(buf, f.Payload...)
	}
	return buf
}

// maxFrameFrom bounds the sender id a frame may claim: far above any
// real cluster size, low enough that a corrupted varint cannot turn
// into a giant table index downstream.
const maxFrameFrom = 1 << 20

// DecodeFrame parses one frame. It never panics on malformed input —
// Byzantine peers and lossy networks own the wire — and returns
// ErrMalformed (wrapped) for anything undecodable: truncation, unknown
// version or kind, out-of-range ids, or a payload on a marker. The
// returned Payload aliases data.
func DecodeFrame(data []byte) (Frame, error) {
	var f Frame
	if len(data) < 2 {
		return f, fmt.Errorf("%w: frame too short", ErrMalformed)
	}
	if data[0] != frameVersion {
		return f, fmt.Errorf("%w: frame version %d", ErrMalformed, data[0])
	}
	f.Kind = data[1]
	if f.Kind != KindMsg && f.Kind != KindMark && f.Kind != KindBatch {
		return f, fmt.Errorf("%w: frame kind %d", ErrMalformed, f.Kind)
	}
	rest := data[2:]
	from, rest, err := getUvarint(rest)
	if err != nil || from > maxFrameFrom {
		return f, fmt.Errorf("%w: frame sender", ErrMalformed)
	}
	f.From = int(from)
	if f.Beat, rest, err = getUvarint(rest); err != nil {
		return f, fmt.Errorf("%w: frame beat", ErrMalformed)
	}
	delta, rest, err := getUvarint(rest)
	if err != nil || delta > 1<<32 {
		return f, fmt.Errorf("%w: frame delivery delta", ErrMalformed)
	}
	f.DeliveryBeat = f.Beat + delta
	seq, rest, err := getUvarint(rest)
	if err != nil || seq > 1<<32-1 {
		return f, fmt.Errorf("%w: frame seq", ErrMalformed)
	}
	f.Seq = uint32(seq)
	if len(rest) < 1 {
		return f, fmt.Errorf("%w: frame copy", ErrMalformed)
	}
	f.Copy = rest[0]
	rest = rest[1:]
	switch f.Kind {
	case KindMsg, KindBatch:
		f.Payload = rest
	case KindMark:
		if len(rest) != 0 {
			return f, fmt.Errorf("%w: marker with payload", ErrMalformed)
		}
	}
	return f, nil
}
