package wire

import (
	"sync"

	"ssbyzclock/internal/proto"
)

// Clone deep-copies a registered message by a wire encode/decode
// roundtrip: Decode always builds fresh Go values, so the result shares
// no memory with the original — the durable-capture primitive of the
// message-lifetime contract (messages are valid only for the beat;
// recording adversaries clone what they keep). It errors exactly where
// Encode does: on unregistered concrete types.
//
// The encoding buffer is recycled through a pool, so a clone costs one
// encode pass plus the decoded value's own allocations.
func Clone(m proto.Message) (proto.Message, error) {
	bufp := cloneBufPool.Get().(*[]byte)
	buf, err := AppendTo((*bufp)[:0], m)
	*bufp = buf[:0]
	if err != nil {
		cloneBufPool.Put(bufp)
		return nil, err
	}
	out, err := Decode(buf)
	cloneBufPool.Put(bufp)
	if err != nil {
		return nil, err
	}
	return out, nil
}

var cloneBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// init installs Clone as the proto.Clone implementation, closing the
// proto -> wire dependency inversion: proto defines the facility, wire
// implements it over the codec.
func init() { proto.RegisterCloner(Clone) }
