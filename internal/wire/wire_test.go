package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ssbyzclock/internal/baseline"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/gvss"
	"ssbyzclock/internal/proto"
)

func roundTrip(t *testing.T, m proto.Message) {
	t.Helper()
	b, err := Encode(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n  in:  %#v\n  out: %#v", m, got)
	}
}

func TestRoundTripScalars(t *testing.T) {
	msgs := []proto.Message{
		core.TwoClockMsg{V: 0},
		core.TwoClockMsg{V: core.Bot},
		core.FullClockMsg{V: 0},
		core.FullClockMsg{V: 1<<63 - 1},
		core.ProposeMsg{V: 42},
		core.ProposeMsg{Bot: true},
		core.BitMsg{B: 1},
		baseline.ClockMsg{V: 12345},
		baseline.PhaseProposeMsg{V: 9, Bot: false},
		baseline.PhaseProposeMsg{Bot: true},
		baseline.PhaseBitMsg{B: 0},
		baseline.KingMsg{V: 7},
		coin.AcceptMsg{Set: []uint16{}},
		coin.AcceptMsg{Set: []uint16{0, 3, 65535}},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestRoundTripEnvelopes(t *testing.T) {
	m := proto.Envelope{Child: 2, Inner: proto.Envelope{Child: 0, Inner: proto.Envelope{Child: 5, Inner: core.BitMsg{B: 1}}}}
	roundTrip(t, m)
}

func TestRoundTripGVSSRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		f := rng.Intn(3)
		switch trial % 4 {
		case 0:
			rows := make([]field.Poly, n)
			for i := range rows {
				rows[i] = randPoly(rng, f+1)
			}
			roundTrip(t, gvss.ShareMsg{Rows: rows})
		case 1:
			roundTrip(t, gvss.EchoMsg{Vals: randMatrix(rng, n), Has: randBools(rng, n)})
		case 2:
			roundTrip(t, gvss.VoteMsg{OK: randBools(rng, n)})
		case 3:
			roundTrip(t, gvss.RecoverMsg{Shares: randMatrix(rng, n), HasRow: randBools(rng, n)})
		}
	}
}

// canonEnvelopes rewrites pointer-form messages — envelopes at any
// nesting depth, and the pooled payload types compose paths box as
// pointers — into the value form the codec decodes to.
func canonEnvelopes(m proto.Message) proto.Message {
	if env, ok := proto.AsEnvelope(m); ok {
		return proto.Envelope{Child: env.Child, Inner: canonEnvelopes(env.Inner)}
	}
	switch v := m.(type) {
	case *gvss.ShareMsg:
		return *v
	case *gvss.EchoMsg:
		// The codec transmits the row views only; composed messages
		// additionally carry the flat performance mirrors, which the
		// canonical decoded form does not have.
		c := *v
		c.ValsFlat, c.HasFlat = nil, nil
		return c
	case *gvss.VoteMsg:
		c := *v
		c.OKFlat = nil
		return c
	case *gvss.RecoverMsg:
		c := *v
		c.SharesFlat, c.HasRowFlat = nil, nil
		return c
	case *coin.AcceptMsg:
		return *v
	}
	return m
}

func TestRoundTripWholeProtocolTraffic(t *testing.T) {
	// Everything a live ss-Byz-Clock-Sync node actually sends must make
	// it through the codec unchanged.
	env := proto.Env{N: 4, F: 1, ID: 0, Rng: rand.New(rand.NewSource(2))}
	node := core.NewClockSync(env, 64, coin.FMFactory{})
	for beat := uint64(0); beat < 12; beat++ {
		sends := node.Compose(beat)
		var inbox []proto.Recv
		for _, s := range sends {
			b, err := Encode(s.Msg)
			if err != nil {
				t.Fatalf("beat %d: encode: %v", beat, err)
			}
			m, err := Decode(b)
			if err != nil {
				t.Fatalf("beat %d: decode: %v", beat, err)
			}
			// Compose may box envelopes as pointers (proto.WrapSends);
			// the codec always decodes the value form, so compare the
			// canonical value representation.
			if !reflect.DeepEqual(m, canonEnvelopes(s.Msg)) {
				t.Fatalf("beat %d: mismatch for %s", beat, s.Msg.Kind())
			}
			inbox = append(inbox, proto.Recv{From: 0, Msg: m})
		}
		node.Deliver(beat, inbox)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		// Must never panic; error or clean decode both acceptable.
		if m, err := Decode(b); err == nil {
			// Re-encoding a successful decode must round trip.
			b2, err := Encode(m)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			m2, err := Decode(b2)
			if err != nil || !reflect.DeepEqual(m, m2) {
				t.Fatalf("unstable decode: %#v vs %#v", m, m2)
			}
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	m := gvss.EchoMsg{Vals: randMatrix(rand.New(rand.NewSource(4)), 5), Has: randBools(rand.New(rand.NewSource(5)), 5)}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(b))
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	b, err := Encode(core.BitMsg{B: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(b, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := Encode(unknownMsg{}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestEncodeRejectsDeepNesting(t *testing.T) {
	var m proto.Message = core.BitMsg{B: 0}
	for i := 0; i < 40; i++ {
		m = proto.Envelope{Child: 1, Inner: m}
	}
	if _, err := Encode(m); err == nil {
		t.Fatal("over-deep nesting accepted")
	}
}

func TestSizeReportsBytes(t *testing.T) {
	if s := Size(core.BitMsg{B: 1}); s != 2 {
		t.Fatalf("BitMsg size = %d, want 2", s)
	}
	if s := Size(unknownMsg{}); s != 0 {
		t.Fatalf("unknown size = %d, want 0", s)
	}
}

type unknownMsg struct{}

func (unknownMsg) Kind() string { return "test.unknown" }

func randPoly(rng *rand.Rand, n int) field.Poly {
	p := make(field.Poly, n)
	for i := range p {
		p[i] = field.Reduce(rng.Uint64())
	}
	return p
}

func randMatrix(rng *rand.Rand, n int) [][]field.Elem {
	m := make([][]field.Elem, n)
	for i := range m {
		m[i] = randPoly(rng, n)
	}
	return m
}

func randBools(rng *rand.Rand, n int) [][]bool {
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
		for j := range m[i] {
			m[i][j] = rng.Intn(2) == 0
		}
	}
	return m
}

func BenchmarkEncodeEcho(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := gvss.EchoMsg{Vals: randMatrix(rng, 10), Has: randBools(rng, 10)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEcho(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := gvss.EchoMsg{Vals: randMatrix(rng, 10), Has: randBools(rng, 10)}
	buf, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendToMatchesEncode verifies the pooled append API produces the
// same bytes as Encode, after an arbitrary prefix, reusing the buffer.
func TestAppendToMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	msgs := []proto.Message{
		gvss.EchoMsg{Vals: randMatrix(rng, 5), Has: randBools(rng, 5)},
		core.FullClockMsg{V: 123456},
		proto.Envelope{Child: 3, Inner: core.BitMsg{B: 1}},
	}
	buf := []byte("prefix")
	for _, m := range msgs {
		want, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendTo(buf, m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:len(buf)], buf) {
			t.Fatal("AppendTo clobbered the prefix")
		}
		if !bytes.Equal(got[len(buf):], want) {
			t.Fatalf("AppendTo bytes differ from Encode for %T", m)
		}
		// Sequential appends into one arena must stay self-consistent.
		buf = got
	}
}

// TestAppendToUnregistered confirms the error path leaves the caller
// able to roll back to its previous length.
func TestAppendToUnregistered(t *testing.T) {
	type fake struct{ proto.Message }
	buf := []byte{1, 2, 3}
	got, err := AppendTo(buf, fake{})
	if err == nil {
		t.Fatal("expected error for unregistered type")
	}
	if !bytes.Equal(got[:3], []byte{1, 2, 3}) {
		t.Fatal("prefix corrupted on error")
	}
}

// TestSizeMatchesEncode checks Size agrees with Encode across messages.
func TestSizeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		m := gvss.VoteMsg{OK: randBools(rng, 1+rng.Intn(8))}
		want, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := Size(m); got != len(want) {
			t.Fatalf("Size = %d, want %d", got, len(want))
		}
	}
}
