package wire_test

import (
	"bytes"
	"math/rand"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/wire"
)

// beatTraffic composes a few beats of a real ClockSync node and returns
// its sends encoded as frames — the corpus the networked runtime
// actually puts on the wire.
func beatTraffic(t testing.TB) [][]byte {
	t.Helper()
	env := proto.Env{N: 4, F: 1, ID: 0, Rng: rand.New(rand.NewSource(7))}
	node := core.NewClockSync(env, 16, coin.FMFactory{})
	var frames [][]byte
	for beat := uint64(0); beat < 6; beat++ {
		var seq uint32
		for _, s := range node.Compose(beat) {
			payload, err := wire.Encode(s.Msg)
			if err != nil {
				t.Fatalf("beat %d: %v", beat, err)
			}
			frames = append(frames, wire.AppendFrame(nil, wire.Frame{
				Kind: wire.KindMsg, From: 0, Beat: beat, DeliveryBeat: beat,
				Seq: seq, Payload: payload,
			}))
			seq++
		}
		frames = append(frames, wire.AppendFrame(nil, wire.Frame{
			Kind: wire.KindMark, From: 0, Beat: beat, DeliveryBeat: beat,
		}))
		node.Deliver(beat, nil)
	}
	return frames
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []wire.Frame{
		{Kind: wire.KindMark, From: 3, Beat: 17, DeliveryBeat: 17},
		{Kind: wire.KindMsg, From: 0, Beat: 0, DeliveryBeat: 0, Seq: 9, Payload: []byte{10, 1}},
		{Kind: wire.KindMsg, From: 15, Beat: 1 << 40, DeliveryBeat: 1<<40 + 3, Seq: 1<<32 - 1, Copy: 2, Payload: []byte{7, 5}},
	}
	for _, f := range cases {
		enc := wire.AppendFrame(nil, f)
		got, err := wire.DecodeFrame(enc)
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		if got.Kind != f.Kind || got.From != f.From || got.Beat != f.Beat ||
			got.DeliveryBeat != f.DeliveryBeat || got.Seq != f.Seq || got.Copy != f.Copy ||
			!bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip: sent %+v got %+v", f, got)
		}
	}
}

func TestFrameRealTrafficRoundTrips(t *testing.T) {
	for i, enc := range beatTraffic(t) {
		f, err := wire.DecodeFrame(enc)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Kind == wire.KindMsg {
			if _, err := wire.Decode(f.Payload); err != nil {
				t.Fatalf("frame %d payload: %v", i, err)
			}
		}
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	good := wire.AppendFrame(nil, wire.Frame{Kind: wire.KindMark, From: 1, Beat: 5, DeliveryBeat: 5})
	bad := [][]byte{
		nil,
		{},
		{1},
		{2, 1, 0, 0, 0, 0, 0},                // wrong version
		{1, 9, 0, 0, 0, 0, 0},                // unknown kind
		{1, 2, 0, 0, 0, 0},                   // truncated before copy byte
		append(append([]byte{}, good...), 1), // marker with payload
		{1, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0, 0, 0, 0}, // sender id overflow
	}
	for i, b := range bad {
		if _, err := wire.DecodeFrame(b); err == nil {
			t.Fatalf("case %d: decoded malformed frame %x", i, b)
		}
	}
	// Truncating a real frame at every boundary must error, never panic.
	msg := beatTraffic(t)[0]
	for cut := 0; cut < len(msg) && cut < 12; cut++ {
		wire.DecodeFrame(msg[:cut])
	}
}

// FuzzDecodeFrame fuzzes the frame decoder with a corpus seeded from
// real beat traffic (ClockSync compose output framed exactly as the
// networked runtime sends it). Decoding must never panic, and anything
// that decodes must re-encode to a frame that decodes to the same
// header and payload.
func FuzzDecodeFrame(f *testing.F) {
	for _, enc := range beatTraffic(f) {
		f.Add(enc)
	}
	f.Add([]byte{1, 2, 3, 4, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := wire.DecodeFrame(data)
		if err != nil {
			return
		}
		re := wire.AppendFrame(nil, fr)
		got, err := wire.DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame undecodable: %v", err)
		}
		if got.Kind != fr.Kind || got.From != fr.From || got.Beat != fr.Beat ||
			got.DeliveryBeat != fr.DeliveryBeat || got.Seq != fr.Seq || got.Copy != fr.Copy ||
			!bytes.Equal(got.Payload, fr.Payload) {
			t.Fatalf("frame not stable under re-encoding: %+v vs %+v", fr, got)
		}
		// A message frame's payload feeds wire.Decode on the receive path;
		// it must reject or decode without panicking, whatever the bytes.
		if fr.Kind == wire.KindMsg {
			wire.Decode(fr.Payload)
		}
	})
}
