package wire

import (
	"encoding/binary"
	"fmt"
)

// Batch payload — the body of a KindBatch frame. One batch carries a
// contiguous window of tenants' messages from one sender for one beat:
//
//	payload := uvarint tenantStart
//	           uvarint tenantCount
//	           tenantCount × run          (tenant tenantStart+i, in order)
//	run     := uvarint msgCount
//	           msgCount × msg
//	msg     := uvarint seq                (sender's compose/global order)
//	           uvarint len
//	           len bytes                  (one Encode'd protocol message)
//
// Runs are positional — run i is tenant tenantStart+i, and a tenant
// appears at most once per frame by construction — so overlapping or
// out-of-order tenant claims are unrepresentable inside a frame; a
// Byzantine sender wanting to double a tenant's traffic must send more
// messages (or more frames), both of which the receiver's ordinary
// per-sender bounds and dedup already govern.
//
// Per-message seqs are carried explicitly (not derived from run
// position) because the receiver's canonical inbox order sorts an
// adversary's messages by its GLOBAL send sequence across all of its
// faulty ids, and those interleave across frames.

const (
	// MaxBatchTenants bounds the tenant window a batch may claim: far
	// above any real tenancy, low enough that a corrupted varint cannot
	// become a giant table index or allocation downstream.
	MaxBatchTenants = 1 << 20
	// MaxBatchMsgs bounds one tenant's messages in one batch frame.
	// Honest protocols send a handful per tenant per beat; the cap only
	// bites floods, before any per-message work is done.
	MaxBatchMsgs = 1 << 16
)

// BatchMsg is one encoded message inside a batch run.
type BatchMsg struct {
	// Seq is the message's position in its sender's compose order (for
	// adversary senders: the adversary's global send order).
	Seq uint32
	// Payload is one Encode'd protocol message.
	Payload []byte
}

// AppendBatchPayload appends the batch payload covering tenants
// [start, start+len(runs)) to buf and returns the extended slice.
// runs[i] is tenant start+i's messages; empty runs are encoded (the
// window is contiguous).
func AppendBatchPayload(buf []byte, start int, runs [][]BatchMsg) []byte {
	buf = binary.AppendUvarint(buf, uint64(start))
	buf = binary.AppendUvarint(buf, uint64(len(runs)))
	for _, run := range runs {
		buf = binary.AppendUvarint(buf, uint64(len(run)))
		for _, m := range run {
			buf = binary.AppendUvarint(buf, uint64(m.Seq))
			buf = binary.AppendUvarint(buf, uint64(len(m.Payload)))
			buf = append(buf, m.Payload...)
		}
	}
	return buf
}

// DecodeBatchPayload parses a batch payload, calling fn once per
// message in (tenant, run) order; msg aliases data. It never panics on
// malformed input and returns ErrMalformed (wrapped) for truncation,
// oversized counts or varints, a tenant window past maxTenant, or
// trailing bytes. The whole payload is validated structurally BEFORE
// the first callback, so a malformed frame delivers nothing — fn never
// sees a partial batch.
//
// maxTenant, when positive, is the receiver's tenant count: windows
// reaching at or beyond it are rejected outright, so a Byzantine range
// cannot index outside the receiver's tables.
func DecodeBatchPayload(data []byte, maxTenant int, fn func(tenant int, seq uint32, msg []byte)) error {
	_, _, rest, err := scanBatch(data, maxTenant, nil)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing batch bytes", ErrMalformed, len(rest))
	}
	_, _, _, _ = scanBatch(data, maxTenant, fn)
	return nil
}

// scanBatch walks one batch payload, optionally invoking fn per
// message, returning the window plus unconsumed bytes.
func scanBatch(data []byte, maxTenant int, fn func(int, uint32, []byte)) (start, count uint64, rest []byte, err error) {
	if start, data, err = getUvarint(data); err != nil || start > MaxBatchTenants {
		return 0, 0, nil, fmt.Errorf("%w: batch tenant start", ErrMalformed)
	}
	if count, data, err = getUvarint(data); err != nil || count > MaxBatchTenants {
		return 0, 0, nil, fmt.Errorf("%w: batch tenant count", ErrMalformed)
	}
	if maxTenant > 0 && start+count > uint64(maxTenant) {
		return 0, 0, nil, fmt.Errorf("%w: batch window [%d,%d) exceeds %d tenants", ErrMalformed, start, start+count, maxTenant)
	}
	for i := uint64(0); i < count; i++ {
		var msgs uint64
		if msgs, data, err = getUvarint(data); err != nil || msgs > MaxBatchMsgs {
			return 0, 0, nil, fmt.Errorf("%w: batch run length", ErrMalformed)
		}
		for j := uint64(0); j < msgs; j++ {
			var seq, ln uint64
			if seq, data, err = getUvarint(data); err != nil || seq > 1<<32-1 {
				return 0, 0, nil, fmt.Errorf("%w: batch msg seq", ErrMalformed)
			}
			if ln, data, err = getUvarint(data); err != nil || ln > uint64(len(data)) {
				return 0, 0, nil, fmt.Errorf("%w: batch msg length", ErrMalformed)
			}
			if fn != nil {
				fn(int(start+i), uint32(seq), data[:ln])
			}
			data = data[ln:]
		}
	}
	return start, count, data, nil
}
