package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"ssbyzclock/internal/baseline"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/gvss"
	"ssbyzclock/internal/proto"
)

// registeredSamples builds one randomized instance of every registered
// message type (the codec's full type universe), nested envelopes
// included.
func registeredSamples(rng *rand.Rand) []proto.Message {
	n := 2 + rng.Intn(5)
	rows := make([]field.Poly, n)
	for i := range rows {
		rows[i] = randPoly(rng, 1+rng.Intn(4))
	}
	return []proto.Message{
		gvss.ShareMsg{Rows: rows},
		gvss.EchoMsg{Vals: randMatrix(rng, n), Has: randBools(rng, n)},
		gvss.VoteMsg{OK: randBools(rng, n)},
		gvss.RecoverMsg{Shares: randMatrix(rng, n), HasRow: randBools(rng, n)},
		coin.AcceptMsg{Set: []uint16{uint16(rng.Intn(100)), uint16(rng.Intn(100))}},
		core.TwoClockMsg{V: uint8(rng.Intn(3))},
		core.FullClockMsg{V: rng.Uint64() >> 1},
		core.ProposeMsg{V: rng.Uint64() >> 1, Bot: rng.Intn(2) == 0},
		core.BitMsg{B: byte(rng.Intn(2))},
		baseline.ClockMsg{V: rng.Uint64() >> 1},
		baseline.PhaseProposeMsg{V: rng.Uint64() >> 1, Bot: rng.Intn(2) == 0},
		baseline.PhaseBitMsg{B: byte(rng.Intn(2))},
		baseline.KingMsg{V: rng.Uint64() >> 1},
		proto.Envelope{Child: uint8(rng.Intn(8)), Inner: gvss.VoteMsg{OK: randBools(rng, n)}},
		proto.Envelope{Child: 3, Inner: proto.Envelope{Child: 1, Inner: core.BitMsg{B: 1}}},
	}
}

// mutateMessage flips every addressable slice element reachable from m
// (via reflection, so it covers future message fields automatically).
// Returns the number of cells flipped.
func mutateMessage(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			return 0
		}
		return mutateMessage(v.Elem())
	case reflect.Struct:
		total := 0
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() || f.Kind() == reflect.Slice || f.Kind() == reflect.Interface {
				total += mutateMessage(f)
			}
		}
		return total
	case reflect.Slice:
		total := 0
		for i := 0; i < v.Len(); i++ {
			total += mutateMessage(v.Index(i))
		}
		return total
	case reflect.Bool:
		if v.CanSet() {
			v.SetBool(!v.Bool())
			return 1
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if v.CanSet() {
			v.SetUint(v.Uint() ^ 1)
			return 1
		}
	}
	return 0
}

func mustEncode(t testing.TB, m proto.Message) []byte {
	t.Helper()
	b, err := Encode(m)
	if err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	return b
}

// assertCloneContract checks the three clauses of the deep-copy
// contract on one message: semantic equality (identical wire form),
// structural equality, and alias-freedom in both directions.
func assertCloneContract(t testing.TB, m proto.Message) {
	t.Helper()
	orig := mustEncode(t, m)
	c, err := Clone(m)
	if err != nil {
		t.Fatalf("clone %T: %v", m, err)
	}
	if got := mustEncode(t, c); !bytes.Equal(got, orig) {
		t.Fatalf("%T: clone encodes differently", m)
	}
	// Decode of the original bytes is the canonical value form; the
	// clone must equal it structurally.
	canon, err := Decode(orig)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if !reflect.DeepEqual(c, canon) {
		t.Fatalf("%T: clone differs structurally from canonical decode:\n%#v\nvs\n%#v", m, c, canon)
	}
	// Mutate the clone through every reachable cell: the original's wire
	// form must not move (clone holds no aliases into m).
	mutateMessage(reflect.ValueOf(&c).Elem())
	if got := mustEncode(t, m); !bytes.Equal(got, orig) {
		t.Fatalf("%T: mutating the clone changed the original (aliased memory)", m)
	}
	// And vice versa: a fresh clone must be immune to mutations of the
	// original.
	c2, err := Clone(m)
	if err != nil {
		t.Fatal(err)
	}
	before := mustEncode(t, c2)
	mutateMessage(reflect.ValueOf(&m).Elem())
	if got := mustEncode(t, c2); !bytes.Equal(got, before) {
		t.Fatalf("%T: mutating the original changed the clone (aliased memory)", m)
	}
}

// TestCloneEveryRegisteredType pins the contract across the codec's full
// type universe with many random shapes.
func TestCloneEveryRegisteredType(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		for _, m := range registeredSamples(rng) {
			assertCloneContract(t, m)
		}
	}
	// Unregistered types must error, not silently alias.
	if _, err := Clone(fakeCloneMsg{}); err == nil {
		t.Fatal("clone of unregistered type did not error")
	}
}

type fakeCloneMsg struct{}

func (fakeCloneMsg) Kind() string { return "fake" }

// FuzzCloneRoundTrip drives the same contract from raw bytes: any input
// the codec accepts must clone into a deeply-equal, alias-free copy.
func FuzzCloneRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range registeredSamples(rng) {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // malformed input is the codec's problem, not Clone's
		}
		assertCloneContract(t, m)
	})
}
