package coin

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/proto"
)

func env(n, f, id int, seed int64) proto.Env {
	return proto.Env{N: n, F: f, ID: id, Rng: rand.New(rand.NewSource(seed))}
}

// runFlippers drives one instance per node through all rounds with
// perfect delivery and returns the outputs.
func runFlippers(t *testing.T, factory Factory, n, f int, seed int64) []byte {
	t.Helper()
	flippers := make([]Flipper, n)
	for i := 0; i < n; i++ {
		flippers[i] = factory.New(env(n, f, i, seed+int64(i)), 7)
	}
	for round := 1; round <= factory.Rounds(); round++ {
		inboxes := make([][]proto.Recv, n)
		for i, fl := range flippers {
			for _, s := range fl.Compose(round) {
				if s.To == proto.Broadcast {
					for to := 0; to < n; to++ {
						inboxes[to] = append(inboxes[to], proto.Recv{From: i, Msg: s.Msg})
					}
				} else if s.To >= 0 && s.To < n {
					inboxes[s.To] = append(inboxes[s.To], proto.Recv{From: i, Msg: s.Msg})
				}
			}
		}
		for i, fl := range flippers {
			fl.Deliver(round, inboxes[i])
		}
	}
	out := make([]byte, n)
	for i, fl := range flippers {
		out[i] = fl.Output()
	}
	return out
}

func TestFMAllHonestAgree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		out := runFlippers(t, FMFactory{}, 4, 1, seed)
		for i := 1; i < len(out); i++ {
			if out[i] != out[0] {
				t.Fatalf("seed %d: outputs %v", seed, out)
			}
		}
	}
}

func TestFMBothValuesOccur(t *testing.T) {
	seen := map[byte]int{}
	for seed := int64(0); seed < 40; seed++ {
		out := runFlippers(t, FMFactory{}, 4, 1, seed*31)
		seen[out[0]]++
	}
	if seen[0] < 5 || seen[1] < 5 {
		t.Fatalf("coin badly biased over seeds: %v", seen)
	}
}

func TestFMOutputBeforeDoneIsZero(t *testing.T) {
	fl := FMFactory{}.New(env(4, 1, 0, 1), 0)
	if fl.Output() != 0 {
		t.Fatal("unfinished flipper must output 0")
	}
}

func TestFMRejectsSmallAcceptSets(t *testing.T) {
	// A Byzantine accept set smaller than n-f must be ignored: feed one
	// directly into round 4 and verify it never becomes the leader basis.
	n, f := 4, 1
	flippers := make([]Flipper, n)
	for i := 0; i < n; i++ {
		flippers[i] = FMFactory{}.New(env(n, f, i, int64(i)+100), 0)
	}
	for round := 1; round <= FMRounds; round++ {
		inboxes := make([][]proto.Recv, n)
		for i, fl := range flippers {
			for _, s := range fl.Compose(round) {
				if s.To == proto.Broadcast {
					for to := 0; to < n; to++ {
						inboxes[to] = append(inboxes[to], proto.Recv{From: i, Msg: s.Msg})
					}
				} else if s.To >= 0 && s.To < n {
					inboxes[s.To] = append(inboxes[s.To], proto.Recv{From: i, Msg: s.Msg})
				}
			}
		}
		if round == 4 {
			// Node 3 equivocates a tiny accept set to everyone.
			for to := 0; to < n; to++ {
				inboxes[to] = append(inboxes[to], proto.Recv{From: 3, Msg: AcceptMsg{Set: []uint16{0}}})
			}
		}
		for i, fl := range flippers {
			fl.Deliver(round, inboxes[i])
		}
	}
	// All honest still agree (the malformed accept claim is dropped; the
	// duplicate-from-3 rule keeps only the first).
	out := make([]byte, n)
	for i, fl := range flippers {
		out[i] = fl.Output()
	}
	for i := 1; i < n; i++ {
		if out[i] != out[0] {
			t.Fatalf("outputs diverged: %v", out)
		}
	}
}

func TestDedupSet(t *testing.T) {
	got := dedupSet([]uint16{3, 1, 3, 9, 1, 2}, 5)
	want := []uint16{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dedupSet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupSet = %v, want %v", got, want)
		}
	}
}

func TestRabinSameBitEverywhere(t *testing.T) {
	fa := RabinFactory{Seed: 9}
	for beat := uint64(0); beat < 50; beat++ {
		var bits []byte
		for id := 0; id < 5; id++ {
			fl := fa.New(env(5, 1, id, int64(id)), beat)
			fl.Deliver(1, nil)
			bits = append(bits, fl.Output())
		}
		for _, b := range bits {
			if b != bits[0] {
				t.Fatalf("beat %d: rabin bits differ: %v", beat, bits)
			}
		}
	}
}

func TestRabinSeedAndBeatChangeBits(t *testing.T) {
	differs := false
	for beat := uint64(0); beat < 16; beat++ {
		a := RabinFactory{Seed: 1}.New(env(4, 1, 0, 1), beat)
		b := RabinFactory{Seed: 2}.New(env(4, 1, 0, 1), beat)
		a.Deliver(1, nil)
		b.Deliver(1, nil)
		if a.Output() != b.Output() {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seed has no effect on rabin tape")
	}
}

func TestLocalCoinIndependent(t *testing.T) {
	disagreements := 0
	for seed := int64(0); seed < 30; seed++ {
		var bits []byte
		for id := 0; id < 6; id++ {
			fl := LocalFactory{}.New(env(6, 1, id, seed*100+int64(id)), 0)
			fl.Deliver(1, nil)
			bits = append(bits, fl.Output())
		}
		for _, b := range bits {
			if b != bits[0] {
				disagreements++
				break
			}
		}
	}
	if disagreements < 15 {
		t.Fatalf("local coin agreed too often: %d/30 disagreements", disagreements)
	}
}

func TestFMSilentDealerStillAgrees(t *testing.T) {
	// Node 0 never sends anything (crash). Remaining nodes must still
	// produce a common output: the silent node's dealings are graded
	// none and excluded from every accept set.
	n, f := 4, 1
	flippers := make([]Flipper, n)
	for i := 0; i < n; i++ {
		flippers[i] = FMFactory{}.New(env(n, f, i, int64(i)+200), 0)
	}
	for round := 1; round <= FMRounds; round++ {
		inboxes := make([][]proto.Recv, n)
		for i, fl := range flippers {
			if i == 0 {
				fl.Compose(round) // state advances, output dropped
				continue
			}
			for _, s := range fl.Compose(round) {
				if s.To == proto.Broadcast {
					for to := 0; to < n; to++ {
						inboxes[to] = append(inboxes[to], proto.Recv{From: i, Msg: s.Msg})
					}
				} else if s.To >= 0 && s.To < n {
					inboxes[s.To] = append(inboxes[s.To], proto.Recv{From: i, Msg: s.Msg})
				}
			}
		}
		for i, fl := range flippers {
			fl.Deliver(round, inboxes[i])
		}
	}
	for i := 2; i < n; i++ {
		if flippers[i].Output() != flippers[1].Output() {
			t.Fatalf("outputs diverged despite only a crash fault")
		}
	}
}
