// Package coin implements probabilistic coin-flipping algorithms in the
// sense of the paper's Definition 2.6: synchronous protocols that, within
// a fixed number of rounds, output a bit at every node such that with
// constant probability p0 (resp. p1) all non-faulty nodes output 0
// (resp. 1), and the output is unpredictable to the adversary before the
// final round.
//
// Three implementations are provided:
//
//   - FM: a Feldman–Micali-style common coin built on graded verifiable
//     secret sharing (package gvss) with ticket-based leader election.
//     This is the instantiation the paper assumes (Observation 2.1).
//   - Rabin: a predistributed shared-randomness beacon in the style of
//     Rabin [17]. The paper's footnote 1 notes such a coin relies on
//     special common initialization, which self-stabilization disallows;
//     it is provided as an ideal coin for fast large-n experiments and for
//     differential testing against FM.
//   - Local: an independent per-node coin — deliberately *not* a common
//     coin. It is the randomness model of the Dolev–Welch baseline and of
//     the E9 ablation showing why a common coin is essential.
//
// The package also defines the coin-distribution architecture the clock
// stack is wired through: Feed (a consumer's view of a coin source),
// Supply (hands feeds to consumers), and SharedPipeline — Remark 4.1's
// layout, multiplexing ONE ss-Byz-Coin-Flip pipeline per node among all
// of a stack's consumers via salted per-consumer derivation. See
// shared.go for the design notes and the consumer-handle contract.
package coin

import (
	"math/rand"

	"ssbyzclock/internal/proto"
)

// Flipper is one instance of a multi-round coin-flipping protocol
// (Definition 2.6's algorithm A). Rounds are numbered 1..Rounds(); the
// driver calls Compose(r) then Deliver(r) for each round in order, one
// round per beat when pipelined. Output is meaningful after
// Deliver(Rounds()) and must return a deterministic default (0) before.
type Flipper interface {
	Rounds() int
	Compose(round int) []proto.Send
	Deliver(round int, inbox []proto.Recv)
	Output() byte
}

// Factory creates per-node Flipper instances. beat is the global beat at
// which the instance is created; only the Rabin beacon uses it (to index
// its predistributed tape), and that dependence is exactly the
// special-initialization assumption footnote 1 of the paper excludes for
// the main result.
type Factory interface {
	Rounds() int
	New(env proto.Env, beat uint64) Flipper
}

// WordFlipper is optionally implemented by flippers whose output carries
// more than one bit of common randomness — the FM coin's leader ticket,
// the Rabin beacon's tape word. OutputWord must agree across honest
// nodes whenever the protocol's underlying result fully agrees (the FM
// coin's elected leader and ticket; constant probability per
// Definition 2.6), must be unpredictable to the adversary on the same
// schedule as Output, and (like Output) must return a deterministic
// default before the final round. On beats where only Output agrees —
// e.g. two leaders' tickets coincidentally sharing parity — the words
// (hence derived consumer bits) may disagree; that costs a constant
// slice of the coin's agreement probability, never its p0/p1 floor.
// The shared pipeline (SharedPipeline) uses the word to derive
// independent per-consumer bits; flippers without it fall back to
// single-bit derivation.
type WordFlipper interface {
	OutputWord() uint64
}

// Recycler is optionally implemented by factories whose instances can be
// re-initialized in place. Renew behaves exactly like New — including the
// deterministic randomness it draws — but may reuse the retired
// instance's allocations; drivers (the ss-Byz-Coin-Flip pipeline) pass
// the instance that just exited the pipeline. Implementations must fall
// back to New when old is foreign (e.g. a fault-scrambled wrapper) or
// shaped for a different environment.
type Recycler interface {
	Renew(old Flipper, env proto.Env, beat uint64) Flipper
}

// splitmix64 is the SplitMix64 mixer, used to derive beacon bits and
// scramble seeds deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rngFrom derives a fresh deterministic rand.Rand from a seed and salt.
func rngFrom(seed int64, salt uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ salt))))
}
