// Package coin implements probabilistic coin-flipping algorithms in the
// sense of the paper's Definition 2.6: synchronous protocols that, within
// a fixed number of rounds, output a bit at every node such that with
// constant probability p0 (resp. p1) all non-faulty nodes output 0
// (resp. 1), and the output is unpredictable to the adversary before the
// final round.
//
// Three implementations are provided:
//
//   - FM: a Feldman–Micali-style common coin built on graded verifiable
//     secret sharing (package gvss) with ticket-based leader election.
//     This is the instantiation the paper assumes (Observation 2.1).
//   - Rabin: a predistributed shared-randomness beacon in the style of
//     Rabin [17]. The paper's footnote 1 notes such a coin relies on
//     special common initialization, which self-stabilization disallows;
//     it is provided as an ideal coin for fast large-n experiments and for
//     differential testing against FM.
//   - Local: an independent per-node coin — deliberately *not* a common
//     coin. It is the randomness model of the Dolev–Welch baseline and of
//     the E9 ablation showing why a common coin is essential.
package coin

import (
	"math/rand"

	"ssbyzclock/internal/proto"
)

// Flipper is one instance of a multi-round coin-flipping protocol
// (Definition 2.6's algorithm A). Rounds are numbered 1..Rounds(); the
// driver calls Compose(r) then Deliver(r) for each round in order, one
// round per beat when pipelined. Output is meaningful after
// Deliver(Rounds()) and must return a deterministic default (0) before.
type Flipper interface {
	Rounds() int
	Compose(round int) []proto.Send
	Deliver(round int, inbox []proto.Recv)
	Output() byte
}

// Factory creates per-node Flipper instances. beat is the global beat at
// which the instance is created; only the Rabin beacon uses it (to index
// its predistributed tape), and that dependence is exactly the
// special-initialization assumption footnote 1 of the paper excludes for
// the main result.
type Factory interface {
	Rounds() int
	New(env proto.Env, beat uint64) Flipper
}

// Recycler is optionally implemented by factories whose instances can be
// re-initialized in place. Renew behaves exactly like New — including the
// deterministic randomness it draws — but may reuse the retired
// instance's allocations; drivers (the ss-Byz-Coin-Flip pipeline) pass
// the instance that just exited the pipeline. Implementations must fall
// back to New when old is foreign (e.g. a fault-scrambled wrapper) or
// shaped for a different environment.
type Recycler interface {
	Renew(old Flipper, env proto.Env, beat uint64) Flipper
}

// splitmix64 is the SplitMix64 mixer, used to derive beacon bits and
// scramble seeds deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rngFrom derives a fresh deterministic rand.Rand from a seed and salt.
func rngFrom(seed int64, salt uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ salt))))
}
