package coin_test

// Tests and fuzz harness for the shared-pipeline consumer derivation:
// per-consumer coin values must be deterministic functions of (consumer
// label, shared per-beat word) alone — independent of subscription
// order — collision-free across labels, and never degenerate (a
// constant stream) for bit-only drivers. The worker-count half of the
// replay guarantee (Config.Workers 1 vs GOMAXPROCS, byte-identical) is
// asserted at stack level in core's TestSharedLayoutDeterministicReplay.

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/proto"
)

// mix64 is SplitMix64, re-declared here so the tests do not depend on
// the package's internal mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// scriptDriver is a coin.Driver replaying a deterministic word sequence:
// beat t's output word is the t-th element, the bit its low bit.
type scriptDriver struct {
	seed uint64
	rich bool
	step int
	word uint64
}

func (d *scriptDriver) Compose(uint64) []proto.Send { return nil }
func (d *scriptDriver) Bit() byte                   { return byte(d.word & 1) }
func (d *scriptDriver) Word() (uint64, bool)        { return d.word, d.rich }
func (d *scriptDriver) Rounds() int                 { return 1 }
func (d *scriptDriver) Scramble(*rand.Rand)         {}
func (d *scriptDriver) Deliver(uint64, []proto.Recv) {
	d.step++
	d.word = mix64(d.seed + uint64(d.step))
}

func labelSet(n int) []string {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = string(rune('a'+i%26)) + "/consumer" + string(rune('0'+i/26))
	}
	return labels
}

// runDerivation subscribes the labels in the given order onto a fresh
// SharedPipeline over a scripted driver, steps it beats times, and
// returns each label's bit stream keyed by label.
func runDerivation(seed uint64, rich bool, labels []string, order []int, beats int) map[string][]byte {
	sp := coin.NewSharedPipeline(&scriptDriver{seed: seed, rich: rich})
	feeds := make(map[string]coin.Feed, len(labels))
	for _, idx := range order {
		feeds[labels[idx]] = sp.Subscribe(labels[idx])
	}
	streams := make(map[string][]byte, len(labels))
	for b := 0; b < beats; b++ {
		sp.Deliver(uint64(b), nil)
		for _, l := range labels {
			streams[l] = append(streams[l], feeds[l].Bit())
		}
	}
	return streams
}

// FuzzConsumerDerivation: for arbitrary word tapes, label counts and
// subscription orders, each consumer's stream depends only on its label
// (identical across subscription orders and reruns), label salts never
// collide, and no consumer's stream is constant while the shared word
// tape varies — the degenerate-derivation failure the XOR fallback rule
// exists to prevent.
func FuzzConsumerDerivation(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(3), true)
	f.Add(uint64(42), uint64(7), uint8(8), false)
	f.Add(uint64(0), uint64(0), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed, permSeed uint64, nLabels uint8, rich bool) {
		const beats = 64
		n := 2 + int(nLabels%8)
		labels := labelSet(n)

		// Salt collision-freedom over this label set.
		salts := make(map[uint64]string, n)
		for _, l := range labels {
			s := coin.LabelSalt(l)
			if prev, dup := salts[s]; dup {
				t.Fatalf("salt collision: %q and %q -> %#x", prev, l, s)
			}
			salts[s] = l
		}

		// Identity order, a permuted order, and an identity rerun.
		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		perm := append([]int(nil), identity...)
		prng := rand.New(rand.NewSource(int64(mix64(permSeed))))
		prng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

		base := runDerivation(seed, rich, labels, identity, beats)
		permuted := runDerivation(seed, rich, labels, perm, beats)
		rerun := runDerivation(seed, rich, labels, identity, beats)

		for _, l := range labels {
			for b := 0; b < beats; b++ {
				if base[l][b] != permuted[l][b] {
					t.Fatalf("label %q beat %d: subscription order changed the stream", l, b)
				}
				if base[l][b] != rerun[l][b] {
					t.Fatalf("label %q beat %d: rerun diverged", l, b)
				}
			}
			// The scripted tape walks a splitmix sequence, so both the words
			// and their parities vary; a constant consumer stream over 64
			// beats would mean the derivation collapsed (probability ~2^-63
			// for a healthy rule).
			first, constant := base[l][0], true
			for _, b := range base[l][1:] {
				if b != first {
					constant = false
					break
				}
			}
			if constant {
				t.Fatalf("label %q: constant derived stream (rich=%v)", l, rich)
			}
		}
	})
}

// TestDeriveBitBareNeverDegenerate: the bit-only fallback rule must map
// the two raw bit values to the two derived values for EVERY salt — the
// property that makes a bare-bit driver safe to share. (A hash-style
// rule fails this for about half of all salts.)
func TestDeriveBitBareNeverDegenerate(t *testing.T) {
	for i := 0; i < 4096; i++ {
		salt := mix64(uint64(i))
		d0 := coin.DeriveBit(0, false, 0, salt)
		d1 := coin.DeriveBit(1, false, 1, salt)
		if d0 == d1 {
			t.Fatalf("salt %#x: bare-bit derivation collapsed both raw bits to %d", salt, d0)
		}
		if d0 > 1 || d1 > 1 {
			t.Fatalf("salt %#x: derived bit out of range: %d %d", salt, d0, d1)
		}
	}
}

// TestDeriveBitRichDecorrelates: rich-word derivation gives different
// consumers effectively independent bits — over a window of words, two
// distinct salts must not produce identical or exactly-complementary
// streams (which is all the bare-bit rule can offer).
func TestDeriveBitRichDecorrelates(t *testing.T) {
	saltA, saltB := coin.LabelSalt("cs/4clock/a1"), coin.LabelSalt("cs/4clock/a2")
	same, beats := 0, 4096
	for i := 0; i < beats; i++ {
		w := mix64(uint64(i) * 0x9e3779b97f4a7c15)
		if coin.DeriveBit(w, true, byte(w&1), saltA) == coin.DeriveBit(w, true, byte(w&1), saltB) {
			same++
		}
	}
	if same < beats/3 || same > 2*beats/3 {
		t.Fatalf("streams for distinct salts not decorrelated: agree on %d/%d beats", same, beats)
	}
}

// TestSubscribeDuplicateLabelPanics: a duplicate label is a wiring bug
// (two sub-protocols would share one bit stream) and must fail loudly.
func TestSubscribeDuplicateLabelPanics(t *testing.T) {
	sp := coin.NewSharedPipeline(&scriptDriver{seed: 9, rich: true})
	sp.Subscribe("a1")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Subscribe did not panic")
		}
	}()
	sp.Subscribe("a1")
}

// TestSharedPipelineScrambleRecovers: after a scramble (arbitrary captured
// word), the next Deliver re-captures the driver's real output — the
// consumer streams resynchronize with an unscrambled pipeline in one beat.
func TestSharedPipelineScrambleRecovers(t *testing.T) {
	mk := func() (*coin.SharedPipeline, coin.Feed) {
		sp := coin.NewSharedPipeline(&scriptDriver{seed: 77, rich: true})
		return sp, sp.Subscribe("c")
	}
	a, fa := mk()
	b, fb := mk()
	for i := 0; i < 8; i++ {
		a.Deliver(uint64(i), nil)
		b.Deliver(uint64(i), nil)
	}
	a.Scramble(rand.New(rand.NewSource(5)))
	a.Deliver(8, nil)
	b.Deliver(8, nil)
	if fa.Bit() != fb.Bit() {
		t.Fatal("consumer stream did not resynchronize one beat after scramble")
	}
}
