package coin

import (
	"fmt"
	"math/rand"

	"ssbyzclock/internal/proto"
)

// This file implements the shared coin-pipeline architecture of the
// paper's Remark 4.1. The clock stack (ss-Byz-Clock-Sync over
// ss-Byz-4-Clock over two ss-Byz-2-Clocks, or the recursive 2^j-clock)
// nominally runs one ss-Byz-Coin-Flip pipeline per embedded protocol —
// three per node for the full stack — but the remark observes that a
// single pipeline per node suffices: every consumer needs one common
// unpredictable bit per beat, and one pipeline produces exactly that.
// Sharing it cuts the dominant GVSS cost and the coin's message
// complexity by the number of consumers.
//
// The moving parts:
//
//   - Feed is a consumer's view of a coin source. A per-instance
//     pipeline (the paper's layout) is a Feed that sends and receives
//     its own traffic; a SharedPipeline consumer is a Feed that sends
//     nothing and reads a bit derived from the shared per-beat output.
//   - Supply hands Feeds to consumers; clock protocols are wired from a
//     Supply and never know which layout they run under.
//   - SharedPipeline drives ONE underlying pipeline (a Driver, in
//     practice *sscoin.Pipeline) and implements Supply by handing out
//     derived consumer handles.
//
// Consumer-handle contract:
//
//   - Exactly one protocol — the root of the stack — owns the
//     SharedPipeline: it forwards the pipeline's traffic under the
//     proto.SharedCoinChild envelope tag and calls Compose/Deliver once
//     per beat, Deliver *before* delivering any consumer, so consumers
//     read the bit produced in the current beat (the freshness that
//     Lemma 8 and Remark 3.1 require).
//   - Each consumer subscribes with a label that is unique within the
//     stack and stable across runs. The label (not subscription order)
//     determines the consumer's derivation salt, so coin values are
//     reproducible regardless of construction order or scheduler
//     worker count. Subscribe panics on duplicate or colliding labels:
//     two consumers sharing a salt would share a bit stream, silently
//     correlating sub-protocols that the analysis treats as independent.
//   - Consumers hold no coin state of their own. Scrambling the root
//     (which scrambles the Driver) is the transient-fault model for the
//     whole stack's randomness; consumer Scramble is a no-op.
//
// Per-consumer derivation: the pipeline's per-beat output is widened to
// a word (see Driver.Word). When the word carries more than one bit of
// common randomness ("rich": the FM coin's leader ticket, the Rabin
// beacon's tape word), consumer bits are splitmix64(word XOR salt)&1 —
// distinct consumers get effectively independent bits. When the
// underlying flipper only yields a bit, the consumer bit is that bit
// XORed with a salt-derived constant: a plain hash of a two-valued word
// could collapse to a constant stream for unlucky salts, which would
// destroy the coin's E0/E1 property for that consumer, whereas the XOR
// form provably preserves p0 and p1.

// Feed is one consumer's view of a coin source: the subset of the
// ss-Byz-Coin-Flip pipeline surface the clock protocols consume.
// *sscoin.Pipeline implements it (the per-instance layout); so do the
// handles returned by SharedPipeline.Feed (the shared layout, whose
// Compose returns nothing and whose Deliver and Scramble are no-ops).
type Feed interface {
	// Compose returns the feed's own traffic for this beat (empty for a
	// shared-pipeline consumer: the root forwards the shared traffic).
	Compose(beat uint64) []proto.Send
	// Deliver routes this beat's feed traffic (no-op for a consumer).
	Deliver(beat uint64, inbox []proto.Recv)
	// Bit is the feed's random bit for the most recently delivered beat.
	Bit() byte
	// Rounds is Δ_A: the pipeline depth, hence the convergence bound the
	// consumer must respect.
	Rounds() int
	// Scramble models a transient fault in the feed's own state (no-op
	// for a consumer; the root scrambles the shared pipeline).
	Scramble(rng *rand.Rand)
}

// Supply wires clock protocols to their coin feeds. Implementations:
// sscoin.PerInstance (the paper's layout: a fresh pipeline per
// consumer) and *SharedPipeline (Remark 4.1: derived handles onto one
// pipeline).
type Supply interface {
	// Feed returns the consumer's feed. label must be unique within the
	// supply and stable across runs; per-instance supplies may ignore it.
	Feed(env proto.Env, label string) Feed
}

// Driver is the underlying pipeline a SharedPipeline multiplexes — in
// practice *sscoin.Pipeline. It is a Feed that additionally exposes its
// per-beat output widened to a word.
type Driver interface {
	Feed
	// Word returns the most recent beat's output as a word, and whether
	// the word carries more than the single output bit (see the
	// derivation notes above). When rich, the word must agree across
	// honest nodes with constant probability — whenever the underlying
	// coin's result fully agrees (see coin.WordFlipper); on beats where
	// only the bit coincidentally agrees, words may differ, trading a
	// constant slice of agreement probability, never the p0/p1 floor.
	Word() (word uint64, rich bool)
}

// SharedPipeline multiplexes one coin pipeline among the consumers of a
// clock stack (Remark 4.1). It is created by the stack's root protocol,
// which drives Compose/Deliver/Scramble; consumers obtain derived Feeds
// via Subscribe (or the Supply interface). Not safe for concurrent use,
// matching proto.Protocol's per-node contract.
type SharedPipeline struct {
	drv  Driver
	bit  byte
	word uint64
	rich bool
	// subs maps derivation salt -> label, to reject duplicate labels and
	// (hypothetical) salt collisions at construction time.
	subs map[uint64]string
}

// NewSharedPipeline wraps the driver; the caller becomes the owner.
func NewSharedPipeline(drv Driver) *SharedPipeline {
	return &SharedPipeline{drv: drv, subs: make(map[uint64]string)}
}

// Compose forwards the shared pipeline's traffic. Owner only.
func (s *SharedPipeline) Compose(beat uint64) []proto.Send {
	return s.drv.Compose(beat)
}

// Deliver routes this beat's shared traffic and captures the beat's
// output word for consumers. Owner only, and before any consumer's
// Deliver within the beat.
func (s *SharedPipeline) Deliver(beat uint64, inbox []proto.Recv) {
	s.drv.Deliver(beat, inbox)
	s.bit = s.drv.Bit()
	s.word, s.rich = s.drv.Word()
}

// Rounds returns the pipeline depth Δ_A.
func (s *SharedPipeline) Rounds() int { return s.drv.Rounds() }

// Bit returns the most recent beat's raw (underived) pipeline output.
func (s *SharedPipeline) Bit() byte { return s.bit }

// Scramble models a transient fault: arbitrary driver state and an
// arbitrary captured output. Owner only.
func (s *SharedPipeline) Scramble(rng *rand.Rand) {
	s.drv.Scramble(rng)
	s.bit = byte(rng.Intn(2))
	s.word = rng.Uint64()
	s.rich = rng.Intn(2) == 0
}

// EndBeat forwards the per-beat release hook to the driver (see
// proto.BeatEnder). Owner only, once the beat's messages are dead.
func (s *SharedPipeline) EndBeat() {
	if be, ok := s.drv.(proto.BeatEnder); ok {
		be.EndBeat()
	}
}

// Feed implements Supply: it subscribes a consumer under the given
// label. It panics on duplicate labels or salt collisions — both are
// wiring bugs that would correlate nominally independent sub-protocols.
// The env parameter is unused (the pipeline was built by the owner) but
// kept so Supply implementations are interchangeable.
func (s *SharedPipeline) Feed(_ proto.Env, label string) Feed {
	return s.Subscribe(label)
}

// Subscribe registers a consumer and returns its derived feed. See Feed.
func (s *SharedPipeline) Subscribe(label string) Feed {
	salt := LabelSalt(label)
	if prev, ok := s.subs[salt]; ok {
		if prev == label {
			panic(fmt.Sprintf("coin: duplicate shared-pipeline consumer label %q", label))
		}
		panic(fmt.Sprintf("coin: shared-pipeline label salt collision: %q vs %q", prev, label))
	}
	s.subs[salt] = label
	return &consumer{sp: s, salt: salt}
}

// Consumers returns the number of subscribed consumers (observability).
func (s *SharedPipeline) Consumers() int { return len(s.subs) }

// LabelSalt maps a consumer label to its derivation salt: FNV-1a 64
// finished with a splitmix64 mix. Exposed so tests can assert the
// collision-freedom of a stack's label set.
func LabelSalt(label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return splitmix64(h)
}

// consumer is a subscriber's feed: stateless, deriving its bit from the
// shared pipeline's captured word and its own salt.
type consumer struct {
	sp   *SharedPipeline
	salt uint64
}

func (c *consumer) Compose(uint64) []proto.Send  { return nil }
func (c *consumer) Deliver(uint64, []proto.Recv) {}
func (c *consumer) Rounds() int                  { return c.sp.Rounds() }
func (c *consumer) Scramble(*rand.Rand)          {}

// Bit implements Feed: the consumer's derived bit for the most recently
// delivered beat (see the derivation notes in the file comment).
func (c *consumer) Bit() byte {
	return DeriveBit(c.sp.word, c.sp.rich, c.sp.bit, c.salt)
}

// DeriveBit is the per-consumer derivation rule, exposed for the fuzz
// harness: rich words hash with the salt; bare bits XOR a salt-derived
// constant (never a constant stream — see the file comment).
func DeriveBit(word uint64, rich bool, bit byte, salt uint64) byte {
	if rich {
		return byte(splitmix64(word^salt) & 1)
	}
	return (bit & 1) ^ byte(splitmix64(salt)&1)
}
