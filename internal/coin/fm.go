package coin

import (
	"slices"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/gvss"
	"ssbyzclock/internal/proto"
)

// FMRounds is the round count of the Feldman–Micali-style coin: the three
// GVSS sharing rounds, the accept-set round, and the recover round.
const FMRounds = 5

// AcceptMsg is a node's round-4 broadcast: the set of dealers whose
// dealing *to this node* it graded high. The node's lottery ticket is the
// sum of those dealers' contributions, which become public only in the
// next (recover) round — so accept sets are committed while tickets are
// still unpredictable, the property Lemma 4's independence argument needs.
type AcceptMsg struct {
	Set []uint16
}

// Kind implements proto.Message.
func (AcceptMsg) Kind() string { return "coin.accept" }

// AsAccept reports whether m is an accept message, accepting the value
// form (adversaries, tests) and the pointer form (the flipper's pooled
// compose path) alike.
func AsAccept(m proto.Message) (AcceptMsg, bool) {
	switch v := m.(type) {
	case AcceptMsg:
		return v, true
	case *AcceptMsg:
		return *v, true
	}
	return AcceptMsg{}, false
}

// FMFactory creates Feldman–Micali-style coin instances.
type FMFactory struct{}

// Rounds implements Factory.
func (FMFactory) Rounds() int { return FMRounds }

// New implements Factory.
func (FMFactory) New(env proto.Env, _ uint64) Flipper {
	c := &fmFlipper{
		env:         env,
		session:     gvss.New(env, env.Rng),
		accepts:     make([][]uint16, env.N),
		acceptsFlat: make([]uint16, env.N*env.N),
		acceptSet:   make([]uint16, 0, env.N),
	}
	c.acceptSends = []proto.Send{{To: proto.Broadcast, Msg: &c.acceptMsg}}
	return c
}

// Renew implements Recycler: a flipper that just exited the coin pipeline
// is re-initialized in place — fresh dealer secrets, cleared session and
// accept state — reusing all of its allocations. It draws from env.Rng
// exactly as New does, so recycling never changes a seeded run.
func (f FMFactory) Renew(old Flipper, env proto.Env, beat uint64) Flipper {
	c, ok := old.(*fmFlipper)
	if !ok || !c.session.Reset(env, env.Rng) {
		return f.New(env, beat)
	}
	c.env = env
	for i := range c.accepts {
		c.accepts[i] = nil
	}
	c.out = 0
	c.word = 0
	c.done = false
	return c
}

// fmFlipper runs one coin flip:
//
//	round 1-3  GVSS share / echo / vote for all n dealers, each dealing a
//	           vector of n secrets (contributions to each node's ticket)
//	round 4    broadcast accept set: dealers I graded high for my ticket
//	round 5    GVSS recover; then compute every node's ticket as the sum
//	           of its accepted dealers' contributions, elect the node with
//	           the minimum ticket as leader, and output the parity of the
//	           leader's ticket
//
// Properties (measured in experiment E2, reasoning in DESIGN.md §3):
// honest nodes' tickets are identical at every honest observer, uniform,
// and unpredictable before round 5; a Byzantine node cannot control its
// own ticket because it contains at least f+1 honest contributions. All
// honest nodes therefore elect the same leader — and output the same
// parity — at least whenever the global minimum ticket belongs to an
// honest node, which happens with constant probability >= (n-f)/n.
type fmFlipper struct {
	env     proto.Env
	session *gvss.Instance
	accepts [][]uint16 // [node] accept set, nil if none/invalid received
	// acceptsFlat backs the accept sets (n slots of up to n dealers each),
	// recycled with the flipper so steady-state accept delivery does not
	// allocate.
	acceptsFlat []uint16
	// acceptMsg/acceptSends/acceptSet are the persistent round-4 message
	// slot (see gvss.Instance's message slots): the broadcast send and its
	// boxed *AcceptMsg never change, and the set is rebuilt in place each
	// session — legal because messages live only for their beat.
	acceptMsg   AcceptMsg
	acceptSends []proto.Send
	acceptSet   []uint16
	out         byte
	word        uint64
	done        bool
}

// Rounds implements Flipper.
func (c *fmFlipper) Rounds() int { return FMRounds }

// Compose implements Flipper.
func (c *fmFlipper) Compose(round int) []proto.Send {
	switch round {
	case 1:
		return c.session.ComposeShare()
	case 2:
		return c.session.ComposeEcho()
	case 3:
		return c.session.ComposeVote()
	case 4:
		set := c.acceptSet[:0]
		for d := 0; d < c.env.N; d++ {
			if c.session.Grade(d, c.env.ID) == gvss.GradeHigh {
				set = append(set, uint16(d))
			}
		}
		c.acceptSet = set
		c.acceptMsg.Set = set
		return c.acceptSends
	case 5:
		return c.session.ComposeRecover()
	default:
		return nil
	}
}

// Deliver implements Flipper.
func (c *fmFlipper) Deliver(round int, inbox []proto.Recv) {
	switch round {
	case 1:
		c.session.DeliverShare(inbox)
	case 2:
		c.session.DeliverEcho(inbox)
	case 3:
		c.session.DeliverVote(inbox)
	case 4:
		c.deliverAccept(inbox)
	case 5:
		c.session.DeliverRecover(inbox)
		c.computeOutput()
	}
}

func (c *fmFlipper) deliverAccept(inbox []proto.Recv) {
	n := c.env.N
	for _, r := range inbox {
		m, ok := AsAccept(r.Msg)
		if !ok || r.From < 0 || r.From >= n || c.accepts[r.From] != nil {
			continue
		}
		from := r.From
		set := dedupSetInto(c.acceptsFlat[from*n:from*n:(from+1)*n], m.Set, n)
		if len(set) < c.env.Quorum() {
			// An accept set smaller than n-f is impossible for an honest
			// node (all n-f honest dealers' dealings reach grade high), so
			// reject it: small sets would let a Byzantine node name a
			// colluding dealer set whose contributions it already knows,
			// giving it control over its own ticket.
			continue
		}
		c.accepts[r.From] = set
	}
}

func (c *fmFlipper) computeOutput() {
	n := c.env.N
	type ticket struct {
		node int
		val  field.Elem
	}
	best := ticket{node: -1}
	for j := 0; j < n; j++ {
		set := c.accepts[j]
		if set == nil {
			continue
		}
		valid := true
		var sum field.Elem
		for _, d := range set {
			if c.session.Grade(int(d), j) < gvss.GradeLow {
				// The claimed dealer is worthless in my view: an honest j
				// graded it high, which forces grade >= low everywhere, so
				// this claim exposes j as Byzantine.
				valid = false
				break
			}
			if v, ok := c.session.Recovered(int(d), j); ok {
				sum = field.Add(sum, v)
			}
			// Unrecoverable dealings contribute the deterministic default
			// 0; this can only happen for Byzantine-dealt contributions.
		}
		if !valid {
			continue
		}
		if best.node < 0 || sum < best.val || (sum == best.val && j < best.node) {
			best = ticket{node: j, val: sum}
		}
	}
	if best.node >= 0 {
		c.out = byte(best.val & 1)
		// The widened output for shared-pipeline derivation: the leader's
		// full ticket, mixed so its ~31 bits spread over the word. Agrees
		// across honest observers exactly when the elected leader (and
		// hence the parity bit) does.
		c.word = splitmix64(uint64(best.val))
	} else {
		c.out = 0
		c.word = 0
	}
	c.done = true
}

// Output implements Flipper.
func (c *fmFlipper) Output() byte {
	if !c.done {
		return 0
	}
	return c.out
}

// OutputWord implements WordFlipper: the mixed leader ticket.
func (c *fmFlipper) OutputWord() uint64 {
	if !c.done {
		return 0
	}
	return c.word
}

// dedupSet validates, deduplicates and sorts a claimed accept set,
// dropping out-of-range dealers. Cluster sizes up to 64 dedup via a
// bitmask; only larger (hypothetical) clusters pay for a map.
func dedupSet(in []uint16, n int) []uint16 {
	return dedupSetInto(make([]uint16, 0, n), in, n)
}

// dedupSetInto is dedupSet appending into caller-owned storage; the
// deduplicated output holds at most n entries, so capacity n always
// suffices and the hot caller passes a recycled full-capacity slot.
func dedupSetInto(out []uint16, in []uint16, n int) []uint16 {
	if n <= 64 {
		var seen uint64
		for _, d := range in {
			if int(d) < n && seen&(1<<d) == 0 {
				seen |= 1 << d
				out = append(out, d)
			}
		}
	} else {
		seen := make(map[uint16]bool, len(in))
		for _, d := range in {
			if int(d) < n && !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	slices.Sort(out)
	return out
}
