package coin

import "ssbyzclock/internal/proto"

// RabinFactory is an idealized common coin in the style of Rabin [17]:
// all nodes read the same predistributed random tape, indexed by the
// global beat at which the instance was created. It sends no messages and
// always agrees (p0 = p1 = 1/2, agreement probability 1).
//
// The paper's footnote 1 excludes this construction for the headline
// result because the shared tape is special common initialization, which
// a transient fault could desynchronize; here the tape index comes from
// the global beat supplied by the engine, so it survives scrambling by
// construction. RabinFactory is used for fast large-n sweeps of the clock
// layers and as a differential-testing oracle for the FM coin.
type RabinFactory struct {
	// Seed selects the tape. All nodes of a run must share it.
	Seed int64
}

// Rounds implements Factory. One round, so the coin pipeline has depth 1.
func (RabinFactory) Rounds() int { return 1 }

// New implements Factory.
func (fa RabinFactory) New(_ proto.Env, beat uint64) Flipper {
	return &rabinFlipper{word: splitmix64(uint64(fa.Seed) ^ splitmix64(beat))}
}

type rabinFlipper struct {
	word uint64
	done bool
}

func (c *rabinFlipper) Rounds() int               { return 1 }
func (c *rabinFlipper) Compose(int) []proto.Send  { return nil }
func (c *rabinFlipper) Deliver(int, []proto.Recv) { c.done = true }
func (c *rabinFlipper) Output() byte {
	if !c.done {
		return 0
	}
	return byte(c.word & 1)
}

// OutputWord implements WordFlipper: the full 64-bit tape word behind
// the beacon bit, shared by all nodes of the run.
func (c *rabinFlipper) OutputWord() uint64 {
	if !c.done {
		return 0
	}
	return c.word
}

// LocalFactory is an independent per-node coin: every node flips its own
// bit. It is *not* a common coin (agreement probability 2^-(n_h-1) for
// n_h honest nodes) and exists as the randomness model of the
// Dolev–Welch baseline and the E9 ablation.
type LocalFactory struct{}

// Rounds implements Factory.
func (LocalFactory) Rounds() int { return 1 }

// New implements Factory.
func (LocalFactory) New(env proto.Env, _ uint64) Flipper {
	return &localFlipper{word: env.Rng.Uint64()}
}

type localFlipper struct {
	word uint64
	done bool
}

func (c *localFlipper) Rounds() int               { return 1 }
func (c *localFlipper) Compose(int) []proto.Send  { return nil }
func (c *localFlipper) Deliver(int, []proto.Recv) { c.done = true }
func (c *localFlipper) Output() byte {
	if !c.done {
		return 0
	}
	return byte(c.word & 1)
}

// OutputWord implements WordFlipper. The word is per-node independent —
// like the bit, it is deliberately not common.
func (c *localFlipper) OutputWord() uint64 {
	if !c.done {
		return 0
	}
	return c.word
}
