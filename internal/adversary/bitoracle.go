package adversary

import "ssbyzclock/internal/proto"

// Self-contained bit-oracle attacks. OracleSplitter and Phase3Splitter
// take a BitOracle callback, which experiments historically wired to a
// closure over the live engine ("read honest node 0's public bit") —
// making those adversaries impossible to name in a serialized sweep
// grid. The BitOracle* variants below close the gap: they read the most
// recent common random bit from a faulty node's own honest-copy protocol
// instance (Context.FaultyNode), which the adversary legitimately
// controls. Once the coin has converged the bit is *common*, so the
// faulty copy reports exactly what honest node 0 would — the paper's
// §6.1 concession (the adversary sees the coin's output in the beat it
// is produced) with no reach outside the adversary's view. With f = 0
// there is no faulty copy and the oracle degrades to the constant 0,
// exactly like a nil BitOracle.

// randBitReader is the state surface the oracle reads: core.ClockSync's
// RandBit (the phase-3 rand), or any proto.BitReader (a bare coin
// pipeline).
type randBitReader interface{ RandBit() byte }

// ownCoinBit reads the public bit from the first faulty node whose
// honest copy exposes one.
func ownCoinBit(ctx *Context) byte {
	if ctx.FaultyNode == nil {
		return 0
	}
	for _, id := range ctx.Faulty {
		n := ctx.FaultyNode(id)
		if n == nil {
			continue
		}
		if r, ok := n.(randBitReader); ok {
			return r.RandBit()
		}
		if r, ok := n.(proto.BitReader); ok {
			return r.Bit()
		}
	}
	return 0
}

// BitOracleSplitter is OracleSplitter with the self-contained oracle:
// the E7 resiliency-boundary attack as a nameable sweep-grid adversary.
type BitOracleSplitter struct {
	inner OracleSplitter
}

// NewBitOracleSplitter builds the splitter over ctx.
func NewBitOracleSplitter(ctx *Context) *BitOracleSplitter {
	a := &BitOracleSplitter{inner: OracleSplitter{Ctx: ctx}}
	a.inner.BitOracle = func() byte { return ownCoinBit(ctx) }
	return a
}

// Act implements Adversary.
func (a *BitOracleSplitter) Act(beat uint64, composed []Sends, visible []Intercept) []Sends {
	return a.inner.Act(beat, composed, visible)
}

// BitOraclePhase3 is Phase3Splitter with the self-contained oracle: the
// E6 rand-timing attack as a nameable sweep-grid adversary.
type BitOraclePhase3 struct {
	inner Phase3Splitter
}

// NewBitOraclePhase3 builds the splitter over ctx.
func NewBitOraclePhase3(ctx *Context) *BitOraclePhase3 {
	a := &BitOraclePhase3{inner: Phase3Splitter{Ctx: ctx}}
	a.inner.BitOracle = func() byte { return ownCoinBit(ctx) }
	return a
}

// Act implements Adversary.
func (a *BitOraclePhase3) Act(beat uint64, composed []Sends, visible []Intercept) []Sends {
	return a.inner.Act(beat, composed, visible)
}
