package adversary_test

import (
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
	"ssbyzclock/internal/sscoin"
)

func TestUnwrapWrapRoundTrip(t *testing.T) {
	leaf := core.TwoClockMsg{V: 1}
	wrapped := proto.Envelope{Child: 3, Inner: proto.Envelope{Child: 0, Inner: proto.Envelope{Child: 7, Inner: leaf}}}
	path, got := adversary.Unwrap(wrapped)
	if got != leaf {
		t.Fatalf("unwrap leaf = %#v", got)
	}
	if string(path) != "\x03\x00\x07" {
		t.Fatalf("path = %q", path)
	}
	re := adversary.Wrap(path, leaf)
	if re != proto.Message(wrapped) {
		t.Fatalf("rewrap mismatch: %#v", re)
	}
}

func TestUnwrapPlainMessage(t *testing.T) {
	leaf := core.BitMsg{B: 1}
	path, got := adversary.Unwrap(leaf)
	if got != proto.Message(leaf) || len(path) != 0 {
		t.Fatalf("plain unwrap: path=%q leaf=%#v", path, got)
	}
}

func TestPerRecipientExpandsBroadcast(t *testing.T) {
	sends := []proto.Send{{To: proto.Broadcast, Msg: core.TwoClockMsg{V: 0}}}
	out := adversary.PerRecipient(4, sends, func(to int, _ adversary.Path, leaf proto.Message) proto.Message {
		return core.TwoClockMsg{V: uint8(to)}
	})
	if len(out) != 4 {
		t.Fatalf("want 4 sends, got %d", len(out))
	}
	for i, s := range out {
		if s.To != i || s.Msg.(core.TwoClockMsg).V != uint8(i) {
			t.Fatalf("send %d = %#v", i, s)
		}
	}
}

func TestRewriteLeavesDrops(t *testing.T) {
	sends := []proto.Send{
		{To: 1, Msg: core.TwoClockMsg{V: 0}},
		{To: 2, Msg: core.BitMsg{B: 1}},
	}
	out := adversary.RewriteLeaves(sends, func(_ adversary.Path, leaf proto.Message) proto.Message {
		if _, ok := leaf.(core.BitMsg); ok {
			return nil
		}
		return leaf
	})
	if len(out) != 1 || out[0].To != 1 {
		t.Fatalf("rewrite = %#v", out)
	}
}

// TestSplitterCannotStallCorrectVariant is half of the E6 ablation: the
// published algorithm converges under the splitter.
func TestSplitterCannotStallCorrectVariant(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := sim.Config{
			N: 4, F: 1, Seed: seed, ScrambleStart: true,
			NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
				return &adversary.ClockSplitter{Ctx: ctx}
			},
		}
		e := sim.New(cfg, core.NewTwoClockProtocol(coin.RabinFactory{Seed: seed}))
		res := sim.MeasureConvergence(e, 2, 400, 12)
		if !res.Converged {
			t.Fatalf("seed %d: correct variant stalled by splitter", seed)
		}
	}
}

// TestSplitterCannotStallPreRandTwoClock documents an empirical finding
// recorded in EXPERIMENTS.md: at n = 3f+1 even the sender-substitution
// variant of the 2-clock resists the splitter, because at most one value
// can ever reach the n-f quorum per beat (2(n-2f) > n-f), so the
// adversary cannot drive two honest groups to different defined clocks;
// the formal damage of Remark 3.1 manifests operationally in the k-clock
// phase structure instead (see the Phase3 tests below).
func TestSplitterCannotStallPreRandTwoClock(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := sim.Config{
			N: 4, F: 1, Seed: seed, ScrambleStart: true,
			NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
				return &adversary.ClockSplitter{Ctx: ctx}
			},
		}
		factory := func(env proto.Env) proto.Protocol {
			return core.NewTwoClockVariant(env, coin.RabinFactory{Seed: seed}, core.VariantPreRand)
		}
		e := sim.New(cfg, factory)
		res := sim.MeasureConvergence(e, 2, 400, 12)
		if !res.Converged {
			t.Fatalf("seed %d: PreRand two-clock stalled (analysis says it cannot be)", seed)
		}
	}
}

// TestPhase3SplitterCannotStallCorrectClockSync is half of the E6
// ablation: the published algorithm's phase-3 bit is committed after the
// bit votes, so the oracle-equipped splitter gains nothing (Lemma 8).
func TestPhase3SplitterCannotStallCorrectClockSync(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		res := runPhase3(t, seed, false, 1500)
		if !res.Converged {
			t.Fatalf("seed %d: correct clock-sync stalled by phase-3 splitter", seed)
		}
	}
}

// TestPhase3SplitterStaleVariantStillConverges is the other half, and
// records a genuine reproduction finding (E6 in EXPERIMENTS.md): even
// with the stale bit the adversary can only *defer* convergence, because
// the fully synchronized state is absorbing — once all n-f honest nodes
// vote bit 1, no equivocation can starve any honest node of the quorum —
// so the loss of Lemma 8's independence costs a constant factor, not the
// expected-constant convergence itself, under this adversary class.
// The benchmark harness quantifies the factor; here we assert both
// variants converge.
func TestPhase3SplitterStaleVariantStillConverges(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := runPhase3(t, seed, false, 1500)
		s := runPhase3(t, seed, true, 1500)
		if !c.Converged {
			t.Fatalf("seed %d: correct variant stalled", seed)
		}
		if !s.Converged {
			t.Fatalf("seed %d: stale variant stalled outright (expected constant-factor penalty only)", seed)
		}
	}
}

func runPhase3(t *testing.T, seed int64, stale bool, maxBeats int) sim.ConvergenceResult {
	t.Helper()
	var eng *sim.Engine
	cfg := sim.Config{
		N: 7, F: 2, Seed: seed, ScrambleStart: true,
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
			return &adversary.Phase3Splitter{Ctx: ctx, BitOracle: func() byte {
				return eng.Node(0).(*core.ClockSync).RandBit()
			}}
		},
	}
	factory := func(env proto.Env) proto.Protocol {
		return core.NewClockSyncStale(env, 16, coin.RabinFactory{Seed: seed}, stale)
	}
	eng = sim.New(cfg, factory)
	return sim.MeasureConvergence(eng, 16, maxBeats, 16)
}

// TestGradeSplitterCoinKeepsConstantAgreement: under vote/accept
// equivocation the FM coin must keep a constant agreement rate
// (Definition 2.6's E0/E1 with constant p0, p1).
func TestGradeSplitterCoinKeepsConstantAgreement(t *testing.T) {
	cfg := sim.Config{
		N: 7, F: 2, Seed: 3, ScrambleStart: true,
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
			return &adversary.GradeSplitter{Ctx: ctx}
		},
	}
	e := sim.New(cfg, func(env proto.Env) proto.Protocol {
		return sscoin.New(env, coin.FMFactory{})
	})
	e.Run(coin.FMRounds + 1)
	agree, ones, beats := 0, 0, 120
	for i := 0; i < beats; i++ {
		e.Step()
		if b, ok := sim.ReadBits(e).Agreed(); ok {
			agree++
			if b == 1 {
				ones++
			}
		}
	}
	if agree < beats/3 {
		t.Fatalf("grade splitter crushed agreement: %d/%d", agree, beats)
	}
	if ones < agree/5 || ones > agree*4/5 {
		t.Fatalf("grade splitter biased the coin: %d ones of %d", ones, agree)
	}
}

// TestShareCorruptorContained: inconsistent dealings by Byzantine dealers
// must not break the 2-clock built on the FM coin.
func TestShareCorruptorContained(t *testing.T) {
	cfg := sim.Config{
		N: 7, F: 2, Seed: 4, ScrambleStart: true,
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
			return &adversary.ShareCorruptor{Ctx: ctx}
		},
	}
	e := sim.New(cfg, core.NewTwoClockProtocol(coin.FMFactory{}))
	res := sim.MeasureConvergence(e, 2, 500, 12)
	if !res.Converged {
		t.Fatal("2-clock stalled under share corruption")
	}
}

// TestDelayerAndReplayer: omission faults and stale replays must not
// prevent convergence of the full clock-sync stack.
func TestDelayerAndReplayer(t *testing.T) {
	advs := map[string]func(ctx *adversary.Context) adversary.Adversary{
		"delayer":  func(ctx *adversary.Context) adversary.Adversary { return &adversary.Delayer{Ctx: ctx, Drop: 0.5} },
		"replayer": func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} },
	}
	for name, mk := range advs {
		cfg := sim.Config{N: 7, F: 2, Seed: 5, NewAdversary: mk, ScrambleStart: true}
		e := sim.New(cfg, core.NewClockSyncProtocol(16, coin.RabinFactory{Seed: 9}))
		res := sim.MeasureConvergence(e, 16, 800, 16)
		if !res.Converged {
			t.Fatalf("%s: clock-sync stalled", name)
		}
	}
}
