package adversary

import "ssbyzclock/internal/proto"

// Path identifies a protocol instance inside a nested protocol stack as
// the sequence of envelope child tags from the top-level protocol down to
// the leaf message. Two messages with equal paths belong to the same
// sub-protocol instance (e.g. the A1 two-clock inside a four-clock inside
// a clock-sync).
type Path string

// Unwrap peels all envelopes off a message, returning the leaf and its
// path.
func Unwrap(m proto.Message) (Path, proto.Message) {
	var path []byte
	for {
		env, ok := proto.AsEnvelope(m)
		if !ok {
			return Path(path), m
		}
		path = append(path, env.Child)
		m = env.Inner
	}
}

// Wrap re-wraps a leaf message under the given path.
func Wrap(path Path, leaf proto.Message) proto.Message {
	m := leaf
	for i := len(path) - 1; i >= 0; i-- {
		m = proto.Envelope{Child: path[i], Inner: m}
	}
	return m
}

// RewriteLeaves maps fn over the leaf of every send, preserving wrapping
// and destinations. fn returning nil drops the send.
func RewriteLeaves(sends []proto.Send, fn func(path Path, leaf proto.Message) proto.Message) []proto.Send {
	out := make([]proto.Send, 0, len(sends))
	for _, s := range sends {
		path, leaf := Unwrap(s.Msg)
		nl := fn(path, leaf)
		if nl == nil {
			continue
		}
		out = append(out, proto.Send{To: s.To, Msg: Wrap(path, nl)})
	}
	return out
}

// PerRecipient expands every send into explicit per-recipient sends
// (broadcasts become n unicasts), letting fn pick a possibly different
// leaf for each recipient — the equivocation primitive. fn returning nil
// drops that recipient's copy.
func PerRecipient(n int, sends []proto.Send, fn func(to int, path Path, leaf proto.Message) proto.Message) []proto.Send {
	var out []proto.Send
	emit := func(to int, path Path, leaf proto.Message) {
		if nl := fn(to, path, leaf); nl != nil {
			out = append(out, proto.Send{To: to, Msg: Wrap(path, nl)})
		}
	}
	for _, s := range sends {
		path, leaf := Unwrap(s.Msg)
		if s.To == proto.Broadcast {
			for to := 0; to < n; to++ {
				emit(to, path, leaf)
			}
		} else if s.To >= 0 && s.To < n {
			emit(s.To, path, leaf)
		}
	}
	return out
}
