package adversary_test

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
	"ssbyzclock/internal/sscoin"
)

// fakeBitNode exposes the RandBit surface the oracle reads.
type fakeBitNode struct{ bit byte }

func (f *fakeBitNode) Compose(uint64) []proto.Send  { return nil }
func (f *fakeBitNode) Deliver(uint64, []proto.Recv) {}
func (f *fakeBitNode) RandBit() byte                { return f.bit }

// TestBitOracleReadsFaultyCopy: the self-contained oracle consults the
// faulty node's own honest-copy instance via Context.FaultyNode — no
// engine closure — and degrades to bit 0 when there is none.
func TestBitOracleReadsFaultyCopy(t *testing.T) {
	node := &fakeBitNode{bit: 1}
	ctx := &adversary.Context{
		N: 4, F: 1, Faulty: []int{3}, Rng: rand.New(rand.NewSource(1)),
		FaultyNode: func(id int) proto.Protocol {
			if id == 3 {
				return node
			}
			return nil
		},
	}
	// Drive the phase-3 variant against a bit vote: with oracle bit 1 the
	// low half is steered to 0 and the high half to 1 (see Phase3Splitter).
	a := adversary.NewBitOraclePhase3(ctx)
	composed := []adversary.Sends{{
		From: 3,
		Out:  []proto.Send{{To: proto.Broadcast, Msg: core.BitMsg{B: 0}}},
	}}
	got := map[int]byte{}
	for _, s := range a.Act(0, composed, nil)[0].Out {
		if m, ok := s.Msg.(core.BitMsg); ok {
			got[s.To] = m.B
		}
	}
	if got[0] != 0 || got[3] != 1 {
		t.Fatalf("oracle bit 1 not steering: low=%d high=%d", got[0], got[3])
	}
	// Without a faulty copy the oracle reports 0 and the steering flips.
	ctx.FaultyNode = nil
	got = map[int]byte{}
	for _, s := range a.Act(0, composed, nil)[0].Out {
		if m, ok := s.Msg.(core.BitMsg); ok {
			got[s.To] = m.B
		}
	}
	if got[0] != 1 || got[3] != 0 {
		t.Fatalf("nil-oracle fallback not steering to 0: low=%d high=%d", got[0], got[3])
	}
}

// TestBitOracleAgreesWithHonestOracle: once the coin has converged the
// faulty copy's bit IS the common bit, so the self-contained oracle
// reports exactly what the engine-closure oracle (honest node 0) would.
func TestBitOracleAgreesWithHonestOracle(t *testing.T) {
	e := sim.New(sim.Config{N: 7, F: 2, Seed: 5},
		func(env proto.Env) proto.Protocol { return sscoin.New(env, coin.FMFactory{}) })
	e.Run(coin.FMRounds + 1) // fill the pipeline
	agree := 0
	const beats = 24
	for i := 0; i < beats; i++ {
		e.Step()
		honest := e.Node(0).(proto.BitReader).Bit()
		faulty := e.Node(6).(proto.BitReader).Bit()
		if honest == faulty {
			agree++
		}
	}
	if agree < beats*3/4 {
		t.Fatalf("faulty-copy bit agreed with honest bit only %d/%d beats", agree, beats)
	}
}

// TestBitOracleStackedWithinBound: the strongest serializable attack
// (bit-oracle splitter + grade splitter + recovery corruptor) must not
// defeat ss-Byz-Clock-Sync within f < n/3 — the E7 claim, now provable
// from a sweep grid.
func TestBitOracleStackedWithinBound(t *testing.T) {
	cfg := sim.Config{
		N: 7, F: 2, Seed: 9, ScrambleStart: true,
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
			return adversary.Chain{Advs: []adversary.Adversary{
				adversary.NewBitOracleSplitter(ctx),
				&adversary.GradeSplitter{Ctx: ctx},
				&adversary.RecoverCorruptor{Ctx: ctx},
			}}
		},
	}
	e := sim.New(cfg, core.NewClockSyncProtocol(16, coin.FMFactory{}))
	if res := sim.MeasureConvergence(e, 16, 2000, 12); !res.Converged {
		t.Fatal("clock-sync failed to converge under the bit-oracle stacked attack within the bound")
	}
}
