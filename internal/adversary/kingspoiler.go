package adversary

import (
	"ssbyzclock/internal/baseline"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/gvss"
	"ssbyzclock/internal/proto"
)

// Chain composes adversaries: each transforms the faulty nodes' sends in
// turn (all see the same rushing view). Used to stack orthogonal attacks,
// e.g. clock splitting plus coin-recovery corruption for the E7
// resiliency-boundary experiment.
type Chain struct {
	Advs []Adversary
}

// Act implements Adversary.
func (c Chain) Act(beat uint64, composed []Sends, visible []Intercept) []Sends {
	out := composed
	for _, a := range c.Advs {
		out = a.Act(beat, out, visible)
	}
	return out
}

// KingSpoiler attacks the deterministic PhaseKing baseline: whenever a
// faulty node holds the rotating king slot it equivocates its king value
// per recipient, keeping the honest nodes split for the whole epoch; it
// also equivocates its clock broadcasts and withholds proposals so no
// accidental quorum forms. Placed on the *first* f ids (so the rotation
// visits every faulty king before the first honest one), it forces the
// baseline's worst case: convergence after Θ(f) epochs.
type KingSpoiler struct {
	Ctx *Context
}

// Act implements Adversary.
func (a *KingSpoiler) Act(_ uint64, composed []Sends, _ []Intercept) []Sends {
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		rewritten := PerRecipient(a.Ctx.N, s.Out, func(to int, _ Path, leaf proto.Message) proto.Message {
			switch m := leaf.(type) {
			case baseline.KingMsg:
				// A different value for every recipient: nobody who
				// falls back on this king ends up agreeing with anyone.
				return baseline.KingMsg{V: m.V + uint64(to) + 1}
			case baseline.ClockMsg:
				return baseline.ClockMsg{V: m.V + uint64(to)%2}
			case baseline.PhaseProposeMsg:
				return baseline.PhaseProposeMsg{Bot: true}
			case baseline.PhaseBitMsg:
				return baseline.PhaseBitMsg{B: 0}
			default:
				return leaf
			}
		})
		out = append(out, Sends{From: s.From, Out: rewritten})
	}
	return out
}

// RecoverCorruptor attacks the common coin's reconstruction round: the
// faulty nodes send random garbage shares, equivocated per recipient, in
// every GVSS recover message while behaving honestly otherwise. Within
// the f < n/3 bound Berlekamp–Welch decoding removes the f corrupt
// shares exactly; beyond the bound reconstruction collapses and with it
// the coin — the mechanism behind the E7 resiliency cliff.
type RecoverCorruptor struct {
	Ctx *Context
}

// Act implements Adversary.
func (a *RecoverCorruptor) Act(_ uint64, composed []Sends, _ []Intercept) []Sends {
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		rewritten := PerRecipient(a.Ctx.N, s.Out, func(to int, _ Path, leaf proto.Message) proto.Message {
			m, ok := gvss.AsRecover(leaf)
			if !ok {
				return leaf
			}
			n := len(m.Shares)
			corrupted := gvss.RecoverMsg{
				Shares: make([][]field.Elem, n),
				HasRow: make([][]bool, n),
			}
			for d := 0; d < n; d++ {
				corrupted.Shares[d] = make([]field.Elem, len(m.Shares[d]))
				corrupted.HasRow[d] = make([]bool, len(m.HasRow[d]))
				for t := range m.Shares[d] {
					corrupted.Shares[d][t] = field.Reduce(a.Ctx.Rng.Uint64())
					corrupted.HasRow[d][t] = true
				}
			}
			return corrupted
		})
		out = append(out, Sends{From: s.From, Out: rewritten})
	}
	return out
}
