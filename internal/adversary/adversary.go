// Package adversary implements the Byzantine adversary of the paper's
// model (Section 2): an information-theoretic, rushing adversary with
// private channels controlling up to f nodes. It observes every message
// addressed to a faulty node (but none of the honest-to-honest traffic),
// chooses the faulty nodes' messages after seeing the honest ones
// ("rushing"), may equivocate (different message to each recipient), but
// cannot forge sender identities (Definition 2.2).
//
// The engine (package sim) composes each faulty node's *honest* messages
// from a real protocol instance and hands them to the adversary, which
// may forward, mutate, replace or drop them. This lets attack strategies
// deviate surgically — e.g. equivocating only GVSS votes — while
// otherwise participating in the protocol, which is far more damaging
// than pure noise.
//
// Message-lifetime contract: everything an adversary sees — composed
// sends and intercepted honest traffic alike — is valid only for the
// current beat. Payload memory is pooled by the engine and recycled once
// the beat's Deliver phase completes, so an adversary that records
// messages across beats (Replayer) must keep deep copies obtained via
// proto.Clone; within-beat forwarding and rewriting needs no copies.
// Oracle-equipped attacks read protocol *state*, not retained messages:
// the Bit-oracle variants consult a faulty node's own honest-copy
// instance (Context.FaultyNode), which models the paper's §6.1
// concession — the adversary sees the coin's output in the beat it is
// produced — without reaching outside the adversary's legal view.
package adversary

import (
	"math/rand"

	"ssbyzclock/internal/proto"
)

// Context is the adversary's knowledge of the system: fixed constants
// plus its own randomness source.
type Context struct {
	N, F   int
	Faulty []int
	Rng    *rand.Rand
	// FaultyNode returns the honest-copy protocol instance of an
	// adversary-controlled node, or nil for honest ids (private channels:
	// the adversary may inspect only its own nodes' state). The engine
	// installs it; it lets self-contained oracle attacks (BitOracle*)
	// read the public coin bit from a node they legitimately control
	// instead of closing over a live engine.
	FaultyNode func(id int) proto.Protocol
}

// IsFaulty reports whether id is adversary-controlled.
func (c *Context) IsFaulty(id int) bool {
	for _, f := range c.Faulty {
		if f == id {
			return true
		}
	}
	return false
}

// Sends is one faulty node's outgoing messages for a beat.
type Sends struct {
	From int
	Out  []proto.Send
}

// Intercept is an honest message visible to the adversary: one addressed
// to a faulty node (broadcasts included, since a broadcast reaches the
// faulty nodes too).
type Intercept struct {
	From, To int
	Msg      proto.Message
}

// Adversary chooses the faulty nodes' messages each beat.
//
// composed holds the messages the faulty nodes would send if they
// followed the protocol (one entry per faulty node, in Context.Faulty
// order); visible is the rushing adversary's view of this beat's honest
// traffic. The returned sends are delivered as coming from the respective
// faulty nodes; sends claiming a non-faulty From are discarded by the
// engine (identity cannot be forged).
//
// The composed and visible slices — and the Message values inside them —
// are only valid for the duration of the beat: the engine reuses the
// slices' backing arrays across beats, and message payloads come from
// per-beat pools that are recycled (and, in tests, poison-scribbled)
// after the beat's Deliver phase (see proto.Message's lifetime
// contract). Forwarding, rewriting or dropping messages within the call
// is free; an adversary that records traffic across beats (e.g.
// Replayer) must capture deep copies via proto.Clone, never the
// references. Adversaries always run sequentially on the engine's
// goroutine, but the Messages they emit (or forward) may be delivered to
// several nodes concurrently afterwards, so an adversary must never
// mutate a Message it has already sent or observed — build fresh
// messages instead (see proto.Protocol's cross-goroutine contract).
type Adversary interface {
	Act(beat uint64, composed []Sends, visible []Intercept) []Sends
}

// Passive forwards the faulty nodes' honest messages untouched: the
// faulty nodes follow the protocol. Useful as a control.
type Passive struct{}

// Act implements Adversary.
func (Passive) Act(_ uint64, composed []Sends, _ []Intercept) []Sends { return composed }

// Silent drops all faulty output: a crash-fault adversary.
type Silent struct{}

// Act implements Adversary.
func (Silent) Act(uint64, []Sends, []Intercept) []Sends { return nil }

// Delayer forwards honest behaviour but randomly withholds each message
// with probability Drop — an omission-fault adversary.
type Delayer struct {
	Ctx  *Context
	Drop float64
}

// Act implements Adversary.
func (a *Delayer) Act(_ uint64, composed []Sends, _ []Intercept) []Sends {
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		kept := Sends{From: s.From}
		for _, m := range s.Out {
			if a.Ctx.Rng.Float64() >= a.Drop {
				kept.Out = append(kept.Out, m)
			}
		}
		out = append(out, kept)
	}
	return out
}

// Replayer records every visible honest message and, each beat, replays a
// random sample back into the network alongside the honest faulty output
// — stale-state noise resembling the "phantom messages" of Definition 2.2
// (sent by live nodes, so legal, but semantically stale). It is the
// suite's recording adversary: everything it keeps across beats is a
// deep copy (proto.Clone), because the observed messages' payloads are
// recycled by the engine when the beat ends.
type Replayer struct {
	Ctx    *Context
	memory []proto.Message
}

// Act implements Adversary.
func (a *Replayer) Act(_ uint64, composed []Sends, visible []Intercept) []Sends {
	for _, v := range visible {
		msg := v.Msg
		if c, err := proto.Clone(msg); err == nil {
			msg = c
		}
		// An unclonable message has an unregistered type: a test double,
		// never a pooled payload, so retaining the original is safe.
		a.memory = append(a.memory, msg)
		if len(a.memory) > 4096 {
			a.memory = a.memory[len(a.memory)-4096:]
		}
	}
	out := append([]Sends(nil), composed...)
	if len(a.memory) == 0 {
		return out
	}
	for i := range out {
		for k := 0; k < a.Ctx.N; k++ {
			if a.Ctx.Rng.Intn(2) == 0 {
				continue
			}
			msg := a.memory[a.Ctx.Rng.Intn(len(a.memory))]
			out[i].Out = append(out[i].Out, proto.Send{To: a.Ctx.Rng.Intn(a.Ctx.N), Msg: msg})
		}
	}
	return out
}
