// Package adversary implements the Byzantine adversary of the paper's
// model (Section 2): an information-theoretic, rushing adversary with
// private channels controlling up to f nodes. It observes every message
// addressed to a faulty node (but none of the honest-to-honest traffic),
// chooses the faulty nodes' messages after seeing the honest ones
// ("rushing"), may equivocate (different message to each recipient), but
// cannot forge sender identities (Definition 2.2).
//
// The engine (package sim) composes each faulty node's *honest* messages
// from a real protocol instance and hands them to the adversary, which
// may forward, mutate, replace or drop them. This lets attack strategies
// deviate surgically — e.g. equivocating only GVSS votes — while
// otherwise participating in the protocol, which is far more damaging
// than pure noise.
package adversary

import (
	"math/rand"

	"ssbyzclock/internal/proto"
)

// Context is the adversary's knowledge of the system: fixed constants
// plus its own randomness source.
type Context struct {
	N, F   int
	Faulty []int
	Rng    *rand.Rand
}

// IsFaulty reports whether id is adversary-controlled.
func (c *Context) IsFaulty(id int) bool {
	for _, f := range c.Faulty {
		if f == id {
			return true
		}
	}
	return false
}

// Sends is one faulty node's outgoing messages for a beat.
type Sends struct {
	From int
	Out  []proto.Send
}

// Intercept is an honest message visible to the adversary: one addressed
// to a faulty node (broadcasts included, since a broadcast reaches the
// faulty nodes too).
type Intercept struct {
	From, To int
	Msg      proto.Message
}

// Adversary chooses the faulty nodes' messages each beat.
//
// composed holds the messages the faulty nodes would send if they
// followed the protocol (one entry per faulty node, in Context.Faulty
// order); visible is the rushing adversary's view of this beat's honest
// traffic. The returned sends are delivered as coming from the respective
// faulty nodes; sends claiming a non-faulty From are discarded by the
// engine (identity cannot be forged).
//
// The composed and visible slices are only valid for the duration of the
// call — the engine reuses their backing arrays across beats — so
// implementations must not retain them (retaining the Message values
// themselves is fine; messages are never pooled). An adversary that
// records traffic across beats (e.g. Replayer) must copy the entries it
// keeps. Adversaries always run sequentially on the engine's goroutine,
// but the Messages they emit (or forward) may be delivered to several
// nodes concurrently afterwards, so an adversary must never mutate a
// Message it has already sent or observed — build fresh messages
// instead (see proto.Protocol's cross-goroutine contract).
type Adversary interface {
	Act(beat uint64, composed []Sends, visible []Intercept) []Sends
}

// Passive forwards the faulty nodes' honest messages untouched: the
// faulty nodes follow the protocol. Useful as a control.
type Passive struct{}

// Act implements Adversary.
func (Passive) Act(_ uint64, composed []Sends, _ []Intercept) []Sends { return composed }

// Silent drops all faulty output: a crash-fault adversary.
type Silent struct{}

// Act implements Adversary.
func (Silent) Act(uint64, []Sends, []Intercept) []Sends { return nil }

// Delayer forwards honest behaviour but randomly withholds each message
// with probability Drop — an omission-fault adversary.
type Delayer struct {
	Ctx  *Context
	Drop float64
}

// Act implements Adversary.
func (a *Delayer) Act(_ uint64, composed []Sends, _ []Intercept) []Sends {
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		kept := Sends{From: s.From}
		for _, m := range s.Out {
			if a.Ctx.Rng.Float64() >= a.Drop {
				kept.Out = append(kept.Out, m)
			}
		}
		out = append(out, kept)
	}
	return out
}

// Replayer records every visible honest message and, each beat, replays a
// random sample back into the network alongside the honest faulty output
// — stale-state noise resembling the "phantom messages" of Definition 2.2
// (sent by live nodes, so legal, but semantically stale).
type Replayer struct {
	Ctx    *Context
	memory []proto.Message
}

// Act implements Adversary.
func (a *Replayer) Act(_ uint64, composed []Sends, visible []Intercept) []Sends {
	for _, v := range visible {
		a.memory = append(a.memory, v.Msg)
		if len(a.memory) > 4096 {
			a.memory = a.memory[len(a.memory)-4096:]
		}
	}
	out := append([]Sends(nil), composed...)
	if len(a.memory) == 0 {
		return out
	}
	for i := range out {
		for k := 0; k < a.Ctx.N; k++ {
			if a.Ctx.Rng.Intn(2) == 0 {
				continue
			}
			msg := a.memory[a.Ctx.Rng.Intn(len(a.memory))]
			out[i].Out = append(out[i].Out, proto.Send{To: a.Ctx.Rng.Intn(a.Ctx.N), Msg: msg})
		}
	}
	return out
}
