package adversary

import (
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
)

// Phase3Splitter attacks ss-Byz-Clock-Sync's agreement phases. It
// equivocates the full-clock, propose and bit messages per recipient to
// keep honest nodes' save values and quorum views divergent; the bit
// votes are steered using BitOracle, the random bit the honest nodes will
// consult in the next phase-3 fallback.
//
// Against the published algorithm the oracle is worthless: the fallback
// bit is produced by the coin one round *after* the bit votes are
// committed, so BitOracle (which can only report an already-public bit)
// carries no information about it, and Lemma 8 gives constant
// per-cycle agreement probability. Against the stale-rand ablation
// variant (core.NewClockSyncStale) the fallback uses exactly the bit the
// oracle reports, letting the splitter arrange, deterministically, that
// quorum-seeing nodes and fallback nodes decide differently — the
// operational content of Remark 3.1. Experiment E6 measures both.
type Phase3Splitter struct {
	Ctx *Context
	// BitOracle reports the most recent publicly-known random bit (e.g.
	// an honest node's current pipeline output). Nil disables steering
	// and the splitter equivocates randomly.
	BitOracle func() byte
}

// Act implements Adversary.
func (a *Phase3Splitter) Act(_ uint64, composed []Sends, _ []Intercept) []Sends {
	bit := byte(0)
	haveBit := false
	if a.BitOracle != nil {
		bit = a.BitOracle()
		haveBit = true
	}
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		rewritten := PerRecipient(a.Ctx.N, s.Out, func(to int, _ Path, leaf proto.Message) proto.Message {
			lowHalf := to < a.Ctx.N/2
			switch m := leaf.(type) {
			case core.FullClockMsg:
				// Split the full-clock views so propose quorums are hard
				// to form and different halves chase different values.
				if lowHalf {
					return m
				}
				return core.FullClockMsg{V: m.V + 1}
			case core.ProposeMsg:
				// Starve half the nodes of proposals.
				if lowHalf {
					return m
				}
				return core.ProposeMsg{Bot: true}
			case core.BitMsg:
				if !haveBit {
					return core.BitMsg{B: uint8(a.Ctx.Rng.Intn(2))}
				}
				// Steer: nodes we push over the "1" quorum adopt save+3;
				// nodes starved of the quorum fall back on the random
				// bit. If the upcoming fallback bit is 0 (-> clock 0), we
				// want the other half on save+3, so feed them 1s; and
				// vice versa — under the stale variant this forces a
				// split whenever the honest votes cooperate.
				if bit == 0 {
					if lowHalf {
						return core.BitMsg{B: 1}
					}
					return core.BitMsg{B: 0}
				}
				if lowHalf {
					return core.BitMsg{B: 0}
				}
				return core.BitMsg{B: 1}
			default:
				return leaf
			}
		})
		out = append(out, Sends{From: s.From, Out: rewritten})
	}
	return out
}
