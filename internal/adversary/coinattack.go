package adversary

import (
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/gvss"
	"ssbyzclock/internal/proto"
)

// GradeSplitter attacks the common coin's agreement: the faulty nodes
// participate in GVSS honestly except that they equivocate their vote and
// accept-set broadcasts per recipient, trying to split the honest nodes'
// grades across the GradeHigh/GradeLow/GradeNone thresholds so that
// different honest nodes compute different lottery tickets. The coin's
// design confines the damage to Byzantine nodes' own tickets (honest
// dealers reach GradeHigh everywhere, honest targets' accept sets are
// consistent), so agreement probability must remain constant — measured
// in experiment E2.
type GradeSplitter struct {
	Ctx *Context
}

// Act implements Adversary.
func (a *GradeSplitter) Act(_ uint64, composed []Sends, _ []Intercept) []Sends {
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		rewritten := PerRecipient(a.Ctx.N, s.Out, func(to int, _ Path, leaf proto.Message) proto.Message {
			if m, isVote := gvss.AsVote(leaf); isVote {
				// Flip each vote with probability 1/2, independently per
				// recipient: recipients near the n-f threshold land on
				// different sides of it.
				ok := make([][]bool, len(m.OK))
				for d := range m.OK {
					ok[d] = make([]bool, len(m.OK[d]))
					for t := range m.OK[d] {
						ok[d][t] = m.OK[d][t] != (a.Ctx.Rng.Intn(2) == 0)
					}
				}
				return gvss.VoteMsg{OK: ok}
			}
			if m, isAccept := coin.AsAccept(leaf); isAccept {
				// Equivocate the accept set per recipient by shuffling
				// and resending a random subset (kept above the n-f
				// minimum so it is not rejected outright).
				min := a.Ctx.N - a.Ctx.F
				set := append([]uint16(nil), m.Set...)
				a.Ctx.Rng.Shuffle(len(set), func(i, j int) { set[i], set[j] = set[j], set[i] })
				if len(set) > min {
					set = set[:min+a.Ctx.Rng.Intn(len(set)-min+1)]
				}
				return coin.AcceptMsg{Set: set}
			}
			return leaf
		})
		out = append(out, Sends{From: s.From, Out: rewritten})
	}
	return out
}

// ShareCorruptor attacks the GVSS dealing itself: the faulty nodes deal
// inconsistent rows (random garbage to a random half of the recipients)
// while participating honestly otherwise. Honest nodes' row-fixing and
// grading must contain the damage to the faulty dealers' own dealings.
type ShareCorruptor struct {
	Ctx *Context
}

// Act implements Adversary.
func (a *ShareCorruptor) Act(_ uint64, composed []Sends, _ []Intercept) []Sends {
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		rewritten := PerRecipient(a.Ctx.N, s.Out, func(to int, _ Path, leaf proto.Message) proto.Message {
			m, ok := gvss.AsShare(leaf)
			if !ok || a.Ctx.Rng.Intn(2) == 0 {
				return leaf
			}
			corrupted := gvss.ShareMsg{Rows: make([]field.Poly, len(m.Rows))}
			for t := range m.Rows {
				row := make(field.Poly, len(m.Rows[t]))
				for c := range row {
					row[c] = field.Reduce(a.Ctx.Rng.Uint64())
				}
				corrupted.Rows[t] = row
			}
			return corrupted
		})
		out = append(out, Sends{From: s.From, Out: rewritten})
	}
	return out
}
