package adversary

import (
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
)

// OracleSplitter is the resiliency-boundary attack (E7): a clock-layer
// splitter that additionally knows the random bit the receivers will use
// to interpret ⊥ votes this beat (BitOracle). Within f < n/3 the oracle
// is worthless — at most one value can reach the n-f quorum per beat
// (2(n-2f) > n-f), so honest nodes can never be flipped to two different
// defined clocks. Once f ≥ n/3 that arithmetic flips: the attacker can
// hand one half of the honest nodes a quorum for 0 and the other half a
// quorum for 1 simultaneously, and with the bit known it keeps the two
// groups perfectly balanced forever.
//
// The oracle models what the paper concedes in §6.1 — the adversary sees
// the coin's output in the beat it is produced — and becomes *exact*
// when the coin itself has collapsed (e.g. recovery corrupted beyond the
// Berlekamp–Welch budget makes every pipeline emit a constant), which is
// precisely what happens past the bound under RecoverCorruptor.
type OracleSplitter struct {
	Ctx *Context
	// BitOracle reports the bit receivers will substitute for ⊥ this
	// beat; nil means assume 0.
	BitOracle func() byte
}

// Act implements Adversary.
func (a *OracleSplitter) Act(_ uint64, composed []Sends, visible []Intercept) []Sends {
	bit := byte(0)
	if a.BitOracle != nil {
		bit = a.BitOracle()
	}
	// Effective honest votes per 2-clock instance path.
	type tally struct{ eff [2]int }
	tallies := map[Path]*tally{}
	seen := map[Path]map[int]bool{}
	for _, ic := range visible {
		path, leaf := Unwrap(ic.Msg)
		m, ok := leaf.(core.TwoClockMsg)
		if !ok {
			continue
		}
		if seen[path] == nil {
			seen[path] = map[int]bool{}
			tallies[path] = &tally{}
		}
		if seen[path][ic.From] {
			continue
		}
		seen[path][ic.From] = true
		v := m.V
		if v == core.Bot {
			v = bit
		}
		if v <= 1 {
			tallies[path].eff[v]++
		}
	}
	quorum := a.Ctx.N - a.Ctx.F
	f := a.Ctx.F
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		rewritten := PerRecipient(a.Ctx.N, s.Out, func(to int, path Path, leaf proto.Message) proto.Message {
			m, ok := leaf.(core.TwoClockMsg)
			if !ok {
				return leaf
			}
			t := tallies[path]
			if t == nil {
				return m
			}
			// Can both values be pushed over the quorum (only possible
			// when f >= n/3)? Then split the recipients.
			both := t.eff[0]+f >= quorum && t.eff[1]+f >= quorum
			if both {
				// Parity split keeps the two honest groups balanced no
				// matter where the faulty ids sit, so the mixed state is
				// reproduced exactly each beat.
				if to%2 == 0 {
					return core.TwoClockMsg{V: 0} // quorum for 0 -> flips to 1
				}
				return core.TwoClockMsg{V: 1} // quorum for 1 -> flips to 0
			}
			// Otherwise boost the minority to starve the majority's
			// quorum where possible.
			if t.eff[0] >= t.eff[1] {
				return core.TwoClockMsg{V: 1}
			}
			return core.TwoClockMsg{V: 0}
		})
		out = append(out, Sends{From: s.From, Out: rewritten})
	}
	return out
}
