package adversary_test

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/baseline"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/gvss"
	"ssbyzclock/internal/proto"
)

func testCtx(n, f int) *adversary.Context {
	faulty := make([]int, f)
	for i := range faulty {
		faulty[i] = n - f + i
	}
	return &adversary.Context{N: n, F: f, Faulty: faulty, Rng: rand.New(rand.NewSource(1))}
}

func TestKingSpoilerEquivocatesKingValues(t *testing.T) {
	ctx := testCtx(4, 1)
	sp := &adversary.KingSpoiler{Ctx: ctx}
	composed := []adversary.Sends{{
		From: 3,
		Out: []proto.Send{
			{To: proto.Broadcast, Msg: baseline.KingMsg{V: 5}},
			{To: proto.Broadcast, Msg: baseline.PhaseProposeMsg{V: 2}},
		},
	}}
	out := sp.Act(0, composed, nil)
	if len(out) != 1 {
		t.Fatalf("sends for %d faulty nodes", len(out))
	}
	kingVals := map[uint64]bool{}
	for _, s := range out[0].Out {
		switch m := s.Msg.(type) {
		case baseline.KingMsg:
			kingVals[m.V] = true
		case baseline.PhaseProposeMsg:
			if !m.Bot {
				t.Fatal("spoiler leaked a real proposal")
			}
		}
	}
	if len(kingVals) < 4 {
		t.Fatalf("king values not equivocated: %v", kingVals)
	}
}

func TestRecoverCorruptorOnlyTouchesRecoverMsgs(t *testing.T) {
	ctx := testCtx(4, 1)
	rc := &adversary.RecoverCorruptor{Ctx: ctx}
	orig := gvss.RecoverMsg{
		Shares: [][]field.Elem{{1, 2}, {3, 4}},
		HasRow: [][]bool{{true, false}, {false, true}},
	}
	composed := []adversary.Sends{{
		From: 3,
		Out: []proto.Send{
			{To: proto.Broadcast, Msg: orig},
			{To: 1, Msg: gvss.VoteMsg{OK: [][]bool{{true}}}},
		},
	}}
	out := rc.Act(0, composed, nil)
	sawVote, sawCorrupt := false, false
	for _, s := range out[0].Out {
		switch m := s.Msg.(type) {
		case gvss.VoteMsg:
			sawVote = true
		case gvss.RecoverMsg:
			// Every entry must be claimed and at least one differs from
			// the original (random garbage).
			for d := range m.Shares {
				for tgt := range m.Shares[d] {
					if !m.HasRow[d][tgt] {
						t.Fatal("corruptor left a hole in HasRow")
					}
					if m.Shares[d][tgt] != orig.Shares[d][tgt] {
						sawCorrupt = true
					}
				}
			}
		}
	}
	if !sawVote || !sawCorrupt {
		t.Fatalf("vote preserved=%v, shares corrupted=%v", sawVote, sawCorrupt)
	}
}

func TestChainAppliesAllStages(t *testing.T) {
	chain := adversary.Chain{Advs: []adversary.Adversary{
		adversary.Silent{}, // first stage drops everything
		adversary.Passive{},
	}}
	composed := []adversary.Sends{{From: 2, Out: []proto.Send{{To: 0, Msg: baseline.ClockMsg{V: 1}}}}}
	if out := chain.Act(0, composed, nil); len(out) != 0 {
		t.Fatalf("chain did not apply the silencing stage: %v", out)
	}
}

func TestOracleSplitterForwardsNonClockTraffic(t *testing.T) {
	ctx := testCtx(4, 1)
	os := &adversary.OracleSplitter{Ctx: ctx, BitOracle: func() byte { return 1 }}
	composed := []adversary.Sends{{
		From: 3,
		Out:  []proto.Send{{To: 2, Msg: baseline.ClockMsg{V: 9}}},
	}}
	out := os.Act(0, composed, nil)
	if len(out) != 1 || len(out[0].Out) != 1 {
		t.Fatalf("unexpected shape: %v", out)
	}
	if m, ok := out[0].Out[0].Msg.(baseline.ClockMsg); !ok || m.V != 9 {
		t.Fatalf("non-clock traffic rewritten: %#v", out[0].Out[0].Msg)
	}
}

func TestContextIsFaulty(t *testing.T) {
	ctx := testCtx(5, 2)
	if ctx.IsFaulty(0) || !ctx.IsFaulty(3) || !ctx.IsFaulty(4) {
		t.Fatal("IsFaulty wrong")
	}
}
