package adversary

import (
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
)

// ClockSplitter is a rushing, protocol-aware attack on the 2-clock layer:
// it reads the honest nodes' clock broadcasts (visible because they are
// broadcasts), tallies the effective votes per 2-clock instance, and then
// equivocates its own clock values per recipient to keep the cluster
// split — boosting the minority value at recipients it wants blocked
// below the n-f quorum and the majority at the rest.
//
// Against the published algorithm (VariantCorrect) this cannot defeat
// Lemma 4: honest ⊥ broadcasts are substituted with the *current* beat's
// common random bit by receivers, a bit this adversary does not use, so
// with constant probability per beat every honest tally reaches quorum on
// the same value no matter what the splitter adds. Against
// VariantPreRand (Remark 3.1's broken scheme) the ⊥ senders reveal their
// substituted bit inside their broadcasts, the tally below becomes exact,
// and the splitter stalls convergence — experiment E6.
//
// All non-2-clock traffic (coin, clock-sync phases) is forwarded
// honestly, which keeps the attack surgical and the coin alive.
type ClockSplitter struct {
	Ctx *Context
}

// Act implements Adversary.
func (a *ClockSplitter) Act(_ uint64, composed []Sends, visible []Intercept) []Sends {
	// Tally honest clock votes per 2-clock instance (per path). ⊥ votes
	// are counted separately: under VariantCorrect their effective value
	// is the receiver's fresh random bit, unknown here.
	type tally struct{ v0, v1, bot int }
	tallies := map[Path]*tally{}
	seen := map[Path]map[int]bool{}
	for _, ic := range visible {
		path, leaf := Unwrap(ic.Msg)
		m, ok := leaf.(core.TwoClockMsg)
		if !ok {
			continue
		}
		if seen[path] == nil {
			seen[path] = map[int]bool{}
			tallies[path] = &tally{}
		}
		if seen[path][ic.From] {
			continue
		}
		seen[path][ic.From] = true
		switch m.V {
		case 0:
			tallies[path].v0++
		case 1:
			tallies[path].v1++
		case core.Bot:
			tallies[path].bot++
		}
	}
	quorum := a.Ctx.N - a.Ctx.F
	out := make([]Sends, 0, len(composed))
	for _, s := range composed {
		rewritten := PerRecipient(a.Ctx.N, s.Out, func(to int, path Path, leaf proto.Message) proto.Message {
			m, ok := leaf.(core.TwoClockMsg)
			if !ok {
				return leaf // forward coin and phase traffic honestly
			}
			t := tallies[path]
			if t == nil {
				return m
			}
			// Split the recipients: the low half is pushed toward 0, the
			// high half toward 1 — unless one value already has quorum
			// from honest votes alone, in which case boost the other
			// side at every recipient to fight the emerging agreement.
			push := uint8(0)
			if to >= a.Ctx.N/2 {
				push = 1
			}
			switch {
			case t.v0 >= quorum:
				push = 1
			case t.v1 >= quorum:
				push = 0
			case t.v0 > t.v1 && t.v0+t.bot >= quorum:
				push = 1
			case t.v1 > t.v0 && t.v1+t.bot >= quorum:
				push = 0
			}
			return core.TwoClockMsg{V: push}
		})
		out = append(out, Sends{From: s.From, Out: rewritten})
	}
	return out
}
