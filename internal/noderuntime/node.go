// Package noderuntime is the event-driven networked runtime: each node
// an independent event loop around a net.Endpoint, exchanging
// wire-framed protocol messages with no global clock — beats are
// derived from message arrival. It is the asynchronous counterpart of
// the lockstep engine (package sim), which stays the oracle: in
// Lockstep mode a cluster over the in-process transport replays the
// engine bit for bit (the differential harness proves it, fault
// schedule and all), while Real mode trades that exactness for
// liveness on a genuinely faulty wire — quorum beat advancement,
// retransmission with jittered exponential backoff, heartbeats,
// catch-up after partitions, and crash/restart.
//
// The pool contract crosses the ownership boundary here at the encode
// step: a node's composed messages are serialized to frames (which own
// their bytes) and the beat's pooled payloads are recycled immediately
// — before Deliver, not after, as in sim — because every delivery,
// including a node's own loopback, travels the wire and decodes into
// fresh memory. Poison mode verifies no path cheats.
package noderuntime

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/wire"
)

// Mode selects how a node decides a beat is complete.
type Mode uint8

const (
	// Lockstep advances on beat-complete markers from all n peers — the
	// mode whose executions are provably equivalent to the engine.
	Lockstep Mode = iota
	// Real advances on markers from a quorum of n-f peers or a beat
	// timeout, with retransmission and catch-up. Live on lossy,
	// partitioned networks; equivalent to the engine only statistically.
	Real
)

// Timing tunes Real mode. The zero value selects defaults suited to
// in-process and loopback tests.
type Timing struct {
	// BeatTimeout advances the beat even without a marker quorum.
	BeatTimeout time.Duration
	// RetryMin seeds the jittered exponential backoff that governs
	// retransmission of the current beat's frames; RetryMax caps it.
	RetryMin, RetryMax time.Duration
}

func (t Timing) withDefaults() Timing {
	if t.BeatTimeout <= 0 {
		t.BeatTimeout = time.Second
	}
	if t.RetryMin <= 0 {
		t.RetryMin = 20 * time.Millisecond
	}
	if t.RetryMax <= 0 {
		t.RetryMax = 250 * time.Millisecond
	}
	return t
}

// NodeConfig describes one runtime node.
type NodeConfig struct {
	N, F int
	ID   int
	// Faulty marks the adversary's ids. The runtime uses it as a replay
	// determinism device only — it orders faulty senders' messages by
	// their global sequence, as the engine does, and never to change
	// protocol behavior (honest nodes cannot know who is faulty).
	Faulty []bool
	Mode   Mode
	// Endpoint carries the node's traffic; wrap it with faultnet.Wrap to
	// put the node on a faulty network.
	Endpoint net.Endpoint
	// Links is consulted for inbox reordering only (Shuffle); drop, dup
	// and delay verdicts are injected sender-side by the wrapper.
	Links faultnet.Schedule
	// Protocol is the node's instance; Pool, when non-nil, is the pool
	// its compose payloads lease from (recycled at the encode boundary).
	Protocol proto.Protocol
	Pool     *pool.Node
	// OnBeat, when set, observes the node after each delivered beat,
	// from the node's own goroutine.
	OnBeat func(beat uint64, p proto.Protocol)
	// MaxBeats stops the loop after that many beats (0 = run until
	// Stop).
	MaxBeats uint64
	Timing   Timing
	// RetrySeed seeds backoff jitter (Real mode).
	RetrySeed int64
	// Metrics, when non-nil, instruments the loop (beat rate, quorum
	// waits, retries, catch-up). It never feeds back into behavior; nil
	// costs one branch per event.
	Metrics *NodeMetrics
}

// Window is how many beats ahead of the current one a node buffers
// frames and markers for; anything outside [cur, cur+Window] is
// dropped. Together with maxPerSender it bounds a node's memory under
// partitions and Byzantine floods. It must exceed any fault schedule's
// MaxDelay.
const Window = 8

// maxPerSender caps buffered message frames per (beat, sender): honest
// protocols send a handful per beat, so the cap only bites floods.
const maxPerSender = 4096

// Node is one event-loop node. Create with NewNode, then Start; Stop
// (or MaxBeats) ends the loop and Wait joins it.
type Node struct {
	cfg    NodeConfig
	cur    uint64
	seqs   map[uint64][]frameRec        // delivery beat -> buffered messages
	dedup  map[dedupKey]struct{}        // within the window
	marks  map[uint64]map[int]uint32    // beat -> marker senders -> declared msg count
	fresh  map[uint64]map[int]uint32    // send beat -> sender -> first-copy msgs arrived
	peerAt []uint64                     // highest beat seen per peer (catch-up)
	counts map[uint64]map[int]int       // per (beat, sender) buffered frames
	last   struct{ frames []beatFrame } // current beat's traffic, for retransmission
	rng    *rand.Rand

	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
}

type frameRec struct{ f wire.Frame }

type dedupKey struct {
	from int
	beat uint64
	seq  uint32
	copy uint8
}

type beatFrame struct {
	to   int // proto.Broadcast for all
	data []byte
}

// NewNode builds a node; Start launches its loop.
func NewNode(cfg NodeConfig) *Node {
	cfg.Timing = cfg.Timing.withDefaults()
	return &Node{
		cfg:    cfg,
		seqs:   make(map[uint64][]frameRec),
		dedup:  make(map[dedupKey]struct{}),
		marks:  make(map[uint64]map[int]uint32),
		fresh:  make(map[uint64]map[int]uint32),
		counts: make(map[uint64]map[int]int),
		peerAt: make([]uint64, cfg.N),
		rng:    rand.New(rand.NewSource(cfg.RetrySeed ^ int64(cfg.ID)<<20 ^ 0x5bd1e995)),
		done:   make(chan struct{}),
	}
}

// Beat returns the number of completed beats (racy while running; read
// it from OnBeat or after Wait).
func (nd *Node) Beat() uint64 { return nd.cur }

// Protocol returns the node's protocol instance (same caveat as Beat).
func (nd *Node) Protocol() proto.Protocol { return nd.cfg.Protocol }

// Start launches the event loop.
func (nd *Node) Start() {
	nd.wg.Add(1)
	go nd.run()
}

// Stop asks the loop to exit; Wait joins it.
func (nd *Node) Stop() { nd.stop.Do(func() { close(nd.done) }) }

// Wait blocks until the loop has exited.
func (nd *Node) Wait() { nd.wg.Wait() }

func (nd *Node) run() {
	defer nd.wg.Done()
	for nd.cfg.MaxBeats == 0 || nd.cur < nd.cfg.MaxBeats {
		r := nd.cur
		nd.sendBeat(r)
		if !nd.await(r) {
			return
		}
		nd.deliverBeat(r)
		nd.gc(r)
		nd.cur++
		nd.cfg.Metrics.beatDone()
		if nd.cfg.Mode == Real {
			nd.maybeJump()
		}
	}
}

// sendBeat composes beat r, encodes every send into frames, recycles
// the pooled compose payloads (the frames own their bytes now — this is
// the ownership boundary), and transmits frames plus the beat-complete
// marker to every peer, itself included: all delivery, even loopback,
// crosses the wire.
func (nd *Node) sendBeat(r uint64) {
	sends := nd.cfg.Protocol.Compose(r)
	nd.last.frames = nd.last.frames[:0]
	msgCount := make([]uint32, nd.cfg.N)
	for seq, s := range sends {
		if s.To != proto.Broadcast && (s.To < 0 || s.To >= nd.cfg.N) {
			continue // malformed destination: dropped, as in sim
		}
		payload, err := wire.Encode(s.Msg)
		if err != nil {
			continue // unregistered type: cannot cross a wire
		}
		data := wire.AppendFrame(nil, wire.Frame{
			Kind: wire.KindMsg, From: nd.cfg.ID, Beat: r, DeliveryBeat: r,
			Seq: uint32(seq), Payload: payload,
		})
		nd.last.frames = append(nd.last.frames, beatFrame{to: s.To, data: data})
		if s.To == proto.Broadcast {
			for to := range msgCount {
				msgCount[to]++
			}
		} else {
			msgCount[s.To]++
		}
	}
	if nd.cfg.Pool != nil {
		nd.cfg.Pool.Recycle()
	}
	// Markers are per-destination: each declares how many beat-r
	// messages this node addressed to that peer (in Seq), letting Real
	// mode distinguish "beat complete" from "marker outran lost
	// messages" and keep retrying the gap.
	for to := 0; to < nd.cfg.N; to++ {
		mark := wire.AppendFrame(nil, wire.Frame{
			Kind: wire.KindMark, From: nd.cfg.ID, Beat: r, DeliveryBeat: r,
			Seq: msgCount[to],
		})
		nd.last.frames = append(nd.last.frames, beatFrame{to: to, data: mark})
	}
	nd.transmit()
}

// transmit sends the current beat's frames (first time or retry; the
// receivers' dedup makes retries idempotent).
func (nd *Node) transmit() {
	for _, bf := range nd.last.frames {
		if bf.to == proto.Broadcast {
			for to := 0; to < nd.cfg.N; to++ {
				nd.cfg.Endpoint.Send(to, bf.data)
			}
		} else {
			nd.cfg.Endpoint.Send(bf.to, bf.data)
		}
	}
}

// await blocks until beat r is complete per the node's mode (or Stop).
func (nd *Node) await(r uint64) bool {
	if nd.cfg.Mode == Lockstep {
		for len(nd.marks[r]) < nd.cfg.N {
			select {
			case <-nd.done:
				return false
			case p, ok := <-nd.cfg.Endpoint.Recv():
				if !ok {
					return false
				}
				nd.ingest(p)
			}
		}
		return true
	}
	// Real mode: a quorum of COMPLETE peers — marker received and every
	// message it declares arrived (retries close the gaps) — with
	// retransmission while waiting and a hard beat timeout so a
	// partitioned minority still creeps forward (bounded memory either
	// way — see Window).
	var waitStart time.Time
	if nd.cfg.Metrics != nil {
		waitStart = time.Now()
	}
	deadline := time.NewTimer(nd.cfg.Timing.BeatTimeout)
	defer deadline.Stop()
	backoff := nd.cfg.Timing.RetryMin
	retry := time.NewTimer(nd.jitter(backoff))
	defer retry.Stop()
	for {
		if nd.completePeers(r) >= nd.cfg.N-nd.cfg.F || nd.quorumBeat() > r {
			nd.cfg.Metrics.observeWait(waitStart)
			return true
		}
		select {
		case <-nd.done:
			return false
		case p, ok := <-nd.cfg.Endpoint.Recv():
			if !ok {
				return false
			}
			nd.ingest(p)
		case <-retry.C:
			nd.cfg.Metrics.retransmit()
			nd.transmit()
			if backoff *= 2; backoff > nd.cfg.Timing.RetryMax {
				backoff = nd.cfg.Timing.RetryMax
			}
			retry.Reset(nd.jitter(backoff))
		case <-deadline.C:
			nd.cfg.Metrics.timeout()
			nd.cfg.Metrics.observeWait(waitStart)
			return true
		}
	}
}

func (nd *Node) jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(nd.rng.Int63n(int64(d)))
}

// completePeers counts senders whose beat-r traffic has fully arrived:
// marker in hand and at least as many first-copy messages as it
// declared. (Fault-delayed messages count at their send beat, so a
// delayed frame doesn't stall its sender's completeness.)
func (nd *Node) completePeers(r uint64) int {
	n := 0
	for from, declared := range nd.marks[r] {
		if nd.fresh[r][from] >= declared {
			n++
		}
	}
	return n
}

// quorumBeat is the highest beat that n-f peers (self included) have
// reached, judged by the newest frame seen from each — the catch-up
// signal after a heal.
func (nd *Node) quorumBeat() uint64 {
	tmp := append([]uint64(nil), nd.peerAt...)
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] > tmp[b] })
	return tmp[nd.cfg.N-nd.cfg.F-1]
}

// maybeJump fast-forwards a node a quorum has left behind: skipped
// beats get no compose or delivery (the wire lost them; the protocols'
// self-stabilization owns recovery), which resynchronizes after a
// partition heals without replaying the gap.
func (nd *Node) maybeJump() {
	if q := nd.quorumBeat(); q > nd.cur+1 {
		for b := nd.cur; b < q; b++ {
			nd.gc(b)
		}
		nd.cfg.Metrics.jump(q - nd.cur)
		nd.cur = q
	}
}

// ingest buffers one received packet: dedup, authentication against the
// transport where possible, and window plus per-sender bounds so memory
// stays constant under partitions and floods.
func (nd *Node) ingest(p net.Packet) {
	f, err := wire.DecodeFrame(p.Data)
	if err != nil {
		return // noise
	}
	if f.From >= nd.cfg.N {
		return
	}
	// A transport that authenticates senders must agree with the header.
	if p.From >= 0 && p.From != f.From {
		return
	}
	if f.Beat > nd.peerAt[f.From] {
		nd.peerAt[f.From] = f.Beat
	}
	if f.DeliveryBeat < nd.cur || f.DeliveryBeat > nd.cur+Window {
		return
	}
	if f.Kind == wire.KindMark {
		m := nd.marks[f.Beat]
		if m == nil {
			m = make(map[int]uint32)
			nd.marks[f.Beat] = m
		}
		m[f.From] = f.Seq // declared per-destination message count
		return
	}
	key := dedupKey{from: f.From, beat: f.Beat, seq: f.Seq, copy: f.Copy}
	if _, dup := nd.dedup[key]; dup {
		return // retransmission
	}
	c := nd.counts[f.DeliveryBeat]
	if c == nil {
		c = make(map[int]int)
		nd.counts[f.DeliveryBeat] = c
	}
	if c[f.From] >= maxPerSender {
		return // flood
	}
	c[f.From]++
	nd.dedup[key] = struct{}{}
	nd.seqs[f.DeliveryBeat] = append(nd.seqs[f.DeliveryBeat], frameRec{f: f})
	if f.Copy == 0 {
		fr := nd.fresh[f.Beat]
		if fr == nil {
			fr = make(map[int]uint32)
			nd.fresh[f.Beat] = fr
		}
		fr[f.From]++
	}
}

// deliverBeat decodes beat r's buffered frames into an inbox in the
// canonical order shared with sim.Engine — late arrivals first by
// (send beat, honest-before-faulty, sender, seq), then current-beat
// honest senders by (sender, seq), then the adversary's by its global
// seq — applies the schedule's reorder permutation, and delivers.
func (nd *Node) deliverBeat(r uint64) {
	recs := nd.seqs[r]
	sort.SliceStable(recs, func(a, b int) bool {
		x, y := recs[a].f, recs[b].f
		if x.Beat != y.Beat {
			return x.Beat < y.Beat
		}
		xb, yb := nd.isBad(x.From), nd.isBad(y.From)
		if xb != yb {
			return yb
		}
		if !xb && x.From != y.From {
			return x.From < y.From
		}
		if x.Seq != y.Seq {
			return x.Seq < y.Seq
		}
		return x.Copy < y.Copy
	})
	inbox := make([]proto.Recv, 0, len(recs))
	for _, rec := range recs {
		m, err := wire.Decode(rec.f.Payload)
		if err != nil {
			continue // Byzantine garbage: hardened decode drops it
		}
		inbox = append(inbox, proto.Recv{From: rec.f.From, Msg: m})
	}
	if nd.cfg.Links != nil && len(inbox) > 1 {
		if seed, ok := nd.cfg.Links.Shuffle(r, nd.cfg.ID); ok {
			order := faultnet.ShuffleOrder(seed, len(inbox))
			tmp := make([]proto.Recv, len(order))
			for k, j := range order {
				tmp[k] = inbox[j]
			}
			inbox = tmp
		}
	}
	nd.cfg.Protocol.Deliver(r, inbox)
	if nd.cfg.OnBeat != nil {
		nd.cfg.OnBeat(r, nd.cfg.Protocol)
	}
	if be, ok := nd.cfg.Protocol.(proto.BeatEnder); ok {
		be.EndBeat() // the beat's messages are dead: park per-beat slabs
	}
}

func (nd *Node) isBad(i int) bool {
	return i >= 0 && i < len(nd.cfg.Faulty) && nd.cfg.Faulty[i]
}

// gc drops beat b's buffers once it is delivered (or skipped).
func (nd *Node) gc(b uint64) {
	for _, rec := range nd.seqs[b] {
		delete(nd.dedup, dedupKey{from: rec.f.From, beat: rec.f.Beat, seq: rec.f.Seq, copy: rec.f.Copy})
	}
	delete(nd.seqs, b)
	delete(nd.marks, b)
	delete(nd.fresh, b)
	delete(nd.counts, b)
}
