package noderuntime_test

import (
	"fmt"
	"sync"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

// multiTrajectory runs the multi-tenant networked runtime in Lockstep
// over the in-process transport and records every (tenant, honest
// node)'s clock after each beat.
func multiTrajectory(t *testing.T, cfg noderuntime.MultiClusterConfig, beats int) map[int]map[int][]clockAt {
	t.Helper()
	var mu sync.Mutex
	out := make(map[int]map[int][]clockAt)
	cfg.Factory = core.NewClockSyncProtocol(16, coin.FMFactory{})
	cfg.MaxBeats = uint64(beats)
	cfg.OnBeat = func(tenant, id int, beat uint64, p proto.Protocol) {
		c := readClock(p)
		mu.Lock()
		if out[tenant] == nil {
			out[tenant] = make(map[int][]clockAt)
		}
		out[tenant][id] = append(out[tenant][id], c)
		mu.Unlock()
	}
	cl, err := noderuntime.NewMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Wait()
	cl.Stop()
	return out
}

// TestMultiLockstepMatchesPerTenantOracles is the multi-tenant
// differential harness: a T-tenant networked run — tenants batched one
// frame per link per beat — must reproduce, for EVERY tenant, the
// standalone deterministic engine's honest clock trajectory at that
// tenant's seed, across the adversary × fault-schedule grid. Tenant t's
// oracle knows nothing of batching or multiplexing; any divergence is a
// batching bug by definition.
func TestMultiLockstepMatchesPerTenantOracles(t *testing.T) {
	const beats = 20
	const tenants = 5
	for advName, newAdv := range adversarySuite {
		for _, fault := range faultSuite {
			t.Run(fmt.Sprintf("%s/%s", advName, fault), func(t *testing.T) {
				seed := int64(63)
				got := multiTrajectory(t, noderuntime.MultiClusterConfig{
					N: 4, F: 1, Tenants: tenants, Seed: seed, ScrambleStart: true,
					NewAdversary: newAdv,
					Links:        schedule(t, fault, 0xBEEF),
				}, beats)
				for tn := 0; tn < tenants; tn++ {
					want := simTrajectory(sim.Config{
						N: 4, F: 1, Seed: seed + int64(tn), ScrambleStart: true,
						NewAdversary: newAdv,
						Links:        schedule(t, fault, 0xBEEF),
					}, beats)
					for id, ws := range want {
						gs := got[tn][id]
						if len(gs) != len(ws) {
							t.Fatalf("tenant %d node %d delivered %d beats, oracle %d", tn, id, len(gs), len(ws))
						}
						for b := range ws {
							if gs[b] != ws[b] {
								t.Fatalf("tenant %d node %d beat %d: batched runtime %+v, standalone oracle %+v",
									tn, id, b, gs[b], ws[b])
							}
						}
					}
				}
			})
		}
	}
}

// TestMultiLockstepPoisonSoak is the batched-frame ownership soak: a
// long multi-tenant run under the full fault mix with poisoned pools on
// the networked side and pooling off in every oracle. If any batched
// path — encode, the adversary host's per-tenant extraction, delayed
// batch redelivery — aliased a recycled compose payload, the poison
// scribble would change its bytes and some tenant would diverge.
func TestMultiLockstepPoisonSoak(t *testing.T) {
	const beats = 50
	const tenants = 4
	seed := int64(171)
	fault := "loss15+dup10+delay10+reorder+partition"
	got := multiTrajectory(t, noderuntime.MultiClusterConfig{
		N: 4, F: 1, Tenants: tenants, Seed: seed, ScrambleStart: true,
		Pool:         sim.PoolPoison,
		NewAdversary: adversarySuite["replayer"],
		Links:        schedule(t, fault, 23),
	}, beats)
	for tn := 0; tn < tenants; tn++ {
		want := simTrajectory(sim.Config{
			N: 4, F: 1, Seed: seed + int64(tn), ScrambleStart: true, Pool: sim.PoolOff,
			NewAdversary: adversarySuite["replayer"],
			Links:        schedule(t, fault, 23),
		}, beats)
		for id, ws := range want {
			gs := got[tn][id]
			if len(gs) != len(ws) {
				t.Fatalf("tenant %d node %d delivered %d beats, oracle %d", tn, id, len(gs), len(ws))
			}
			for b := range ws {
				if gs[b] != ws[b] {
					t.Fatalf("tenant %d node %d beat %d: poisoned runtime %+v, unpooled oracle %+v (recycled memory aliased)",
						tn, id, b, gs[b], ws[b])
				}
			}
		}
	}
}

// TestMultiFramesIndependentOfTenants pins the tentpole's transport
// claim: the number of batch frames a node sends per beat depends on
// links, not tenants. A 1-tenant and a 32-tenant run over an ideal
// network must send exactly the same number of batched frames.
func TestMultiFramesIndependentOfTenants(t *testing.T) {
	const beats = 10
	batchedFrames := func(tenants int) (batched, markers float64) {
		reg := obs.NewRegistry()
		cfg := noderuntime.MultiClusterConfig{
			N: 4, F: 1, Tenants: tenants, Seed: 7, ScrambleStart: true,
			Factory:  core.NewClockSyncProtocol(16, coin.FMFactory{}),
			MaxBeats: beats,
			Metrics:  reg,
		}
		cl, err := noderuntime.NewMultiCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		cl.Wait()
		cl.Stop()
		for _, s := range reg.Snapshot() {
			if s.Name != "ssbyz_net_frames_total" {
				continue
			}
			for _, l := range s.Labels {
				if l.Key == "kind" && l.Value == "batched" {
					batched += s.Value
				}
				if l.Key == "kind" && l.Value == "marker" {
					markers += s.Value
				}
			}
		}
		return batched, markers
	}
	b1, m1 := batchedFrames(1)
	b32, m32 := batchedFrames(32)
	if b1 == 0 || m1 == 0 {
		t.Fatalf("frames counter not populated: batched=%v markers=%v", b1, m1)
	}
	if b32 != b1 || m32 != m1 {
		t.Fatalf("frames/beat scaled with tenants: T=1 (batched=%v, markers=%v), T=32 (batched=%v, markers=%v)",
			b1, m1, b32, m32)
	}
}
