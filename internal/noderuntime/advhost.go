package noderuntime

import (
	"sort"
	"sync"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/wire"
)

// AdvHost hosts the adversary in a Lockstep cluster: it owns every
// faulty node's endpoint and honest-copy protocol instance, and
// reconstructs the engine's rushing semantics from the wire alone. The
// sequencing falls out of the marker discipline — honest nodes send
// traffic then markers; the host acts only once every honest marker for
// the beat has arrived on every faulty endpoint (so the adversary has
// seen all honest traffic it is entitled to: rushing); the faulty
// nodes' own markers go out after that, which is what releases the
// honest nodes into Deliver. No clock, no extra synchronization.
//
// Real-mode clusters do not use AdvHost: there the faulty ids run as
// ordinary (passive) nodes, since an asynchronous rushing adversary has
// no faithful engine counterpart to be checked against.
type AdvHost struct {
	cfg AdvHostConfig

	cur    uint64
	msgs   map[uint64][]interceptRec     // beat -> honest frames to faulty ids
	marks  map[uint64][]map[int]struct{} // beat -> per-faulty-endpoint honest marker senders
	merged chan tagged

	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
}

// AdvHostConfig wires an AdvHost. Slices are indexed by faulty-list
// position, mirroring sim's intercept ordering.
type AdvHostConfig struct {
	N, F int
	// FaultyIDs in engine order (ascending by default). Endpoints,
	// Instances and Pools are parallel to it.
	FaultyIDs []int
	Endpoints []net.Endpoint
	Instances []proto.Protocol
	Pools     []*pool.Node
	Adv       adversary.Adversary
	MaxBeats  uint64
}

// interceptRec is one honest frame captured on a faulty endpoint,
// decoded lazily into the adversary's visible set.
type interceptRec struct {
	from    int
	seq     uint32
	badIdx  int // which faulty endpoint it arrived on
	payload []byte
}

// tagged is one packet annotated with the faulty endpoint it arrived
// on; forwarder goroutines merge all endpoints onto one channel so the
// host loop has a single receive point.
type tagged struct {
	k int
	p net.Packet
}

// NewAdvHost builds the host; Start launches its loop.
func NewAdvHost(cfg AdvHostConfig) *AdvHost {
	return &AdvHost{
		cfg:   cfg,
		msgs:  make(map[uint64][]interceptRec),
		marks: make(map[uint64][]map[int]struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the host loop and one forwarder per faulty endpoint.
func (h *AdvHost) Start() {
	h.merged = make(chan tagged, 64)
	for k, ep := range h.cfg.Endpoints {
		h.wg.Add(1)
		go h.forward(k, ep.Recv())
	}
	h.wg.Add(1)
	go h.run()
}

func (h *AdvHost) forward(k int, ch <-chan net.Packet) {
	defer h.wg.Done()
	for {
		select {
		case <-h.done:
			return
		case p, ok := <-ch:
			if !ok {
				return
			}
			select {
			case <-h.done:
				return
			case h.merged <- tagged{k: k, p: p}:
			}
		}
	}
}

// Stop asks the loop to exit; Wait joins it.
func (h *AdvHost) Stop() { h.stop.Do(func() { close(h.done) }) }

// Wait blocks until the loop has exited.
func (h *AdvHost) Wait() { h.wg.Wait() }

func (h *AdvHost) run() {
	defer h.wg.Done()
	defer h.Stop() // a natural MaxBeats exit must release the forwarders too
	isBad := make([]bool, h.cfg.N)
	for _, id := range h.cfg.FaultyIDs {
		isBad[id] = true
	}
	honest := h.cfg.N - h.cfg.F
	for h.cfg.MaxBeats == 0 || h.cur < h.cfg.MaxBeats {
		r := h.cur
		// Honest-copy instances compose the defaults the adversary may
		// forward or replace (sim's interceptPhase, verbatim).
		defaults := make([]adversary.Sends, h.cfg.F)
		for k, id := range h.cfg.FaultyIDs {
			defaults[k] = adversary.Sends{From: id, Out: h.cfg.Instances[k].Compose(r)}
		}
		// Rushing barrier: every honest marker for r, on every endpoint.
		if !h.collect(r, honest, isBad) {
			return
		}
		visible, perDest := h.visibleSet(r, isBad)
		sends := h.cfg.Adv.Act(r, defaults, visible)
		h.emit(r, sends, isBad, perDest)
		// Markers last: they release the honest nodes into Deliver.
		mark := func(id int) []byte {
			return wire.AppendFrame(nil, wire.Frame{Kind: wire.KindMark, From: id, Beat: r, DeliveryBeat: r})
		}
		for k, id := range h.cfg.FaultyIDs {
			m := mark(id)
			for to := 0; to < h.cfg.N; to++ {
				if !isBad[to] {
					h.cfg.Endpoints[k].Send(to, m)
				}
			}
		}
		for k := range h.cfg.Instances {
			h.cfg.Instances[k].Deliver(r, perDest[k])
		}
		for _, p := range h.cfg.Pools {
			if p != nil {
				p.Recycle()
			}
		}
		for k := range h.cfg.Instances {
			if be, ok := h.cfg.Instances[k].(proto.BeatEnder); ok {
				be.EndBeat()
			}
		}
		delete(h.msgs, r)
		delete(h.marks, r)
		h.cur++
	}
}

// collect drains the merged endpoint stream until beat r's honest
// markers are complete on all faulty endpoints, buffering messages (and
// early frames for future beats) as it goes.
func (h *AdvHost) collect(r uint64, honest int, isBad []bool) bool {
	complete := func() bool {
		ms := h.marks[r]
		if ms == nil {
			return honest == 0
		}
		for _, m := range ms {
			if len(m) < honest {
				return false
			}
		}
		return true
	}
	for !complete() {
		select {
		case <-h.done:
			return false
		case tp := <-h.merged:
			h.ingest(tp.k, tp.p, isBad)
		}
	}
	return true
}

// ingest buffers one packet from faulty endpoint k.
func (h *AdvHost) ingest(k int, p net.Packet, isBad []bool) {
	f, err := wire.DecodeFrame(p.Data)
	if err != nil || f.From >= h.cfg.N || isBad[f.From] {
		return
	}
	if p.From >= 0 && p.From != f.From {
		return
	}
	if f.Beat < h.cur || f.Beat > h.cur+Window {
		return
	}
	if f.Kind == wire.KindMark {
		ms := h.marks[f.Beat]
		if ms == nil {
			ms = make([]map[int]struct{}, h.cfg.F)
			for i := range ms {
				ms[i] = make(map[int]struct{})
			}
			h.marks[f.Beat] = ms
		}
		ms[k][f.From] = struct{}{}
		return
	}
	payload := append([]byte(nil), f.Payload...)
	h.msgs[f.Beat] = append(h.msgs[f.Beat], interceptRec{from: f.From, seq: f.Seq, badIdx: k, payload: payload})
}

// visibleSet decodes beat r's intercepts into the adversary's visible
// list — ordered exactly as sim's interceptPhase builds it: honest
// sender ascending, compose seq, then faulty destination in faulty-list
// order — and, sharing the same decoded values, each faulty instance's
// honest inbox prefix in (sender, seq) order.
func (h *AdvHost) visibleSet(r uint64, isBad []bool) ([]adversary.Intercept, [][]proto.Recv) {
	recs := h.msgs[r]
	sort.SliceStable(recs, func(a, b int) bool {
		if recs[a].from != recs[b].from {
			return recs[a].from < recs[b].from
		}
		if recs[a].seq != recs[b].seq {
			return recs[a].seq < recs[b].seq
		}
		return recs[a].badIdx < recs[b].badIdx
	})
	visible := make([]adversary.Intercept, 0, len(recs))
	perDest := make([][]proto.Recv, h.cfg.F)
	for _, rec := range recs {
		m, err := wire.Decode(rec.payload)
		if err != nil {
			continue
		}
		visible = append(visible, adversary.Intercept{From: rec.from, To: h.cfg.FaultyIDs[rec.badIdx], Msg: m})
		perDest[rec.badIdx] = append(perDest[rec.badIdx], proto.Recv{From: rec.from, Msg: m})
	}
	return visible, perDest
}

// emit sends the adversary's chosen messages: wire frames (stamped with
// the global adversary sequence sim uses) toward honest nodes, direct
// in-memory appends toward the faulty instances' own inboxes.
func (h *AdvHost) emit(r uint64, sends []adversary.Sends, isBad []bool, perDest [][]proto.Recv) {
	epOf := make(map[int]int, h.cfg.F)
	for k, id := range h.cfg.FaultyIDs {
		epOf[id] = k
	}
	advSeq := uint32(0)
	for _, fs := range sends {
		if fs.From < 0 || fs.From >= h.cfg.N || !isBad[fs.From] {
			continue // identity cannot be forged (Definition 2.2)
		}
		k := epOf[fs.From]
		for _, s := range fs.Out {
			seq := advSeq
			advSeq++
			if s.To != proto.Broadcast && (s.To < 0 || s.To >= h.cfg.N) {
				continue
			}
			var data []byte
			sendTo := func(to int) {
				if isBad[to] {
					kk := epOf[to]
					perDest[kk] = append(perDest[kk], proto.Recv{From: fs.From, Msg: s.Msg})
					return
				}
				if data == nil {
					payload, err := wire.Encode(s.Msg)
					if err != nil {
						return // unregistered type cannot cross the wire
					}
					data = wire.AppendFrame(nil, wire.Frame{
						Kind: wire.KindMsg, From: fs.From, Beat: r, DeliveryBeat: r,
						Seq: seq, Payload: payload,
					})
				}
				h.cfg.Endpoints[k].Send(to, data)
			}
			if s.To == proto.Broadcast {
				for to := 0; to < h.cfg.N; to++ {
					sendTo(to)
				}
			} else {
				sendTo(s.To)
			}
		}
	}
}
