package noderuntime_test

import (
	"fmt"
	"sync"
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

// clockAt is one node's clock reading after one delivered beat.
type clockAt struct {
	val uint64
	ok  bool
}

func readClock(p proto.Protocol) clockAt {
	cr, isCR := p.(proto.ClockReader)
	if !isCR {
		return clockAt{}
	}
	v, ok := cr.Clock()
	return clockAt{val: v, ok: ok}
}

// simTrajectory runs the deterministic engine and records every honest
// node's clock after each beat — the oracle.
func simTrajectory(cfg sim.Config, beats int) map[int][]clockAt {
	e := sim.New(cfg, core.NewClockSyncProtocol(16, coin.FMFactory{}))
	out := make(map[int][]clockAt)
	for b := 0; b < beats; b++ {
		e.Step()
		for _, id := range e.HonestIDs() {
			out[id] = append(out[id], readClock(e.Node(id)))
		}
	}
	return out
}

// clusterTrajectory runs the networked runtime in Lockstep mode over the
// in-process transport and records the same observable.
func clusterTrajectory(t *testing.T, cfg noderuntime.ClusterConfig, beats int) map[int][]clockAt {
	t.Helper()
	var mu sync.Mutex
	out := make(map[int][]clockAt)
	cfg.Factory = core.NewClockSyncProtocol(16, coin.FMFactory{})
	cfg.MaxBeats = uint64(beats)
	cfg.OnBeat = func(id int, beat uint64, p proto.Protocol) {
		c := readClock(p)
		mu.Lock()
		out[id] = append(out[id], c)
		mu.Unlock()
	}
	cl, err := noderuntime.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Wait()
	cl.Stop()
	return out
}

func schedule(t *testing.T, name string, seed uint64) faultnet.Schedule {
	t.Helper()
	if name == "" {
		return nil
	}
	s, err := faultnet.Parse(name)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = seed
	return s
}

// adversarySuite names the adversaries the differential harness covers:
// passive faulty nodes, the clock splitter (the paper's rushing attack
// on clock agreement), and the replayer (stale-message injection, which
// also exercises the Clone discipline across the ownership boundary).
var adversarySuite = map[string]func(ctx *adversary.Context) adversary.Adversary{
	"passive":  nil,
	"splitter": func(ctx *adversary.Context) adversary.Adversary { return &adversary.ClockSplitter{Ctx: ctx} },
	"replayer": func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} },
}

// faultSuite is the fault-schedule grid the equivalence claim covers.
var faultSuite = []string{
	"none",
	"loss20",
	"delay15",
	"dup10",
	"reorder",
	"partition",
	"loss15+dup10+delay10+reorder+partition",
}

// TestLockstepMatchesEngine is the differential harness of this
// runtime: for every (cluster size, adversary, fault schedule) in the
// suite, the event-driven networked stack must reproduce the
// deterministic engine's honest clock trajectory beat for beat. The
// engine is the oracle; any divergence is a runtime bug by definition.
func TestLockstepMatchesEngine(t *testing.T) {
	const beats = 24
	sizes := []struct{ n, f int }{{4, 1}, {8, 2}}
	for _, sz := range sizes {
		for advName, newAdv := range adversarySuite {
			for _, fault := range faultSuite {
				t.Run(fmt.Sprintf("n%d/%s/%s", sz.n, advName, fault), func(t *testing.T) {
					seed := int64(41)
					want := simTrajectory(sim.Config{
						N: sz.n, F: sz.f, Seed: seed, ScrambleStart: true,
						NewAdversary: newAdv,
						Links:        schedule(t, fault, 0xC0FFEE),
					}, beats)
					got := clusterTrajectory(t, noderuntime.ClusterConfig{
						N: sz.n, F: sz.f, Seed: seed, ScrambleStart: true,
						Mode:         noderuntime.Lockstep,
						NewAdversary: newAdv,
						Links:        schedule(t, fault, 0xC0FFEE),
					}, beats)
					for id, ws := range want {
						gs := got[id]
						if len(gs) != len(ws) {
							t.Fatalf("node %d delivered %d beats, engine %d", id, len(gs), len(ws))
						}
						for b := range ws {
							if gs[b] != ws[b] {
								t.Fatalf("node %d beat %d: runtime %+v, engine %+v", id, b, gs[b], ws[b])
							}
						}
					}
				})
			}
		}
	}
}

// TestLockstepPoisonSoak is the ownership-boundary soak: a long
// lockstep run under every fault kind with poisoned pools on the
// networked side and pooling disabled on the engine side. If any
// networked code path aliased a recycled compose payload — frames,
// delayed redelivery, the adversary host's intercepts — the poison
// scribble would change its bytes and the trajectories would diverge.
func TestLockstepPoisonSoak(t *testing.T) {
	const beats = 60
	seed := int64(97)
	fault := "loss15+dup10+delay10+reorder+partition"
	want := simTrajectory(sim.Config{
		N: 8, F: 2, Seed: seed, ScrambleStart: true, Pool: sim.PoolOff,
		NewAdversary: adversarySuite["replayer"],
		Links:        schedule(t, fault, 7),
	}, beats)
	got := clusterTrajectory(t, noderuntime.ClusterConfig{
		N: 8, F: 2, Seed: seed, ScrambleStart: true, Pool: sim.PoolPoison,
		Mode:         noderuntime.Lockstep,
		NewAdversary: adversarySuite["replayer"],
		Links:        schedule(t, fault, 7),
	}, beats)
	for id, ws := range want {
		gs := got[id]
		if len(gs) != len(ws) {
			t.Fatalf("node %d delivered %d beats, engine %d", id, len(gs), len(ws))
		}
		for b := range ws {
			if gs[b] != ws[b] {
				t.Fatalf("node %d beat %d: poisoned runtime %+v, unpooled engine %+v (recycled memory aliased)", id, b, gs[b], ws[b])
			}
		}
	}
}
