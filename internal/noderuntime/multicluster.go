package noderuntime

import (
	"fmt"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

// MultiClusterConfig describes a multi-tenant Lockstep cluster: T
// independent protocol instances per node id behind n endpoints, with
// per-tenant seeding that mirrors multi.TenantConfig — tenant t runs
// with Seed+t, so tenant t's standalone oracle is an ordinary
// sim.Engine (or single-tenant Cluster) at that seed.
//
// The fault schedule is shared by all tenants BY CONSTRUCTION: faultnet
// verdicts are pure functions of (seed, beat, from, to), a batch frame
// is one (from, to, beat) sample, and so every tenant on the link
// shares the frame's fate — which is exactly what T standalone runs
// under the same schedule seed would each compute for themselves. The
// differential harness pins this equivalence per tenant.
type MultiClusterConfig struct {
	N, F    int
	Tenants int
	// Seed is tenant 0's seed; tenant t uses Seed+t (multi.TenantConfig's
	// default derivation).
	Seed int64
	// Faulty lists the adversary-controlled ids; empty means the last F.
	Faulty []int
	// Factory builds each (tenant, node) protocol instance.
	Factory sim.NodeFactory
	// NewAdversary builds each tenant's adversary (nil means Passive).
	NewAdversary func(ctx *adversary.Context) adversary.Adversary
	// ScrambleStart scrambles every tenant's honest nodes from that
	// tenant's own scramble stream, as its standalone oracle does.
	ScrambleStart bool
	// Pool selects payload pooling, as sim.Config.Pool.
	Pool sim.PoolMode
	// Links is the shared fault schedule (its Seed already set); nil
	// means an ideal network.
	Links faultnet.Schedule
	// Transport carries the cluster; nil selects an in-process channel
	// transport.
	Transport net.Transport
	// OnBeat observes each (tenant, honest node) after every delivered
	// beat, from that node's goroutine.
	OnBeat   func(tenant, id int, beat uint64, p proto.Protocol)
	MaxBeats uint64
	// Metrics, when non-nil, instruments every honest node and wrapped
	// endpoint (per-node labels), including ssbyz_net_frames_total by
	// frame kind.
	Metrics *obs.Registry
}

// MultiCluster is a running multi-tenant Lockstep cluster.
type MultiCluster struct {
	cfg    MultiClusterConfig
	tr     net.Transport
	isBad  []bool
	faulty []int
	nodes  []*MultiNode // by id; nil for adversary-hosted ids
	eps    []*faultnet.Endpoint
	adv    *MultiAdvHost
}

// NewMultiCluster builds the cluster: T×n protocol instances from each
// tenant's exact per-node streams, endpoints attached and wrapped once
// per node id (not per tenant), honest state scrambled per tenant in
// engine order. Call Start to run it.
func NewMultiCluster(cfg MultiClusterConfig) (*MultiCluster, error) {
	if cfg.N <= 0 || cfg.F < 0 || cfg.F >= cfg.N {
		return nil, fmt.Errorf("noderuntime: bad cluster n=%d f=%d", cfg.N, cfg.F)
	}
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("noderuntime: bad tenant count %d", cfg.Tenants)
	}
	c := &MultiCluster{cfg: cfg, tr: cfg.Transport}
	if c.tr == nil {
		c.tr = net.NewChanTransport(cfg.N, 0)
	}
	c.faulty = append([]int(nil), cfg.Faulty...)
	if len(c.faulty) == 0 {
		for i := cfg.N - cfg.F; i < cfg.N; i++ {
			c.faulty = append(c.faulty, i)
		}
	}
	if len(c.faulty) != cfg.F {
		return nil, fmt.Errorf("noderuntime: %d faulty ids for f=%d", len(c.faulty), cfg.F)
	}
	c.isBad = make([]bool, cfg.N)
	for _, id := range c.faulty {
		if id < 0 || id >= cfg.N {
			return nil, fmt.Errorf("noderuntime: faulty id %d out of range", id)
		}
		c.isBad[id] = true
	}
	hostAdv := cfg.F > 0

	// One pool per transport node, shared by its T tenant instances: a
	// node's tenants compose sequentially on its one goroutine, so the
	// lease discipline is unchanged, and idle tenants hold no buffers.
	pooled, poison := sim.ResolvePoolMode(cfg.Pool)
	T := cfg.Tenants
	pools := make([]*pool.Node, cfg.N)
	var advPool *pool.Node
	if pooled {
		for i := range pools {
			pools[i] = &pool.Node{}
			pools[i].SetPoison(poison)
		}
		advPool = &pool.Node{}
		advPool.SetPoison(poison)
	}
	// instances[t][i] from tenant t's exact standalone streams.
	instances := make([][]proto.Protocol, T)
	advs := make([]adversary.Adversary, T)
	for t := 0; t < T; t++ {
		seed := cfg.Seed + int64(t)
		instances[t] = make([]proto.Protocol, cfg.N)
		for i := 0; i < cfg.N; i++ {
			env := proto.Env{N: cfg.N, F: cfg.F, ID: i, Rng: sim.NodeRng(seed, i)}
			if pooled {
				if c.isBad[i] {
					env.Pool = advPool
				} else {
					env.Pool = pools[i]
				}
			}
			instances[t][i] = cfg.Factory(env)
		}
		if cfg.ScrambleStart {
			scram := sim.ScrambleRng(seed)
			for i := 0; i < cfg.N; i++ {
				if c.isBad[i] {
					continue
				}
				if s, ok := instances[t][i].(proto.Scrambler); ok {
					s.Scramble(scram)
				}
			}
		}
		if hostAdv {
			advCtx := &adversary.Context{
				N: cfg.N, F: cfg.F,
				Faulty: append([]int(nil), c.faulty...),
				Rng:    sim.AdversaryRng(seed),
				FaultyNode: func(id int) proto.Protocol {
					if id >= 0 && id < cfg.N && c.isBad[id] {
						return instances[t][id]
					}
					return nil
				},
			}
			advs[t] = adversary.Passive{}
			if cfg.NewAdversary != nil {
				advs[t] = cfg.NewAdversary(advCtx)
			}
		}
	}

	c.nodes = make([]*MultiNode, cfg.N)
	c.eps = make([]*faultnet.Endpoint, cfg.N)
	var advEps []net.Endpoint
	for i := 0; i < cfg.N; i++ {
		raw, err := c.tr.Endpoint(i)
		if err != nil {
			return nil, err
		}
		wc := faultnet.WrapConfig{AttemptSeed: uint64(cfg.Seed), Exempt: c.isBad}
		if cfg.Metrics != nil {
			wc.Metrics = faultnet.NewEndpointMetrics(cfg.Metrics, raw.ID())
		}
		ep := faultnet.Wrap(raw, cfg.Links, wc)
		if hostAdv && c.isBad[i] {
			advEps = append(advEps, ep)
			continue
		}
		c.eps[i] = ep
		protos := make([]proto.Protocol, T)
		for t := 0; t < T; t++ {
			protos[t] = instances[t][i]
		}
		var onBeat func(int, uint64, proto.Protocol)
		if cfg.OnBeat != nil {
			id, cb := i, cfg.OnBeat
			onBeat = func(tenant int, beat uint64, p proto.Protocol) { cb(tenant, id, beat, p) }
		}
		c.nodes[i] = NewMultiNode(MultiNodeConfig{
			N: cfg.N, F: cfg.F, ID: i,
			Faulty:   append([]bool(nil), c.isBad...),
			Endpoint: ep, Links: cfg.Links,
			Protocols: protos, Pool: pools[i],
			OnBeat: onBeat, MaxBeats: cfg.MaxBeats,
			Metrics: NewNodeMetrics(cfg.Metrics, i),
		})
	}
	if hostAdv {
		advInst := make([][]proto.Protocol, T)
		for t := 0; t < T; t++ {
			advInst[t] = make([]proto.Protocol, 0, cfg.F)
			for _, id := range c.faulty {
				advInst[t] = append(advInst[t], instances[t][id])
			}
		}
		c.adv = NewMultiAdvHost(MultiAdvHostConfig{
			N: cfg.N, F: cfg.F, Tenants: T, FaultyIDs: c.faulty,
			Endpoints: advEps, Instances: advInst, Advs: advs,
			Pool: advPool, MaxBeats: cfg.MaxBeats,
		})
	}
	return c, nil
}

// Start launches every node (and the adversary host).
func (c *MultiCluster) Start() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Start()
		}
	}
	if c.adv != nil {
		c.adv.Start()
	}
}

// Stop asks everything to exit and joins it.
func (c *MultiCluster) Stop() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Stop()
		}
	}
	if c.adv != nil {
		c.adv.Stop()
	}
	c.Wait()
	for _, ep := range c.eps {
		if ep != nil {
			ep.Close()
		}
	}
	c.tr.Close()
}

// Wait joins every loop; with MaxBeats set this is the natural way to
// let a bounded run finish.
func (c *MultiCluster) Wait() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Wait()
		}
	}
	if c.adv != nil {
		c.adv.Wait()
	}
}

// Node returns node id's event loop (nil for adversary-hosted ids).
func (c *MultiCluster) Node(id int) *MultiNode { return c.nodes[id] }

// HonestIDs returns the non-faulty ids in ascending order.
func (c *MultiCluster) HonestIDs() []int {
	out := make([]int, 0, c.cfg.N-c.cfg.F)
	for i := 0; i < c.cfg.N; i++ {
		if !c.isBad[i] {
			out = append(out, i)
		}
	}
	return out
}

// Stats sums the injected-fault counters across honest endpoints.
func (c *MultiCluster) Stats() faultnet.Stats {
	var s faultnet.Stats
	for _, ep := range c.eps {
		if ep == nil {
			continue
		}
		st := ep.Stats()
		s.Dropped += st.Dropped
		s.Duplicated += st.Duplicated
		s.Delayed += st.Delayed
		s.AttemptLost += st.AttemptLost
	}
	return s
}
