package noderuntime

import (
	"strconv"
	"time"

	"ssbyzclock/internal/obs"
)

// quorumWaitBoundMs caps the quorum-wait histogram's exact range; waits
// beyond 10s land in the overflow bin (the beat timeout should fire
// long before that).
const quorumWaitBoundMs = 10_000

// NodeMetrics is one node's runtime instrumentation: beat advancement,
// retry pressure, and catch-up behavior. Handles are registered per
// node id; a restart re-registers idempotently, so counters accumulate
// across the node's incarnations — exactly what a process supervisor
// scraping /metrics expects. All methods are nil-receiver-safe, so the
// event loop calls them unconditionally.
type NodeMetrics struct {
	beats        *obs.Counter
	retransmits  *obs.Counter
	beatTimeouts *obs.Counter
	jumps        *obs.Counter
	skipped      *obs.Counter
	quorumWait   *obs.HistShard
	// frames[k] counts frames sent by kind — the observable behind the
	// frames/beat-is-O(links) claim of the multi-tenant runtime.
	frames [frameKinds]*obs.Counter
}

// Frame-kind indexes for the ssbyz_net_frames_total series.
const (
	kindBatched = iota
	kindMarker
	frameKinds
)

var frameKindNames = [frameKinds]string{"batched", "marker"}

// NewNodeMetrics registers node id's runtime series on r (nil r → nil,
// the zero-cost detached mode).
func NewNodeMetrics(r *obs.Registry, id int) *NodeMetrics {
	if r == nil {
		return nil
	}
	node := obs.Label{Key: "node", Value: strconv.Itoa(id)}
	m := &NodeMetrics{
		beats:        r.Counter("ssbyz_node_beats_total", "Beats delivered by the node's event loop.", node),
		retransmits:  r.Counter("ssbyz_node_retransmits_total", "Current-beat frame retransmissions (backoff timer fired).", node),
		beatTimeouts: r.Counter("ssbyz_node_beat_timeouts_total", "Beats advanced by timeout instead of quorum.", node),
		jumps:        r.Counter("ssbyz_node_catchup_jumps_total", "Catch-up jumps to the quorum beat after falling behind.", node),
		skipped:      r.Counter("ssbyz_node_catchup_skipped_beats_total", "Beats skipped (no compose or delivery) by catch-up jumps.", node),
		quorumWait: r.Histogram("ssbyz_node_quorum_wait_ms",
			"Per-beat wait for a completion quorum, milliseconds.", quorumWaitBoundMs, node).Shard(),
	}
	for k := range m.frames {
		m.frames[k] = r.Counter("ssbyz_net_frames_total",
			"Frames sent by the node's endpoint, by frame kind.",
			node, obs.Label{Key: "kind", Value: frameKindNames[k]})
	}
	return m
}

func (m *NodeMetrics) frameSent(kind int) {
	if m == nil {
		return
	}
	m.frames[kind].Inc()
}

func (m *NodeMetrics) beatDone() {
	if m == nil {
		return
	}
	m.beats.Inc()
}

func (m *NodeMetrics) retransmit() {
	if m == nil {
		return
	}
	m.retransmits.Inc()
}

func (m *NodeMetrics) timeout() {
	if m == nil {
		return
	}
	m.beatTimeouts.Inc()
}

func (m *NodeMetrics) jump(skippedBeats uint64) {
	if m == nil {
		return
	}
	m.jumps.Inc()
	m.skipped.Add(skippedBeats)
}

func (m *NodeMetrics) observeWait(since time.Time) {
	if m == nil {
		return
	}
	m.quorumWait.Observe(int(time.Since(since).Milliseconds()))
}
