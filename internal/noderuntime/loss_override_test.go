package noderuntime

import (
	"testing"
	"time"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
)

// TestLossOverrideSurvivesRestart checks that a live SetAttemptLossPct
// carries over to endpoints rebuilt by Restart — a soak run that
// toggles loss and then crash/restarts a node must not silently heal
// that node's links.
func TestLossOverrideSurvivesRestart(t *testing.T) {
	cl, err := NewCluster(ClusterConfig{
		N: 4, F: 1, Seed: 3,
		Mode:    Real,
		Factory: core.NewClockSyncProtocol(16, coin.FMFactory{}),
		Timing:  Timing{BeatTimeout: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	defer cl.Stop()
	cl.SetAttemptLossPct(35)
	if err := cl.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	if got := cl.eps[0].AttemptLossPct(); got != 35 {
		t.Fatalf("restarted endpoint attempt-loss = %d, want live override 35", got)
	}
	// And a later cluster-wide change reaches the restarted endpoint too.
	cl.SetAttemptLossPct(5)
	if got := cl.eps[0].AttemptLossPct(); got != 5 {
		t.Fatalf("restarted endpoint missed retarget: %d, want 5", got)
	}
}
