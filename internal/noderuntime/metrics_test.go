package noderuntime_test

import (
	"strconv"
	"testing"
	"time"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/obs"
)

// snapshotValue reads one series value by name+node label (-1 if
// absent).
func snapshotValue(reg *obs.Registry, name, node string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "node" && l.Value == node {
				return s.Value
			}
		}
	}
	return -1
}

// TestClusterMetricsWiring runs a Real-mode cluster on a lossy
// in-process network with a registry attached and checks that the
// scraped series match ground truth: per-node beat counters equal each
// node's delivered beats, the quorum-wait histogram records one
// observation per delivered beat, and the faultnet series mirror the
// endpoints' Stats.
func TestClusterMetricsWiring(t *testing.T) {
	const n, f, beats = 4, 1, 40
	reg := obs.NewRegistry()
	cl, err := noderuntime.NewCluster(noderuntime.ClusterConfig{
		N: n, F: f, Seed: 5, ScrambleStart: true,
		Mode:           noderuntime.Real,
		Factory:        core.NewClockSyncProtocol(16, coin.FMFactory{}),
		AttemptLossPct: 20,
		MaxBeats:       beats,
		Timing:         noderuntime.Timing{BeatTimeout: 200 * time.Millisecond},
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Wait()
	defer cl.Stop()

	for i := 0; i < n; i++ {
		node := strconv.Itoa(i)
		wantBeats := float64(cl.Node(i).Beat())
		if got := snapshotValue(reg, "ssbyz_node_beats_total", node); got != wantBeats {
			t.Fatalf("node %d: beats series %v, node says %v", i, got, wantBeats)
		}
		// Real-mode await observes the quorum wait exactly once per
		// delivered beat.
		for _, s := range reg.Snapshot() {
			if s.Name != "ssbyz_node_quorum_wait_ms" || s.Hist == nil {
				continue
			}
			for _, l := range s.Labels {
				if l.Key == "node" && l.Value == node {
					if int(s.Hist.N()) != int(wantBeats) {
						t.Fatalf("node %d: quorum-wait N=%d, want %v", i, s.Hist.N(), wantBeats)
					}
				}
			}
		}
	}

	st := cl.Stats()
	if st.AttemptLost == 0 {
		t.Fatalf("20%% attempt loss lost nothing: %+v", st)
	}
	var lostSeries float64
	for _, s := range reg.Snapshot() {
		if s.Name == "ssbyz_faultnet_attempt_lost_total" {
			lostSeries += s.Value
		}
	}
	if lostSeries != float64(st.AttemptLost) {
		t.Fatalf("faultnet series sum %v, Stats say %d", lostSeries, st.AttemptLost)
	}
}

// TestRestartAccumulatesSeries pins the restart contract: a crashed and
// restarted node re-registers the SAME series, so its beat counter
// keeps growing across incarnations instead of resetting.
func TestRestartAccumulatesSeries(t *testing.T) {
	const n, f = 4, 1
	reg := obs.NewRegistry()
	cl, err := noderuntime.NewCluster(noderuntime.ClusterConfig{
		N: n, F: f, Seed: 11, ScrambleStart: true,
		Mode:    noderuntime.Real,
		Factory: core.NewClockSyncProtocol(16, coin.FMFactory{}),
		Timing:  noderuntime.Timing{BeatTimeout: 100 * time.Millisecond},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	waitForBeats := func(min float64) float64 {
		deadline := time.Now().Add(10 * time.Second)
		for {
			v := snapshotValue(reg, "ssbyz_node_beats_total", "0")
			if v >= min {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatalf("node 0 never reached %v beats (at %v)", min, v)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	before := waitForBeats(5)
	if err := cl.Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Restart(0); err != nil {
		t.Fatal(err)
	}
	waitForBeats(before + 5)
	cl.Stop()
}

