package noderuntime

import (
	"fmt"
	"sync/atomic"
	"time"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

// ClusterConfig mirrors sim.Config for the networked runtime: same
// seed-derived randomness (sim.NodeRng and friends), same faulty-id
// defaults, same scramble discipline, so a Lockstep cluster is the
// engine's run rehosted on a wire.
type ClusterConfig struct {
	N, F int
	Seed int64
	// Faulty lists the adversary-controlled ids; empty means the last F.
	Faulty []int
	Mode   Mode
	// Factory builds each node's protocol instance (honest copies
	// included), exactly as sim.New does.
	Factory sim.NodeFactory
	// NewAdversary builds the adversary (Lockstep only; nil means
	// Passive). Real mode runs faulty ids as ordinary nodes.
	NewAdversary func(ctx *adversary.Context) adversary.Adversary
	// ScrambleStart scrambles honest nodes' state before the first beat,
	// from the same stream sim uses.
	ScrambleStart bool
	// Pool selects payload pooling, as sim.Config.Pool.
	Pool sim.PoolMode
	// Links is the fault schedule; honest endpoints are wrapped with it
	// (its Seed should already be set). Nil means an ideal network.
	Links faultnet.Schedule
	// AttemptLossPct and MaxLatency feed the faultnet wrapper in Real
	// mode (per-attempt loss that retries can beat, and random delivery
	// latency). Ignored in Lockstep, which has no retries.
	AttemptLossPct int
	MaxLatency     time.Duration
	// Transport carries the cluster; nil selects an in-process channel
	// transport.
	Transport net.Transport
	// OnBeat observes each honest node after every delivered beat, from
	// that node's goroutine.
	OnBeat   func(id int, beat uint64, p proto.Protocol)
	MaxBeats uint64
	Timing   Timing
	// Metrics, when non-nil, instruments every honest node and wrapped
	// endpoint (per-node labels). Restart re-registers the same series,
	// so counters accumulate across a node's incarnations.
	Metrics *obs.Registry
}

// Cluster is a running set of event-loop nodes (plus the adversary host
// in Lockstep mode) over one transport.
type Cluster struct {
	cfg    ClusterConfig
	tr     net.Transport
	isBad  []bool
	faulty []int
	nodes  []*Node             // by id; nil for adversary-hosted ids
	eps    []*faultnet.Endpoint // honest wrapped endpoints, by id
	adv    *AdvHost
	// lossOverride is the last SetAttemptLossPct value (-1 = none), so
	// restarted endpoints inherit the live setting, not the config one.
	lossOverride atomic.Int32
}

// NewCluster builds the cluster: protocol instances for all n ids from
// the engine's exact per-node streams, endpoints attached and wrapped,
// honest state scrambled in engine order. Call Start to run it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N <= 0 || cfg.F < 0 || cfg.F >= cfg.N {
		return nil, fmt.Errorf("noderuntime: bad cluster n=%d f=%d", cfg.N, cfg.F)
	}
	c := &Cluster{cfg: cfg, tr: cfg.Transport}
	c.lossOverride.Store(-1)
	if c.tr == nil {
		c.tr = net.NewChanTransport(cfg.N, 0)
	}
	c.faulty = append([]int(nil), cfg.Faulty...)
	if len(c.faulty) == 0 {
		for i := cfg.N - cfg.F; i < cfg.N; i++ {
			c.faulty = append(c.faulty, i)
		}
	}
	if len(c.faulty) != cfg.F {
		return nil, fmt.Errorf("noderuntime: %d faulty ids for f=%d", len(c.faulty), cfg.F)
	}
	c.isBad = make([]bool, cfg.N)
	for _, id := range c.faulty {
		if id < 0 || id >= cfg.N {
			return nil, fmt.Errorf("noderuntime: faulty id %d out of range", id)
		}
		c.isBad[id] = true
	}
	hostAdv := cfg.Mode == Lockstep && cfg.F > 0

	pooled, poison := sim.ResolvePoolMode(cfg.Pool)
	pools := make([]*pool.Node, cfg.N)
	instances := make([]proto.Protocol, cfg.N)
	for i := 0; i < cfg.N; i++ {
		env := proto.Env{N: cfg.N, F: cfg.F, ID: i, Rng: sim.NodeRng(cfg.Seed, i)}
		if pooled {
			pools[i] = &pool.Node{}
			pools[i].SetPoison(poison)
			env.Pool = pools[i]
		}
		instances[i] = cfg.Factory(env)
	}
	if cfg.ScrambleStart {
		scram := sim.ScrambleRng(cfg.Seed)
		for i := 0; i < cfg.N; i++ {
			if c.isBad[i] {
				continue
			}
			if s, ok := instances[i].(proto.Scrambler); ok {
				s.Scramble(scram)
			}
		}
	}

	c.nodes = make([]*Node, cfg.N)
	c.eps = make([]*faultnet.Endpoint, cfg.N)
	var advEps []net.Endpoint
	for i := 0; i < cfg.N; i++ {
		raw, err := c.tr.Endpoint(i)
		if err != nil {
			return nil, err
		}
		if hostAdv && c.isBad[i] {
			// Faulty nodes' outgoing links to honest destinations are
			// faulted like anyone else's (the engine does the same in
			// mergeInboxes); only links INTO the adversary are ideal, which
			// the wrapper's Exempt handles on the honest side.
			advEps = append(advEps, c.wrapEndpoint(raw))
			continue
		}
		c.eps[i] = c.wrapEndpoint(raw)
		c.nodes[i] = c.newNode(i, instances[i], pools[i])
	}
	if hostAdv {
		advCtx := &adversary.Context{
			N: cfg.N, F: cfg.F,
			Faulty: append([]int(nil), c.faulty...),
			Rng:    sim.AdversaryRng(cfg.Seed),
			FaultyNode: func(id int) proto.Protocol {
				if id >= 0 && id < cfg.N && c.isBad[id] {
					return instances[id]
				}
				return nil
			},
		}
		var adv adversary.Adversary = adversary.Passive{}
		if cfg.NewAdversary != nil {
			adv = cfg.NewAdversary(advCtx)
		}
		advInst := make([]proto.Protocol, 0, cfg.F)
		advPools := make([]*pool.Node, 0, cfg.F)
		for _, id := range c.faulty {
			advInst = append(advInst, instances[id])
			advPools = append(advPools, pools[id])
		}
		c.adv = NewAdvHost(AdvHostConfig{
			N: cfg.N, F: cfg.F, FaultyIDs: c.faulty,
			Endpoints: advEps, Instances: advInst, Pools: advPools,
			Adv: adv, MaxBeats: cfg.MaxBeats,
		})
	}
	return c, nil
}

func (c *Cluster) wrapEndpoint(raw net.Endpoint) *faultnet.Endpoint {
	wc := faultnet.WrapConfig{AttemptSeed: uint64(c.cfg.Seed)}
	if c.cfg.Metrics != nil {
		wc.Metrics = faultnet.NewEndpointMetrics(c.cfg.Metrics, raw.ID())
	}
	if c.cfg.Mode == Lockstep {
		// Ideal adversary channels, unfaultable markers: the engine's
		// assumptions, so the oracle comparison holds.
		wc.Exempt = c.isBad
	} else {
		wc.FaultMarkers = true
		wc.AttemptLossPct = c.cfg.AttemptLossPct
		wc.MaxLatency = c.cfg.MaxLatency
	}
	return faultnet.Wrap(raw, c.cfg.Links, wc)
}

func (c *Cluster) newNode(id int, inst proto.Protocol, pl *pool.Node) *Node {
	var onBeat func(uint64, proto.Protocol)
	if c.cfg.OnBeat != nil {
		cb := c.cfg.OnBeat
		onBeat = func(beat uint64, p proto.Protocol) { cb(id, beat, p) }
	}
	faulty := append([]bool(nil), c.isBad...)
	return NewNode(NodeConfig{
		N: c.cfg.N, F: c.cfg.F, ID: id,
		Faulty: faulty, Mode: c.cfg.Mode,
		Endpoint: c.eps[id], Links: c.cfg.Links,
		Protocol: inst, Pool: pl,
		OnBeat: onBeat, MaxBeats: c.cfg.MaxBeats,
		Timing: c.cfg.Timing, RetrySeed: c.cfg.Seed,
		Metrics: NewNodeMetrics(c.cfg.Metrics, id),
	})
}

// Start launches every node (and the adversary host).
func (c *Cluster) Start() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Start()
		}
	}
	if c.adv != nil {
		c.adv.Start()
	}
}

// Stop asks everything to exit and joins it.
func (c *Cluster) Stop() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Stop()
		}
	}
	if c.adv != nil {
		c.adv.Stop()
	}
	c.Wait()
	for _, ep := range c.eps {
		if ep != nil {
			ep.Close()
		}
	}
	c.tr.Close()
}

// Wait joins every loop; with MaxBeats set this is the natural way to
// let a bounded run finish.
func (c *Cluster) Wait() {
	for _, nd := range c.nodes {
		if nd != nil {
			nd.Wait()
		}
	}
	if c.adv != nil {
		c.adv.Wait()
	}
}

// Node returns node id's event loop (nil for adversary-hosted ids).
func (c *Cluster) Node(id int) *Node { return c.nodes[id] }

// HonestIDs returns the non-faulty ids in ascending order.
func (c *Cluster) HonestIDs() []int {
	out := make([]int, 0, c.cfg.N-c.cfg.F)
	for i := 0; i < c.cfg.N; i++ {
		if !c.isBad[i] {
			out = append(out, i)
		}
	}
	return out
}

// Stats sums the injected-fault counters across honest endpoints.
func (c *Cluster) Stats() faultnet.Stats {
	var s faultnet.Stats
	for _, ep := range c.eps {
		if ep == nil {
			continue
		}
		st := ep.Stats()
		s.Dropped += st.Dropped
		s.Duplicated += st.Duplicated
		s.Delayed += st.Delayed
		s.AttemptLost += st.AttemptLost
	}
	return s
}

// SetAttemptLossPct retargets every honest endpoint's per-attempt loss
// rate live — the soak harness's loss lever. Safe mid-run.
func (c *Cluster) SetAttemptLossPct(pct int) {
	c.lossOverride.Store(int32(pct))
	for _, ep := range c.eps {
		if ep != nil {
			ep.SetAttemptLossPct(pct)
		}
	}
}

// Crash kills node id mid-run (Real mode): its loop stops and its
// endpoint detaches, so in-flight traffic to it is dropped like any
// crashed process's.
func (c *Cluster) Crash(id int) error {
	nd := c.nodes[id]
	if nd == nil {
		return fmt.Errorf("noderuntime: node %d is adversary-hosted", id)
	}
	nd.Stop()
	nd.Wait()
	return c.eps[id].Close()
}

// Restart revives a crashed node with a fresh, scrambled protocol
// instance — a rebooted process recovering arbitrary state, which is
// precisely the self-stabilization setting. The node restarts at beat
// zero and catches up to the quorum via the beat jump.
func (c *Cluster) Restart(id int) error {
	if c.nodes[id] == nil {
		return fmt.Errorf("noderuntime: node %d is adversary-hosted", id)
	}
	raw, err := c.tr.Endpoint(id)
	if err != nil {
		return err
	}
	c.eps[id] = c.wrapEndpoint(raw)
	if pct := c.lossOverride.Load(); pct >= 0 {
		c.eps[id].SetAttemptLossPct(int(pct))
	}
	pooled, poison := sim.ResolvePoolMode(c.cfg.Pool)
	var pl *pool.Node
	env := proto.Env{N: c.cfg.N, F: c.cfg.F, ID: id, Rng: sim.NodeRng(c.cfg.Seed^0x517cc1b7, id)}
	if pooled {
		pl = &pool.Node{}
		pl.SetPoison(poison)
		env.Pool = pl
	}
	inst := c.cfg.Factory(env)
	if s, ok := inst.(proto.Scrambler); ok {
		s.Scramble(sim.ScrambleRng(c.cfg.Seed ^ int64(id)<<8))
	}
	c.nodes[id] = c.newNode(id, inst, pl)
	c.nodes[id].Start()
	return nil
}
