package noderuntime

import (
	"sort"
	"sync"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/wire"
)

// MultiAdvHost is AdvHost's multi-tenant counterpart: it owns every
// faulty node's endpoint and, for EACH tenant, that tenant's faulty
// honest-copy instances plus its own adversary instance. The rushing
// barrier is unchanged — honest markers are per transport node, one set
// gating all tenants at once — and inside a beat every tenant's
// adversary acts on its own visible set, exactly as its standalone
// oracle's adversary does. The adversaries' replies leave as batch
// frames: one per (faulty id, honest destination) per beat, stamped
// with each tenant's own global adversary sequence.
type MultiAdvHost struct {
	cfg MultiAdvHostConfig

	cur uint64
	// msgs buffers honest batch frames by send beat (links into the
	// adversary are ideal, so send beat == delivery beat here).
	msgs  map[uint64][]taggedBatch
	marks map[uint64][]map[int]struct{}

	merged chan tagged
	done   chan struct{}
	stop   sync.Once
	wg     sync.WaitGroup
}

// MultiAdvHostConfig wires a MultiAdvHost. Endpoint-indexed slices are
// parallel to FaultyIDs, mirroring sim's intercept ordering.
type MultiAdvHostConfig struct {
	N, F    int
	Tenants int
	// FaultyIDs in engine order. Endpoints is parallel to it.
	FaultyIDs []int
	Endpoints []net.Endpoint
	// Instances[t][k] is tenant t's honest-copy instance for faulty id
	// FaultyIDs[k]; Advs[t] is tenant t's adversary.
	Instances [][]proto.Protocol
	Advs      []adversary.Adversary
	// Pool, when non-nil, is the shared lease pool for all faulty
	// instances' compose payloads, recycled once per beat.
	Pool     *pool.Node
	MaxBeats uint64
}

// taggedBatch is one honest batch frame captured on a faulty endpoint.
type taggedBatch struct {
	badIdx int // which faulty endpoint it arrived on
	frame  wire.Frame
}

// NewMultiAdvHost builds the host; Start launches its loop.
func NewMultiAdvHost(cfg MultiAdvHostConfig) *MultiAdvHost {
	return &MultiAdvHost{
		cfg:   cfg,
		msgs:  make(map[uint64][]taggedBatch),
		marks: make(map[uint64][]map[int]struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the host loop and one forwarder per faulty endpoint.
func (h *MultiAdvHost) Start() {
	h.merged = make(chan tagged, 64)
	for k, ep := range h.cfg.Endpoints {
		h.wg.Add(1)
		go h.forward(k, ep.Recv())
	}
	h.wg.Add(1)
	go h.run()
}

func (h *MultiAdvHost) forward(k int, ch <-chan net.Packet) {
	defer h.wg.Done()
	for {
		select {
		case <-h.done:
			return
		case p, ok := <-ch:
			if !ok {
				return
			}
			select {
			case <-h.done:
				return
			case h.merged <- tagged{k: k, p: p}:
			}
		}
	}
}

// Stop asks the loop to exit; Wait joins it.
func (h *MultiAdvHost) Stop() { h.stop.Do(func() { close(h.done) }) }

// Wait blocks until the loop has exited.
func (h *MultiAdvHost) Wait() { h.wg.Wait() }

func (h *MultiAdvHost) run() {
	defer h.wg.Done()
	defer h.Stop() // a natural MaxBeats exit must release the forwarders too
	isBad := make([]bool, h.cfg.N)
	for _, id := range h.cfg.FaultyIDs {
		isBad[id] = true
	}
	honest := h.cfg.N - h.cfg.F
	T := h.cfg.Tenants
	for h.cfg.MaxBeats == 0 || h.cur < h.cfg.MaxBeats {
		r := h.cur
		// Every tenant's honest-copy defaults (sim's interceptPhase).
		defaults := make([][]adversary.Sends, T)
		for t := 0; t < T; t++ {
			defaults[t] = make([]adversary.Sends, h.cfg.F)
			for k, id := range h.cfg.FaultyIDs {
				defaults[t][k] = adversary.Sends{From: id, Out: h.cfg.Instances[t][k].Compose(r)}
			}
		}
		// Rushing barrier: every honest marker for r, on every endpoint.
		if !h.collect(r, honest, isBad) {
			return
		}
		// Per-tenant act + emit, batched per (faulty id, destination).
		runs := make([][][][]wire.BatchMsg, h.cfg.F) // [k][to][tenant]run
		for k := range runs {
			runs[k] = make([][][]wire.BatchMsg, h.cfg.N)
			for to := range runs[k] {
				runs[k][to] = make([][]wire.BatchMsg, T)
			}
		}
		perDest := make([][][]proto.Recv, T) // [tenant][k]inbox
		for t := 0; t < T; t++ {
			visible, dest := h.visibleSet(r, t)
			perDest[t] = dest
			sends := h.cfg.Advs[t].Act(r, defaults[t], visible)
			h.emit(t, sends, isBad, runs, perDest[t])
		}
		for k := range runs {
			for to := 0; to < h.cfg.N; to++ {
				if isBad[to] {
					continue
				}
				empty := true
				for _, run := range runs[k][to] {
					if len(run) > 0 {
						empty = false
						break
					}
				}
				if empty {
					continue
				}
				data := wire.AppendFrame(nil, wire.Frame{
					Kind: wire.KindBatch, From: h.cfg.FaultyIDs[k], Beat: r, DeliveryBeat: r,
					Payload: wire.AppendBatchPayload(nil, 0, runs[k][to]),
				})
				h.cfg.Endpoints[k].Send(to, data)
			}
		}
		// Markers last: they release the honest nodes into Deliver.
		for k, id := range h.cfg.FaultyIDs {
			m := wire.AppendFrame(nil, wire.Frame{Kind: wire.KindMark, From: id, Beat: r, DeliveryBeat: r})
			for to := 0; to < h.cfg.N; to++ {
				if !isBad[to] {
					h.cfg.Endpoints[k].Send(to, m)
				}
			}
		}
		for t := 0; t < T; t++ {
			for k := range h.cfg.Instances[t] {
				h.cfg.Instances[t][k].Deliver(r, perDest[t][k])
			}
		}
		if h.cfg.Pool != nil {
			h.cfg.Pool.Recycle()
		}
		for t := 0; t < T; t++ {
			for k := range h.cfg.Instances[t] {
				if be, ok := h.cfg.Instances[t][k].(proto.BeatEnder); ok {
					be.EndBeat()
				}
			}
		}
		delete(h.msgs, r)
		delete(h.marks, r)
		h.cur++
	}
}

// collect drains the merged endpoint stream until beat r's honest
// markers are complete on all faulty endpoints, buffering batch frames
// (and early frames for future beats) as it goes.
func (h *MultiAdvHost) collect(r uint64, honest int, isBad []bool) bool {
	complete := func() bool {
		ms := h.marks[r]
		if ms == nil {
			return honest == 0
		}
		for _, m := range ms {
			if len(m) < honest {
				return false
			}
		}
		return true
	}
	for !complete() {
		select {
		case <-h.done:
			return false
		case tp := <-h.merged:
			h.ingest(tp.k, tp.p, isBad)
		}
	}
	return true
}

// ingest buffers one packet from faulty endpoint k.
func (h *MultiAdvHost) ingest(k int, p net.Packet, isBad []bool) {
	f, err := wire.DecodeFrame(p.Data)
	if err != nil || f.From >= h.cfg.N || isBad[f.From] {
		return
	}
	if p.From >= 0 && p.From != f.From {
		return
	}
	if f.Beat < h.cur || f.Beat > h.cur+Window {
		return
	}
	if f.Kind == wire.KindMark {
		ms := h.marks[f.Beat]
		if ms == nil {
			ms = make([]map[int]struct{}, h.cfg.F)
			for i := range ms {
				ms[i] = make(map[int]struct{})
			}
			h.marks[f.Beat] = ms
		}
		ms[k][f.From] = struct{}{}
		return
	}
	if f.Kind != wire.KindBatch {
		return
	}
	f.Payload = append([]byte(nil), f.Payload...)
	h.msgs[f.Beat] = append(h.msgs[f.Beat], taggedBatch{badIdx: k, frame: f})
}

// visibleSet extracts tenant t's slice of beat r's intercepted batches
// into the adversary's visible list — ordered exactly as sim's
// interceptPhase builds it: honest sender ascending, compose seq, then
// faulty destination in faulty-list order — and, sharing the same
// decoded values, each faulty instance's honest inbox prefix.
func (h *MultiAdvHost) visibleSet(r uint64, t int) ([]adversary.Intercept, [][]proto.Recv) {
	var recs []interceptRec
	for _, tb := range h.msgs[r] {
		tb := tb
		wire.DecodeBatchPayload(tb.frame.Payload, h.cfg.Tenants, func(tenant int, seq uint32, msg []byte) {
			if tenant == t {
				recs = append(recs, interceptRec{from: tb.frame.From, seq: seq, badIdx: tb.badIdx, payload: msg})
			}
		})
	}
	sort.SliceStable(recs, func(a, b int) bool {
		if recs[a].from != recs[b].from {
			return recs[a].from < recs[b].from
		}
		if recs[a].seq != recs[b].seq {
			return recs[a].seq < recs[b].seq
		}
		return recs[a].badIdx < recs[b].badIdx
	})
	visible := make([]adversary.Intercept, 0, len(recs))
	perDest := make([][]proto.Recv, h.cfg.F)
	for _, rec := range recs {
		m, err := wire.Decode(rec.payload)
		if err != nil {
			continue
		}
		visible = append(visible, adversary.Intercept{From: rec.from, To: h.cfg.FaultyIDs[rec.badIdx], Msg: m})
		perDest[rec.badIdx] = append(perDest[rec.badIdx], proto.Recv{From: rec.from, Msg: m})
	}
	return visible, perDest
}

// emit routes tenant t's adversary sends: messages toward honest nodes
// are appended to the per-(faulty id, destination) batch runs (stamped
// with the tenant's global adversary sequence, as sim stamps its
// frames), messages toward faulty ids go straight into those instances'
// inboxes.
func (h *MultiAdvHost) emit(t int, sends []adversary.Sends, isBad []bool, runs [][][][]wire.BatchMsg, perDest [][]proto.Recv) {
	epOf := make(map[int]int, h.cfg.F)
	for k, id := range h.cfg.FaultyIDs {
		epOf[id] = k
	}
	advSeq := uint32(0)
	for _, fs := range sends {
		if fs.From < 0 || fs.From >= h.cfg.N || !isBad[fs.From] {
			continue // identity cannot be forged (Definition 2.2)
		}
		k := epOf[fs.From]
		for _, s := range fs.Out {
			seq := advSeq
			advSeq++
			if s.To != proto.Broadcast && (s.To < 0 || s.To >= h.cfg.N) {
				continue
			}
			var payload []byte
			encoded := false
			sendTo := func(to int) {
				if isBad[to] {
					kk := epOf[to]
					perDest[kk] = append(perDest[kk], proto.Recv{From: fs.From, Msg: s.Msg})
					return
				}
				if !encoded {
					var err error
					if payload, err = wire.Encode(s.Msg); err != nil {
						return // unregistered type cannot cross the wire
					}
					encoded = true
				}
				if payload == nil {
					return
				}
				runs[k][to][t] = append(runs[k][to][t], wire.BatchMsg{Seq: seq, Payload: payload})
			}
			if s.To == proto.Broadcast {
				for to := 0; to < h.cfg.N; to++ {
					sendTo(to)
				}
			} else {
				sendTo(s.To)
			}
		}
	}
}
