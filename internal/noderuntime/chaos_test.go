package noderuntime_test

import (
	"sync"
	"testing"
	"time"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/proto"
)

// chaosRecorder collects per-(beat, node) clock readings from OnBeat
// callbacks across goroutines.
type chaosRecorder struct {
	mu    sync.Mutex
	byOne map[uint64]map[int]clockAt
}

func newChaosRecorder() *chaosRecorder {
	return &chaosRecorder{byOne: make(map[uint64]map[int]clockAt)}
}

func (r *chaosRecorder) onBeat(id int, beat uint64, p proto.Protocol) {
	c := readClock(p)
	r.mu.Lock()
	m := r.byOne[beat]
	if m == nil {
		m = make(map[int]clockAt)
		r.byOne[beat] = m
	}
	m[id] = c
	r.mu.Unlock()
}

// agreeStreak returns the longest run of consecutive beats ending by
// maxBeat in which every recorded node (at least quorum many) reports
// the same defined clock.
func (r *chaosRecorder) agreeStreak(maxBeat uint64, quorum int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	best, cur := 0, 0
	for b := uint64(0); b <= maxBeat; b++ {
		m := r.byOne[b]
		agreed := len(m) >= quorum
		var ref clockAt
		first := true
		for _, c := range m {
			if !c.ok {
				agreed = false
				break
			}
			if first {
				ref, first = c, false
			} else if c != ref {
				agreed = false
				break
			}
		}
		if agreed {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// chaosTiming keeps real-mode tests fast: quick retries, short beat
// timeout.
var chaosTiming = noderuntime.Timing{
	BeatTimeout: 250 * time.Millisecond,
	RetryMin:    3 * time.Millisecond,
	RetryMax:    30 * time.Millisecond,
}

// runChaos runs a real-mode cluster to maxBeats and requires a
// convergence streak: the cluster must end synchronized despite the
// faults. The stabilization bound is deliberately loose (the claim is
// "resyncs and stays synced", not a tight constant) but a cluster that
// never re-agrees fails.
func runChaos(t *testing.T, cfg noderuntime.ClusterConfig, maxBeats uint64, wantStreak int) *noderuntime.Cluster {
	t.Helper()
	rec := newChaosRecorder()
	cfg.Factory = core.NewClockSyncProtocol(16, coin.FMFactory{})
	cfg.Mode = noderuntime.Real
	cfg.MaxBeats = maxBeats
	cfg.Timing = chaosTiming
	cfg.OnBeat = rec.onBeat
	cl, err := noderuntime.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Wait()
	cl.Stop()
	quorum := cfg.N - cfg.F
	if got := rec.agreeStreak(maxBeats, quorum); got < wantStreak {
		t.Fatalf("agreement streak %d beats, want >= %d (cluster did not resynchronize; stats %+v)",
			got, wantStreak, cl.Stats())
	}
	return cl
}

// TestChaosChanCluster is the chaos smoke over the in-process
// transport: 4 nodes, scrambled start, 30%% per-attempt loss (retries
// must beat it), inbox reordering, and one partition/heal cycle at
// beats [6,12). Gated on re-agreement within the run.
func TestChaosChanCluster(t *testing.T) {
	cfg := noderuntime.ClusterConfig{
		N: 4, F: 1, Seed: 2026, ScrambleStart: true,
		Links:          schedule(t, "partition+reorder", 55),
		AttemptLossPct: 30,
		MaxLatency:     2 * time.Millisecond,
	}
	cl := runChaos(t, cfg, 60, 8)
	if st := cl.Stats(); st.AttemptLost == 0 || st.Dropped == 0 {
		t.Fatalf("chaos run injected no faults: %+v", st)
	}
}

// TestChaosUDPCluster is the acceptance soak on real sockets: a 4-node
// loopback UDP cluster under seeded 30%% loss, delivery-latency jitter
// (the reorder window), and a partition/heal cycle, required to
// resynchronize within the run.
func TestChaosUDPCluster(t *testing.T) {
	tr, err := net.NewLoopbackUDP(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noderuntime.ClusterConfig{
		N: 4, F: 1, Seed: 31337, ScrambleStart: true,
		Transport:      tr,
		Links:          schedule(t, "partition+reorder", 99),
		AttemptLossPct: 30,
		MaxLatency:     4 * time.Millisecond,
	}
	runChaos(t, cfg, 60, 8)
}

// TestChaosTCPCluster runs the same storm over stream sockets (loss is
// injected above TCP — the transport itself is reliable, the schedule
// is not).
func TestChaosTCPCluster(t *testing.T) {
	tr, err := net.NewLoopbackTCP(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noderuntime.ClusterConfig{
		N: 4, F: 1, Seed: 4242, ScrambleStart: true,
		Transport:      tr,
		Links:          schedule(t, "partition+reorder", 12),
		AttemptLossPct: 30,
	}
	runChaos(t, cfg, 60, 8)
}

// TestCrashRestartResyncs kills a node mid-run and revives it with
// scrambled state: the survivor quorum keeps advancing, the reborn node
// catches up via the beat jump, and the cluster re-agrees — the
// self-stabilization claim exercised end to end. F=1 matters: the
// quorum beat is the (n-f)-th highest peer position, so with f=0 the
// reborn node's own lag would veto its own jump forever.
func TestCrashRestartResyncs(t *testing.T) {
	rec := newChaosRecorder()
	reached := make(chan uint64, 256)
	cfg := noderuntime.ClusterConfig{
		N: 4, F: 1, Seed: 808, ScrambleStart: true,
		Mode:   noderuntime.Real,
		Timing: chaosTiming,
		OnBeat: func(id int, beat uint64, p proto.Protocol) {
			rec.onBeat(id, beat, p)
			if id == 0 {
				select {
				case reached <- beat:
				default:
				}
			}
		},
	}
	cfg.Factory = core.NewClockSyncProtocol(16, coin.FMFactory{})
	cl, err := noderuntime.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	defer cl.Stop()

	waitBeat := func(b uint64) {
		deadline := time.After(30 * time.Second)
		for {
			select {
			case got := <-reached:
				if got >= b {
					return
				}
			case <-deadline:
				t.Fatalf("node 0 never reached beat %d", b)
			}
		}
	}
	waitBeat(10)
	if err := cl.Crash(3); err != nil {
		t.Fatal(err)
	}
	waitBeat(20)
	if err := cl.Restart(3); err != nil {
		t.Fatal(err)
	}
	waitBeat(60)
	cl.Stop()

	// After the restart settles, the reborn node must be back in
	// agreement with the others.
	rec.mu.Lock()
	var last uint64
	for b, m := range rec.byOne {
		if _, ok := m[3]; ok && b > last {
			last = b
		}
	}
	rec.mu.Unlock()
	if last < 30 {
		t.Fatalf("restarted node never caught up (last delivered beat %d)", last)
	}
	if got := rec.agreeStreak(last, 4); got < 6 {
		t.Fatalf("no post-restart agreement streak (best %d)", got)
	}
}
