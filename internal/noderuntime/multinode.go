package noderuntime

import (
	"sort"
	"sync"

	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/wire"
)

// MultiNode is one event-loop node hosting T tenants' protocol
// instances behind a single endpoint: the networked face of the
// multi-tenant engine (package multi). Every beat it composes all T
// tenants and ships their traffic as ONE KindBatch frame per
// destination — frames/beat and syscalls/beat are O(links), independent
// of the tenant count — plus the usual per-node marker. On the receive
// side a sender's batch expands into per-tenant inboxes ordered exactly
// as the lockstep engine orders them, so each tenant's trajectory is
// byte-identical to a standalone single-tenant run (the multi-tenant
// differential harness pins this per tenant, fault schedule and
// adversary included).
//
// MultiNode runs Lockstep only: marker-gated beats from all n peers.
// Real-mode multi-tenancy would need per-tenant completeness accounting
// that no engine oracle can be checked against; hosting tenants on Real
// nodes individually remains available via the ordinary Cluster.
type MultiNode struct {
	cfg MultiNodeConfig
	cur uint64
	// recs buffers batch frames by delivery beat; payloads alias the
	// transport packets, which are never reused.
	recs   map[uint64][]wire.Frame
	dedup  map[dedupKey]struct{}
	marks  map[uint64]map[int]struct{}
	counts map[uint64]map[int]int

	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup
}

// MultiNodeConfig describes one multi-tenant runtime node.
type MultiNodeConfig struct {
	N, F int
	ID   int
	// Faulty marks the adversary's ids (replay-determinism device, as in
	// NodeConfig).
	Faulty []bool
	// Endpoint carries ALL tenants' traffic for this node id.
	Endpoint net.Endpoint
	// Links is consulted for per-tenant inbox reordering (Shuffle);
	// drop/dup/delay are injected sender-side by the faultnet wrapper,
	// whose per-(beat,from,to) verdicts hit a batch frame exactly as they
	// would every tenant's individual frames.
	Links faultnet.Schedule
	// Protocols[t] is tenant t's instance for this node id.
	Protocols []proto.Protocol
	// Pool, when non-nil, is the shared lease pool for all tenants'
	// compose payloads (recycled at the encode boundary, once per beat).
	Pool *pool.Node
	// OnBeat, when set, observes each tenant after each delivered beat,
	// from the node's goroutine.
	OnBeat func(tenant int, beat uint64, p proto.Protocol)
	// MaxBeats stops the loop after that many beats (0 = run until Stop).
	MaxBeats uint64
	// Metrics, when non-nil, instruments the loop; nil costs one branch.
	Metrics *NodeMetrics
}

// NewMultiNode builds a node; Start launches its loop.
func NewMultiNode(cfg MultiNodeConfig) *MultiNode {
	return &MultiNode{
		cfg:    cfg,
		recs:   make(map[uint64][]wire.Frame),
		dedup:  make(map[dedupKey]struct{}),
		marks:  make(map[uint64]map[int]struct{}),
		counts: make(map[uint64]map[int]int),
		done:   make(chan struct{}),
	}
}

// Beat returns the number of completed beats (racy while running; read
// it from OnBeat or after Wait).
func (nd *MultiNode) Beat() uint64 { return nd.cur }

// Tenants returns T.
func (nd *MultiNode) Tenants() int { return len(nd.cfg.Protocols) }

// Protocol returns tenant t's instance (same caveat as Beat).
func (nd *MultiNode) Protocol(t int) proto.Protocol { return nd.cfg.Protocols[t] }

// Start launches the event loop.
func (nd *MultiNode) Start() {
	nd.wg.Add(1)
	go nd.run()
}

// Stop asks the loop to exit; Wait joins it.
func (nd *MultiNode) Stop() { nd.stop.Do(func() { close(nd.done) }) }

// Wait blocks until the loop has exited.
func (nd *MultiNode) Wait() { nd.wg.Wait() }

func (nd *MultiNode) run() {
	defer nd.wg.Done()
	for nd.cfg.MaxBeats == 0 || nd.cur < nd.cfg.MaxBeats {
		r := nd.cur
		nd.sendBeat(r)
		if !nd.await(r) {
			return
		}
		nd.deliverBeat(r)
		nd.gc(r)
		nd.cur++
		nd.cfg.Metrics.beatDone()
	}
}

// sendBeat composes every tenant, gathers the encoded messages into one
// batch per destination, recycles the pooled compose payloads (the
// batch frames own their bytes now), and transmits batches then the
// beat-complete marker. The per-message Seq is the tenant-local compose
// index — the same value the standalone runtime stamps on its frames.
func (nd *MultiNode) sendBeat(r uint64) {
	n, T := nd.cfg.N, len(nd.cfg.Protocols)
	runs := make([][][]wire.BatchMsg, n)
	for to := range runs {
		runs[to] = make([][]wire.BatchMsg, T)
	}
	for t, p := range nd.cfg.Protocols {
		for seq, s := range p.Compose(r) {
			if s.To != proto.Broadcast && (s.To < 0 || s.To >= n) {
				continue // malformed destination: dropped, as in sim
			}
			payload, err := wire.Encode(s.Msg)
			if err != nil {
				continue // unregistered type: cannot cross a wire
			}
			bm := wire.BatchMsg{Seq: uint32(seq), Payload: payload}
			if s.To == proto.Broadcast {
				for to := range runs {
					runs[to][t] = append(runs[to][t], bm)
				}
			} else {
				runs[s.To][t] = append(runs[s.To][t], bm)
			}
		}
	}
	if nd.cfg.Pool != nil {
		nd.cfg.Pool.Recycle()
	}
	for to := 0; to < n; to++ {
		empty := true
		for _, run := range runs[to] {
			if len(run) > 0 {
				empty = false
				break
			}
		}
		if !empty {
			data := wire.AppendFrame(nil, wire.Frame{
				Kind: wire.KindBatch, From: nd.cfg.ID, Beat: r, DeliveryBeat: r,
				Payload: wire.AppendBatchPayload(nil, 0, runs[to]),
			})
			nd.cfg.Endpoint.Send(to, data)
			nd.cfg.Metrics.frameSent(kindBatched)
		}
		mark := wire.AppendFrame(nil, wire.Frame{
			Kind: wire.KindMark, From: nd.cfg.ID, Beat: r, DeliveryBeat: r,
		})
		nd.cfg.Endpoint.Send(to, mark)
		nd.cfg.Metrics.frameSent(kindMarker)
	}
}

// await blocks until every peer's beat-r marker has arrived (or Stop).
func (nd *MultiNode) await(r uint64) bool {
	for len(nd.marks[r]) < nd.cfg.N {
		select {
		case <-nd.done:
			return false
		case p, ok := <-nd.cfg.Endpoint.Recv():
			if !ok {
				return false
			}
			nd.ingest(p)
		}
	}
	return true
}

// ingest buffers one received packet: batch frames and markers only (a
// multi cluster speaks batches; stray KindMsg frames are noise here).
func (nd *MultiNode) ingest(p net.Packet) {
	f, err := wire.DecodeFrame(p.Data)
	if err != nil {
		return
	}
	if f.From >= nd.cfg.N {
		return
	}
	if p.From >= 0 && p.From != f.From {
		return
	}
	if f.DeliveryBeat < nd.cur || f.DeliveryBeat > nd.cur+Window {
		return
	}
	if f.Kind == wire.KindMark {
		m := nd.marks[f.Beat]
		if m == nil {
			m = make(map[int]struct{})
			nd.marks[f.Beat] = m
		}
		m[f.From] = struct{}{}
		return
	}
	if f.Kind != wire.KindBatch {
		return
	}
	key := dedupKey{from: f.From, beat: f.Beat, seq: f.Seq, copy: f.Copy}
	if _, dup := nd.dedup[key]; dup {
		return
	}
	c := nd.counts[f.DeliveryBeat]
	if c == nil {
		c = make(map[int]int)
		nd.counts[f.DeliveryBeat] = c
	}
	if c[f.From] >= maxPerSender {
		return // flood
	}
	c[f.From]++
	nd.dedup[key] = struct{}{}
	nd.recs[f.DeliveryBeat] = append(nd.recs[f.DeliveryBeat], f)
}

// batchMsgRec is one message extracted from a batch frame, carrying the
// frame-level ordering metadata every message of the batch shares.
type batchMsgRec struct {
	from    int
	beat    uint64
	seq     uint32
	copy    uint8
	payload []byte
}

// deliverBeat expands beat r's buffered batch frames into per-tenant
// inboxes in the canonical order shared with sim.Engine and the
// single-tenant runtime — late arrivals first by (send beat,
// honest-before-faulty, sender, seq), then current-beat honest senders
// by (sender, seq), then the adversary's by its global seq — applies
// the schedule's reorder permutation per tenant, and delivers each
// tenant.
func (nd *MultiNode) deliverBeat(r uint64) {
	T := len(nd.cfg.Protocols)
	perT := make([][]batchMsgRec, T)
	for _, f := range nd.recs[r] {
		frame := f
		wire.DecodeBatchPayload(frame.Payload, T, func(t int, seq uint32, msg []byte) {
			perT[t] = append(perT[t], batchMsgRec{
				from: frame.From, beat: frame.Beat, seq: seq, copy: frame.Copy, payload: msg,
			})
		}) // malformed batch: hardened decode delivers nothing from it
	}
	for t := 0; t < T; t++ {
		recs := perT[t]
		sort.SliceStable(recs, func(a, b int) bool {
			x, y := recs[a], recs[b]
			if x.beat != y.beat {
				return x.beat < y.beat
			}
			xb, yb := nd.isBad(x.from), nd.isBad(y.from)
			if xb != yb {
				return yb
			}
			if !xb && x.from != y.from {
				return x.from < y.from
			}
			if x.seq != y.seq {
				return x.seq < y.seq
			}
			return x.copy < y.copy
		})
		inbox := make([]proto.Recv, 0, len(recs))
		for _, rec := range recs {
			m, err := wire.Decode(rec.payload)
			if err != nil {
				continue // Byzantine garbage: hardened decode drops it
			}
			inbox = append(inbox, proto.Recv{From: rec.from, Msg: m})
		}
		if nd.cfg.Links != nil && len(inbox) > 1 {
			if seed, ok := nd.cfg.Links.Shuffle(r, nd.cfg.ID); ok {
				order := faultnet.ShuffleOrder(seed, len(inbox))
				tmp := make([]proto.Recv, len(order))
				for k, j := range order {
					tmp[k] = inbox[j]
				}
				inbox = tmp
			}
		}
		p := nd.cfg.Protocols[t]
		p.Deliver(r, inbox)
		if nd.cfg.OnBeat != nil {
			nd.cfg.OnBeat(t, r, p)
		}
		if be, ok := p.(proto.BeatEnder); ok {
			be.EndBeat() // the beat's messages are dead: park per-beat slabs
		}
	}
}

func (nd *MultiNode) isBad(i int) bool {
	return i >= 0 && i < len(nd.cfg.Faulty) && nd.cfg.Faulty[i]
}

// gc drops beat b's buffers once it is delivered.
func (nd *MultiNode) gc(b uint64) {
	for _, f := range nd.recs[b] {
		delete(nd.dedup, dedupKey{from: f.From, beat: f.Beat, seq: f.Seq, copy: f.Copy})
	}
	delete(nd.recs, b)
	delete(nd.marks, b)
	delete(nd.counts, b)
}
