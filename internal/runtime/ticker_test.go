package runtime_test

import (
	"context"
	"testing"
	"time"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/runtime"
)

func TestRunTickerExecutesBeats(t *testing.T) {
	c, err := runtime.New(runtime.Config{
		N: 4, F: 1, Seed: 1,
		NewProtocol: core.NewClockSyncProtocol(16, coin.RabinFactory{Seed: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var snaps []runtime.Snapshot
	err = c.RunTicker(context.Background(), time.Millisecond, 10, func(s runtime.Snapshot) {
		snaps = append(snaps, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 10 {
		t.Fatalf("observed %d beats, want 10", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Beat != snaps[i-1].Beat+1 {
			t.Fatalf("beats not consecutive: %d then %d", snaps[i-1].Beat, snaps[i].Beat)
		}
	}
}

func TestRunTickerHonorsCancellation(t *testing.T) {
	c, err := runtime.New(runtime.Config{
		N: 4, F: 0, Seed: 2,
		NewProtocol: core.NewTwoClockProtocol(coin.LocalFactory{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	beats := 0
	done := make(chan error, 1)
	go func() {
		done <- c.RunTicker(ctx, time.Millisecond, 0, func(runtime.Snapshot) { beats++ })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RunTicker did not stop after cancellation")
	}
	if beats == 0 {
		t.Fatal("no beats executed before cancellation")
	}
}
