package runtime

import (
	"context"
	"time"
)

// RunTicker drives the cluster from a real-time beat source: one beat per
// interval, until the context is cancelled or beats have elapsed
// (beats <= 0 means run until cancellation). Each snapshot is passed to
// observe (which may be nil). The paper's model requires every beat's
// messages to be processed before the next beat fires; Step guarantees
// that internally, so the interval only has to cover Step's compute time
// — if a Step overruns the interval, the next beat fires immediately
// afterwards, preserving correctness (beats are logical, not wall-clock,
// to the protocol).
func (c *Cluster) RunTicker(ctx context.Context, interval time.Duration, beats int, observe func(Snapshot)) error {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for done := 0; beats <= 0 || done < beats; done++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		snap, err := c.Step()
		if err != nil {
			return err
		}
		if observe != nil {
			observe(snap)
		}
	}
	return nil
}
