// Package runtime executes the protocols on real goroutines: every node
// runs in its own goroutine and all traffic crosses the in-process
// network as wire-encoded bytes, exactly as it would leave a NIC. A
// coordinator implements the paper's global beat system: it signals a
// beat, collects every node's outgoing messages (the synchrony barrier —
// "every message sent at beat r arrives before beat r+1"), lets the
// configured Byzantine adversary rewrite the faulty nodes' traffic, then
// delivers all inboxes and waits for processing to finish.
//
// The lockstep simulator (package sim) is faster for experiments; this
// runtime exists to prove the protocols run correctly as concurrent
// processes over a serialized transport, and it is what the examples use.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/wire"
)

// Config describes a cluster.
type Config struct {
	// N is the cluster size; F of the nodes (the last F ids) are
	// controlled by the adversary.
	N, F int
	// Seed drives all node and adversary randomness deterministically.
	Seed int64
	// NewProtocol builds each node's protocol instance.
	NewProtocol func(env proto.Env) proto.Protocol
	// NewAdversary builds the Byzantine adversary; nil means the faulty
	// nodes follow the protocol.
	NewAdversary func(ctx *adversary.Context) adversary.Adversary
	// ScrambleStart starts every honest node from an arbitrary state.
	ScrambleStart bool
}

// ClockReading is one node's clock at the end of a beat.
type ClockReading struct {
	Value uint64
	OK    bool
}

// Snapshot reports the cluster state after a beat.
type Snapshot struct {
	Beat   uint64
	Clocks []ClockReading // indexed by node id; faulty nodes' honest copies included
}

// SyncedHonest reports whether all honest (non-adversary) clocks agree.
func (s Snapshot) SyncedHonest(f int) (uint64, bool) {
	honest := s.Clocks[:len(s.Clocks)-f]
	if len(honest) == 0 {
		return 0, false
	}
	v := honest[0].Value
	for _, c := range honest {
		if !c.OK || c.Value != v {
			return 0, false
		}
	}
	return v, true
}

// envelopeBytes is one encoded message in flight: an offset window into
// the cluster's transport arena (offsets, not slices, because the arena
// may reallocate while messages are still being appended).
type envelopeBytes struct {
	from, to   int
	start, end int
}

type nodeCmd struct {
	kind  byte // 'c' compose, 'd' deliver, 's' scramble, 'q' quit
	beat  uint64
	inbox []proto.Recv
	seed  int64
}

type nodeReply struct {
	sends []proto.Send
	clock ClockReading
	err   error
}

type node struct {
	id    int
	prot  proto.Protocol
	cmds  chan nodeCmd
	reply chan nodeReply
}

// Cluster is a running set of node goroutines. Create with New, drive
// with Step or Run, and always Close (it joins all goroutines).
type Cluster struct {
	cfg    Config
	nodes  []*node
	adv    adversary.Adversary
	advCtx *adversary.Context
	beat   uint64
	wg     sync.WaitGroup
	closed bool

	// Per-beat transport scratch, reused across Steps: every message is
	// wire-encoded by appending into one arena (decoding copies all data
	// out into fresh Go values, so nothing retains arena bytes past the
	// beat).
	arena  []byte
	flight []envelopeBytes
}

// New builds and starts the cluster goroutines.
func New(cfg Config) (*Cluster, error) {
	if cfg.N <= 0 || cfg.F < 0 || cfg.F >= cfg.N {
		return nil, fmt.Errorf("runtime: bad config n=%d f=%d", cfg.N, cfg.F)
	}
	if cfg.NewProtocol == nil {
		return nil, errors.New("runtime: NewProtocol is required")
	}
	c := &Cluster{cfg: cfg}
	var faulty []int
	for i := cfg.N - cfg.F; i < cfg.N; i++ {
		faulty = append(faulty, i)
	}
	c.advCtx = &adversary.Context{
		N: cfg.N, F: cfg.F, Faulty: faulty,
		Rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5adbeef)),
	}
	if cfg.NewAdversary != nil {
		c.adv = cfg.NewAdversary(c.advCtx)
	} else {
		c.adv = adversary.Passive{}
	}
	for i := 0; i < cfg.N; i++ {
		env := proto.Env{
			N: cfg.N, F: cfg.F, ID: i,
			Rng: rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
		}
		nd := &node{
			id:    i,
			prot:  cfg.NewProtocol(env),
			cmds:  make(chan nodeCmd),
			reply: make(chan nodeReply),
		}
		c.nodes = append(c.nodes, nd)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			nd.loop()
		}()
	}
	if cfg.ScrambleStart {
		for i, nd := range c.nodes {
			if i >= cfg.N-cfg.F {
				break
			}
			nd.cmds <- nodeCmd{kind: 's', seed: cfg.Seed ^ int64(i)<<20}
			<-nd.reply
		}
	}
	return c, nil
}

// loop is the node goroutine: it owns the protocol instance exclusively,
// so no locking is needed on protocol state.
func (nd *node) loop() {
	for cmd := range nd.cmds {
		switch cmd.kind {
		case 'c':
			nd.reply <- nodeReply{sends: nd.prot.Compose(cmd.beat)}
		case 'd':
			nd.prot.Deliver(cmd.beat, cmd.inbox)
			r := nodeReply{}
			if cr, ok := nd.prot.(proto.ClockReader); ok {
				r.clock.Value, r.clock.OK = cr.Clock()
			}
			nd.reply <- r
		case 's':
			if s, ok := nd.prot.(proto.Scrambler); ok {
				s.Scramble(rand.New(rand.NewSource(cmd.seed)))
			}
			nd.reply <- nodeReply{}
		case 'q':
			nd.reply <- nodeReply{}
			return
		}
	}
}

// Step executes one beat across all goroutines and returns the resulting
// snapshot.
func (c *Cluster) Step() (Snapshot, error) {
	if c.closed {
		return Snapshot{}, errors.New("runtime: cluster closed")
	}
	n := c.cfg.N
	beat := c.beat

	// Compose phase: all nodes concurrently.
	for _, nd := range c.nodes {
		nd.cmds <- nodeCmd{kind: 'c', beat: beat}
	}
	composed := make([][]proto.Send, n)
	for i, nd := range c.nodes {
		composed[i] = (<-nd.reply).sends
	}

	// Serialize everything onto the in-process wire, appending into the
	// reused transport arena (a broadcast is encoded once and its window
	// shared by all recipients). Unencodable messages are a programming
	// error worth surfacing, not dropping.
	c.arena = c.arena[:0]
	flight := c.flight[:0]
	encodeOut := func(from int, sends []proto.Send) error {
		for _, s := range sends {
			start := len(c.arena)
			var err error
			c.arena, err = wire.AppendTo(c.arena, s.Msg)
			if err != nil {
				c.arena = c.arena[:start]
				return fmt.Errorf("runtime: node %d: %w", from, err)
			}
			end := len(c.arena)
			if s.To == proto.Broadcast {
				for to := 0; to < n; to++ {
					flight = append(flight, envelopeBytes{from: from, to: to, start: start, end: end})
				}
			} else if s.To >= 0 && s.To < n {
				flight = append(flight, envelopeBytes{from: from, to: s.To, start: start, end: end})
			}
		}
		return nil
	}
	for i := 0; i < n-c.cfg.F; i++ {
		if err := encodeOut(i, composed[i]); err != nil {
			return Snapshot{}, err
		}
	}

	// Adversary phase: rushing view of honest traffic addressed to the
	// faulty ids, then the faulty nodes' actual sends.
	var visible []adversary.Intercept
	for _, eb := range flight {
		if eb.to >= n-c.cfg.F {
			if m, err := wire.Decode(c.arena[eb.start:eb.end]); err == nil {
				visible = append(visible, adversary.Intercept{From: eb.from, To: eb.to, Msg: m})
			}
		}
	}
	defaults := make([]adversary.Sends, c.cfg.F)
	for k, id := range c.advCtx.Faulty {
		defaults[k] = adversary.Sends{From: id, Out: composed[id]}
	}
	for _, fs := range c.adv.Act(beat, defaults, visible) {
		if fs.From < n-c.cfg.F || fs.From >= n {
			continue // identity cannot be forged
		}
		if err := encodeOut(fs.From, fs.Out); err != nil {
			return Snapshot{}, err
		}
	}

	// Deliver phase: decode per recipient (drop undecodable bytes — only
	// an adversary could produce them) and hand over the inboxes.
	inboxes := make([][]proto.Recv, n)
	for _, eb := range flight {
		m, err := wire.Decode(c.arena[eb.start:eb.end])
		if err != nil {
			continue
		}
		inboxes[eb.to] = append(inboxes[eb.to], proto.Recv{From: eb.from, Msg: m})
	}
	c.flight = flight[:0]
	for i, nd := range c.nodes {
		nd.cmds <- nodeCmd{kind: 'd', beat: beat, inbox: inboxes[i]}
	}
	snap := Snapshot{Beat: beat, Clocks: make([]ClockReading, n)}
	for i, nd := range c.nodes {
		snap.Clocks[i] = (<-nd.reply).clock
	}
	c.beat++
	return snap, nil
}

// Run executes the given number of beats, returning the final snapshot.
func (c *Cluster) Run(beats int) (Snapshot, error) {
	var snap Snapshot
	var err error
	for i := 0; i < beats; i++ {
		snap, err = c.Step()
		if err != nil {
			return snap, err
		}
	}
	return snap, nil
}

// ScrambleHonest injects a transient fault into every honest node.
func (c *Cluster) ScrambleHonest(seed int64) {
	for i := 0; i < c.cfg.N-c.cfg.F; i++ {
		c.nodes[i].cmds <- nodeCmd{kind: 's', seed: seed + int64(i)}
		<-c.nodes[i].reply
	}
}

// Close stops all node goroutines and waits for them to exit. It is safe
// to call once; the cluster is unusable afterwards.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, nd := range c.nodes {
		nd.cmds <- nodeCmd{kind: 'q'}
		<-nd.reply
		close(nd.cmds)
	}
	c.wg.Wait()
}
