package runtime_test

import (
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/runtime"
)

func TestClusterClockSyncConverges(t *testing.T) {
	c, err := runtime.New(runtime.Config{
		N: 4, F: 1, Seed: 1,
		NewProtocol:   core.NewClockSyncProtocol(16, coin.FMFactory{}),
		ScrambleStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	synced := 0
	var prev uint64
	havePrev := false
	for b := 0; b < 600 && synced < 16; b++ {
		snap, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		v, ok := snap.SyncedHonest(1)
		if ok && (!havePrev || v == (prev+1)%16) {
			synced++
		} else {
			synced = 0
		}
		prev, havePrev = v, ok
	}
	if synced < 16 {
		t.Fatal("clock-sync did not converge on the goroutine runtime")
	}
}

func TestClusterSurvivesScramble(t *testing.T) {
	c, err := runtime.New(runtime.Config{
		N: 4, F: 1, Seed: 2,
		NewProtocol: core.NewTwoClockProtocol(coin.RabinFactory{Seed: 3}),
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
			return adversary.Silent{}
		},
		ScrambleStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSync := func() bool {
		streak := 0
		var prev uint64
		havePrev := false
		for b := 0; b < 300; b++ {
			snap, err := c.Step()
			if err != nil {
				t.Fatal(err)
			}
			v, ok := snap.SyncedHonest(1)
			if ok && (!havePrev || v == (prev+1)%2) {
				streak++
				if streak >= 10 {
					return true
				}
			} else {
				streak = 0
			}
			prev, havePrev = v, ok
		}
		return false
	}
	if !waitSync() {
		t.Fatal("no initial convergence")
	}
	c.ScrambleHonest(99)
	if !waitSync() {
		t.Fatal("no re-convergence after scramble")
	}
}

func TestClusterAgreesWithLockstepEngine(t *testing.T) {
	// Differential test: the goroutine runtime and the lockstep engine
	// implement the same model, so honest-node convergence behaviour must
	// match when fed identical protocols (not bit-identical runs — node
	// RNG seeding differs — but both must converge and hold closure).
	c, err := runtime.New(runtime.Config{
		N: 7, F: 2, Seed: 5,
		NewProtocol:   core.NewClockSyncProtocol(8, coin.RabinFactory{Seed: 5}),
		ScrambleStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var prev uint64
	havePrev := false
	streak, converged := 0, false
	for b := 0; b < 500; b++ {
		snap, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		v, ok := snap.SyncedHonest(2)
		if ok && (!havePrev || v == (prev+1)%8) {
			streak++
		} else {
			if converged {
				t.Fatalf("closure violated at beat %d after convergence", b)
			}
			streak = 0
		}
		if streak >= 24 {
			converged = true
		}
		prev, havePrev = v, ok
	}
	if !converged {
		t.Fatal("no convergence on runtime")
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	if _, err := runtime.New(runtime.Config{N: 0, F: 0}); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := runtime.New(runtime.Config{N: 3, F: 3, NewProtocol: core.NewTwoClockProtocol(coin.LocalFactory{})}); err == nil {
		t.Fatal("accepted f=n")
	}
	if _, err := runtime.New(runtime.Config{N: 3, F: 0}); err == nil {
		t.Fatal("accepted nil protocol factory")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c, err := runtime.New(runtime.Config{
		N: 4, F: 0, Seed: 9,
		NewProtocol: func(env proto.Env) proto.Protocol { return core.NewTwoClock(env, coin.LocalFactory{}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // must not panic or deadlock
	if _, err := c.Step(); err == nil {
		t.Fatal("step after close succeeded")
	}
}
