package faultnet

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssbyzclock/internal/net"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/wire"
)

// WrapConfig tunes a faulted endpoint.
type WrapConfig struct {
	// FaultMarkers subjects beat markers to the schedule too. Lockstep
	// clusters leave this false — markers are the beat barrier there, and
	// the deterministic engine has no analogue of losing one — while real
	// clusters set it true and lean on retry and quorum advancement.
	FaultMarkers bool
	// Exempt[to] skips faults on links into node to. Callers exempt the
	// adversary's nodes: the rushing adversary owns ideal channels.
	Exempt []bool
	// AttemptLossPct drops each physical transmission independently at
	// random (seeded by AttemptSeed) on top of the schedule. Unlike
	// schedule loss it is per-attempt, not per-message, so retransmission
	// actually helps — the knob that makes real-mode retry meaningful.
	// Toggle it live with Endpoint.SetAttemptLossPct (the soak harness's
	// fault lever).
	AttemptLossPct int
	AttemptSeed    uint64
	// MaxLatency adds a uniform random in-process delivery latency to
	// each send, perturbing real-mode arrival order without whole-beat
	// delays.
	MaxLatency time.Duration
	// Metrics, when non-nil, routes the injected-fault counters into an
	// observability registry instead of endpoint-private counters (build
	// one with NewEndpointMetrics; Stats reads the same counters either
	// way).
	Metrics *Metrics
}

// Stats is a point-in-time reading of one endpoint's injected-fault
// counters.
type Stats struct {
	Dropped, Duplicated, Delayed, AttemptLost uint64
}

// Metrics is the injected-fault counter bundle. The counters are
// obs.Counters — atomic, shared-registry-capable — whether or not a
// registry is attached, so endpoint goroutines and Stats readers never
// race (the concurrent-senders regression test pins this under -race).
type Metrics struct {
	Dropped, Duplicated, Delayed, AttemptLost *obs.Counter
}

// NewEndpointMetrics registers the faultnet series for endpoint id on
// r, labeled node="<id>". A nil registry returns standalone counters,
// so callers wire it unconditionally.
func NewEndpointMetrics(r *obs.Registry, id int) *Metrics {
	if r == nil {
		return newDetachedMetrics()
	}
	node := obs.Label{Key: "node", Value: strconv.Itoa(id)}
	return &Metrics{
		Dropped:     r.Counter("ssbyz_faultnet_dropped_total", "Frames dropped by the injected fault schedule.", node),
		Duplicated:  r.Counter("ssbyz_faultnet_duplicated_total", "Frames duplicated by the injected fault schedule.", node),
		Delayed:     r.Counter("ssbyz_faultnet_delayed_total", "Frames whole-beat-delayed by the injected fault schedule.", node),
		AttemptLost: r.Counter("ssbyz_faultnet_attempt_lost_total", "Physical send attempts dropped by per-attempt loss.", node),
	}
}

// newDetachedMetrics returns live counters bound to no registry.
func newDetachedMetrics() *Metrics {
	return &Metrics{
		Dropped:     &obs.Counter{},
		Duplicated:  &obs.Counter{},
		Delayed:     &obs.Counter{},
		AttemptLost: &obs.Counter{},
	}
}

// Endpoint wraps a net.Endpoint, judging every outgoing frame against a
// Schedule at send time. Faults are injected sender-side so any
// transport — in-proc, UDP, TCP — degrades identically.
type Endpoint struct {
	inner net.Endpoint
	sched Schedule
	cfg   WrapConfig

	attemptLossPct atomic.Int32
	met            *Metrics

	mu  sync.Mutex
	rng *rand.Rand
}

// Wrap builds a faulted endpoint over inner.
func Wrap(inner net.Endpoint, sched Schedule, cfg WrapConfig) *Endpoint {
	if sched == nil {
		sched = None
	}
	met := cfg.Metrics
	if met == nil {
		met = newDetachedMetrics()
	}
	e := &Endpoint{
		inner: inner, sched: sched, cfg: cfg, met: met,
		rng: rand.New(rand.NewSource(int64(smix(cfg.AttemptSeed ^ uint64(inner.ID()))))),
	}
	e.attemptLossPct.Store(int32(cfg.AttemptLossPct))
	return e
}

// ID implements net.Endpoint.
func (e *Endpoint) ID() int { return e.inner.ID() }

// Recv implements net.Endpoint; receiving is never faulted (the
// schedule already ruled at the sender).
func (e *Endpoint) Recv() <-chan net.Packet { return e.inner.Recv() }

// Dropped implements net.Endpoint, reporting the transport's own drops;
// injected faults are in Stats.
func (e *Endpoint) Dropped() uint64 { return e.inner.Dropped() }

// Close implements net.Endpoint.
func (e *Endpoint) Close() error { return e.inner.Close() }

// Stats returns the injected-fault counters so far.
func (e *Endpoint) Stats() Stats {
	return Stats{
		Dropped:     e.met.Dropped.Load(),
		Duplicated:  e.met.Duplicated.Load(),
		Delayed:     e.met.Delayed.Load(),
		AttemptLost: e.met.AttemptLost.Load(),
	}
}

// SetAttemptLossPct changes the per-attempt loss rate live — the soak
// harness's loss toggle. Safe from any goroutine.
func (e *Endpoint) SetAttemptLossPct(pct int) {
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	e.attemptLossPct.Store(int32(pct))
}

// AttemptLossPct returns the current per-attempt loss rate.
func (e *Endpoint) AttemptLossPct() int { return int(e.attemptLossPct.Load()) }

// Send implements net.Endpoint. Frames that do not decode pass through
// untouched — the schedule rules on protocol traffic, not noise.
func (e *Endpoint) Send(to int, frame []byte) error {
	f, err := wire.DecodeFrame(frame)
	if err != nil {
		return e.transmit(to, frame)
	}
	if f.Kind == wire.KindMark && !e.cfg.FaultMarkers {
		return e.inner.Send(to, frame)
	}
	// Self-links are not wires: a node's loopback delivery is never
	// faulted, matching sim.Config.Links.
	if to == e.inner.ID() {
		return e.inner.Send(to, frame)
	}
	if to < len(e.cfg.Exempt) && e.cfg.Exempt[to] {
		return e.inner.Send(to, frame)
	}
	v := e.sched.Verdict(f.Beat, f.From, to)
	if v.Drop {
		e.met.Dropped.Inc()
		return nil
	}
	if v.Delay > 0 {
		e.met.Delayed.Inc()
		f.DeliveryBeat = f.Beat + v.Delay
		frame = wire.AppendFrame(nil, f)
	}
	if err := e.transmit(to, frame); err != nil {
		return err
	}
	if v.Dup {
		e.met.Duplicated.Inc()
		f.Copy++
		return e.transmit(to, wire.AppendFrame(nil, f))
	}
	return nil
}

// transmit is one physical send attempt: per-attempt loss, then
// optional latency, then the inner transport.
func (e *Endpoint) transmit(to int, frame []byte) error {
	lossPct := int(e.attemptLossPct.Load())
	var latency time.Duration
	if lossPct > 0 || e.cfg.MaxLatency > 0 {
		e.mu.Lock()
		lost := lossPct > 0 && e.rng.Intn(100) < lossPct
		if e.cfg.MaxLatency > 0 {
			latency = time.Duration(e.rng.Int63n(int64(e.cfg.MaxLatency)))
		}
		e.mu.Unlock()
		if lost {
			e.met.AttemptLost.Inc()
			return nil
		}
	}
	if latency > 0 {
		data := make([]byte, len(frame))
		copy(data, frame)
		time.AfterFunc(latency, func() { e.inner.Send(to, data) })
		return nil
	}
	return e.inner.Send(to, frame)
}
