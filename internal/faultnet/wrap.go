package faultnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssbyzclock/internal/net"
	"ssbyzclock/internal/wire"
)

// WrapConfig tunes a faulted endpoint.
type WrapConfig struct {
	// FaultMarkers subjects beat markers to the schedule too. Lockstep
	// clusters leave this false — markers are the beat barrier there, and
	// the deterministic engine has no analogue of losing one — while real
	// clusters set it true and lean on retry and quorum advancement.
	FaultMarkers bool
	// Exempt[to] skips faults on links into node to. Callers exempt the
	// adversary's nodes: the rushing adversary owns ideal channels.
	Exempt []bool
	// AttemptLossPct drops each physical transmission independently at
	// random (seeded by AttemptSeed) on top of the schedule. Unlike
	// schedule loss it is per-attempt, not per-message, so retransmission
	// actually helps — the knob that makes real-mode retry meaningful.
	AttemptLossPct int
	AttemptSeed    uint64
	// MaxLatency adds a uniform random in-process delivery latency to
	// each send, perturbing real-mode arrival order without whole-beat
	// delays.
	MaxLatency time.Duration
}

// Stats counts injected faults at one endpoint.
type Stats struct {
	Dropped, Duplicated, Delayed, AttemptLost uint64
}

// Endpoint wraps a net.Endpoint, judging every outgoing frame against a
// Schedule at send time. Faults are injected sender-side so any
// transport — in-proc, UDP, TCP — degrades identically.
type Endpoint struct {
	inner net.Endpoint
	sched Schedule
	cfg   WrapConfig

	dropped, duplicated, delayed, attemptLost atomic.Uint64

	mu  sync.Mutex
	rng *rand.Rand
}

// Wrap builds a faulted endpoint over inner.
func Wrap(inner net.Endpoint, sched Schedule, cfg WrapConfig) *Endpoint {
	if sched == nil {
		sched = None
	}
	return &Endpoint{
		inner: inner, sched: sched, cfg: cfg,
		rng: rand.New(rand.NewSource(int64(smix(cfg.AttemptSeed ^ uint64(inner.ID()))))),
	}
}

// ID implements net.Endpoint.
func (e *Endpoint) ID() int { return e.inner.ID() }

// Recv implements net.Endpoint; receiving is never faulted (the
// schedule already ruled at the sender).
func (e *Endpoint) Recv() <-chan net.Packet { return e.inner.Recv() }

// Dropped implements net.Endpoint, reporting the transport's own drops;
// injected faults are in Stats.
func (e *Endpoint) Dropped() uint64 { return e.inner.Dropped() }

// Close implements net.Endpoint.
func (e *Endpoint) Close() error { return e.inner.Close() }

// Stats returns the injected-fault counters so far.
func (e *Endpoint) Stats() Stats {
	return Stats{
		Dropped:     e.dropped.Load(),
		Duplicated:  e.duplicated.Load(),
		Delayed:     e.delayed.Load(),
		AttemptLost: e.attemptLost.Load(),
	}
}

// Send implements net.Endpoint. Frames that do not decode pass through
// untouched — the schedule rules on protocol traffic, not noise.
func (e *Endpoint) Send(to int, frame []byte) error {
	f, err := wire.DecodeFrame(frame)
	if err != nil {
		return e.transmit(to, frame)
	}
	if f.Kind == wire.KindMark && !e.cfg.FaultMarkers {
		return e.inner.Send(to, frame)
	}
	// Self-links are not wires: a node's loopback delivery is never
	// faulted, matching sim.Config.Links.
	if to == e.inner.ID() {
		return e.inner.Send(to, frame)
	}
	if to < len(e.cfg.Exempt) && e.cfg.Exempt[to] {
		return e.inner.Send(to, frame)
	}
	v := e.sched.Verdict(f.Beat, f.From, to)
	if v.Drop {
		e.dropped.Add(1)
		return nil
	}
	if v.Delay > 0 {
		e.delayed.Add(1)
		f.DeliveryBeat = f.Beat + v.Delay
		frame = wire.AppendFrame(nil, f)
	}
	if err := e.transmit(to, frame); err != nil {
		return err
	}
	if v.Dup {
		e.duplicated.Add(1)
		f.Copy++
		return e.transmit(to, wire.AppendFrame(nil, f))
	}
	return nil
}

// transmit is one physical send attempt: per-attempt loss, then
// optional latency, then the inner transport.
func (e *Endpoint) transmit(to int, frame []byte) error {
	var latency time.Duration
	if e.cfg.AttemptLossPct > 0 || e.cfg.MaxLatency > 0 {
		e.mu.Lock()
		lost := e.cfg.AttemptLossPct > 0 && e.rng.Intn(100) < e.cfg.AttemptLossPct
		if e.cfg.MaxLatency > 0 {
			latency = time.Duration(e.rng.Int63n(int64(e.cfg.MaxLatency)))
		}
		e.mu.Unlock()
		if lost {
			e.attemptLost.Add(1)
			return nil
		}
	}
	if latency > 0 {
		data := make([]byte, len(frame))
		copy(data, frame)
		time.AfterFunc(latency, func() { e.inner.Send(to, data) })
		return nil
	}
	return e.inner.Send(to, frame)
}
