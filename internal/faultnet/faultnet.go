// Package faultnet injects transport faults — loss, duplication,
// whole-beat delays, reordering, link partitions — from schedules that
// are pure functions of (seed, beat, link). Purity is the load-bearing
// property: the deterministic engine (package sim) and the networked
// runtime (package noderuntime) query the same schedule from opposite
// sides of the ownership boundary, in whatever order their executions
// happen to reach each link, and get byte-identical fault decisions.
// That is what lets the differential harness replay one recorded fault
// schedule through both stacks and demand equal clocks.
//
// The faulty nodes' links are never faulted by convention: the model's
// rushing adversary owns ideal private channels, so callers exempt
// adversary-facing links (sim's intercept phase stays pre-fault, and the
// networked adversary host sees exactly what sim's does).
package faultnet

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Verdict is one link-beat fault decision for a message composed at a
// given beat on a given (from, to) link.
type Verdict struct {
	// Drop loses the message entirely.
	Drop bool
	// Dup delivers the message twice (the second copy tagged Copy=1 so
	// receivers can tell it from a retransmission).
	Dup bool
	// Delay postpones delivery by this many whole beats.
	Delay uint64
}

// Schedule decides faults. Implementations MUST be pure: the same
// arguments always return the same answer, with no internal state, so
// query order cannot matter.
type Schedule interface {
	// Verdict rules on the message composed at beat on link from->to.
	// Duplicate copies and delayed deliveries are not re-judged.
	Verdict(beat uint64, from, to int) Verdict
	// Shuffle returns (seed, true) when node's beat inbox should be
	// permuted (Fisher-Yates with that seed over the canonical order),
	// or (0, false) to leave the order alone.
	Shuffle(beat uint64, node int) (uint64, bool)
}

// Partition is a link cut active for beats in [From, Until): messages on
// links whose two ends fall on different sides of Mask (bit i set =
// node i on side A) are dropped. Healing is just the window ending.
type Partition struct {
	From  uint64 `json:"from"`
	Until uint64 `json:"until"`
	Mask  uint64 `json:"mask"`
}

// HashSchedule is the canonical pure schedule: every decision is a
// splitmix64 hash of (Seed, domain, beat, from, to) compared against a
// percent threshold. Rates compose independently — a message can be
// both delayed and duplicated.
type HashSchedule struct {
	Seed uint64 `json:"seed"`
	// LossPct, DupPct, DelayPct are per-message percentages in [0,100].
	LossPct  int `json:"loss_pct,omitempty"`
	DupPct   int `json:"dup_pct,omitempty"`
	DelayPct int `json:"delay_pct,omitempty"`
	// MaxDelay bounds an injected delay to [1, MaxDelay] beats
	// (defaults to 2 when DelayPct > 0).
	MaxDelay uint64 `json:"max_delay,omitempty"`
	// Reorder permutes every node's per-beat inbox.
	Reorder    bool        `json:"reorder,omitempty"`
	Partitions []Partition `json:"partitions,omitempty"`
}

// hash domains, one per decision kind so rates stay independent.
const (
	domDrop uint64 = iota + 1
	domDup
	domDelayGate
	domDelayLen
	domShuffle
)

func smix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *HashSchedule) hash(dom, beat uint64, from, to int) uint64 {
	x := smix(s.Seed ^ dom)
	x = smix(x ^ beat)
	x = smix(x ^ uint64(from))
	return smix(x ^ uint64(to))
}

func (s *HashSchedule) pct(dom, beat uint64, from, to int, pct int) bool {
	if pct <= 0 {
		return false
	}
	return s.hash(dom, beat, from, to)%100 < uint64(pct)
}

// Verdict implements Schedule.
func (s *HashSchedule) Verdict(beat uint64, from, to int) Verdict {
	var v Verdict
	for _, p := range s.Partitions {
		if beat >= p.From && beat < p.Until &&
			(p.Mask>>uint(from&63))&1 != (p.Mask>>uint(to&63))&1 {
			v.Drop = true
			return v
		}
	}
	v.Drop = s.pct(domDrop, beat, from, to, s.LossPct)
	if v.Drop {
		return v
	}
	v.Dup = s.pct(domDup, beat, from, to, s.DupPct)
	if s.pct(domDelayGate, beat, from, to, s.DelayPct) {
		max := s.MaxDelay
		if max == 0 {
			max = 2
		}
		v.Delay = 1 + s.hash(domDelayLen, beat, from, to)%max
	}
	return v
}

// Shuffle implements Schedule.
func (s *HashSchedule) Shuffle(beat uint64, node int) (uint64, bool) {
	if !s.Reorder {
		return 0, false
	}
	return s.hash(domShuffle, beat, node, -1), true
}

// None is the identity schedule.
var None Schedule = &HashSchedule{}

// Switch is a schedule that delegates to a live-swappable inner
// schedule — the soak harness's partition/reorder lever. Each decision
// is ruled by whichever schedule is installed at query time; any single
// installed schedule is still pure, so determinism holds between
// swaps. Use it only where wall-clock fault phases are the point (the
// differential harness never swaps mid-run).
type Switch struct {
	inner atomic.Pointer[Schedule]
}

// NewSwitch returns a Switch initially delegating to s (nil means
// None).
func NewSwitch(s Schedule) *Switch {
	sw := &Switch{}
	sw.Set(s)
	return sw
}

// Set installs s as the delegate (nil means None). Safe from any
// goroutine.
func (sw *Switch) Set(s Schedule) {
	if s == nil {
		s = None
	}
	sw.inner.Store(&s)
}

// Verdict implements Schedule.
func (sw *Switch) Verdict(beat uint64, from, to int) Verdict {
	return (*sw.inner.Load()).Verdict(beat, from, to)
}

// Shuffle implements Schedule.
func (sw *Switch) Shuffle(beat uint64, node int) (uint64, bool) {
	return (*sw.inner.Load()).Shuffle(beat, node)
}

// evenOddMask puts even node ids on side A — a partition spec that cuts
// roughly half the links of any cluster size.
const evenOddMask uint64 = 0x5555555555555555

// Parse builds a HashSchedule from a registry name: "+"-joined terms of
//
//	none          no faults
//	lossNN        drop NN% of messages
//	dupNN         duplicate NN% of messages
//	delayNN       delay NN% of messages by 1-2 beats
//	reorder       permute every per-beat inbox
//	partition     cut even ids from odd ids for beats [6,12), then heal
//
// e.g. "loss20+reorder". The returned schedule has Seed zero; callers
// (the sweep runner, the chaos harness) set it per run.
func Parse(name string) (*HashSchedule, error) {
	s := &HashSchedule{}
	for _, term := range strings.Split(name, "+") {
		switch {
		case term == "none" || term == "":
		case term == "reorder":
			s.Reorder = true
		case term == "partition":
			s.Partitions = append(s.Partitions, Partition{From: 6, Until: 12, Mask: evenOddMask})
		case strings.HasPrefix(term, "loss"):
			if err := parsePct(term, "loss", &s.LossPct); err != nil {
				return nil, err
			}
		case strings.HasPrefix(term, "dup"):
			if err := parsePct(term, "dup", &s.DupPct); err != nil {
				return nil, err
			}
		case strings.HasPrefix(term, "delay"):
			if err := parsePct(term, "delay", &s.DelayPct); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("faultnet: unknown fault %q in %q", term, name)
		}
	}
	return s, nil
}

func parsePct(term, prefix string, dst *int) error {
	n, err := strconv.Atoi(strings.TrimPrefix(term, prefix))
	if err != nil || n < 0 || n > 100 {
		return fmt.Errorf("faultnet: %q wants %sNN with NN in [0,100]", term, prefix)
	}
	*dst = n
	return nil
}

// ShuffleOrder returns the permutation Fisher-Yates produces from seed
// over k elements — THE inbox reorder both stacks must share. The rng is
// the same splitmix stream used for verdicts, not math/rand, so the
// permutation is stable across Go versions.
func ShuffleOrder(seed uint64, k int) []int {
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	x := seed
	for i := k - 1; i > 0; i-- {
		x = smix(x)
		j := int(x % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}
