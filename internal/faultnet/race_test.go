package faultnet

import (
	"sync"
	"sync/atomic"
	"testing"

	"ssbyzclock/internal/net"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/wire"
)

// countEndpoint is a sink transport: it counts deliveries atomically
// and discards the frames.
type countEndpoint struct {
	id        int
	delivered atomic.Uint64
	recv      chan net.Packet
}

func (c *countEndpoint) ID() int                 { return c.id }
func (c *countEndpoint) Send(int, []byte) error  { c.delivered.Add(1); return nil }
func (c *countEndpoint) Recv() <-chan net.Packet { return c.recv }
func (c *countEndpoint) Dropped() uint64         { return 0 }
func (c *countEndpoint) Close() error            { return nil }

// TestConcurrentSendersCounters is the -race regression test for the
// injected-fault counters: many goroutines share ONE wrapped endpoint
// while a scraper snapshots the registry and another goroutine toggles
// the live attempt-loss knob. Beyond freedom from races, the counters
// must balance exactly: every message the schedule did not drop becomes
// attempts (1 + its duplicates), and every attempt either reached the
// inner transport or was counted attempt-lost.
func TestConcurrentSendersCounters(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &countEndpoint{id: 0, recv: make(chan net.Packet)}
	ep := Wrap(inner, &HashSchedule{Seed: 42, LossPct: 20, DupPct: 15, DelayPct: 10}, WrapConfig{
		FaultMarkers:   true,
		AttemptLossPct: 10,
		AttemptSeed:    7,
		Metrics:        NewEndpointMetrics(reg, 0),
	})

	const senders, perSender = 8, 5000
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				frame := wire.AppendFrame(nil, wire.Frame{
					Kind: wire.KindMsg, From: 0,
					Beat: uint64(s*perSender + i), DeliveryBeat: uint64(s*perSender + i),
					Seq: uint32(i), Payload: []byte{1, 2, 3},
				})
				if err := ep.Send(1, frame); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // concurrent scraper
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
				ep.Stats()
			}
		}
	}()
	go func() { // live loss toggling mid-flight
		defer aux.Done()
		pcts := []int{0, 30, 10, 50}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				ep.SetAttemptLossPct(pcts[i%len(pcts)])
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()

	st := ep.Stats()
	const total = senders * perSender
	attempts := uint64(total) - st.Dropped + st.Duplicated
	if got := inner.delivered.Load() + st.AttemptLost; got != attempts {
		t.Fatalf("counter imbalance: delivered %d + attempt-lost %d = %d, want %d attempts (dropped=%d dup=%d)",
			inner.delivered.Load(), st.AttemptLost, got, attempts, st.Dropped, st.Duplicated)
	}
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("schedule injected nothing: %+v", st)
	}
	// Registry and Stats read the same counters.
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "ssbyz_faultnet_dropped_total":
			if s.Value != float64(st.Dropped) {
				t.Fatalf("registry dropped %v != stats %d", s.Value, st.Dropped)
			}
		case "ssbyz_faultnet_attempt_lost_total":
			if s.Value != float64(st.AttemptLost) {
				t.Fatalf("registry attempt-lost %v != stats %d", s.Value, st.AttemptLost)
			}
		}
	}
}
