package faultnet_test

import (
	"testing"
	"time"

	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/wire"
)

func TestParse(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
	}{
		{"none", true}, {"loss30", true}, {"dup15", true}, {"delay10", true},
		{"reorder", true}, {"partition", true}, {"loss20+reorder", true},
		{"loss20+dup5+delay5+partition", true},
		{"loss101", false}, {"loss-1", false}, {"lossy", false}, {"bogus", false},
	}
	for _, c := range cases {
		s, err := faultnet.Parse(c.name)
		if c.ok && err != nil {
			t.Errorf("Parse(%q): %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Parse(%q) accepted, got %+v", c.name, s)
		}
	}
	s, _ := faultnet.Parse("loss20+reorder")
	if s.LossPct != 20 || !s.Reorder {
		t.Fatalf("combo parse: %+v", s)
	}
}

func TestHashScheduleIsPureAndSeeded(t *testing.T) {
	a := &faultnet.HashSchedule{Seed: 11, LossPct: 30, DupPct: 10, DelayPct: 10}
	b := &faultnet.HashSchedule{Seed: 11, LossPct: 30, DupPct: 10, DelayPct: 10}
	c := &faultnet.HashSchedule{Seed: 12, LossPct: 30, DupPct: 10, DelayPct: 10}
	same, diff := 0, 0
	for beat := uint64(0); beat < 50; beat++ {
		for from := 0; from < 4; from++ {
			for to := 0; to < 4; to++ {
				va, vb, vc := a.Verdict(beat, from, to), b.Verdict(beat, from, to), c.Verdict(beat, from, to)
				if va != vb {
					t.Fatalf("impure: %+v vs %+v at (%d,%d,%d)", va, vb, beat, from, to)
				}
				if va == vc {
					same++
				} else {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Fatal("seed has no effect on verdicts")
	}
	// Rates land near the target on a big sample.
	drops := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if a.Verdict(uint64(i), i%7, (i+1)%7).Drop {
			drops++
		}
	}
	if pct := 100 * drops / trials; pct < 25 || pct > 35 {
		t.Fatalf("loss rate %d%% for LossPct=30", pct)
	}
}

func TestPartitionCutsCrossLinksOnly(t *testing.T) {
	s, err := faultnet.Parse("partition")
	if err != nil {
		t.Fatal(err)
	}
	// Inside the window even<->odd drops, even<->even survives.
	if !s.Verdict(8, 0, 1).Drop {
		t.Fatal("cross-partition link not cut")
	}
	if s.Verdict(8, 0, 2).Drop {
		t.Fatal("same-side link cut")
	}
	// Outside the window everything flows: healed.
	if s.Verdict(5, 0, 1).Drop || s.Verdict(12, 0, 1).Drop {
		t.Fatal("partition active outside its window")
	}
}

func TestShuffleOrder(t *testing.T) {
	order := faultnet.ShuffleOrder(99, 10)
	seen := make([]bool, 10)
	for _, i := range order {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[i] = true
	}
	again := faultnet.ShuffleOrder(99, 10)
	for i := range order {
		if order[i] != again[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
	if faultnet.ShuffleOrder(0, 0) == nil || len(faultnet.ShuffleOrder(7, 1)) != 1 {
		t.Fatal("degenerate sizes mishandled")
	}
}

// sendFrame pushes one protocol frame through a wrapped endpoint.
func sendFrame(t *testing.T, ep net.Endpoint, to int, beat uint64, seq uint32) {
	t.Helper()
	if err := ep.Send(to, wire.AppendFrame(nil, wire.Frame{
		Kind: wire.KindMsg, From: ep.ID(), Beat: beat, DeliveryBeat: beat,
		Seq: seq, Payload: []byte{1, 2, 3},
	})); err != nil {
		t.Fatal(err)
	}
}

func drain(ep net.Endpoint, wait time.Duration) []wire.Frame {
	var got []wire.Frame
	deadline := time.After(wait)
	for {
		select {
		case p := <-ep.Recv():
			if f, err := wire.DecodeFrame(p.Data); err == nil {
				got = append(got, f)
			}
		case <-deadline:
			return got
		}
	}
}

func TestWrapInjectsScheduleFaults(t *testing.T) {
	tr := net.NewChanTransport(2, 1024)
	raw0, _ := tr.Endpoint(0)
	ep1, _ := tr.Endpoint(1)
	sched := &faultnet.HashSchedule{Seed: 3, LossPct: 30, DupPct: 20, DelayPct: 20}
	ep0 := faultnet.Wrap(raw0, sched, faultnet.WrapConfig{})
	defer ep0.Close()
	defer ep1.Close()

	const beats, perBeat = 40, 4
	sent := 0
	for beat := uint64(0); beat < beats; beat++ {
		for seq := uint32(0); seq < perBeat; seq++ {
			sendFrame(t, ep0, 1, beat, seq)
			sent++
		}
	}
	got := drain(ep1, 200*time.Millisecond)
	st := ep0.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("expected every fault kind on %d sends: %+v", sent, st)
	}
	if want := sent - int(st.Dropped) + int(st.Duplicated); len(got) != want {
		t.Fatalf("got %d frames, want %d (%+v)", len(got), want, st)
	}
	// Delivered frames reflect the verdicts: delays re-tag DeliveryBeat,
	// duplicates bump Copy, and every frame matches its schedule verdict.
	for _, f := range got {
		v := sched.Verdict(f.Beat, 0, 1)
		if v.Drop {
			t.Fatalf("dropped frame delivered: %+v", f)
		}
		if f.DeliveryBeat != f.Beat+v.Delay {
			t.Fatalf("frame %+v: want delivery %d", f, f.Beat+v.Delay)
		}
		if f.Copy > 0 && !v.Dup {
			t.Fatalf("copy without dup verdict: %+v", f)
		}
	}
}

func TestWrapExemptAndMarkers(t *testing.T) {
	tr := net.NewChanTransport(3, 256)
	raw0, _ := tr.Endpoint(0)
	ep1, _ := tr.Endpoint(1)
	ep2, _ := tr.Endpoint(2)
	// Total loss, but node 2 is exempt and markers are spared.
	ep0 := faultnet.Wrap(raw0, &faultnet.HashSchedule{LossPct: 100}, faultnet.WrapConfig{
		Exempt: []bool{false, false, true},
	})
	defer func() { ep0.Close(); ep1.Close(); ep2.Close() }()

	for beat := uint64(0); beat < 5; beat++ {
		sendFrame(t, ep0, 1, beat, 0)
		sendFrame(t, ep0, 2, beat, 0)
		mark := wire.AppendFrame(nil, wire.Frame{Kind: wire.KindMark, From: 0, Beat: beat, DeliveryBeat: beat})
		if err := ep0.Send(1, mark); err != nil {
			t.Fatal(err)
		}
	}
	to1, to2 := drain(ep1, 50*time.Millisecond), drain(ep2, 50*time.Millisecond)
	for _, f := range to1 {
		if f.Kind != wire.KindMark {
			t.Fatalf("faulted link delivered a message: %+v", f)
		}
	}
	if len(to1) != 5 {
		t.Fatalf("markers must pass LossPct=100 unfaulted, got %d/5", len(to1))
	}
	if len(to2) != 5 {
		t.Fatalf("exempt destination got %d/5 messages", len(to2))
	}
}

func TestWrapAttemptLossIsPerAttempt(t *testing.T) {
	tr := net.NewChanTransport(2, 4096)
	raw0, _ := tr.Endpoint(0)
	ep1, _ := tr.Endpoint(1)
	ep0 := faultnet.Wrap(raw0, faultnet.None, faultnet.WrapConfig{
		AttemptLossPct: 50, AttemptSeed: 9,
	})
	defer func() { ep0.Close(); ep1.Close() }()
	// Retransmit the SAME frame many times; per-attempt loss must let
	// some attempts through (schedule loss would kill all or none).
	for i := 0; i < 64; i++ {
		sendFrame(t, ep0, 1, 7, 7)
	}
	got := drain(ep1, 50*time.Millisecond)
	st := ep0.Stats()
	if st.AttemptLost == 0 || len(got) == 0 {
		t.Fatalf("per-attempt loss: %d lost, %d delivered of 64", st.AttemptLost, len(got))
	}
	if int(st.AttemptLost)+len(got) != 64 {
		t.Fatalf("attempts unaccounted: %d lost + %d delivered != 64", st.AttemptLost, len(got))
	}
}
