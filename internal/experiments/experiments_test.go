package experiments

import (
	"strings"
	"testing"

	"bytes"
)

// tiny keeps the smoke runs fast; the real budgets live in the defaults
// and are exercised by cmd/repro and the benchmarks.
var tiny = Params{Runs: 2, MaxBeats: 400, Hold: 8}

// TestAllExperimentsRun smoke-tests the harness: every experiment must
// produce a non-empty table mentioning its claim line, without panicking.
func TestAllExperimentsRun(t *testing.T) {
	cases := []struct {
		name string
		fn   func(*bytes.Buffer)
		want string
	}{
		{"coin", func(b *bytes.Buffer) { CoinQuality(b, Params{Runs: 1, MaxBeats: 60}) }, "agree%"},
		{"twoclock", func(b *bytes.Buffer) { TwoClock(b, tiny) }, "P[T>t]"},
		{"fourclock", func(b *bytes.Buffer) { FourClock(b, tiny) }, "constant convergence"},
		{"clocksync", func(b *bytes.Buffer) { ClockSync(b, tiny) }, "independent of k"},
		{"ablation-rand", func(b *bytes.Buffer) { AblationRand(b, tiny) }, "stale"},
		{"resilience", func(b *bytes.Buffer) { Resilience(b, Params{Runs: 1, MaxBeats: 150, Hold: 8}) }, "n/3"},
		{"msgcomplexity", func(b *bytes.Buffer) { MsgComplexity(b, Params{Runs: 1, MaxBeats: 12}) }, "bytes/beat/node"},
		{"ablation-coin", func(b *bytes.Buffer) { AblationCoin(b, tiny) }, "common"},
		{"powerclock", func(b *bytes.Buffer) { PowerVsSync(b, Params{Runs: 1, Hold: 8}) }, "PowerClock"},
		{"dw-adapted", func(b *bytes.Buffer) { DWAdaptation(b, Params{Runs: 1, MaxBeats: 1500, Hold: 8}) }, "ss-Byz-Coin-Flip"},
		{"selfstab", func(b *bytes.Buffer) { SelfStab(b, tiny) }, "scramble"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			c.fn(&buf)
			out := buf.String()
			if !strings.Contains(out, c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
			if strings.Count(out, "\n") < 4 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
		})
	}
}

// TestTable1Smoke runs the big one separately with a very small budget.
func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 smoke is slow")
	}
	var buf bytes.Buffer
	Table1(&buf, Params{Runs: 1, MaxBeats: 3000, Hold: 8})
	out := buf.String()
	for _, want := range []string{"ss-Byz-Clock-Sync", "Dolev-Welch", "PhaseKing"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q", want)
		}
	}
}
