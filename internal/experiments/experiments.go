// Package experiments implements the reproduction harness: one function
// per experiment in DESIGN.md §5 (Table 1 and the validation of Figures
// 1-4, plus the ablations). cmd/repro prints them; bench_test.go wraps
// them as benchmarks; EXPERIMENTS.md records the measured outputs
// against the paper's claims.
package experiments

import (
	"fmt"
	"io"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/baseline"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
	"ssbyzclock/internal/sscoin"
	"ssbyzclock/internal/stats"
	"ssbyzclock/internal/sweep"
)

// Params tunes experiment size. Zero values select the defaults used in
// EXPERIMENTS.md.
type Params struct {
	// Runs is the number of independent seeds per configuration.
	Runs int
	// MaxBeats caps each run.
	MaxBeats int
	// Hold is the consecutive-synced-beats requirement when declaring
	// convergence.
	Hold int
}

func (p Params) orDefault(runs, maxBeats, hold int) Params {
	if p.Runs == 0 {
		p.Runs = runs
	}
	if p.MaxBeats == 0 {
		p.MaxBeats = maxBeats
	}
	if p.Hold == 0 {
		p.Hold = hold
	}
	return p
}

func silent(*adversary.Context) adversary.Adversary { return adversary.Silent{} }
func splitter(ctx *adversary.Context) adversary.Adversary {
	return &adversary.ClockSplitter{Ctx: ctx}
}
func gradeSplitter(ctx *adversary.Context) adversary.Adversary {
	return &adversary.GradeSplitter{Ctx: ctx}
}

// convergenceSample measures beats-to-convergence over p.Runs seeds.
// Unconverged runs contribute MaxBeats (a lower bound on truth).
func convergenceSample(p Params, n, f int, k uint64,
	adv func(*adversary.Context) adversary.Adversary, factory sim.NodeFactory) (*stats.Sample, int) {
	var s stats.Sample
	failures := 0
	for seed := 0; seed < p.Runs; seed++ {
		cfg := sim.Config{
			N: n, F: f, Seed: int64(seed)*7 + 1,
			NewAdversary: adv, ScrambleStart: true,
		}
		e := sim.New(cfg, factory)
		res := sim.MeasureConvergence(e, k, p.MaxBeats, p.Hold)
		if res.Converged {
			s.AddInt(res.ConvergedAt)
		} else {
			s.AddInt(p.MaxBeats)
			failures++
		}
	}
	return &s, failures
}

// Table1 reproduces the paper's Table 1 as measurements: expected
// convergence time of this paper's algorithm (flat in n), the
// Dolev–Welch-style probabilistic baseline (exponential in n-f), and the
// deterministic phase-king baseline (linear in f). Resiliency columns
// restate each protocol's bound.
func Table1(w io.Writer, p Params) {
	p = p.orDefault(10, 60000, 12)
	fmt.Fprintln(w, "E1 / Table 1 — convergence time (beats) by protocol and n, f = floor((n-1)/3)")
	fmt.Fprintln(w, "adversary: silent (crash) for all protocols; ScrambleStart on; unconverged runs count as MaxBeats")
	t := stats.NewTable("protocol", "model", "resiliency", "n", "f", "mean", "p95", "fails")
	addRow := func(name, model, resil string, n, f int, s *stats.Sample, fails int) {
		t.AddRow(name, model, resil, fmt.Sprint(n), fmt.Sprint(f),
			fmt.Sprintf("%.1f", s.Mean()), fmt.Sprintf("%.0f", s.Quantile(0.95)), fmt.Sprint(fails))
	}
	for _, n := range []int{4, 7, 10, 13, 16} {
		f := (n - 1) / 3
		s, fails := convergenceSample(p, n, f, 64, silent,
			core.NewClockSyncProtocol(64, coin.FMFactory{}))
		addRow("ss-Byz-Clock-Sync (this paper)", "sync, probabilistic", "f<n/3", n, f, s, fails)
	}
	for _, n := range []int{4, 7, 10, 13} {
		// k=2 keeps the exponential baseline measurable; n=16 would need
		// ~2^10 more budget than the table's cap.
		f := (n - 1) / 3
		s, fails := convergenceSample(p, n, f, 2, silent, baseline.NewDolevWelchProtocol(2))
		addRow("Dolev-Welch [10]", "sync, probabilistic", "f<n/3", n, f, s, fails)
	}
	for _, n := range []int{4, 7, 10, 13, 16} {
		// Worst case for the deterministic baseline: the faulty ids come
		// first in the king rotation and spoil their own epochs, so
		// convergence waits ~f epochs — the O(f) row of Table 1.
		f := (n - 1) / 3
		var s stats.Sample
		fails := 0
		for seed := 0; seed < p.Runs; seed++ {
			faulty := make([]int, f)
			for i := range faulty {
				faulty[i] = i
			}
			cfg := sim.Config{
				N: n, F: f, Seed: int64(seed)*7 + 1, Faulty: faulty, ScrambleStart: true,
				NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
					return &adversary.KingSpoiler{Ctx: ctx}
				},
			}
			e := sim.New(cfg, baseline.NewPhaseKingProtocol(64))
			res := sim.MeasureConvergence(e, 64, p.MaxBeats, p.Hold)
			if res.Converged {
				s.AddInt(res.ConvergedAt)
			} else {
				s.AddInt(p.MaxBeats)
				fails++
			}
		}
		addRow("PhaseKing (for [15]/[7], worst case)", "sync, deterministic", "f<n/3", n, f, &s, fails)
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "paper's claim: row 1 O(1) flat; row 2 exponential in n-f; row 3 O(f) linear")
	fmt.Fprintln(w, "(PhaseKing runs against a king-spoiling adversary on the first f king slots).")
}

// CoinQuality measures Definition 2.6/2.7's properties of the pipelined
// FM coin (Figure 1 / E2): agreement rate, p0 and p1 estimates, and
// recovery within Δ_A beats after a scramble, across adversaries.
func CoinQuality(w io.Writer, p Params) {
	p = p.orDefault(3, 400, 0)
	fmt.Fprintln(w, "E2 / Figure 1 — ss-Byz-Coin-Flip quality (FM coin), per beat over", p.MaxBeats, "beats x", p.Runs, "seeds")
	t := stats.NewTable("n", "f", "adversary", "agree%", "p0-hat", "p1-hat", "post-scramble agree%")
	advs := []struct {
		name string
		mk   func(*adversary.Context) adversary.Adversary
	}{
		{"passive", nil},
		{"silent", silent},
		{"grade-splitter", gradeSplitter},
		{"share-corruptor", func(ctx *adversary.Context) adversary.Adversary {
			return &adversary.ShareCorruptor{Ctx: ctx}
		}},
	}
	for _, cse := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		for _, av := range advs {
			agreeBeats, zeros, ones, total := 0, 0, 0, 0
			postAgree, postTotal := 0, 0
			for seed := 0; seed < p.Runs; seed++ {
				cfg := sim.Config{N: cse.n, F: cse.f, Seed: int64(seed) + 5, NewAdversary: av.mk}
				e := sim.New(cfg, func(env proto.Env) proto.Protocol {
					return sscoin.New(env, coin.FMFactory{})
				})
				e.Run(coin.FMRounds + 1)
				for i := 0; i < p.MaxBeats; i++ {
					e.Step()
					total++
					if b, ok := sim.ReadBits(e).Agreed(); ok {
						agreeBeats++
						if b == 0 {
							zeros++
						} else {
							ones++
						}
					}
				}
				// Scramble, allow Δ_A beats, then measure again (Lemma 1).
				e.ScrambleHonest()
				e.Run(coin.FMRounds)
				for i := 0; i < 50; i++ {
					e.Step()
					postTotal++
					if _, ok := sim.ReadBits(e).Agreed(); ok {
						postAgree++
					}
				}
			}
			t.AddRow(fmt.Sprint(cse.n), fmt.Sprint(cse.f), av.name,
				pct(agreeBeats, total), pct(zeros, total), pct(ones, total), pct(postAgree, postTotal))
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claims: agree% constant (not shrinking with n); p0,p1 both constant > 0;")
	fmt.Fprintln(w, "post-scramble agree% equals steady state (convergence = Δ_A, Lemma 1).")
}

// TwoClock validates Figure 2 / Theorem 2 (E3): expected-constant
// convergence flat in n, and the exponential tail P[T > t].
func TwoClock(w io.Writer, p Params) {
	p = p.orDefault(30, 2000, 8)
	fmt.Fprintln(w, "E3 / Figure 2 — ss-Byz-2-Clock convergence (FM coin, splitter adversary)")
	t := stats.NewTable("n", "f", "mean", "p50", "p95", "max", "fails")
	tails := map[int]*stats.Sample{}
	for _, n := range []int{4, 7, 10, 13} {
		f := (n - 1) / 3
		s, fails := convergenceSample(p, n, f, 2, splitter, core.NewTwoClockProtocol(coin.FMFactory{}))
		tails[n] = s
		t.AddRow(fmt.Sprint(n), fmt.Sprint(f), fmt.Sprintf("%.1f", s.Mean()),
			fmt.Sprintf("%.0f", s.Median()), fmt.Sprintf("%.0f", s.Quantile(0.95)),
			fmt.Sprintf("%.0f", s.Max()), fmt.Sprint(fails))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "tail (n=7): fraction of runs still unconverged after t beats")
	tl := stats.NewTable("t", "P[T>t]")
	s := tails[7]
	for _, tt := range []float64{5, 10, 20, 40} {
		tl.AddRow(fmt.Sprintf("%.0f", tt),
			fmt.Sprintf("%.2f", float64(s.CountGreater(tt))/float64(s.N())))
	}
	fmt.Fprintln(w, tl)
	fmt.Fprintln(w, "claims: mean flat in n (expected constant, Theorem 2); tail decays geometrically.")
}

// FourClock validates Figure 3 / Theorem 3 (E4).
func FourClock(w io.Writer, p Params) {
	p = p.orDefault(30, 3000, 16)
	fmt.Fprintln(w, "E4 / Figure 3 — ss-Byz-4-Clock convergence and 0,1,2,3 cycling (FM coin, silent adversary)")
	t := stats.NewTable("n", "f", "mean", "p95", "fails")
	for _, n := range []int{4, 7, 10} {
		f := (n - 1) / 3
		s, fails := convergenceSample(p, n, f, 4, silent, core.NewFourClockProtocol(coin.FMFactory{}))
		t.AddRow(fmt.Sprint(n), fmt.Sprint(f), fmt.Sprintf("%.1f", s.Mean()),
			fmt.Sprintf("%.0f", s.Quantile(0.95)), fmt.Sprint(fails))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claim: expected constant convergence; closure = cycling 0,1,2,3 (checked by Hold).")
}

// ClockSync validates Figure 4 / Theorem 4 (E5): convergence independent
// of k.
func ClockSync(w io.Writer, p Params) {
	p = p.orDefault(20, 3000, 16)
	fmt.Fprintln(w, "E5 / Figure 4 — ss-Byz-Clock-Sync convergence vs k (n=7, f=2, FM coin, splitter adversary)")
	t := stats.NewTable("k", "mean", "p95", "fails")
	for _, k := range []uint64{4, 16, 64, 256, 1024} {
		s, fails := convergenceSample(p, 7, 2, k, splitter, core.NewClockSyncProtocol(k, coin.FMFactory{}))
		t.AddRow(fmt.Sprint(k), fmt.Sprintf("%.1f", s.Mean()),
			fmt.Sprintf("%.0f", s.Quantile(0.95)), fmt.Sprint(fails))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claim: convergence independent of k (constant overhead over the 4-clock).")
}

// AblationRand is E6: the Remark 3.1 rand-timing ablation at the
// clock-sync layer, under the oracle-equipped phase-3 splitter.
func AblationRand(w io.Writer, p Params) {
	p = p.orDefault(30, 4000, 16)
	fmt.Fprintln(w, "E6 / Remark 3.1 — rand timing ablation (n=7, f=2, k=16, Rabin coin, phase-3 splitter with bit oracle)")
	t := stats.NewTable("variant", "mean", "p95", "max", "fails")
	for _, stale := range []bool{false, true} {
		var s stats.Sample
		fails := 0
		for seed := 0; seed < p.Runs; seed++ {
			var eng *sim.Engine
			cfg := sim.Config{
				N: 7, F: 2, Seed: int64(seed) + 11, ScrambleStart: true,
				NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
					return &adversary.Phase3Splitter{Ctx: ctx, BitOracle: func() byte {
						return eng.Node(0).(*core.ClockSync).RandBit()
					}}
				},
			}
			staleNow := stale
			eng = sim.New(cfg, func(env proto.Env) proto.Protocol {
				return core.NewClockSyncStale(env, 16, coin.RabinFactory{Seed: int64(seed)}, staleNow)
			})
			res := sim.MeasureConvergence(eng, 16, p.MaxBeats, p.Hold)
			if res.Converged {
				s.AddInt(res.ConvergedAt)
			} else {
				s.AddInt(p.MaxBeats)
				fails++
			}
		}
		name := "fresh rand (published)"
		if stale {
			name = "stale rand (broken per Remark 3.1)"
		}
		t.AddRow(name, fmt.Sprintf("%.1f", s.Mean()), fmt.Sprintf("%.0f", s.Quantile(0.95)),
			fmt.Sprintf("%.0f", s.Max()), fmt.Sprint(fails))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "finding: the synced state is absorbing, so staleness costs a constant factor")
	fmt.Fprintln(w, "rather than stalling outright — the proof-level independence loss (Lemma 8)")
	fmt.Fprintln(w, "does not translate to divergence at n=3f+1 under this adversary class.")
}

// Resilience is E7: convergence across f, including beyond the n/3
// bound, under the strongest stacked attack (clock splitting + grade
// splitting + coin-recovery corruption). Within the bound the
// Berlekamp–Welch layer absorbs the corruption exactly; at f = 4 > n/3
// reconstruction collapses and the coin (hence the clock) with it.
func Resilience(w io.Writer, p Params) {
	p = p.orDefault(8, 700, 16)
	fmt.Fprintln(w, "E7 — resiliency boundary (n=10, k=16, FM coin, splitter+gradesplitter+recovercorruptor)")
	t := stats.NewTable("f", "within n/3?", "converged", "mean")
	for f := 0; f <= 4; f++ {
		conv := 0
		var s stats.Sample
		for seed := 0; seed < p.Runs; seed++ {
			var eng *sim.Engine
			kitchenSink := func(ctx *adversary.Context) adversary.Adversary {
				return adversary.Chain{Advs: []adversary.Adversary{
					&adversary.OracleSplitter{Ctx: ctx, BitOracle: func() byte {
						return eng.Node(0).(*core.ClockSync).RandBit()
					}},
					&adversary.GradeSplitter{Ctx: ctx},
					&adversary.RecoverCorruptor{Ctx: ctx},
				}}
			}
			cfg := sim.Config{
				N: 10, F: f, Seed: int64(seed) + 3,
				NewAdversary: kitchenSink, ScrambleStart: true,
			}
			eng = sim.New(cfg, core.NewClockSyncProtocol(16, coin.FMFactory{}))
			e := eng
			res := sim.MeasureConvergence(e, 16, p.MaxBeats, p.Hold)
			if res.Converged {
				conv++
				s.AddInt(res.ConvergedAt)
			}
		}
		within := "yes"
		if 3*f >= 10 {
			within = "NO"
		}
		t.AddRow(fmt.Sprint(f), within, fmt.Sprintf("%d/%d", conv, p.Runs), fmt.Sprintf("%.1f", s.Mean()))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claim: f <= 3 converges (f < n/3 optimal, Theorem 4); f = 4 collapses.")
}

// MsgComplexity is E8: per-beat message and byte counts by protocol and
// n, with the full stack measured under both coin layouts — the paper's
// per-instance pipelines (the committed Δ-formula rows, pinned exactly
// in core's complexity tests) and the shared pipeline of Remark 4.1,
// which must be strictly cheaper (about 7.25n vs 14.75n messages and a
// third of the bytes).
func MsgComplexity(w io.Writer, p Params) {
	p = p.orDefault(1, 60, 0)
	fmt.Fprintln(w, "E8 — message complexity per beat (passive adversary, honest messages only)")
	t := stats.NewTable("protocol", "layout", "n", "msgs/beat/node", "bytes/beat/node")
	protos := []struct {
		name, layout string
		mk           func(n int) sim.NodeFactory
	}{
		{"ss-Byz-2-Clock (FM)", "paper", func(int) sim.NodeFactory {
			return core.NewTwoClockProtocolLayout(coin.FMFactory{}, core.LayoutPaper)
		}},
		{"ss-Byz-Clock-Sync (FM)", "paper", func(int) sim.NodeFactory {
			return core.NewClockSyncProtocolLayout(64, coin.FMFactory{}, core.LayoutPaper)
		}},
		{"ss-Byz-Clock-Sync (FM)", "shared", func(int) sim.NodeFactory {
			return core.NewClockSyncProtocolLayout(64, coin.FMFactory{}, core.LayoutShared)
		}},
		{"ss-Byz-Clock-Sync (Rabin)", "paper", func(int) sim.NodeFactory {
			return core.NewClockSyncProtocolLayout(64, coin.RabinFactory{Seed: 1}, core.LayoutPaper)
		}},
		{"DolevWelch", "-", func(int) sim.NodeFactory { return baseline.NewDolevWelchProtocol(64) }},
		{"PhaseKing", "-", func(int) sim.NodeFactory { return baseline.NewPhaseKingProtocol(64) }},
	}
	for _, pr := range protos {
		for _, n := range []int{4, 7, 10} {
			f := (n - 1) / 3
			cfg := sim.Config{N: n, F: f, Seed: 1, CountBytes: true}
			e := sim.New(cfg, pr.mk(n))
			beats := p.MaxBeats
			e.Run(beats)
			perNodeBeat := float64(beats) * float64(n-f)
			msgs := float64(e.HonestMsgs) / perNodeBeat
			bytes := float64(e.HonestBytes) / perNodeBeat
			t.AddRow(pr.name, pr.layout, fmt.Sprint(n), fmt.Sprintf("%.1f", msgs), fmt.Sprintf("%.0f", bytes))
		}
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "note: FM coin dominates (O(n^2) field elements per node per beat); the clock")
	fmt.Fprintln(w, "layers add O(n) small messages — the paper's 'constant overhead' claim. The")
	fmt.Fprintln(w, "shared layout (Remark 4.1) runs one pipeline per node instead of three, cutting")
	fmt.Fprintln(w, "the coin term to a third while the harness holds behaviour equivalent.")
}

// AblationCoin is E9: the same 2-clock under common vs non-common coins.
func AblationCoin(w io.Writer, p Params) {
	p = p.orDefault(20, 20000, 8)
	fmt.Fprintln(w, "E9 / §6.1 — why a *common* coin: ss-Byz-2-Clock under different coins (n=7, f=2, silent adversary)")
	t := stats.NewTable("coin", "mean", "p95", "fails")
	for _, c := range []struct {
		name    string
		factory coin.Factory
	}{
		{"FM (common, no setup)", coin.FMFactory{}},
		{"Rabin (common, trusted setup)", coin.RabinFactory{Seed: 2}},
		{"Local (NOT common)", coin.LocalFactory{}},
	} {
		s, fails := convergenceSample(p, 7, 2, 2, silent, core.NewTwoClockProtocol(c.factory))
		t.AddRow(c.name, fmt.Sprintf("%.1f", s.Mean()), fmt.Sprintf("%.0f", s.Quantile(0.95)), fmt.Sprint(fails))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claim: common coins give constant convergence; the local coin degrades toward")
	fmt.Fprintln(w, "Dolev-Welch-style behaviour (all honest ⊥-holders must guess alike).")
}

// PowerVsSync is E11: the paper's Section 5 argument, measured. The
// recursive 2^j-clock construction (PowerClock) accumulates a level per
// doubling and its slowest level flips every k/2 beats, so convergence
// grows with k; ss-Byz-Clock-Sync (Figure 4) replaces it with a constant-
// overhead agreement cycle and stays flat.
func PowerVsSync(w io.Writer, p Params) {
	p = p.orDefault(12, 0, 12)
	fmt.Fprintln(w, "E11 / §5 — recursive 2^j-clock vs ss-Byz-Clock-Sync (n=4, f=1, Rabin coin, silent adversary)")
	t := stats.NewTable("k", "PowerClock mean", "ClockSync mean")
	for _, k := range []uint64{4, 8, 16, 32, 64} {
		budget := 500 * int(k)
		var power, sync stats.Sample
		for seed := 0; seed < p.Runs; seed++ {
			cfg := sim.Config{N: 4, F: 1, Seed: int64(seed) + 21, NewAdversary: silent, ScrambleStart: true}
			e := sim.New(cfg, core.NewPowerClockProtocol(k, coin.RabinFactory{Seed: int64(seed)}))
			power.AddInt(beatsOr(sim.MeasureConvergence(e, k, budget, p.Hold), budget))

			e = sim.New(cfg, core.NewClockSyncProtocol(k, coin.RabinFactory{Seed: int64(seed)}))
			sync.AddInt(beatsOr(sim.MeasureConvergence(e, k, budget, p.Hold), budget))
		}
		t.AddRow(fmt.Sprint(k), fmt.Sprintf("%.1f", power.Mean()), fmt.Sprintf("%.1f", sync.Mean()))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claim (§5): the recursive construction's convergence grows with k; Figure 4's is flat.")
}

// DWAdaptation is E12: Section 6.1's sketch — Dolev–Welch with its local
// guesses replaced by the self-stabilizing common coin — measured against
// both the original and the full clock-sync algorithm.
func DWAdaptation(w io.Writer, p Params) {
	p = p.orDefault(12, 30000, 10)
	fmt.Fprintln(w, "E12 / §6.1 — Dolev–Welch adapted to the common coin (n=10, f=3, silent adversary)")
	t := stats.NewTable("protocol", "k", "mean", "p95", "fails")
	row := func(name string, k uint64, factory sim.NodeFactory) {
		s, fails := convergenceSample(p, 10, 3, k, silent, factory)
		t.AddRow(name, fmt.Sprint(k), fmt.Sprintf("%.1f", s.Mean()),
			fmt.Sprintf("%.0f", s.Quantile(0.95)), fmt.Sprint(fails))
	}
	for _, k := range []uint64{2, 16, 256} {
		row("DolevWelch (local coin)", k, baseline.NewDolevWelchProtocol(k))
	}
	for _, k := range []uint64{2, 16, 256} {
		row("DolevWelch + ss-Byz-Coin-Flip", k, baseline.NewDolevWelchCommonProtocol(k, coin.RabinFactory{Seed: 31}))
	}
	for _, k := range []uint64{2, 16, 256} {
		row("ss-Byz-Clock-Sync", k, core.NewClockSyncProtocol(k, coin.RabinFactory{Seed: 31}))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claims (§6.1): the adaptation is exponentially faster than the original but")
	fmt.Fprintln(w, "still k-dependent; ss-Byz-Clock-Sync alone is constant in both n and k.")
}

// SelfStab is E10: re-convergence after transient faults equals
// fresh-start convergence (Definition 2.8's convergence property).
func SelfStab(w io.Writer, p Params) {
	p = p.orDefault(20, 2500, 16)
	fmt.Fprintln(w, "E10 — self-stabilization (n=7, f=2, k=16, FM coin, splitter adversary)")
	var fresh, rescramble, phantom stats.Sample
	for seed := 0; seed < p.Runs; seed++ {
		cfg := sim.Config{
			N: 7, F: 2, Seed: int64(seed) + 13,
			NewAdversary: splitter, ScrambleStart: true,
		}
		e := sim.New(cfg, core.NewClockSyncProtocol(16, coin.FMFactory{}))
		res := sim.MeasureConvergence(e, 16, p.MaxBeats, p.Hold)
		fresh.AddInt(beatsOr(res, p.MaxBeats))

		e.ScrambleHonest()
		res = sim.MeasureConvergence(e, 16, p.MaxBeats, p.Hold)
		rescramble.AddInt(beatsOr(res, p.MaxBeats))

		e.InjectPhantoms([]proto.Message{
			proto.Envelope{Child: 2, Inner: core.FullClockMsg{V: 7}},
			proto.Envelope{Child: 2, Inner: core.BitMsg{B: 1}},
			proto.Envelope{Child: 2, Inner: core.ProposeMsg{V: 3}},
		})
		res = sim.MeasureConvergence(e, 16, p.MaxBeats, p.Hold)
		phantom.AddInt(beatsOr(res, p.MaxBeats))
	}
	t := stats.NewTable("scenario", "mean", "p95", "max")
	for _, row := range []struct {
		name string
		s    *stats.Sample
	}{
		{"fresh scrambled start", &fresh},
		{"memory scramble mid-run", &rescramble},
		{"phantom message burst", &phantom},
	} {
		t.AddRow(row.name, fmt.Sprintf("%.1f", row.s.Mean()),
			fmt.Sprintf("%.0f", row.s.Quantile(0.95)), fmt.Sprintf("%.0f", row.s.Max()))
	}
	fmt.Fprintln(w, t)
	fmt.Fprintln(w, "claim: all three distributions match — convergence from *any* state (Definition 3.2).")
}

// SweepGrid maps an E-series experiment name to the equivalent sweep
// grid: the sweep-backed write path. cmd/sweep plans and executes the
// grid across shards/processes; cmd/repro then reads the completed store
// with ReportStore instead of re-running in process. Zero Params fields
// select each experiment's committed defaults; the seed derivation
// (7*i + 1) matches convergenceSample, so a 1-seed sweep cell replays
// the in-process experiment's first run exactly.
func SweepGrid(name string, p Params) (sweep.Grid, error) {
	switch name {
	case "twoclock": // E3 / Figure 2
		p = p.orDefault(30, 2000, 8)
		return sweep.Grid{
			Protocol: "twoclock", Coin: "fm",
			Ns:          []int{4, 7, 10, 13},
			Adversaries: []string{"splitter"},
			Layouts:     []string{"shared"},
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "fourclock": // E4 / Figure 3
		p = p.orDefault(30, 3000, 16)
		return sweep.Grid{
			Protocol: "fourclock", Coin: "fm",
			Ns:          []int{4, 7, 10},
			Adversaries: []string{"silent"},
			Layouts:     []string{"shared"},
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "clocksync": // E1 row 1, widened across adversaries and layouts
		p = p.orDefault(10, 6000, 12)
		return sweep.Grid{
			Protocol: "clocksync", Coin: "fm", K: 64,
			Ns:          []int{4, 7, 10, 13, 16},
			Adversaries: []string{"silent", "splitter"},
			Layouts:     []string{"shared", "paper"},
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "clocksync32": // the ROADMAP n=32 workload the in-process path cannot hold
		p = p.orDefault(4, 400, 12)
		return sweep.Grid{
			Protocol: "clocksync", Coin: "fm", K: 64,
			Ns:          []int{32},
			Adversaries: []string{"silent", "splitter"},
			Layouts:     []string{"shared"},
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "resilience": // E7 across n, oracle row included (bitoraclestacked)
		p = p.orDefault(8, 700, 16)
		return sweep.Grid{
			Protocol: "clocksync", Coin: "fm", K: 16,
			Ns:          []int{7, 10, 13},
			Adversaries: []string{"stacked", "bitoraclestacked", "gradesplitter", "recovercorruptor"},
			Layouts:     []string{"shared"},
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "remark31": // E6's broken stale-rand variant under the phase-3
		// oracle splitter; compare against the published algorithm's rows
		// from the "clocksync" grid (the fresh-rand side) or a clocksync
		// grid widened with "bitoraclephase3". Both adversaries are fully
		// serializable since the bit-oracle reads the coin from the
		// adversary's own honest node copy.
		p = p.orDefault(30, 4000, 16)
		return sweep.Grid{
			Protocol: "clocksyncstale", Coin: "rabin", K: 16,
			Ns:          []int{7},
			Adversaries: []string{"bitoraclephase3", "splitter"},
			Layouts:     []string{"shared"},
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "netloss": // E13: convergence vs transport drop rate. The paper
		// assumes a reliable synchronous network; this grid measures what
		// breaks when that assumption is broken at the transport — seeded
		// message loss at escalating rates, plus compound loss+reorder —
		// across cluster sizes. Measured shape: at small n the protocol
		// degrades gracefully (convergence slows, occasional closure
		// violations, self-stabilization re-enters the synced state), but
		// the per-beat probability that every needed message survives
		// decays like (1-p)^O(n), so larger clusters hit a loss cliff —
		// n=8 stops converging within the budget around 30% loss. The
		// networked runtime's retransmission (noderuntime Real mode) is
		// what buys the loss tolerance back; this grid is the engine-side
		// baseline it is measured against.
		p = p.orDefault(10, 4000, 12)
		return sweep.Grid{
			Protocol: "clocksync", Coin: "fm", K: 16,
			Ns:          []int{4, 8, 16},
			Adversaries: []string{"passive", "splitter"},
			Layouts:     []string{"shared"},
			Faults:      []string{"none", "loss10", "loss20", "loss30", "loss30+reorder"},
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "multitenant": // the "millions of users" workload: every unit
		// multiplexes 100 tenant instances lockstep on one internal/multi
		// engine, so one grid cell measures a hundred independent seeded
		// runs' aggregate — all-converged, slowest tenant, traffic per
		// node-beat — while exercising the shared arenas and stacked
		// kernel passes at service scale. Per-tenant results are
		// byte-identical to standalone runs (the multi differential
		// harness), so this grid's distribution claims compose with the
		// single-instance ones.
		p = p.orDefault(3, 700, 12)
		return sweep.Grid{
			Protocol: "clocksync", Coin: "fm", K: 16,
			Ns:          []int{4, 7},
			Adversaries: []string{"passive", "splitter", "replayer"},
			Layouts:     []string{"shared"},
			Tenants:     100,
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	case "nettenants": // networked multi-tenancy: every unit is a
		// Lockstep noderuntime cluster over real loopback sockets — UDP
		// and TCP substrates as a grid dimension — multiplexing 25 tenant
		// instances behind 4 endpoints with tenant-batched frames, under
		// escalating transport-fault schedules. Lockstep networked runs
		// replay the engine byte-identically per tenant (the multi
		// differential harness), so this grid's convergence rows should
		// match the engine's at the same seeds; what it adds is the proof
		// that the numbers survive real sockets, real frame encode/decode
		// and sender-side fault injection, at O(links) frames per beat
		// regardless of tenant count. The beat budget is generous because
		// the aggregate reports the slowest of 25 tenants: under splitter
		// + loss15+dup10 the convergence tail reaches ~600 beats.
		p = p.orDefault(2, 900, 8)
		return sweep.Grid{
			Protocol: "clocksync", Coin: "fm", K: 16,
			Ns:          []int{4},
			Adversaries: []string{"passive", "splitter"},
			Layouts:     []string{"shared"},
			Faults:      []string{"none", "loss15+dup10", "partition+reorder"},
			Nets:        []string{"udp", "tcp"},
			Tenants:     25,
			Seeds:       p.Runs, MaxBeats: p.MaxBeats, Hold: p.Hold,
		}, nil
	default:
		return sweep.Grid{}, fmt.Errorf("experiments: no sweep grid named %q (want twoclock, fourclock, clocksync, clocksync32, resilience, remark31, netloss, multitenant or nettenants)", name)
	}
}

// SweepGridNames lists the experiment names SweepGrid accepts.
func SweepGridNames() []string {
	return []string{"twoclock", "fourclock", "clocksync", "clocksync32", "resilience", "remark31", "netloss", "multitenant", "nettenants"}
}

// ReportStore renders the aggregate tables of a completed (merged) sweep
// store: the sweep-backed read path of the E-series convergence
// experiments. Aggregation streams the columns (stats.Stream /
// stats.Histogram), so the report's memory is independent of seed count.
func ReportStore(w io.Writer, dir string) error {
	st, err := sweep.Open(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E-sweep — aggregates from store %s\n", dir)
	if err := sweep.Render(w, st); err != nil {
		return err
	}
	// Only state claims this grid can exhibit: the flat-in-n claim needs
	// more than one n, and the Remark 4.1 layout comparison needs both
	// layouts on the full clock-sync stack (the 2-clock runs a single
	// coin pipeline either way, so the layouts cost the same there).
	g := st.Grid()
	fmt.Fprintln(w, "claims: closure 0 once converged (Definition 3.2).")
	if len(g.Ns) > 1 {
		fmt.Fprintln(w, "claims: mean flat in n per adversary (expected constant convergence).")
	}
	if g.Protocol == "clocksync" && len(g.Layouts) > 1 {
		fmt.Fprintln(w, "claims: shared layout strictly cheaper in msgs and bytes than paper (Remark 4.1).")
	}
	return nil
}

func beatsOr(res sim.ConvergenceResult, cap int) int {
	if !res.Converged {
		return cap
	}
	return res.ConvergedAt
}

func pct(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(a)/float64(b))
}
