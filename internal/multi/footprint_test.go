package multi_test

import (
	"os"
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/multi"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/sim"
)

// Pre-optimization resident baselines, measured on the seed machine at
// T=1000 with 12 warm beats (git history: before the EndBeat slab
// parking, engine scratch pooling, gvss rowLen/coefShare compaction,
// pairTally, per-group pool views and Arena.Compact landed). The
// regression gates below hold the optimized engine at better than 3×
// under these — measured values came in at ~58.6KB (n=4) and ~198KB
// (n=7) per tenant, so the gates have slack for allocator noise across
// toolchains without ever letting a 3× regression through.
const (
	baselineBytesPerTenantN4 = 194_279
	baselineBytesPerTenantN7 = 610_511
)

func footprintConfig(n, f, tenants int) multi.Config {
	return multi.Config{
		Tenants: tenants,
		Workers: 1,
		Node:    sim.Config{N: n, F: f, Seed: 11, ScrambleStart: true},
	}
}

// TestResidentFootprintFloor is the tentpole's memory gate: the
// resident bytes/tenant of a warm T=1000 engine must stay at least 3×
// under the pre-optimization baseline, for both the minimal (n=4) and
// the mid-size (n=7) cluster shape.
func TestResidentFootprintFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("footprint measurement forces full GCs")
	}
	factory := core.NewClockSyncProtocol(testK, coin.FMFactory{})
	cases := []struct {
		n, f     int
		baseline float64
	}{
		{4, 1, baselineBytesPerTenantN4},
		{7, 2, baselineBytesPerTenantN7},
	}
	for _, tc := range cases {
		fp := multi.MeasureFootprint(footprintConfig(tc.n, tc.f, 1000), factory, 12)
		limit := tc.baseline / 3
		t.Logf("n=%d: %d tenants resident, %.0f bytes/tenant (baseline %.0f, 3x limit %.0f)",
			tc.n, fp.Tenants, fp.BytesPerTenant, tc.baseline, limit)
		if fp.BytesPerTenant <= 0 {
			t.Fatalf("n=%d: degenerate footprint %+v", tc.n, fp)
		}
		if fp.BytesPerTenant > limit {
			t.Fatalf("n=%d: %.0f bytes/tenant exceeds the 3x-reduction gate %.0f (baseline %.0f)",
				tc.n, fp.BytesPerTenant, limit, tc.baseline)
		}
	}
}

// TestResident100K is the tentpole's scale proof: 100,000 tenants
// resident and stepping on one engine, still under the per-tenant
// memory gate. The build takes minutes and holds ~6 GB of live heap,
// so it runs only when the smoke harness asks for it explicitly
// (scripts/multitenant_smoke.sh, gated on machine RAM).
func TestResident100K(t *testing.T) {
	if os.Getenv("SSBYZ_SMOKE_100K") == "" {
		t.Skip("set SSBYZ_SMOKE_100K=1 to run the 100k-tenant footprint proof (~6 GB live heap)")
	}
	factory := core.NewClockSyncProtocol(testK, coin.FMFactory{})
	fp := multi.MeasureFootprint(footprintConfig(4, 1, 100_000), factory, 8)
	t.Logf("n=4: %d tenants resident, %.0f bytes/tenant (%.2f GB total)",
		fp.Tenants, fp.BytesPerTenant, float64(fp.ResidentBytes)/(1<<30))
	if fp.Tenants != 100_000 {
		t.Fatalf("measured %d tenants, want 100000", fp.Tenants)
	}
	if limit := float64(baselineBytesPerTenantN4) / 3; fp.BytesPerTenant > limit {
		t.Fatalf("%.0f bytes/tenant exceeds the 3x gate %.0f at T=100k", fp.BytesPerTenant, limit)
	}
}

// TestRegisterFootprint: the Func gauges export the cached reading and
// a nil registry registers nothing (the zero-footprint invariant).
func TestRegisterFootprint(t *testing.T) {
	fp := multi.Footprint{Tenants: 1000, ResidentBytes: 50_000_000, BytesPerTenant: 50_000}
	reg := obs.NewRegistry()
	multi.RegisterFootprint(reg, func() multi.Footprint { return fp })
	multi.RegisterFootprint(nil, func() multi.Footprint { panic("nil registry must not invoke fp") })
	got := map[string]float64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	if got["ssbyz_multi_resident_tenants"] != 1000 {
		t.Fatalf("resident_tenants = %v, want 1000", got["ssbyz_multi_resident_tenants"])
	}
	if got["ssbyz_multi_bytes_per_tenant"] != 50_000 {
		t.Fatalf("bytes_per_tenant = %v, want 50000", got["ssbyz_multi_bytes_per_tenant"])
	}
}
