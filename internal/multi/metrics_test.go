package multi_test

import (
	"testing"

	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/multi"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/sim"
)

func seriesValue(reg *obs.Registry, name string) (float64, bool) {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// TestMultiMetricsAggregate checks the multiplexed engine's aggregate
// series against ground truth: tenant gauge = T, beats = steps,
// tenant-beats = T x steps, and the summed message/byte counters equal
// the engine's own cumulative sums. Also pins the deliberate design
// choice that tenants are NOT per-series labeled (cardinality at
// service scale), and that per-tenant determinism is untouched by
// instrumentation.
func TestMultiMetricsAggregate(t *testing.T) {
	const T, beats = 6, 10
	factory := core.NewClockSyncProtocol(16, coin.FMFactory{})
	build := func(reg *obs.Registry) *multi.Engine {
		return multi.New(multi.Config{
			Tenants: T,
			Workers: 2,
			Node:    sim.Config{N: 4, F: 1, Seed: 21, CountBytes: true, ScrambleStart: true},
			Metrics: reg,
		}, factory)
	}
	reg := obs.NewRegistry()
	m := build(reg)
	m.ScrambleHonest()
	m.Run(beats)

	checks := []struct {
		series string
		want   float64
	}{
		{"ssbyz_multi_tenants", T},
		{"ssbyz_multi_beats_total", beats},
		{"ssbyz_multi_tenant_beats_total", T * beats},
		{"ssbyz_multi_honest_msgs_total", float64(m.HonestMsgs())},
		{"ssbyz_multi_faulty_msgs_total", float64(m.FaultyMsgs())},
		{"ssbyz_multi_honest_bytes_total", float64(m.HonestBytes())},
	}
	for _, c := range checks {
		got, ok := seriesValue(reg, c.series)
		if !ok {
			t.Fatalf("series %s missing", c.series)
		}
		if got != c.want {
			t.Fatalf("%s = %v, want %v", c.series, got, c.want)
		}
	}
	// No per-tenant labels anywhere: every multi series is aggregate.
	for _, s := range reg.Snapshot() {
		for _, l := range s.Labels {
			if l.Key == "tenant" {
				t.Fatalf("series %s carries a tenant label; multi must stay aggregate", s.Name)
			}
		}
	}

	// Instrumentation must not perturb tenant behavior: clocks equal a
	// detached run's, beat for beat.
	ref := build(nil)
	ref.ScrambleHonest()
	ref.Run(beats)
	for tn := 0; tn < T; tn++ {
		a := sim.ReadClocks(m.Tenant(tn))
		b := sim.ReadClocks(ref.Tenant(tn))
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				t.Fatalf("tenant %d node %d: instrumented clock %d != detached %d", tn, i, a.Values[i], b.Values[i])
			}
		}
	}
}

// TestMultiMeasureConvergenceGauges checks that a convergence
// measurement drives the converged-tenants gauge to T on a clean run.
func TestMultiMeasureConvergenceGauges(t *testing.T) {
	const T = 4
	reg := obs.NewRegistry()
	m := multi.New(multi.Config{
		Tenants: T,
		Node:    sim.Config{N: 4, F: 1, Seed: 9, ScrambleStart: true},
		Metrics: reg,
	}, core.NewClockSyncProtocol(16, coin.FMFactory{}))
	m.ScrambleHonest()
	res := multi.MeasureConvergence(m, 16, 400, 8)
	converged := 0
	for _, r := range res {
		if r.Converged {
			converged++
		}
	}
	got, ok := seriesValue(reg, "ssbyz_multi_converged_tenants")
	if !ok {
		t.Fatalf("converged gauge missing")
	}
	if int(got) != converged {
		t.Fatalf("converged gauge %v, measurement says %d", got, converged)
	}
	if converged != T {
		t.Logf("note: only %d/%d tenants converged within budget", converged, T)
	}
}
