package multi

import (
	"runtime"

	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/sim"
)

// Footprint is one resident-memory measurement of a multiplexed engine:
// the heap the engine (and everything reachable from it) holds at
// steady state, expressed per tenant. It is a RESIDENT measurement —
// live bytes after a full GC, not allocation throughput — so it answers
// the service-capacity question B/op cannot: how many tenants fit in
// this machine's memory.
type Footprint struct {
	// Tenants is T, the number of resident instances measured.
	Tenants int
	// N is the per-tenant cluster size.
	N int
	// BaselineBytes is the live heap before the engine was built.
	BaselineBytes uint64
	// ResidentBytes is the live-heap delta attributable to the engine at
	// steady state (after WarmBeats beats and a forced GC).
	ResidentBytes uint64
	// BytesPerTenant is ResidentBytes / Tenants.
	BytesPerTenant float64
	// WarmBeats is how many beats ran before the steady-state reading.
	WarmBeats int
}

// LiveHeap forces a full collection and returns the live heap size.
// Two GC cycles settle finalizer-revived and sync.Pool-cached memory so
// back-to-back measurements are comparable. Exported for harnesses
// (sweep's resident column) that build the engine themselves and
// bracket its lifetime with their own readings.
func LiveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// MeasureFootprint builds a multiplexed engine from cfg, steps it
// warmBeats beats so every lazily allocated path (pool arenas, scratch
// buffers, pipeline slots) has reached steady state, and returns the
// live-heap delta per tenant. The engine is released before returning —
// the measurement is of residency, not a handle.
//
// The reading is a process-global heap delta, so callers should run it
// in a quiet process (the footprint test and cmd/benchjson do); a few
// KB of unrelated allocation noise is irrelevant at T >= 1e3.
func MeasureFootprint(cfg Config, factory sim.NodeFactory, warmBeats int) Footprint {
	before := LiveHeap()
	m := New(cfg, factory)
	m.Run(warmBeats)
	after := LiveHeap()
	fp := Footprint{
		Tenants:       m.Tenants(),
		N:             m.N(),
		BaselineBytes: before,
		WarmBeats:     warmBeats,
	}
	if after > before {
		fp.ResidentBytes = after - before
	}
	fp.BytesPerTenant = float64(fp.ResidentBytes) / float64(fp.Tenants)
	runtime.KeepAlive(m)
	return fp
}

// RegisterFootprint exports a footprint reading on r as Func gauges —
// ssbyz_multi_resident_tenants and ssbyz_multi_bytes_per_tenant —
// resolved at snapshot time from fp. fp runs on every scrape, so it
// should return a cached reading (measure with MeasureFootprint on the
// harness's own cadence, not the scraper's: a measurement forces full
// GCs). A nil registry registers nothing and costs nothing, matching
// the package-wide nil-metrics invariant.
func RegisterFootprint(r *obs.Registry, fp func() Footprint) {
	if r == nil {
		return
	}
	r.Func("ssbyz_multi_resident_tenants",
		"Tenant instances resident in the last footprint measurement.",
		obs.KindGauge, func() float64 { return float64(fp().Tenants) })
	r.Func("ssbyz_multi_bytes_per_tenant",
		"Resident heap bytes per tenant in the last footprint measurement.",
		obs.KindGauge, func() float64 { return fp().BytesPerTenant })
}
