package multi_test

// Differential harness for multi-tenant multiplexing: a T-tenant
// engine must replay byte-identically, per tenant, to T independent
// single-tenant engines built from the same per-tenant configs — same
// per-beat clock traces, same phase-3 rand streams, same cumulative
// message and byte metrics — across the adversary suite, cluster
// sizes 4/8/16, shared-scheduler worker counts 1 and 8, and pool
// modes on/poison (plus an unpooled run), through a mid-run memory
// scramble.
//
// This is the proof that none of the multiplexing machinery leaks
// across tenants: not the shared pool arenas (poison mode scribbles
// recycled buffers, so any cross-tenant payload aliasing corrupts a
// trace), not the stacked grid evaluations (a single lane misplaced in
// the deep kernel pass lands in another tenant's payload), and not the
// interleaved phase fan-outs.

import (
	"fmt"
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/multi"
	"ssbyzclock/internal/sim"
)

// advCase mirrors the core suite: mk builds a per-engine adversary
// constructor; eng lets oracle-equipped attacks read the public bit
// from the engine they run inside (assigned after construction, before
// the first Step).
type advCase struct {
	name string
	mk   func(eng **sim.Engine) func(*adversary.Context) adversary.Adversary
}

func adversarySuite() []advCase {
	return []advCase{
		{"replayer", func(**sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} }
		}},
		{"kingspoiler", func(**sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary { return &adversary.KingSpoiler{Ctx: ctx} }
		}},
		{"oraclesplitter", func(eng **sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary {
				return &adversary.OracleSplitter{Ctx: ctx, BitOracle: func() byte {
					return (*eng).Node(0).(*core.ClockSync).RandBit()
				}}
			}
		}},
		{"phase3", func(eng **sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary {
				return &adversary.Phase3Splitter{Ctx: ctx, BitOracle: func() byte {
					return (*eng).Node(0).(*core.ClockSync).RandBit()
				}}
			}
		}},
		{"coinattack", func(**sim.Engine) func(*adversary.Context) adversary.Adversary {
			return func(ctx *adversary.Context) adversary.Adversary {
				return adversary.Chain{Advs: []adversary.Adversary{
					&adversary.GradeSplitter{Ctx: ctx},
					&adversary.ShareCorruptor{Ctx: ctx},
					&adversary.RecoverCorruptor{Ctx: ctx},
				}}
			}
		}},
	}
}

// trace fingerprints one tenant's run: per-beat honest clock values
// and rand bits, plus cumulative metrics (bytes are content-sensitive:
// a single stale byte in any payload changes them).
type trace struct {
	clocks      [][]uint64
	rands       [][]byte
	honestMsgs  uint64
	faultyMsgs  uint64
	honestBytes uint64
}

func snapshot(tr *trace, eng *sim.Engine) {
	st := sim.ReadClocks(eng)
	tr.clocks = append(tr.clocks, append([]uint64(nil), st.Values...))
	rands := make([]byte, 0, len(st.Values))
	for _, id := range eng.HonestIDs() {
		rands = append(rands, eng.Node(id).(*core.ClockSync).RandBit())
	}
	tr.rands = append(tr.rands, rands)
}

func finishTrace(tr *trace, eng *sim.Engine) {
	tr.honestMsgs, tr.faultyMsgs, tr.honestBytes = eng.HonestMsgs, eng.FaultyMsgs, eng.HonestBytes
}

const testK = 16

func tenantConfig(n, f int, seed int64, adv advCase, mode sim.PoolMode, engPtr **sim.Engine) sim.Config {
	return sim.Config{
		N: n, F: f, Seed: seed,
		CountBytes:    true,
		ScrambleStart: true,
		Pool:          mode,
		NewAdversary:  adv.mk(engPtr),
	}
}

// runOracle runs tenant seed's standalone single-tenant engine.
func runOracle(n, f int, seed int64, adv advCase, mode sim.PoolMode, beats int) trace {
	var eng *sim.Engine
	cfg := tenantConfig(n, f, seed, adv, mode, &eng)
	cfg.Workers = 1
	eng = sim.New(cfg, core.NewClockSyncProtocolLayout(testK, coin.FMFactory{}, core.LayoutShared))
	var tr trace
	for i := 0; i < beats; i++ {
		eng.Step()
		snapshot(&tr, eng)
	}
	eng.ScrambleHonest()
	for i := 0; i < beats; i++ {
		eng.Step()
		snapshot(&tr, eng)
	}
	finishTrace(&tr, eng)
	return tr
}

// runMulti runs T tenants (seeds seed..seed+T-1) multiplexed on one
// engine and returns each tenant's trace.
func runMulti(n, f, T int, seed int64, adv advCase, mode sim.PoolMode, workers, beats int) []trace {
	engPtrs := make([]*sim.Engine, T)
	cfg := multi.Config{
		Tenants: T,
		Workers: workers,
		NodeFor: func(t int) sim.Config {
			return tenantConfig(n, f, seed+int64(t), adv, mode, &engPtrs[t])
		},
	}
	m := multi.New(cfg, core.NewClockSyncProtocolLayout(testK, coin.FMFactory{}, core.LayoutShared))
	for t := 0; t < T; t++ {
		engPtrs[t] = m.Tenant(t)
	}
	trs := make([]trace, T)
	record := func(count int) {
		for i := 0; i < count; i++ {
			m.Step()
			for t := 0; t < T; t++ {
				snapshot(&trs[t], m.Tenant(t))
			}
		}
	}
	record(beats)
	m.ScrambleHonest()
	record(beats)
	for t := 0; t < T; t++ {
		finishTrace(&trs[t], m.Tenant(t))
	}
	return trs
}

func diffTraces(t *testing.T, want, got trace, label string) {
	t.Helper()
	if got.honestMsgs != want.honestMsgs || got.faultyMsgs != want.faultyMsgs || got.honestBytes != want.honestBytes {
		t.Fatalf("%s: metrics diverged: honest %d vs %d, faulty %d vs %d, bytes %d vs %d",
			label, got.honestMsgs, want.honestMsgs, got.faultyMsgs, want.faultyMsgs,
			got.honestBytes, want.honestBytes)
	}
	for b := range want.clocks {
		for i := range want.clocks[b] {
			if got.clocks[b][i] != want.clocks[b][i] {
				t.Fatalf("%s: clock trace diverged at beat %d node %d: %d vs %d",
					label, b, i, got.clocks[b][i], want.clocks[b][i])
			}
		}
		for i := range want.rands[b] {
			if got.rands[b][i] != want.rands[b][i] {
				t.Fatalf("%s: rand trace diverged at beat %d honest#%d", label, b, i)
			}
		}
	}
}

// TestMultiTenantDifferential is the headline equivalence proof:
// multiplexed tenants replay their standalone oracles bit for bit
// across the adversary suite × n ∈ {4,8,16} × workers {1,8} × pool
// on/poison. The oracle side runs plain pooled, so on-vs-poison also
// cross-checks the arena recycling discipline.
func TestMultiTenantDifferential(t *testing.T) {
	suite := adversarySuite()
	for _, n := range []int{4, 8, 16} {
		f := (n - 1) / 3
		T := 3
		beats := 32
		advs := suite
		switch n {
		case 8:
			beats = 24
		case 16:
			// Beats cost milliseconds at n=16; two suite members cover the
			// recording adversary (pool-lifetime sensitive) and the
			// coin-directed chain (deep GVSS corruption).
			beats = 8
			advs = []advCase{suite[0], suite[4]}
		}
		for _, adv := range advs {
			t.Run(fmt.Sprintf("n=%d/%s", n, adv.name), func(t *testing.T) {
				oracles := make([]trace, T)
				for tt := 0; tt < T; tt++ {
					oracles[tt] = runOracle(n, f, 7+int64(tt), adv, sim.PoolOn, beats)
				}
				for _, workers := range []int{1, 8} {
					for _, mode := range []sim.PoolMode{sim.PoolOn, sim.PoolPoison} {
						got := runMulti(n, f, T, 7, adv, mode, workers, beats)
						for tt := 0; tt < T; tt++ {
							diffTraces(t, oracles[tt], got[tt],
								fmt.Sprintf("tenant %d, workers=%d, mode=%d", tt, workers, mode))
						}
					}
				}
			})
		}
	}
}

// TestMultiTenantUnpooled covers the pool-off path: no arenas, no
// views, batched evaluation only.
func TestMultiTenantUnpooled(t *testing.T) {
	adv := adversarySuite()[0]
	const n, f, T, beats = 4, 1, 4, 24
	oracle := make([]trace, T)
	for tt := 0; tt < T; tt++ {
		oracle[tt] = runOracle(n, f, 31+int64(tt), adv, sim.PoolOff, beats)
	}
	got := runMulti(n, f, T, 31, adv, sim.PoolOff, 8, beats)
	for tt := 0; tt < T; tt++ {
		diffTraces(t, oracle[tt], got[tt], fmt.Sprintf("unpooled tenant %d", tt))
	}
}

// TestMultiTenantT100Oracle is the smoke-scale grid the CI job runs: a
// hundred tenants multiplexed on one engine match a hundred standalone
// oracles, and convergence measurement sees every tenant converge.
func TestMultiTenantT100Oracle(t *testing.T) {
	adv := adversarySuite()[0]
	const n, f, T, beats = 4, 1, 100, 12
	got := runMulti(n, f, T, 1000, adv, sim.PoolOn, 8, beats)
	for tt := 0; tt < T; tt++ {
		oracle := runOracle(n, f, 1000+int64(tt), adv, sim.PoolOn, beats)
		diffTraces(t, oracle, got[tt], fmt.Sprintf("tenant %d", tt))
	}
}

// TestMeasureConvergence: every tenant of a passive multiplexed run
// converges, and the per-tenant convergence beats match the standalone
// measurement exactly.
func TestMeasureConvergence(t *testing.T) {
	const n, f, T = 4, 1, 8
	const maxBeats, hold = 600, 8
	factory := core.NewClockSyncProtocolLayout(testK, coin.FMFactory{}, core.LayoutShared)
	cfg := multi.Config{
		Tenants: T,
		Workers: 4,
		Node: sim.Config{
			N: n, F: f, Seed: 99,
			ScrambleStart: true,
		},
	}
	m := multi.New(cfg, factory)
	res := multi.MeasureConvergence(m, testK, maxBeats, hold)
	for tt, r := range res {
		if !r.Converged {
			t.Fatalf("tenant %d did not converge in %d beats", tt, maxBeats)
		}
		oracle := sim.New(multi.TenantConfig(cfg, tt), factory)
		want := sim.MeasureConvergence(oracle, testK, maxBeats, hold)
		if r.ConvergedAt != want.ConvergedAt || r.ClosureViolations != want.ClosureViolations {
			t.Fatalf("tenant %d: ConvergedAt=%d violations=%d, standalone %d/%d",
				tt, r.ConvergedAt, r.ClosureViolations, want.ConvergedAt, want.ClosureViolations)
		}
	}
}
