// Package multi multiplexes many independent clock-sync instances
// (tenants) onto one stepping engine — the "millions of users"
// workload: instead of T processes each stepping one protocol stack,
// one engine steps T stacks per beat under a single scheduler.
//
// Three structural ideas, all invisible to the per-tenant protocol
// code:
//
//   - Flat instance-major work layout, chunked for cache residency.
//     Work unit u = t·N + i is tenant t's node i; whole tenants are
//     assigned to scheduler workers in contiguous blocks, and each
//     worker steps its block in chunks of a few dozen tenants, running
//     a chunk's compose, exchange, deliver and recycle phases
//     back-to-back before moving on. A global phase-major sweep would
//     traverse all T tenants' state once per phase — every access a
//     cache miss at service scale; the chunk is sized so its tenants'
//     state stays hot across all phases of the beat.
//   - Batched grid evaluation. Every tenant node's GVSS compose calls
//     defer their EvalGridT invocations to a per-worker
//     field.EvalBatch; after a chunk's compose pass the worker flushes
//     its batcher, which stacks the (identically shaped) coefficient
//     families of the chunk's tenants side by side into single deep
//     evalColumns kernel passes — the regime the SIMD kernels are
//     built for, unreachable by any single instance at small n.
//   - Shared pool arenas. All tenant nodes multiplexed onto one worker
//     lease payload buffers from one shared pool.Arena through a single
//     per-group view, so resident buffer memory scales with one chunk's
//     working set, not with T × the working set. The group runs its
//     tenants strictly sequentially, so one recycle per chunk returns
//     exactly the chunk's leases; Arena.Compact trims the free store
//     back to steady-state demand after transient dealing-phase spikes.
//
// Determinism: a T-tenant engine is byte-identical, per tenant, to T
// independent single-tenant engines built from the same per-tenant
// configs, at every worker count and chunk size. Each tenant keeps its
// own sim.Engine (constructed by sim.New, so all per-tenant RNG
// streams are exactly the standalone ones); tenants never interact, so
// any grouping of their phase executions is equivalent; deferred
// evaluation is bit-identical to inline evaluation (field.EvalBatch);
// and buffer identity never reaches protocol output (the pooling
// contract). The differential harness in this package's tests enforces
// all of it.
package multi

import (
	"fmt"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/sim"
)

// Config describes a multi-tenant cluster: T tenants, each an
// independent sim-engine cluster of the same size.
type Config struct {
	// Tenants is T, the number of independent instances.
	Tenants int
	// Workers sizes the shared scheduler all phases fan out over. 0
	// selects GOMAXPROCS, as in sim.Config.
	Workers int
	// Node is the per-tenant config template. Tenant t runs it with
	// Seed+t (each tenant an independent seeded run); Workers, Pools
	// and Batches are managed by this engine and ignored on the
	// template. Pool selects the pooling mode for the shared arenas.
	Node sim.Config
	// NodeFor, when non-nil, overrides Node: it returns tenant t's
	// full config (including its Seed). All tenants must share N. The
	// differential-harness tests use it to give each tenant its own
	// adversary constructor.
	NodeFor func(t int) sim.Config
	// Metrics, when non-nil, instruments the multiplexed engine with
	// AGGREGATE series only (total tenant-beats, summed messages and
	// bytes, converged-tenant gauges) — per-tenant labels at service
	// scale would mint T series per name, so tenants are deliberately
	// unlabeled. The template's own Metrics field is ignored: tenant
	// engines run detached.
	Metrics *obs.Registry
}

// multiMetrics is the engine-wide aggregate instrumentation. Message
// and byte counters are flushed as per-beat deltas from Step's calling
// goroutine (post-barrier, so tenant state is quiescent); scrapes never
// touch tenant engines.
type multiMetrics struct {
	beats       *obs.Counter
	tenantBeats *obs.Counter
	honestMsgs  *obs.Counter
	faultyMsgs  *obs.Counter
	honestBytes *obs.Counter
	tenants     *obs.Gauge
	converged   *obs.Gauge
	violations  *obs.Gauge

	lastHonestMsgs, lastFaultyMsgs, lastHonestBytes uint64
}

func newMultiMetrics(r *obs.Registry) *multiMetrics {
	if r == nil {
		return nil
	}
	return &multiMetrics{
		beats:       r.Counter("ssbyz_multi_beats_total", "Lockstep beats executed by the multiplexed engine."),
		tenantBeats: r.Counter("ssbyz_multi_tenant_beats_total", "Tenant-beats executed (beats x tenants)."),
		honestMsgs:  r.Counter("ssbyz_multi_honest_msgs_total", "Honest protocol messages across all tenants."),
		faultyMsgs:  r.Counter("ssbyz_multi_faulty_msgs_total", "Adversarial messages across all tenants."),
		honestBytes: r.Counter("ssbyz_multi_honest_bytes_total", "Honest wire bytes across all tenants (CountBytes runs)."),
		tenants:     r.Gauge("ssbyz_multi_tenants", "Resident tenant instances."),
		converged:   r.Gauge("ssbyz_multi_converged_tenants", "Tenants whose convergence hold window has completed."),
		violations:  r.Gauge("ssbyz_multi_closure_violations", "Closure violations observed across tenants this measurement."),
	}
}

func (mm *multiMetrics) flush(m *Engine) {
	if mm == nil {
		return
	}
	mm.beats.Inc()
	mm.tenantBeats.Add(uint64(len(m.tenants)))
	hm, fm, hb := m.HonestMsgs(), m.FaultyMsgs(), m.HonestBytes()
	mm.honestMsgs.Add(hm - mm.lastHonestMsgs)
	mm.lastHonestMsgs = hm
	mm.faultyMsgs.Add(fm - mm.lastFaultyMsgs)
	mm.lastFaultyMsgs = fm
	mm.honestBytes.Add(hb - mm.lastHonestBytes)
	mm.lastHonestBytes = hb
}

// Engine steps T tenant clusters in lockstep. Create with New, then
// Step/Run; per-tenant inspection goes through Tenant.
type Engine struct {
	tenants []*sim.Engine
	n       int // nodes per tenant
	sched   *sim.Scheduler

	// views[g] is worker group g's pool view (nil when pooling is off),
	// shared by every node of every tenant the group owns: a group runs
	// its tenants strictly sequentially through the beat, so one view's
	// lease list sees the whole chunk's leases in compose order and one
	// Recycle per chunk returns exactly them. Compared to a view per
	// (tenant, node) unit this removes T·n Node structs and their lease
	// slices from the resident set.
	views  []*pool.Node
	arenas []*pool.Arena
	// groupPools[g] is the n-slot Pools slice every tenant of group g
	// shares (each slot the group view), handed to sim.New verbatim.
	groupPools [][]*pool.Node
	// peakLeased[g] tracks the largest single-chunk lease count group g
	// has observed — the steady-state free-store demand used as the
	// Arena.Compact keep target.
	peakLeased []int
	batchers   []*field.EvalBatch
	// chunk is the cache-residency grain: tenants stepped back-to-back
	// through all beat phases before the worker moves to the next chunk.
	chunk int
	beat  uint64
	met   *multiMetrics
}

// cacheChunkUnits sizes the per-worker tenant chunk: enough (tenant ×
// node) units that a chunk's flushed eval batch stacks deep — hundreds
// of columns — while the chunk's full protocol state still fits the
// fast cache levels, so the exchange/deliver phases re-read what the
// compose phase just wrote instead of missing to DRAM. 128 units at
// the seed-machine state sizes lands in the low megabytes.
const cacheChunkUnits = 128

// TenantConfig returns the config tenant t would run standalone — the
// oracle side of the differential harness.
func TenantConfig(cfg Config, t int) sim.Config {
	c := cfg.Node
	if cfg.NodeFor != nil {
		c = cfg.NodeFor(t)
	} else {
		c.Seed += int64(t)
	}
	c.Workers = 1
	c.Pools = nil
	c.Batches = nil
	c.Metrics = nil // tenants run detached; the multi engine aggregates
	return c
}

// New builds the multiplexed engine. Panics on malformed configs, like
// sim.New.
func New(cfg Config, factory sim.NodeFactory) *Engine {
	if cfg.Tenants <= 0 {
		panic(fmt.Sprintf("multi: bad tenant count %d", cfg.Tenants))
	}
	first := TenantConfig(cfg, 0)
	n := first.N
	T := cfg.Tenants
	m := &Engine{
		tenants: make([]*sim.Engine, T),
		n:       n,
		sched:   sim.NewScheduler(cfg.Workers),
		met:     newMultiMetrics(cfg.Metrics),
	}
	if m.met != nil {
		m.met.tenants.Set(int64(T))
	}
	pooled, poison := sim.ResolvePoolMode(first.Pool)
	m.chunk = cacheChunkUnits / n
	if m.chunk < 1 {
		m.chunk = 1
	}
	// Whole tenants are assigned to worker groups (WorkerFor over T),
	// so a group can run its tenants' full beats without cross-group
	// barriers; groups beyond the tenant count would sit idle.
	groups := m.sched.Workers()
	if groups > T {
		groups = T
	}
	m.batchers = make([]*field.EvalBatch, groups)
	for g := range m.batchers {
		m.batchers[g] = &field.EvalBatch{}
	}
	if pooled {
		m.arenas = make([]*pool.Arena, groups)
		m.views = make([]*pool.Node, groups)
		m.groupPools = make([][]*pool.Node, groups)
		m.peakLeased = make([]int, groups)
		for g := range m.arenas {
			m.arenas[g] = &pool.Arena{}
			m.views[g] = m.arenas[g].NewView()
			m.views[g].SetPoison(poison)
			ps := make([]*pool.Node, n)
			for i := range ps {
				ps[i] = m.views[g]
			}
			m.groupPools[g] = ps
		}
	}
	for t := 0; t < T; t++ {
		c := TenantConfig(cfg, t)
		if c.N != n {
			panic(fmt.Sprintf("multi: tenant %d has n=%d, tenant 0 has n=%d", t, c.N, n))
		}
		if pooled {
			c.Pools = m.groupPools[m.sched.WorkerFor(T, t)]
		}
		batches := make([]*field.EvalBatch, n)
		for i := range batches {
			batches[i] = m.batchers[m.sched.WorkerFor(T, t)]
		}
		c.Batches = batches
		m.tenants[t] = sim.New(c, factory)
	}
	return m
}

// Tenants returns T.
func (m *Engine) Tenants() int { return len(m.tenants) }

// N returns the per-tenant cluster size.
func (m *Engine) N() int { return m.n }

// Beat returns the number of completed beats.
func (m *Engine) Beat() uint64 { return m.beat }

// Tenant returns tenant t's engine for inspection (clocks, metrics,
// phantom injection). Stepping it directly would desynchronize the
// lockstep; use Step on the multi engine.
func (m *Engine) Tenant(t int) *sim.Engine { return m.tenants[t] }

// Step executes one beat for every tenant: one fan-out over worker
// groups, each group walking its contiguous tenant block in
// cache-sized chunks. Per chunk: compose every node (deferring grid
// evals to the group's batcher), flush the batcher (one stacked
// kernel pass over the whole chunk, before any payload is read),
// then the per-tenant exchange, deliver, arena-recycle and
// beat-finish passes. Within a tenant the phase ordering of
// sim.Engine.Step holds unchanged; across tenants there is nothing to
// order.
func (m *Engine) Step() {
	groups := len(m.batchers)
	m.sched.ForEach(groups, func(_ *sim.WorkerScratch, g int) {
		m.stepGroup(g)
	})
	m.beat++
	m.met.flush(m)
}

// stepGroup runs one beat for worker group g's tenant block. ForEach
// over the group count maps index g to exactly one invocation per
// fan-out, so the group's batcher and arena are touched by one
// goroutine at a time, with ForEach's barrier ordering accesses
// across beats.
func (m *Engine) stepGroup(g int) {
	T, n := len(m.tenants), m.n
	groups := len(m.batchers)
	block := (T + groups - 1) / groups // mirrors Scheduler.WorkerFor(T, ·)
	t0 := g * block
	t1 := t0 + block
	if t1 > T {
		t1 = T
	}
	for c0 := t0; c0 < t1; c0 += m.chunk {
		c1 := c0 + m.chunk
		if c1 > t1 {
			c1 = t1
		}
		for t := c0; t < c1; t++ {
			e := m.tenants[t]
			for i := 0; i < n; i++ {
				e.ComposeNode(i)
			}
		}
		m.batchers[g].Flush()
		for t := c0; t < c1; t++ {
			m.tenants[t].ExchangePhase()
		}
		for t := c0; t < c1; t++ {
			e := m.tenants[t]
			for i := 0; i < n; i++ {
				e.DeliverNode(i)
			}
		}
		if m.views != nil {
			if l := m.views[g].Leased(); l > m.peakLeased[g] {
				m.peakLeased[g] = l
			}
			m.views[g].Recycle()
		}
		for t := c0; t < c1; t++ {
			m.tenants[t].FinishBeat()
		}
	}
	// Trim transient high-water free buffers (dealing-phase spikes)
	// back to the steady chunk demand once the spike has passed.
	if m.arenas != nil {
		peak := m.peakLeased[g]
		if m.arenas[g].FreeBuffers() > peak+peak/2 {
			m.arenas[g].Compact(peak)
		}
	}
}

// Run executes the given number of beats.
func (m *Engine) Run(beats int) {
	for i := 0; i < beats; i++ {
		m.Step()
	}
}

// ScrambleHonest scrambles every tenant's honest nodes (each tenant
// uses its own scramble stream, exactly as standalone).
func (m *Engine) ScrambleHonest() {
	for _, e := range m.tenants {
		e.ScrambleHonest()
	}
}

// HonestMsgs sums the tenants' cumulative honest message counts.
func (m *Engine) HonestMsgs() uint64 {
	var s uint64
	for _, e := range m.tenants {
		s += e.HonestMsgs
	}
	return s
}

// FaultyMsgs sums the tenants' cumulative adversarial message counts.
func (m *Engine) FaultyMsgs() uint64 {
	var s uint64
	for _, e := range m.tenants {
		s += e.FaultyMsgs
	}
	return s
}

// HonestBytes sums the tenants' cumulative honest wire bytes (only
// tallied when the tenant configs set CountBytes).
func (m *Engine) HonestBytes() uint64 {
	var s uint64
	for _, e := range m.tenants {
		s += e.HonestBytes
	}
	return s
}
