package multi

import "ssbyzclock/internal/sim"

// MeasureConvergence steps the multiplexed engine in lockstep until
// every tenant's honest clocks have been synchronized and incrementing
// correctly for holdBeats consecutive beats (the per-tenant semantics
// of sim.MeasureConvergence), or until maxBeats. Tenant t's result is
// frozen the beat its hold window completes — later beats (run because
// slower tenants are still converging) cannot unfreeze it, mirroring
// the standalone measurement, which returns at that point.
func MeasureConvergence(m *Engine, k uint64, maxBeats, holdBeats int) []sim.ConvergenceResult {
	T := m.Tenants()
	res := make([]sim.ConvergenceResult, T)
	stableSince := make([]int, T)
	prev := make([]uint64, T)
	havePrev := make([]bool, T)
	done := make([]bool, T)
	for t := range res {
		res[t].ConvergedAt = -1
		stableSince[t] = -1
	}
	remaining := T
	violations := 0
	for b := 0; b < maxBeats && remaining > 0; b++ {
		m.Step()
		for t := 0; t < T; t++ {
			if done[t] {
				continue
			}
			res[t].Beats++
			st := sim.ReadClocks(m.Tenant(t))
			v, ok := st.Synced()
			good := ok && (!havePrev[t] || v == (prev[t]+1)%k)
			if ok {
				prev[t], havePrev[t] = v, true
			} else {
				havePrev[t] = false
			}
			if good {
				if stableSince[t] < 0 {
					stableSince[t] = b
				}
				if b-stableSince[t]+1 >= holdBeats {
					res[t].Converged = true
					res[t].ConvergedAt = stableSince[t]
					done[t] = true
					remaining--
				}
			} else {
				if stableSince[t] >= 0 {
					res[t].ClosureViolations++
					violations++
				}
				stableSince[t] = -1
			}
		}
		// Live progress for a scraper watching a long convergence run.
		if m.met != nil {
			m.met.converged.Set(int64(T - remaining))
			m.met.violations.Set(int64(violations))
		}
	}
	return res
}
