// Package pool provides beat-scoped payload buffers for the simulation's
// compose paths: the share/echo matrices, vote bitmaps and coin envelopes
// that make up a beat's messages are checked out of a per-node pool
// during Compose and recycled by the pool's owner (the simulation engine)
// after the beat's Deliver phase has completed.
//
// The pool exists because of the message-lifetime contract in package
// proto: messages handed to Protocol.Deliver and Adversary.Act are valid
// only for the beat in which they were sent, so their backing memory can
// be reused the following beat instead of feeding the garbage collector
// ~megabytes per beat at n=16. Anything that wants to keep a message
// longer must deep-copy it (proto.Clone).
//
// Ownership and determinism rules:
//
//   - One Node pool per simulated node, used only from that node's
//     Compose call. The engine fans Compose over scheduler workers but a
//     node's Compose always runs on exactly one goroutine per beat, so
//     Node needs no locking; keying pools by node (not by worker) keeps
//     the buffer-reuse pattern — hence every seeded run — byte-identical
//     at every worker count.
//   - Get calls return buffers with ARBITRARY contents (recycled memory).
//     Callers must fully overwrite them or use the *Zero variants; stale
//     bytes leaking into a message would break the pooled/unpooled
//     replay equivalence that the differential harness enforces.
//   - Recycle is called by the owner after the Deliver phase, never
//     earlier: delivered messages may be read concurrently by several
//     nodes' Deliver calls right up to the phase barrier.
//
// Poison mode ("SSBYZ_POOL=poison", or Node.SetPoison in tests) scribbles
// every recycled buffer with invalid values — field elements above the
// modulus, true booleans, nil row headers — so any component that
// illegally retained a reference into a recycled payload fails loudly
// (validation rejects the garbage or the trace diverges) instead of
// silently reading stale-but-plausible data.
package pool

import (
	"os"
	"sort"
	"sync"

	"ssbyzclock/internal/field"
)

// Mode is the pooling mode resolved from configuration.
type Mode uint8

const (
	// ModeOn pools payload buffers (the default).
	ModeOn Mode = iota
	// ModeOff allocates every payload fresh — the pre-pooling behavior,
	// kept selectable forever (SSBYZ_POOL=off) and used as the reference
	// side of the pooled-vs-unpooled differential harness.
	ModeOff
	// ModePoison pools and additionally scribbles recycled buffers.
	ModePoison
)

// ParseMode maps an SSBYZ_POOL value: "", "on" select ModeOn; "off"
// selects ModeOff; "poison" selects ModePoison. Unknown values fall
// back to ModeOn so a typo cannot silently disable pooling under test.
func ParseMode(s string) Mode {
	switch s {
	case "off":
		return ModeOff
	case "poison":
		return ModePoison
	default:
		return ModeOn
	}
}

// envMode reads SSBYZ_POOL once per process.
var envMode = sync.OnceValue(func() Mode {
	return ParseMode(os.Getenv("SSBYZ_POOL"))
})

// EnvMode returns the process-wide default mode from SSBYZ_POOL.
func EnvMode() Mode { return envMode() }

// poisonElem is an invalid field element (far above the modulus P):
// arithmetic on it yields garbage and the canonical-range validation in
// package gvss rejects it outright, so a poisoned read fails loudly.
const poisonElem = field.Elem(^uint64(0))

// freeList recycles buffers of one element type. Buffers handed out by
// get are tracked on the leased list until recycle moves them back.
// When shared is non-nil the list draws free buffers from (and returns
// them to) that external store — the Arena mechanism — while lease
// accounting stays local, so a view always recycles exactly what it
// leased this beat.
type freeList[T any] struct {
	free   [][]T
	leased [][]T
	shared *[][]T
}

// store returns the free-buffer store this list draws from: its own
// slice, or the arena's when the list is a view.
func (l *freeList[T]) store() *[][]T {
	if l.shared != nil {
		return l.shared
	}
	return &l.free
}

// get returns a buffer of length n, reusing the free buffer with the
// SMALLEST sufficient capacity (best-fit). Contents are arbitrary.
//
// Best-fit matters because the free list mixes sizes: compose paths
// lease one large matrix block plus several small header arrays per
// beat, and a first-fit scan would happily hand the single large block
// to a header-sized request, forcing a fresh large allocation on the
// next matrix lease — the pool-eviction effect behind the old n=32
// B/op floor.
func (l *freeList[T]) get(n int) []T {
	free := *l.store()
	best := -1
	for i := range free {
		c := cap(free[i])
		if c < n || (best >= 0 && c >= cap(free[best])) {
			continue
		}
		best = i
		if c == n {
			break // exact fit cannot be beaten
		}
	}
	if best >= 0 {
		b := free[best][:n]
		free[best] = free[len(free)-1]
		*l.store() = free[:len(free)-1]
		l.leased = append(l.leased, b)
		return b
	}
	b := make([]T, n)
	l.leased = append(l.leased, b)
	return b
}

// recycle moves every leased buffer back to the free store, scribbling
// each with poison first when non-nil.
func (l *freeList[T]) recycle(poison *T) {
	for _, b := range l.leased {
		b = b[:cap(b)]
		if poison != nil {
			for i := range b {
				b[i] = *poison
			}
		}
		*l.store() = append(*l.store(), b)
	}
	l.leased = l.leased[:0]
}

// Node is one simulated node's beat-scoped payload pool. The zero value
// is ready to use. Not safe for concurrent use: a node's Compose runs on
// one goroutine per beat, and Recycle runs on the owner after the
// Deliver-phase barrier.
type Node struct {
	elems    freeList[field.Elem]
	bools    freeList[bool]
	polys    freeList[field.Poly]
	elemRows freeList[[]field.Elem]
	boolRows freeList[[]bool]
	poison   bool
}

// SetPoison toggles poison-on-recycle scribbling.
func (p *Node) SetPoison(on bool) { p.poison = on }

// Elems returns a leased []field.Elem of length n with arbitrary
// contents; the caller must overwrite every element it exposes.
func (p *Node) Elems(n int) []field.Elem { return p.elems.get(n) }

// ElemsZero is Elems with the buffer cleared.
func (p *Node) ElemsZero(n int) []field.Elem {
	b := p.elems.get(n)
	clear(b)
	return b
}

// Bools returns a leased []bool of length n with arbitrary contents.
func (p *Node) Bools(n int) []bool { return p.bools.get(n) }

// BoolsZero is Bools with the buffer cleared.
func (p *Node) BoolsZero(n int) []bool {
	b := p.bools.get(n)
	clear(b)
	return b
}

// Polys returns a leased row-header array ([]field.Poly) of length n
// with arbitrary contents.
func (p *Node) Polys(n int) []field.Poly { return p.polys.get(n) }

// ElemRows returns a leased matrix-header array of length n with
// arbitrary contents.
func (p *Node) ElemRows(n int) [][]field.Elem { return p.elemRows.get(n) }

// BoolRows returns a leased bool-matrix-header array of length n with
// arbitrary contents.
func (p *Node) BoolRows(n int) [][]bool { return p.boolRows.get(n) }

// Recycle returns every buffer leased since the previous Recycle to the
// free lists. The owner calls it after the beat's Deliver phase; no
// delivered message may be read afterwards (poison mode enforces this by
// scribbling).
func (p *Node) Recycle() {
	if p.poison {
		pe, pb := poisonElem, true
		var pp field.Poly
		var per []field.Elem
		var pbr []bool
		p.elems.recycle(&pe)
		p.bools.recycle(&pb)
		p.polys.recycle(&pp)
		p.elemRows.recycle(&per)
		p.boolRows.recycle(&pbr)
		return
	}
	p.elems.recycle(nil)
	p.bools.recycle(nil)
	p.polys.recycle(nil)
	p.elemRows.recycle(nil)
	p.boolRows.recycle(nil)
}

// Leased reports the number of currently leased buffers (observability
// and tests).
func (p *Node) Leased() int {
	return len(p.elems.leased) + len(p.bools.leased) + len(p.polys.leased) +
		len(p.elemRows.leased) + len(p.boolRows.leased)
}

// Arena is a shared free-buffer store that several Node views draw
// from, the multi-tenant pooling layout: thousands of tenant nodes
// multiplexed onto one scheduler worker share one set of recycled
// buffers instead of each hoarding a private free list, while every
// view keeps its own lease accounting so a beat's recycle returns
// exactly that view's leases (beat-scoped recycling per tenant).
//
// Concurrency contract (same as Node, shifted to the arena): an arena
// and ALL of its views must be used from one goroutine at a time. The
// multi-tenant engine enforces this by giving each scheduler worker its
// own arena and assigning every (tenant, node) work unit's view to the
// worker that composes — and recycles — that unit.
type Arena struct {
	elems    [][]field.Elem
	bools    [][]bool
	polys    [][]field.Poly
	elemRows [][][]field.Elem
	boolRows [][][]bool
}

// NewView returns a Node that leases from the arena's shared free
// store. The view tracks its own leases; Recycle returns them to the
// arena. Poison mode is per view (SetPoison), matching the standalone
// Node surface.
func (a *Arena) NewView() *Node {
	n := &Node{}
	n.elems.shared = &a.elems
	n.bools.shared = &a.bools
	n.polys.shared = &a.polys
	n.elemRows.shared = &a.elemRows
	n.boolRows.shared = &a.boolRows
	return n
}

// FreeBuffers reports the number of buffers currently resident in the
// arena's free store (observability and tests).
func (a *Arena) FreeBuffers() int {
	return len(a.elems) + len(a.bools) + len(a.polys) +
		len(a.elemRows) + len(a.boolRows)
}

// compactStore trims a free store to at most keep buffers, retaining
// the largest capacities so best-fit leases of the big matrix blocks
// keep hitting the store; the dropped small buffers are the cheap ones
// to re-allocate if demand returns.
func compactStore[T any](s *[][]T, keep int) {
	st := *s
	if keep < 0 {
		keep = 0
	}
	if len(st) <= keep {
		return
	}
	sort.Slice(st, func(i, j int) bool { return cap(st[i]) > cap(st[j]) })
	clear(st[keep:])
	*s = st[:keep]
}

// Compact trims each of the arena's free stores to at most keep
// buffers, keeping the largest. Early beats of a protocol lease more
// (and larger) buffers than the steady state — dealing matrices only
// exist while shares are in flight — so without compaction the arena
// retains its high-water footprint forever. The owner calls Compact
// with its observed steady-state lease count once the transient has
// passed; an over-aggressive keep is safe (the next lease just
// allocates fresh) but costs the allocation it was supposed to avoid.
func (a *Arena) Compact(keep int) {
	compactStore(&a.elems, keep)
	compactStore(&a.bools, keep)
	compactStore(&a.polys, keep)
	compactStore(&a.elemRows, keep)
	compactStore(&a.boolRows, keep)
}
