package pool

import (
	"testing"

	"ssbyzclock/internal/field"
)

func TestLeaseRecycleReuse(t *testing.T) {
	var p Node
	a := p.Elems(64)
	b := p.Bools(16)
	if p.Leased() != 2 {
		t.Fatalf("leased = %d, want 2", p.Leased())
	}
	a[0], b[0] = 7, true
	p.Recycle()
	if p.Leased() != 0 {
		t.Fatalf("leased after recycle = %d, want 0", p.Leased())
	}
	// Same-size leases must reuse the recycled backing, not allocate.
	a2 := p.Elems(64)
	if &a2[0] != &a[0] {
		t.Fatal("recycled elem buffer not reused")
	}
	// A larger request allocates fresh; the small buffer stays pooled for
	// later fits.
	big := p.Elems(128)
	if &big[0] == &a[0] {
		t.Fatal("64-cap buffer served a 128 request")
	}
	if got := p.ElemsZero(64); got[0] != 0 {
		t.Fatalf("ElemsZero returned dirty buffer: %d", got[0])
	}
	if got := p.BoolsZero(16); got[0] {
		t.Fatal("BoolsZero returned dirty buffer")
	}
}

func TestPoisonScribblesOnRecycle(t *testing.T) {
	var p Node
	p.SetPoison(true)
	e := p.Elems(8)
	bl := p.Bools(8)
	po := p.Polys(4)
	po[0] = field.Poly{1}
	er := p.ElemRows(4)
	er[0] = []field.Elem{1}
	clear(e)
	for i := range bl {
		bl[i] = false
	}
	p.Recycle()
	// The caller-visible buffers alias the recycled backing: poison must
	// now be visible through the retained references — that is the bug
	// the mode exists to expose.
	if e[0] < field.Elem(field.P) {
		t.Fatalf("recycled elems not poisoned: %d", e[0])
	}
	if !bl[0] {
		t.Fatal("recycled bools not poisoned")
	}
	if po[0] != nil || er[0] != nil {
		t.Fatal("recycled headers not poisoned to nil")
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"":       ModeOn,
		"on":     ModeOn,
		"off":    ModeOff,
		"poison": ModePoison,
		"typo":   ModeOn, // unknown values must not silently disable pooling
	} {
		if got := ParseMode(in); got != want {
			t.Errorf("ParseMode(%q) = %d, want %d", in, got, want)
		}
	}
}
