package pool

import (
	"testing"

	"ssbyzclock/internal/field"
)

func TestLeaseRecycleReuse(t *testing.T) {
	var p Node
	a := p.Elems(64)
	b := p.Bools(16)
	if p.Leased() != 2 {
		t.Fatalf("leased = %d, want 2", p.Leased())
	}
	a[0], b[0] = 7, true
	p.Recycle()
	if p.Leased() != 0 {
		t.Fatalf("leased after recycle = %d, want 0", p.Leased())
	}
	// Same-size leases must reuse the recycled backing, not allocate.
	a2 := p.Elems(64)
	if &a2[0] != &a[0] {
		t.Fatal("recycled elem buffer not reused")
	}
	// A larger request allocates fresh; the small buffer stays pooled for
	// later fits.
	big := p.Elems(128)
	if &big[0] == &a[0] {
		t.Fatal("64-cap buffer served a 128 request")
	}
	if got := p.ElemsZero(64); got[0] != 0 {
		t.Fatalf("ElemsZero returned dirty buffer: %d", got[0])
	}
	if got := p.BoolsZero(16); got[0] {
		t.Fatal("BoolsZero returned dirty buffer")
	}
}

func TestPoisonScribblesOnRecycle(t *testing.T) {
	var p Node
	p.SetPoison(true)
	e := p.Elems(8)
	bl := p.Bools(8)
	po := p.Polys(4)
	po[0] = field.Poly{1}
	er := p.ElemRows(4)
	er[0] = []field.Elem{1}
	clear(e)
	for i := range bl {
		bl[i] = false
	}
	p.Recycle()
	// The caller-visible buffers alias the recycled backing: poison must
	// now be visible through the retained references — that is the bug
	// the mode exists to expose.
	if e[0] < field.Elem(field.P) {
		t.Fatalf("recycled elems not poisoned: %d", e[0])
	}
	if !bl[0] {
		t.Fatal("recycled bools not poisoned")
	}
	if po[0] != nil || er[0] != nil {
		t.Fatal("recycled headers not poisoned to nil")
	}
}

// sameBacking reports whether two leases share a backing array
// (compared at full capacity, since get re-slices).
func sameBacking(a, b []field.Elem) bool {
	if cap(a) == 0 || cap(b) == 0 {
		return false
	}
	return &a[:cap(a)][cap(a)-1] == &b[:cap(b)][cap(b)-1]
}

// TestBestFitSmallAfterLarge is the regression for the first-fit
// eviction bug: with a large and a small buffer free, a small request
// must take the small buffer, so the following large request still
// finds the large one instead of allocating fresh (the pool-eviction
// effect behind the old n=32 B/op floor).
func TestBestFitSmallAfterLarge(t *testing.T) {
	var p Node
	large := p.Elems(4096)
	small := p.Elems(8)
	p.Recycle()
	if got := p.Elems(8); !sameBacking(got, small) {
		t.Fatalf("small lease consumed the wrong free buffer (cap=%d, want %d)", cap(got), cap(small))
	}
	if got := p.Elems(4096); !sameBacking(got, large) {
		t.Fatal("large buffer was evicted by the small lease: fresh allocation")
	}
}

// TestBestFitPrefersTightest: among several sufficient buffers the
// smallest sufficient capacity wins, regardless of free-list position.
func TestBestFitPrefersTightest(t *testing.T) {
	var p Node
	b1 := p.Elems(100)
	b2 := p.Elems(32)
	b3 := p.Elems(48)
	p.Recycle()
	if got := p.Elems(40); !sameBacking(got, b3) {
		t.Fatalf("lease of 40 got cap %d, want the cap-48 buffer", cap(got))
	}
	if got := p.Elems(32); !sameBacking(got, b2) {
		t.Fatalf("lease of 32 got cap %d, want the exact-fit cap-32 buffer", cap(got))
	}
	if got := p.Elems(64); !sameBacking(got, b1) {
		t.Fatalf("lease of 64 got cap %d, want the cap-100 buffer", cap(got))
	}
}

// TestArenaViewsShareFreeStore: buffers recycled through one view are
// available to a sibling view of the same arena, while lease
// accounting stays per view.
func TestArenaViewsShareFreeStore(t *testing.T) {
	var a Arena
	v1, v2 := a.NewView(), a.NewView()
	b1 := v1.Elems(256)
	_ = v2.Elems(16)
	if v1.Leased() != 1 || v2.Leased() != 1 {
		t.Fatalf("per-view lease counts = (%d, %d), want (1, 1)", v1.Leased(), v2.Leased())
	}
	v1.Recycle()
	if v1.Leased() != 0 || v2.Leased() != 1 {
		t.Fatalf("recycle of v1 touched v2's leases: (%d, %d)", v1.Leased(), v2.Leased())
	}
	if a.FreeBuffers() != 1 {
		t.Fatalf("arena FreeBuffers = %d after one recycle, want 1", a.FreeBuffers())
	}
	if got := v2.Elems(256); !sameBacking(got, b1) {
		t.Fatal("sibling view did not reuse the arena's free buffer")
	}
	if a.FreeBuffers() != 0 {
		t.Fatalf("arena FreeBuffers = %d after re-lease, want 0", a.FreeBuffers())
	}
}

// TestArenaViewPoison: poison stays a per-view setting and scribbles on
// the way back into the shared store.
func TestArenaViewPoison(t *testing.T) {
	var a Arena
	v := a.NewView()
	v.SetPoison(true)
	e := v.Elems(8)
	clear(e)
	v.Recycle()
	if e[0] < field.Elem(field.P) {
		t.Fatalf("arena view did not poison recycled buffer: %d", e[0])
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"":       ModeOn,
		"on":     ModeOn,
		"off":    ModeOff,
		"poison": ModePoison,
		"typo":   ModeOn, // unknown values must not silently disable pooling
	} {
		if got := ParseMode(in); got != want {
			t.Errorf("ParseMode(%q) = %d, want %d", in, got, want)
		}
	}
}

// TestArenaCompact: Compact keeps the largest buffers per class and
// drops the rest; a keep at or above the store size is a no-op.
func TestArenaCompact(t *testing.T) {
	var a Arena
	v := a.NewView()
	small := v.Elems(8)
	mid := v.Elems(64)
	big := v.Elems(512)
	_ = small
	v.Recycle()
	a.Compact(5) // above store size: no-op
	if a.FreeBuffers() != 3 {
		t.Fatalf("FreeBuffers = %d after generous Compact, want 3", a.FreeBuffers())
	}
	a.Compact(2)
	if a.FreeBuffers() != 2 {
		t.Fatalf("FreeBuffers = %d after Compact(2), want 2", a.FreeBuffers())
	}
	if got := v.Elems(512); !sameBacking(got, big) {
		t.Fatal("Compact dropped the largest buffer")
	}
	if got := v.Elems(64); !sameBacking(got, mid) {
		t.Fatal("Compact dropped the second-largest buffer")
	}
	if got := v.Elems(8); cap(got) != 8 {
		t.Fatalf("smallest buffer survived Compact(2): cap %d", cap(got))
	}
	v.Recycle()
	a.Compact(0)
	if a.FreeBuffers() != 0 {
		t.Fatalf("FreeBuffers = %d after Compact(0), want 0", a.FreeBuffers())
	}
}
