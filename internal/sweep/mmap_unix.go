//go:build unix

package sweep

import (
	"os"
	"syscall"
)

// mmapAvailable reports that this platform can map column files.
const mmapAvailable = true

// mmapFile maps path read-only. The file descriptor is closed before
// returning (the mapping outlives it); the caller must call the returned
// unmap exactly once.
func mmapFile(path string, size int64) (data []byte, unmap func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
