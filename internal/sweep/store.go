package sweep

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The store is a directory:
//
//	<dir>/manifest.json        grid, grid hash, metric schema, unit count
//	<dir>/chunks/*.chunk       append-only per-shard result records
//	<dir>/columns/<name>.col   merged fixed-width columns, one per metric
//
// Chunk records are fixed-width little-endian: the unit index (8 bytes)
// followed by one 8-byte word per metric. Fixed width makes a killed
// writer recoverable — a partial trailing record is detected by length
// and ignored — and makes completion tracking shard-layout-agnostic:
// any record for unit i marks it complete, whichever shard wrote it.
//
// Merged columns are fixed-width little-endian words at offset 8*index —
// mmap-friendly, directly seekable by unit index — and, because a unit's
// result is a pure function of (grid, index), byte-identical for every
// shard count and completion order.

// Metric describes one store column.
type Metric struct {
	Name string `json:"name"`
	// Type is "u64" or "f64" (f64 columns hold IEEE-754 bits in the same
	// 8-byte little-endian word).
	Type string `json:"type"`
}

// Metrics is the store's column schema, in row order. Every column is a
// pure function of (grid, unit index) — the byte-identical merge
// contract — except resident_bytes_per_tenant, which is a physical
// live-heap measurement: stable to a fraction of a percent in practice,
// but re-executing a unit may differ in the low bytes. Merging never
// re-runs a completed unit, so a given store's merge remains
// byte-identical for every shard layout; only cross-store comparisons
// of tenant grids see the measurement jitter.
var Metrics = []Metric{
	{"converged", "u64"},
	{"conv_beats", "u64"},
	{"closure_violations", "u64"},
	{"msgs_per_node_beat", "f64"},
	{"bytes_per_node_beat", "f64"},
	{"resident_bytes_per_tenant", "f64"},
}

const numMetrics = 6

const (
	manifestVersion = 1
	recordSize      = 8 * (1 + numMetrics)
)

// manifest is the JSON document at <dir>/manifest.json.
type manifest struct {
	Version  int      `json:"version"`
	Grid     Grid     `json:"grid"`
	GridHash string   `json:"grid_hash"`
	Units    int      `json:"units"`
	Metrics  []Metric `json:"metrics"`
}

// Store is one on-disk sweep. Open with Create (new sweep) or Open
// (resume / read). A Store handle is cheap; the data lives on disk.
type Store struct {
	dir string
	man manifest
}

// Create initializes dir (created if missing) for the given grid. If the
// directory already holds a manifest, Create succeeds only when the grid
// is identical — the resume path — and errors otherwise rather than mix
// two sweeps' results.
func Create(dir string, g Grid) (*Store, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if st, err := Open(dir); err == nil {
		if st.man.GridHash != g.Hash() {
			return nil, fmt.Errorf("sweep: store %s holds a different grid (hash %.12s != %.12s)",
				dir, st.man.GridHash, g.Hash())
		}
		return st, nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, "chunks"), 0o755); err != nil {
		return nil, err
	}
	man := manifest{
		Version:  manifestVersion,
		Grid:     g,
		GridHash: g.Hash(),
		Units:    g.Units(),
		Metrics:  Metrics,
	}
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	return &Store{dir: dir, man: man}, nil
}

// Open opens an existing store. It returns fs.ErrNotExist (wrapped) when
// dir holds no manifest.
func Open(dir string) (*Store, error) {
	b, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("sweep: bad manifest in %s: %w", dir, err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("sweep: manifest version %d (this binary speaks %d)", man.Version, manifestVersion)
	}
	if err := man.Grid.Validate(); err != nil {
		return nil, err
	}
	if man.GridHash != man.Grid.Hash() {
		return nil, fmt.Errorf("sweep: manifest grid hash mismatch in %s", dir)
	}
	if man.Units != man.Grid.Units() {
		return nil, fmt.Errorf("sweep: manifest unit count %d != grid's %d", man.Units, man.Grid.Units())
	}
	if len(man.Metrics) != numMetrics {
		return nil, fmt.Errorf("sweep: manifest has %d metrics, this binary speaks %d", len(man.Metrics), numMetrics)
	}
	return &Store{dir: dir, man: man}, nil
}

// Grid returns the sweep's grid.
func (s *Store) Grid() Grid { return s.man.Grid }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Units returns the total unit count.
func (s *Store) Units() int { return s.man.Units }

// chunkFiles lists the chunk paths in sorted order.
func (s *Store) chunkFiles() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "chunks"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".chunk") {
			out = append(out, filepath.Join(s.dir, "chunks", e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// scanChunks streams every complete record across all chunk files in
// sorted-file order. A partial trailing record (a writer killed
// mid-append) is ignored; a short read anywhere else is an error.
func (s *Store) scanChunks(fn func(idx int, row [numMetrics]uint64) error) error {
	files, err := s.chunkFiles()
	if err != nil {
		return err
	}
	buf := make([]byte, recordSize)
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r := bufio.NewReader(f)
		for {
			_, err := io.ReadFull(r, buf)
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				// Partial trailing record: the writer died mid-append. The
				// unit will simply re-run.
				break
			}
			if err != nil {
				f.Close()
				return err
			}
			idx := binary.LittleEndian.Uint64(buf)
			if idx >= uint64(s.man.Units) {
				f.Close()
				return fmt.Errorf("sweep: %s holds unit %d beyond grid's %d units", path, idx, s.man.Units)
			}
			var row [numMetrics]uint64
			for m := 0; m < numMetrics; m++ {
				row[m] = binary.LittleEndian.Uint64(buf[8*(m+1):])
			}
			if err := fn(int(idx), row); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// collectRows scans the chunk files into per-unit rows, enforcing the
// dedup invariant: duplicate records for a unit must agree bit-for-bit
// (they are re-runs of a deterministic function); a conflict means the
// store mixes different code or grids and is reported as corruption.
// Both the resume path (Completed) and Merge share this one scan.
func (s *Store) collectRows() (rows [][numMetrics]uint64, have []bool, count int, err error) {
	rows = make([][numMetrics]uint64, s.man.Units)
	have = make([]bool, s.man.Units)
	err = s.scanChunks(func(idx int, row [numMetrics]uint64) error {
		if have[idx] {
			if rows[idx] != row {
				return fmt.Errorf("sweep: store corrupt: unit %d has conflicting records", idx)
			}
			return nil
		}
		rows[idx] = row
		have[idx] = true
		count++
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return rows, have, count, nil
}

// Completed scans the chunk files and reports which units have a
// recorded result, plus the completed count.
func (s *Store) Completed() ([]bool, int, error) {
	_, have, count, err := s.collectRows()
	return have, count, err
}

// ChunkWriter appends unit records to one shard's chunk file.
type ChunkWriter struct {
	f      *os.File
	buf    [recordSize]byte
	closed bool
}

// ShardWriter opens (appending) the chunk file for the given shard
// layout. Different layouts write different files, so a sweep resumed
// with a new shard count never interleaves writers within one file.
func (s *Store) ShardWriter(shard, shards int) (*ChunkWriter, error) {
	if err := os.MkdirAll(filepath.Join(s.dir, "chunks"), 0o755); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("shard-%04d-of-%04d.chunk", shard, shards)
	f, err := os.OpenFile(filepath.Join(s.dir, "chunks", name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// A writer killed mid-append leaves a partial trailing record. Readers
	// skip it, but appending after it would misalign every later record,
	// so chop the file back to the last record boundary first.
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if tail := fi.Size() % recordSize; tail != 0 {
		if err := f.Truncate(fi.Size() - tail); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &ChunkWriter{f: f}, nil
}

// Append records one unit's result. The record reaches the OS before
// Append returns, so a killed process loses at most the record being
// written — which the fixed-width scan then discards as a partial tail.
func (w *ChunkWriter) Append(idx int, row [numMetrics]uint64) error {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(idx))
	for m, v := range row {
		binary.LittleEndian.PutUint64(w.buf[8*(m+1):], v)
	}
	_, err := w.f.Write(w.buf[:])
	return err
}

// Close closes the chunk file. Double Close is a no-op.
func (w *ChunkWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Merge assembles the final column files from the chunk records. Every
// unit must be complete; the error names the shortfall otherwise. The
// output is written in unit-index order into one fixed-width file per
// metric, so its bytes depend only on the grid — not on shard count,
// process count or completion order.
func (s *Store) Merge() error {
	rows, _, count, err := s.collectRows()
	if err != nil {
		return err
	}
	if count != s.man.Units {
		return fmt.Errorf("sweep: merge needs all units: %d of %d complete", count, s.man.Units)
	}
	colDir := filepath.Join(s.dir, "columns")
	if err := os.MkdirAll(colDir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, 8*s.man.Units)
	for m, metric := range Metrics {
		for i := range rows {
			binary.LittleEndian.PutUint64(buf[8*i:], rows[i][m])
		}
		if err := os.WriteFile(filepath.Join(colDir, metric.Name+".col"), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Merged reports whether every column file exists with the right size.
func (s *Store) Merged() bool {
	for _, m := range Metrics {
		fi, err := os.Stat(filepath.Join(s.dir, "columns", m.Name+".col"))
		if err != nil || fi.Size() != int64(8*s.man.Units) {
			return false
		}
	}
	return true
}

// mmapThreshold is the per-column byte size at which ScanRows switches
// from buffered streaming to memory-mapping the column files. The
// columns are fixed-width little-endian words at offset 8*index, so a
// mapping is directly addressable with no read syscalls or double
// buffering — the right shape for very large stores — while small
// stores keep the cheap bufio path (a mapping costs two syscalls and
// page-table churn that only pays off at scale). Variable so tests can
// force either path.
var mmapThreshold int64 = 1 << 20

// ScanRows streams the merged columns row by row in unit-index order:
// fn receives the unit index and one word per metric (Metrics order).
// Large stores are memory-mapped (the kernel pages columns in and out on
// demand, so resident memory stays O(1) in the store size); small ones
// — and platforms without mmap — stream through bufio. Both paths yield
// identical rows.
func (s *Store) ScanRows(fn func(idx int, row [numMetrics]uint64) error) error {
	if !s.Merged() {
		return fmt.Errorf("sweep: store %s is not merged (run merge first)", s.dir)
	}
	colSize := int64(8 * s.man.Units)
	if mmapAvailable && colSize >= mmapThreshold {
		if done, err := s.scanRowsMmap(fn, colSize); done {
			return err
		}
		// Mapping failed (exotic filesystem, resource limits): fall
		// through to the buffered reader, which needs only open+read.
	}
	return s.scanRowsBuffered(fn)
}

// scanRowsMmap maps every column and walks them in lockstep. done is
// false only when the mappings could not be established; once mapped,
// the scan itself cannot fail short of fn's own error.
func (s *Store) scanRowsMmap(fn func(idx int, row [numMetrics]uint64) error, colSize int64) (done bool, err error) {
	cols := make([][]byte, numMetrics)
	unmaps := make([]func(), 0, numMetrics)
	defer func() {
		for _, u := range unmaps {
			u()
		}
	}()
	for m, metric := range Metrics {
		data, unmap, merr := mmapFile(filepath.Join(s.dir, "columns", metric.Name+".col"), colSize)
		if merr != nil {
			return false, nil
		}
		unmaps = append(unmaps, unmap)
		cols[m] = data
	}
	for i := 0; i < s.man.Units; i++ {
		var row [numMetrics]uint64
		off := 8 * i
		for m := range cols {
			row[m] = binary.LittleEndian.Uint64(cols[m][off:])
		}
		if err := fn(i, row); err != nil {
			return true, err
		}
	}
	return true, nil
}

func (s *Store) scanRowsBuffered(fn func(idx int, row [numMetrics]uint64) error) error {
	files := make([]*bufio.Reader, numMetrics)
	for m, metric := range Metrics {
		f, err := os.Open(filepath.Join(s.dir, "columns", metric.Name+".col"))
		if err != nil {
			return err
		}
		defer f.Close()
		files[m] = bufio.NewReader(f)
	}
	var word [8]byte
	for i := 0; i < s.man.Units; i++ {
		var row [numMetrics]uint64
		for m := range files {
			if _, err := io.ReadFull(files[m], word[:]); err != nil {
				return fmt.Errorf("sweep: column %s truncated at unit %d: %w", Metrics[m].Name, i, err)
			}
			row[m] = binary.LittleEndian.Uint64(word[:])
		}
		if err := fn(i, row); err != nil {
			return err
		}
	}
	return nil
}
