// Package sweep shards an experiment grid into deterministic work units,
// executes them across worker processes (or in-process shards), and
// accumulates results in an on-disk columnar store. It is the scale-out
// layer over internal/sim: the paper's claims (expected-constant
// convergence, self-stabilization, f < n/3 resilience) are statistical,
// so validating them needs large seed counts, large n and a grid of
// adversaries and layouts — more work than one in-process loop can hold.
//
// The determinism contract mirrors sim.Scheduler's: a unit's result
// depends only on the grid and the unit index (every run derives all
// randomness from the unit's seed), so the merged store is byte-identical
// regardless of shard count, process count or completion order.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ssbyzclock/internal/faultnet"
)

// Grid describes one experiment sweep: the cross product of cluster
// sizes, adversaries, coin layouts and seeds, all run under one protocol
// stack and measurement budget. The zero value is invalid; fill every
// field (Validate reports what is missing). Grids serialize to JSON for
// cmd/sweep grid files and the store manifest.
type Grid struct {
	// Protocol names the stack under test: "clocksync", "twoclock",
	// "fourclock", or "clocksyncstale" (the Remark 3.1 stale-rand
	// ablation variant, for E6 grids).
	Protocol string `json:"protocol"`
	// Coin selects the common-coin construction: "fm" (no trusted setup)
	// or "rabin" (trusted dealer, seeded per unit).
	Coin string `json:"coin"`
	// K is the clock modulus for "clocksync"; "twoclock" and "fourclock"
	// fix k at 2 and 4 and ignore this field.
	K uint64 `json:"k,omitempty"`
	// Ns lists cluster sizes; each runs with f = floor((n-1)/3).
	Ns []int `json:"ns"`
	// Adversaries lists adversary names; see Adversaries for the
	// registry.
	Adversaries []string `json:"adversaries"`
	// Layouts lists coin layouts: "shared" and/or "paper".
	Layouts []string `json:"layouts"`
	// Faults lists transport-fault schedule names (faultnet.Parse
	// syntax: "none", "loss20", "dup10+delay15", ...), making network
	// adversaries a grid dimension alongside Byzantine ones. Empty means
	// the single ideal schedule "none" — omitted from JSON so legacy
	// grids keep their Hash. Each unit's schedule is seeded from the
	// unit's own engine seed, so faulted units replay bit-for-bit like
	// any other.
	Faults []string `json:"faults,omitempty"`
	// Nets lists execution substrates: "engine" (the in-process
	// sim/multi engine, the default), "udp" or "tcp" (a Lockstep
	// noderuntime cluster over real loopback sockets, multiplexing
	// Tenants instances behind n endpoints with tenant-batched frames).
	// Lockstep networked runs replay the engine byte-identically (the
	// noderuntime differential harness), so a networked cell measures
	// the same convergence distribution as its engine twin — the grid
	// dimension exists to demonstrate that over real sockets and real
	// fault injection, not to change the numbers. Empty means just
	// "engine" — omitted from JSON so legacy grids keep their Hash.
	Nets []string `json:"nets,omitempty"`
	// Tenants multiplexes each unit: when > 1, the unit runs Tenants
	// independent instances (tenant t seeded with the unit seed + t)
	// lockstep on one internal/multi engine and records aggregate
	// metrics — Converged requires every tenant, ConvBeats is the
	// slowest tenant's, ClosureViolations sum, and traffic averages
	// over all tenants' honest node-beats. 0 or 1 is a plain
	// single-instance run — omitted from JSON so legacy grids keep
	// their Hash. Multiplexing is a throughput layout, not a semantic
	// change: each tenant replays byte-identically to its standalone
	// run, so a tenants > 1 grid measures the same distribution as
	// Seeds-many singles, one engine at a time.
	Tenants int `json:"tenants,omitempty"`
	// Seeds is the number of independent seeds per (n, adversary,
	// layout, fault) cell.
	Seeds int `json:"seeds"`
	// SeedBase offsets every unit's engine seed, so disjoint sweeps can
	// draw disjoint randomness. Unit seed = SeedBase + 7*seedIndex + 1,
	// matching the in-process experiments' seeding.
	SeedBase int64 `json:"seed_base,omitempty"`
	// MaxBeats caps each run; unconverged runs record MaxBeats as their
	// convergence time (a lower bound on truth), as the in-process
	// experiments do.
	MaxBeats int `json:"max_beats"`
	// Hold is the consecutive-synced-beats requirement for declaring
	// convergence.
	Hold int `json:"hold"`
}

// Unit is one work item: a single measured run at a fixed grid cell and
// seed. Units are identified by their dense Index in the grid's
// row-major enumeration (n outermost, then adversary, layout, fault,
// net, seed), so a unit index plus the grid fully determines the run.
type Unit struct {
	Index     int
	N, F      int
	Adversary string
	Layout    string
	Fault     string
	Net       string
	SeedIdx   int
}

// Seed returns the engine seed for the unit under g.
func (u Unit) Seed(g Grid) int64 { return g.SeedBase + int64(u.SeedIdx)*7 + 1 }

// faultList returns the fault dimension, defaulting the empty slice to
// the single ideal schedule.
func (g Grid) faultList() []string {
	if len(g.Faults) == 0 {
		return []string{"none"}
	}
	return g.Faults
}

// netList returns the substrate dimension, defaulting the empty slice
// to the in-process engine.
func (g Grid) netList() []string {
	if len(g.Nets) == 0 {
		return []string{"engine"}
	}
	return g.Nets
}

// protocolK returns the effective clock modulus measured for g.
func (g Grid) protocolK() uint64 {
	switch g.Protocol {
	case "twoclock":
		return 2
	case "fourclock":
		return 4
	default:
		return g.K
	}
}

// Validate reports the first problem with the grid, or nil.
func (g Grid) Validate() error {
	switch g.Protocol {
	case "twoclock", "fourclock":
	case "clocksync", "clocksyncstale":
		if g.K < 2 {
			return fmt.Errorf("sweep: %s needs k >= 2, got %d", g.Protocol, g.K)
		}
	default:
		return fmt.Errorf("sweep: unknown protocol %q (want clocksync, clocksyncstale, twoclock or fourclock)", g.Protocol)
	}
	switch g.Coin {
	case "fm", "rabin":
	default:
		return fmt.Errorf("sweep: unknown coin %q (want fm or rabin)", g.Coin)
	}
	if len(g.Ns) == 0 {
		return fmt.Errorf("sweep: grid has no cluster sizes")
	}
	for _, n := range g.Ns {
		if n < 2 {
			return fmt.Errorf("sweep: bad cluster size %d", n)
		}
	}
	if len(g.Adversaries) == 0 {
		return fmt.Errorf("sweep: grid has no adversaries")
	}
	for _, a := range g.Adversaries {
		if _, ok := adversaryRegistry[a]; !ok {
			return fmt.Errorf("sweep: unknown adversary %q (known: %s)", a, adversaryNames())
		}
	}
	if len(g.Layouts) == 0 {
		return fmt.Errorf("sweep: grid has no layouts")
	}
	for _, l := range g.Layouts {
		if l != "shared" && l != "paper" {
			return fmt.Errorf("sweep: unknown layout %q (want shared or paper)", l)
		}
	}
	for _, name := range g.faultList() {
		if _, err := faultnet.Parse(name); err != nil {
			return fmt.Errorf("sweep: bad fault schedule %q: %w", name, err)
		}
	}
	for _, nt := range g.netList() {
		if nt != "engine" && nt != "udp" && nt != "tcp" {
			return fmt.Errorf("sweep: unknown net %q (want engine, udp or tcp)", nt)
		}
	}
	if g.Tenants < 0 {
		return fmt.Errorf("sweep: grid needs tenants >= 0, got %d", g.Tenants)
	}
	if g.Seeds <= 0 {
		return fmt.Errorf("sweep: grid needs seeds > 0")
	}
	if g.MaxBeats <= 0 {
		return fmt.Errorf("sweep: grid needs max_beats > 0")
	}
	if g.Hold <= 0 {
		return fmt.Errorf("sweep: grid needs hold > 0")
	}
	return nil
}

// Units returns the total unit count.
func (g Grid) Units() int {
	return len(g.Ns) * len(g.Adversaries) * len(g.Layouts) * len(g.faultList()) * len(g.netList()) * g.Seeds
}

// UnitAt expands unit index idx into its coordinates. It panics on an
// out-of-range index: indexes come from the store's own enumeration, not
// external input.
func (g Grid) UnitAt(idx int) Unit {
	if idx < 0 || idx >= g.Units() {
		panic(fmt.Sprintf("sweep: unit index %d out of range [0,%d)", idx, g.Units()))
	}
	faults := g.faultList()
	nets := g.netList()
	rest := idx
	seed := rest % g.Seeds
	rest /= g.Seeds
	nt := rest % len(nets)
	rest /= len(nets)
	fault := rest % len(faults)
	rest /= len(faults)
	layout := rest % len(g.Layouts)
	rest /= len(g.Layouts)
	adv := rest % len(g.Adversaries)
	rest /= len(g.Adversaries)
	n := g.Ns[rest]
	return Unit{
		Index:     idx,
		N:         n,
		F:         (n - 1) / 3,
		Adversary: g.Adversaries[adv],
		Layout:    g.Layouts[layout],
		Fault:     faults[fault],
		Net:       nets[nt],
		SeedIdx:   seed,
	}
}

// Hash returns a hex digest of the canonical grid encoding. The store
// manifest records it so a resumed sweep cannot silently mix results
// from different grids.
func (g Grid) Hash() string {
	b, err := json.Marshal(g)
	if err != nil {
		panic("sweep: grid not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
