//go:build !unix

package sweep

import "errors"

// mmapAvailable reports that this platform cannot map column files;
// ScanRows always streams through bufio here.
const mmapAvailable = false

func mmapFile(string, int64) ([]byte, func(), error) {
	return nil, nil, errors.New("sweep: mmap unavailable on this platform")
}
