package sweep

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/multi"
	"ssbyzclock/internal/sim"
)

// adversaryRegistry maps grid adversary names to constructors. Every
// entry is self-contained — constructable from the adversary.Context
// alone — which since the bit-oracle variants includes the strongest
// oracle-equipped attacks: BitOracleSplitter and BitOraclePhase3 read
// the public coin bit from a faulty node's own honest copy
// (Context.FaultyNode) instead of closing over a live engine, so E6/E7's
// oracle rows can be named in a serialized grid.
var adversaryRegistry = map[string]func(*adversary.Context) adversary.Adversary{
	"passive":  nil,
	"silent":   func(*adversary.Context) adversary.Adversary { return adversary.Silent{} },
	"splitter": func(ctx *adversary.Context) adversary.Adversary { return &adversary.ClockSplitter{Ctx: ctx} },
	"gradesplitter": func(ctx *adversary.Context) adversary.Adversary {
		return &adversary.GradeSplitter{Ctx: ctx}
	},
	"sharecorruptor": func(ctx *adversary.Context) adversary.Adversary {
		return &adversary.ShareCorruptor{Ctx: ctx}
	},
	"recovercorruptor": func(ctx *adversary.Context) adversary.Adversary {
		return &adversary.RecoverCorruptor{Ctx: ctx}
	},
	"replayer": func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} },
	// stacked is E7's oracle-free core: clock splitting + grade splitting
	// + coin-recovery corruption in one chain.
	"stacked": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.Chain{Advs: []adversary.Adversary{
			&adversary.ClockSplitter{Ctx: ctx},
			&adversary.GradeSplitter{Ctx: ctx},
			&adversary.RecoverCorruptor{Ctx: ctx},
		}}
	},
	"bitoraclesplitter": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.NewBitOracleSplitter(ctx)
	},
	"bitoraclephase3": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.NewBitOraclePhase3(ctx)
	},
	// bitoraclestacked is the full E7 kitchen sink, oracle included: the
	// strongest attack the suite can express, now nameable in a grid.
	"bitoraclestacked": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.Chain{Advs: []adversary.Adversary{
			adversary.NewBitOracleSplitter(ctx),
			&adversary.GradeSplitter{Ctx: ctx},
			&adversary.RecoverCorruptor{Ctx: ctx},
		}}
	},
}

// adversaryNames returns the registry's keys, sorted, for error messages
// and CLI help.
func adversaryNames() string {
	names := make([]string, 0, len(adversaryRegistry))
	for k := range adversaryRegistry {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// Result is one unit's measured metrics, in the store's column order.
type Result struct {
	// Converged reports whether the run settled within MaxBeats.
	Converged bool
	// ConvBeats is the convergence beat, or MaxBeats when unconverged
	// (the in-process experiments' convention, a lower bound on truth).
	ConvBeats int
	// ClosureViolations counts beats at which a converged system lost
	// synchronization again (Definition 3.2's closure; 0 for a correct
	// protocol).
	ClosureViolations int
	// MsgsPerNodeBeat and BytesPerNodeBeat are honest traffic divided by
	// (n-f) honest nodes times executed beats.
	MsgsPerNodeBeat  float64
	BytesPerNodeBeat float64
}

// encode packs the result into the store's fixed-width row (column
// order must match Metrics).
func (r Result) encode() [numMetrics]uint64 {
	var row [numMetrics]uint64
	if r.Converged {
		row[0] = 1
	}
	row[1] = uint64(r.ConvBeats)
	row[2] = uint64(r.ClosureViolations)
	row[3] = math.Float64bits(r.MsgsPerNodeBeat)
	row[4] = math.Float64bits(r.BytesPerNodeBeat)
	return row
}

// decodeResult is encode's inverse.
func decodeResult(row [numMetrics]uint64) Result {
	return Result{
		Converged:         row[0] != 0,
		ConvBeats:         int(row[1]),
		ClosureViolations: int(row[2]),
		MsgsPerNodeBeat:   math.Float64frombits(row[3]),
		BytesPerNodeBeat:  math.Float64frombits(row[4]),
	}
}

// Runner executes units. The zero value is ready to use.
type Runner struct {
	// Workers is sim.Config.Workers for each unit's engine: a pure
	// throughput knob — every worker count replays byte-identically, so
	// results are unaffected. 0 selects GOMAXPROCS.
	Workers int
}

// RunUnit executes one unit of g and returns its metrics. The engine
// seed, the coin setup seed and every other random choice derive from
// the unit alone, so re-running a unit — on any shard, in any process —
// reproduces its result bit-for-bit.
func (r Runner) RunUnit(g Grid, u Unit) (Result, error) {
	layout, err := core.ParseLayout(u.Layout)
	if err != nil {
		return Result{}, err
	}
	var factory coin.Factory
	switch g.Coin {
	case "fm":
		factory = coin.FMFactory{}
	case "rabin":
		factory = coin.RabinFactory{Seed: u.Seed(g)}
	default:
		return Result{}, fmt.Errorf("sweep: unknown coin %q", g.Coin)
	}
	var nodeFactory sim.NodeFactory
	switch g.Protocol {
	case "clocksync":
		nodeFactory = core.NewClockSyncProtocolLayout(g.K, factory, layout)
	case "clocksyncstale":
		nodeFactory = core.NewClockSyncStaleProtocolLayout(g.K, factory, layout)
	case "twoclock":
		nodeFactory = core.NewTwoClockProtocolLayout(factory, layout)
	case "fourclock":
		nodeFactory = core.NewFourClockProtocolLayout(factory, layout)
	default:
		return Result{}, fmt.Errorf("sweep: unknown protocol %q", g.Protocol)
	}
	mk, ok := adversaryRegistry[u.Adversary]
	if !ok {
		return Result{}, fmt.Errorf("sweep: unknown adversary %q", u.Adversary)
	}
	cfg := sim.Config{
		N: u.N, F: u.F, Seed: u.Seed(g),
		NewAdversary:  mk,
		ScrambleStart: true,
		CountBytes:    true,
		Workers:       r.Workers,
	}
	if u.Fault != "" && u.Fault != "none" {
		sched, err := faultnet.Parse(u.Fault)
		if err != nil {
			return Result{}, fmt.Errorf("sweep: unit %d fault %q: %w", u.Index, u.Fault, err)
		}
		// The schedule draws from the unit's own seed, so a faulted unit
		// replays bit-for-bit like an ideal one.
		sched.Seed = uint64(u.Seed(g))
		cfg.Links = sched
	}
	if g.Tenants > 1 {
		return r.runMultiTenant(g, u, cfg, nodeFactory)
	}
	e := sim.New(cfg, nodeFactory)
	res := sim.MeasureConvergence(e, g.protocolK(), g.MaxBeats, g.Hold)
	out := Result{
		Converged:         res.Converged,
		ClosureViolations: res.ClosureViolations,
		ConvBeats:         g.MaxBeats,
	}
	if res.Converged {
		out.ConvBeats = res.ConvergedAt
	}
	perNodeBeat := float64(u.N-u.F) * float64(res.Beats)
	if perNodeBeat > 0 {
		out.MsgsPerNodeBeat = float64(e.HonestMsgs) / perNodeBeat
		out.BytesPerNodeBeat = float64(e.HonestBytes) / perNodeBeat
	}
	return out, nil
}

// runMultiTenant measures the unit as g.Tenants independent instances
// multiplexed on one internal/multi engine (tenant t runs the unit
// config with Seed+t; a faulted unit's link schedule is shared, and
// pure, so tenants see the same network weather) and folds the
// per-tenant convergence results into the unit's one store row.
// The lockstep engine keeps stepping until the slowest tenant settles,
// so traffic is divided by the beats every tenant actually executed —
// honest nodes × engine beats × tenants.
func (r Runner) runMultiTenant(g Grid, u Unit, node sim.Config, factory sim.NodeFactory) (Result, error) {
	m := multi.New(multi.Config{Tenants: g.Tenants, Workers: r.Workers, Node: node}, factory)
	results := multi.MeasureConvergence(m, g.protocolK(), g.MaxBeats, g.Hold)
	out := Result{Converged: true}
	for _, res := range results {
		cb := g.MaxBeats
		if res.Converged {
			cb = res.ConvergedAt
		} else {
			out.Converged = false
		}
		if cb > out.ConvBeats {
			out.ConvBeats = cb
		}
		out.ClosureViolations += res.ClosureViolations
	}
	perNodeBeat := float64(u.N-u.F) * float64(m.Beat()) * float64(g.Tenants)
	if perNodeBeat > 0 {
		out.MsgsPerNodeBeat = float64(m.HonestMsgs()) / perNodeBeat
		out.BytesPerNodeBeat = float64(m.HonestBytes()) / perNodeBeat
	}
	return out, nil
}

// ExecuteShard runs every not-yet-completed unit assigned to the given
// shard (unit index mod shards), in ascending index order, appending
// each result to the store as soon as it is measured — so a killed sweep
// loses at most the unit in flight, and a restart skips everything
// already recorded (by ANY prior shard layout: completion is tracked per
// unit, not per shard). maxUnits > 0 stops after that many fresh units —
// the deterministic stand-in for an interruption in tests and the CI
// smoke. Cancelling ctx is the graceful interruption: the unit in
// flight finishes and is recorded, the chunk file is flushed, and
// ExecuteShard returns the count so far with ctx's error — everything
// recorded survives for the resume. Returns the number of units
// executed.
func ExecuteShard(ctx context.Context, st *Store, shard, shards int, r Runner, maxUnits int, progress func(Unit, Result)) (int, error) {
	if shards <= 0 || shard < 0 || shard >= shards {
		return 0, fmt.Errorf("sweep: bad shard %d of %d", shard, shards)
	}
	done, _, err := st.Completed()
	if err != nil {
		return 0, err
	}
	g := st.Grid()
	w, err := st.ShardWriter(shard, shards)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	ran := 0
	for idx := shard; idx < g.Units(); idx += shards {
		if done[idx] {
			continue
		}
		if maxUnits > 0 && ran >= maxUnits {
			break
		}
		if err := ctx.Err(); err != nil {
			if cerr := w.Close(); cerr != nil {
				return ran, cerr
			}
			return ran, err
		}
		u := g.UnitAt(idx)
		res, err := r.RunUnit(g, u)
		if err != nil {
			return ran, fmt.Errorf("sweep: unit %d: %w", idx, err)
		}
		if err := w.Append(idx, res.encode()); err != nil {
			return ran, err
		}
		ran++
		if progress != nil {
			progress(u, res)
		}
	}
	return ran, w.Close()
}
