package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/multi"
	"ssbyzclock/internal/net"
	"ssbyzclock/internal/noderuntime"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/sim"
)

// adversaryRegistry maps grid adversary names to constructors. Every
// entry is self-contained — constructable from the adversary.Context
// alone — which since the bit-oracle variants includes the strongest
// oracle-equipped attacks: BitOracleSplitter and BitOraclePhase3 read
// the public coin bit from a faulty node's own honest copy
// (Context.FaultyNode) instead of closing over a live engine, so E6/E7's
// oracle rows can be named in a serialized grid.
var adversaryRegistry = map[string]func(*adversary.Context) adversary.Adversary{
	"passive":  nil,
	"silent":   func(*adversary.Context) adversary.Adversary { return adversary.Silent{} },
	"splitter": func(ctx *adversary.Context) adversary.Adversary { return &adversary.ClockSplitter{Ctx: ctx} },
	"gradesplitter": func(ctx *adversary.Context) adversary.Adversary {
		return &adversary.GradeSplitter{Ctx: ctx}
	},
	"sharecorruptor": func(ctx *adversary.Context) adversary.Adversary {
		return &adversary.ShareCorruptor{Ctx: ctx}
	},
	"recovercorruptor": func(ctx *adversary.Context) adversary.Adversary {
		return &adversary.RecoverCorruptor{Ctx: ctx}
	},
	"replayer": func(ctx *adversary.Context) adversary.Adversary { return &adversary.Replayer{Ctx: ctx} },
	// stacked is E7's oracle-free core: clock splitting + grade splitting
	// + coin-recovery corruption in one chain.
	"stacked": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.Chain{Advs: []adversary.Adversary{
			&adversary.ClockSplitter{Ctx: ctx},
			&adversary.GradeSplitter{Ctx: ctx},
			&adversary.RecoverCorruptor{Ctx: ctx},
		}}
	},
	"bitoraclesplitter": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.NewBitOracleSplitter(ctx)
	},
	"bitoraclephase3": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.NewBitOraclePhase3(ctx)
	},
	// bitoraclestacked is the full E7 kitchen sink, oracle included: the
	// strongest attack the suite can express, now nameable in a grid.
	"bitoraclestacked": func(ctx *adversary.Context) adversary.Adversary {
		return adversary.Chain{Advs: []adversary.Adversary{
			adversary.NewBitOracleSplitter(ctx),
			&adversary.GradeSplitter{Ctx: ctx},
			&adversary.RecoverCorruptor{Ctx: ctx},
		}}
	},
}

// adversaryNames returns the registry's keys, sorted, for error messages
// and CLI help.
func adversaryNames() string {
	names := make([]string, 0, len(adversaryRegistry))
	for k := range adversaryRegistry {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// Result is one unit's measured metrics, in the store's column order.
type Result struct {
	// Converged reports whether the run settled within MaxBeats.
	Converged bool
	// ConvBeats is the convergence beat, or MaxBeats when unconverged
	// (the in-process experiments' convention, a lower bound on truth).
	ConvBeats int
	// ClosureViolations counts beats at which a converged system lost
	// synchronization again (Definition 3.2's closure; 0 for a correct
	// protocol).
	ClosureViolations int
	// MsgsPerNodeBeat and BytesPerNodeBeat are honest traffic divided by
	// (n-f) honest nodes times executed beats. Networked units record 0:
	// their frames are tenant-batched per link, so the engine's
	// per-message counters have no wire counterpart there.
	MsgsPerNodeBeat  float64
	BytesPerNodeBeat float64
	// ResidentBytesPerTenant is the steady-state live-heap delta per
	// tenant for engine multitenant units (tenants > 1, net "engine"):
	// the service-capacity number the multitenant grid aggregates. 0 for
	// single-instance and networked units.
	ResidentBytesPerTenant float64
}

// encode packs the result into the store's fixed-width row (column
// order must match Metrics).
func (r Result) encode() [numMetrics]uint64 {
	var row [numMetrics]uint64
	if r.Converged {
		row[0] = 1
	}
	row[1] = uint64(r.ConvBeats)
	row[2] = uint64(r.ClosureViolations)
	row[3] = math.Float64bits(r.MsgsPerNodeBeat)
	row[4] = math.Float64bits(r.BytesPerNodeBeat)
	row[5] = math.Float64bits(r.ResidentBytesPerTenant)
	return row
}

// decodeResult is encode's inverse.
func decodeResult(row [numMetrics]uint64) Result {
	return Result{
		Converged:              row[0] != 0,
		ConvBeats:              int(row[1]),
		ClosureViolations:      int(row[2]),
		MsgsPerNodeBeat:        math.Float64frombits(row[3]),
		BytesPerNodeBeat:       math.Float64frombits(row[4]),
		ResidentBytesPerTenant: math.Float64frombits(row[5]),
	}
}

// Runner executes units. The zero value is ready to use.
type Runner struct {
	// Workers is sim.Config.Workers for each unit's engine: a pure
	// throughput knob — every worker count replays byte-identically, so
	// results are unaffected. 0 selects GOMAXPROCS.
	Workers int
}

// RunUnit executes one unit of g and returns its metrics. The engine
// seed, the coin setup seed and every other random choice derive from
// the unit alone, so re-running a unit — on any shard, in any process —
// reproduces its result bit-for-bit.
func (r Runner) RunUnit(g Grid, u Unit) (Result, error) {
	layout, err := core.ParseLayout(u.Layout)
	if err != nil {
		return Result{}, err
	}
	var factory coin.Factory
	switch g.Coin {
	case "fm":
		factory = coin.FMFactory{}
	case "rabin":
		factory = coin.RabinFactory{Seed: u.Seed(g)}
	default:
		return Result{}, fmt.Errorf("sweep: unknown coin %q", g.Coin)
	}
	var nodeFactory sim.NodeFactory
	switch g.Protocol {
	case "clocksync":
		nodeFactory = core.NewClockSyncProtocolLayout(g.K, factory, layout)
	case "clocksyncstale":
		nodeFactory = core.NewClockSyncStaleProtocolLayout(g.K, factory, layout)
	case "twoclock":
		nodeFactory = core.NewTwoClockProtocolLayout(factory, layout)
	case "fourclock":
		nodeFactory = core.NewFourClockProtocolLayout(factory, layout)
	default:
		return Result{}, fmt.Errorf("sweep: unknown protocol %q", g.Protocol)
	}
	mk, ok := adversaryRegistry[u.Adversary]
	if !ok {
		return Result{}, fmt.Errorf("sweep: unknown adversary %q", u.Adversary)
	}
	cfg := sim.Config{
		N: u.N, F: u.F, Seed: u.Seed(g),
		NewAdversary:  mk,
		ScrambleStart: true,
		CountBytes:    true,
		Workers:       r.Workers,
	}
	if u.Fault != "" && u.Fault != "none" {
		sched, err := faultnet.Parse(u.Fault)
		if err != nil {
			return Result{}, fmt.Errorf("sweep: unit %d fault %q: %w", u.Index, u.Fault, err)
		}
		// The schedule draws from the unit's own seed, so a faulted unit
		// replays bit-for-bit like an ideal one.
		sched.Seed = uint64(u.Seed(g))
		cfg.Links = sched
	}
	if u.Net != "" && u.Net != "engine" {
		return r.runNetworked(g, u, cfg, nodeFactory)
	}
	if g.Tenants > 1 {
		return r.runMultiTenant(g, u, cfg, nodeFactory)
	}
	e := sim.New(cfg, nodeFactory)
	res := sim.MeasureConvergence(e, g.protocolK(), g.MaxBeats, g.Hold)
	out := Result{
		Converged:         res.Converged,
		ClosureViolations: res.ClosureViolations,
		ConvBeats:         g.MaxBeats,
	}
	if res.Converged {
		out.ConvBeats = res.ConvergedAt
	}
	perNodeBeat := float64(u.N-u.F) * float64(res.Beats)
	if perNodeBeat > 0 {
		out.MsgsPerNodeBeat = float64(e.HonestMsgs) / perNodeBeat
		out.BytesPerNodeBeat = float64(e.HonestBytes) / perNodeBeat
	}
	return out, nil
}

// runMultiTenant measures the unit as g.Tenants independent instances
// multiplexed on one internal/multi engine (tenant t runs the unit
// config with Seed+t; a faulted unit's link schedule is shared, and
// pure, so tenants see the same network weather) and folds the
// per-tenant convergence results into the unit's one store row.
// The lockstep engine keeps stepping until the slowest tenant settles,
// so traffic is divided by the beats every tenant actually executed —
// honest nodes × engine beats × tenants.
func (r Runner) runMultiTenant(g Grid, u Unit, node sim.Config, factory sim.NodeFactory) (Result, error) {
	// Bracket the engine's lifetime with live-heap readings: whatever the
	// unit's run leaves resident, divided by tenants, is the
	// service-capacity column. Units run sequentially in a worker, so the
	// forced collections see only this engine's survivors on top of the
	// worker's constant baseline.
	before := multi.LiveHeap()
	m := multi.New(multi.Config{Tenants: g.Tenants, Workers: r.Workers, Node: node}, factory)
	results := multi.MeasureConvergence(m, g.protocolK(), g.MaxBeats, g.Hold)
	out := Result{Converged: true}
	for _, res := range results {
		cb := g.MaxBeats
		if res.Converged {
			cb = res.ConvergedAt
		} else {
			out.Converged = false
		}
		if cb > out.ConvBeats {
			out.ConvBeats = cb
		}
		out.ClosureViolations += res.ClosureViolations
	}
	perNodeBeat := float64(u.N-u.F) * float64(m.Beat()) * float64(g.Tenants)
	if perNodeBeat > 0 {
		out.MsgsPerNodeBeat = float64(m.HonestMsgs()) / perNodeBeat
		out.BytesPerNodeBeat = float64(m.HonestBytes()) / perNodeBeat
	}
	if after := multi.LiveHeap(); after > before {
		out.ResidentBytesPerTenant = float64(after-before) / float64(g.Tenants)
	}
	runtime.KeepAlive(m)
	return out, nil
}

// clockCell is one honest node's clock reading at the end of one beat.
type clockCell struct {
	val  uint64
	ok   bool
	seen bool
}

// runNetworked measures the unit as a Lockstep noderuntime cluster over
// real loopback sockets: tenants (min 1) instances multiplexed behind n
// event-loop endpoints exchanging tenant-batched frames, with the
// unit's fault schedule injected at the transport wrapper. Lockstep
// networked runs replay the engine byte-identically per tenant, so the
// convergence fold matches runMultiTenant's — the row demonstrates the
// same numbers surviving real sockets, real frame encoding and real
// fault injection.
func (r Runner) runNetworked(g Grid, u Unit, node sim.Config, factory sim.NodeFactory) (Result, error) {
	T := g.Tenants
	if T < 1 {
		T = 1
	}
	var tr net.Transport
	var err error
	switch u.Net {
	case "udp":
		tr, err = net.NewLoopbackUDP(u.N, 0)
	case "tcp":
		tr, err = net.NewLoopbackTCPSeeded(u.N, 0, u.Seed(g))
	default:
		return Result{}, fmt.Errorf("sweep: unknown net %q", u.Net)
	}
	if err != nil {
		return Result{}, fmt.Errorf("sweep: unit %d %s transport: %w", u.Index, u.Net, err)
	}
	// Trajectories: [tenant][beat][honest position] clock readings, in
	// HonestIDs order. Lockstep guarantees every honest node reports
	// every beat below MaxBeats exactly once.
	honest := make([]int, 0, u.N-u.F)
	pos := make([]int, u.N)
	for i := 0; i < u.N-u.F; i++ {
		pos[i] = len(honest)
		honest = append(honest, i)
	}
	traj := make([][][]clockCell, T)
	for t := range traj {
		traj[t] = make([][]clockCell, g.MaxBeats)
		for b := range traj[t] {
			traj[t][b] = make([]clockCell, len(honest))
		}
	}
	var mu sync.Mutex
	cl, err := noderuntime.NewMultiCluster(noderuntime.MultiClusterConfig{
		N: u.N, F: u.F, Tenants: T,
		Seed:          node.Seed,
		Factory:       factory,
		NewAdversary:  node.NewAdversary,
		ScrambleStart: true,
		Links:         node.Links,
		Transport:     tr,
		MaxBeats:      uint64(g.MaxBeats),
		OnBeat: func(tenant, id int, beat uint64, p proto.Protocol) {
			if beat >= uint64(g.MaxBeats) || id >= u.N-u.F {
				return
			}
			cell := clockCell{seen: true}
			if cr, ok := p.(proto.ClockReader); ok {
				cell.val, cell.ok = cr.Clock()
			}
			mu.Lock()
			traj[tenant][beat][pos[id]] = cell
			mu.Unlock()
		},
	})
	if err != nil {
		return Result{}, fmt.Errorf("sweep: unit %d: %w", u.Index, err)
	}
	cl.Start()
	cl.Wait()
	cl.Stop()
	// Fold each tenant's trajectory through the exact state machine of
	// sim.MeasureConvergence, then the multitenant fold across tenants.
	k := g.protocolK()
	out := Result{Converged: true}
	for t := 0; t < T; t++ {
		res := measureTrajectory(traj[t], k, g.Hold)
		cb := g.MaxBeats
		if res.Converged {
			cb = res.ConvergedAt
		} else {
			out.Converged = false
		}
		if cb > out.ConvBeats {
			out.ConvBeats = cb
		}
		out.ClosureViolations += res.ClosureViolations
	}
	return out, nil
}

// measureTrajectory replays sim.MeasureConvergence's state machine over
// a recorded per-beat clock trajectory: a beat is synced when every
// honest node reported a defined, common clock, and good when that
// common value also advanced by one mod k from the previous synced
// beat.
func measureTrajectory(beats [][]clockCell, k uint64, holdBeats int) sim.ConvergenceResult {
	res := sim.ConvergenceResult{ConvergedAt: -1}
	stableSince := -1
	var prev uint64
	havePrev := false
	for b, cells := range beats {
		res.Beats++
		v, ok := syncedCells(cells)
		good := ok && (!havePrev || v == (prev+1)%k)
		if ok {
			prev, havePrev = v, true
		} else {
			havePrev = false
		}
		if good {
			if stableSince < 0 {
				stableSince = b
			}
			if b-stableSince+1 >= holdBeats {
				res.Converged = true
				res.ConvergedAt = stableSince
				return res
			}
		} else {
			if stableSince >= 0 {
				res.ClosureViolations++
			}
			stableSince = -1
		}
	}
	return res
}

// syncedCells reports whether every honest reading in the beat is
// present, defined and equal, and the common value.
func syncedCells(cells []clockCell) (uint64, bool) {
	if len(cells) == 0 {
		return 0, false
	}
	ref := cells[0]
	if !ref.seen || !ref.ok {
		return 0, false
	}
	for _, c := range cells[1:] {
		if !c.seen || !c.ok || c.val != ref.val {
			return 0, false
		}
	}
	return ref.val, true
}

// ExecuteShard runs every not-yet-completed unit assigned to the given
// shard (unit index mod shards), in ascending index order, appending
// each result to the store as soon as it is measured — so a killed sweep
// loses at most the unit in flight, and a restart skips everything
// already recorded (by ANY prior shard layout: completion is tracked per
// unit, not per shard). maxUnits > 0 stops after that many fresh units —
// the deterministic stand-in for an interruption in tests and the CI
// smoke. Cancelling ctx is the graceful interruption: the unit in
// flight finishes and is recorded, the chunk file is flushed, and
// ExecuteShard returns the count so far with ctx's error — everything
// recorded survives for the resume. Returns the number of units
// executed.
func ExecuteShard(ctx context.Context, st *Store, shard, shards int, r Runner, maxUnits int, progress func(Unit, Result)) (int, error) {
	if shards <= 0 || shard < 0 || shard >= shards {
		return 0, fmt.Errorf("sweep: bad shard %d of %d", shard, shards)
	}
	done, _, err := st.Completed()
	if err != nil {
		return 0, err
	}
	g := st.Grid()
	w, err := st.ShardWriter(shard, shards)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	ran := 0
	for idx := shard; idx < g.Units(); idx += shards {
		if done[idx] {
			continue
		}
		if maxUnits > 0 && ran >= maxUnits {
			break
		}
		if err := ctx.Err(); err != nil {
			if cerr := w.Close(); cerr != nil {
				return ran, cerr
			}
			return ran, err
		}
		u := g.UnitAt(idx)
		res, err := r.RunUnit(g, u)
		if err != nil {
			return ran, fmt.Errorf("sweep: unit %d: %w", idx, err)
		}
		if err := w.Append(idx, res.encode()); err != nil {
			return ran, err
		}
		ran++
		if progress != nil {
			progress(u, res)
		}
	}
	return ran, w.Close()
}
