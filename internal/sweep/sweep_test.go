package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testGrid is the suite's tiny grid: cheap enough to execute dozens of
// times, rich enough to cover both layouts and two adversaries.
func testGrid() Grid {
	return Grid{
		Protocol: "twoclock", Coin: "fm",
		Ns:          []int{4},
		Adversaries: []string{"silent", "splitter"},
		Layouts:     []string{"shared", "paper"},
		Seeds:       3,
		MaxBeats:    400,
		Hold:        6,
	}
}

// executeAll plans the grid into dir and runs it to completion across the
// given shard count, merging at the end.
func executeAll(t *testing.T, dir string, g Grid, shards int) *Store {
	t.Helper()
	st, err := Create(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		if _, err := ExecuteShard(context.Background(), st, s, shards, Runner{Workers: 1}, 0, nil); err != nil {
			t.Fatalf("shard %d/%d: %v", s, shards, err)
		}
	}
	if err := st.Merge(); err != nil {
		t.Fatal(err)
	}
	return st
}

// columnBytes reads every merged column file's raw bytes.
func columnBytes(t *testing.T, st *Store) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, m := range Metrics {
		b, err := os.ReadFile(filepath.Join(st.Dir(), "columns", m.Name+".col"))
		if err != nil {
			t.Fatal(err)
		}
		out[m.Name] = b
	}
	return out
}

func renderString(t *testing.T, st *Store) string {
	t.Helper()
	var b strings.Builder
	if err := Render(&b, st); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestShardCountDeterminism is the subsystem's core contract: the same
// grid executed with 1, 2 and 8 shards yields byte-identical merged
// column files and identical aggregate output.
func TestShardCountDeterminism(t *testing.T) {
	g := testGrid()
	ref := executeAll(t, filepath.Join(t.TempDir(), "ref"), g, 1)
	refCols := columnBytes(t, ref)
	refReport := renderString(t, ref)
	for _, shards := range []int{2, 8} {
		st := executeAll(t, t.TempDir(), g, shards)
		cols := columnBytes(t, st)
		for name, want := range refCols {
			if !bytes.Equal(cols[name], want) {
				t.Errorf("shards=%d: column %s differs from single-shard run", shards, name)
			}
		}
		if got := renderString(t, st); got != refReport {
			t.Errorf("shards=%d: aggregate report differs:\n%s\nwant:\n%s", shards, got, refReport)
		}
	}
}

// TestKillAndResume simulates an interrupted sweep: shard 0 of 2 stops
// after 2 units (the stand-in for a kill), then the whole sweep re-runs
// — under a DIFFERENT shard layout — and must produce the same merged
// bytes as an uninterrupted single-shard run, re-executing only the
// missing units.
func TestKillAndResume(t *testing.T) {
	g := testGrid()
	ref := executeAll(t, filepath.Join(t.TempDir(), "ref"), g, 1)
	refCols := columnBytes(t, ref)

	dir := t.TempDir()
	st, err := Create(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	ran, err := ExecuteShard(context.Background(), st, 0, 2, Runner{Workers: 1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("interrupted shard ran %d units, want 2", ran)
	}
	if err := st.Merge(); err == nil {
		t.Fatal("merge of an incomplete store must fail")
	}
	// Resume by re-planning (same grid: a no-op) and running to completion
	// with 3 shards — a different layout than the interrupted run.
	st2, err := Create(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < 3; s++ {
		ran, err := ExecuteShard(context.Background(), st2, s, 3, Runner{Workers: 1}, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += ran
	}
	if want := g.Units() - 2; total != want {
		t.Fatalf("resume re-ran %d units, want %d (2 were already complete)", total, want)
	}
	if err := st2.Merge(); err != nil {
		t.Fatal(err)
	}
	for name, want := range columnBytes(t, st2) {
		if !bytes.Equal(refCols[name], want) {
			t.Errorf("resumed store: column %s differs from uninterrupted run", name)
		}
	}
}

// TestContextCancelStopsGracefully interrupts a shard via context
// cancellation (the SIGINT path in cmd/sweep): the unit in flight is
// recorded, the error is the context's, and a later run resumes from
// the recorded frontier to the same merged bytes as an uninterrupted
// sweep.
func TestContextCancelStopsGracefully(t *testing.T) {
	g := testGrid()
	ref := executeAll(t, filepath.Join(t.TempDir(), "ref"), g, 1)
	refCols := columnBytes(t, ref)

	dir := t.TempDir()
	st, err := Create(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ran, err := ExecuteShard(ctx, st, 0, 1, Runner{Workers: 1}, 0, func(Unit, Result) {
		cancel() // the "SIGINT" lands while a unit is mid-flight
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran == 0 || ran >= g.Units() {
		t.Fatalf("interrupted shard ran %d units, want partial progress", ran)
	}
	_, done, err := st.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if done != ran {
		t.Fatalf("%d units recorded, %d executed: the in-flight unit was lost", done, ran)
	}
	if _, err := ExecuteShard(context.Background(), st, 0, 1, Runner{Workers: 1}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Merge(); err != nil {
		t.Fatal(err)
	}
	for name, want := range columnBytes(t, st) {
		if !bytes.Equal(refCols[name], want) {
			t.Errorf("resumed-after-cancel store: column %s differs from reference", name)
		}
	}
}

// TestPartialTrailingRecord kills a writer mid-append by truncating its
// chunk file to a non-record boundary: the scan must treat the partial
// tail as absent, the unit must re-run, and the merged output must still
// match the reference.
func TestPartialTrailingRecord(t *testing.T) {
	g := testGrid()
	ref := executeAll(t, filepath.Join(t.TempDir(), "ref"), g, 1)
	refCols := columnBytes(t, ref)

	dir := t.TempDir()
	st, err := Create(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteShard(context.Background(), st, 0, 1, Runner{Workers: 1}, 3, nil); err != nil {
		t.Fatal(err)
	}
	chunks, err := st.chunkFiles()
	if err != nil || len(chunks) != 1 {
		t.Fatalf("chunks = %v, err = %v", chunks, err)
	}
	fi, err := os.Stat(chunks[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last record off mid-word: unit 2 becomes a partial tail.
	if err := os.Truncate(chunks[0], fi.Size()-recordSize+11); err != nil {
		t.Fatal(err)
	}
	_, count, err := st.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("after truncation %d units complete, want 2", count)
	}
	if _, err := ExecuteShard(context.Background(), st, 0, 1, Runner{Workers: 1}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Merge(); err != nil {
		t.Fatal(err)
	}
	for name, want := range columnBytes(t, st) {
		if !bytes.Equal(refCols[name], want) {
			t.Errorf("post-truncation store: column %s differs from reference", name)
		}
	}
}

// TestConflictingRecords verifies the corruption guard: two different
// results recorded for one unit must fail the scan rather than silently
// pick one.
func TestConflictingRecords(t *testing.T) {
	g := testGrid()
	dir := t.TempDir()
	st, err := Create(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.ShardWriter(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, [numMetrics]uint64{1, 10, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, [numMetrics]uint64{1, 11, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := st.Completed(); err == nil {
		t.Fatal("conflicting records must fail the completion scan")
	}
}

// TestGridMismatchRejected verifies a store cannot be re-planned with a
// different grid.
func TestGridMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testGrid()); err != nil {
		t.Fatal(err)
	}
	g2 := testGrid()
	g2.Seeds++
	if _, err := Create(dir, g2); err == nil {
		t.Fatal("planning a different grid over an existing store must fail")
	}
}

// TestUnitEnumeration pins the unit index layout the store depends on:
// seed innermost, then layout, adversary, n.
func TestUnitEnumeration(t *testing.T) {
	g := testGrid()
	if got, want := g.Units(), 1*2*2*3; got != want {
		t.Fatalf("Units() = %d, want %d", got, want)
	}
	u := g.UnitAt(0)
	if u.N != 4 || u.Adversary != "silent" || u.Layout != "shared" || u.SeedIdx != 0 {
		t.Fatalf("unit 0 = %+v", u)
	}
	u = g.UnitAt(g.Seeds) // first unit of the second layout
	if u.Adversary != "silent" || u.Layout != "paper" || u.SeedIdx != 0 {
		t.Fatalf("unit %d = %+v", g.Seeds, u)
	}
	u = g.UnitAt(g.Units() - 1)
	if u.Adversary != "splitter" || u.Layout != "paper" || u.SeedIdx != g.Seeds-1 {
		t.Fatalf("last unit = %+v", u)
	}
	if f := g.UnitAt(0).F; f != 1 {
		t.Fatalf("f = %d, want 1", f)
	}
}

// TestRunnerWorkersIrrelevant verifies the Workers knob does not change
// results (the scheduler's byte-identical replay contract, surfaced at
// the sweep layer).
func TestRunnerWorkersIrrelevant(t *testing.T) {
	g := testGrid()
	u := g.UnitAt(5)
	r1, err := Runner{Workers: 1}.RunUnit(g, u)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Runner{Workers: 8}.RunUnit(g, u)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r8 {
		t.Fatalf("workers=1 result %+v != workers=8 result %+v", r1, r8)
	}
}

// TestScanRowsMmapMatchesBuffered: the mmap fast path over the merged
// columns must yield exactly the rows the buffered reader yields, and
// must kick in when the columns cross the threshold.
func TestScanRowsMmapMatchesBuffered(t *testing.T) {
	if !mmapAvailable {
		t.Skip("no mmap on this platform")
	}
	st := executeAll(t, filepath.Join(t.TempDir(), "store"), testGrid(), 1)
	type rowAt struct {
		idx int
		row [numMetrics]uint64
	}
	collect := func() []rowAt {
		var out []rowAt
		if err := st.ScanRows(func(idx int, row [numMetrics]uint64) error {
			out = append(out, rowAt{idx, row})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	defer func(old int64) { mmapThreshold = old }(mmapThreshold)
	mmapThreshold = 1 << 40 // force buffered
	buffered := collect()
	mmapThreshold = 1 // force mmap
	mapped := collect()
	if len(buffered) != st.Units() || len(mapped) != len(buffered) {
		t.Fatalf("row counts: buffered %d, mapped %d, units %d", len(buffered), len(mapped), st.Units())
	}
	for i := range buffered {
		if buffered[i] != mapped[i] {
			t.Fatalf("row %d differs: buffered %+v, mapped %+v", i, buffered[i], mapped[i])
		}
	}
}

// TestBitOracleUnitsRunnable: the serialized oracle rows (E6/E7) — the
// bit-oracle adversaries and the stale-rand protocol variant — execute
// from a bare grid, deterministically. These rows used to be impossible
// to sweep because the oracle closed over a live engine.
func TestBitOracleUnitsRunnable(t *testing.T) {
	g := Grid{
		Protocol: "clocksyncstale", Coin: "rabin", K: 8,
		Ns:          []int{4},
		Adversaries: []string{"bitoraclephase3", "bitoraclestacked", "bitoraclesplitter"},
		Layouts:     []string{"shared"},
		Seeds:       1,
		MaxBeats:    300,
		Hold:        6,
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < g.Units(); idx++ {
		u := g.UnitAt(idx)
		r1, err := Runner{Workers: 1}.RunUnit(g, u)
		if err != nil {
			t.Fatalf("unit %d (%s): %v", idx, u.Adversary, err)
		}
		r2, err := Runner{Workers: 1}.RunUnit(g, u)
		if err != nil {
			t.Fatal(err)
		}
		if r1 != r2 {
			t.Fatalf("unit %d (%s) not deterministic: %+v vs %+v", idx, u.Adversary, r1, r2)
		}
	}
}

// TestFaultDimension covers the grid's transport-fault coordinate: the
// empty Faults slice is the single ideal schedule and keeps the legacy
// unit enumeration (and grid Hash) intact; a populated slice multiplies
// the unit count with fault innermost-but-for-seed; faulted units run
// deterministically and differently from their ideal twins.
func TestFaultDimension(t *testing.T) {
	plain := testGrid()
	legacy := plain.Hash()
	if got := plain.UnitAt(0).Fault; got != "none" {
		t.Fatalf("ideal grid unit fault = %q, want none", got)
	}
	if plain.Hash() != legacy {
		t.Fatal("reading units must not change the grid hash")
	}

	g := testGrid()
	g.Faults = []string{"none", "loss25+reorder"}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := g.Units(), plain.Units()*2; got != want {
		t.Fatalf("Units() = %d, want %d", got, want)
	}
	if g.Hash() == legacy {
		t.Fatal("fault dimension must change the grid hash")
	}
	// Fault sits between layout and seed: unit Seeds is the first unit of
	// the second fault, same cell otherwise.
	u := g.UnitAt(g.Seeds)
	if u.Fault != "loss25+reorder" || u.Layout != "shared" || u.Adversary != "silent" || u.SeedIdx != 0 {
		t.Fatalf("unit %d = %+v", g.Seeds, u)
	}

	ideal, err := Runner{Workers: 1}.RunUnit(g, g.UnitAt(0))
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Runner{Workers: 1}.RunUnit(g, u)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Runner{Workers: 1}.RunUnit(g, u)
	if err != nil {
		t.Fatal(err)
	}
	if faulted != again {
		t.Fatalf("faulted unit not deterministic: %+v vs %+v", faulted, again)
	}
	if faulted == ideal {
		t.Fatalf("loss25+reorder left the run unchanged: %+v", faulted)
	}
}

// TestTenantsDimension: a tenants > 1 unit multiplexes T instances on
// one engine and aggregates exactly what T standalone units (same
// per-tenant seeds) would report — all-converged, slowest convergence
// beat, summed closure violations — deterministically at any worker
// count, while tenants = 0 keeps legacy grid hashes.
func TestTenantsDimension(t *testing.T) {
	plain := testGrid()
	legacy := plain.Hash()

	const T = 3
	g := testGrid()
	g.Tenants = T
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Hash() == legacy {
		t.Fatal("tenants dimension must change the grid hash")
	}
	if got, want := g.Units(), plain.Units(); got != want {
		t.Fatalf("tenants must not multiply units: %d vs %d", got, want)
	}

	u := g.UnitAt(0)
	mt, err := Runner{Workers: 1}.RunUnit(g, u)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Runner{Workers: 3}.RunUnit(g, u)
	if err != nil {
		t.Fatal(err)
	}
	// The resident column is a physical heap measurement — stable to a
	// few hundred bytes/tenant across runs, but outside the bit-for-bit
	// contract (see the Metrics doc). Everything else must match exactly.
	if mt.ResidentBytesPerTenant <= 0 || again.ResidentBytesPerTenant <= 0 {
		t.Fatalf("multi-tenant residency not measured: %+v vs %+v", mt, again)
	}
	if rel := (mt.ResidentBytesPerTenant - again.ResidentBytesPerTenant) / mt.ResidentBytesPerTenant; rel > 0.05 || rel < -0.05 {
		t.Fatalf("resident bytes/tenant unstable across workers: %+v vs %+v", mt, again)
	}
	mtExact, againExact := mt, again
	mtExact.ResidentBytesPerTenant, againExact.ResidentBytesPerTenant = 0, 0
	if mtExact != againExact {
		t.Fatalf("multi-tenant unit depends on workers: %+v vs %+v", mt, again)
	}

	// Tenant tt's standalone run is the same unit with the seed base
	// shifted by tt (tenant seed = unit seed + tt).
	want := Result{Converged: true}
	for tt := 0; tt < T; tt++ {
		gs := testGrid()
		gs.SeedBase = int64(tt)
		r, err := Runner{Workers: 1}.RunUnit(gs, gs.UnitAt(0))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Converged {
			want.Converged = false
		}
		if r.ConvBeats > want.ConvBeats {
			want.ConvBeats = r.ConvBeats
		}
		want.ClosureViolations += r.ClosureViolations
	}
	if mt.Converged != want.Converged || mt.ConvBeats != want.ConvBeats ||
		mt.ClosureViolations != want.ClosureViolations {
		t.Fatalf("aggregation mismatch: multiplexed %+v, standalone fold %+v", mt, want)
	}
	if mt.MsgsPerNodeBeat <= 0 || mt.BytesPerNodeBeat <= 0 {
		t.Fatalf("multi-tenant traffic not measured: %+v", mt)
	}
}

// TestNetsDimension: a udp/tcp unit runs the same multiplexed workload
// as a Lockstep noderuntime cluster over real loopback sockets and must
// report the exact convergence fold of its engine twin — same
// all-converged verdict, slowest convergence beat and closure
// violations — because Lockstep networked runs replay the engine
// byte-identically per tenant. Also pins the enumeration: nets widen
// the grid, change its hash, and legacy (empty-Nets) grids keep theirs.
func TestNetsDimension(t *testing.T) {
	base := Grid{
		Protocol: "clocksync", Coin: "fm", K: 16,
		Ns:          []int{4},
		Adversaries: []string{"splitter"},
		Layouts:     []string{"shared"},
		Faults:      []string{"loss15"},
		Tenants:     2,
		Seeds:       1,
		MaxBeats:    300,
		Hold:        6,
	}
	legacy := base.Hash()

	g := base
	g.Nets = []string{"engine", "udp", "tcp"}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Hash() == legacy {
		t.Fatal("nets dimension must change the grid hash")
	}
	if got, want := g.Units(), 3*base.Units(); got != want {
		t.Fatalf("nets must multiply units: %d vs %d", got, want)
	}

	results := make(map[string]Result, 3)
	for i := 0; i < g.Units(); i++ {
		u := g.UnitAt(i)
		r, err := Runner{Workers: 1}.RunUnit(g, u)
		if err != nil {
			t.Fatalf("unit %d (%s): %v", i, u.Net, err)
		}
		// Residency and traffic are substrate-local; the convergence fold
		// is the cross-substrate invariant.
		r.MsgsPerNodeBeat, r.BytesPerNodeBeat, r.ResidentBytesPerTenant = 0, 0, 0
		results[u.Net] = r
	}
	eng := results["engine"]
	if !eng.Converged {
		t.Fatalf("engine unit did not converge: %+v", eng)
	}
	for _, nt := range []string{"udp", "tcp"} {
		if results[nt] != eng {
			t.Fatalf("%s unit diverged from engine twin: %+v vs %+v", nt, results[nt], eng)
		}
	}
}

// TestGridValidate spot-checks the validator's rejections.
func TestGridValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Grid)
	}{
		{"protocol", func(g *Grid) { g.Protocol = "nope" }},
		{"coin", func(g *Grid) { g.Coin = "nope" }},
		{"adversary", func(g *Grid) { g.Adversaries = []string{"nope"} }},
		{"layout", func(g *Grid) { g.Layouts = []string{"nope"} }},
		{"seeds", func(g *Grid) { g.Seeds = 0 }},
		{"ns", func(g *Grid) { g.Ns = nil }},
		{"maxbeats", func(g *Grid) { g.MaxBeats = 0 }},
		{"hold", func(g *Grid) { g.Hold = 0 }},
		{"k", func(g *Grid) { g.Protocol = "clocksync"; g.K = 0 }},
		{"fault", func(g *Grid) { g.Faults = []string{"loss200"} }},
		{"net", func(g *Grid) { g.Nets = []string{"carrier-pigeon"} }},
		{"tenants", func(g *Grid) { g.Tenants = -1 }},
	} {
		g := testGrid()
		tc.mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: bad grid validated", tc.name)
		}
	}
	g := testGrid()
	if err := g.Validate(); err != nil {
		t.Errorf("good grid rejected: %v", err)
	}
}
