package sweep

import (
	"fmt"
	"io"

	"ssbyzclock/internal/stats"
)

// CellKey identifies one grid cell (every seed of one configuration).
type CellKey struct {
	N         int
	Adversary string
	Layout    string
	Fault     string
	Net       string
}

// CellAgg is one cell's aggregate over its seeds, built by streaming the
// merged columns — no per-seed slice is ever materialized, so aggregation
// memory is O(cells · MaxBeats), independent of seed count.
type CellAgg struct {
	Key CellKey
	// Conv is the convergence-beat distribution (MaxBeats for
	// unconverged runs, the lower-bound convention).
	Conv *stats.Histogram
	// Fails counts unconverged runs.
	Fails int
	// Closure sums closure violations across seeds.
	Closure uint64
	// Msgs and Bytes aggregate honest traffic per node-beat.
	Msgs, Bytes stats.Stream
	// Resident aggregates resident bytes/tenant over the seeds that
	// recorded one (engine multitenant units only — its N() is 0 for
	// single-instance and networked cells, rendered as "-").
	Resident stats.Stream
}

// Aggregate streams the merged store into per-cell aggregates, in the
// grid's cell enumeration order (n outermost, then adversary, layout,
// fault). The store must be merged.
func Aggregate(st *Store) ([]*CellAgg, error) {
	g := st.Grid()
	cells := make([]*CellAgg, g.Units()/g.Seeds)
	for i := range cells {
		u := g.UnitAt(i * g.Seeds)
		cells[i] = &CellAgg{
			Key:  CellKey{N: u.N, Adversary: u.Adversary, Layout: u.Layout, Fault: u.Fault, Net: u.Net},
			Conv: stats.NewHistogram(g.MaxBeats),
		}
	}
	err := st.ScanRows(func(idx int, row [numMetrics]uint64) error {
		c := cells[idx/g.Seeds]
		res := decodeResult(row)
		c.Conv.Add(res.ConvBeats)
		if !res.Converged {
			c.Fails++
		}
		c.Closure += uint64(res.ClosureViolations)
		c.Msgs.Add(res.MsgsPerNodeBeat)
		c.Bytes.Add(res.BytesPerNodeBeat)
		if res.ResidentBytesPerTenant > 0 {
			c.Resident.Add(res.ResidentBytesPerTenant)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// Render writes the aggregate table for a merged store: one row per
// cell with the convergence distribution, failure count, closure
// violations and traffic rates. The output is a pure function of the
// merged columns, so it is identical for every shard layout that
// produced them — the property the CI smoke asserts.
func Render(w io.Writer, st *Store) error {
	cells, err := Aggregate(st)
	if err != nil {
		return err
	}
	g := st.Grid()
	fmt.Fprintf(w, "sweep: %s/%s k=%d seeds=%d max_beats=%d hold=%d (%d units)\n",
		g.Protocol, g.Coin, g.protocolK(), g.Seeds, g.MaxBeats, g.Hold, g.Units())
	t := stats.NewTable("n", "f", "adversary", "layout", "fault", "net",
		"mean", "p50", "p95", "max", "fails", "closure", "msgs/node-beat", "bytes/node-beat", "resident-B/tenant")
	for _, c := range cells {
		resident := "-"
		if c.Resident.N() > 0 {
			resident = fmt.Sprintf("%.0f", c.Resident.Mean())
		}
		t.AddRow(fmt.Sprint(c.Key.N), fmt.Sprint((c.Key.N-1)/3), c.Key.Adversary, c.Key.Layout, c.Key.Fault, c.Key.Net,
			fmt.Sprintf("%.1f", c.Conv.Mean()),
			fmt.Sprintf("%.0f", c.Conv.Median()),
			fmt.Sprintf("%.0f", c.Conv.Quantile(0.95)),
			fmt.Sprintf("%.0f", c.Conv.Max()),
			fmt.Sprintf("%d/%d", c.Fails, c.Conv.N()),
			fmt.Sprint(c.Closure),
			fmt.Sprintf("%.1f", c.Msgs.Mean()),
			fmt.Sprintf("%.0f", c.Bytes.Mean()),
			resident)
	}
	_, err = fmt.Fprint(w, t)
	return err
}
