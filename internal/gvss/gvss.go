// Package gvss implements a synchronous graded verifiable secret sharing
// scheme, the substrate the paper's common coin is built on (Section 2.1,
// Observation 2.1, citing Feldman–Micali).
//
// One Instance covers a full "dealing session": every node simultaneously
// acts as a dealer, sharing a vector of n secrets — dealer d's secret
// number t is d's contribution to target node t's "lottery ticket" in the
// common-coin layer above (package coin). Each (dealer, target) secret is
// shared with a symmetric bivariate polynomial of degree f.
//
// Rounds (one per beat when driven by the ss-Byz-Coin-Flip pipeline):
//
//	1 share   dealer d sends node i its row polynomials g_{d,t,i}(x) = B_{d,t}(x, i+1)
//	2 echo    node i sends node j the cross points g_{d,t,i}(j+1) for all (d,t);
//	          on delivery each node row-fixes: if its own row disagrees with
//	          the echoes, it re-decodes its row from the echo points (they
//	          lie on the node's row by symmetry), tolerating f errors
//	3 vote    node i broadcasts, per (d,t), whether it holds a validated row
//	          (original or fixed) consistent with >= n-f echo points;
//	          on delivery grades are assigned: 2 with >= n-f OK votes,
//	          1 with >= f+1, else 0
//	recover   (driven later by the coin layer, after its accept round)
//	          node i broadcasts its share g_{d,t,i}(0) for every dealing;
//	          on delivery each secret is reconstructed by Berlekamp–Welch,
//	          tolerating the f Byzantine shares
//
// Grade semantics (validated by tests): an honest dealer's dealings reach
// grade 2 at every honest node with exact, identical recovery; and if any
// honest node assigns grade 2, every honest node assigns grade >= 1.
//
// Substitution note (recorded in DESIGN.md §3): full Feldman–Micali GVSS
// adds complaint/accusation rounds that make recovery consistent for
// *every* grade-2 dealing even against arbitrary row-geometry attacks by a
// Byzantine dealer colluding with Byzantine echoers. We replace those
// rounds with echo-based row fixing, which preserves the properties above
// for honest dealers unconditionally and is validated empirically against
// the implemented adversary suite (experiment E2).
package gvss

import (
	"math/rand"
	"sync"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/shamir"
)

// Grade levels assigned to each (dealer, target) dealing after the vote
// round. GradeNone means the dealing is worthless; GradeLow means at least
// one honest node may rely on it; GradeHigh guarantees every honest node
// assigned at least GradeLow.
const (
	GradeNone uint8 = 0
	GradeLow  uint8 = 1
	GradeHigh uint8 = 2
)

// Rounds is the number of send-and-receive rounds an Instance needs before
// Recovered returns final values: share, echo, vote, recover.
const Rounds = 4

// ShareMsg is the dealer's round-1 message to one node: for each target t,
// the row polynomial of the bivariate sharing of secret (dealer, t).
//
// The four round messages (and coin.AcceptMsg) travel in value or
// pointer form: compose paths send pointers into per-instance message
// slots whose backing comes from the node's beat pool — legal because
// messages are valid only for their beat (proto.Message) — while
// adversaries and tests hand-build values. Consumers accept both via the
// As* helpers.
type ShareMsg struct {
	Rows []field.Poly // [target][coefficient], each of length f+1
}

// Kind implements proto.Message.
func (ShareMsg) Kind() string { return "gvss.share" }

// AsShare reports whether m is a share message, accepting both forms.
func AsShare(m proto.Message) (ShareMsg, bool) {
	switch v := m.(type) {
	case ShareMsg:
		return v, true
	case *ShareMsg:
		return *v, true
	}
	return ShareMsg{}, false
}

// EchoMsg is node i's round-2 message to node j: Vals[d][t] is
// g_{d,t,i}(j+1), the cross-check point of i's row for dealing (d,t).
// Has[d][t] marks dealings for which i actually received a row; entries
// without it carry zero and must be skipped by the receiver (a silent
// dealer must not be mistaken for one dealing the zero polynomial).
type EchoMsg struct {
	Vals [][]field.Elem // [dealer][target]
	Has  [][]bool       // [dealer][target]
	// ValsFlat/HasFlat are the same matrices in flat row-major form
	// (index d*n+t). When both have length n² they are authoritative and
	// the receiver's fused sweep runs over them directly, one wide pass
	// per matrix; otherwise the receiver gathers the row views. Composed
	// messages always set them aliasing the row views' backing. The wire
	// codec transmits the row views only, so decoded messages take the
	// gather path.
	ValsFlat []field.Elem
	HasFlat  []bool
}

// Kind implements proto.Message.
func (EchoMsg) Kind() string { return "gvss.echo" }

// AsEcho reports whether m is an echo message, accepting both forms.
func AsEcho(m proto.Message) (EchoMsg, bool) {
	switch v := m.(type) {
	case EchoMsg:
		return v, true
	case *EchoMsg:
		return *v, true
	}
	return EchoMsg{}, false
}

// VoteMsg is node i's round-3 broadcast: OK[d][t] reports whether i holds
// a validated row for dealing (d,t).
type VoteMsg struct {
	OK [][]bool // [dealer][target]
	// OKFlat is OK in flat row-major form (index d*n+t); authoritative
	// when its length is n² (see EchoMsg).
	OKFlat []bool
}

// Kind implements proto.Message.
func (VoteMsg) Kind() string { return "gvss.vote" }

// AsVote reports whether m is a vote message, accepting both forms.
func AsVote(m proto.Message) (VoteMsg, bool) {
	switch v := m.(type) {
	case VoteMsg:
		return v, true
	case *VoteMsg:
		return *v, true
	}
	return VoteMsg{}, false
}

// RecoverMsg is node i's recover-round broadcast: Shares[d][t] is i's
// share g_{d,t,i}(0) of secret (d,t). HasRow[d][t] marks entries for which
// i actually holds a validated row; others carry zero and are skipped by
// receivers.
type RecoverMsg struct {
	Shares [][]field.Elem // [dealer][target]
	HasRow [][]bool       // [dealer][target]
	// SharesFlat/HasRowFlat are the flat row-major forms (index d*n+t);
	// authoritative when both have length n² (see EchoMsg).
	SharesFlat []field.Elem
	HasRowFlat []bool
}

// Kind implements proto.Message.
func (RecoverMsg) Kind() string { return "gvss.recover" }

// AsRecover reports whether m is a recover message, accepting both forms.
func AsRecover(m proto.Message) (RecoverMsg, bool) {
	switch v := m.(type) {
	case RecoverMsg:
		return v, true
	case *RecoverMsg:
		return *v, true
	}
	return RecoverMsg{}, false
}

// Instance is one node's state for one dealing session. The zero value is
// not usable; construct with New. Instances are not safe for concurrent
// use; the simulation engine and runtime drive each node sequentially.
//
// The struct holds ONLY state the protocol requires to persist across
// rounds: the dealt bivariates (leased, released once shared), the row /
// grade / recovery matrices, the compose→deliver echo cache, and the
// persistent message slots. Everything whose lifetime is a single method
// call — gather/stage buffers, tally counters, per-sender pointer
// tables, the happy-path secret decoder — lives in a process-wide
// scratch pool (see scratch below) shared by every instance of the same
// shape, because a multiplexed service keeps tens of instances per
// tenant resident and per-call scratch multiplied by 5 pipeline slots ×
// n nodes × T tenants was the largest single slice of resident memory.
// All matrices are flat row-major (index d*n+t); tests index the flats.
type Instance struct {
	env proto.Env

	// Dealer state: my secret contributions, one bivariate per target,
	// leased from a process-wide slab pool. ComposeShare releases the
	// slab once the rows are computed — the coefficients are never read
	// again — leaving only dealtSecrets (the n constant terms) resident
	// for DealtSecret and coin-quality measurements.
	dealt        *dealtSlab
	dealtSecrets []field.Elem

	// rowLen[d*n+t] encodes my (possibly fixed) row for dealing (d,t):
	// 0 when missing or invalid, else 1+L where L is the row's
	// coefficient count (fixed rows may be trimmed below f+1, down to
	// the zero polynomial at L = 0). Every row — delivered or fixed —
	// lives in its fixed-stride slot of the flat rowData backing, so one
	// byte per dealing replaces what was a slice header per dealing:
	// at T tenants × pipeline instances × n² dealings, those headers
	// were the single largest entry in the resident-footprint profile.
	// The row accessor materializes the view. rowOKFlat mirrors validity
	// after the echo round.
	rowLen    []uint8
	rowData   []field.Elem // n*n slots of f+1 coefficients each
	rowOKFlat []bool

	gradesFlat []uint8 // [d*n+t], valid after DeliverVote

	recoveredFlat []field.Elem // valid after DeliverRecover where recOK
	recOKFlat     []bool

	// me is the shared batch-evaluation table for the session's share
	// points 1..n: every row evaluation in the share, echo and recover
	// rounds goes through it in one pass per row instead of n independent
	// Poly.Eval calls. The table is immutable and shared process-wide.
	me *field.MultiEval

	// echoVals caches the compose-echo evaluations row_{d,t}(j+1) laid
	// out [(d*n+t)*n + j]. ComposeEcho fills it; DeliverEcho — which runs
	// later the same beat and needs exactly these values to count echo
	// agreement — reads it instead of re-evaluating, halving the echo
	// round's evaluation work, then releases it. The n³ buffers are
	// checked out of a process-wide pool only for that compose→deliver
	// window, so a pipeline full of instances does not pin one per slot.
	// Entries for dealings without a row are stale and guarded by
	// rowLen[dt] != 0 (stale pool contents are therefore never read);
	// echoCached gates the whole cache so a Deliver without a matching
	// Compose falls back to fresh evaluation.
	echoVals   []field.Elem
	echoCached bool
	// echoValsT is echoVals transposed to sender-major [j*n*n + d*n+t] —
	// the exact per-destination payload ComposeEcho scatters, retained so
	// DeliverEcho's fused validate+tally sweep streams one sequential row
	// per sender instead of striding through echoVals. Both views are
	// carved from echoBuf, a single 2n³ pool checkout, so the pool sees
	// one Get/Put per echo round (each sync.Pool.Put boxes its slice
	// header — one heap allocation — so halving Put traffic matters on
	// the beat's allocation budget).
	echoValsT []field.Elem
	echoBuf   []field.Elem

	// echoAgree[d*n+t] is the echo agreement tally the fused
	// validate+tally sweep accumulates per delivered matrix. uint64 so
	// the sweep's wrapping ±1 adds (field.SweepTally) settle to the
	// exact non-negative count by the time the resolution loop reads it.
	// Kept on the instance (not call scratch) as the white-box surface
	// the sweep differential tests assert against after DeliverEcho.
	echoAgree []uint64

	// coefShare holds ComposeShare's pooled degree-major coefficient
	// gather between a deferred enqueue (env.Batch non-nil) and the
	// driver's batch flush, which releases it via FinishEval(finishCoef).
	// The immediate path releases it before ComposeShare returns, so at
	// steady state no resident instance pins a gather block.
	coefShare []field.Elem

	// batchElems/batchBools hold ComposeEcho's leased payload blocks
	// between a deferred enqueue (env.Batch non-nil) and FinishEval,
	// which runs the payload copies the immediate path does inline.
	batchElems []field.Elem
	batchBools []bool

	// Persistent message slots and send lists for the four rounds. Each
	// Compose* overwrites its slots' slice headers (pointing them at
	// beat-pooled backing) and returns the prebuilt send list whose Msg
	// pointers never change — so composing is free of interface-boxing
	// allocations. Legal under the message-lifetime contract: by the time
	// a slot is rewritten (this instance's next session at the earliest),
	// the previous message is long dead. The four send lists are windows
	// of one backing array (sends).
	shareMsgs    []ShareMsg
	shareSends   []proto.Send
	echoMsgs     []EchoMsg
	echoSends    []proto.Send
	voteMsg      VoteMsg
	voteSends    []proto.Send
	recoverMsg   RecoverMsg
	recoverSends []proto.Send
}

// New creates the per-node state for one session and draws this node's
// dealer secrets from rng.
func New(env proto.Env, rng *rand.Rand) *Instance {
	n, f := env.N, env.F
	w := f + 1
	ins := &Instance{env: env}
	// One element block backs the row slots, the recovery matrix and the
	// dealt secrets; one bool block backs both validity matrices.
	elems := make([]field.Elem, n*n*w+n*n+n)
	ins.rowData = elems[: n*n*w : n*n*w]
	ins.recoveredFlat = elems[n*n*w : n*n*w+n*n : n*n*w+n*n]
	ins.dealtSecrets = elems[n*n*w+n*n:]
	bools := make([]bool, 2*n*n)
	ins.rowOKFlat = bools[: n*n : n*n]
	ins.recOKFlat = bools[n*n:]
	bytes := make([]uint8, 2*n*n)
	ins.rowLen = bytes[: n*n : n*n]
	ins.gradesFlat = bytes[n*n:]
	ins.echoAgree = make([]uint64, n*n)
	ins.me = field.MultiEvalFor(n, f)
	ins.leaseDealt(rng)
	ins.shareMsgs = make([]ShareMsg, n)
	ins.echoMsgs = make([]EchoMsg, n)
	sends := make([]proto.Send, 2*n+2)
	ins.shareSends = sends[:n:n]
	ins.echoSends = sends[n : 2*n : 2*n]
	ins.voteSends = sends[2*n : 2*n+1 : 2*n+1]
	ins.recoverSends = sends[2*n+1:]
	for i := 0; i < n; i++ {
		ins.shareSends[i] = proto.Send{To: i, Msg: &ins.shareMsgs[i]}
		ins.echoSends[i] = proto.Send{To: i, Msg: &ins.echoMsgs[i]}
	}
	ins.voteSends[0] = proto.Send{To: proto.Broadcast, Msg: &ins.voteMsg}
	ins.recoverSends[0] = proto.Send{To: proto.Broadcast, Msg: &ins.recoverMsg}
	return ins
}

// Pooled-or-fresh backing for a round's payload: the node's beat pool
// when the driver installed one (recycled by the engine after this
// beat's Deliver phase), plain allocation otherwise (SSBYZ_POOL=off, the
// goroutine runtime, direct harness use). Pooled buffers carry arbitrary
// recycled contents; every compose path below fully overwrites — or
// explicitly clears — the bytes it exposes, which is what keeps pooled
// and unpooled seeded runs byte-identical.

func (ins *Instance) allocElems(n int) []field.Elem {
	if p := ins.env.Pool; p != nil {
		return p.Elems(n)
	}
	return make([]field.Elem, n)
}

func (ins *Instance) allocBools(n int) []bool {
	if p := ins.env.Pool; p != nil {
		return p.Bools(n)
	}
	return make([]bool, n)
}

func (ins *Instance) allocPolys(n int) []field.Poly {
	if p := ins.env.Pool; p != nil {
		return p.Polys(n)
	}
	return make([]field.Poly, n)
}

func (ins *Instance) allocElemRows(n int) [][]field.Elem {
	if p := ins.env.Pool; p != nil {
		return p.ElemRows(n)
	}
	return make([][]field.Elem, n)
}

func (ins *Instance) allocBoolRows(n int) [][]bool {
	if p := ins.env.Pool; p != nil {
		return p.BoolRows(n)
	}
	return make([][]bool, n)
}

// rowSlot returns the flat-backing slot for dealing (d,t), full-capacity
// so a copied row cannot bleed into its neighbor.
func (ins *Instance) rowSlot(d, t int) field.Poly {
	w := ins.env.F + 1
	base := (d*ins.env.N + t) * w
	return field.Poly(ins.rowData[base : base+w : base+w])
}

// row materializes the held row for dealing index dt from its rowData
// slot and rowLen entry; nil when no row is held. A present-but-trimmed
// zero polynomial yields a non-nil empty slice, matching the decode
// results the fix path stores.
func (ins *Instance) row(dt int) field.Poly {
	l := ins.rowLen[dt]
	if l == 0 {
		return nil
	}
	w := ins.env.F + 1
	base := dt * w
	return field.Poly(ins.rowData[base : base+int(l)-1 : base+w])
}

// Reset re-initializes the instance for a fresh dealing session, reusing
// every backing allocation; it reports false (leaving the instance
// untouched) when the environment shape differs, in which case the caller
// must construct a new instance. Fresh dealer secrets are drawn from rng
// with the same consumption pattern as New, so a recycled session is
// indistinguishable from a newly constructed one under a fixed seed.
func (ins *Instance) Reset(env proto.Env, rng *rand.Rand) bool {
	if ins.env.N != env.N || ins.env.F != env.F {
		return false
	}
	ins.env = env
	ins.leaseDealt(rng)
	for i := range ins.rowLen {
		ins.rowLen[i] = 0
	}
	for i := range ins.rowOKFlat {
		ins.rowOKFlat[i] = false
		ins.recOKFlat[i] = false
	}
	for i := range ins.gradesFlat {
		ins.gradesFlat[i] = GradeNone
	}
	for i := range ins.recoveredFlat {
		ins.recoveredFlat[i] = 0
	}
	ins.echoCached = false
	return true
}

// DealtSecret returns the secret this node dealt for the given target.
// Used by tests and by coin-quality measurements. Valid for the whole
// session even after ComposeShare releases the bivariate slab.
func (ins *Instance) DealtSecret(target int) field.Elem {
	return ins.dealtSecrets[target]
}

// dealtSlab is a leased set of n dealer bivariates. Slabs cycle through
// a process-wide pool: an instance holds one only from New/Reset until
// its ComposeShare has computed the outgoing rows — after that the
// coefficients are never read again (recovery decodes from delivered
// shares), so keeping n (f+1)×(f+1) matrices resident per instance per
// tenant would be pure waste.
type dealtSlab struct {
	n, f int
	bs   []*shamir.Bivariate
}

var dealtSlabPool sync.Pool

// leaseDealt installs freshly randomized dealer bivariates, reusing a
// pooled slab of the right shape when one is available, and records the
// dealt secrets. Both paths consume rng identically — one secret draw
// then the coefficient draws, per target, exactly as New always did —
// so pooling is invisible to seeded replay. Callable with a slab still
// held (Reset before ComposeShare): the held slab is re-randomized.
func (ins *Instance) leaseDealt(rng *rand.Rand) {
	n, f := ins.env.N, ins.env.F
	s := ins.dealt
	if s == nil {
		if p, ok := dealtSlabPool.Get().(*dealtSlab); ok && p.n == n && p.f == f {
			s = p
		}
	}
	if s == nil {
		s = &dealtSlab{n: n, f: f, bs: make([]*shamir.Bivariate, n)}
		for t := 0; t < n; t++ {
			s.bs[t] = shamir.NewBivariate(rng, f, field.Reduce(rng.Uint64()))
			ins.dealtSecrets[t] = s.bs[t].Secret()
		}
		ins.dealt = s
		return
	}
	for t := 0; t < n; t++ {
		s.bs[t].Randomize(rng, field.Reduce(rng.Uint64()))
		ins.dealtSecrets[t] = s.bs[t].Secret()
	}
	ins.dealt = s
}

// releaseDealt returns the bivariate slab to the pool; the next lessee
// fully re-randomizes it.
func (ins *Instance) releaseDealt() {
	if ins.dealt != nil {
		dealtSlabPool.Put(ins.dealt)
		ins.dealt = nil
	}
}

// scratch is the per-call working state shared by every Instance of the
// same (n, f) shape: gather/stage buffers, tally counters, per-sender
// pointer tables, per-destination scatter pointers, and the recover
// round's secret decoder. Each public round method checks one out of
// the process-wide pool on entry and returns it before returning, so a
// resident fleet of instances holds ZERO copies between calls — the
// pool's working set is one scratch per concurrently-delivering worker.
// Every field is written before it is read within a call (the deliver
// paths clear what they tally into), so scratch reuse is invisible to
// seeded replay.
type scratch struct {
	n, f int
	// Point-collection and batch-eval scratch for the fix/decode loops.
	xs, ys []field.Elem
	ev     []field.Elem
	// Per-sender flat matrix pointers for the echo and recover rounds
	// (nil-cleared at the start of each deliver).
	matE [][]field.Elem
	matB [][]bool
	// counts is the n² vote tally (cleared by DeliverVote).
	counts []uint64
	// seen is the per-sender dedup bitmap (cleared per deliver).
	seen []bool
	// Per-dealer row pointer tables and the grid-decode input list.
	rowPtrE   [][]field.Elem
	rowPtrB   [][]bool
	gridPtr   [][]field.Elem
	senderIdx []int
	// Per-destination flat pointers used while scattering batched
	// evaluations into outgoing messages.
	dstE [][]field.Elem
	dstB [][]bool
	// stageE/stageB hold gathered copies of delivered matrices whose
	// messages lack flat payloads (hand-built or wire-decoded forms), one
	// n² region per sender; inE/inB stage a single incoming matrix
	// before it may overwrite a sender's region. All four are lazily
	// allocated — honest in-process traffic never needs them.
	stageE []field.Elem
	stageB []bool
	inE    []field.Elem
	inB    []bool
	// dec fuses the recover round's repeated-sender-set decodes through
	// cached basis tables (lazily bound to the session's point set; the
	// tables themselves are interned process-wide).
	dec *field.SecretDecoder
}

var scratchPool sync.Pool

func getScratch(n, f int) *scratch {
	if sc, ok := scratchPool.Get().(*scratch); ok && sc.n == n && sc.f == f {
		return sc
	}
	sc := &scratch{n: n, f: f}
	sc.xs = make([]field.Elem, 0, n)
	sc.ys = make([]field.Elem, 0, n)
	sc.ev = make([]field.Elem, n)
	sc.matE = make([][]field.Elem, n)
	sc.matB = make([][]bool, n)
	sc.counts = make([]uint64, n*n)
	sc.seen = make([]bool, n)
	sc.rowPtrE = make([][]field.Elem, n)
	sc.rowPtrB = make([][]bool, n)
	sc.gridPtr = make([][]field.Elem, 0, n)
	sc.senderIdx = make([]int, 0, n)
	sc.dstE = make([][]field.Elem, n)
	sc.dstB = make([][]bool, n)
	return sc
}

// putScratch returns sc to the pool, dropping the delivered-payload
// pointers it captured so a parked scratch does not pin beat-pool
// buffers (or whole inboxes) beyond their beat.
func putScratch(sc *scratch) {
	clear(sc.matE)
	clear(sc.matB)
	clear(sc.rowPtrE)
	clear(sc.rowPtrB)
	clear(sc.dstE)
	clear(sc.dstB)
	clear(sc.gridPtr[:cap(sc.gridPtr)])
	scratchPool.Put(sc)
}

// decoder returns the scratch's secret decoder bound to the given point
// set, rebinding when the previous checkout was a different session
// shape.
func (sc *scratch) decoder(me *field.MultiEval) *field.SecretDecoder {
	if sc.dec == nil || sc.dec.ME() != me {
		sc.dec = field.NewSecretDecoder(me)
	}
	return sc.dec
}

// gather copies an n×n row-view matrix pair into the incoming staging
// pair, returning (nil, nil) if either matrix is malformed. It serves
// messages without flat payloads (hand-built or wire-decoded); the
// result is only valid until the next gather call — callers that retain
// it move it aside with stage first.
func (sc *scratch) gather(vals [][]field.Elem, has [][]bool) ([]field.Elem, []bool) {
	n := sc.n
	if len(vals) != n || len(has) != n {
		return nil, nil
	}
	for d := 0; d < n; d++ {
		if len(vals[d]) != n || len(has[d]) != n {
			return nil, nil
		}
	}
	if sc.inE == nil {
		sc.inE = make([]field.Elem, n*n)
		sc.inB = make([]bool, n*n)
	}
	for d := 0; d < n; d++ {
		copy(sc.inE[d*n:(d+1)*n], vals[d])
		copy(sc.inB[d*n:(d+1)*n], has[d])
	}
	return sc.inE, sc.inB
}

// stage moves a gathered matrix pair from the incoming scratch into
// sender w's own staging region, whose contents stay valid for the rest
// of the round (the scratch checkout).
func (sc *scratch) stage(w int, valsFlat []field.Elem, hasFlat []bool) ([]field.Elem, []bool) {
	n := sc.n
	nn := n * n
	if sc.stageE == nil {
		sc.stageE = make([]field.Elem, n*nn)
		sc.stageB = make([]bool, n*nn)
	}
	ev := sc.stageE[w*nn : (w+1)*nn]
	bv := sc.stageB[w*nn : (w+1)*nn]
	copy(ev, valsFlat)
	copy(bv, hasFlat)
	return ev, bv
}

// ComposeShare produces round 1: this node, as dealer, sends each node its
// row polynomials for all n target secrets. Each message's n rows are
// sliced out of one flat backing array (2 allocations per destination
// instead of n+1), and the rows themselves are computed batched: the
// coefficient of x^k in destination i's row for target t is the row
// coefficient vector C_t[k] evaluated at i+1, so one MultiEval pass per
// (t, k) fills that coefficient for all n destinations at once.
func (ins *Instance) ComposeShare() []proto.Send {
	n, f := ins.env.N, ins.env.F
	w := f + 1
	if ins.dealt == nil {
		// One compose per session: the slab was already released. Re-lease
		// is impossible (the rng draws are gone), so fail loudly rather
		// than silently sending different rows.
		panic("gvss: ComposeShare called twice in one session")
	}
	sc := getScratch(n, f)
	defer putScratch(sc)
	ev := sc.ev
	flats := sc.dstE
	// One element block and one row-header block for all n messages: the
	// destinations' payloads have identical lifetimes (this beat), so they
	// share one lease from the node's beat pool. Every element is written
	// below, so recycled contents never leak.
	elems := ins.allocElems(n * n * w)
	rowHdrs := ins.allocPolys(n * n)
	sends := ins.shareSends
	for i := 0; i < n; i++ {
		flat := elems[i*n*w : (i+1)*n*w : (i+1)*n*w]
		rows := rowHdrs[i*n : (i+1)*n : (i+1)*n]
		for t := 0; t < n; t++ {
			rows[t] = field.Poly(flat[t*w : (t+1)*w : (t+1)*w])
		}
		flats[i] = flat
		ins.shareMsgs[i].Rows = rows
	}
	// Evaluate all n·w coefficient polynomials at all n points with one
	// full-width kernel call per destination: the payload block is
	// contiguous with destination-major stride n·w, and flats[i][t*w+k] =
	// c_{t,k}(x_i) is exactly EvalGridT's transposed output for the
	// polynomial family indexed r = t*w+k. This replaces n·w narrow
	// EvalInto calls plus an n²·w strided scatter.
	nR := n * w
	coefG := getCoefShare(w * nR)
	gemm := true
	for t := 0; t < n && gemm; t++ {
		c := ins.dealt.bs[t].C
		for k := 0; k < w; k++ {
			row := c[k]
			if len(row) != w {
				gemm = false
				break
			}
			for k2 := 0; k2 < w; k2++ {
				coefG[k2*nR+t*w+k] = row[k2]
			}
		}
	}
	if gemm {
		if b := ins.env.Batch; b != nil {
			// Deferred: the driver flushes after the compose fan-out and
			// before anything reads the payload, stacking this family with
			// same-shaped ones from other instances (see proto.Env.Batch).
			// Both coefG and the payload block stay valid until then; the
			// flush callback releases the gather back to the pool.
			ins.coefShare = coefG
			b.Enqueue(ins.me, elems[:n*nR], coefG, w, nR, ins, finishCoef)
		} else {
			ins.me.EvalGridT(elems[:n*nR], coefG, w, nR)
			putCoefShare(coefG)
		}
	} else {
		putCoefShare(coefG)
		// Defensive fallback (dealt rows are always w long): per-poly
		// evaluation with the strided scatter.
		for t := 0; t < n; t++ {
			c := ins.dealt.bs[t].C
			for k := 0; k < w; k++ {
				ins.me.EvalInto(ev, field.Poly(c[k]))
				for i := 0; i < n; i++ {
					flats[i][t*w+k] = ev[i]
				}
			}
		}
	}
	for i := range flats {
		flats[i] = nil // the backing now belongs to the beat's messages
	}
	// The dealt coefficients are fully consumed: the deferred batch path
	// reads coefG (the per-instance gather above), not the bivariates.
	ins.releaseDealt()
	return sends
}

// DeliverShare ingests round-1 messages: rows[d][t] for each dealer d that
// sent a well-formed share message.
func (ins *Instance) DeliverShare(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	sc := getScratch(n, f)
	defer putScratch(sc)
	seen := sc.seen
	for i := range seen {
		seen[i] = false
	}
	for _, r := range inbox {
		m, ok := AsShare(r.Msg)
		if !ok || r.From < 0 || r.From >= n || len(m.Rows) != n {
			continue
		}
		if seen[r.From] {
			// A (Byzantine) duplicate may not clobber already-installed
			// rows with a half-copied invalid message, so it runs the
			// fused validator in validate-only mode before any copy.
			if !rowsValid(m.Rows, f+1) {
				continue
			}
			for t := 0; t < n; t++ {
				copy(ins.rowSlot(r.From, t), m.Rows[t])
				ins.rowLen[r.From*n+t] = uint8(1 + f + 1)
			}
			continue
		}
		seen[r.From] = true
		ins.installRows(r.From, m.Rows)
	}
}

// rowsValid is the fused row validator: one branch-free pass OR-
// accumulating a validity mask over whole rows (see elemsValid for the
// hi/borrow range check); only the per-row length check branches.
func rowsValid(rows []field.Poly, w int) bool {
	const max = uint64(field.P - 1)
	var hi, borrow uint64
	for _, row := range rows {
		if len(row) != w {
			return false
		}
		for _, e := range row {
			hi |= uint64(e)
			borrow |= max - uint64(e)
		}
	}
	return hi>>31 == 0 && borrow>>63 == 0
}

// installRows is the first-sender share path: validate and copy fused
// into one pass over the (cache-cold) payload, accumulating the same
// mask as rowsValid while the copy streams. Only when the mask trips —
// a Byzantine sender — does the slow uninstall path run, so the
// observable behavior matches validate-then-copy. Reports whether the
// rows were installed.
func (ins *Instance) installRows(d int, rows []field.Poly) bool {
	n, w := ins.env.N, ins.env.F+1
	const max = uint64(field.P - 1)
	var hi, borrow uint64
	for t := 0; t < n; t++ {
		row := rows[t]
		if len(row) != w {
			ins.uninstallRows(d)
			return false
		}
		slot := ins.rowSlot(d, t)
		for i, e := range row {
			hi |= uint64(e)
			borrow |= max - uint64(e)
			slot[i] = e
		}
		ins.rowLen[d*n+t] = uint8(1 + w)
	}
	if hi>>31 != 0 || borrow>>63 != 0 {
		ins.uninstallRows(d)
		return false
	}
	return true
}

func (ins *Instance) uninstallRows(d int) {
	n := ins.env.N
	for t := 0; t < n; t++ {
		ins.rowLen[d*n+t] = 0
	}
}

// gatherCoefT transposes every held row's coefficients into the
// degree-major layout EvalGridT consumes — coefT[k*n²+dt] = row_dt[k],
// zero-padded, so trimmed fixed rows evaluate identically — carved
// from the tail of the pooled echo buffer. Callers must have verified
// every row is held; rowLen bounds every length at f+1 by construction.
func (ins *Instance) gatherCoefT() []field.Elem {
	n, w := ins.env.N, ins.env.F+1
	nn := n * n
	coefT := ins.echoBuf[2*n*nn : 2*n*nn+w*nn]
	rowLen := ins.rowLen
	rowData := ins.rowData
	// k-outer order keeps the destination writes sequential (the strided
	// accesses fall on the reads, which all hit the compact row storage).
	for k := 0; k < w; k++ {
		dst := coefT[k*nn : (k+1)*nn]
		for dt, l := range rowLen {
			if k < int(l)-1 {
				dst[dt] = rowData[dt*w+k]
			} else {
				dst[dt] = 0
			}
		}
	}
	return coefT
}

// ComposeEcho produces round 2: cross-check points of my rows, one message
// per destination node. Each message's n×n matrices are sliced out of
// flat backing arrays (4 allocations per destination instead of 2n+2).
// Each held row is evaluated at all n destinations in one MultiEval pass,
// directly into the instance's echoVals cache, which DeliverEcho reuses
// for agreement counting later the same beat.
func (ins *Instance) ComposeEcho() []proto.Send {
	n := ins.env.N
	sc := getScratch(n, ins.env.F)
	defer putScratch(sc)
	if ins.echoBuf == nil {
		ins.echoBuf = getEchoVals(2*n*n*n + (ins.env.F+1)*n*n)
		ins.echoVals = ins.echoBuf[:n*n*n]
		ins.echoValsT = ins.echoBuf[n*n*n : 2*n*n*n]
	}
	valsFlats := sc.dstE
	hasFlats := sc.dstB
	// Shared backing blocks for all n messages (see ComposeShare), leased
	// from the node's beat pool.
	elems := ins.allocElems(n * n * n)
	bools := ins.allocBools(n * n * n)
	valHdrs := ins.allocElemRows(n * n)
	hasHdrs := ins.allocBoolRows(n * n)
	sends := ins.echoSends
	for j := 0; j < n; j++ {
		valsFlat := elems[j*n*n : (j+1)*n*n : (j+1)*n*n]
		hasFlat := bools[j*n*n : (j+1)*n*n : (j+1)*n*n]
		vals := valHdrs[j*n : (j+1)*n : (j+1)*n]
		has := hasHdrs[j*n : (j+1)*n : (j+1)*n]
		for d := 0; d < n; d++ {
			vals[d] = valsFlat[d*n : (d+1)*n : (d+1)*n]
			has[d] = hasFlat[d*n : (d+1)*n : (d+1)*n]
		}
		valsFlats[j] = valsFlat
		hasFlats[j] = hasFlat
		ins.echoMsgs[j].Vals = vals
		ins.echoMsgs[j].Has = has
		ins.echoMsgs[j].ValsFlat = valsFlat
		ins.echoMsgs[j].HasFlat = hasFlat
	}
	// Count the held rows up front: the steady state (every row held)
	// takes the grid-evaluation fast path below; anything sparser falls
	// back to per-row evaluation plus scattering.
	held := 0
	for _, l := range ins.rowLen {
		if l != 0 {
			held++
		}
	}
	var coefT []field.Elem
	if held == n*n {
		coefT = ins.gatherCoefT()
	}
	if coefT != nil {
		// Steady state: evaluate the whole row family directly in
		// transposed order — for each destination j, ONE full-width
		// kernel call computes row_{d,t}(j+1) for all n² dealings
		// straight into echoValsT's sender-major layout, which is
		// simultaneously the destination-j payload and the exact
		// sequential stream DeliverEcho's fused sweep reads. This
		// replaces n² narrow per-row evaluations plus an n³ strided
		// transpose. The row-major echoVals cache is left stale, which
		// is safe: the cached delivery path only reads echoValsT (the
		// fix path reads the delivered matrices themselves).
		if b := ins.env.Batch; b != nil {
			// Deferred: enqueue the grid evaluation and run the payload
			// copies in FinishEval once the driver's flush has filled
			// echoValsT. coefT lives in echoBuf's tail, which stays checked
			// out until this round's DeliverEcho — well past the flush.
			ins.batchElems = elems
			ins.batchBools = bools
			b.Enqueue(ins.me, ins.echoValsT, coefT, ins.env.F+1, n*n, ins, finishEcho)
		} else {
			ins.me.EvalGridT(ins.echoValsT, coefT, ins.env.F+1, n*n)
			ins.finishEchoPayload(elems, bools)
		}
	} else {
		// Pass 1: evaluate every held row at all n points, streaming into
		// the contiguous echoVals cache.
		for idx := 0; idx < n*n; idx++ {
			if row := ins.row(idx); row != nil {
				ins.me.EvalInto(ins.echoVals[idx*n:(idx+1)*n], row)
			}
		}
		// Pass 2: scatter into the per-destination payloads. Entries
		// without a row stay zero with has=false, so the leased blocks
		// must be scrubbed of their recycled contents before scattering —
		// stale bytes here would leak into the wire encoding and break
		// pooled/unpooled replay equivalence.
		clear(elems)
		clear(bools)
		for idx := 0; idx < n*n; idx++ {
			if ins.rowLen[idx] == 0 {
				continue
			}
			slot := ins.echoVals[idx*n : (idx+1)*n]
			for j := 0; j < n; j++ {
				valsFlats[j][idx] = slot[j]
				hasFlats[j][idx] = true
			}
		}
		// Retain the transposed evaluations: destination j's payload IS
		// the sender-major row the delivery sweep wants (for the loopback
		// matrix it will receive from sender j), so one copy per
		// destination saves DeliverEcho a strided n³ re-transpose.
		for j := 0; j < n; j++ {
			copy(ins.echoValsT[j*n*n:(j+1)*n*n], valsFlats[j])
		}
	}
	for j := range valsFlats {
		valsFlats[j] = nil
		hasFlats[j] = nil
	}
	ins.echoCached = true
	return sends
}

// finishEchoPayload runs the steady-state echo path's payload copies
// once echoValsT holds the grid evaluation: destination j's payload is
// echoValsT's slab j (the transposed layout IS the per-destination
// sender-major matrix), and every presence flag is true since every row
// was held. elems/bools are the beat-leased blocks backing all n
// outgoing messages.
func (ins *Instance) finishEchoPayload(elems []field.Elem, bools []bool) {
	n := ins.env.N
	copy(elems[:n*n*n], ins.echoValsT[:n*n*n])
	bools = bools[:n*n*n]
	for i := range bools {
		bools[i] = true
	}
}

// Finisher tags: which deferred enqueue a FinishEval callback finishes.
const (
	finishEcho = iota // ComposeEcho's payload copies
	finishCoef        // ComposeShare's pooled gather release
)

// FinishEval implements field.Finisher, invoked by the driver's batch
// flush after an enqueued grid evaluation has filled its destination:
// the steady-state ComposeEcho path's deferred payload copies, or the
// release of ComposeShare's pooled coefficient gather.
func (ins *Instance) FinishEval(tag int) {
	if tag == finishCoef {
		putCoefShare(ins.coefShare)
		ins.coefShare = nil
		return
	}
	ins.finishEchoPayload(ins.batchElems, ins.batchBools)
	ins.batchElems, ins.batchBools = nil, nil
}

// DeliverEcho ingests round-2 messages and row-fixes: for each dealing,
// the echo points sent to me lie (by bivariate symmetry) on my own row, so
// a row that disagrees with the quorum is re-decoded from the echoes,
// tolerating f Byzantine points. rowOK[d][t] records whether I now hold a
// row consistent with at least n-f echo points.
//
// Delivery is a fused validate+tally sweep: each matrix is traversed
// exactly once, OR-accumulating the element-validity mask while counting
// agreement with my rows' compose-time evaluations. The slow rollback
// path (subtracting a matrix's tallies back out) only runs when the mask
// trips — a Byzantine sender — or a duplicate replaces an installed
// matrix, so honest traffic never branches per element.
func (ins *Instance) DeliverEcho(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	quorum := ins.env.Quorum()
	sc := getScratch(n, f)
	defer putScratch(sc)
	// echo[w] is sender w's matrix, nil if absent/malformed.
	echo := sc.matE
	echoHas := sc.matB
	for w := 0; w < n; w++ {
		echo[w] = nil
		echoHas[w] = nil
	}
	// The tally sweep compares delivered points against my rows' values
	// at every sender's point — exactly what ComposeEcho evaluated and
	// transposed into echoValsT this beat. Without a matching compose
	// (direct harness use), fill the caches now so delivery has one
	// uniform path.
	if !ins.echoCached {
		if ins.echoBuf == nil {
			ins.echoBuf = getEchoVals(2*n*n*n + (f+1)*n*n)
			ins.echoVals = ins.echoBuf[:n*n*n]
			ins.echoValsT = ins.echoBuf[n*n*n : 2*n*n*n]
		}
		clear(ins.echoValsT)
		for idx := 0; idx < n*n; idx++ {
			if row := ins.row(idx); row != nil {
				slot := ins.echoVals[idx*n : (idx+1)*n]
				ins.me.EvalInto(slot, row)
				for j := 0; j < n; j++ {
					ins.echoValsT[j*n*n+idx] = slot[j]
				}
			}
		}
	}
	ins.echoCached = false
	defer func() {
		// The compose-time evaluations are dead after this round; hand
		// the backing buffer back for the next instance entering its
		// echo round.
		putEchoVals(ins.echoBuf)
		ins.echoBuf = nil
		ins.echoVals = nil
		ins.echoValsT = nil
	}()
	agree := ins.echoAgree
	clear(agree)
	for _, r := range inbox {
		m, ok := AsEcho(r.Msg)
		if !ok || r.From < 0 || r.From >= n {
			continue
		}
		valsFlat, hasFlat := m.ValsFlat, m.HasFlat
		gathered := false
		if len(valsFlat) != n*n || len(hasFlat) != n*n {
			// No (or malformed) flat payload: gather the row views into
			// the incoming staging pair, rejecting malformed shapes.
			valsFlat, hasFlat = sc.gather(m.Vals, m.Has)
			if valsFlat == nil {
				continue
			}
			gathered = true
		}
		if ins.sweepEchoFlat(r.From, valsFlat, hasFlat, false) {
			if echo[r.From] != nil {
				// Duplicate sender: only the LAST valid matrix counts, so
				// back the earlier one's contributions out (rare path).
				ins.sweepEchoFlat(r.From, echo[r.From], echoHas[r.From], true)
			}
			if gathered {
				// Move the staged copy into the sender's own region (the
				// incoming scratch is reused by the next message).
				valsFlat, hasFlat = sc.stage(r.From, valsFlat, hasFlat)
			}
			echo[r.From] = valsFlat
			echoHas[r.From] = hasFlat
		} else {
			// Validity mask tripped: this matrix contributes nothing, so
			// re-sweep to subtract the tallies just added (rare path);
			// an earlier valid matrix from this sender stays in force.
			ins.sweepEchoFlat(r.From, valsFlat, hasFlat, true)
		}
	}
	// Hoist the present-sender list once, and per dealer the senders' row
	// slices, so the (rare) fix path indexes flat rows instead of chasing
	// three levels of slice headers.
	senders := sc.senderIdx[:0]
	for w := 0; w < n; w++ {
		if echo[w] != nil {
			senders = append(senders, w)
		}
	}
	sc.senderIdx = senders
	evRow := sc.rowPtrE
	hasRow := sc.rowPtrB
	for d := 0; d < n; d++ {
		for i, w := range senders {
			evRow[i] = echo[w][d*n : (d+1)*n]
			hasRow[i] = echoHas[w][d*n : (d+1)*n]
		}
		for t := 0; t < n; t++ {
			if ins.rowLen[d*n+t] != 0 && agree[d*n+t] >= uint64(quorum) {
				ins.rowOKFlat[d*n+t] = true
				continue
			}
			// Row missing or inconsistent: collect the echo points and try
			// to fix it from them. The fixed row is retained across
			// rounds, so this (rare, Byzantine-only) path uses the
			// allocating DecodeFast.
			xs := sc.xs[:0]
			ys := sc.ys[:0]
			for i, w := range senders {
				if !hasRow[i][t] {
					continue
				}
				xs = append(xs, field.Elem(w+1))
				ys = append(ys, evRow[i][t])
			}
			if len(xs) < quorum {
				continue
			}
			fixed, err := field.DecodeFast(xs, ys, f, f)
			if err != nil {
				continue
			}
			if agreeCount(fixed, xs, ys) >= quorum {
				// Copy the decode result into the dealing's rowData slot
				// (the old row, if any, is exactly what is being replaced)
				// and record its trimmed length.
				slot := ins.rowSlot(d, t)
				clear(slot)
				copy(slot, fixed)
				ins.rowLen[d*n+t] = uint8(1 + len(fixed))
				ins.rowOKFlat[d*n+t] = true
			}
		}
	}
}

// sweepEchoFlat is the fused validate+tally pass over one sender's
// flat echo matrix: a single traversal OR-accumulates the canonical-
// range mask (the elemsValid hi/borrow trick) while adding ±1 to the
// agreement tally of every (d,t) whose delivered point matches my row's
// value at this sender's coordinate — branch-free via an equality mask
// and the Has bit. It reports whether every element was canonical.
//
// Tallies for dealings without an installed row compare against stale
// echoValsT entries; the counts are deterministic garbage that the
// resolution loop never consults (it checks rows[d][t] != nil first),
// and a rollback re-sweep subtracts the identical values.
func (ins *Instance) sweepEchoFlat(w0 int, valsFlat []field.Elem, hasFlat []bool, negate bool) bool {
	n := ins.env.N
	// My rows' values at sender w0's point, sender-major: one sequential
	// stream, in step with the delivered flat matrix — the whole n²
	// traversal is a single wide SweepTally call.
	ev := ins.echoValsT[w0*n*n : (w0+1)*n*n]
	hi, borrow := field.SweepTally(ins.echoAgree, ev, valsFlat, hasFlat, negate)
	return hi>>31 == 0 && borrow>>63 == 0
}

// ComposeVote produces the round-3 broadcast of per-dealing validity.
func (ins *Instance) ComposeVote() []proto.Send {
	n := ins.env.N
	flat := ins.allocBools(n * n)
	ok := ins.allocBoolRows(n)
	copy(flat, ins.rowOKFlat)
	for d := 0; d < n; d++ {
		ok[d] = flat[d*n : (d+1)*n : (d+1)*n]
	}
	ins.voteMsg.OK = ok
	ins.voteMsg.OKFlat = flat
	return ins.voteSends
}

// DeliverVote tallies round-3 votes and assigns grades.
func (ins *Instance) DeliverVote(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	quorum := ins.env.Quorum()
	sc := getScratch(n, f)
	defer putScratch(sc)
	counts := sc.counts
	clear(counts)
	seen := sc.seen
	for i := range seen {
		seen[i] = false
	}
	for _, r := range inbox {
		m, ok := AsVote(r.Msg)
		if !ok || r.From < 0 || r.From >= n || seen[r.From] {
			continue
		}
		if len(m.OKFlat) == n*n {
			// Flat payload: the whole n² grid tallies in ONE wide sweep.
			seen[r.From] = true
			field.AccumBool(counts, m.OKFlat)
			continue
		}
		if !boolMatrixValid(m.OK, n) {
			continue
		}
		seen[r.From] = true
		for d := 0; d < n; d++ {
			field.AccumBool(counts[d*n:(d+1)*n], m.OK[d][:n])
		}
	}
	for dt := 0; dt < n*n; dt++ {
		switch {
		case counts[dt] >= uint64(quorum):
			ins.gradesFlat[dt] = GradeHigh
		case counts[dt] >= uint64(f+1):
			ins.gradesFlat[dt] = GradeLow
		default:
			ins.gradesFlat[dt] = GradeNone
		}
	}
}

// Grade returns the grade assigned to dealing (dealer, target); valid
// after DeliverVote. Out-of-range arguments return GradeNone.
func (ins *Instance) Grade(dealer, target int) uint8 {
	n := ins.env.N
	if dealer < 0 || dealer >= n || target < 0 || target >= n {
		return GradeNone
	}
	return ins.gradesFlat[dealer*n+target]
}

// ComposeRecover produces the recover-round broadcast of my shares
// g_{d,t,me}(0) for every dealing I hold a validated row for.
func (ins *Instance) ComposeRecover() []proto.Send {
	n, f := ins.env.N, ins.env.F
	// Entries without a validated row carry zero/false, so the leased
	// blocks are zero-cleared up front (see ComposeEcho's sparse path).
	var sharesFlat []field.Elem
	var hasFlat []bool
	if p := ins.env.Pool; p != nil {
		sharesFlat = p.ElemsZero(n * n)
		hasFlat = p.BoolsZero(n * n)
	} else {
		sharesFlat = make([]field.Elem, n*n)
		hasFlat = make([]bool, n*n)
	}
	shares := ins.allocElemRows(n)
	has := ins.allocBoolRows(n)
	for d := 0; d < n; d++ {
		shares[d] = sharesFlat[d*n : (d+1)*n : (d+1)*n]
		has[d] = hasFlat[d*n : (d+1)*n : (d+1)*n]
	}
	for dt := 0; dt < n*n; dt++ {
		if ins.rowOKFlat[dt] {
			// g(0) is the constant coefficient; rows are canonical
			// (validated on delivery or decoded), so no Horner pass is
			// needed. Fixed rows may be trimmed to the zero polynomial.
			if ins.rowLen[dt] > 1 {
				sharesFlat[dt] = ins.rowData[dt*(f+1)]
			}
			hasFlat[dt] = true
		}
	}
	ins.recoverMsg.Shares = shares
	ins.recoverMsg.HasRow = has
	ins.recoverMsg.SharesFlat = sharesFlat
	ins.recoverMsg.HasRowFlat = hasFlat
	return ins.recoverSends
}

// DeliverRecover reconstructs every dealing's secret from the broadcast
// shares by error-corrected decoding. A dealing whose decode fails is left
// unrecovered; the coin layer substitutes a deterministic default.
func (ins *Instance) DeliverRecover(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	sc := getScratch(n, f)
	defer putScratch(sc)
	shares := sc.matE // [sender][d*n+t]
	has := sc.matB
	for w := 0; w < n; w++ {
		shares[w] = nil
		has[w] = nil
	}
	for _, r := range inbox {
		m, ok := AsRecover(r.Msg)
		if !ok || r.From < 0 || r.From >= n {
			continue
		}
		sharesFlat, hasFlat := m.SharesFlat, m.HasRowFlat
		gathered := false
		if len(sharesFlat) != n*n || len(hasFlat) != n*n {
			sharesFlat, hasFlat = sc.gather(m.Shares, m.HasRow)
			if sharesFlat == nil {
				continue
			}
			gathered = true
		}
		// One wide range check validates the whole matrix.
		if !elemsValid(sharesFlat) {
			continue
		}
		if gathered {
			sharesFlat, hasFlat = sc.stage(r.From, sharesFlat, hasFlat)
		}
		shares[r.From] = sharesFlat
		has[r.From] = hasFlat
	}
	// Hoist the present-sender list; when additionally every present
	// sender claims a share for every dealing (the steady state — counted
	// with one branch-free sweep per sender), the per-dealing point set is
	// constant and the gather loop drops its per-point branches.
	senders := sc.senderIdx[:0]
	claimed := 0
	for w := 0; w < n; w++ {
		if shares[w] == nil {
			continue
		}
		senders = append(senders, w)
		claimed += int(field.CountBool(has[w]))
	}
	sc.senderIdx = senders
	allHas := claimed == len(senders)*n*n
	evRow := sc.rowPtrE
	hasRow := sc.rowPtrB
	dec := sc.decoder(ins.me)
	if allHas && len(senders) >= 2*f+1 {
		m := len(senders)
		xs := sc.xs[:m]
		grids := sc.gridPtr[:0]
		for i, w := range senders {
			xs[i] = field.Elem(w + 1)
			grids = append(grids, shares[w])
		}
		sc.gridPtr = grids
		// Decode the whole n×n dealing grid at once: the senders'
		// matrices go in as-is (column (d,t) is that dealing's share
		// vector) and the grid decoder verifies all n² candidates per
		// suffix sender with one full-width kernel pass — m-f-1 wide
		// passes for the entire round instead of n narrow blocks.
		dec.DecodeAt0Grid(xs, grids[:m], n, n, f, f, ins.recoveredFlat, ins.recOKFlat)
		return
	}
	for d := 0; d < n; d++ {
		for w := 0; w < n; w++ {
			if shares[w] == nil {
				evRow[w], hasRow[w] = nil, nil
			} else {
				evRow[w], hasRow[w] = shares[w][d*n:(d+1)*n], has[w][d*n:(d+1)*n]
			}
		}
		for t := 0; t < n; t++ {
			xs := sc.xs[:0]
			ys := sc.ys[:0]
			for w := 0; w < n; w++ {
				if evRow[w] == nil || !hasRow[w][t] {
					continue
				}
				xs = append(xs, field.Elem(w+1))
				ys = append(ys, evRow[w][t])
			}
			if len(xs) < 2*f+1 {
				continue // cannot tolerate f errors with fewer points
			}
			// Only the constant term is needed, and the present-sender
			// set repeats across the n² dealings, so the fused decoder's
			// cached basis-evaluation tables turn the common case into a
			// handful of short dot products.
			v, err := dec.DecodeAt0(xs, ys, f, f)
			if err != nil {
				continue
			}
			ins.recoveredFlat[d*n+t] = v
			ins.recOKFlat[d*n+t] = true
		}
	}
}

// Recovered returns the reconstructed secret of dealing (dealer, target)
// and whether reconstruction succeeded; valid after DeliverRecover.
func (ins *Instance) Recovered(dealer, target int) (field.Elem, bool) {
	n := ins.env.N
	if dealer < 0 || dealer >= n || target < 0 || target >= n {
		return 0, false
	}
	return ins.recoveredFlat[dealer*n+target], ins.recOKFlat[dealer*n+target]
}

// agreeCount counts the points (xs[i], ys[i]) that lie on p.
func agreeCount(p field.Poly, xs, ys []field.Elem) int {
	c := 0
	for i := range xs {
		if p.Eval(xs[i]) == ys[i] {
			c++
		}
	}
	return c
}

// elemsValid reports whether every element is canonical (< P). The scan
// is branchless (and wide, via field.RangeOr) because it runs over every
// delivered matrix entry and honest traffic never trips it; see RangeOr
// for why the hi/borrow pair is sound over the full uint64 range.
func elemsValid(es []field.Elem) bool {
	hi, borrow := field.RangeOr(es)
	return hi>>31 == 0 && borrow>>63 == 0
}

func boolMatrixValid(m [][]bool, n int) bool {
	if len(m) != n {
		return false
	}
	for _, row := range m {
		if len(row) != n {
			return false
		}
	}
	return true
}

// echoValsPool recycles the n³ echo-evaluation buffers across instances
// and sessions; a buffer is only live from an instance's ComposeEcho to
// the end of its DeliverEcho the same beat, so the pool's working set is
// a handful of buffers per node rather than one per pipeline slot.
var echoValsPool sync.Pool

func getEchoVals(size int) []field.Elem {
	if v, ok := echoValsPool.Get().([]field.Elem); ok && cap(v) >= size {
		return v[:size]
	}
	return make([]field.Elem, size)
}

func putEchoVals(v []field.Elem) {
	if v != nil {
		echoValsPool.Put(v)
	}
}

// coefSharePool recycles ComposeShare's small coefficient-gather blocks
// (w²·n elements); kept separate from echoValsPool so the little
// gathers never swallow — or get lost among — the n³ echo buffers.
var coefSharePool sync.Pool

func getCoefShare(size int) []field.Elem {
	if v, ok := coefSharePool.Get().([]field.Elem); ok && cap(v) >= size {
		return v[:size]
	}
	return make([]field.Elem, size)
}

func putCoefShare(v []field.Elem) {
	if v != nil {
		coefSharePool.Put(v)
	}
}
