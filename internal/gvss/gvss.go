// Package gvss implements a synchronous graded verifiable secret sharing
// scheme, the substrate the paper's common coin is built on (Section 2.1,
// Observation 2.1, citing Feldman–Micali).
//
// One Instance covers a full "dealing session": every node simultaneously
// acts as a dealer, sharing a vector of n secrets — dealer d's secret
// number t is d's contribution to target node t's "lottery ticket" in the
// common-coin layer above (package coin). Each (dealer, target) secret is
// shared with a symmetric bivariate polynomial of degree f.
//
// Rounds (one per beat when driven by the ss-Byz-Coin-Flip pipeline):
//
//	1 share   dealer d sends node i its row polynomials g_{d,t,i}(x) = B_{d,t}(x, i+1)
//	2 echo    node i sends node j the cross points g_{d,t,i}(j+1) for all (d,t);
//	          on delivery each node row-fixes: if its own row disagrees with
//	          the echoes, it re-decodes its row from the echo points (they
//	          lie on the node's row by symmetry), tolerating f errors
//	3 vote    node i broadcasts, per (d,t), whether it holds a validated row
//	          (original or fixed) consistent with >= n-f echo points;
//	          on delivery grades are assigned: 2 with >= n-f OK votes,
//	          1 with >= f+1, else 0
//	recover   (driven later by the coin layer, after its accept round)
//	          node i broadcasts its share g_{d,t,i}(0) for every dealing;
//	          on delivery each secret is reconstructed by Berlekamp–Welch,
//	          tolerating the f Byzantine shares
//
// Grade semantics (validated by tests): an honest dealer's dealings reach
// grade 2 at every honest node with exact, identical recovery; and if any
// honest node assigns grade 2, every honest node assigns grade >= 1.
//
// Substitution note (recorded in DESIGN.md §3): full Feldman–Micali GVSS
// adds complaint/accusation rounds that make recovery consistent for
// *every* grade-2 dealing even against arbitrary row-geometry attacks by a
// Byzantine dealer colluding with Byzantine echoers. We replace those
// rounds with echo-based row fixing, which preserves the properties above
// for honest dealers unconditionally and is validated empirically against
// the implemented adversary suite (experiment E2).
package gvss

import (
	"math/rand"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/shamir"
)

// Grade levels assigned to each (dealer, target) dealing after the vote
// round. GradeNone means the dealing is worthless; GradeLow means at least
// one honest node may rely on it; GradeHigh guarantees every honest node
// assigned at least GradeLow.
const (
	GradeNone uint8 = 0
	GradeLow  uint8 = 1
	GradeHigh uint8 = 2
)

// Rounds is the number of send-and-receive rounds an Instance needs before
// Recovered returns final values: share, echo, vote, recover.
const Rounds = 4

// ShareMsg is the dealer's round-1 message to one node: for each target t,
// the row polynomial of the bivariate sharing of secret (dealer, t).
type ShareMsg struct {
	Rows []field.Poly // [target][coefficient], each of length f+1
}

// Kind implements proto.Message.
func (ShareMsg) Kind() string { return "gvss.share" }

// EchoMsg is node i's round-2 message to node j: Vals[d][t] is
// g_{d,t,i}(j+1), the cross-check point of i's row for dealing (d,t).
// Has[d][t] marks dealings for which i actually received a row; entries
// without it carry zero and must be skipped by the receiver (a silent
// dealer must not be mistaken for one dealing the zero polynomial).
type EchoMsg struct {
	Vals [][]field.Elem // [dealer][target]
	Has  [][]bool       // [dealer][target]
}

// Kind implements proto.Message.
func (EchoMsg) Kind() string { return "gvss.echo" }

// VoteMsg is node i's round-3 broadcast: OK[d][t] reports whether i holds
// a validated row for dealing (d,t).
type VoteMsg struct {
	OK [][]bool // [dealer][target]
}

// Kind implements proto.Message.
func (VoteMsg) Kind() string { return "gvss.vote" }

// RecoverMsg is node i's recover-round broadcast: Shares[d][t] is i's
// share g_{d,t,i}(0) of secret (d,t). HasRow[d][t] marks entries for which
// i actually holds a validated row; others carry zero and are skipped by
// receivers.
type RecoverMsg struct {
	Shares [][]field.Elem // [dealer][target]
	HasRow [][]bool       // [dealer][target]
}

// Kind implements proto.Message.
func (RecoverMsg) Kind() string { return "gvss.recover" }

// Instance is one node's state for one dealing session. The zero value is
// not usable; construct with New. Instances are not safe for concurrent
// use; the simulation engine and runtime drive each node sequentially.
type Instance struct {
	env proto.Env

	// Dealer state: my secret contributions, one bivariate per target.
	dealt []*shamir.Bivariate

	// rows[d][t] is my (possibly fixed) row for dealing (d,t); nil when
	// missing or invalid. Delivered rows are copied into slots of the flat
	// rowData backing; rows fixed from echoes point at their own decode
	// result instead. rowOK mirrors validity after the echo round.
	rows    [][]field.Poly
	rowData []field.Elem // n*n slots of f+1 coefficients each
	rowOK   [][]bool

	grades [][]uint8 // [dealer][target], valid after DeliverVote

	recovered [][]field.Elem // valid after DeliverRecover where recOK
	recOK     [][]bool

	// Reusable scratch for the echo and recover rounds' per-dealing point
	// collection and happy-path decoding; one instance processes n^2
	// dealings per round, so these buffers turn the hot loops
	// allocation-free.
	xsScratch, ysScratch []field.Elem
	polyScratch          field.Poly
}

// New creates the per-node state for one session and draws this node's
// dealer secrets from rng.
func New(env proto.Env, rng *rand.Rand) *Instance {
	n, f := env.N, env.F
	ins := &Instance{env: env}
	ins.dealt = make([]*shamir.Bivariate, n)
	for t := 0; t < n; t++ {
		ins.dealt[t] = shamir.NewBivariate(rng, f, field.Reduce(rng.Uint64()))
	}
	ins.rows = matrixPoly(n)
	ins.rowData = make([]field.Elem, n*n*(f+1))
	ins.rowOK = matrixBool(n)
	ins.grades = matrixU8(n)
	ins.recovered = matrixElem(n)
	ins.recOK = matrixBool(n)
	ins.xsScratch = make([]field.Elem, 0, n)
	ins.ysScratch = make([]field.Elem, 0, n)
	ins.polyScratch = make(field.Poly, f+1)
	return ins
}

// rowSlot returns the flat-backing slot for dealing (d,t), full-capacity
// so a copied row cannot bleed into its neighbor.
func (ins *Instance) rowSlot(d, t int) field.Poly {
	w := ins.env.F + 1
	base := (d*ins.env.N + t) * w
	return field.Poly(ins.rowData[base : base+w : base+w])
}

// Reset re-initializes the instance for a fresh dealing session, reusing
// every backing allocation; it reports false (leaving the instance
// untouched) when the environment shape differs, in which case the caller
// must construct a new instance. Fresh dealer secrets are drawn from rng
// with the same consumption pattern as New, so a recycled session is
// indistinguishable from a newly constructed one under a fixed seed.
func (ins *Instance) Reset(env proto.Env, rng *rand.Rand) bool {
	if ins.env.N != env.N || ins.env.F != env.F {
		return false
	}
	ins.env = env
	n := env.N
	for t := 0; t < n; t++ {
		ins.dealt[t].Randomize(rng, field.Reduce(rng.Uint64()))
	}
	for d := 0; d < n; d++ {
		for t := 0; t < n; t++ {
			ins.rows[d][t] = nil
			ins.rowOK[d][t] = false
			ins.grades[d][t] = GradeNone
			ins.recovered[d][t] = 0
			ins.recOK[d][t] = false
		}
	}
	return true
}

// DealtSecret returns the secret this node dealt for the given target.
// Used by tests and by coin-quality measurements.
func (ins *Instance) DealtSecret(target int) field.Elem {
	return ins.dealt[target].Secret()
}

// ComposeShare produces round 1: this node, as dealer, sends each node its
// row polynomials for all n target secrets. Each message's n rows are
// sliced out of one flat backing array (2 allocations per destination
// instead of n+1).
func (ins *Instance) ComposeShare() []proto.Send {
	n, f := ins.env.N, ins.env.F
	w := f + 1
	sends := make([]proto.Send, 0, n)
	for i := 0; i < n; i++ {
		flat := make([]field.Elem, n*w)
		rows := make([]field.Poly, n)
		for t := 0; t < n; t++ {
			rows[t] = ins.dealt[t].RowInto(field.Poly(flat[t*w:(t+1)*w:(t+1)*w]), field.Elem(i+1))
		}
		sends = append(sends, proto.Send{To: i, Msg: ShareMsg{Rows: rows}})
	}
	return sends
}

// DeliverShare ingests round-1 messages: rows[d][t] for each dealer d that
// sent a well-formed share message.
func (ins *Instance) DeliverShare(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	for _, r := range inbox {
		m, ok := r.Msg.(ShareMsg)
		if !ok || r.From < 0 || r.From >= n || len(m.Rows) != n {
			continue
		}
		valid := true
		for _, row := range m.Rows {
			if len(row) != f+1 || !elemsValid(row) {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		for t := 0; t < n; t++ {
			slot := ins.rowSlot(r.From, t)
			copy(slot, m.Rows[t])
			ins.rows[r.From][t] = slot
		}
	}
}

// ComposeEcho produces round 2: cross-check points of my rows, one message
// per destination node. Each message's n×n matrices are sliced out of
// flat backing arrays (4 allocations per destination instead of 2n+2).
func (ins *Instance) ComposeEcho() []proto.Send {
	n := ins.env.N
	sends := make([]proto.Send, 0, n)
	for j := 0; j < n; j++ {
		valsFlat := make([]field.Elem, n*n)
		hasFlat := make([]bool, n*n)
		vals := make([][]field.Elem, n)
		has := make([][]bool, n)
		x := field.Elem(j + 1)
		for d := 0; d < n; d++ {
			vals[d] = valsFlat[d*n : (d+1)*n : (d+1)*n]
			has[d] = hasFlat[d*n : (d+1)*n : (d+1)*n]
			for t := 0; t < n; t++ {
				if row := ins.rows[d][t]; row != nil {
					vals[d][t] = row.Eval(x)
					has[d][t] = true
				}
			}
		}
		sends = append(sends, proto.Send{To: j, Msg: EchoMsg{Vals: vals, Has: has}})
	}
	return sends
}

// DeliverEcho ingests round-2 messages and row-fixes: for each dealing,
// the echo points sent to me lie (by bivariate symmetry) on my own row, so
// a row that disagrees with the quorum is re-decoded from the echoes,
// tolerating f Byzantine points. rowOK[d][t] records whether I now hold a
// row consistent with at least n-f echo points.
func (ins *Instance) DeliverEcho(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	quorum := ins.env.Quorum()
	// echo[w] is sender w's matrix, nil if absent/malformed.
	echo := make([][][]field.Elem, n)
	echoHas := make([][][]bool, n)
	for _, r := range inbox {
		m, ok := r.Msg.(EchoMsg)
		if !ok || r.From < 0 || r.From >= n ||
			!matrixValid(m.Vals, n) || !boolMatrixValid(m.Has, n) {
			continue
		}
		echo[r.From] = m.Vals
		echoHas[r.From] = m.Has
	}
	for d := 0; d < n; d++ {
		for t := 0; t < n; t++ {
			xs := ins.xsScratch[:0]
			ys := ins.ysScratch[:0]
			for w := 0; w < n; w++ {
				if echo[w] == nil || !echoHas[w][d][t] {
					continue
				}
				xs = append(xs, field.Elem(w+1))
				ys = append(ys, echo[w][d][t])
			}
			row := ins.rows[d][t]
			if row != nil && agreeCount(row, xs, ys) >= quorum {
				ins.rowOK[d][t] = true
				continue
			}
			// Row missing or inconsistent: try to fix it from the echoes.
			// The fixed row is retained across rounds, so this (rare,
			// Byzantine-only) path uses the allocating DecodeFast.
			if len(xs) < quorum {
				continue
			}
			fixed, err := field.DecodeFast(xs, ys, f, f)
			if err != nil {
				continue
			}
			if agreeCount(fixed, xs, ys) >= quorum {
				ins.rows[d][t] = fixed
				ins.rowOK[d][t] = true
			}
		}
	}
}

// ComposeVote produces the round-3 broadcast of per-dealing validity.
func (ins *Instance) ComposeVote() []proto.Send {
	n := ins.env.N
	flat := make([]bool, n*n)
	ok := make([][]bool, n)
	for d := 0; d < n; d++ {
		ok[d] = flat[d*n : (d+1)*n : (d+1)*n]
		copy(ok[d], ins.rowOK[d])
	}
	return []proto.Send{{To: proto.Broadcast, Msg: VoteMsg{OK: ok}}}
}

// DeliverVote tallies round-3 votes and assigns grades.
func (ins *Instance) DeliverVote(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	quorum := ins.env.Quorum()
	countsFlat := make([]int, n*n)
	counts := make([][]int, n)
	for d := range counts {
		counts[d] = countsFlat[d*n : (d+1)*n : (d+1)*n]
	}
	seen := make([]bool, n)
	for _, r := range inbox {
		m, ok := r.Msg.(VoteMsg)
		if !ok || r.From < 0 || r.From >= n || seen[r.From] || !boolMatrixValid(m.OK, n) {
			continue
		}
		seen[r.From] = true
		for d := 0; d < n; d++ {
			for t := 0; t < n; t++ {
				if m.OK[d][t] {
					counts[d][t]++
				}
			}
		}
	}
	for d := 0; d < n; d++ {
		for t := 0; t < n; t++ {
			switch {
			case counts[d][t] >= quorum:
				ins.grades[d][t] = GradeHigh
			case counts[d][t] >= f+1:
				ins.grades[d][t] = GradeLow
			default:
				ins.grades[d][t] = GradeNone
			}
		}
	}
}

// Grade returns the grade assigned to dealing (dealer, target); valid
// after DeliverVote. Out-of-range arguments return GradeNone.
func (ins *Instance) Grade(dealer, target int) uint8 {
	n := ins.env.N
	if dealer < 0 || dealer >= n || target < 0 || target >= n {
		return GradeNone
	}
	return ins.grades[dealer][target]
}

// ComposeRecover produces the recover-round broadcast of my shares
// g_{d,t,me}(0) for every dealing I hold a validated row for.
func (ins *Instance) ComposeRecover() []proto.Send {
	n := ins.env.N
	sharesFlat := make([]field.Elem, n*n)
	hasFlat := make([]bool, n*n)
	shares := make([][]field.Elem, n)
	has := make([][]bool, n)
	for d := 0; d < n; d++ {
		shares[d] = sharesFlat[d*n : (d+1)*n : (d+1)*n]
		has[d] = hasFlat[d*n : (d+1)*n : (d+1)*n]
		for t := 0; t < n; t++ {
			if ins.rowOK[d][t] {
				shares[d][t] = ins.rows[d][t].Eval(0)
				has[d][t] = true
			}
		}
	}
	return []proto.Send{{To: proto.Broadcast, Msg: RecoverMsg{Shares: shares, HasRow: has}}}
}

// DeliverRecover reconstructs every dealing's secret from the broadcast
// shares by error-corrected decoding. A dealing whose decode fails is left
// unrecovered; the coin layer substitutes a deterministic default.
func (ins *Instance) DeliverRecover(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	shares := make([][][]field.Elem, n) // [sender][d][t]
	has := make([][][]bool, n)
	for _, r := range inbox {
		m, ok := r.Msg.(RecoverMsg)
		if !ok || r.From < 0 || r.From >= n ||
			!matrixValid(m.Shares, n) || !boolMatrixValid(m.HasRow, n) {
			continue
		}
		shares[r.From] = m.Shares
		has[r.From] = m.HasRow
	}
	for d := 0; d < n; d++ {
		for t := 0; t < n; t++ {
			xs := ins.xsScratch[:0]
			ys := ins.ysScratch[:0]
			for w := 0; w < n; w++ {
				if shares[w] == nil || !has[w][d][t] {
					continue
				}
				xs = append(xs, field.Elem(w+1))
				ys = append(ys, shares[w][d][t])
			}
			if len(xs) < 2*f+1 {
				continue // cannot tolerate f errors with fewer points
			}
			// The decoded polynomial is only read for its constant term,
			// so the happy path reuses the instance scratch buffer.
			poly, err := field.DecodeFastInto(ins.polyScratch, xs, ys, f, f)
			if err != nil {
				continue
			}
			ins.recovered[d][t] = poly.Eval(0)
			ins.recOK[d][t] = true
		}
	}
}

// Recovered returns the reconstructed secret of dealing (dealer, target)
// and whether reconstruction succeeded; valid after DeliverRecover.
func (ins *Instance) Recovered(dealer, target int) (field.Elem, bool) {
	n := ins.env.N
	if dealer < 0 || dealer >= n || target < 0 || target >= n {
		return 0, false
	}
	return ins.recovered[dealer][target], ins.recOK[dealer][target]
}

// agreeCount counts the points (xs[i], ys[i]) that lie on p.
func agreeCount(p field.Poly, xs, ys []field.Elem) int {
	c := 0
	for i := range xs {
		if p.Eval(xs[i]) == ys[i] {
			c++
		}
	}
	return c
}

func elemsValid(es []field.Elem) bool {
	for _, e := range es {
		if !e.Valid() {
			return false
		}
	}
	return true
}

func matrixValid(m [][]field.Elem, n int) bool {
	if len(m) != n {
		return false
	}
	for _, row := range m {
		if len(row) != n || !elemsValid(row) {
			return false
		}
	}
	return true
}

func boolMatrixValid(m [][]bool, n int) bool {
	if len(m) != n {
		return false
	}
	for _, row := range m {
		if len(row) != n {
			return false
		}
	}
	return true
}

// The matrix constructors slice n rows out of one flat backing array:
// two allocations per matrix instead of n+1 (a fresh Instance builds five
// of them every beat on every node).

func matrixPoly(n int) [][]field.Poly {
	flat := make([]field.Poly, n*n)
	m := make([][]field.Poly, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

func matrixBool(n int) [][]bool {
	flat := make([]bool, n*n)
	m := make([][]bool, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

func matrixU8(n int) [][]uint8 {
	flat := make([]uint8, n*n)
	m := make([][]uint8, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

func matrixElem(n int) [][]field.Elem {
	flat := make([]field.Elem, n*n)
	m := make([][]field.Elem, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}
