// Package gvss implements a synchronous graded verifiable secret sharing
// scheme, the substrate the paper's common coin is built on (Section 2.1,
// Observation 2.1, citing Feldman–Micali).
//
// One Instance covers a full "dealing session": every node simultaneously
// acts as a dealer, sharing a vector of n secrets — dealer d's secret
// number t is d's contribution to target node t's "lottery ticket" in the
// common-coin layer above (package coin). Each (dealer, target) secret is
// shared with a symmetric bivariate polynomial of degree f.
//
// Rounds (one per beat when driven by the ss-Byz-Coin-Flip pipeline):
//
//	1 share   dealer d sends node i its row polynomials g_{d,t,i}(x) = B_{d,t}(x, i+1)
//	2 echo    node i sends node j the cross points g_{d,t,i}(j+1) for all (d,t);
//	          on delivery each node row-fixes: if its own row disagrees with
//	          the echoes, it re-decodes its row from the echo points (they
//	          lie on the node's row by symmetry), tolerating f errors
//	3 vote    node i broadcasts, per (d,t), whether it holds a validated row
//	          (original or fixed) consistent with >= n-f echo points;
//	          on delivery grades are assigned: 2 with >= n-f OK votes,
//	          1 with >= f+1, else 0
//	recover   (driven later by the coin layer, after its accept round)
//	          node i broadcasts its share g_{d,t,i}(0) for every dealing;
//	          on delivery each secret is reconstructed by Berlekamp–Welch,
//	          tolerating the f Byzantine shares
//
// Grade semantics (validated by tests): an honest dealer's dealings reach
// grade 2 at every honest node with exact, identical recovery; and if any
// honest node assigns grade 2, every honest node assigns grade >= 1.
//
// Substitution note (recorded in DESIGN.md §3): full Feldman–Micali GVSS
// adds complaint/accusation rounds that make recovery consistent for
// *every* grade-2 dealing even against arbitrary row-geometry attacks by a
// Byzantine dealer colluding with Byzantine echoers. We replace those
// rounds with echo-based row fixing, which preserves the properties above
// for honest dealers unconditionally and is validated empirically against
// the implemented adversary suite (experiment E2).
package gvss

import (
	"math/rand"
	"sync"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/shamir"
)

// Grade levels assigned to each (dealer, target) dealing after the vote
// round. GradeNone means the dealing is worthless; GradeLow means at least
// one honest node may rely on it; GradeHigh guarantees every honest node
// assigned at least GradeLow.
const (
	GradeNone uint8 = 0
	GradeLow  uint8 = 1
	GradeHigh uint8 = 2
)

// Rounds is the number of send-and-receive rounds an Instance needs before
// Recovered returns final values: share, echo, vote, recover.
const Rounds = 4

// ShareMsg is the dealer's round-1 message to one node: for each target t,
// the row polynomial of the bivariate sharing of secret (dealer, t).
//
// The four round messages (and coin.AcceptMsg) travel in value or
// pointer form: compose paths send pointers into per-instance message
// slots whose backing comes from the node's beat pool — legal because
// messages are valid only for their beat (proto.Message) — while
// adversaries and tests hand-build values. Consumers accept both via the
// As* helpers.
type ShareMsg struct {
	Rows []field.Poly // [target][coefficient], each of length f+1
}

// Kind implements proto.Message.
func (ShareMsg) Kind() string { return "gvss.share" }

// AsShare reports whether m is a share message, accepting both forms.
func AsShare(m proto.Message) (ShareMsg, bool) {
	switch v := m.(type) {
	case ShareMsg:
		return v, true
	case *ShareMsg:
		return *v, true
	}
	return ShareMsg{}, false
}

// EchoMsg is node i's round-2 message to node j: Vals[d][t] is
// g_{d,t,i}(j+1), the cross-check point of i's row for dealing (d,t).
// Has[d][t] marks dealings for which i actually received a row; entries
// without it carry zero and must be skipped by the receiver (a silent
// dealer must not be mistaken for one dealing the zero polynomial).
type EchoMsg struct {
	Vals [][]field.Elem // [dealer][target]
	Has  [][]bool       // [dealer][target]
	// ValsFlat/HasFlat are the same matrices in flat row-major form
	// (index d*n+t). When both have length n² they are authoritative and
	// the receiver's fused sweep runs over them directly, one wide pass
	// per matrix; otherwise the receiver gathers the row views. Composed
	// messages always set them aliasing the row views' backing. The wire
	// codec transmits the row views only, so decoded messages take the
	// gather path.
	ValsFlat []field.Elem
	HasFlat  []bool
}

// Kind implements proto.Message.
func (EchoMsg) Kind() string { return "gvss.echo" }

// AsEcho reports whether m is an echo message, accepting both forms.
func AsEcho(m proto.Message) (EchoMsg, bool) {
	switch v := m.(type) {
	case EchoMsg:
		return v, true
	case *EchoMsg:
		return *v, true
	}
	return EchoMsg{}, false
}

// VoteMsg is node i's round-3 broadcast: OK[d][t] reports whether i holds
// a validated row for dealing (d,t).
type VoteMsg struct {
	OK [][]bool // [dealer][target]
	// OKFlat is OK in flat row-major form (index d*n+t); authoritative
	// when its length is n² (see EchoMsg).
	OKFlat []bool
}

// Kind implements proto.Message.
func (VoteMsg) Kind() string { return "gvss.vote" }

// AsVote reports whether m is a vote message, accepting both forms.
func AsVote(m proto.Message) (VoteMsg, bool) {
	switch v := m.(type) {
	case VoteMsg:
		return v, true
	case *VoteMsg:
		return *v, true
	}
	return VoteMsg{}, false
}

// RecoverMsg is node i's recover-round broadcast: Shares[d][t] is i's
// share g_{d,t,i}(0) of secret (d,t). HasRow[d][t] marks entries for which
// i actually holds a validated row; others carry zero and are skipped by
// receivers.
type RecoverMsg struct {
	Shares [][]field.Elem // [dealer][target]
	HasRow [][]bool       // [dealer][target]
	// SharesFlat/HasRowFlat are the flat row-major forms (index d*n+t);
	// authoritative when both have length n² (see EchoMsg).
	SharesFlat []field.Elem
	HasRowFlat []bool
}

// Kind implements proto.Message.
func (RecoverMsg) Kind() string { return "gvss.recover" }

// AsRecover reports whether m is a recover message, accepting both forms.
func AsRecover(m proto.Message) (RecoverMsg, bool) {
	switch v := m.(type) {
	case RecoverMsg:
		return v, true
	case *RecoverMsg:
		return *v, true
	}
	return RecoverMsg{}, false
}

// Instance is one node's state for one dealing session. The zero value is
// not usable; construct with New. Instances are not safe for concurrent
// use; the simulation engine and runtime drive each node sequentially.
type Instance struct {
	env proto.Env

	// Dealer state: my secret contributions, one bivariate per target.
	dealt []*shamir.Bivariate

	// rows[d][t] is my (possibly fixed) row for dealing (d,t); nil when
	// missing or invalid. Delivered rows are copied into slots of the flat
	// rowData backing; rows fixed from echoes point at their own decode
	// result instead. rowOK mirrors validity after the echo round. The
	// *Flat aliases are the matrices' backing arrays, kept so Reset clears
	// with a few linear passes instead of n² double-indexed stores.
	rows      [][]field.Poly
	rowsFlat  []field.Poly
	rowData   []field.Elem // n*n slots of f+1 coefficients each
	rowOK     [][]bool
	rowOKFlat []bool

	grades [][]uint8 // [dealer][target], valid after DeliverVote

	recovered     [][]field.Elem // valid after DeliverRecover where recOK
	recoveredFlat []field.Elem
	recOK         [][]bool
	recOKFlat     []bool

	// me is the shared batch-evaluation table for the session's share
	// points 1..n: every row evaluation in the share, echo and recover
	// rounds goes through it in one pass per row instead of n independent
	// Poly.Eval calls. The table is immutable and shared process-wide.
	me *field.MultiEval

	// echoVals caches the compose-echo evaluations row_{d,t}(j+1) laid
	// out [(d*n+t)*n + j]. ComposeEcho fills it; DeliverEcho — which runs
	// later the same beat and needs exactly these values to count echo
	// agreement — reads it instead of re-evaluating, halving the echo
	// round's evaluation work, then releases it. The n³ buffers are
	// checked out of a process-wide pool only for that compose→deliver
	// window, so a pipeline full of instances does not pin one per slot.
	// Entries for dealings without a row are stale and guarded by
	// rows[d][t] != nil (stale pool contents are therefore never read);
	// echoCached gates the whole cache so a Deliver without a matching
	// Compose falls back to fresh evaluation.
	echoVals   []field.Elem
	echoCached bool
	// echoValsT is echoVals transposed to sender-major [j*n*n + d*n+t] —
	// the exact per-destination payload ComposeEcho scatters, retained so
	// DeliverEcho's fused validate+tally sweep streams one sequential row
	// per sender instead of striding through echoVals. Both views are
	// carved from echoBuf, a single 2n³ pool checkout, so the pool sees
	// one Get/Put per echo round (each sync.Pool.Put boxes its slice
	// header — one heap allocation — so halving Put traffic matters on
	// the beat's allocation budget).
	echoValsT []field.Elem
	echoBuf   []field.Elem

	// Reusable scratch for the echo and recover rounds' per-dealing point
	// collection and happy-path decoding; one instance processes n^2
	// dealings per round, so these buffers turn the hot loops
	// allocation-free.
	xsScratch, ysScratch []field.Elem
	polyScratch          field.Poly
	ev                   []field.Elem // n-point batch-eval scratch

	// Per-sender flat matrix pointers and vote tallies, reused across
	// the deliver rounds (cleared per call) so steady-state delivery does
	// not allocate.
	echoM, recM [][]field.Elem
	echoH, recH [][]bool
	// stageE/stageB hold gathered copies of delivered matrices whose
	// messages lack flat payloads (hand-built or wire-decoded forms), one
	// n² region per sender; inElem/inBool stage a single incoming matrix
	// before it may overwrite a sender's region. All four are lazily
	// allocated — honest in-process traffic never needs them.
	stageE     []field.Elem
	stageB     []bool
	inElem     []field.Elem
	inBool     []bool
	voteCounts []uint64
	voteRows   [][]uint64
	voteSeen   []bool
	// rowPtrE/rowPtrB hold the per-sender row slices of the current
	// dealer while scanning, and secDec fuses the recover round's
	// repeated-sender-set decodes through cached basis tables.
	rowPtrE [][]field.Elem
	rowPtrB [][]bool
	// gridPtr holds the present senders' flat share matrices for the
	// recover round's grid decode (reused across beats).
	gridPtr [][]field.Elem
	// coefShare is ComposeShare's degree-major coefficient gather for
	// the grid evaluation of all dealt polynomials (lazily sized).
	coefShare []field.Elem
	senderIdx []int
	secDec    *field.SecretDecoder
	// echoAgree[d*n+t] is the echo agreement tally the fused
	// validate+tally sweep accumulates per delivered matrix. uint64 so
	// the sweep's wrapping ±1 adds (field.SweepTally) settle to the
	// exact non-negative count by the time the resolution loop reads it.
	echoAgree []uint64

	// Per-destination flat pointers used while scattering batched
	// evaluations into outgoing messages.
	dstElem [][]field.Elem
	dstBool [][]bool

	// batchElems/batchBools hold ComposeEcho's leased payload blocks
	// between a deferred enqueue (env.Batch non-nil) and FinishEval,
	// which runs the payload copies the immediate path does inline.
	batchElems []field.Elem
	batchBools []bool

	// Persistent message slots and send lists for the four rounds. Each
	// Compose* overwrites its slots' slice headers (pointing them at
	// beat-pooled backing) and returns the prebuilt send list whose Msg
	// pointers never change — so composing is free of interface-boxing
	// allocations. Legal under the message-lifetime contract: by the time
	// a slot is rewritten (this instance's next session at the earliest),
	// the previous message is long dead.
	shareMsgs    []ShareMsg
	shareSends   []proto.Send
	echoMsgs     []EchoMsg
	echoSends    []proto.Send
	voteMsg      VoteMsg
	voteSends    []proto.Send
	recoverMsg   RecoverMsg
	recoverSends []proto.Send
}

// New creates the per-node state for one session and draws this node's
// dealer secrets from rng.
func New(env proto.Env, rng *rand.Rand) *Instance {
	n, f := env.N, env.F
	ins := &Instance{env: env}
	ins.dealt = make([]*shamir.Bivariate, n)
	for t := 0; t < n; t++ {
		ins.dealt[t] = shamir.NewBivariate(rng, f, field.Reduce(rng.Uint64()))
	}
	ins.rows, ins.rowsFlat = matrixPoly(n)
	ins.rowData = make([]field.Elem, n*n*(f+1))
	ins.rowOK, ins.rowOKFlat = matrixBool(n)
	ins.grades = matrixU8(n)
	ins.recovered, ins.recoveredFlat = matrixElem(n)
	ins.recOK, ins.recOKFlat = matrixBool(n)
	ins.me = field.MultiEvalFor(n, f)
	ins.secDec = field.NewSecretDecoder(ins.me)
	ins.xsScratch = make([]field.Elem, 0, n)
	ins.ysScratch = make([]field.Elem, 0, n)
	ins.polyScratch = make(field.Poly, f+1)
	ins.ev = make([]field.Elem, n)
	ins.echoM = make([][]field.Elem, n)
	ins.echoH = make([][]bool, n)
	ins.recM = make([][]field.Elem, n)
	ins.recH = make([][]bool, n)
	ins.voteCounts = make([]uint64, n*n)
	ins.voteRows = make([][]uint64, n)
	for d := range ins.voteRows {
		ins.voteRows[d] = ins.voteCounts[d*n : (d+1)*n : (d+1)*n]
	}
	ins.voteSeen = make([]bool, n)
	ins.dstElem = make([][]field.Elem, n)
	ins.dstBool = make([][]bool, n)
	ins.rowPtrE = make([][]field.Elem, n)
	ins.rowPtrB = make([][]bool, n)
	ins.gridPtr = make([][]field.Elem, 0, n)
	ins.senderIdx = make([]int, 0, n)
	ins.echoAgree = make([]uint64, n*n)
	ins.shareMsgs = make([]ShareMsg, n)
	ins.shareSends = make([]proto.Send, n)
	ins.echoMsgs = make([]EchoMsg, n)
	ins.echoSends = make([]proto.Send, n)
	for i := 0; i < n; i++ {
		ins.shareSends[i] = proto.Send{To: i, Msg: &ins.shareMsgs[i]}
		ins.echoSends[i] = proto.Send{To: i, Msg: &ins.echoMsgs[i]}
	}
	ins.voteSends = []proto.Send{{To: proto.Broadcast, Msg: &ins.voteMsg}}
	ins.recoverSends = []proto.Send{{To: proto.Broadcast, Msg: &ins.recoverMsg}}
	return ins
}

// Pooled-or-fresh backing for a round's payload: the node's beat pool
// when the driver installed one (recycled by the engine after this
// beat's Deliver phase), plain allocation otherwise (SSBYZ_POOL=off, the
// goroutine runtime, direct harness use). Pooled buffers carry arbitrary
// recycled contents; every compose path below fully overwrites — or
// explicitly clears — the bytes it exposes, which is what keeps pooled
// and unpooled seeded runs byte-identical.

func (ins *Instance) allocElems(n int) []field.Elem {
	if p := ins.env.Pool; p != nil {
		return p.Elems(n)
	}
	return make([]field.Elem, n)
}

func (ins *Instance) allocBools(n int) []bool {
	if p := ins.env.Pool; p != nil {
		return p.Bools(n)
	}
	return make([]bool, n)
}

func (ins *Instance) allocPolys(n int) []field.Poly {
	if p := ins.env.Pool; p != nil {
		return p.Polys(n)
	}
	return make([]field.Poly, n)
}

func (ins *Instance) allocElemRows(n int) [][]field.Elem {
	if p := ins.env.Pool; p != nil {
		return p.ElemRows(n)
	}
	return make([][]field.Elem, n)
}

func (ins *Instance) allocBoolRows(n int) [][]bool {
	if p := ins.env.Pool; p != nil {
		return p.BoolRows(n)
	}
	return make([][]bool, n)
}

// rowSlot returns the flat-backing slot for dealing (d,t), full-capacity
// so a copied row cannot bleed into its neighbor.
func (ins *Instance) rowSlot(d, t int) field.Poly {
	w := ins.env.F + 1
	base := (d*ins.env.N + t) * w
	return field.Poly(ins.rowData[base : base+w : base+w])
}

// Reset re-initializes the instance for a fresh dealing session, reusing
// every backing allocation; it reports false (leaving the instance
// untouched) when the environment shape differs, in which case the caller
// must construct a new instance. Fresh dealer secrets are drawn from rng
// with the same consumption pattern as New, so a recycled session is
// indistinguishable from a newly constructed one under a fixed seed.
func (ins *Instance) Reset(env proto.Env, rng *rand.Rand) bool {
	if ins.env.N != env.N || ins.env.F != env.F {
		return false
	}
	ins.env = env
	n := env.N
	for t := 0; t < n; t++ {
		ins.dealt[t].Randomize(rng, field.Reduce(rng.Uint64()))
	}
	for i := range ins.rowsFlat {
		ins.rowsFlat[i] = nil
	}
	for i := range ins.rowOKFlat {
		ins.rowOKFlat[i] = false
		ins.recOKFlat[i] = false
	}
	for d := 0; d < n; d++ {
		g := ins.grades[d]
		for t := range g {
			g[t] = GradeNone
		}
	}
	for i := range ins.recoveredFlat {
		ins.recoveredFlat[i] = 0
	}
	ins.echoCached = false
	return true
}

// DealtSecret returns the secret this node dealt for the given target.
// Used by tests and by coin-quality measurements.
func (ins *Instance) DealtSecret(target int) field.Elem {
	return ins.dealt[target].Secret()
}

// ComposeShare produces round 1: this node, as dealer, sends each node its
// row polynomials for all n target secrets. Each message's n rows are
// sliced out of one flat backing array (2 allocations per destination
// instead of n+1), and the rows themselves are computed batched: the
// coefficient of x^k in destination i's row for target t is the row
// coefficient vector C_t[k] evaluated at i+1, so one MultiEval pass per
// (t, k) fills that coefficient for all n destinations at once.
func (ins *Instance) ComposeShare() []proto.Send {
	n, f := ins.env.N, ins.env.F
	w := f + 1
	ev := ins.ev
	flats := ins.dstElem
	// One element block and one row-header block for all n messages: the
	// destinations' payloads have identical lifetimes (this beat), so they
	// share one lease from the node's beat pool. Every element is written
	// below, so recycled contents never leak.
	elems := ins.allocElems(n * n * w)
	rowHdrs := ins.allocPolys(n * n)
	sends := ins.shareSends
	for i := 0; i < n; i++ {
		flat := elems[i*n*w : (i+1)*n*w : (i+1)*n*w]
		rows := rowHdrs[i*n : (i+1)*n : (i+1)*n]
		for t := 0; t < n; t++ {
			rows[t] = field.Poly(flat[t*w : (t+1)*w : (t+1)*w])
		}
		flats[i] = flat
		ins.shareMsgs[i].Rows = rows
	}
	// Evaluate all n·w coefficient polynomials at all n points with one
	// full-width kernel call per destination: the payload block is
	// contiguous with destination-major stride n·w, and flats[i][t*w+k] =
	// c_{t,k}(x_i) is exactly EvalGridT's transposed output for the
	// polynomial family indexed r = t*w+k. This replaces n·w narrow
	// EvalInto calls plus an n²·w strided scatter.
	nR := n * w
	if len(ins.coefShare) < w*nR {
		ins.coefShare = make([]field.Elem, w*nR)
	}
	coefG := ins.coefShare[:w*nR]
	gemm := true
	for t := 0; t < n && gemm; t++ {
		c := ins.dealt[t].C
		for k := 0; k < w; k++ {
			row := c[k]
			if len(row) != w {
				gemm = false
				break
			}
			for k2 := 0; k2 < w; k2++ {
				coefG[k2*nR+t*w+k] = row[k2]
			}
		}
	}
	if gemm {
		if b := ins.env.Batch; b != nil {
			// Deferred: the driver flushes after the compose fan-out and
			// before anything reads the payload, stacking this family with
			// same-shaped ones from other instances (see proto.Env.Batch).
			// Both coefG and the payload block stay valid until then.
			b.Enqueue(ins.me, elems[:n*nR], coefG, w, nR, nil, 0)
		} else {
			ins.me.EvalGridT(elems[:n*nR], coefG, w, nR)
		}
	} else {
		// Defensive fallback (dealt rows are always w long): per-poly
		// evaluation with the strided scatter.
		for t := 0; t < n; t++ {
			c := ins.dealt[t].C
			for k := 0; k < w; k++ {
				ins.me.EvalInto(ev, field.Poly(c[k]))
				for i := 0; i < n; i++ {
					flats[i][t*w+k] = ev[i]
				}
			}
		}
	}
	for i := range flats {
		flats[i] = nil // the backing now belongs to the beat's messages
	}
	return sends
}

// DeliverShare ingests round-1 messages: rows[d][t] for each dealer d that
// sent a well-formed share message.
func (ins *Instance) DeliverShare(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	seen := ins.voteSeen // per-call sender dedup scratch, free this round
	for i := range seen {
		seen[i] = false
	}
	for _, r := range inbox {
		m, ok := AsShare(r.Msg)
		if !ok || r.From < 0 || r.From >= n || len(m.Rows) != n {
			continue
		}
		if seen[r.From] {
			// A (Byzantine) duplicate may not clobber already-installed
			// rows with a half-copied invalid message, so it runs the
			// fused validator in validate-only mode before any copy.
			if !rowsValid(m.Rows, f+1) {
				continue
			}
			for t := 0; t < n; t++ {
				slot := ins.rowSlot(r.From, t)
				copy(slot, m.Rows[t])
				ins.rows[r.From][t] = slot
			}
			continue
		}
		seen[r.From] = true
		ins.installRows(r.From, m.Rows)
	}
}

// rowsValid is the fused row validator: one branch-free pass OR-
// accumulating a validity mask over whole rows (see elemsValid for the
// hi/borrow range check); only the per-row length check branches.
func rowsValid(rows []field.Poly, w int) bool {
	const max = uint64(field.P - 1)
	var hi, borrow uint64
	for _, row := range rows {
		if len(row) != w {
			return false
		}
		for _, e := range row {
			hi |= uint64(e)
			borrow |= max - uint64(e)
		}
	}
	return hi>>31 == 0 && borrow>>63 == 0
}

// installRows is the first-sender share path: validate and copy fused
// into one pass over the (cache-cold) payload, accumulating the same
// mask as rowsValid while the copy streams. Only when the mask trips —
// a Byzantine sender — does the slow uninstall path run, so the
// observable behavior matches validate-then-copy. Reports whether the
// rows were installed.
func (ins *Instance) installRows(d int, rows []field.Poly) bool {
	n, w := ins.env.N, ins.env.F+1
	const max = uint64(field.P - 1)
	var hi, borrow uint64
	for t := 0; t < n; t++ {
		row := rows[t]
		if len(row) != w {
			ins.uninstallRows(d)
			return false
		}
		slot := ins.rowSlot(d, t)
		for i, e := range row {
			hi |= uint64(e)
			borrow |= max - uint64(e)
			slot[i] = e
		}
		ins.rows[d][t] = slot
	}
	if hi>>31 != 0 || borrow>>63 != 0 {
		ins.uninstallRows(d)
		return false
	}
	return true
}

func (ins *Instance) uninstallRows(d int) {
	for t := 0; t < ins.env.N; t++ {
		ins.rows[d][t] = nil
	}
}

// gatherCoefT transposes every held row's coefficients into the
// degree-major layout EvalGridT consumes — coefT[k*n²+dt] = row_dt[k],
// zero-padded, so trimmed fixed rows evaluate identically — carved
// from the tail of the pooled echo buffer. Returns nil if any row
// exceeds the f+1 coefficient bound (impossible for validated or dealt
// rows; the caller then falls back to per-row evaluation). Callers
// must have verified every row is held.
func (ins *Instance) gatherCoefT() []field.Elem {
	n, w := ins.env.N, ins.env.F+1
	nn := n * n
	coefT := ins.echoBuf[2*n*nn : 2*n*nn+w*nn]
	rowsFlat := ins.rowsFlat
	for _, row := range rowsFlat {
		if len(row) > w {
			return nil
		}
	}
	// k-outer order keeps the destination writes sequential (the strided
	// accesses fall on the reads, which all hit the compact row storage).
	for k := 0; k < w; k++ {
		dst := coefT[k*nn : (k+1)*nn]
		for dt, row := range rowsFlat {
			if k < len(row) {
				dst[dt] = row[k]
			} else {
				dst[dt] = 0
			}
		}
	}
	return coefT
}

// ComposeEcho produces round 2: cross-check points of my rows, one message
// per destination node. Each message's n×n matrices are sliced out of
// flat backing arrays (4 allocations per destination instead of 2n+2).
// Each held row is evaluated at all n destinations in one MultiEval pass,
// directly into the instance's echoVals cache, which DeliverEcho reuses
// for agreement counting later the same beat.
func (ins *Instance) ComposeEcho() []proto.Send {
	n := ins.env.N
	if ins.echoBuf == nil {
		ins.echoBuf = getEchoVals(2*n*n*n + (ins.env.F+1)*n*n)
		ins.echoVals = ins.echoBuf[:n*n*n]
		ins.echoValsT = ins.echoBuf[n*n*n : 2*n*n*n]
	}
	valsFlats := ins.dstElem
	hasFlats := ins.dstBool
	// Shared backing blocks for all n messages (see ComposeShare), leased
	// from the node's beat pool.
	elems := ins.allocElems(n * n * n)
	bools := ins.allocBools(n * n * n)
	valHdrs := ins.allocElemRows(n * n)
	hasHdrs := ins.allocBoolRows(n * n)
	sends := ins.echoSends
	for j := 0; j < n; j++ {
		valsFlat := elems[j*n*n : (j+1)*n*n : (j+1)*n*n]
		hasFlat := bools[j*n*n : (j+1)*n*n : (j+1)*n*n]
		vals := valHdrs[j*n : (j+1)*n : (j+1)*n]
		has := hasHdrs[j*n : (j+1)*n : (j+1)*n]
		for d := 0; d < n; d++ {
			vals[d] = valsFlat[d*n : (d+1)*n : (d+1)*n]
			has[d] = hasFlat[d*n : (d+1)*n : (d+1)*n]
		}
		valsFlats[j] = valsFlat
		hasFlats[j] = hasFlat
		ins.echoMsgs[j].Vals = vals
		ins.echoMsgs[j].Has = has
		ins.echoMsgs[j].ValsFlat = valsFlat
		ins.echoMsgs[j].HasFlat = hasFlat
	}
	// Count the held rows up front: the steady state (every row held)
	// takes the grid-evaluation fast path below; anything sparser falls
	// back to per-row evaluation plus scattering.
	held := 0
	for d := 0; d < n; d++ {
		for t := 0; t < n; t++ {
			if ins.rows[d][t] != nil {
				held++
			}
		}
	}
	var coefT []field.Elem
	if held == n*n {
		coefT = ins.gatherCoefT()
	}
	if coefT != nil {
		// Steady state: evaluate the whole row family directly in
		// transposed order — for each destination j, ONE full-width
		// kernel call computes row_{d,t}(j+1) for all n² dealings
		// straight into echoValsT's sender-major layout, which is
		// simultaneously the destination-j payload and the exact
		// sequential stream DeliverEcho's fused sweep reads. This
		// replaces n² narrow per-row evaluations plus an n³ strided
		// transpose. The row-major echoVals cache is left stale, which
		// is safe: the cached delivery path only reads echoValsT (the
		// fix path reads the delivered matrices themselves).
		if b := ins.env.Batch; b != nil {
			// Deferred: enqueue the grid evaluation and run the payload
			// copies in FinishEval once the driver's flush has filled
			// echoValsT. coefT lives in echoBuf's tail, which stays checked
			// out until this round's DeliverEcho — well past the flush.
			ins.batchElems = elems
			ins.batchBools = bools
			b.Enqueue(ins.me, ins.echoValsT, coefT, ins.env.F+1, n*n, ins, 0)
		} else {
			ins.me.EvalGridT(ins.echoValsT, coefT, ins.env.F+1, n*n)
			ins.finishEchoPayload(elems, bools)
		}
	} else {
		// Pass 1: evaluate every held row at all n points, streaming into
		// the contiguous echoVals cache.
		for d := 0; d < n; d++ {
			for t := 0; t < n; t++ {
				if row := ins.rows[d][t]; row != nil {
					ins.me.EvalInto(ins.echoVals[(d*n+t)*n:(d*n+t+1)*n], row)
				}
			}
		}
		// Pass 2: scatter into the per-destination payloads. Entries
		// without a row stay zero with has=false, so the leased blocks
		// must be scrubbed of their recycled contents before scattering —
		// stale bytes here would leak into the wire encoding and break
		// pooled/unpooled replay equivalence.
		clear(elems)
		clear(bools)
		for idx := 0; idx < n*n; idx++ {
			if ins.rows[idx/n][idx%n] == nil {
				continue
			}
			slot := ins.echoVals[idx*n : (idx+1)*n]
			for j := 0; j < n; j++ {
				valsFlats[j][idx] = slot[j]
				hasFlats[j][idx] = true
			}
		}
		// Retain the transposed evaluations: destination j's payload IS
		// the sender-major row the delivery sweep wants (for the loopback
		// matrix it will receive from sender j), so one copy per
		// destination saves DeliverEcho a strided n³ re-transpose.
		for j := 0; j < n; j++ {
			copy(ins.echoValsT[j*n*n:(j+1)*n*n], valsFlats[j])
		}
	}
	for j := range valsFlats {
		valsFlats[j] = nil
		hasFlats[j] = nil
	}
	ins.echoCached = true
	return sends
}

// finishEchoPayload runs the steady-state echo path's payload copies
// once echoValsT holds the grid evaluation: destination j's payload is
// echoValsT's slab j (the transposed layout IS the per-destination
// sender-major matrix), and every presence flag is true since every row
// was held. elems/bools are the beat-leased blocks backing all n
// outgoing messages.
func (ins *Instance) finishEchoPayload(elems []field.Elem, bools []bool) {
	n := ins.env.N
	copy(elems[:n*n*n], ins.echoValsT[:n*n*n])
	bools = bools[:n*n*n]
	for i := range bools {
		bools[i] = true
	}
}

// FinishEval implements field.Finisher: the deferred tail of the
// steady-state ComposeEcho path, invoked by the driver's batch flush
// after the enqueued grid evaluation has filled echoValsT.
func (ins *Instance) FinishEval(int) {
	ins.finishEchoPayload(ins.batchElems, ins.batchBools)
	ins.batchElems, ins.batchBools = nil, nil
}

// DeliverEcho ingests round-2 messages and row-fixes: for each dealing,
// the echo points sent to me lie (by bivariate symmetry) on my own row, so
// a row that disagrees with the quorum is re-decoded from the echoes,
// tolerating f Byzantine points. rowOK[d][t] records whether I now hold a
// row consistent with at least n-f echo points.
//
// Delivery is a fused validate+tally sweep: each matrix is traversed
// exactly once, OR-accumulating the element-validity mask while counting
// agreement with my rows' compose-time evaluations. The slow rollback
// path (subtracting a matrix's tallies back out) only runs when the mask
// trips — a Byzantine sender — or a duplicate replaces an installed
// matrix, so honest traffic never branches per element.
func (ins *Instance) DeliverEcho(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	quorum := ins.env.Quorum()
	// echo[w] is sender w's matrix, nil if absent/malformed.
	echo := ins.echoM
	echoHas := ins.echoH
	for w := 0; w < n; w++ {
		echo[w] = nil
		echoHas[w] = nil
	}
	// The tally sweep compares delivered points against my rows' values
	// at every sender's point — exactly what ComposeEcho evaluated and
	// transposed into echoValsT this beat. Without a matching compose
	// (direct harness use), fill the caches now so delivery has one
	// uniform path.
	if !ins.echoCached {
		if ins.echoBuf == nil {
			ins.echoBuf = getEchoVals(2*n*n*n + (f+1)*n*n)
			ins.echoVals = ins.echoBuf[:n*n*n]
			ins.echoValsT = ins.echoBuf[n*n*n : 2*n*n*n]
		}
		clear(ins.echoValsT)
		for d := 0; d < n; d++ {
			for t := 0; t < n; t++ {
				if row := ins.rows[d][t]; row != nil {
					slot := ins.echoVals[(d*n+t)*n : (d*n+t+1)*n]
					ins.me.EvalInto(slot, row)
					for j := 0; j < n; j++ {
						ins.echoValsT[j*n*n+d*n+t] = slot[j]
					}
				}
			}
		}
	}
	ins.echoCached = false
	defer func() {
		// The compose-time evaluations are dead after this round; hand
		// the backing buffer back for the next instance entering its
		// echo round.
		putEchoVals(ins.echoBuf)
		ins.echoBuf = nil
		ins.echoVals = nil
		ins.echoValsT = nil
	}()
	agree := ins.echoAgree
	clear(agree)
	for _, r := range inbox {
		m, ok := AsEcho(r.Msg)
		if !ok || r.From < 0 || r.From >= n {
			continue
		}
		valsFlat, hasFlat := m.ValsFlat, m.HasFlat
		gathered := false
		if len(valsFlat) != n*n || len(hasFlat) != n*n {
			// No (or malformed) flat payload: gather the row views into
			// the incoming staging pair, rejecting malformed shapes.
			valsFlat, hasFlat = ins.gatherMatrix(m.Vals, m.Has)
			if valsFlat == nil {
				continue
			}
			gathered = true
		}
		if ins.sweepEchoFlat(r.From, valsFlat, hasFlat, false) {
			if echo[r.From] != nil {
				// Duplicate sender: only the LAST valid matrix counts, so
				// back the earlier one's contributions out (rare path).
				ins.sweepEchoFlat(r.From, echo[r.From], echoHas[r.From], true)
			}
			if gathered {
				// Move the staged copy into the sender's own region (the
				// incoming scratch is reused by the next message).
				valsFlat, hasFlat = ins.stageSender(r.From, valsFlat, hasFlat)
			}
			echo[r.From] = valsFlat
			echoHas[r.From] = hasFlat
		} else {
			// Validity mask tripped: this matrix contributes nothing, so
			// re-sweep to subtract the tallies just added (rare path);
			// an earlier valid matrix from this sender stays in force.
			ins.sweepEchoFlat(r.From, valsFlat, hasFlat, true)
		}
	}
	// Hoist the present-sender list once, and per dealer the senders' row
	// slices, so the (rare) fix path indexes flat rows instead of chasing
	// three levels of slice headers.
	senders := ins.senderIdx[:0]
	for w := 0; w < n; w++ {
		if echo[w] != nil {
			senders = append(senders, w)
		}
	}
	ins.senderIdx = senders
	evRow := ins.rowPtrE
	hasRow := ins.rowPtrB
	for d := 0; d < n; d++ {
		for i, w := range senders {
			evRow[i] = echo[w][d*n : (d+1)*n]
			hasRow[i] = echoHas[w][d*n : (d+1)*n]
		}
		for t := 0; t < n; t++ {
			if ins.rows[d][t] != nil && agree[d*n+t] >= uint64(quorum) {
				ins.rowOK[d][t] = true
				continue
			}
			// Row missing or inconsistent: collect the echo points and try
			// to fix it from them. The fixed row is retained across
			// rounds, so this (rare, Byzantine-only) path uses the
			// allocating DecodeFast.
			xs := ins.xsScratch[:0]
			ys := ins.ysScratch[:0]
			for i, w := range senders {
				if !hasRow[i][t] {
					continue
				}
				xs = append(xs, field.Elem(w+1))
				ys = append(ys, evRow[i][t])
			}
			if len(xs) < quorum {
				continue
			}
			fixed, err := field.DecodeFast(xs, ys, f, f)
			if err != nil {
				continue
			}
			if agreeCount(fixed, xs, ys) >= quorum {
				ins.rows[d][t] = fixed
				ins.rowOK[d][t] = true
			}
		}
	}
}

// sweepEchoFlat is the fused validate+tally pass over one sender's
// flat echo matrix: a single traversal OR-accumulates the canonical-
// range mask (the elemsValid hi/borrow trick) while adding ±1 to the
// agreement tally of every (d,t) whose delivered point matches my row's
// value at this sender's coordinate — branch-free via an equality mask
// and the Has bit. It reports whether every element was canonical.
//
// Tallies for dealings without an installed row compare against stale
// echoValsT entries; the counts are deterministic garbage that the
// resolution loop never consults (it checks rows[d][t] != nil first),
// and a rollback re-sweep subtracts the identical values.
func (ins *Instance) sweepEchoFlat(w0 int, valsFlat []field.Elem, hasFlat []bool, negate bool) bool {
	n := ins.env.N
	// My rows' values at sender w0's point, sender-major: one sequential
	// stream, in step with the delivered flat matrix — the whole n²
	// traversal is a single wide SweepTally call.
	ev := ins.echoValsT[w0*n*n : (w0+1)*n*n]
	hi, borrow := field.SweepTally(ins.echoAgree, ev, valsFlat, hasFlat, negate)
	return hi>>31 == 0 && borrow>>63 == 0
}

// gatherMatrix copies an n×n row-view matrix pair into the incoming
// staging pair, returning (nil, nil) if either matrix is malformed. It
// serves messages without flat payloads (hand-built or wire-decoded);
// the result is only valid until the next gatherMatrix call — callers
// that retain it move it aside with stageSender first.
func (ins *Instance) gatherMatrix(vals [][]field.Elem, has [][]bool) ([]field.Elem, []bool) {
	n := ins.env.N
	if len(vals) != n || len(has) != n {
		return nil, nil
	}
	for d := 0; d < n; d++ {
		if len(vals[d]) != n || len(has[d]) != n {
			return nil, nil
		}
	}
	if ins.inElem == nil {
		ins.inElem = make([]field.Elem, n*n)
		ins.inBool = make([]bool, n*n)
	}
	for d := 0; d < n; d++ {
		copy(ins.inElem[d*n:(d+1)*n], vals[d])
		copy(ins.inBool[d*n:(d+1)*n], has[d])
	}
	return ins.inElem, ins.inBool
}

// stageSender moves a gathered matrix pair from the incoming scratch
// into sender w's own staging region, whose contents stay valid for the
// rest of the round.
func (ins *Instance) stageSender(w int, valsFlat []field.Elem, hasFlat []bool) ([]field.Elem, []bool) {
	n := ins.env.N
	nn := n * n
	if ins.stageE == nil {
		ins.stageE = make([]field.Elem, n*nn)
		ins.stageB = make([]bool, n*nn)
	}
	ev := ins.stageE[w*nn : (w+1)*nn]
	bv := ins.stageB[w*nn : (w+1)*nn]
	copy(ev, valsFlat)
	copy(bv, hasFlat)
	return ev, bv
}

// b2i converts a bool to 0/1 without a branch (the compiler emits a
// zero-extending byte load, keeping the tally loops free of
// mispredictable per-element branches).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ComposeVote produces the round-3 broadcast of per-dealing validity.
func (ins *Instance) ComposeVote() []proto.Send {
	n := ins.env.N
	flat := ins.allocBools(n * n)
	ok := ins.allocBoolRows(n)
	for d := 0; d < n; d++ {
		ok[d] = flat[d*n : (d+1)*n : (d+1)*n]
		copy(ok[d], ins.rowOK[d])
	}
	ins.voteMsg.OK = ok
	ins.voteMsg.OKFlat = flat
	return ins.voteSends
}

// DeliverVote tallies round-3 votes and assigns grades.
func (ins *Instance) DeliverVote(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	quorum := ins.env.Quorum()
	counts := ins.voteRows
	for i := range ins.voteCounts {
		ins.voteCounts[i] = 0
	}
	seen := ins.voteSeen
	for i := range seen {
		seen[i] = false
	}
	for _, r := range inbox {
		m, ok := AsVote(r.Msg)
		if !ok || r.From < 0 || r.From >= n || seen[r.From] {
			continue
		}
		if len(m.OKFlat) == n*n {
			// Flat payload: the whole n² grid tallies in ONE wide sweep.
			seen[r.From] = true
			field.AccumBool(ins.voteCounts, m.OKFlat)
			continue
		}
		if !boolMatrixValid(m.OK, n) {
			continue
		}
		seen[r.From] = true
		for d := 0; d < n; d++ {
			field.AccumBool(counts[d], m.OK[d][:n])
		}
	}
	for d := 0; d < n; d++ {
		for t := 0; t < n; t++ {
			switch {
			case counts[d][t] >= uint64(quorum):
				ins.grades[d][t] = GradeHigh
			case counts[d][t] >= uint64(f+1):
				ins.grades[d][t] = GradeLow
			default:
				ins.grades[d][t] = GradeNone
			}
		}
	}
}

// Grade returns the grade assigned to dealing (dealer, target); valid
// after DeliverVote. Out-of-range arguments return GradeNone.
func (ins *Instance) Grade(dealer, target int) uint8 {
	n := ins.env.N
	if dealer < 0 || dealer >= n || target < 0 || target >= n {
		return GradeNone
	}
	return ins.grades[dealer][target]
}

// ComposeRecover produces the recover-round broadcast of my shares
// g_{d,t,me}(0) for every dealing I hold a validated row for.
func (ins *Instance) ComposeRecover() []proto.Send {
	n := ins.env.N
	// Entries without a validated row carry zero/false, so the leased
	// blocks are zero-cleared up front (see ComposeEcho's sparse path).
	var sharesFlat []field.Elem
	var hasFlat []bool
	if p := ins.env.Pool; p != nil {
		sharesFlat = p.ElemsZero(n * n)
		hasFlat = p.BoolsZero(n * n)
	} else {
		sharesFlat = make([]field.Elem, n*n)
		hasFlat = make([]bool, n*n)
	}
	shares := ins.allocElemRows(n)
	has := ins.allocBoolRows(n)
	for d := 0; d < n; d++ {
		shares[d] = sharesFlat[d*n : (d+1)*n : (d+1)*n]
		has[d] = hasFlat[d*n : (d+1)*n : (d+1)*n]
		for t := 0; t < n; t++ {
			if ins.rowOK[d][t] {
				// g(0) is the constant coefficient; rows are canonical
				// (validated on delivery or decoded), so no Horner pass is
				// needed. Fixed rows may be trimmed to the zero polynomial.
				if row := ins.rows[d][t]; len(row) > 0 {
					shares[d][t] = row[0]
				}
				has[d][t] = true
			}
		}
	}
	ins.recoverMsg.Shares = shares
	ins.recoverMsg.HasRow = has
	ins.recoverMsg.SharesFlat = sharesFlat
	ins.recoverMsg.HasRowFlat = hasFlat
	return ins.recoverSends
}

// DeliverRecover reconstructs every dealing's secret from the broadcast
// shares by error-corrected decoding. A dealing whose decode fails is left
// unrecovered; the coin layer substitutes a deterministic default.
func (ins *Instance) DeliverRecover(inbox []proto.Recv) {
	n, f := ins.env.N, ins.env.F
	shares := ins.recM // [sender][d][t]
	has := ins.recH
	for w := 0; w < n; w++ {
		shares[w] = nil
		has[w] = nil
	}
	for _, r := range inbox {
		m, ok := AsRecover(r.Msg)
		if !ok || r.From < 0 || r.From >= n {
			continue
		}
		sharesFlat, hasFlat := m.SharesFlat, m.HasRowFlat
		gathered := false
		if len(sharesFlat) != n*n || len(hasFlat) != n*n {
			sharesFlat, hasFlat = ins.gatherMatrix(m.Shares, m.HasRow)
			if sharesFlat == nil {
				continue
			}
			gathered = true
		}
		// One wide range check validates the whole matrix.
		if !elemsValid(sharesFlat) {
			continue
		}
		if gathered {
			sharesFlat, hasFlat = ins.stageSender(r.From, sharesFlat, hasFlat)
		}
		shares[r.From] = sharesFlat
		has[r.From] = hasFlat
	}
	// Hoist the present-sender list; when additionally every present
	// sender claims a share for every dealing (the steady state — counted
	// with one branch-free sweep per sender), the per-dealing point set is
	// constant and the gather loop drops its per-point branches.
	senders := ins.senderIdx[:0]
	claimed := 0
	for w := 0; w < n; w++ {
		if shares[w] == nil {
			continue
		}
		senders = append(senders, w)
		claimed += int(field.CountBool(has[w]))
	}
	ins.senderIdx = senders
	allHas := claimed == len(senders)*n*n
	evRow := ins.rowPtrE
	hasRow := ins.rowPtrB
	if allHas && len(senders) >= 2*f+1 {
		m := len(senders)
		xs := ins.xsScratch[:m]
		grids := ins.gridPtr[:0]
		for i, w := range senders {
			xs[i] = field.Elem(w + 1)
			grids = append(grids, shares[w])
		}
		ins.gridPtr = grids
		// Decode the whole n×n dealing grid at once: the senders'
		// matrices go in as-is (column (d,t) is that dealing's share
		// vector) and the grid decoder verifies all n² candidates per
		// suffix sender with one full-width kernel pass — m-f-1 wide
		// passes for the entire round instead of n narrow blocks.
		ins.secDec.DecodeAt0Grid(xs, grids[:m], n, n, f, f, ins.recovered, ins.recOK)
		return
	}
	for d := 0; d < n; d++ {
		for w := 0; w < n; w++ {
			if shares[w] == nil {
				evRow[w], hasRow[w] = nil, nil
			} else {
				evRow[w], hasRow[w] = shares[w][d*n:(d+1)*n], has[w][d*n:(d+1)*n]
			}
		}
		for t := 0; t < n; t++ {
			xs := ins.xsScratch[:0]
			ys := ins.ysScratch[:0]
			for w := 0; w < n; w++ {
				if evRow[w] == nil || !hasRow[w][t] {
					continue
				}
				xs = append(xs, field.Elem(w+1))
				ys = append(ys, evRow[w][t])
			}
			if len(xs) < 2*f+1 {
				continue // cannot tolerate f errors with fewer points
			}
			// Only the constant term is needed, and the present-sender
			// set repeats across the n² dealings, so the fused decoder's
			// cached basis-evaluation tables turn the common case into a
			// handful of short dot products.
			v, err := ins.secDec.DecodeAt0(xs, ys, f, f)
			if err != nil {
				continue
			}
			ins.recovered[d][t] = v
			ins.recOK[d][t] = true
		}
	}
}

// Recovered returns the reconstructed secret of dealing (dealer, target)
// and whether reconstruction succeeded; valid after DeliverRecover.
func (ins *Instance) Recovered(dealer, target int) (field.Elem, bool) {
	n := ins.env.N
	if dealer < 0 || dealer >= n || target < 0 || target >= n {
		return 0, false
	}
	return ins.recovered[dealer][target], ins.recOK[dealer][target]
}

// agreeCount counts the points (xs[i], ys[i]) that lie on p.
func agreeCount(p field.Poly, xs, ys []field.Elem) int {
	c := 0
	for i := range xs {
		if p.Eval(xs[i]) == ys[i] {
			c++
		}
	}
	return c
}

// elemsValid reports whether every element is canonical (< P). The scan
// is branchless (and wide, via field.RangeOr) because it runs over every
// delivered matrix entry and honest traffic never trips it; see RangeOr
// for why the hi/borrow pair is sound over the full uint64 range.
func elemsValid(es []field.Elem) bool {
	hi, borrow := field.RangeOr(es)
	return hi>>31 == 0 && borrow>>63 == 0
}

func boolMatrixValid(m [][]bool, n int) bool {
	if len(m) != n {
		return false
	}
	for _, row := range m {
		if len(row) != n {
			return false
		}
	}
	return true
}

// echoValsPool recycles the n³ echo-evaluation buffers across instances
// and sessions; a buffer is only live from an instance's ComposeEcho to
// the end of its DeliverEcho the same beat, so the pool's working set is
// a handful of buffers per node rather than one per pipeline slot.
var echoValsPool sync.Pool

func getEchoVals(size int) []field.Elem {
	if v, ok := echoValsPool.Get().([]field.Elem); ok && cap(v) >= size {
		return v[:size]
	}
	return make([]field.Elem, size)
}

func putEchoVals(v []field.Elem) {
	if v != nil {
		echoValsPool.Put(v)
	}
}

// The matrix constructors slice n rows out of one flat backing array:
// two allocations per matrix instead of n+1 (a fresh Instance builds five
// of them every beat on every node).

func matrixPoly(n int) ([][]field.Poly, []field.Poly) {
	flat := make([]field.Poly, n*n)
	m := make([][]field.Poly, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m, flat
}

func matrixBool(n int) ([][]bool, []bool) {
	flat := make([]bool, n*n)
	m := make([][]bool, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m, flat
}

func matrixU8(n int) [][]uint8 {
	flat := make([]uint8, n*n)
	m := make([][]uint8, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

func matrixElem(n int) ([][]field.Elem, []field.Elem) {
	flat := make([]field.Elem, n*n)
	m := make([][]field.Elem, n)
	for i := range m {
		m[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return m, flat
}
