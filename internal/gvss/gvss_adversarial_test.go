package gvss

// Deeper adversarial tests of the GVSS grade and recovery semantics,
// beyond the basic suite in gvss_test.go.

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/shamir"
)

// TestEquivocatingDealerSplitDealing: a Byzantine dealer hands the two
// halves of the cluster rows from two *different* valid bivariate
// polynomials. Neither half can reach the n-f echo-consistency quorum, so
// the dealing must not reach GradeHigh anywhere — and whatever grade it
// gets, the high=>low-everywhere invariant must hold.
func TestEquivocatingDealerSplitDealing(t *testing.T) {
	n, f := 7, 2
	h := newHarness(t, 31, n, f, 6)
	rng := rand.New(rand.NewSource(77))
	// Prepare the equivocating dealer's two dealings.
	altA := make([]*shamir.Bivariate, n)
	altB := make([]*shamir.Bivariate, n)
	for tgt := 0; tgt < n; tgt++ {
		altA[tgt] = shamir.NewBivariate(rng, f, field.Reduce(rng.Uint64()))
		altB[tgt] = shamir.NewBivariate(rng, f, field.Reduce(rng.Uint64()))
	}
	h.run(func(round, from, to int, m proto.Message) proto.Message {
		if round != 0 {
			return m
		}
		src := altA
		if to >= n/2 {
			src = altB
		}
		rows := make([]field.Poly, n)
		for tgt := 0; tgt < n; tgt++ {
			rows[tgt] = src[tgt].Row(field.Elem(to + 1))
		}
		return ShareMsg{Rows: rows}
	})
	for tgt := 0; tgt < n; tgt++ {
		for _, u := range h.honest() {
			if g := h.ins[u].Grade(6, tgt); g == GradeHigh {
				t.Fatalf("split dealing reached grade high at node %d (target %d)", u, tgt)
			}
		}
	}
	// Honest dealings unaffected.
	for _, d := range h.honest() {
		for tgt := 0; tgt < n; tgt++ {
			for _, u := range h.honest() {
				if g := h.ins[u].Grade(d, tgt); g != GradeHigh {
					t.Fatalf("honest dealer %d lost grade high at node %d", d, u)
				}
			}
		}
	}
}

// TestGradeHighImpliesConsistentRecovery: across a battery of attack
// mixes, whenever two honest nodes both assign GradeHigh to a dealing,
// they must recover the same value — the property the coin's accept sets
// rely on (DESIGN.md §3).
func TestGradeHighImpliesConsistentRecovery(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		h := newHarness(t, int64(500+trial), 7, 2, 0, 6)
		grng := rand.New(rand.NewSource(int64(900 + trial)))
		h.run(func(round, from, to int, m proto.Message) proto.Message {
			switch grng.Intn(3) {
			case 0:
				return garbage(grng, m, 7, 2)
			case 1:
				return nil
			default:
				return m
			}
		})
		for d := 0; d < h.n; d++ {
			for tgt := 0; tgt < h.n; tgt++ {
				var val field.Elem
				have := false
				for _, u := range h.honest() {
					if h.ins[u].Grade(d, tgt) != GradeHigh {
						continue
					}
					v, ok := h.ins[u].Recovered(d, tgt)
					if !ok {
						t.Fatalf("trial %d: grade high but unrecoverable at node %d (dealing %d,%d)",
							trial, u, d, tgt)
					}
					if have && v != val {
						t.Fatalf("trial %d: grade-high recovery split on dealing (%d,%d)", trial, d, tgt)
					}
					val, have = v, true
				}
			}
		}
	}
}

// TestWithholdingBelowReconstructionThreshold: if fewer than 2f+1 nodes
// publish recover shares for a dealing, recovery must fail closed rather
// than produce a garbage value.
func TestWithholdingBelowReconstructionThreshold(t *testing.T) {
	n, f := 7, 2
	h := newHarness(t, 41, n, f, 5, 6)
	h.run(func(round, from, to int, m proto.Message) proto.Message {
		if round != 3 {
			return m
		}
		// Byzantine nodes suppress their recover shares for dealer 0's
		// dealings and additionally the tamper drops honest node 0's...
		// (we can only control Byzantine sends here, so just drop theirs;
		// the threshold test proper is below via direct delivery).
		return nil
	})
	// With 5 honest shares (>= 2f+1 = 5) recovery still succeeds:
	for tgt := 0; tgt < n; tgt++ {
		for _, u := range h.honest() {
			if _, ok := h.ins[u].Recovered(0, tgt); !ok {
				t.Fatalf("recovery failed with exactly 2f+1 shares at node %d", u)
			}
		}
	}

	// Direct threshold check: deliver only 2f shares to a fresh instance.
	env := proto.Env{N: n, F: f, ID: 0, Rng: rand.New(rand.NewSource(51))}
	ins := New(env, env.Rng)
	shares := make([][]field.Elem, n)
	has := make([][]bool, n)
	for d := 0; d < n; d++ {
		shares[d] = make([]field.Elem, n)
		has[d] = make([]bool, n)
		for tgt := 0; tgt < n; tgt++ {
			has[d][tgt] = true
		}
	}
	var inbox []proto.Recv
	for w := 0; w < 2*f; w++ { // one short of the 2f+1 minimum
		inbox = append(inbox, proto.Recv{From: w, Msg: RecoverMsg{Shares: shares, HasRow: has}})
	}
	ins.DeliverRecover(inbox)
	if _, ok := ins.Recovered(1, 1); ok {
		t.Fatal("recovery succeeded below the 2f+1 share threshold")
	}
}

// TestDealerTargetSecretsIndependent: the vector dealing must not leak
// one target's secret into another's reconstruction.
func TestDealerTargetSecretsIndependent(t *testing.T) {
	h := newHarness(t, 61, 4, 1)
	h.run(nil)
	d := 2
	for t1 := 0; t1 < h.n; t1++ {
		for t2 := t1 + 1; t2 < h.n; t2++ {
			v1, ok1 := h.ins[0].Recovered(d, t1)
			v2, ok2 := h.ins[0].Recovered(d, t2)
			if !ok1 || !ok2 {
				t.Fatal("recovery failed in clean run")
			}
			if v1 != h.ins[d].DealtSecret(t1) || v2 != h.ins[d].DealtSecret(t2) {
				t.Fatal("cross-target contamination in recovery")
			}
		}
	}
}
