package gvss

// Differential fuzzing for the fused validate+tally delivery sweeps.
// FuzzValidateSweep throws hostile echo traffic — short rows, malformed
// shapes, out-of-range elements (P exactly, high-bit values, garbage),
// flipped Has bits, duplicate senders, stripped and inconsistent flat
// mirrors — at DeliverEcho and requires that (a) the agreement tallies
// match a branchy scalar model of the documented semantics (validity
// gating, last-valid-wins, rollback exactness) and (b) a twin instance
// fed the same traffic normalized to row-view-only form (the gather
// path) resolves the identical rowOK matrix, proving the flat fast path
// and the gather fallback are interchangeable.
//
// TestDuplicateShareCannotClobberInstalledRows pins the Byzantine
// duplicate-sender fix in DeliverShare: a half-invalid duplicate runs
// the fused validator before any copy, so it cannot scribble over rows
// installed by an earlier valid message.

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/proto"
)

// hornerAt evaluates p at x with plain modular arithmetic — the test's
// independent oracle for "my row's value at sender w's point".
func hornerAt(p field.Poly, x uint64) field.Elem {
	var acc uint64
	for k := len(p) - 1; k >= 0; k-- {
		acc = (acc*x + uint64(p[k])) % uint64(field.P)
	}
	return field.Elem(acc)
}

// cloneEchoAliased deep-copies an echo message into the composed form:
// fresh flat backing with the row views aliasing it.
func cloneEchoAliased(m EchoMsg, n int) *EchoMsg {
	c := &EchoMsg{
		ValsFlat: make([]field.Elem, n*n),
		HasFlat:  make([]bool, n*n),
		Vals:     make([][]field.Elem, n),
		Has:      make([][]bool, n),
	}
	for d := 0; d < n; d++ {
		copy(c.ValsFlat[d*n:(d+1)*n], m.Vals[d])
		copy(c.HasFlat[d*n:(d+1)*n], m.Has[d])
		c.Vals[d] = c.ValsFlat[d*n : (d+1)*n]
		c.Has[d] = c.HasFlat[d*n : (d+1)*n]
	}
	return c
}

// unaliasRows gives m independent row views so flat mutations no longer
// show through them — the inconsistent-mirror case, where the flat form
// is authoritative.
func unaliasRows(m *EchoMsg) {
	for d := range m.Vals {
		m.Vals[d] = append([]field.Elem(nil), m.Vals[d]...)
		m.Has[d] = append([]bool(nil), m.Has[d]...)
	}
}

// normalizeEcho reduces a message to row-view-only form carrying its
// authoritative content (flat mirrors win when well-formed), or nil if
// the receiver would drop it as malformed.
func normalizeEcho(m *EchoMsg, n int) *EchoMsg {
	c := &EchoMsg{Vals: make([][]field.Elem, n), Has: make([][]bool, n)}
	if len(m.ValsFlat) == n*n && len(m.HasFlat) == n*n {
		for d := 0; d < n; d++ {
			c.Vals[d] = append([]field.Elem(nil), m.ValsFlat[d*n:(d+1)*n]...)
			c.Has[d] = append([]bool(nil), m.HasFlat[d*n:(d+1)*n]...)
		}
		return c
	}
	if len(m.Vals) != n || len(m.Has) != n {
		return nil
	}
	for d := 0; d < n; d++ {
		if len(m.Vals[d]) != n || len(m.Has[d]) != n {
			return nil
		}
		c.Vals[d] = append([]field.Elem(nil), m.Vals[d]...)
		c.Has[d] = append([]bool(nil), m.Has[d]...)
	}
	return c
}

// modelEchoTallies is the branchy scalar reference for DeliverEcho's
// sweep phase: per message, determine the authoritative matrix, drop
// malformed shapes, contribute to the tallies only if every element is
// canonical, and on a valid duplicate subtract the previous matrix's
// contribution before adding the new one (last valid wins).
func modelEchoTallies(n int, ev [][]field.Elem, inbox []proto.Recv) []uint64 {
	agree := make([]uint64, n*n)
	type mat struct {
		vals []field.Elem
		has  []bool
	}
	stored := make([]*mat, n)
	for _, r := range inbox {
		m, ok := AsEcho(r.Msg)
		if !ok || r.From < 0 || r.From >= n {
			continue
		}
		var vals []field.Elem
		var has []bool
		if len(m.ValsFlat) == n*n && len(m.HasFlat) == n*n {
			vals, has = m.ValsFlat, m.HasFlat
		} else {
			if len(m.Vals) != n || len(m.Has) != n {
				continue
			}
			bad := false
			for d := 0; d < n; d++ {
				if len(m.Vals[d]) != n || len(m.Has[d]) != n {
					bad = true
				}
			}
			if bad {
				continue
			}
			vals = make([]field.Elem, 0, n*n)
			has = make([]bool, 0, n*n)
			for d := 0; d < n; d++ {
				vals = append(vals, m.Vals[d]...)
				has = append(has, m.Has[d]...)
			}
		}
		valid := true
		for _, e := range vals {
			if uint64(e) >= field.P {
				valid = false
			}
		}
		if !valid {
			continue
		}
		w := r.From
		if old := stored[w]; old != nil {
			for i := range old.vals {
				if old.has[i] && old.vals[i] == ev[w][i] {
					agree[i]--
				}
			}
		}
		stored[w] = &mat{
			vals: append([]field.Elem(nil), vals...),
			has:  append([]bool(nil), has...),
		}
		for i := range vals {
			if has[i] && vals[i] == ev[w][i] {
				agree[i]++
			}
		}
	}
	return agree
}

// runShareRound drives one honest share round so every instance holds
// every row.
func runShareRound(h *harness) {
	sends := make([][]proto.Send, h.n)
	for i, ins := range h.ins {
		sends[i] = ins.ComposeShare()
	}
	inboxes := h.route(sends, nil)
	for i, ins := range h.ins {
		ins.DeliverShare(inboxes[i])
	}
}

// echoesToZero composes the echo round and collects each sender's
// message addressed to node 0, cloned into test-owned storage.
func echoesToZero(h *harness) []*EchoMsg {
	msgs := make([]*EchoMsg, h.n)
	for i, ins := range h.ins {
		for _, s := range ins.ComposeEcho() {
			if s.To == 0 || s.To == proto.Broadcast {
				m, ok := AsEcho(s.Msg)
				if !ok {
					continue
				}
				msgs[i] = cloneEchoAliased(m, h.n)
			}
		}
	}
	return msgs
}

func FuzzValidateSweep(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3})
	f.Add([]byte{1, 1, 0, 16, 99, 6, 2, 0, 0, 0, 3, 0, 0})
	f.Add([]byte{0, 4, 0, 0, 0, 2, 0, 5, 77, 6, 1, 0, 0, 0, 1, 3, 200})
	f.Add([]byte{1, 5, 2, 1, 3, 7, 0, 9, 9, 6, 3, 0, 0, 2, 3, 8, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := 4
		if data[0]&1 == 1 {
			n = 7
		}
		fByz := (n - 1) / 3
		nn := n * n

		// Twin harnesses from the same seed: identical dealings, rows and
		// compose-time evaluations.
		hA := newHarness(t, 31, n, fByz)
		hB := newHarness(t, 31, n, fByz)
		runShareRound(hA)
		runShareRound(hB)
		inboxA := []proto.Recv{}
		for w, m := range echoesToZero(hA) {
			inboxA = append(inboxA, proto.Recv{From: w, Msg: m})
		}
		echoesToZero(hB) // keep hB's instance state in lockstep with hA's

		// Apply fuzz-directed hostile edits, 4 bytes per op, capped so a
		// long input cannot blow the per-exec budget.
		ops := data[1:]
		for len(ops) >= 4 && len(inboxA) > 0 {
			op, tgt, pos, val := ops[0], ops[1], ops[2], ops[3]
			ops = ops[4:]
			idx := int(tgt) % len(inboxA)
			r := &inboxA[idx]
			m := r.Msg.(*EchoMsg)
			if op%8 < 4 && len(m.ValsFlat) != nn {
				continue // flats already stripped; nothing to corrupt
			}
			switch op % 8 {
			case 0: // exactly P: only the borrow half of the range check sees it
				if val&1 == 1 {
					unaliasRows(m)
				}
				m.ValsFlat[int(pos)%nn] = field.Elem(field.P)
			case 1: // high bit set: the hi half sees it
				if val&1 == 1 {
					unaliasRows(m)
				}
				m.ValsFlat[int(pos)%nn] = field.Elem(uint64(1)<<31 | uint64(val))
			case 2: // valid but disagreeing value
				if val&1 == 1 {
					unaliasRows(m)
				}
				m.ValsFlat[int(pos)%nn] = field.Elem(uint64(val) % field.P)
			case 3:
				if val&1 == 1 {
					unaliasRows(m)
				}
				m.HasFlat[int(pos)%nn] = !m.HasFlat[int(pos)%nn]
			case 4: // strip the flat mirrors: force the gather path
				m.ValsFlat, m.HasFlat = nil, nil
			case 5: // short row with no flats: malformed, must be dropped
				unaliasRows(m)
				m.ValsFlat, m.HasFlat = nil, nil
				if row := m.Vals[int(pos)%n]; int(val)%n <= len(row) {
					m.Vals[int(pos)%n] = row[:int(val)%n]
				}
			case 6: // duplicate sender
				if len(inboxA) < 4*n {
					dup := normalizeEcho(m, n)
					if dup == nil {
						break
					}
					dup2 := cloneEchoAliased(*dup, n)
					if val&1 == 1 {
						dup2.ValsFlat, dup2.HasFlat = nil, nil
					}
					inboxA = append(inboxA, proto.Recv{From: r.From, Msg: dup2})
				}
			case 7: // out-of-range sender: ignored entirely
				r.From = n + int(pos)
			}
		}

		// Independent oracle for my rows' values at each sender's point.
		ins0 := hA.ins[0]
		ev := make([][]field.Elem, n)
		for w := 0; w < n; w++ {
			ev[w] = make([]field.Elem, nn)
			for d := 0; d < n; d++ {
				for tt := 0; tt < n; tt++ {
					ev[w][d*n+tt] = hornerAt(ins0.row(d*n+tt), uint64(w+1))
				}
			}
		}
		want := modelEchoTallies(n, ev, inboxA)

		// The twin inbox: same authoritative content, row views only.
		inboxB := []proto.Recv{}
		for _, r := range inboxA {
			if r.From < 0 || r.From >= n {
				continue
			}
			if c := normalizeEcho(r.Msg.(*EchoMsg), n); c != nil {
				inboxB = append(inboxB, proto.Recv{From: r.From, Msg: c})
			}
		}

		ins0.DeliverEcho(inboxA)
		hB.ins[0].DeliverEcho(inboxB)

		for i := range want {
			if ins0.echoAgree[i] != want[i] {
				t.Fatalf("flat path: agree[%d]=%d, model %d", i, ins0.echoAgree[i], want[i])
			}
			if hB.ins[0].echoAgree[i] != want[i] {
				t.Fatalf("gather path: agree[%d]=%d, model %d", i, hB.ins[0].echoAgree[i], want[i])
			}
		}
		quorum := n - fByz
		for d := 0; d < n; d++ {
			for tt := 0; tt < n; tt++ {
				if ins0.rowOKFlat[d*n+tt] != hB.ins[0].rowOKFlat[d*n+tt] {
					t.Fatalf("rowOK[%d][%d] diverged: flat %v, gather %v",
						d, tt, ins0.rowOKFlat[d*n+tt], hB.ins[0].rowOKFlat[d*n+tt])
				}
				if int(want[d*n+tt]) >= quorum && !ins0.rowOKFlat[d*n+tt] {
					t.Fatalf("rowOK[%d][%d] false with %d agreeing echoes (quorum %d)",
						d, tt, want[d*n+tt], quorum)
				}
			}
		}
	})
}

// mkShareRows builds a full, canonical share payload derived from base.
func mkShareRows(n, f int, base uint64) []field.Poly {
	rows := make([]field.Poly, n)
	for t := range rows {
		row := make(field.Poly, f+1)
		for k := range row {
			row[k] = field.Elem((base + uint64(t*31+k*7+1)) % field.P)
		}
		rows[t] = row
	}
	return rows
}

func TestDuplicateShareCannotClobberInstalledRows(t *testing.T) {
	n, f := 4, 1
	env := proto.Env{N: n, F: f, ID: 0, Rng: rand.New(rand.NewSource(3))}
	ins := New(env, env.Rng)

	good := mkShareRows(n, f, 100)
	// Half-invalid duplicate: every row well-shaped and canonical except
	// an out-of-range element in the LAST row — a copy-then-validate
	// implementation would have overwritten rows 0..n-2 before noticing.
	clobber := mkShareRows(n, f, 900000)
	clobber[n-1][0] = field.Elem(field.P)
	ins.DeliverShare([]proto.Recv{
		{From: 1, Msg: ShareMsg{Rows: good}},
		{From: 1, Msg: ShareMsg{Rows: clobber}},
	})
	for tt := 0; tt < n; tt++ {
		for k := 0; k <= f; k++ {
			if ins.row(1*n + tt)[k] != good[tt][k] {
				t.Fatalf("invalid duplicate clobbered row %d coef %d: %d, want %d",
					tt, k, ins.row(1*n + tt)[k], good[tt][k])
			}
		}
	}

	// A short-row duplicate is equally powerless.
	short := mkShareRows(n, f, 500)
	short[0] = short[0][:f]
	ins.DeliverShare([]proto.Recv{
		{From: 1, Msg: ShareMsg{Rows: good}},
		{From: 1, Msg: ShareMsg{Rows: short}},
	})
	for tt := 0; tt < n; tt++ {
		for k := 0; k <= f; k++ {
			if ins.row(1*n + tt)[k] != good[tt][k] {
				t.Fatalf("short duplicate clobbered row %d coef %d", tt, k)
			}
		}
	}

	// A fully valid duplicate replaces the installed rows (last wins).
	repl := mkShareRows(n, f, 7777)
	ins.DeliverShare([]proto.Recv{
		{From: 1, Msg: ShareMsg{Rows: good}},
		{From: 1, Msg: ShareMsg{Rows: repl}},
	})
	for tt := 0; tt < n; tt++ {
		for k := 0; k <= f; k++ {
			if ins.row(1*n + tt)[k] != repl[tt][k] {
				t.Fatalf("valid duplicate did not replace row %d coef %d", tt, k)
			}
		}
	}

	// And an invalid FIRST message installs nothing at all.
	ins2 := New(proto.Env{N: n, F: f, ID: 0, Rng: rand.New(rand.NewSource(4))}, rand.New(rand.NewSource(4)))
	ins2.DeliverShare([]proto.Recv{{From: 2, Msg: ShareMsg{Rows: clobber}}})
	for tt := 0; tt < n; tt++ {
		if ins2.row(2*n+tt) != nil {
			t.Fatalf("invalid first message left row %d installed", tt)
		}
	}
}
