package gvss

import (
	"math/rand"
	"testing"

	"ssbyzclock/internal/field"
	"ssbyzclock/internal/proto"
)

// harness drives n Instances through the four rounds, letting a test
// mutate or replace the messages of Byzantine senders between rounds.
type harness struct {
	n, f int
	ins  []*Instance
	byz  map[int]bool
}

func newHarness(t *testing.T, seed int64, n, f int, byz ...int) *harness {
	t.Helper()
	h := &harness{n: n, f: f, byz: map[int]bool{}}
	for _, b := range byz {
		h.byz[b] = true
	}
	for i := 0; i < n; i++ {
		env := proto.Env{N: n, F: f, ID: i, Rng: rand.New(rand.NewSource(seed + int64(i)))}
		h.ins = append(h.ins, New(env, env.Rng))
	}
	return h
}

// route fans out per-node sends into per-node inboxes, expanding
// broadcasts. tamper, if non-nil, can rewrite (or drop, by returning nil)
// each message from a Byzantine sender per recipient.
func (h *harness) route(sends [][]proto.Send, tamper func(from, to int, m proto.Message) proto.Message) [][]proto.Recv {
	inboxes := make([][]proto.Recv, h.n)
	deliver := func(from, to int, m proto.Message) {
		if h.byz[from] && tamper != nil {
			m = tamper(from, to, m)
			if m == nil {
				return
			}
		}
		inboxes[to] = append(inboxes[to], proto.Recv{From: from, Msg: m})
	}
	for from, ss := range sends {
		for _, s := range ss {
			if s.To == proto.Broadcast {
				for to := 0; to < h.n; to++ {
					deliver(from, to, s.Msg)
				}
			} else if s.To >= 0 && s.To < h.n {
				deliver(from, s.To, s.Msg)
			}
		}
	}
	return inboxes
}

// run executes all four rounds with the given tamper function.
func (h *harness) run(tamper func(round, from, to int, m proto.Message) proto.Message) {
	rounds := []struct {
		compose func(*Instance) []proto.Send
		deliver func(*Instance, []proto.Recv)
	}{
		{(*Instance).ComposeShare, (*Instance).DeliverShare},
		{(*Instance).ComposeEcho, (*Instance).DeliverEcho},
		{(*Instance).ComposeVote, (*Instance).DeliverVote},
		{(*Instance).ComposeRecover, (*Instance).DeliverRecover},
	}
	for ri, r := range rounds {
		sends := make([][]proto.Send, h.n)
		for i, ins := range h.ins {
			sends[i] = r.compose(ins)
		}
		var t2 func(from, to int, m proto.Message) proto.Message
		if tamper != nil {
			t2 = func(from, to int, m proto.Message) proto.Message {
				return tamper(ri, from, to, m)
			}
		}
		inboxes := h.route(sends, t2)
		for i, ins := range h.ins {
			r.deliver(ins, inboxes[i])
		}
	}
}

func (h *harness) honest() []int {
	var out []int
	for i := 0; i < h.n; i++ {
		if !h.byz[i] {
			out = append(out, i)
		}
	}
	return out
}

func TestAllHonestFullRecovery(t *testing.T) {
	h := newHarness(t, 1, 7, 2)
	h.run(nil)
	for d := 0; d < h.n; d++ {
		for tgt := 0; tgt < h.n; tgt++ {
			want := h.ins[d].DealtSecret(tgt)
			for _, u := range h.honest() {
				if g := h.ins[u].Grade(d, tgt); g != GradeHigh {
					t.Fatalf("node %d grade(%d,%d)=%d want high", u, d, tgt, g)
				}
				got, ok := h.ins[u].Recovered(d, tgt)
				if !ok || got != want {
					t.Fatalf("node %d recovered(%d,%d)=(%d,%v) want %d", u, d, tgt, got, ok, want)
				}
			}
		}
	}
}

func TestHonestDealerSurvivesByzantineNoise(t *testing.T) {
	// Byzantine nodes replace every message with random garbage of valid
	// shape. Honest dealers' dealings must still reach grade 2 with exact
	// recovery at every honest node.
	for _, cfg := range []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}} {
		byz := make([]int, cfg.f)
		for i := range byz {
			byz[i] = i // nodes 0..f-1 are Byzantine
		}
		h := newHarness(t, 7, cfg.n, cfg.f, byz...)
		grng := rand.New(rand.NewSource(99))
		h.run(func(round, from, to int, m proto.Message) proto.Message {
			return garbage(grng, m, cfg.n, cfg.f)
		})
		for _, d := range h.honest() {
			for tgt := 0; tgt < h.n; tgt++ {
				want := h.ins[d].DealtSecret(tgt)
				for _, u := range h.honest() {
					if g := h.ins[u].Grade(d, tgt); g != GradeHigh {
						t.Fatalf("n=%d f=%d: node %d grade(%d,%d)=%d want high", cfg.n, cfg.f, u, d, tgt, g)
					}
					got, ok := h.ins[u].Recovered(d, tgt)
					if !ok || got != want {
						t.Fatalf("n=%d f=%d: node %d wrong recovery of honest dealer %d", cfg.n, cfg.f, u, d)
					}
				}
			}
		}
	}
}

func TestSilentByzantine(t *testing.T) {
	// Byzantine nodes drop all their messages. Honest dealings must still
	// reach grade 2 and recover exactly.
	h := newHarness(t, 3, 7, 2, 0, 1)
	h.run(func(round, from, to int, m proto.Message) proto.Message { return nil })
	for _, d := range h.honest() {
		for tgt := 0; tgt < h.n; tgt++ {
			for _, u := range h.honest() {
				if g := h.ins[u].Grade(d, tgt); g != GradeHigh {
					t.Fatalf("node %d grade(%d,%d)=%d want high", u, d, tgt, g)
				}
				got, ok := h.ins[u].Recovered(d, tgt)
				if !ok || got != h.ins[d].DealtSecret(tgt) {
					t.Fatalf("node %d failed recovery of honest dealer %d", u, d)
				}
			}
		}
		// Byzantine dealers sent nothing: grade 0 everywhere.
		for _, u := range h.honest() {
			if g := h.ins[u].Grade(0, 0); g != GradeNone {
				t.Fatalf("silent dealer got grade %d at node %d", g, u)
			}
		}
	}
}

func TestRowFixRepairsWithheldShare(t *testing.T) {
	// A Byzantine dealer sends correct shares to everyone except one
	// honest victim (dropped). The victim must repair its rows from the
	// echo round and still end with a validated row and exact recovery —
	// the row-fix mechanism working as designed.
	h := newHarness(t, 5, 7, 2, 3)
	const victim = 0
	h.run(func(round, from, to int, m proto.Message) proto.Message {
		if round == 0 && to == victim {
			return nil // withhold the victim's shares
		}
		return m
	})
	for tgt := 0; tgt < h.n; tgt++ {
		want := h.ins[3].DealtSecret(tgt)
		for _, u := range h.honest() {
			if g := h.ins[u].Grade(3, tgt); g != GradeHigh {
				t.Fatalf("node %d grade(3,%d)=%d want high", u, tgt, g)
			}
			got, ok := h.ins[u].Recovered(3, tgt)
			if !ok || got != want {
				t.Fatalf("node %d wrong recovery despite row fix", u)
			}
		}
	}
}

func TestGradeSemanticsHighImpliesLowEverywhere(t *testing.T) {
	// Byzantine dealer equivocates: valid consistent dealing to one half,
	// a different valid dealing to the other half; Byzantine voters vote
	// strategically. Invariant: if any honest node grades (d,t) high,
	// every honest node grades it >= low.
	grng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		h := newHarness(t, int64(100+trial), 7, 2, 0, 1)
		h.run(func(round, from, to int, m proto.Message) proto.Message {
			if _, isVote := AsVote(m); isVote {
				// Vote yes/no at random per recipient (equivocation).
				ok := make([][]bool, h.n)
				for d := range ok {
					ok[d] = make([]bool, h.n)
					for tt := range ok[d] {
						ok[d][tt] = grng.Intn(2) == 0
					}
				}
				return VoteMsg{OK: ok}
			}
			return m
		})
		for d := 0; d < h.n; d++ {
			for tgt := 0; tgt < h.n; tgt++ {
				anyHigh := false
				for _, u := range h.honest() {
					if h.ins[u].Grade(d, tgt) == GradeHigh {
						anyHigh = true
					}
				}
				if !anyHigh {
					continue
				}
				for _, u := range h.honest() {
					if h.ins[u].Grade(d, tgt) == GradeNone {
						t.Fatalf("trial %d: grade high at one honest node, none at node %d (dealing %d,%d)",
							trial, u, d, tgt)
					}
				}
			}
		}
	}
}

func TestRecoverToleratesCorruptShares(t *testing.T) {
	// Byzantine nodes send corrupted recover shares for honest dealings.
	h := newHarness(t, 9, 10, 3, 0, 1, 2)
	grng := rand.New(rand.NewSource(21))
	h.run(func(round, from, to int, m proto.Message) proto.Message {
		if mm, ok := AsRecover(m); ok {
			out := RecoverMsg{Shares: make([][]field.Elem, h.n), HasRow: make([][]bool, h.n)}
			for d := 0; d < h.n; d++ {
				out.Shares[d] = make([]field.Elem, h.n)
				out.HasRow[d] = make([]bool, h.n)
				for tt := 0; tt < h.n; tt++ {
					out.Shares[d][tt] = field.Reduce(grng.Uint64())
					out.HasRow[d][tt] = true
				}
			}
			_ = mm
			return out
		}
		return m
	})
	for _, d := range h.honest() {
		for tgt := 0; tgt < h.n; tgt++ {
			want := h.ins[d].DealtSecret(tgt)
			for _, u := range h.honest() {
				got, ok := h.ins[u].Recovered(d, tgt)
				if !ok || got != want {
					t.Fatalf("node %d recovery poisoned by corrupt shares (dealer %d)", u, d)
				}
			}
		}
	}
}

func TestMalformedMessagesDropped(t *testing.T) {
	// Shape-invalid messages (wrong dimensions, out-of-range elements)
	// must be ignored without panicking.
	h := newHarness(t, 13, 4, 1, 3)
	h.run(func(round, from, to int, m proto.Message) proto.Message {
		switch round {
		case 0:
			return ShareMsg{Rows: []field.Poly{{field.Elem(field.P + 5)}}}
		case 1:
			return EchoMsg{Vals: [][]field.Elem{{1, 2}}}
		case 2:
			return VoteMsg{OK: [][]bool{{true}}}
		default:
			return RecoverMsg{Shares: nil, HasRow: nil}
		}
	})
	for _, d := range h.honest() {
		for tgt := 0; tgt < h.n; tgt++ {
			for _, u := range h.honest() {
				if g := h.ins[u].Grade(d, tgt); g != GradeHigh {
					t.Fatalf("node %d grade(%d,%d)=%d want high", u, d, tgt, g)
				}
			}
		}
	}
}

// garbage returns a shape-valid random message of the same type as m,
// normalizing the pointer form the pooled compose paths produce.
func garbage(rng *rand.Rand, m proto.Message, n, f int) proto.Message {
	if s, ok := AsShare(m); ok {
		m = s
	} else if e, ok := AsEcho(m); ok {
		m = e
	} else if v, ok := AsVote(m); ok {
		m = v
	} else if r, ok := AsRecover(m); ok {
		m = r
	}
	switch m.(type) {
	case ShareMsg:
		rows := make([]field.Poly, n)
		for t := range rows {
			rows[t] = make(field.Poly, f+1)
			for c := range rows[t] {
				rows[t][c] = field.Reduce(rng.Uint64())
			}
		}
		return ShareMsg{Rows: rows}
	case EchoMsg:
		vals := make([][]field.Elem, n)
		has := make([][]bool, n)
		for d := range vals {
			vals[d] = make([]field.Elem, n)
			has[d] = make([]bool, n)
			for t := range vals[d] {
				vals[d][t] = field.Reduce(rng.Uint64())
				has[d][t] = true
			}
		}
		return EchoMsg{Vals: vals, Has: has}
	case VoteMsg:
		ok := make([][]bool, n)
		for d := range ok {
			ok[d] = make([]bool, n)
			for t := range ok[d] {
				ok[d][t] = rng.Intn(2) == 0
			}
		}
		return VoteMsg{OK: ok}
	case RecoverMsg:
		shares := make([][]field.Elem, n)
		has := make([][]bool, n)
		for d := range shares {
			shares[d] = make([]field.Elem, n)
			has[d] = make([]bool, n)
			for t := range shares[d] {
				shares[d][t] = field.Reduce(rng.Uint64())
				has[d][t] = true
			}
		}
		return RecoverMsg{Shares: shares, HasRow: has}
	default:
		return m
	}
}

func BenchmarkFullSessionN7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := &harness{n: 7, f: 2, byz: map[int]bool{}}
		for j := 0; j < 7; j++ {
			env := proto.Env{N: 7, F: 2, ID: j, Rng: rand.New(rand.NewSource(int64(i*7 + j)))}
			h.ins = append(h.ins, New(env, env.Rng))
		}
		h.run(nil)
	}
}

// TestElemsValidAdversarial pins the branchless canonical-range scan
// against the full uint64 range, including the wrap-around values a
// Byzantine in-memory sender can place in a message (the sim engine does
// not route adversary messages through wire.Decode's Reduce).
func TestElemsValidAdversarial(t *testing.T) {
	ok := func(es ...field.Elem) bool { return elemsValid(es) }
	if !ok(0, 1, field.Elem(field.P-1)) {
		t.Fatal("canonical values rejected")
	}
	for _, bad := range []uint64{
		field.P,                  // the one non-canonical value below 2^31
		field.P + 1,              //
		1 << 31,                  //
		1 << 62,                  //
		1<<63 + field.P,          // wraps the naive borrow check
		1<<63 + field.P - 2,      //
		^uint64(0),               // all ones
		^uint64(0) - field.P + 1, //
	} {
		if ok(1, field.Elem(bad), 2) {
			t.Fatalf("non-canonical value %d accepted", bad)
		}
	}
}
