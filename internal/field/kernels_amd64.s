//go:build amd64

#include "textflag.h"

// AVX2 evalColumns kernel. Four 62-bit Mersenne-31 products per
// VPMULUDQ (Elem is canonical < 2^31 in a 64-bit lane, so the low
// dwords multiply directly), two ymm accumulators per 8-point block,
// coefficients consumed in quads under the quad budget documented in
// kernels.go: a folded accumulator (< 2^33 + 2^31) plus four products
// (<= 4(P-1)^2) stays below 2^64, so one fold per four coefficient rows
// keeps every lane exact.

DATA pvec<>+0x00(SB)/8, $0x000000007fffffff
DATA pvec<>+0x08(SB)/8, $0x000000007fffffff
DATA pvec<>+0x10(SB)/8, $0x000000007fffffff
DATA pvec<>+0x18(SB)/8, $0x000000007fffffff
GLOBL pvec<>(SB), RODATA|NOPTR, $32

DATA pm1vec<>+0x00(SB)/8, $0x000000007ffffffe
DATA pm1vec<>+0x08(SB)/8, $0x000000007ffffffe
DATA pm1vec<>+0x10(SB)/8, $0x000000007ffffffe
DATA pm1vec<>+0x18(SB)/8, $0x000000007ffffffe
GLOBL pm1vec<>(SB), RODATA|NOPTR, $32

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// One coefficient row: broadcast coeffs[k], multiply-accumulate both
// ymm halves of the 8-point block, advance the cursors.
#define MULROW \
	VPBROADCASTQ (R12), Y4 \
	VPMULUDQ (R11), Y4, Y6 \
	VPADDQ Y6, Y0, Y0      \
	VPMULUDQ 32(R11), Y4, Y7 \
	VPADDQ Y7, Y1, Y1      \
	ADDQ $8, R12           \
	ADDQ DX, R11

// Lazy fold of both accumulators: acc = (acc & P) + (acc >> 31).
#define FOLD \
	VPSRLQ $31, Y0, Y6 \
	VPAND Y5, Y0, Y0   \
	VPADDQ Y6, Y0, Y0  \
	VPSRLQ $31, Y1, Y7 \
	VPAND Y5, Y1, Y1   \
	VPADDQ Y7, Y1, Y1

// func evalColumnsAVX2Blocks(dst, coeffs, tab []Elem, n int)
// Computes dst[j] = sum_k coeffs[k]*tab[k*n+j] for j in [0, n&^7).
TEXT ·evalColumnsAVX2Blocks(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), DI
	MOVQ coeffs_base+24(FP), SI
	MOVQ coeffs_len+32(FP), R8
	MOVQ tab_base+48(FP), BX
	MOVQ n+72(FP), CX
	MOVQ CX, DX
	SHLQ $3, DX              // DX = row stride in bytes (n*8)
	MOVQ CX, R13
	ANDQ $-8, R13            // R13 = n &^ 7 (block end)
	VMOVDQU pvec<>+0(SB), Y5 // Y5 = P lanes
	VMOVDQU pm1vec<>+0(SB), Y8 // Y8 = P-1 lanes
	XORQ R9, R9              // R9 = j

blockloop:
	CMPQ R9, R13
	JGE done
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	LEAQ (BX)(R9*8), R11     // R11 = &tab[j] (row k=0)
	MOVQ SI, R12             // R12 = coeffs cursor
	MOVQ R8, R10             // R10 = remaining coefficients

quadloop:
	CMPQ R10, $4
	JLT pair
	MULROW
	MULROW
	MULROW
	MULROW
	FOLD
	SUBQ $4, R10
	JMP quadloop

pair:
	CMPQ R10, $2
	JLT single
	MULROW
	MULROW
	FOLD
	SUBQ $2, R10

single:
	TESTQ R10, R10
	JEQ finish
	MULROW
	FOLD

finish:
	// Canonicalize: one more fold brings each lane below P+5, then a
	// single conditional subtract of P.
	FOLD
	VPCMPGTQ Y8, Y0, Y6      // lanes where acc > P-1
	VPAND Y5, Y6, Y6
	VPSUBQ Y6, Y0, Y0
	VPCMPGTQ Y8, Y1, Y7
	VPAND Y5, Y7, Y7
	VPSUBQ Y7, Y1, Y1
	VMOVDQU Y0, (DI)(R9*8)
	VMOVDQU Y1, 32(DI)(R9*8)
	ADDQ $8, R9
	JMP blockloop

done:
	VZEROUPPER
	RET

// func accumNeqBlocks(bad []uint64, a, b []Elem, n4 int)
// bad[i] += 1 for every i in [0, n4) where a[i] != b[i].
TEXT ·accumNeqBlocks(SB), NOSPLIT, $0-80
	MOVQ bad_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ n4+72(FP), CX
	VPCMPEQD Y3, Y3, Y3 // all ones
	VPSRLQ $63, Y3, Y3  // lane = 1
	XORQ AX, AX

neqloop:
	CMPQ AX, CX
	JGE neqdone
	VMOVDQU (SI)(AX*8), Y0
	VMOVDQU (BX)(AX*8), Y1
	VPCMPEQQ Y1, Y0, Y2 // -1 where equal
	VPADDQ Y3, Y2, Y2   // 0 where equal, 1 where different
	VMOVDQU (DI)(AX*8), Y4
	VPADDQ Y2, Y4, Y4
	VMOVDQU Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP neqloop

neqdone:
	VZEROUPPER
	RET

// func sweepTallyBlocks(agree []uint64, ev, vals []Elem, has []bool, dirBits uint64, n4 int) (hi, borrow uint64)
// One fused pass over [0, n4): OR-accumulates the canonical-range
// masks of vals (hi |= v, borrow |= (P-1)-v) and adds (dirBits & mask)
// to agree[i], where mask is all-ones iff vals[i] == ev[i] && has[i].
TEXT ·sweepTallyBlocks(SB), NOSPLIT, $0-128
	MOVQ agree_base+0(FP), DI
	MOVQ ev_base+24(FP), SI
	MOVQ vals_base+48(FP), BX
	MOVQ has_base+72(FP), R8
	VPBROADCASTQ dirBits+96(FP), Y10
	MOVQ n4+104(FP), CX
	VMOVDQU pm1vec<>+0(SB), Y9 // P-1 lanes
	VPXOR Y11, Y11, Y11        // hi accumulator
	VPXOR Y12, Y12, Y12        // borrow accumulator
	VPXOR Y13, Y13, Y13        // zero
	XORQ AX, AX

swloop:
	CMPQ AX, CX
	JGE swdone
	VMOVDQU (BX)(AX*8), Y0 // vals
	VPOR Y0, Y11, Y11
	VPSUBQ Y0, Y9, Y1      // (P-1) - v
	VPOR Y1, Y12, Y12
	VMOVDQU (SI)(AX*8), Y2 // ev
	VPCMPEQQ Y2, Y0, Y3    // -1 where equal
	VPMOVZXBQ (R8)(AX*1), Y4 // has bytes -> 0/1 lanes
	VPSUBQ Y4, Y13, Y5     // 0/-1 mask
	VPAND Y5, Y3, Y3       // -1 iff equal && has
	VPAND Y10, Y3, Y3      // +1 or -1 (or 0)
	VMOVDQU (DI)(AX*8), Y6
	VPADDQ Y3, Y6, Y6
	VMOVDQU Y6, (DI)(AX*8)
	ADDQ $4, AX
	JMP swloop

swdone:
	VEXTRACTI128 $1, Y11, X0
	VPOR X0, X11, X11
	VPSRLDQ $8, X11, X0
	VPOR X0, X11, X11
	MOVQ X11, AX
	MOVQ AX, hi+112(FP)
	VEXTRACTI128 $1, Y12, X0
	VPOR X0, X12, X12
	VPSRLDQ $8, X12, X0
	VPOR X0, X12, X12
	MOVQ X12, AX
	MOVQ AX, borrow+120(FP)
	VZEROUPPER
	RET

// func rangeOrBlocks(es []Elem, n4 int) (hi, borrow uint64)
// OR-accumulates hi |= es[i] and borrow |= (P-1)-es[i] over [0, n4).
TEXT ·rangeOrBlocks(SB), NOSPLIT, $0-48
	MOVQ es_base+0(FP), BX
	MOVQ n4+24(FP), CX
	VMOVDQU pm1vec<>+0(SB), Y9 // P-1 lanes
	VPXOR Y11, Y11, Y11        // hi accumulator
	VPXOR Y12, Y12, Y12        // borrow accumulator
	XORQ AX, AX

roloop:
	CMPQ AX, CX
	JGE rodone
	VMOVDQU (BX)(AX*8), Y0
	VPOR Y0, Y11, Y11
	VPSUBQ Y0, Y9, Y1 // (P-1) - v
	VPOR Y1, Y12, Y12
	ADDQ $4, AX
	JMP roloop

rodone:
	VEXTRACTI128 $1, Y11, X0
	VPOR X0, X11, X11
	VPSRLDQ $8, X11, X0
	VPOR X0, X11, X11
	MOVQ X11, AX
	MOVQ AX, hi+32(FP)
	VEXTRACTI128 $1, Y12, X0
	VPOR X0, X12, X12
	VPSRLDQ $8, X12, X0
	VPOR X0, X12, X12
	MOVQ X12, AX
	MOVQ AX, borrow+40(FP)
	VZEROUPPER
	RET

// func accumBoolBlocks(cnt []uint64, bs []bool, n4 int)
// cnt[i] += bs[i] (0/1) for i in [0, n4).
TEXT ·accumBoolBlocks(SB), NOSPLIT, $0-56
	MOVQ cnt_base+0(FP), DI
	MOVQ bs_base+24(FP), SI
	MOVQ n4+48(FP), CX
	XORQ AX, AX

abloop:
	CMPQ AX, CX
	JGE abdone
	VPMOVZXBQ (SI)(AX*1), Y0
	VMOVDQU (DI)(AX*8), Y1
	VPADDQ Y0, Y1, Y1
	VMOVDQU Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP abloop

abdone:
	VZEROUPPER
	RET

// func countBoolBlocks(bs []bool, n4 int) uint64
// Returns the number of true bytes in bs[0:n4].
TEXT ·countBoolBlocks(SB), NOSPLIT, $0-40
	MOVQ bs_base+0(FP), SI
	MOVQ n4+24(FP), CX
	VPXOR Y1, Y1, Y1
	XORQ AX, AX

cbloop:
	CMPQ AX, CX
	JGE cbdone
	VPMOVZXBQ (SI)(AX*1), Y0
	VPADDQ Y0, Y1, Y1
	ADDQ $4, AX
	JMP cbloop

cbdone:
	VEXTRACTI128 $1, Y1, X0
	VPADDQ X0, X1, X1
	VPSRLDQ $8, X1, X0
	VPADDQ X0, X1, X1
	MOVQ X1, AX
	MOVQ AX, ret+32(FP)
	VZEROUPPER
	RET
