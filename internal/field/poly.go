package field

import "math/rand"

// Poly is a univariate polynomial over GF(P), coefficient form, index i
// holding the coefficient of x^i. The zero-length polynomial is the zero
// polynomial.
type Poly []Elem

// RandomPoly returns a uniformly random polynomial of the given degree
// whose constant term is the supplied secret. degree must be >= 0.
func RandomPoly(rng *rand.Rand, degree int, secret Elem) Poly {
	p := make(Poly, degree+1)
	p[0] = secret
	for i := 1; i <= degree; i++ {
		p[i] = Elem(rng.Uint64() % P)
	}
	return p
}

// Eval evaluates p at x by Horner's rule with lazy Mersenne reduction:
// the accumulator is kept in the folded (<2^32) range — multiplying it by
// a canonical x stays under 2^63, so two folds per step replace the
// division and canonicalization happens once at the end.
func (p Poly) Eval(x Elem) Elem {
	var acc uint64
	xx := uint64(x)
	for i := len(p) - 1; i >= 0; i-- {
		acc = fold(fold(acc*xx + uint64(p[i])))
	}
	return reduceWide(acc)
}

// Degree returns the degree of p, treating trailing zero coefficients as
// absent. The zero polynomial has degree -1.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy (guides: copy slices at boundaries).
func (p Poly) Clone() Poly {
	if p == nil {
		return nil
	}
	out := make(Poly, len(p))
	copy(out, p)
	return out
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through the given points, by Lagrange interpolation. xs must be distinct
// and len(xs) == len(ys); it panics otherwise, as callers construct the
// point sets locally.
//
// The work happens in the Recon fast path: Lagrange basis coefficients
// are precomputed per x-set (cached process-wide for the share-index sets
// the coin pipeline uses) and denominators are batch-inverted, so the
// per-call cost is one O(k^2) mul-add sweep. interpolateRef below is the
// original implementation, kept as the differential-test oracle.
func Interpolate(xs, ys []Elem) Poly {
	if len(xs) != len(ys) {
		panic("field: interpolate length mismatch")
	}
	return ReconFor(xs).Interpolate(ys)
}

// interpolateRef is the allocation-heavy reference Lagrange interpolation
// the fast path replaced; differential tests pit Interpolate and Recon
// against it.
func interpolateRef(xs, ys []Elem) Poly {
	if len(xs) != len(ys) {
		panic("field: interpolate length mismatch")
	}
	n := len(xs)
	result := make(Poly, n)
	// Accumulate y_i * prod_{j != i} (x - x_j) / (x_i - x_j).
	for i := 0; i < n; i++ {
		// Numerator polynomial prod_{j != i}(x - x_j), built incrementally.
		num := Poly{1}
		denom := Elem(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			num = num.mulLinear(Neg(xs[j]))
			denom = Mul(denom, Sub(xs[i], xs[j]))
		}
		scale := Mul(ys[i], Inv(denom))
		for d := 0; d < len(num); d++ {
			result[d] = Add(result[d], Mul(num[d], scale))
		}
	}
	return result.trim()
}

// mulLinear returns p * (x + c).
func (p Poly) mulLinear(c Elem) Poly {
	out := make(Poly, len(p)+1)
	for i, coef := range p {
		out[i] = Add(out[i], Mul(coef, c))
		out[i+1] = Add(out[i+1], coef)
	}
	return out
}

// trim drops trailing zero coefficients.
func (p Poly) trim() Poly {
	i := len(p)
	for i > 0 && p[i-1] == 0 {
		i--
	}
	return p[:i]
}

// mul returns the product of two polynomials.
func (p Poly) mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] = Add(out[i+j], Mul(a, b))
		}
	}
	return out.trim()
}
