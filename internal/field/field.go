// Package field implements arithmetic in the prime field GF(p) used by the
// secret-sharing substrate of the common coin, together with polynomial
// evaluation, Lagrange interpolation, and Berlekamp–Welch decoding of
// Reed–Solomon codewords with Byzantine errors.
//
// The paper (Remark 2.3) requires a prime p > n known to all nodes as part
// of the code. We fix p = 2^31 - 1 (the Mersenne prime 2147483647), which
// exceeds every node count this repository simulates and keeps all products
// of two field elements below 2^62, so plain uint64 arithmetic never
// overflows.
package field

import "fmt"

// P is the field modulus, the Mersenne prime 2^31 - 1. It satisfies the
// paper's requirement p > n for every supported cluster size and is large
// enough that the coin's "tickets" (uniform field elements) collide with
// negligible probability.
const P uint64 = 2147483647

// Elem is an element of GF(P), always kept in canonical range [0, P).
type Elem uint64

// Reduce maps an arbitrary uint64 into canonical range. It accepts any
// input because Byzantine messages may carry out-of-range values.
func Reduce(v uint64) Elem { return Elem(v % P) }

// Add returns a + b mod P.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a - b mod P.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + Elem(P) - b
}

// Neg returns -a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P) - a
}

// Mul returns a * b mod P. Safe: operands are < 2^31 so the product fits
// in 62 bits.
func Mul(a, b Elem) Elem { return Elem(uint64(a) * uint64(b) % P) }

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a, using Fermat's little
// theorem (P is prime). Inv(0) panics: callers must guard, as division by
// zero indicates a protocol logic error, never bad remote input.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("field: inverse of zero")
	}
	return Pow(a, P-2)
}

// Div returns a / b mod P. Div by zero panics (see Inv).
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }

// String implements fmt.Stringer.
func (e Elem) String() string { return fmt.Sprintf("%d", uint64(e)) }

// Valid reports whether e is in canonical range. Deserialized or
// adversarial values must be checked (or passed through Reduce) before use.
func (e Elem) Valid() bool { return uint64(e) < P }
