// Package field implements arithmetic in the prime field GF(p) used by the
// secret-sharing substrate of the common coin, together with polynomial
// evaluation, Lagrange interpolation, and Berlekamp–Welch decoding of
// Reed–Solomon codewords with Byzantine errors.
//
// The paper (Remark 2.3) requires a prime p > n known to all nodes as part
// of the code. We fix p = 2^31 - 1 (the Mersenne prime 2147483647), which
// exceeds every node count this repository simulates and keeps all products
// of two field elements below 2^62, so plain uint64 arithmetic never
// overflows.
package field

import "fmt"

// P is the field modulus, the Mersenne prime 2^31 - 1. It satisfies the
// paper's requirement p > n for every supported cluster size and is large
// enough that the coin's "tickets" (uniform field elements) collide with
// negligible probability.
const P uint64 = 2147483647

// Elem is an element of GF(P), always kept in canonical range [0, P).
type Elem uint64

// Reduce maps an arbitrary uint64 into canonical range. It accepts any
// input because Byzantine messages may carry out-of-range values.
//
// Because P is the Mersenne prime 2^31-1, reduction needs no division:
// writing v = hi*2^31 + lo, we have v ≡ hi + lo (mod P) since 2^31 ≡ 1.
// Two folds bring any uint64 below 2P, and one conditional subtraction
// canonicalizes (it also maps the non-canonical residue P itself to 0).
func Reduce(v uint64) Elem {
	v = (v & P) + (v >> 31) // < 2^33 + 2^31
	v = (v & P) + (v >> 31) // < P + 5
	if v >= P {
		v -= P
	}
	return Elem(v)
}

// reduceWide canonicalizes an accumulator known to be < 2^62 (any product
// of canonical elements, or a partially folded lazy sum). The name
// records the precondition at call sites; the folding itself handles any
// uint64, so it simply delegates.
func reduceWide(v uint64) Elem { return Reduce(v) }

// fold performs one Mersenne folding step without canonicalizing. For
// v < 2^63 the result is < 2^33 and congruent to v mod P; hot loops keep
// accumulators in this relaxed range and canonicalize once at the end.
func fold(v uint64) uint64 { return (v & P) + (v >> 31) }

// Add returns a + b mod P.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a - b mod P.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + Elem(P) - b
}

// Neg returns -a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P) - a
}

// Mul returns a * b mod P. Operands must be canonical (< P, guaranteed by
// construction everywhere outside deserialization, which goes through
// Reduce); the product then fits in 62 bits and two branchless Mersenne
// folds replace the hardware division. See mulRef for the division-based
// oracle the differential tests compare against.
func Mul(a, b Elem) Elem { return reduceWide(uint64(a) * uint64(b)) }

// mulRef is the division-based reference implementation of Mul, kept as
// the oracle for differential tests of the Mersenne folding fast path.
func mulRef(a, b Elem) Elem { return Elem(uint64(a) * uint64(b) % P) }

// MulAdd returns acc + a*b mod P in one partially-folded step: the product
// (< 2^62) plus a canonical acc (< 2^31) stays below 2^63, so one fold and
// a final canonicalization suffice. This is the scalar building block of
// the Horner and Lagrange inner loops.
func MulAdd(acc, a, b Elem) Elem {
	return reduceWide(uint64(acc) + uint64(a)*uint64(b))
}

// Dot returns the inner product sum_i a[i]*b[i] mod P with lazy reduction:
// one fold per term keeps the accumulator under 2^33 (so adding the next
// 62-bit product cannot overflow), and a single canonicalization finishes.
// It panics if the slices differ in length. With cached Lagrange weights
// (see Recon) this makes secret reconstruction an allocation-free O(n)
// pass.
func Dot(a, b []Elem) Elem {
	if len(a) != len(b) {
		panic("field: dot length mismatch")
	}
	var acc uint64
	for i := range a {
		acc = fold(acc + uint64(a[i])*uint64(b[i]))
	}
	return reduceWide(acc)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a, using Fermat's little
// theorem (P is prime). Inv(0) panics: callers must guard, as division by
// zero indicates a protocol logic error, never bad remote input.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("field: inverse of zero")
	}
	return Pow(a, P-2)
}

// Div returns a / b mod P. Div by zero panics (see Inv).
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }

// String implements fmt.Stringer.
func (e Elem) String() string { return fmt.Sprintf("%d", uint64(e)) }

// Valid reports whether e is in canonical range. Deserialized or
// adversarial values must be checked (or passed through Reduce) before use.
func (e Elem) Valid() bool { return uint64(e) < P }
