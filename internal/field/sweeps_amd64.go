//go:build amd64

package field

// AVX2 sweep primitives (kernels_amd64.s): the block routines process
// four 64-bit lanes per iteration over the len&^3 prefix; these
// wrappers finish the remainder with the scalar reference idioms so the
// combined result is bit-for-bit the reference's.

func accumNeqBlocks(bad []uint64, a, b []Elem, n4 int)

func sweepTallyBlocks(agree []uint64, ev, vals []Elem, has []bool, dirBits uint64, n4 int) (hi, borrow uint64)

func accumBoolBlocks(cnt []uint64, bs []bool, n4 int)

func rangeOrBlocks(es []Elem, n4 int) (hi, borrow uint64)

func countBoolBlocks(bs []bool, n4 int) uint64

func init() {
	if haveAVX2 {
		installWideSweeps = func() {
			accumNeqImpl = accumNeqAVX2
			sweepTallyImpl = sweepTallyAVX2
			accumBoolImpl = accumBoolAVX2
			countBoolImpl = countBoolAVX2
			rangeOrImpl = rangeOrAVX2
		}
		installWideSweeps()
		wideSweepsOn = true
	}
}

func accumNeqAVX2(bad []uint64, a, b []Elem) {
	n4 := len(a) &^ 3
	if n4 > 0 {
		accumNeqBlocks(bad, a, b, n4)
	}
	for i := n4; i < len(a); i++ {
		x := uint64(a[i] ^ b[i])
		bad[i] += (x | -x) >> 63
	}
}

func sweepTallyAVX2(agree []uint64, ev, vals []Elem, has []bool, dirBits uint64) (hi, borrow uint64) {
	n4 := len(vals) &^ 3
	if n4 > 0 {
		hi, borrow = sweepTallyBlocks(agree, ev, vals, has, dirBits, n4)
	}
	const max = uint64(P - 1)
	for i := n4; i < len(vals); i++ {
		v := uint64(vals[i])
		hi |= v
		borrow |= max - v
		x := v ^ uint64(ev[i])
		em := -((((x | -x) >> 63) ^ 1) & b2u(has[i]))
		agree[i] += em & dirBits
	}
	return hi, borrow
}

func rangeOrAVX2(es []Elem) (hi, borrow uint64) {
	n4 := len(es) &^ 3
	if n4 > 0 {
		hi, borrow = rangeOrBlocks(es, n4)
	}
	const max = uint64(P - 1)
	for i := n4; i < len(es); i++ {
		v := uint64(es[i])
		hi |= v
		borrow |= max - v
	}
	return hi, borrow
}

func accumBoolAVX2(cnt []uint64, bs []bool) {
	n4 := len(bs) &^ 3
	if n4 > 0 {
		accumBoolBlocks(cnt, bs, n4)
	}
	for i := n4; i < len(bs); i++ {
		cnt[i] += b2u(bs[i])
	}
}

func countBoolAVX2(bs []bool) uint64 {
	n4 := len(bs) &^ 3
	var c uint64
	if n4 > 0 {
		c = countBoolBlocks(bs, n4)
	}
	for i := n4; i < len(bs); i++ {
		c += b2u(bs[i])
	}
	return c
}
