package field

import "sync"

// This file implements batched polynomial evaluation at a fixed point
// set: one power table shared by every evaluation, with the accumulation
// loop ordered so the per-point accumulators are independent (the CPU can
// overlap the multiplies, unlike Horner's serial dependency chain). The
// GVSS echo round evaluates each of its n² row polynomials at all n share
// points every beat — n³ evaluations that previously went through n
// independent Poly.Eval calls and dominated the post-PR-1 profile.

// multiEvalCache caches the tables for the point sets 1..n the coin
// pipeline uses, keyed by (n, deg). Tables are immutable once published.
var multiEvalCache struct {
	sync.RWMutex
	m map[[2]int]*MultiEval
}

// MultiEval evaluates polynomials of degree <= deg at a fixed ordered
// point set in one pass per polynomial. It is immutable after
// construction and safe for concurrent use by any number of goroutines;
// callers supply the destination (and any scratch) buffers.
type MultiEval struct {
	n, deg int
	// pows[i*(deg+1)+k] = xs[i]^k: one contiguous power row per point, so
	// a single-point evaluation is a register-accumulated dot product
	// whose multiplies are independent of the (serial) fold chain —
	// unlike Horner, where every multiply sits on the accumulator's
	// critical path.
	pows []Elem
	// powsT[k*n+i] = xs[i]^k, the transposed layout the 4-wide EvalInto
	// kernel streams: four points' powers of x^k are adjacent, and the
	// four accumulator chains are independent, so the CPU overlaps their
	// latencies.
	powsT []Elem
}

// NewMultiEval builds the table for the given points and maximum degree.
// deg must be >= 0.
func NewMultiEval(xs []Elem, deg int) *MultiEval {
	n := len(xs)
	m := &MultiEval{n: n, deg: deg}
	m.pows = make([]Elem, n*(deg+1))
	m.powsT = make([]Elem, (deg+1)*n)
	for i, x := range xs {
		p := Elem(1)
		for k := 0; k <= deg; k++ {
			m.pows[i*(deg+1)+k] = p
			m.powsT[k*n+i] = p
			p = Mul(p, x)
		}
	}
	return m
}

// MultiEvalFor returns the (cached, shared) table for the share points
// 1..n and degree bound deg — the shape every GVSS session uses.
func MultiEvalFor(n, deg int) *MultiEval {
	key := [2]int{n, deg}
	multiEvalCache.RLock()
	m := multiEvalCache.m[key]
	multiEvalCache.RUnlock()
	if m != nil {
		return m
	}
	xs := make([]Elem, n)
	for i := range xs {
		xs[i] = Elem(i + 1)
	}
	m = NewMultiEval(xs, deg)
	multiEvalCache.Lock()
	if existing := multiEvalCache.m[key]; existing != nil {
		m = existing
	} else {
		if multiEvalCache.m == nil {
			multiEvalCache.m = make(map[[2]int]*MultiEval)
		}
		multiEvalCache.m[key] = m
	}
	multiEvalCache.Unlock()
	return m
}

// N returns the number of evaluation points.
func (m *MultiEval) N() int { return m.n }

// EvalInto writes p(xs[i]) into dst[i] for every point; dst must have
// length >= N() and p degree <= the table's bound. Concurrent callers
// with distinct dst never interfere.
//
// Points are processed four at a time with independent accumulators (one
// fold per term each; acc < 2^33 plus a 62-bit product stays below 2^63),
// so the fold chains of the four points overlap instead of serializing.
func (m *MultiEval) EvalInto(dst []Elem, p Poly) {
	if len(p) > m.deg+1 {
		panic("field: MultiEval degree exceeded")
	}
	evalColumns(dst[:m.n], p, m.powsT, m.n)
}

// evalColumns computes dst[j] = sum_k coeffs[k] * tab[k*n+j] for j in
// [0, n) — the shared inner kernel of batched evaluation: tab holds one
// n-wide column per coefficient, four output accumulators run per step
// so their fold chains overlap instead of serializing, and coefficients
// are consumed in pairs with one fold per pair: each product is at most
// (P-1)² = 2^62 - 2^33 + 4, so two products plus a folded (< 2^33)
// accumulator stay below 2^63, the folding precondition.
func evalColumns(dst []Elem, coeffs []Elem, tab []Elem, n int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		var a0, a1, a2, a3 uint64
		k := 0
		for ; k+2 <= len(coeffs); k += 2 {
			c0, c1 := uint64(coeffs[k]), uint64(coeffs[k+1])
			col0 := tab[k*n+j : k*n+j+4 : k*n+j+4]
			col1 := tab[(k+1)*n+j : (k+1)*n+j+4 : (k+1)*n+j+4]
			a0 = fold(a0 + c0*uint64(col0[0]) + c1*uint64(col1[0]))
			a1 = fold(a1 + c0*uint64(col0[1]) + c1*uint64(col1[1]))
			a2 = fold(a2 + c0*uint64(col0[2]) + c1*uint64(col1[2]))
			a3 = fold(a3 + c0*uint64(col0[3]) + c1*uint64(col1[3]))
		}
		if k < len(coeffs) {
			cc := uint64(coeffs[k])
			col := tab[k*n+j : k*n+j+4 : k*n+j+4]
			a0 = fold(a0 + cc*uint64(col[0]))
			a1 = fold(a1 + cc*uint64(col[1]))
			a2 = fold(a2 + cc*uint64(col[2]))
			a3 = fold(a3 + cc*uint64(col[3]))
		}
		dst[j] = reduceWide(a0)
		dst[j+1] = reduceWide(a1)
		dst[j+2] = reduceWide(a2)
		dst[j+3] = reduceWide(a3)
	}
	for ; j < n; j++ {
		var acc uint64
		k := 0
		for ; k+2 <= len(coeffs); k += 2 {
			acc = fold(acc + uint64(coeffs[k])*uint64(tab[k*n+j]) + uint64(coeffs[k+1])*uint64(tab[(k+1)*n+j]))
		}
		if k < len(coeffs) {
			acc = fold(acc + uint64(coeffs[k])*uint64(tab[k*n+j]))
		}
		dst[j] = reduceWide(acc)
	}
}

// At evaluates p at point index i (0-based) through the row power table:
// a single lazy-reduced dot product. Like EvalInto, it panics when p is
// longer than the table's degree bound — the dot product would otherwise
// silently read into the next point's power row.
func (m *MultiEval) At(p Poly, i int) Elem {
	if len(p) > m.deg+1 {
		panic("field: MultiEval degree exceeded")
	}
	row := m.pows[i*(m.deg+1) : i*(m.deg+1)+len(p)]
	return Dot(p, row)
}

// secretDecoderMaxTables bounds each decoder's table cache. Present-
// point sets are bitmasks over at most 64 share coordinates, and honest
// traffic only ever produces a handful of them (the full set and the
// n-f..n sized subsets the live senders form), so the bound is only ever
// reached under active Byzantine set-churn — at which point further new
// sets fall back to DecodeFastInto (which shares the process-wide Recon
// cache) instead of growing the map.
const secretDecoderMaxTables = 512

// sdTable is the per-point-set half of a SecretDecoder: the Lagrange
// data (r) and the basis-evaluation table (vtT) for one interpolation
// set S, immutable once built.
type sdTable struct {
	r *Recon
	// vtT[i*N+j] = L_i^S(x_j), the Lagrange basis evaluated at every
	// table point, column-major so one pass of the shared 4-wide kernel
	// yields the candidate interpolant's value at every point — no
	// coefficient interpolation at all.
	vtT []Elem
}

// SecretDecoder decodes a batch of Reed–Solomon share vectors whose
// present-point sets repeat (the GVSS recover round: per-dealing sender
// sets, n² dealings), returning only the interpolant's value at 0. It
// fuses DecodeFast's happy path through two cached tables per point set
// S = xs[:degree+1]:
//
//   - the basis-evaluation table vtT (see sdTable), so verifying a
//     candidate costs one kernel pass;
//   - the Recon's w0 weights, so the accepted secret is Dot(w0, ys[:k]).
//
// Tables are keyed by the point-set bitmask (like ReconFor), so a
// Byzantine RecoverMsg alternating per-dealing present sets hits the
// cache instead of forcing an O(n·k²) table rebuild per dealing; sets
// outside the mask domain, or beyond the cache bound, fall back to
// DecodeFastInto with identical accept/reject behaviour.
//
// The exact Lagrange identities make both tables bit-equivalent to
// interpolating and evaluating (validated by the differential test
// against DecodeFast). The fallback under too many errors is the full
// Berlekamp–Welch Decode, unchanged. The zero value is not usable; bind
// with NewSecretDecoder. Not safe for concurrent use — hold one per node.
type SecretDecoder struct {
	me      *MultiEval
	tables  map[uint64]*sdTable
	ev      []Elem
	scratch Poly
	// rebuilds counts table constructions (test instrumentation for the
	// alternating-set regression).
	rebuilds int
}

// NewSecretDecoder returns a decoder verifying against m's point set.
func NewSecretDecoder(m *MultiEval) *SecretDecoder {
	return &SecretDecoder{me: m, ev: make([]Elem, m.n), tables: make(map[uint64]*sdTable)}
}

// tableFor returns the cached table for the point set xs, building it on
// first sight. It returns nil when the set is outside the bitmask domain
// (not strictly ascending in [1, N()]) or the cache is full — callers
// then take the DecodeFastInto path.
func (sd *SecretDecoder) tableFor(xs []Elem) *sdTable {
	mask := uint64(0)
	prev := Elem(0)
	for _, x := range xs {
		if x <= prev || x > Elem(sd.me.n) || x > 64 {
			return nil
		}
		mask |= 1 << (x - 1)
		prev = x
	}
	if t := sd.tables[mask]; t != nil {
		return t
	}
	if len(sd.tables) >= secretDecoderMaxTables {
		return nil
	}
	sd.rebuilds++
	k := len(xs)
	n := sd.me.n
	t := &sdTable{r: ReconFor(xs), vtT: make([]Elem, n*k)}
	for i := 0; i < k; i++ {
		// Row i of vtT is the basis polynomial L_i evaluated at every
		// table point.
		basis := Poly(t.r.basis[i*k : (i+1)*k])
		for j := 0; j < n; j++ {
			t.vtT[i*n+j] = sd.me.At(basis, j)
		}
	}
	sd.tables[mask] = t
	return t
}

// DecodeAt0 returns the value at x = 0 of the degree-<=degree polynomial
// through (xs, ys), tolerating up to maxErrors wrong points; it errors
// exactly when DecodeFast(xs, ys, degree, maxErrors) errors. Every x in
// xs must be a coordinate of the bound table (a value in [1, N()]).
func (sd *SecretDecoder) DecodeAt0(xs, ys []Elem, degree, maxErrors int) (Elem, error) {
	// Cap at the information-theoretic bound, exactly as DecodeFastInto.
	if cap := (len(xs) - degree - 1) / 2; maxErrors > cap {
		maxErrors = cap
	}
	if degree >= 0 && maxErrors >= 0 && len(xs) == len(ys) && len(xs) > degree {
		k := degree + 1
		t := sd.tableFor(xs[:k])
		if t == nil {
			// Uncacheable or cache-full set: the unfused fast path, same
			// accept/reject decisions, no table build.
			p, err := DecodeFastInto(sd.scratch, xs, ys, degree, maxErrors)
			if err != nil {
				return 0, err
			}
			if cap(p) > cap(sd.scratch) {
				sd.scratch = p[:0]
			}
			return p.Eval(0), nil
		}
		// One kernel pass gives the candidate interpolant's value at every
		// table point: p(x_j) = sum_i ys[i] * L_i(x_j).
		evalColumns(sd.ev, ys[:k], t.vtT, sd.me.n)
		bad := 0
		for i := range xs {
			if sd.ev[xs[i]-1] != ys[i] {
				bad++
				if bad > maxErrors {
					break
				}
			}
		}
		if bad <= maxErrors {
			return t.r.SecretAt0(ys[:k]), nil
		}
	}
	p, err := Decode(xs, ys, degree, maxErrors)
	if err != nil {
		return 0, err
	}
	return p.Eval(0), nil
}
