package field

import "sync"

// This file implements batched polynomial evaluation at a fixed point
// set: one power table shared by every evaluation, with the accumulation
// loop ordered so the per-point accumulators are independent (the CPU can
// overlap the multiplies, unlike Horner's serial dependency chain). The
// GVSS echo round evaluates each of its n² row polynomials at all n share
// points every beat — n³ evaluations that previously went through n
// independent Poly.Eval calls and dominated the post-PR-1 profile.
// The inner kernel itself (evalColumns) lives in kernels.go behind a
// small dispatch layer (8-wide unrolled Go default, AVX2 slot on amd64).

// multiEvalCache caches the tables for the point sets 1..n the coin
// pipeline uses, keyed by (n, deg). Tables are immutable once published.
var multiEvalCache struct {
	sync.RWMutex
	m map[[2]int]*MultiEval
}

// MultiEval evaluates polynomials of degree <= deg at a fixed ordered
// point set in one pass per polynomial. It is immutable after
// construction and safe for concurrent use by any number of goroutines;
// callers supply the destination (and any scratch) buffers.
type MultiEval struct {
	n, deg int
	// pows[i*(deg+1)+k] = xs[i]^k: one contiguous power row per point, so
	// a single-point evaluation is a register-accumulated dot product
	// whose multiplies are independent of the (serial) fold chain —
	// unlike Horner, where every multiply sits on the accumulator's
	// critical path.
	pows []Elem
	// powsT[k*n+i] = xs[i]^k, the transposed layout the evalColumns
	// kernels stream (kernels.go): a block of points' powers of x^k are
	// adjacent, and the per-point accumulator chains are independent, so
	// the CPU (or a ymm register) overlaps their latencies.
	powsT []Elem
}

// NewMultiEval builds the table for the given points and maximum degree.
// deg must be >= 0.
func NewMultiEval(xs []Elem, deg int) *MultiEval {
	n := len(xs)
	m := &MultiEval{n: n, deg: deg}
	m.pows = make([]Elem, n*(deg+1))
	m.powsT = make([]Elem, (deg+1)*n)
	for i, x := range xs {
		p := Elem(1)
		for k := 0; k <= deg; k++ {
			m.pows[i*(deg+1)+k] = p
			m.powsT[k*n+i] = p
			p = Mul(p, x)
		}
	}
	return m
}

// MultiEvalFor returns the (cached, shared) table for the share points
// 1..n and degree bound deg — the shape every GVSS session uses.
func MultiEvalFor(n, deg int) *MultiEval {
	key := [2]int{n, deg}
	multiEvalCache.RLock()
	m := multiEvalCache.m[key]
	multiEvalCache.RUnlock()
	if m != nil {
		return m
	}
	xs := make([]Elem, n)
	for i := range xs {
		xs[i] = Elem(i + 1)
	}
	m = NewMultiEval(xs, deg)
	multiEvalCache.Lock()
	if existing := multiEvalCache.m[key]; existing != nil {
		m = existing
	} else {
		if multiEvalCache.m == nil {
			multiEvalCache.m = make(map[[2]int]*MultiEval)
		}
		multiEvalCache.m[key] = m
	}
	multiEvalCache.Unlock()
	return m
}

// N returns the number of evaluation points.
func (m *MultiEval) N() int { return m.n }

// EvalInto writes p(xs[i]) into dst[i] for every point; dst must have
// length >= N() and p degree <= the table's bound. Concurrent callers
// with distinct dst never interfere. Dispatches to the active
// evalColumns kernel (see kernels.go).
func (m *MultiEval) EvalInto(dst []Elem, p Poly) {
	if len(p) > m.deg+1 {
		panic("field: MultiEval degree exceeded")
	}
	evalColumns(dst[:m.n], p, m.powsT, m.n)
}

// EvalGridT evaluates a family of polynomials at every table point,
// writing the results in transposed (point-major) order. coefT holds
// the family's coefficients degree-major, coefT[k*nR+r] = poly_r[k] for
// r in [0,nR), k in [0,w); dst[i*nR+r] receives poly_r(xs[i]). One
// full-width kernel pass per point replaces nR per-polynomial EvalInto
// calls — and because every kernel computes the exact canonical sum,
// the values are bit-identical to per-row evaluation.
func (m *MultiEval) EvalGridT(dst, coefT []Elem, w, nR int) {
	if w > m.deg+1 {
		panic("field: MultiEval degree exceeded")
	}
	stride := m.deg + 1
	for i := 0; i < m.n; i++ {
		evalColumns(dst[i*nR:(i+1)*nR], m.pows[i*stride:i*stride+w], coefT, nR)
	}
}

// At evaluates p at point index i (0-based) through the row power table:
// a single lazy-reduced dot product. Like EvalInto, it panics when p is
// longer than the table's degree bound — the dot product would otherwise
// silently read into the next point's power row.
func (m *MultiEval) At(p Poly, i int) Elem {
	if len(p) > m.deg+1 {
		panic("field: MultiEval degree exceeded")
	}
	row := m.pows[i*(m.deg+1) : i*(m.deg+1)+len(p)]
	return Dot(p, row)
}

// secretDecoderMaxTables bounds each decoder's table cache. Present-
// point sets are bitmasks over at most 64 share coordinates, and honest
// traffic only ever produces a handful of them (the full set and the
// n-f..n sized subsets the live senders form), so the bound is only ever
// reached under active Byzantine set-churn — at which point further new
// sets fall back to DecodeFastInto (which shares the process-wide Recon
// cache) instead of growing the map.
const secretDecoderMaxTables = 512

// sdGlobalKey identifies a decoder table process-wide: the point-set
// table it verifies against plus the (mask, k) pair. MultiEval tables
// are themselves interned per (n, deg) by MultiEvalFor, so the pointer
// is a stable identity for the point set.
type sdGlobalKey struct {
	me *MultiEval
	sdKey
}

// sdTableCache interns decoder tables process-wide, keyed by
// (point-set table, mask, k). Tables are immutable once published, so
// every SecretDecoder — one per worker or per node, across thousands
// of multiplexed tenants — shares one copy of each basis table instead
// of rebuilding it per decoder. Bounded like the per-decoder map; on
// overflow new sets simply stay decoder-local.
var sdTableCache struct {
	sync.RWMutex
	m map[sdGlobalKey]*sdTable
}

const sdTableCacheMax = 4096

// sdTableShared looks up an interned table, returning nil on miss.
func sdTableShared(key sdGlobalKey) *sdTable {
	sdTableCache.RLock()
	t := sdTableCache.m[key]
	sdTableCache.RUnlock()
	return t
}

// sdTablePublish interns a freshly built table, returning the winning
// copy (an earlier publisher's table on a race, so every decoder ends
// up sharing one instance).
func sdTablePublish(key sdGlobalKey, t *sdTable) *sdTable {
	sdTableCache.Lock()
	defer sdTableCache.Unlock()
	if existing := sdTableCache.m[key]; existing != nil {
		return existing
	}
	if sdTableCache.m == nil {
		sdTableCache.m = make(map[sdGlobalKey]*sdTable)
	}
	if len(sdTableCache.m) < sdTableCacheMax {
		sdTableCache.m[key] = t
	}
	return t
}

// sdKey identifies a decoder table: the bitmask of the full present
// set AND the interpolation prefix length k (the same point set decoded
// at a different degree needs different verification rows).
type sdKey struct {
	mask uint64
	k    uint8
}

// sdTable is the per-(point set, degree) half of a SecretDecoder: the
// Lagrange data (r) for the interpolation prefix and the suffix
// verification table, immutable once built.
type sdTable struct {
	r *Recon
	// vfyT[c*(m-k)+i] = L_c^S(xs[k+i]): the prefix Lagrange basis
	// evaluated at the m-k SUFFIX points only, column-major so one
	// evalColumns pass yields the candidate interpolant's value at every
	// suffix point. The prefix points need no verification at all — the
	// interpolant passes through them exactly by construction, so
	// DecodeFast's disagreement count over all m points equals the count
	// over the suffix. This cuts the verification kernel from m columns
	// to m-k (~40% of the recover round's kernel work at n=16).
	vfyT []Elem
	// vfyR is the same data suffix-point-major — vfyR[i*k+c] =
	// L_c^S(xs[k+i]) — the coefficient layout DecodeAt0Block feeds the
	// kernel when it verifies a whole dealer block against suffix point
	// xs[k+i] in one full-width pass.
	vfyR []Elem
}

// SecretDecoder decodes a batch of Reed–Solomon share vectors whose
// present-point sets repeat (the GVSS recover round: per-dealing sender
// sets, n² dealings), returning only the interpolant's value at 0. It
// fuses DecodeFast's happy path through two cached tables per
// (point set, degree):
//
//   - the suffix verification table vfyT (see sdTable), so verifying a
//     candidate costs one kernel pass over the m-k suffix points;
//   - the Recon's w0 weights, so the accepted secret is Dot(w0, ys[:k]).
//
// Tables are keyed by the full present-set bitmask plus prefix length
// (like ReconFor), so a Byzantine RecoverMsg alternating per-dealing
// present sets hits the cache instead of forcing an O(n·k²) table
// rebuild per dealing; a one-entry hot cache in front of the map serves
// the steady state (every dealing of a beat shares one sender set)
// without a map lookup. Sets outside the mask domain, or beyond the
// cache bound, fall back to DecodeFastInto with identical accept/reject
// behaviour.
//
// The exact Lagrange identities make the tables bit-equivalent to
// interpolating and evaluating (validated by the differential test
// against DecodeFast). The fallback under too many errors is the full
// Berlekamp–Welch Decode, unchanged. The zero value is not usable; bind
// with NewSecretDecoder. Not safe for concurrent use — hold one per node.
type SecretDecoder struct {
	me      *MultiEval
	tables  map[sdKey]*sdTable
	ev      []Elem
	scratch Poly
	// Block-decode scratch (DecodeAt0Block): the gathered prefix rows,
	// per-column disagreement tallies, and a ys gather buffer.
	tabScratch []Elem
	badScratch []uint64
	ysScratch  []Elem
	// hot one-entry cache: the last (mask, k) resolved and its table.
	lastKey sdKey
	lastT   *sdTable
	// rebuilds counts table constructions (test instrumentation for the
	// alternating-set regression).
	rebuilds int
}

// NewSecretDecoder returns a decoder verifying against m's point set.
func NewSecretDecoder(m *MultiEval) *SecretDecoder {
	return &SecretDecoder{me: m, ev: make([]Elem, m.n), tables: make(map[sdKey]*sdTable)}
}

// ME returns the point-set table this decoder verifies against, so a
// shared-scratch owner can tell whether a pooled decoder is bound to
// the right (n, deg) table or needs rebinding.
func (sd *SecretDecoder) ME() *MultiEval { return sd.me }

// tableFor returns the cached table for the full point set xs with
// interpolation prefix length k, building it on first sight. It returns
// nil when the set is outside the bitmask domain (not strictly ascending
// in [1, min(N(), 64)]) or the cache is full — callers then take the
// DecodeFastInto path.
func (sd *SecretDecoder) tableFor(xs []Elem, k int) *sdTable {
	mask := uint64(0)
	prev := Elem(0)
	for _, x := range xs {
		if x <= prev || x > Elem(sd.me.n) || x > 64 {
			return nil
		}
		mask |= 1 << (x - 1)
		prev = x
	}
	key := sdKey{mask: mask, k: uint8(k)}
	if key == sd.lastKey && sd.lastT != nil {
		return sd.lastT
	}
	t := sd.tables[key]
	if t == nil {
		if len(sd.tables) >= secretDecoderMaxTables {
			return nil
		}
		// A local miss counts as a rebuild whether or not the process-wide
		// cache already holds the table: rebuilds instruments this
		// decoder's set-churn, not global construction cost.
		sd.rebuilds++
		gkey := sdGlobalKey{me: sd.me, sdKey: key}
		if t = sdTableShared(gkey); t == nil {
			m := len(xs)
			t = &sdTable{r: ReconFor(xs[:k]), vfyT: make([]Elem, k*(m-k)), vfyR: make([]Elem, (m-k)*k)}
			for c := 0; c < k; c++ {
				// Row c of vfyT is the basis polynomial L_c evaluated at the
				// suffix points; vfyR mirrors it point-major.
				basis := Poly(t.r.basis[c*k : (c+1)*k])
				for i := k; i < m; i++ {
					v := sd.me.At(basis, int(xs[i])-1)
					t.vfyT[c*(m-k)+(i-k)] = v
					t.vfyR[(i-k)*k+c] = v
				}
			}
			t = sdTablePublish(gkey, t)
		}
		sd.tables[key] = t
	}
	sd.lastKey, sd.lastT = key, t
	return t
}

// DecodeAt0 returns the value at x = 0 of the degree-<=degree polynomial
// through (xs, ys), tolerating up to maxErrors wrong points; it errors
// exactly when DecodeFast(xs, ys, degree, maxErrors) errors. Every x in
// xs must be a coordinate of the bound table (a value in [1, N()]).
func (sd *SecretDecoder) DecodeAt0(xs, ys []Elem, degree, maxErrors int) (Elem, error) {
	// Cap at the information-theoretic bound, exactly as DecodeFastInto.
	if cap := (len(xs) - degree - 1) / 2; maxErrors > cap {
		maxErrors = cap
	}
	if degree >= 0 && maxErrors >= 0 && len(xs) == len(ys) && len(xs) > degree {
		k := degree + 1
		t := sd.tableFor(xs, k)
		if t == nil {
			// Uncacheable or cache-full set: the unfused fast path, same
			// accept/reject decisions, no table build.
			p, err := DecodeFastInto(sd.scratch, xs, ys, degree, maxErrors)
			if err != nil {
				return 0, err
			}
			if cap(p) > cap(sd.scratch) {
				sd.scratch = p[:0]
			}
			return p.Eval(0), nil
		}
		// One kernel pass gives the candidate interpolant's value at every
		// SUFFIX point: p(xs[k+i]) = sum_c ys[c] * L_c(xs[k+i]). The
		// prefix points agree by construction, so the branch-free
		// disagreement count below equals DecodeFast's count over all m.
		sfx := len(xs) - k
		evalColumns(sd.ev[:sfx], ys[:k], t.vfyT, sfx)
		bad := 0
		for i := 0; i < sfx; i++ {
			x := uint64(sd.ev[i] ^ ys[k+i])
			bad += int((x | -x) >> 63) // 1 iff the point disagrees
		}
		if bad <= maxErrors {
			return t.r.SecretAt0(ys[:k]), nil
		}
	}
	p, err := Decode(xs, ys, degree, maxErrors)
	if err != nil {
		return 0, err
	}
	return p.Eval(0), nil
}

// DecodeAt0Block decodes a whole dealer block at once: rows[i] holds
// sender xs[i]'s share for each of the nT targets (len(rows[i]) >= nT),
// so column t of the block is exactly the ys vector a per-dealing call
// would pass. For every t in [0, nT) it behaves like
//
//	if v, err := sd.DecodeAt0(xs, column t, degree, maxErrors); err == nil {
//		out[t], okOut[t] = v, true
//	}
//
// leaving out[t]/okOut[t] untouched on error — but the happy path is
// batched: the interpolation prefix is gathered into one contiguous
// k×nT block and each SUFFIX point verifies all nT candidates with a
// single full-width kernel pass (m-k passes total instead of nT
// per-column calls), with a branch-free per-column disagreement tally.
// Columns whose tally exceeds maxErrors fall back to the full
// Berlekamp–Welch Decode individually, exactly as DecodeAt0 would.
func (sd *SecretDecoder) DecodeAt0Block(xs []Elem, rows [][]Elem, nT, degree, maxErrors int, out []Elem, okOut []bool) {
	if cap := (len(xs) - degree - 1) / 2; maxErrors > cap {
		maxErrors = cap
	}
	m := len(xs)
	if len(sd.ysScratch) < m || len(sd.ysScratch) < len(rows) {
		sd.ysScratch = make([]Elem, max(m, len(rows)))
	}
	ys := sd.ysScratch[:len(rows)]
	var t *sdTable
	if degree >= 0 && maxErrors >= 0 && m == len(rows) && m > degree {
		t = sd.tableFor(xs, degree+1)
	}
	if t == nil {
		// Uncacheable set (or malformed shape): per-column decoding,
		// identical to the callers' previous loop.
		for tt := 0; tt < nT; tt++ {
			for i := range rows {
				ys[i] = rows[i][tt]
			}
			if v, err := sd.DecodeAt0(xs, ys, degree, maxErrors); err == nil {
				out[tt], okOut[tt] = v, true
			}
		}
		return
	}
	k := degree + 1
	sfx := m - k
	if len(sd.tabScratch) < k*nT {
		sd.tabScratch = make([]Elem, k*nT)
	}
	if len(sd.badScratch) < nT {
		sd.badScratch = make([]uint64, nT)
	}
	if len(sd.ev) < nT {
		sd.ev = make([]Elem, nT)
	}
	tab := sd.tabScratch[:k*nT]
	for c := 0; c < k; c++ {
		copy(tab[c*nT:(c+1)*nT], rows[c][:nT])
	}
	bad := sd.badScratch[:nT]
	clear(bad)
	resid := sd.ev[:nT]
	for i := 0; i < sfx; i++ {
		// Candidate interpolants' values at suffix point xs[k+i] for all
		// nT columns in one kernel pass, compared against the suffix
		// sender's delivered row by the branch-free disagreement sweep.
		evalColumns(resid, t.vfyR[i*k:(i+1)*k], tab, nT)
		AccumNeq(bad, resid, rows[k+i][:nT])
	}
	// One more full-width pass computes every column's would-be secret
	// Dot(w0, column) at once — the same exact canonical sum SecretAt0
	// produces — into resid, which is dead after the tally above. The
	// accept loop below then just picks the columns whose tally passed.
	evalColumns(resid, t.r.w0, tab, nT)
	for tt := 0; tt < nT; tt++ {
		if int(bad[tt]) <= maxErrors {
			out[tt], okOut[tt] = resid[tt], true
			continue
		}
		// Too many errors for the fast accept: the full decoder, exactly
		// as DecodeAt0's tail.
		for i := range rows {
			ys[i] = rows[i][tt]
		}
		if p, err := Decode(xs, ys, degree, maxErrors); err == nil {
			out[tt], okOut[tt] = p.Eval(0), true
		}
	}
}

// DecodeAt0Grid decodes a whole nD×nT grid of dealings at once:
// grids[i] is sender xs[i]'s full share matrix in flat row-major form
// (grids[i][d*nT+t] is its share for dealing (d,t), len >= nD*nT), so
// for every (d,t) it behaves exactly like DecodeAt0Block column t of
// dealer d's block — equivalently, like a per-dealing DecodeAt0 —
// writing out[d*nT+t]/okOut[d*nT+t] (flat row-major, matching the
// input layout) and leaving them untouched on error.
// The point of the grid shape is kernel width: each suffix sender
// verifies all nD·nT candidate columns with ONE full-width evalColumns
// pass and ONE full-width disagreement sweep (m-k of each for the
// entire grid, instead of nD blocks of narrow passes), which amortizes
// per-call dispatch overhead and runs the wide kernels in their
// long-vector regime; the flat sender matrices load into the kernel
// table with a single copy each.
func (sd *SecretDecoder) DecodeAt0Grid(xs []Elem, grids [][]Elem, nD, nT, degree, maxErrors int, out []Elem, okOut []bool) {
	if cap := (len(xs) - degree - 1) / 2; maxErrors > cap {
		maxErrors = cap
	}
	m := len(xs)
	if len(sd.ysScratch) < m || len(sd.ysScratch) < len(grids) {
		sd.ysScratch = make([]Elem, max(m, len(grids)))
	}
	ys := sd.ysScratch[:len(grids)]
	var t *sdTable
	if degree >= 0 && maxErrors >= 0 && m == len(grids) && m > degree {
		t = sd.tableFor(xs, degree+1)
	}
	if t == nil {
		// Uncacheable set (or malformed shape): per-dealing decoding,
		// identical to a per-column DecodeAt0 loop.
		for col := 0; col < nD*nT; col++ {
			for i := range grids {
				ys[i] = grids[i][col]
			}
			if v, err := sd.DecodeAt0(xs, ys, degree, maxErrors); err == nil {
				out[col], okOut[col] = v, true
			}
		}
		return
	}
	k := degree + 1
	sfx := m - k
	wide := nD * nT
	if len(sd.tabScratch) < k*wide {
		sd.tabScratch = make([]Elem, k*wide)
	}
	if len(sd.badScratch) < wide {
		sd.badScratch = make([]uint64, wide)
	}
	if len(sd.ev) < wide {
		sd.ev = make([]Elem, wide)
	}
	tab := sd.tabScratch[:k*wide]
	for c := 0; c < k; c++ {
		copy(tab[c*wide:(c+1)*wide], grids[c][:wide])
	}
	bad := sd.badScratch[:wide]
	clear(bad)
	resid := sd.ev[:wide]
	for i := 0; i < sfx; i++ {
		evalColumns(resid, t.vfyR[i*k:(i+1)*k], tab, wide)
		AccumNeq(bad, resid, grids[k+i][:wide])
	}
	// As in DecodeAt0Block: one full-width pass computes every column's
	// would-be secret Dot(w0, column) into the now-dead resid buffer.
	evalColumns(resid, t.r.w0, tab, wide)
	for col := 0; col < wide; col++ {
		if int(bad[col]) <= maxErrors {
			out[col], okOut[col] = resid[col], true
			continue
		}
		for i := range grids {
			ys[i] = grids[i][col]
		}
		if p, err := Decode(xs, ys, degree, maxErrors); err == nil {
			out[col], okOut[col] = p.Eval(0), true
		}
	}
}
