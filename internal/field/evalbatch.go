package field

// Finisher is the completion hook a deferred evaluation job may carry:
// FinishEval(tag) runs after the job's destination has been filled, in
// enqueue order, so the owner can run the copies that in the immediate
// path would have followed the EvalGridT call (scattering transposed
// results into per-destination payloads, setting presence bitmaps).
type Finisher interface {
	FinishEval(tag int)
}

// evalJob is one deferred EvalGridT call: evaluate the polynomial
// family coefT (degree-major, w × nR) at every one of me's points into
// dst (point-major, me.N() × nR).
type evalJob struct {
	me    *MultiEval
	dst   []Elem
	coefT []Elem
	w, nR int
	fin   Finisher
	tag   int
}

// EvalBatch defers EvalGridT calls so that same-shaped jobs from many
// independent protocol instances can be stacked side by side into one
// deep kernel pass. A multi-tenant beat produces thousands of narrow
// grid evaluations (nR = n² per GVSS echo at small n); stacked, the
// evalColumns kernels see thousands-wide columns instead, which is the
// regime the 8-wide/AVX2 kernels are built for.
//
// Correctness does not depend on grouping: every evalColumns kernel
// computes the exact canonical sum for each column independently of
// its neighbors (see MultiEval.EvalGridT), so a stacked evaluation is
// bit-identical to running the jobs one by one — batching is purely a
// scheduling decision.
//
// Usage contract: the owner (one scheduler worker) enqueues during the
// compose fan-out and calls Flush after the compose barrier, before
// anything reads the destination payloads. Job inputs (coefT) and
// outputs (dst) must stay valid and untouched until Flush returns. Not
// safe for concurrent use; drivers give each worker its own batch.
type EvalBatch struct {
	jobs []evalJob
	coef []Elem
	out  []Elem
}

// batchMaxCols caps the stacked width of one fused kernel pass. It
// bounds the gather/scatter scratch (w·cols + n·cols elements) while
// staying far past the width where kernel throughput saturates.
const batchMaxCols = 1 << 12

// Enqueue defers me.EvalGridT(dst, coefT, w, nR); fin (when non-nil)
// runs with the given tag once dst has been filled.
func (b *EvalBatch) Enqueue(me *MultiEval, dst, coefT []Elem, w, nR int, fin Finisher, tag int) {
	b.jobs = append(b.jobs, evalJob{me: me, dst: dst, coefT: coefT, w: w, nR: nR, fin: fin, tag: tag})
}

// Len reports the number of pending jobs.
func (b *EvalBatch) Len() int { return len(b.jobs) }

// Flush runs every pending job, stacking maximal runs of jobs that
// share an evaluation table and coefficient count into single deep
// EvalGridT passes, then invokes finishers in enqueue order.
func (b *EvalBatch) Flush() {
	jobs := b.jobs
	for lo := 0; lo < len(jobs); {
		j := jobs[lo]
		hi := lo + 1
		cols := j.nR
		for hi < len(jobs) && jobs[hi].me == j.me && jobs[hi].w == j.w &&
			cols+jobs[hi].nR <= batchMaxCols {
			cols += jobs[hi].nR
			hi++
		}
		if hi == lo+1 {
			j.me.EvalGridT(j.dst, j.coefT, j.w, j.nR)
			if j.fin != nil {
				j.fin.FinishEval(j.tag)
			}
			lo = hi
			continue
		}
		b.runStacked(jobs[lo:hi], cols)
		lo = hi
	}
	b.jobs = b.jobs[:0]
}

// runStacked evaluates a group of same-shaped jobs as one wide grid:
// gather the groups' coefficient families side by side, run one
// EvalGridT over the combined width, scatter each job's columns back
// into its destination, then run the finishers.
func (b *EvalBatch) runStacked(group []evalJob, cols int) {
	me, w := group[0].me, group[0].w
	n := me.N()
	if cap(b.coef) < w*cols {
		b.coef = make([]Elem, w*cols)
	}
	if cap(b.out) < n*cols {
		b.out = make([]Elem, n*cols)
	}
	coef := b.coef[:w*cols]
	out := b.out[:n*cols]
	for k := 0; k < w; k++ {
		off := 0
		for _, j := range group {
			copy(coef[k*cols+off:k*cols+off+j.nR], j.coefT[k*j.nR:(k+1)*j.nR])
			off += j.nR
		}
	}
	me.EvalGridT(out, coef, w, cols)
	off := 0
	for _, j := range group {
		for i := 0; i < n; i++ {
			copy(j.dst[i*j.nR:(i+1)*j.nR], out[i*cols+off:i*cols+off+j.nR])
		}
		off += j.nR
	}
	for _, j := range group {
		if j.fin != nil {
			j.fin.FinishEval(j.tag)
		}
	}
}
