//go:build amd64

package field

// AVX2 slot for the evalColumns dispatch layer. Elem values are
// canonical (< 2^31) in 64-bit words, which is exactly the shape
// VPMULUDQ wants: the low dword of each 64-bit lane times the low dword
// of the broadcast coefficient, a full 62-bit product per lane, four
// lanes per ymm register. The assembly kernel mirrors evalColumnsQuad8's
// schedule — two ymm accumulators (8 points), coefficients consumed in
// quads under the quad budget — so the Go variant doubles as its
// readable specification.
//
// Feature detection is hand-rolled (this module has no dependencies):
// AVX2 needs CPUID.7.0:EBX bit 5 plus OS-enabled ymm state
// (CPUID.1:ECX OSXSAVE bit 27 and AVX bit 28, XGETBV XCR0 bits 1-2).

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked before calling).
func xgetbv() (eax, edx uint32)

// evalColumnsAVX2Blocks processes the full 8-point blocks j in
// [0, n&^7). Implemented in kernels_amd64.s.
func evalColumnsAVX2Blocks(dst, coeffs, tab []Elem, n int)

var haveAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state OS-saved
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// evalColumnsAVX2 runs the assembly kernel over the 8-point blocks and
// delegates the remainder to the shared scalar helpers.
func evalColumnsAVX2(dst, coeffs, tab []Elem, n int) {
	j := n &^ 7
	if j > 0 {
		evalColumnsAVX2Blocks(dst, coeffs, tab, n)
	}
	if j+4 <= n {
		evalBlock4(dst, coeffs, tab, n, j)
		j += 4
	}
	evalColumnsTail(dst, coeffs, tab, n, j)
}

// archKernels contributes the AVX2 kernel as the dispatch default when
// the CPU and OS support it.
func archKernels() []kernel {
	if !haveAVX2 {
		return nil
	}
	return []kernel{{"avx2", evalColumnsAVX2}}
}
