package field

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMultiEvalMatchesEval pits the batched table evaluation against the
// scalar Horner oracle over random polynomials and degrees.
func TestMultiEvalMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 4, 7, 16, 33} {
		for deg := 0; deg <= 8; deg++ {
			me := MultiEvalFor(n, deg)
			if me.N() != n {
				t.Fatalf("N() = %d, want %d", me.N(), n)
			}
			for trial := 0; trial < 20; trial++ {
				p := RandomPoly(rng, rng.Intn(deg+1), Elem(rng.Uint64()%P))
				dst := make([]Elem, n)
				me.EvalInto(dst, p)
				for i := 0; i < n; i++ {
					x := Elem(i + 1)
					if want := p.Eval(x); dst[i] != want {
						t.Fatalf("n=%d deg=%d: EvalInto[%d] = %v, want %v", n, deg, i, dst[i], want)
					}
					if got := me.At(p, i); got != p.Eval(x) {
						t.Fatalf("n=%d deg=%d: At(%d) = %v, want %v", n, deg, i, got, p.Eval(x))
					}
				}
			}
		}
	}
}

// TestMultiEvalArbitraryPoints covers tables over point sets other than
// 1..n (NewMultiEval is generic even though the coin pipeline only uses
// the canonical share points).
func TestMultiEvalArbitraryPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := []Elem{3, 17, 900, Elem(P - 1), 0}
	me := NewMultiEval(xs, 5)
	for trial := 0; trial < 50; trial++ {
		p := RandomPoly(rng, rng.Intn(6), Elem(rng.Uint64()%P))
		dst := make([]Elem, len(xs))
		me.EvalInto(dst, p)
		for i, x := range xs {
			if want := p.Eval(x); dst[i] != want {
				t.Fatalf("EvalInto at %v = %v, want %v", x, dst[i], want)
			}
		}
	}
}

// TestMultiEvalForCaches verifies the process-wide table cache returns
// the same immutable table for repeated lookups.
func TestMultiEvalForCaches(t *testing.T) {
	a := MultiEvalFor(9, 3)
	b := MultiEvalFor(9, 3)
	if a != b {
		t.Fatal("cache returned distinct tables for the same key")
	}
	if c := MultiEvalFor(9, 4); c == a {
		t.Fatal("cache conflated distinct degree bounds")
	}
}

// TestSecretDecoderMatchesDecodeFast pits the fused secret decoder
// against DecodeFast + Eval(0) under random corruption and varying
// present-point subsets (exercising the table rebuild path).
func TestSecretDecoderMatchesDecodeFast(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		n := 4 + rng.Intn(13)
		f := (n - 1) / 3
		sd := NewSecretDecoder(MultiEvalFor(n, f))
		for batch := 0; batch < 3; batch++ {
			p := RandomPoly(rng, f, Elem(rng.Uint64()%P))
			present := make([]int, 0, n)
			for i := 0; i < n; i++ {
				if rng.Intn(5) > 0 {
					present = append(present, i)
				}
			}
			if len(present) < 2*f+1 {
				continue
			}
			xs := make([]Elem, len(present))
			ys := make([]Elem, len(present))
			for i, idx := range present {
				xs[i] = Elem(idx + 1)
				ys[i] = p.Eval(xs[i])
			}
			for k := rng.Intn(f + 2); k > 0; k-- {
				ys[rng.Intn(len(ys))] = Elem(rng.Uint64() % P)
			}
			got, gotErr := sd.DecodeAt0(xs, ys, f, f)
			want, wantErr := DecodeFast(xs, ys, f, f)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
			}
			if gotErr == nil && got != want.Eval(0) {
				t.Fatalf("secret mismatch: %v vs %v", got, want.Eval(0))
			}
		}
	}
}

// TestSecretDecoderAlternatingSets is the regression for the Byzantine
// set-churn attack: a RecoverMsg stream alternating per-dealing present
// sets used to defeat the decoder's single-set cache and force an
// O(n·k²) table rebuild per dealing. Tables are now keyed by point-set
// mask, so each distinct set builds its table exactly once no matter how
// the dealings interleave — and every decode still matches DecodeFast.
func TestSecretDecoderAlternatingSets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, f := 10, 3
	k := f + 1
	sd := NewSecretDecoder(MultiEvalFor(n, f))
	// Two present sets of size 2f+1 with DISTINCT interpolation prefixes
	// (the happy path keys on xs[:f+1]), alternated per dealing the way a
	// Byzantine sender withholding different shares per dealing would
	// produce them.
	sets := [][]int{
		{0, 1, 2, 3, 4, 5, 6},
		{3, 4, 5, 6, 7, 8, 9},
	}
	for dealing := 0; dealing < 200; dealing++ {
		present := sets[dealing%len(sets)]
		p := RandomPoly(rng, f, Elem(rng.Uint64()%P))
		xs := make([]Elem, len(present))
		ys := make([]Elem, len(present))
		for i, idx := range present {
			xs[i] = Elem(idx + 1)
			ys[i] = p.Eval(xs[i])
		}
		// Corrupt at most one share outside the interpolation prefix —
		// the information-theoretic bound for 2f+1 points at degree f is
		// (2f+1-(f+1))/2 = f/2, which is 1 here.
		if rng.Intn(2) == 0 {
			ys[k+rng.Intn(len(ys)-k)] = Elem(rng.Uint64() % P)
		}
		got, err := sd.DecodeAt0(xs, ys, f, f)
		if err != nil {
			t.Fatalf("dealing %d: %v", dealing, err)
		}
		if want := p.Eval(0); got != want {
			t.Fatalf("dealing %d: secret %v, want %v", dealing, got, want)
		}
	}
	if sd.rebuilds != len(sets) {
		t.Fatalf("alternating sets built %d tables, want %d (one per distinct set)", sd.rebuilds, len(sets))
	}
}

// TestSecretDecoderTableBound verifies the per-decoder cache stops
// growing at its bound and the overflow path still decodes correctly
// (through DecodeFastInto).
func TestSecretDecoderTableBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, f := 24, 7
	sd := NewSecretDecoder(MultiEvalFor(n, f))
	for trial := 0; trial < secretDecoderMaxTables+200; trial++ {
		// A fresh random 2f+1 subset nearly every trial: far more distinct
		// masks than the cache bound.
		perm := rng.Perm(n)[:2*f+1]
		sort.Ints(perm)
		p := RandomPoly(rng, f, Elem(rng.Uint64()%P))
		xs := make([]Elem, len(perm))
		ys := make([]Elem, len(perm))
		for i, idx := range perm {
			xs[i] = Elem(idx + 1)
			ys[i] = p.Eval(xs[i])
		}
		got, err := sd.DecodeAt0(xs, ys, f, f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := p.Eval(0); got != want {
			t.Fatalf("trial %d: secret %v, want %v", trial, got, want)
		}
	}
	if len(sd.tables) > secretDecoderMaxTables {
		t.Fatalf("cache grew to %d tables, bound is %d", len(sd.tables), secretDecoderMaxTables)
	}
}

// TestMultiEvalAtDegreeGuard verifies At rejects over-long polynomials
// (mirroring EvalInto) instead of silently reading the next point's
// power row.
func TestMultiEvalAtDegreeGuard(t *testing.T) {
	me := MultiEvalFor(5, 2)
	p := Poly{1, 2, 3, 4} // degree 3 > bound 2
	defer func() {
		if recover() == nil {
			t.Fatal("At accepted a polynomial beyond the table's degree bound")
		}
	}()
	me.At(p, 0)
}
