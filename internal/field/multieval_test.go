package field

import (
	"math/rand"
	"testing"
)

// TestMultiEvalMatchesEval pits the batched table evaluation against the
// scalar Horner oracle over random polynomials and degrees.
func TestMultiEvalMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 4, 7, 16, 33} {
		for deg := 0; deg <= 8; deg++ {
			me := MultiEvalFor(n, deg)
			if me.N() != n {
				t.Fatalf("N() = %d, want %d", me.N(), n)
			}
			for trial := 0; trial < 20; trial++ {
				p := RandomPoly(rng, rng.Intn(deg+1), Elem(rng.Uint64()%P))
				dst := make([]Elem, n)
				me.EvalInto(dst, p)
				for i := 0; i < n; i++ {
					x := Elem(i + 1)
					if want := p.Eval(x); dst[i] != want {
						t.Fatalf("n=%d deg=%d: EvalInto[%d] = %v, want %v", n, deg, i, dst[i], want)
					}
					if got := me.At(p, i); got != p.Eval(x) {
						t.Fatalf("n=%d deg=%d: At(%d) = %v, want %v", n, deg, i, got, p.Eval(x))
					}
				}
			}
		}
	}
}

// TestMultiEvalArbitraryPoints covers tables over point sets other than
// 1..n (NewMultiEval is generic even though the coin pipeline only uses
// the canonical share points).
func TestMultiEvalArbitraryPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := []Elem{3, 17, 900, Elem(P - 1), 0}
	me := NewMultiEval(xs, 5)
	for trial := 0; trial < 50; trial++ {
		p := RandomPoly(rng, rng.Intn(6), Elem(rng.Uint64()%P))
		dst := make([]Elem, len(xs))
		me.EvalInto(dst, p)
		for i, x := range xs {
			if want := p.Eval(x); dst[i] != want {
				t.Fatalf("EvalInto at %v = %v, want %v", x, dst[i], want)
			}
		}
	}
}

// TestMultiEvalForCaches verifies the process-wide table cache returns
// the same immutable table for repeated lookups.
func TestMultiEvalForCaches(t *testing.T) {
	a := MultiEvalFor(9, 3)
	b := MultiEvalFor(9, 3)
	if a != b {
		t.Fatal("cache returned distinct tables for the same key")
	}
	if c := MultiEvalFor(9, 4); c == a {
		t.Fatal("cache conflated distinct degree bounds")
	}
}

// TestSecretDecoderMatchesDecodeFast pits the fused secret decoder
// against DecodeFast + Eval(0) under random corruption and varying
// present-point subsets (exercising the table rebuild path).
func TestSecretDecoderMatchesDecodeFast(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		n := 4 + rng.Intn(13)
		f := (n - 1) / 3
		sd := NewSecretDecoder(MultiEvalFor(n, f))
		for batch := 0; batch < 3; batch++ {
			p := RandomPoly(rng, f, Elem(rng.Uint64()%P))
			present := make([]int, 0, n)
			for i := 0; i < n; i++ {
				if rng.Intn(5) > 0 {
					present = append(present, i)
				}
			}
			if len(present) < 2*f+1 {
				continue
			}
			xs := make([]Elem, len(present))
			ys := make([]Elem, len(present))
			for i, idx := range present {
				xs[i] = Elem(idx + 1)
				ys[i] = p.Eval(xs[i])
			}
			for k := rng.Intn(f + 2); k > 0; k-- {
				ys[rng.Intn(len(ys))] = Elem(rng.Uint64() % P)
			}
			got, gotErr := sd.DecodeAt0(xs, ys, f, f)
			want, wantErr := DecodeFast(xs, ys, f, f)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
			}
			if gotErr == nil && got != want.Eval(0) {
				t.Fatalf("secret mismatch: %v vs %v", got, want.Eval(0))
			}
		}
	}
}

