package field

import "sync"

// This file implements the reconstruction fast path: precomputed Lagrange
// data for a fixed interpolation point-set. The coin pipeline always
// interpolates through share points x = 1..n (or an n-f..n sized subset of
// them when Byzantine nodes withhold shares), so the Lagrange weights —
// which depend only on the x-coordinates — are computed once per subset
// and shared process-wide by shamir.Reconstruct, DecodeFast and the GVSS
// echo/recover rounds. Secret recovery (evaluation of the interpolant at
// x = 0) then collapses to a single O(k) inner product with zero
// allocations, the identity 'sum_i y_i * L_i(0)' from the standard
// Lagrange expansion (Aspnes, arXiv:2001.04235 §"Secret sharing").

// reconCacheMaxX is the largest x-coordinate representable in the cache's
// subset bitmask. Point sets containing larger (or zero, or duplicate)
// coordinates are still handled, just without caching.
const reconCacheMaxX = 64

// reconCacheMaxEntries bounds the process-wide cache so adversarially
// chosen share subsets cannot grow it without limit; beyond the bound,
// new subsets compute uncached Recons.
const reconCacheMaxEntries = 4096

var reconCache struct {
	sync.RWMutex
	m map[uint64]*Recon
}

// Recon holds the precomputed Lagrange data for one fixed set of distinct
// interpolation x-coordinates: the weights L_i(0) for constant-term
// (secret) recovery and the full coefficient vectors of the Lagrange basis
// polynomials L_i for coefficient-form interpolation. Recons are immutable
// after construction and safe for concurrent use.
type Recon struct {
	xs []Elem
	// w0[i] = L_i(0): the interpolant's value at 0 is Dot(w0, ys).
	w0 []Elem
	// basis is row-major k×k: basis[i*k+d] is the coefficient of x^d in
	// L_i(x), so interpolation is result[d] = sum_i ys[i]*basis[i*k+d].
	basis []Elem
}

// ReconFor returns the Recon for the given x-coordinates, serving it from
// the process-wide cache when the set is cacheable (distinct values in
// [1, 64], ascending order — the shape every share subset in this
// repository has). Uncacheable sets get a freshly computed Recon, so
// callers never need a fallback path. Duplicate x values panic (inside
// BatchInv), matching Interpolate's contract.
func ReconFor(xs []Elem) *Recon {
	mask := uint64(0)
	cacheable := true
	prev := Elem(0)
	for _, x := range xs {
		if x <= prev || x > reconCacheMaxX {
			cacheable = false
			break
		}
		mask |= 1 << (x - 1)
		prev = x
	}
	if !cacheable {
		return newRecon(xs)
	}
	reconCache.RLock()
	r := reconCache.m[mask]
	reconCache.RUnlock()
	if r != nil {
		return r
	}
	r = newRecon(xs)
	reconCache.Lock()
	if existing := reconCache.m[mask]; existing != nil {
		r = existing
	} else if len(reconCache.m) < reconCacheMaxEntries {
		if reconCache.m == nil {
			reconCache.m = make(map[uint64]*Recon)
		}
		reconCache.m[mask] = r
	}
	reconCache.Unlock()
	return r
}

// newRecon computes Lagrange data for xs in O(k^2) multiplications with a
// single batched inversion of the k denominators.
func newRecon(xs []Elem) *Recon {
	k := len(xs)
	r := &Recon{
		xs:    append([]Elem(nil), xs...),
		w0:    make([]Elem, k),
		basis: make([]Elem, k*k),
	}
	if k == 0 {
		return r
	}
	// Master polynomial M(x) = prod_j (x - x_j), degree k.
	master := make(Poly, k+1)
	master[0] = 1
	deg := 0
	for _, x := range xs {
		// Multiply by (x - x_j) in place, high coefficient first.
		deg++
		master[deg] = master[deg-1]
		for d := deg - 1; d > 0; d-- {
			master[d] = Sub(master[d-1], Mul(master[d], x))
		}
		master[0] = Mul(master[0], Neg(x))
	}
	// Denominators d_i = prod_{j!=i} (x_i - x_j) = M'(x_i), batch-inverted.
	den := make([]Elem, k)
	for i, xi := range xs {
		d := Elem(1)
		for j, xj := range xs {
			if j != i {
				d = Mul(d, Sub(xi, xj))
			}
		}
		den[i] = d
	}
	BatchInv(den, nil)
	// L_i = (M / (x - x_i)) * den_i^-1 by synthetic division of M.
	for i, xi := range xs {
		row := r.basis[i*k : i*k+k]
		carry := master[k] // quotient coefficient of x^{k-1}
		for d := k - 1; d >= 0; d-- {
			row[d] = carry
			carry = MulAdd(master[d], carry, xi)
		}
		inv := den[i]
		for d := range row {
			row[d] = Mul(row[d], inv)
		}
		r.w0[i] = row[0]
	}
	return r
}

// K returns the number of interpolation points.
func (r *Recon) K() int { return len(r.xs) }

// SecretAt0 returns the value at x = 0 of the unique degree-<k polynomial
// through (xs, ys): the Shamir secret when xs are share indices. It is a
// single allocation-free inner product against the cached weights.
func (r *Recon) SecretAt0(ys []Elem) Elem { return Dot(r.w0, ys) }

// InterpolateInto writes the coefficients of the interpolant through
// (xs, ys) into dst (reallocating only when dst is too small) and returns
// the trimmed polynomial. ys must have length K().
func (r *Recon) InterpolateInto(dst Poly, ys []Elem) Poly {
	k := len(r.xs)
	if len(ys) != k {
		panic("field: interpolate length mismatch")
	}
	if cap(dst) < k {
		dst = make(Poly, k)
	}
	dst = dst[:k]
	for d := range dst {
		dst[d] = 0
	}
	// Accumulate in the relaxed (<2^33) folded range directly inside dst:
	// each step adds a 62-bit product to a <2^33 accumulator, staying
	// below 2^63, then folds once.
	for i := 0; i < k; i++ {
		y := uint64(ys[i])
		if y == 0 {
			continue
		}
		row := r.basis[i*k : i*k+k]
		for d, c := range row {
			dst[d] = Elem(fold(uint64(dst[d]) + y*uint64(c)))
		}
	}
	for d := range dst {
		dst[d] = reduceWide(uint64(dst[d]))
	}
	return dst.trim()
}

// Interpolate is InterpolateInto with a fresh destination.
func (r *Recon) Interpolate(ys []Elem) Poly { return r.InterpolateInto(nil, ys) }

// EvalAt0 returns the value at x = 0 of the interpolant through (xs, ys),
// using the process-wide weight cache. It is the zero-allocation
// replacement for Interpolate(xs, ys).Eval(0).
func EvalAt0(xs, ys []Elem) Elem {
	if len(xs) != len(ys) {
		panic("field: interpolate length mismatch")
	}
	return ReconFor(xs).SecretAt0(ys)
}
