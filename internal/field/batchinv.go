package field

// BatchInv replaces every element of a with its multiplicative inverse
// using Montgomery's trick: one Fermat inversion plus 3(len(a)-1)
// multiplications, instead of one ~60-multiplication Fermat inversion per
// element. Any zero entry panics, matching Inv: division by zero is a
// protocol logic error, never bad remote input.
//
// scratch, when non-nil and large enough, is used for the prefix-product
// table so steady-state callers allocate nothing; pass nil for a one-shot
// call.
func BatchInv(a []Elem, scratch []Elem) {
	n := len(a)
	if n == 0 {
		return
	}
	if n == 1 {
		a[0] = Inv(a[0])
		return
	}
	prefix := scratch
	if cap(prefix) < n {
		prefix = make([]Elem, n)
	}
	prefix = prefix[:n]
	// prefix[i] = a[0]*...*a[i]
	acc := a[0]
	prefix[0] = acc
	for i := 1; i < n; i++ {
		acc = Mul(acc, a[i])
		prefix[i] = acc
	}
	inv := Inv(acc) // panics on zero product, i.e. any zero entry
	for i := n - 1; i > 0; i-- {
		ai := a[i]
		a[i] = Mul(inv, prefix[i-1])
		inv = Mul(inv, ai)
	}
	a[0] = inv
}
