package field

import (
	"math/rand"
	"testing"
)

// withKernel runs f once per selectable kernel, restoring the default.
func withKernel(t *testing.T, f func(t *testing.T, name string)) {
	t.Helper()
	for _, name := range EvalKernels() {
		prev, err := SetEvalKernel(name)
		if err != nil {
			t.Fatalf("SetEvalKernel(%q): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { f(t, name) })
		if _, err := SetEvalKernel(prev); err != nil {
			t.Fatalf("restore kernel %q: %v", prev, err)
		}
	}
	if _, err := SetEvalKernel("auto"); err != nil {
		t.Fatal(err)
	}
}

// hostileTab returns a w×n table salted with boundary values (0, 1, P-1)
// so the lazy-reduction budgets are exercised at their extremes.
func hostileTab(rng *rand.Rand, w, n int) []Elem {
	tab := make([]Elem, w*n)
	for i := range tab {
		switch rng.Intn(5) {
		case 0:
			tab[i] = Elem(P - 1)
		case 1:
			tab[i] = 0
		case 2:
			tab[i] = 1
		default:
			tab[i] = Elem(rng.Uint64() % P)
		}
	}
	return tab
}

// TestEvalKernelsMatchRef pins every selectable kernel bit-for-bit
// against the scalar reference across shapes that hit all block/tail
// combinations (n mod 8 ∈ 0..7, coefficient counts hitting quad, pair
// and single remainders, including the empty polynomial).
func TestEvalKernelsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type shape struct{ n, w int }
	var shapes []shape
	for n := 0; n <= 40; n++ {
		for _, w := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 11, 13} {
			shapes = append(shapes, shape{n, w})
		}
	}
	withKernel(t, func(t *testing.T, name string) {
		for _, s := range shapes {
			coeffs := make([]Elem, s.w)
			for i := range coeffs {
				if rng.Intn(4) == 0 {
					coeffs[i] = Elem(P - 1)
				} else {
					coeffs[i] = Elem(rng.Uint64() % P)
				}
			}
			tab := hostileTab(rng, s.w, s.n)
			want := make([]Elem, s.n)
			evalColumnsRef(want, coeffs, tab, s.n)
			got := make([]Elem, s.n)
			for i := range got {
				got[i] = Elem(rng.Uint64()) // poison: kernel must overwrite
			}
			activeKernel.fn(got, coeffs, tab, s.n)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("kernel %s n=%d w=%d: dst[%d] = %d, ref %d", name, s.n, s.w, j, got[j], want[j])
				}
			}
		}
	})
}

// TestEvalKernelsMaxValues drives every kernel with all inputs at P-1 —
// the worst case for every overflow budget — at the widest shapes.
func TestEvalKernelsMaxValues(t *testing.T) {
	withKernel(t, func(t *testing.T, name string) {
		for _, n := range []int{8, 16, 33, 64} {
			for _, w := range []int{1, 2, 4, 23, 64} {
				coeffs := make([]Elem, w)
				tab := make([]Elem, w*n)
				for i := range coeffs {
					coeffs[i] = Elem(P - 1)
				}
				for i := range tab {
					tab[i] = Elem(P - 1)
				}
				want := make([]Elem, n)
				evalColumnsRef(want, coeffs, tab, n)
				got := make([]Elem, n)
				activeKernel.fn(got, coeffs, tab, n)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("kernel %s n=%d w=%d all-max: dst[%d] = %d, ref %d", name, n, w, j, got[j], want[j])
					}
				}
			}
		}
	})
}

func TestSetEvalKernelUnknown(t *testing.T) {
	prev, err := SetEvalKernel("no-such-kernel")
	if err == nil {
		t.Fatal("expected error for unknown kernel")
	}
	if prev != activeKernel.name {
		t.Fatalf("failed SetEvalKernel changed the active kernel to %q", activeKernel.name)
	}
	if _, err := SetEvalKernel("auto"); err != nil {
		t.Fatal(err)
	}
	if activeKernel.name != kernelTable[0].name {
		t.Fatalf("auto selected %q, want %q", activeKernel.name, kernelTable[0].name)
	}
}

// FuzzEvalColumns feeds random (coeffs, table, n) shapes to every
// selectable kernel and requires bit-for-bit agreement with the scalar
// reference. Raw bytes map onto elements with a bias toward the P-1
// boundary so the fold budgets are stressed, not just the happy range.
func FuzzEvalColumns(f *testing.F) {
	f.Add(uint8(16), uint8(6), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(7), uint8(3), []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(uint8(33), uint8(12), []byte{})
	f.Fuzz(func(t *testing.T, nRaw, wRaw uint8, data []byte) {
		n := int(nRaw % 65)
		w := int(wRaw % 17)
		elemAt := func(i int) Elem {
			// Deterministic element stream from data: little-endian u32
			// windows, every 5th element snapped to P-1.
			var v uint64
			for b := 0; b < 4; b++ {
				idx := i*4 + b
				if idx < len(data) {
					v |= uint64(data[idx]) << (8 * b)
				}
			}
			if i%5 == 4 {
				return Elem(P - 1)
			}
			return Elem(v % P)
		}
		coeffs := make([]Elem, w)
		for i := range coeffs {
			coeffs[i] = elemAt(i)
		}
		tab := make([]Elem, w*n)
		for i := range tab {
			tab[i] = elemAt(w + i)
		}
		want := make([]Elem, n)
		evalColumnsRef(want, coeffs, tab, n)
		got := make([]Elem, n)
		for _, name := range EvalKernels() {
			if name == "ref" {
				continue
			}
			if _, err := SetEvalKernel(name); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				got[i] = 0xdeadbeef
			}
			evalColumns(got, coeffs, tab, n)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("kernel %s n=%d w=%d: dst[%d] = %d, ref %d", name, n, w, j, got[j], want[j])
				}
			}
		}
		if _, err := SetEvalKernel("auto"); err != nil {
			t.Fatal(err)
		}
	})
}

// BenchmarkEvalColumns isolates the kernel from protocol noise: one
// (coeffs, table) shape per protocol size (w = f+1 coefficients, n
// points — the GVSS row-evaluation shape), every selectable kernel.
// ns/elem reports time per multiply-add term.
func BenchmarkEvalColumns(b *testing.B) {
	shapes := []struct{ n, w int }{
		{4, 2}, {8, 3}, {16, 6}, {32, 11}, {64, 22},
	}
	rng := rand.New(rand.NewSource(42))
	for _, name := range EvalKernels() {
		for _, s := range shapes {
			coeffs := make([]Elem, s.w)
			for i := range coeffs {
				coeffs[i] = Elem(rng.Uint64() % P)
			}
			tab := hostileTab(rng, s.w, s.n)
			dst := make([]Elem, s.n)
			b.Run(name+"/n="+itoa(s.n)+"/w="+itoa(s.w), func(b *testing.B) {
				prev, err := SetEvalKernel(name)
				if err != nil {
					b.Fatal(err)
				}
				defer SetEvalKernel(prev)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					evalColumns(dst, coeffs, tab, s.n)
				}
				b.StopTimer()
				elems := float64(s.n * s.w)
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/elems, "ns/elem")
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
