package field

// DecodeFast is Decode with a happy-path shortcut: it first interpolates
// through the first degree+1 points and accepts the result if it disagrees
// with at most maxErrors of all points. This avoids the Berlekamp–Welch
// linear system entirely in the common case where no (or few, and
// unluckily-placed) errors are present; it falls back to Decode otherwise.
func DecodeFast(xs, ys []Elem, degree, maxErrors int) (Poly, error) {
	// Cap at the information-theoretic bound, as Decode does: accepting a
	// fit with more disagreements than (m-degree-1)/2 would not be unique
	// and could differ between honest receivers of equivocated shares.
	if cap := (len(xs) - degree - 1) / 2; maxErrors > cap {
		maxErrors = cap
	}
	if degree >= 0 && maxErrors >= 0 && len(xs) == len(ys) && len(xs) > degree {
		p := Interpolate(xs[:degree+1], ys[:degree+1])
		bad := 0
		for i := range xs {
			if p.Eval(xs[i]) != ys[i] {
				bad++
				if bad > maxErrors {
					break
				}
			}
		}
		if bad <= maxErrors {
			return p, nil
		}
	}
	return Decode(xs, ys, degree, maxErrors)
}
