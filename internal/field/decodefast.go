package field

// DecodeFast is Decode with a happy-path shortcut: it first interpolates
// through the first degree+1 points and accepts the result if it disagrees
// with at most maxErrors of all points. This avoids the Berlekamp–Welch
// linear system entirely in the common case where no (or few, and
// unluckily-placed) errors are present; it falls back to Decode otherwise.
//
// The happy-path interpolation runs through the Recon weight cache: share
// x-sets repeat every beat, so the Lagrange basis is looked up rather than
// rebuilt, making the no-error case a single O(degree^2) mul-add sweep
// plus the verification scan.
func DecodeFast(xs, ys []Elem, degree, maxErrors int) (Poly, error) {
	return DecodeFastInto(nil, xs, ys, degree, maxErrors)
}

// DecodeFastInto is DecodeFast reusing dst for the happy-path result; hot
// callers that do not retain the polynomial (the GVSS recover round) pass
// a scratch buffer and decode with zero allocations. The fallback path
// (Decode) still allocates — it only runs under active Byzantine
// corruption.
func DecodeFastInto(dst Poly, xs, ys []Elem, degree, maxErrors int) (Poly, error) {
	// Cap at the information-theoretic bound, as Decode does: accepting a
	// fit with more disagreements than (m-degree-1)/2 would not be unique
	// and could differ between honest receivers of equivocated shares.
	if cap := (len(xs) - degree - 1) / 2; maxErrors > cap {
		maxErrors = cap
	}
	if degree >= 0 && maxErrors >= 0 && len(xs) == len(ys) && len(xs) > degree {
		p := ReconFor(xs[:degree+1]).InterpolateInto(dst, ys[:degree+1])
		bad := 0
		for i := range xs {
			if p.Eval(xs[i]) != ys[i] {
				bad++
				if bad > maxErrors {
					break
				}
			}
		}
		if bad <= maxErrors {
			return p, nil
		}
	}
	return Decode(xs, ys, degree, maxErrors)
}
