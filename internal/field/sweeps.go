package field

// Fused elementwise sweep primitives. The protocol's delivery paths are
// dominated by three loop shapes that are not polynomial evaluation but
// are just as SIMD-shaped: counting positions where two streams differ
// (suffix verification tallies), a combined range-check + masked
// equality tally (the echo agreement sweep), and boolean tallies (vote
// counting). Each has a scalar reference implementation here — the
// branch-free idioms the callers previously inlined — and an AVX2
// variant (kernels_amd64.s) installed over the function pointers at
// init when the CPU supports it. The references double as differential
// oracles: the tests and fuzzers in sweeps_test.go pin the installed
// implementation bit-for-bit against them.
//
// All variants compute exact integer results (no lazy reduction is
// involved), so installed and reference implementations agree exactly,
// and callers' protocol trajectories are identical across them.

var (
	accumNeqImpl   = accumNeqRef
	sweepTallyImpl = sweepTallyRef
	accumBoolImpl  = accumBoolRef
	countBoolImpl  = countBoolRef
	rangeOrImpl    = rangeOrRef
)

// wideSweepsOn tracks whether the arch-accelerated sweep variants are
// currently installed; installWideSweeps re-installs them (set by the
// arch init when the CPU qualifies, nil otherwise).
var (
	wideSweepsOn      bool
	installWideSweeps func()
)

// SetWideSweeps installs (true) or removes (false) the arch-accelerated
// sweep implementations, returning the previous setting so callers can
// restore it. Like SetEvalKernel this is a differential-test hook: every
// variant computes exact results, so toggling changes speed only, never
// output. On platforms without accelerated sweeps enabling is a no-op.
// Not safe to call concurrently with running sweeps.
func SetWideSweeps(enable bool) (prev bool) {
	prev = wideSweepsOn
	if enable && installWideSweeps != nil {
		installWideSweeps()
		wideSweepsOn = true
		return prev
	}
	accumNeqImpl = accumNeqRef
	sweepTallyImpl = sweepTallyRef
	accumBoolImpl = accumBoolRef
	countBoolImpl = countBoolRef
	rangeOrImpl = rangeOrRef
	wideSweepsOn = false
	return prev
}

// AccumNeq adds 1 to bad[i] at every position where a[i] != b[i].
// bad and b must be at least as long as a.
func AccumNeq(bad []uint64, a, b []Elem) {
	if len(bad) < len(a) || len(b) < len(a) {
		panic("field: AccumNeq length mismatch")
	}
	accumNeqImpl(bad, a, b)
}

func accumNeqRef(bad []uint64, a, b []Elem) {
	for i := range a {
		x := uint64(a[i] ^ b[i])
		bad[i] += (x | -x) >> 63 // 1 iff the elements differ
	}
}

// SweepTally is the fused validate+tally pass: one traversal of vals
// OR-accumulates the canonical-range mask (hi collects high bits,
// borrow collects underflows of (P-1)-v; vals are all canonical iff
// hi>>31 == 0 && borrow>>63 == 0) while adding ±1 to agree[i] at every
// position where vals[i] == ev[i] and has[i] — +1 normally, -1 when
// negate is set (the caller's rollback re-sweep). The adds wrap in
// uint64, so a rollback subtracts exactly what the matching positive
// sweep added. ev, agree and has must be at least as long as vals.
func SweepTally(agree []uint64, ev, vals []Elem, has []bool, negate bool) (hi, borrow uint64) {
	if len(agree) < len(vals) || len(ev) < len(vals) || len(has) < len(vals) {
		panic("field: SweepTally length mismatch")
	}
	dirBits := uint64(1)
	if negate {
		dirBits = ^uint64(0)
	}
	return sweepTallyImpl(agree, ev, vals, has, dirBits)
}

func sweepTallyRef(agree []uint64, ev, vals []Elem, has []bool, dirBits uint64) (hi, borrow uint64) {
	const max = uint64(P - 1)
	for i := range vals {
		v := uint64(vals[i])
		hi |= v
		borrow |= max - v
		x := v ^ uint64(ev[i])
		// em is all-ones iff present and equal — the same mask the AVX2
		// lanes compute — then dirBits turns it into +1 or -1.
		em := -((((x | -x) >> 63) ^ 1) & b2u(has[i]))
		agree[i] += em & dirBits
	}
	return hi, borrow
}

// RangeOr OR-accumulates the canonical-range masks of es — the
// validate half of SweepTally on its own, for callers that range-check
// a stream without tallying. All elements are canonical (< P) iff
// hi>>31 == 0 && borrow>>63 == 0: hi catches any bit at or above 2^31,
// and borrow underflows on P itself (huge values also wrap borrow, but
// hi already caught them).
func RangeOr(es []Elem) (hi, borrow uint64) {
	return rangeOrImpl(es)
}

func rangeOrRef(es []Elem) (hi, borrow uint64) {
	const max = uint64(P - 1)
	for _, e := range es {
		hi |= uint64(e)
		borrow |= max - uint64(e)
	}
	return hi, borrow
}

// AccumBool adds bs[i] (as 0/1) to cnt[i]. cnt must be at least as
// long as bs.
func AccumBool(cnt []uint64, bs []bool) {
	if len(cnt) < len(bs) {
		panic("field: AccumBool length mismatch")
	}
	accumBoolImpl(cnt, bs)
}

func accumBoolRef(cnt []uint64, bs []bool) {
	for i, b := range bs {
		cnt[i] += b2u(b)
	}
}

// CountBool returns the number of true values in bs.
func CountBool(bs []bool) uint64 {
	return countBoolImpl(bs)
}

func countBoolRef(bs []bool) uint64 {
	var c uint64
	for _, b := range bs {
		c += b2u(b)
	}
	return c
}

// b2u converts a bool to 0/1 without a branch (the compiler emits a
// zero-extending byte load).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
