package field

import (
	"math/rand"
	"testing"
)

// sweepElems builds a hostile element stream: random values salted
// with canonical boundaries and out-of-range values (P, 2^31, huge).
func sweepElems(rng *rand.Rand, n int) []Elem {
	es := make([]Elem, n)
	for i := range es {
		switch rng.Intn(8) {
		case 0:
			es[i] = Elem(P - 1)
		case 1:
			es[i] = 0
		case 2:
			es[i] = Elem(P) // first non-canonical value
		case 3:
			es[i] = Elem(1) << 31
		case 4:
			es[i] = Elem(rng.Uint64()) // arbitrary garbage
		default:
			es[i] = Elem(rng.Uint64() % P)
		}
	}
	return es
}

// TestSweepPrimitivesMatchRef pins the installed (possibly AVX2)
// implementations bit-for-bit against the scalar references across
// lengths covering every block/tail split.
func TestSweepPrimitivesMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 63, 256, 257} {
		a := sweepElems(rng, n)
		b := sweepElems(rng, n)
		for i := range b {
			if rng.Intn(3) == 0 {
				b[i] = a[i] // force equal positions
			}
		}
		has := make([]bool, n)
		for i := range has {
			has[i] = rng.Intn(4) != 0
		}

		badW := make([]uint64, n)
		badR := make([]uint64, n)
		for i := range badW {
			badW[i] = uint64(rng.Intn(5))
			badR[i] = badW[i]
		}
		AccumNeq(badW, a, b)
		accumNeqRef(badR, a, b)
		for i := range badW {
			if badW[i] != badR[i] {
				t.Fatalf("AccumNeq n=%d: bad[%d]=%d, ref %d", n, i, badW[i], badR[i])
			}
		}

		for _, negate := range []bool{false, true} {
			agW := make([]uint64, n)
			agR := make([]uint64, n)
			for i := range agW {
				agW[i] = uint64(rng.Intn(3))
				agR[i] = agW[i]
			}
			hiW, boW := SweepTally(agW, a, b, has, negate)
			dir := uint64(1)
			if negate {
				dir = ^uint64(0)
			}
			hiR, boR := sweepTallyRef(agR, a, b, has, dir)
			if hiW != hiR || boW != boR {
				t.Fatalf("SweepTally n=%d negate=%v: masks (%x,%x), ref (%x,%x)", n, negate, hiW, boW, hiR, boR)
			}
			for i := range agW {
				if agW[i] != agR[i] {
					t.Fatalf("SweepTally n=%d negate=%v: agree[%d]=%d, ref %d", n, negate, i, agW[i], agR[i])
				}
			}
		}

		hiW, boW := RangeOr(a)
		hiR, boR := rangeOrRef(a)
		if hiW != hiR || boW != boR {
			t.Fatalf("RangeOr n=%d: (%x,%x), ref (%x,%x)", n, hiW, boW, hiR, boR)
		}

		cntW := make([]uint64, n)
		cntR := make([]uint64, n)
		AccumBool(cntW, has)
		accumBoolRef(cntR, has)
		for i := range cntW {
			if cntW[i] != cntR[i] {
				t.Fatalf("AccumBool n=%d: cnt[%d]=%d, ref %d", n, i, cntW[i], cntR[i])
			}
		}
		if got, want := CountBool(has), countBoolRef(has); got != want {
			t.Fatalf("CountBool n=%d: %d, ref %d", n, got, want)
		}
	}
}

// FuzzSweepTally feeds arbitrary byte-derived (vals, ev, has) triples
// to the installed SweepTally and requires exact agreement with the
// scalar reference — masks and every tally slot.
func FuzzSweepTally(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, false)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 1, 0, 1}, true)
	f.Fuzz(func(t *testing.T, data []byte, negate bool) {
		n := len(data) / 10
		vals := make([]Elem, n)
		ev := make([]Elem, n)
		has := make([]bool, n)
		for i := 0; i < n; i++ {
			var v, e uint64
			for b := 0; b < 4; b++ {
				v |= uint64(data[i*10+b]) << (8 * b)
				e |= uint64(data[i*10+4+b]) << (8 * b)
			}
			// Stretch some values far outside the canonical range.
			v <<= uint(data[i*10+8] % 33)
			vals[i] = Elem(v)
			if data[i*10+8]%3 == 0 {
				ev[i] = vals[i] // force agreement positions
			} else {
				ev[i] = Elem(e % P)
			}
			has[i] = data[i*10+9]&1 == 1
		}
		agW := make([]uint64, n)
		agR := make([]uint64, n)
		hiW, boW := SweepTally(agW, ev, vals, has, negate)
		dir := uint64(1)
		if negate {
			dir = ^uint64(0)
		}
		hiR, boR := sweepTallyRef(agR, ev, vals, has, dir)
		if hiW != hiR || boW != boR {
			t.Fatalf("masks (%x,%x), ref (%x,%x)", hiW, boW, hiR, boR)
		}
		roW, roBW := RangeOr(vals)
		roR, roBR := rangeOrRef(vals)
		if roW != roR || roBW != roBR {
			t.Fatalf("RangeOr (%x,%x), ref (%x,%x)", roW, roBW, roR, roBR)
		}
		for i := range agW {
			if agW[i] != agR[i] {
				t.Fatalf("agree[%d]=%d, ref %d", i, agW[i], agR[i])
			}
		}
	})
}
