package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceCanonical(t *testing.T) {
	cases := []struct {
		in   uint64
		want Elem
	}{
		{0, 0},
		{1, 1},
		{P - 1, Elem(P - 1)},
		{P, 0},
		{P + 5, 5},
		{^uint64(0), Elem(^uint64(0) % P)},
	}
	for _, c := range cases {
		if got := Reduce(c.in); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := Reduce(a), Reduce(b)
		return Sub(Add(x, y), y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := Reduce(a), Reduce(b), Reduce(c)
		if Mul(x, y) != Mul(y, x) {
			return false
		}
		return Mul(Mul(x, y), z) == Mul(x, Mul(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := Reduce(a), Reduce(b), Reduce(c)
		return Mul(x, Add(y, z)) == Add(Mul(x, y), Mul(x, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvIsInverse(t *testing.T) {
	f := func(a uint64) bool {
		x := Reduce(a)
		if x == 0 {
			return true // Inv(0) panics by contract
		}
		return Mul(x, Inv(x)) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestNeg(t *testing.T) {
	f := func(a uint64) bool {
		x := Reduce(a)
		return Add(x, Neg(x)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Reduce(rng.Uint64())
		e := rng.Uint64() % 50
		want := Elem(1)
		for j := uint64(0); j < e; j++ {
			want = Mul(want, a)
		}
		if got := Pow(a, e); got != want {
			t.Fatalf("Pow(%d,%d)=%d want %d", a, e, got, want)
		}
	}
}

func TestFermat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := Reduce(rng.Uint64())
		if a == 0 {
			continue
		}
		if Pow(a, P-1) != 1 {
			t.Fatalf("a^(P-1) != 1 for a=%d", a)
		}
	}
}

func TestPolyEvalKnown(t *testing.T) {
	// p(x) = 3 + 2x + x^2
	p := Poly{3, 2, 1}
	cases := []struct{ x, want Elem }{
		{0, 3}, {1, 6}, {2, 11}, {10, 123},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); got != c.want {
			t.Errorf("p(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestInterpolateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		deg := rng.Intn(8)
		p := RandomPoly(rng, deg, Reduce(rng.Uint64()))
		xs := make([]Elem, deg+1)
		ys := make([]Elem, deg+1)
		for i := range xs {
			xs[i] = Elem(i + 1)
			ys[i] = p.Eval(xs[i])
		}
		q := Interpolate(xs, ys)
		for x := Elem(1); x < 30; x++ {
			if p.Eval(x) != q.Eval(x) {
				t.Fatalf("trial %d: interpolated poly disagrees at x=%d", trial, x)
			}
		}
	}
}

func TestInterpolateConstant(t *testing.T) {
	q := Interpolate([]Elem{5}, []Elem{42})
	if q.Eval(0) != 42 || q.Eval(17) != 42 {
		t.Fatalf("constant interpolation failed: %v", q)
	}
}

func TestDegree(t *testing.T) {
	cases := []struct {
		p    Poly
		want int
	}{
		{nil, -1},
		{Poly{0}, -1},
		{Poly{7}, 0},
		{Poly{0, 0, 3}, 2},
		{Poly{1, 2, 0, 0}, 1},
	}
	for _, c := range cases {
		if got := c.p.Degree(); got != c.want {
			t.Errorf("Degree(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestRandomPolySecretAndDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for deg := 0; deg < 6; deg++ {
		p := RandomPoly(rng, deg, 99)
		if p.Eval(0) != 99 {
			t.Fatalf("secret not at constant term: %v", p)
		}
		if len(p) != deg+1 {
			t.Fatalf("wrong coefficient count: %v", p)
		}
	}
}

func TestDecodeNoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		deg := rng.Intn(5)
		p := RandomPoly(rng, deg, Reduce(rng.Uint64()))
		m := deg + 1 + 2*rng.Intn(4)
		xs, ys := evalPoints(p, m)
		got, err := Decode(xs, ys, deg, (m-deg-1)/2)
		if err != nil {
			t.Fatalf("trial %d: decode failed: %v", trial, err)
		}
		if !polyEq(got, p, 40) {
			t.Fatalf("trial %d: wrong polynomial", trial)
		}
	}
}

func TestDecodeCorrectsMaxErrors(t *testing.T) {
	// The GVSS configuration: n = 3f+1 points, degree f, up to f errors.
	rng := rand.New(rand.NewSource(6))
	for f := 1; f <= 4; f++ {
		n := 3*f + 1
		for trial := 0; trial < 20; trial++ {
			p := RandomPoly(rng, f, Reduce(rng.Uint64()))
			xs, ys := evalPoints(p, n)
			// Corrupt exactly f distinct positions with random garbage.
			for _, idx := range rng.Perm(n)[:f] {
				ys[idx] = Add(ys[idx], Elem(1+rng.Uint64()%(P-1)))
			}
			got, err := Decode(xs, ys, f, f)
			if err != nil {
				t.Fatalf("f=%d trial %d: decode failed: %v", f, trial, err)
			}
			if !polyEq(got, p, uint64(n)+5) {
				t.Fatalf("f=%d trial %d: wrong polynomial", f, trial)
			}
		}
	}
}

func TestDecodeSecretRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := 3
	n := 3*f + 1
	for trial := 0; trial < 20; trial++ {
		secret := Reduce(rng.Uint64())
		p := RandomPoly(rng, f, secret)
		xs, ys := evalPoints(p, n)
		for _, idx := range rng.Perm(n)[:f] {
			ys[idx] = Reduce(rng.Uint64())
		}
		got, err := Decode(xs, ys, f, f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Eval(0) != secret {
			t.Fatalf("trial %d: secret %d, decoded %d", trial, secret, got.Eval(0))
		}
	}
}

func TestDecodeTooManyErrorsFails(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := 2
	n := 3*f + 1
	failures := 0
	for trial := 0; trial < 30; trial++ {
		p := RandomPoly(rng, f, Reduce(rng.Uint64()))
		xs, ys := evalPoints(p, n)
		// f+1 coordinated errors lying on a different polynomial can fool
		// any decoder into a *different* answer; random errors beyond the
		// bound should usually produce either failure or a wrong secret.
		q := RandomPoly(rng, f, Reduce(rng.Uint64()))
		for _, idx := range rng.Perm(n)[:f+1] {
			ys[idx] = q.Eval(xs[idx])
		}
		got, err := Decode(xs, ys, f, f)
		if err != nil || got.Eval(0) != p.Eval(0) {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("decoder never failed with f+1 adversarial errors; bound is wrong")
	}
}

func TestDecodeRejectsTooFewPoints(t *testing.T) {
	if _, err := Decode([]Elem{1, 2}, []Elem{3, 4}, 4, 0); err == nil {
		t.Fatal("expected error for underdetermined decode")
	}
}

func TestDecodeMismatchedLengths(t *testing.T) {
	if _, err := Decode([]Elem{1}, []Elem{1, 2}, 0, 0); err == nil {
		t.Fatal("expected error for mismatched point lengths")
	}
}

func TestSolveLinearInconsistent(t *testing.T) {
	// x = 1 and x = 2 simultaneously.
	a := [][]Elem{{1}, {1}}
	b := []Elem{1, 2}
	if _, ok := solveLinear(a, b); ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

func TestPolyDivMod(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		d := RandomPoly(rng, 1+rng.Intn(4), Reduce(rng.Uint64()))
		if d.Degree() < 0 {
			continue
		}
		q := RandomPoly(rng, rng.Intn(5), Reduce(rng.Uint64()))
		r := RandomPoly(rng, d.Degree()-1, Reduce(rng.Uint64())) // deg < deg(d)
		// p = q*d + r
		p := q.mul(d)
		pp := make(Poly, len(p))
		copy(pp, p)
		for i, c := range r {
			if i < len(pp) {
				pp[i] = Add(pp[i], c)
			} else {
				pp = append(pp, c)
			}
		}
		gotQ, gotR := polyDivMod(pp, d)
		if !polyEq(gotQ, q, 20) || !polyEq(gotR, r, 20) {
			t.Fatalf("trial %d: division mismatch", trial)
		}
	}
}

func evalPoints(p Poly, m int) (xs, ys []Elem) {
	xs = make([]Elem, m)
	ys = make([]Elem, m)
	for i := 0; i < m; i++ {
		xs[i] = Elem(i + 1)
		ys[i] = p.Eval(xs[i])
	}
	return xs, ys
}

func polyEq(a, b Poly, upTo uint64) bool {
	for x := uint64(0); x <= upTo; x++ {
		if a.Eval(Elem(x%P)) != b.Eval(Elem(x%P)) {
			return false
		}
	}
	return true
}

func BenchmarkMul(b *testing.B) {
	x, y := Elem(123456789), Elem(987654321)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Inv(Elem(i%int(P-1) + 1))
	}
}

func BenchmarkDecodeF3(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	f := 3
	n := 3*f + 1
	p := RandomPoly(rng, f, 42)
	xs, ys := evalPoints(p, n)
	for _, idx := range rng.Perm(n)[:f] {
		ys[idx] = Reduce(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(xs, ys, f, f); err != nil {
			b.Fatal(err)
		}
	}
}
