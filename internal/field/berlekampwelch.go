package field

import (
	"errors"
	"fmt"
)

// ErrDecode is returned by Decode when the points are not within maxErrors
// of any polynomial of the requested degree. Callers (the GVSS recover
// phase) treat it as "dealer exposed as faulty" and substitute a default.
var ErrDecode = errors.New("field: berlekamp-welch decoding failed")

// Decode recovers the unique polynomial of degree <= degree that agrees
// with all but at most maxErrors of the given points, using the
// Berlekamp–Welch algorithm. The x-coordinates must be distinct and
// non-zero (our share indices are 1..n).
//
// With m points and e errors, decoding requires m >= degree+1+2e; the GVSS
// recover phase uses m = n, degree = f, e <= f, which at n = 3f+1 is
// exactly tight — the reason the paper's resiliency bound f < n/3 is
// optimal for this substrate.
func Decode(xs, ys []Elem, degree, maxErrors int) (Poly, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs vs %d ys", ErrDecode, len(xs), len(ys))
	}
	m := len(xs)
	if degree < 0 || maxErrors < 0 {
		return nil, fmt.Errorf("%w: negative degree or error bound", ErrDecode)
	}
	// Cap the error-locator degree at what the point count can support.
	if cap := (m - degree - 1) / 2; maxErrors > cap {
		maxErrors = cap
	}
	if maxErrors < 0 {
		return nil, fmt.Errorf("%w: %d points cannot determine degree-%d poly", ErrDecode, m, degree)
	}
	for e := maxErrors; e >= 0; e-- {
		if p, ok := tryDecode(xs, ys, degree, e); ok {
			return p, nil
		}
	}
	return nil, ErrDecode
}

// tryDecode attempts decoding with an error locator of degree exactly e:
// find monic E (degree e) and Q (degree <= degree+e) with
// Q(x_i) = y_i * E(x_i) for all i, then f = Q / E.
func tryDecode(xs, ys []Elem, degree, e int) (Poly, bool) {
	m := len(xs)
	nq := degree + e + 1 // unknown coefficients of Q
	ne := e              // unknown coefficients of E (monic leading term fixed)
	cols := nq + ne
	// Row i: sum_j q_j x^j - y_i sum_{j<e} E_j x^j = y_i x^e.
	a := make([][]Elem, m)
	b := make([]Elem, m)
	for i := 0; i < m; i++ {
		row := make([]Elem, cols)
		xp := Elem(1)
		for j := 0; j < nq; j++ {
			row[j] = xp
			xp = Mul(xp, xs[i])
		}
		xp = Elem(1)
		for j := 0; j < ne; j++ {
			row[nq+j] = Neg(Mul(ys[i], xp))
			xp = Mul(xp, xs[i])
		}
		a[i] = row
		// After the loop xp = xs[i]^ne = xs[i]^e, saving a Pow per row.
		b[i] = Mul(ys[i], xp)
	}
	sol, ok := solveLinear(a, b)
	if !ok {
		return nil, false
	}
	q := Poly(sol[:nq]).trim()
	eloc := make(Poly, e+1)
	copy(eloc, sol[nq:])
	eloc[e] = 1 // monic
	f, rem := polyDivMod(q, eloc)
	if rem.Degree() >= 0 || f.Degree() > degree {
		return nil, false
	}
	// Verify: f must disagree with at most e points.
	bad := 0
	for i := 0; i < m; i++ {
		if f.Eval(xs[i]) != ys[i] {
			bad++
		}
	}
	if bad > e {
		return nil, false
	}
	return f, true
}

// solveLinear solves A x = b over GF(P) by division-free Gauss–Jordan
// elimination with partial pivoting, returning any solution (free
// variables set to zero). ok is false when the system is inconsistent.
// A is mutated.
//
// Instead of normalizing each pivot row with a ~60-multiplication Fermat
// inversion, rows are eliminated by cross-multiplication
// (row_i := p*row_i - a_ic*row_r, valid over a field since every pivot p
// is non-zero), and the accumulated pivot diagonal is inverted once at
// the end with a single Montgomery batch inversion.
func solveLinear(a [][]Elem, b []Elem) ([]Elem, bool) {
	rows := len(a)
	if rows == 0 {
		return nil, false
	}
	cols := len(a[0])
	pivotCol := make([]int, 0, rows) // column of the pivot in each reduced row
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		// Find a pivot in column c at or below row r.
		pivot := -1
		for i := r; i < rows; i++ {
			if a[i][c] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a[r], a[pivot] = a[pivot], a[r]
		b[r], b[pivot] = b[pivot], b[r]
		p := a[r][c]
		for i := 0; i < rows; i++ {
			if i == r || a[i][c] == 0 {
				continue
			}
			factor := a[i][c]
			// Cross-multiplication scales all of row i, so the loop must
			// start at row i's first possibly-nonzero column: rows not yet
			// reduced (i > r) are zero left of c, but earlier pivot rows
			// can hold nonzero entries in skipped (free) columns at or
			// after their own pivot column. row_r itself is zero left of c.
			jStart := c
			if i < r {
				jStart = pivotCol[i]
			}
			for j := jStart; j < cols; j++ {
				a[i][j] = Sub(Mul(p, a[i][j]), Mul(factor, a[r][j]))
			}
			b[i] = Sub(Mul(p, b[i]), Mul(factor, b[r]))
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	// Inconsistency: a zero row with non-zero rhs. (Cross-multiplication
	// scales rows by non-zero pivots only, preserving zero/non-zero.)
	for i := r; i < rows; i++ {
		if b[i] != 0 {
			return nil, false
		}
	}
	// x[c] = b[i] / a[i][c] for each pivot row: one batched inversion.
	diag := make([]Elem, len(pivotCol))
	for i, c := range pivotCol {
		diag[i] = a[i][c]
	}
	BatchInv(diag, nil)
	x := make([]Elem, cols)
	for i, c := range pivotCol {
		x[c] = Mul(b[i], diag[i])
	}
	return x, true
}

// polyDivMod returns quotient and remainder of p / d. d must be non-zero;
// our only caller passes a monic E.
func polyDivMod(p, d Poly) (quot, rem Poly) {
	dd := d.Degree()
	if dd < 0 {
		panic("field: division by zero polynomial")
	}
	rem = p.Clone().trim()
	if rem.Degree() < dd {
		return nil, rem
	}
	quot = make(Poly, rem.Degree()-dd+1)
	inv := Inv(d[dd])
	for rem.Degree() >= dd {
		shift := rem.Degree() - dd
		factor := Mul(rem[rem.Degree()], inv)
		quot[shift] = factor
		for i := 0; i <= dd; i++ {
			rem[shift+i] = Sub(rem[shift+i], Mul(factor, d[i]))
		}
		rem = rem.trim()
	}
	return quot, rem
}
