package field

// Differential tests for the Mersenne-31 fast paths: every optimized
// routine is pitted against the reference implementation it replaced
// (mulRef, interpolateRef, per-element Inv), over random, edge-case and
// adversarial (out-of-range, Byzantine-corrupted) inputs. The references
// are retained in the package exactly for these oracles.

import (
	"math/rand"
	"testing"
)

// edgeElems are the canonical-range values most likely to expose folding
// bugs: boundaries of the fold windows and of the modulus.
var edgeElems = []Elem{0, 1, 2, 3, Elem(P - 1), Elem(P - 2), Elem(P / 2), Elem(P/2 + 1), 1 << 30, (1 << 30) - 1, (1 << 30) + 1}

func TestMulDifferential(t *testing.T) {
	for _, a := range edgeElems {
		for _, b := range edgeElems {
			if got, want := Mul(a, b), mulRef(a, b); got != want {
				t.Fatalf("Mul(%d,%d) = %d, ref %d", a, b, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		a, b := Reduce(rng.Uint64()), Reduce(rng.Uint64())
		if got, want := Mul(a, b), mulRef(a, b); got != want {
			t.Fatalf("Mul(%d,%d) = %d, ref %d", a, b, got, want)
		}
	}
}

func TestReduceDifferential(t *testing.T) {
	cases := []uint64{0, 1, P - 1, P, P + 1, 2 * P, 2*P - 1, 2*P + 1,
		1 << 31, (1 << 31) - 1, (1 << 31) + 1, 1 << 62, 1<<62 - 1, ^uint64(0), ^uint64(0) - 1}
	for _, v := range cases {
		if got, want := Reduce(v), Elem(v%P); got != want {
			t.Fatalf("Reduce(%d) = %d, want %d", v, got, want)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		v := rng.Uint64()
		if got, want := Reduce(v), Elem(v%P); got != want {
			t.Fatalf("Reduce(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestMulAddAndDotDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		acc, a, b := Reduce(rng.Uint64()), Reduce(rng.Uint64()), Reduce(rng.Uint64())
		if got, want := MulAdd(acc, a, b), Add(acc, mulRef(a, b)); got != want {
			t.Fatalf("MulAdd(%d,%d,%d) = %d, want %d", acc, a, b, got, want)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		k := rng.Intn(80)
		as := make([]Elem, k)
		bs := make([]Elem, k)
		var want Elem
		for i := range as {
			// Mix worst-case magnitude values in to stress the lazy
			// accumulator's overflow headroom.
			if rng.Intn(3) == 0 {
				as[i], bs[i] = Elem(P-1), Elem(P-1)
			} else {
				as[i], bs[i] = Reduce(rng.Uint64()), Reduce(rng.Uint64())
			}
			want = Add(want, mulRef(as[i], bs[i]))
		}
		if got := Dot(as, bs); got != want {
			t.Fatalf("Dot mismatch at trial %d: %d != %d", trial, got, want)
		}
	}
}

func TestEvalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	evalRef := func(p Poly, x Elem) Elem {
		var acc Elem
		for i := len(p) - 1; i >= 0; i-- {
			acc = Add(mulRef(acc, x), p[i])
		}
		return acc
	}
	for trial := 0; trial < 5000; trial++ {
		p := make(Poly, rng.Intn(12))
		for i := range p {
			if rng.Intn(3) == 0 {
				p[i] = Elem(P - 1)
			} else {
				p[i] = Reduce(rng.Uint64())
			}
		}
		x := Reduce(rng.Uint64())
		if rng.Intn(4) == 0 {
			x = Elem(P - 1)
		}
		if got, want := p.Eval(x), evalRef(p, x); got != want {
			t.Fatalf("Eval mismatch: %v at %d: %d != %d", p, x, got, want)
		}
	}
}

func TestBatchInvDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	scratch := make([]Elem, 64)
	for trial := 0; trial < 500; trial++ {
		k := rng.Intn(40)
		a := make([]Elem, k)
		want := make([]Elem, k)
		for i := range a {
			a[i] = Reduce(rng.Uint64())
			if a[i] == 0 {
				a[i] = 1
			}
			want[i] = Inv(a[i])
		}
		// Alternate between scratch reuse and one-shot nil scratch.
		if trial%2 == 0 {
			BatchInv(a, scratch)
		} else {
			BatchInv(a, nil)
		}
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("BatchInv[%d] = %d, want %d", i, a[i], want[i])
			}
		}
	}
}

func TestBatchInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BatchInv with a zero entry did not panic")
		}
	}()
	BatchInv([]Elem{3, 0, 5}, nil)
}

// randomXs returns k distinct x-coordinates; cached draws an ascending
// subset of 1..64 (the cacheable shape), uncached permutes it or shifts it
// out of the cacheable range.
func randomXs(rng *rand.Rand, k int, cached bool) []Elem {
	perm := rng.Perm(64)
	xs := make([]Elem, k)
	for i := 0; i < k; i++ {
		xs[i] = Elem(perm[i] + 1)
	}
	if cached {
		// ascending
		for i := 1; i < k; i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
	} else if rng.Intn(2) == 0 && k > 0 {
		// out of the bitmask range entirely
		for i := range xs {
			xs[i] = Add(xs[i], 100)
		}
	}
	return xs
}

func TestInterpolateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 3000; trial++ {
		k := 1 + rng.Intn(12)
		xs := randomXs(rng, k, trial%2 == 0)
		ys := make([]Elem, k)
		for i := range ys {
			ys[i] = Reduce(rng.Uint64())
		}
		got := Interpolate(xs, ys)
		want := interpolateRef(xs, ys)
		if len(got) != len(want) {
			t.Fatalf("trial %d: degree mismatch: %v vs %v", trial, got, want)
		}
		for d := range got {
			if got[d] != want[d] {
				t.Fatalf("trial %d: coeff %d: %d != %d", trial, d, got[d], want[d])
			}
		}
	}
}

func TestReconSecretAt0Differential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		k := 1 + rng.Intn(12)
		xs := randomXs(rng, k, trial%3 != 0)
		ys := make([]Elem, k)
		for i := range ys {
			ys[i] = Reduce(rng.Uint64())
		}
		if got, want := EvalAt0(xs, ys), interpolateRef(xs, ys).Eval(0); got != want {
			t.Fatalf("trial %d: EvalAt0 = %d, ref %d (xs=%v)", trial, got, want, xs)
		}
	}
}

func TestReconCacheSharing(t *testing.T) {
	xs := []Elem{1, 2, 3, 5, 8, 13}
	if r1, r2 := ReconFor(xs), ReconFor(xs); r1 != r2 {
		t.Fatal("cacheable point set not served from the cache")
	}
	shuffled := []Elem{2, 1, 3, 5, 8, 13}
	if r := ReconFor(shuffled); r == ReconFor(xs) {
		t.Fatal("non-ascending set must not alias the cached ascending one")
	}
	// Uncached sets still reconstruct correctly (covered above); here just
	// confirm they do not enter the cache.
	if r1, r2 := ReconFor(shuffled), ReconFor(shuffled); r1 == r2 {
		t.Fatal("uncacheable set unexpectedly cached")
	}
}

func TestInterpolateIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := []Elem{1, 2, 3, 4, 5, 6}
	r := ReconFor(xs)
	scratch := make(Poly, len(xs))
	for trial := 0; trial < 200; trial++ {
		ys := make([]Elem, len(xs))
		for i := range ys {
			ys[i] = Reduce(rng.Uint64())
		}
		got := r.InterpolateInto(scratch, ys)
		want := interpolateRef(xs, ys)
		if len(got) != len(want) {
			t.Fatalf("trim mismatch: %v vs %v", got, want)
		}
		for d := range got {
			if got[d] != want[d] {
				t.Fatalf("coeff %d: %d != %d", d, got[d], want[d])
			}
		}
	}
}

// TestDecodeFastAdversarial checks DecodeFast (the cached-weight happy
// path plus Berlekamp–Welch fallback) against plain Decode on shares with
// Byzantine corruption in random positions, including values forged at
// the top of the canonical range.
func TestDecodeFastAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1500; trial++ {
		f := 1 + rng.Intn(4)
		n := 3*f + 1
		p := RandomPoly(rng, f, Reduce(rng.Uint64()))
		xs := make([]Elem, n)
		ys := make([]Elem, n)
		for i := 0; i < n; i++ {
			xs[i] = Elem(i + 1)
			ys[i] = p.Eval(xs[i])
		}
		// Corrupt up to f shares at random positions.
		bad := rng.Intn(f + 1)
		for _, pos := range rng.Perm(n)[:bad] {
			switch rng.Intn(3) {
			case 0:
				ys[pos] = Elem(P - 1) // top of range
			case 1:
				ys[pos] = Add(ys[pos], 1) // off by one
			default:
				ys[pos] = Reduce(rng.Uint64())
			}
		}
		fast, errFast := DecodeFast(xs, ys, f, f)
		slow, errSlow := Decode(xs, ys, f, f)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("trial %d: error mismatch: fast=%v slow=%v", trial, errFast, errSlow)
		}
		if errFast != nil {
			continue
		}
		// Both must recover the dealt polynomial: corruption is <= f and
		// n >= deg+1+2f, so decoding is unique.
		if fast.Degree() != p.Degree() || slow.Degree() != p.Degree() {
			t.Fatalf("trial %d: degree mismatch", trial)
		}
		for d := range p {
			if fast[d] != p[d] || slow[d] != p[d] {
				t.Fatalf("trial %d: wrong polynomial recovered", trial)
			}
		}
	}
}

// TestDecodeFastIntoMatches confirms the scratch-reusing variant returns
// the same result as the allocating one and never aliases its result into
// a wrong answer across calls.
func TestDecodeFastIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	scratch := make(Poly, 8)
	for trial := 0; trial < 500; trial++ {
		f := 1 + rng.Intn(3)
		n := 3*f + 1
		p := RandomPoly(rng, f, Reduce(rng.Uint64()))
		xs := make([]Elem, n)
		ys := make([]Elem, n)
		for i := 0; i < n; i++ {
			xs[i] = Elem(i + 1)
			ys[i] = p.Eval(xs[i])
		}
		got, err := DecodeFastInto(scratch, xs, ys, f, f)
		want, err2 := DecodeFast(xs, ys, f, f)
		if err != nil || err2 != nil {
			t.Fatalf("trial %d: unexpected errors %v %v", trial, err, err2)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for d := range got {
			if got[d] != want[d] {
				t.Fatalf("trial %d: coeff %d mismatch", trial, d)
			}
		}
	}
}

// FuzzReduceMul cross-checks the branchless Mersenne reduction and
// multiplication against the division-based references on arbitrary
// 64-bit inputs (go test -fuzz=FuzzReduceMul ./internal/field).
func FuzzReduceMul(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(P, P)
	f.Add(P-1, P+1)
	f.Add(^uint64(0), uint64(1)<<31)
	f.Add(uint64(1)<<62, (uint64(1)<<31)-1)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		ra := Reduce(a)
		if ra != Elem(a%P) {
			t.Fatalf("Reduce(%d) = %d, want %d", a, ra, a%P)
		}
		rb := Reduce(b)
		if got, want := Mul(ra, rb), mulRef(ra, rb); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", ra, rb, got, want)
		}
		if !Mul(ra, rb).Valid() {
			t.Fatalf("Mul produced non-canonical value")
		}
	})
}
