//go:build !amd64

package field

// archKernels contributes no arch-specific kernels on this GOARCH; the
// portable 8-wide Go kernel is the dispatch default.
func archKernels() []kernel { return nil }
