package field

import (
	"math/rand"
	"testing"
)

type recordFinisher struct {
	order *[]int
}

func (r recordFinisher) FinishEval(tag int) { *r.order = append(*r.order, tag) }

// TestEvalBatchMatchesDirect stacks a mixed bag of job shapes — several
// tables, several widths, varying nR, enough volume to split into
// multiple stacked groups — and requires the flushed destinations to be
// bit-identical to immediate EvalGridT calls, with finishers invoked in
// enqueue order.
func TestEvalBatchMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type shape struct{ n, deg, w, nR int }
	shapes := []shape{
		{4, 1, 2, 16},
		{4, 1, 2, 8},
		{7, 2, 3, 49},
		{16, 5, 6, 256},
		{4, 1, 2, batchMaxCols + 5}, // singleton: exceeds the stacking cap
	}
	var batch EvalBatch
	var order []int
	var want [][]Elem
	var got [][]Elem
	jobs := 0
	for rep := 0; rep < 40; rep++ {
		s := shapes[rng.Intn(len(shapes))]
		me := MultiEvalFor(s.n, s.deg)
		coefT := make([]Elem, s.w*s.nR)
		for i := range coefT {
			coefT[i] = Elem(rng.Intn(int(P)))
		}
		ref := make([]Elem, s.n*s.nR)
		me.EvalGridT(ref, coefT, s.w, s.nR)
		dst := make([]Elem, s.n*s.nR)
		batch.Enqueue(me, dst, coefT, s.w, s.nR, recordFinisher{&order}, jobs)
		want = append(want, ref)
		got = append(got, dst)
		jobs++
	}
	if batch.Len() != jobs {
		t.Fatalf("Len() = %d, want %d", batch.Len(), jobs)
	}
	batch.Flush()
	if batch.Len() != 0 {
		t.Fatalf("Len() = %d after Flush, want 0", batch.Len())
	}
	for j := range want {
		for i := range want[j] {
			if got[j][i] != want[j][i] {
				t.Fatalf("job %d: dst[%d] = %d, want %d", j, i, got[j][i], want[j][i])
			}
		}
	}
	if len(order) != jobs {
		t.Fatalf("finishers ran %d times, want %d", len(order), jobs)
	}
	for i, tag := range order {
		if tag != i {
			t.Fatalf("finisher order[%d] = %d, want %d (enqueue order)", i, tag, i)
		}
	}
	// A second round on the same batch reuses the scratch without
	// interference from the first.
	me := MultiEvalFor(4, 1)
	coefT := make([]Elem, 2*16)
	for i := range coefT {
		coefT[i] = Elem(rng.Intn(int(P)))
	}
	ref := make([]Elem, 4*16)
	me.EvalGridT(ref, coefT, 2, 16)
	dst := make([]Elem, 4*16)
	batch.Enqueue(me, dst, coefT, 2, 16, nil, 0)
	batch.Flush()
	for i := range ref {
		if dst[i] != ref[i] {
			t.Fatalf("second flush: dst[%d] = %d, want %d", i, dst[i], ref[i])
		}
	}
}
