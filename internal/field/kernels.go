package field

import (
	"fmt"
	"os"
)

// SIMD-shaped evaluation kernels.
//
// evalColumns — dst[j] = sum_k coeffs[k] * tab[k*n+j] for j in [0, n) —
// is the shared inner kernel of every batched polynomial evaluation in
// the coin pipeline: the GVSS share round (per-coefficient batching over
// destinations), the echo round's n³ row cross-evaluations, and the
// recover round's candidate verification (SecretDecoder). tab holds one
// n-wide column per coefficient, so a kernel pass is a short
// matrix-vector product over GF(2^31−1) and the beat's cost is bounded
// by how many multiply-adds per cycle this file can sustain.
//
// The kernels share two Mersenne-31 lazy-reduction budgets (P = 2^31−1,
// fold(v) = (v&P) + (v>>31), congruent mod P for any uint64):
//
//   - pair budget: a folded accumulator is < 2^33 (fold of any v < 2^63),
//     and two products of canonical elements are ≤ 2(P−1)² = 2^63 − 2^34
//     + 8, so acc + two products < 2^63 and one fold per coefficient
//     PAIR keeps the chain exact.
//   - quad budget: fold accepts any uint64 and returns < 2^33 + 2^31, and
//     four products are ≤ 4(P−1)² = 2^64 − 2^35 + 16, so acc + four
//     products < 2^64 (no uint64 overflow) and one fold per coefficient
//     QUAD suffices. The wider window halves the fold overhead; the
//     final Reduce canonicalizes from the full uint64 range either way.
//
// Selection is a small dispatch layer: kernelTable lists every
// implementation (widest first), the GOARCH build files contribute an
// arch slot (an AVX2 assembly kernel on amd64 hardware that has it), and
// the 8-wide unrolled Go kernel is the portable wide default. Tests and
// benchmarks switch kernels with SetEvalKernel; SSBYZ_KERNEL overrides
// the default at process start so whole-stack benchmarks can pin one.
// All kernels compute the identical canonical result — exact modular
// arithmetic — which the differential tests and FuzzEvalColumns pin
// against the scalar reference.

// kernel is one selectable evalColumns implementation.
type kernel struct {
	name string
	fn   func(dst, coeffs, tab []Elem, n int)
}

// kernelTable lists the selectable kernels, widest first; entry 0 is the
// "auto" default. Populated at init from the arch slot plus the portable
// implementations.
var kernelTable []kernel

// activeKernel is the implementation evalColumns dispatches to. Written
// only by SetEvalKernel (and init); concurrent evaluators may read it
// freely as long as nobody switches kernels mid-run.
var activeKernel kernel

func init() {
	kernelTable = append(archKernels(),
		kernel{"8wide", evalColumns8},
		kernel{"quad8", evalColumnsQuad8},
		kernel{"4wide", evalColumns4},
		kernel{"ref", evalColumnsRef},
	)
	activeKernel = kernelTable[0]
	if name := os.Getenv("SSBYZ_KERNEL"); name != "" {
		if _, err := SetEvalKernel(name); err != nil {
			fmt.Fprintf(os.Stderr, "field: ignoring SSBYZ_KERNEL: %v\n", err)
		}
	}
}

// SetEvalKernel selects the batched-evaluation kernel by name ("auto"
// restores the arch default) and returns the previously active name.
// It is a test/benchmark hook: call it only while no evaluations run.
func SetEvalKernel(name string) (prev string, err error) {
	prev = activeKernel.name
	if name == "auto" {
		activeKernel = kernelTable[0]
		return prev, nil
	}
	for _, k := range kernelTable {
		if k.name == name {
			activeKernel = k
			return prev, nil
		}
	}
	return prev, fmt.Errorf("field: unknown eval kernel %q (have auto, %s)", name, kernelNames())
}

// EvalKernels returns the selectable kernel names, widest (the "auto"
// default) first. The set depends on GOARCH and runtime CPU features.
func EvalKernels() []string {
	names := make([]string, len(kernelTable))
	for i, k := range kernelTable {
		names[i] = k.name
	}
	return names
}

func kernelNames() string {
	s := ""
	for i, k := range kernelTable {
		if i > 0 {
			s += ", "
		}
		s += k.name
	}
	return s
}

// evalColumns dispatches to the active kernel. See the file comment for
// the contract; dst, coeffs and tab must not alias.
func evalColumns(dst, coeffs, tab []Elem, n int) {
	activeKernel.fn(dst, coeffs, tab, n)
}

// evalColumnsRef is the scalar reference implementation — one canonical
// MulAdd per term, no lazy accumulation, no unrolling. It is the oracle
// the wide kernels are differentially tested and fuzzed against, and is
// selectable ("ref") so whole-protocol runs can be replayed on it.
func evalColumnsRef(dst, coeffs, tab []Elem, n int) {
	for j := 0; j < n; j++ {
		var acc Elem
		for k := range coeffs {
			acc = MulAdd(acc, coeffs[k], tab[k*n+j])
		}
		dst[j] = acc
	}
}

// evalColumnsTail is the shared scalar remainder: points j..n−1 one at a
// time, coefficients in pairs under the pair budget. Every block kernel
// delegates its sub-block leftovers here, so the pair-fold logic exists
// once.
func evalColumnsTail(dst, coeffs, tab []Elem, n, j int) {
	for ; j < n; j++ {
		var acc uint64
		k := 0
		for ; k+2 <= len(coeffs); k += 2 {
			acc = fold(acc + uint64(coeffs[k])*uint64(tab[k*n+j]) + uint64(coeffs[k+1])*uint64(tab[(k+1)*n+j]))
		}
		if k < len(coeffs) {
			acc = fold(acc + uint64(coeffs[k])*uint64(tab[k*n+j]))
		}
		dst[j] = reduceWide(acc)
	}
}

// evalBlock4 computes one 4-point block at offset j under the pair
// budget: four independent accumulators whose fold chains overlap.
// Shared by the 4-wide kernel (its whole body) and the wide kernels
// (their 4-point leftover).
func evalBlock4(dst, coeffs, tab []Elem, n, j int) {
	var a0, a1, a2, a3 uint64
	k := 0
	for ; k+2 <= len(coeffs); k += 2 {
		c0, c1 := uint64(coeffs[k]), uint64(coeffs[k+1])
		t0 := tab[k*n+j : k*n+j+4 : k*n+j+4]
		t1 := tab[(k+1)*n+j : (k+1)*n+j+4 : (k+1)*n+j+4]
		a0 = fold(a0 + c0*uint64(t0[0]) + c1*uint64(t1[0]))
		a1 = fold(a1 + c0*uint64(t0[1]) + c1*uint64(t1[1]))
		a2 = fold(a2 + c0*uint64(t0[2]) + c1*uint64(t1[2]))
		a3 = fold(a3 + c0*uint64(t0[3]) + c1*uint64(t1[3]))
	}
	if k < len(coeffs) {
		c := uint64(coeffs[k])
		t0 := tab[k*n+j : k*n+j+4 : k*n+j+4]
		a0 = fold(a0 + c*uint64(t0[0]))
		a1 = fold(a1 + c*uint64(t0[1]))
		a2 = fold(a2 + c*uint64(t0[2]))
		a3 = fold(a3 + c*uint64(t0[3]))
	}
	dst[j] = reduceWide(a0)
	dst[j+1] = reduceWide(a1)
	dst[j+2] = reduceWide(a2)
	dst[j+3] = reduceWide(a3)
}

// evalColumns4 is the PR-2 4-wide kernel: blocks of four points, pair
// budget, shared scalar tail.
func evalColumns4(dst, coeffs, tab []Elem, n int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		evalBlock4(dst, coeffs, tab, n, j)
	}
	evalColumnsTail(dst, coeffs, tab, n, j)
}

// evalColumns8 is the 8-wide unrolled kernel: eight independent
// accumulators per block (their fold chains overlap across the CPU's
// multiplier pipeline), coefficients consumed in pairs with one lazy
// fold per pair (the pair budget above). It is the portable wide
// default.
func evalColumns8(dst, coeffs, tab []Elem, n int) {
	w := len(coeffs)
	j := 0
	for ; j+8 <= n; j += 8 {
		var a0, a1, a2, a3, a4, a5, a6, a7 uint64
		k := 0
		for ; k+2 <= w; k += 2 {
			c0, c1 := uint64(coeffs[k]), uint64(coeffs[k+1])
			t0 := tab[k*n+j : k*n+j+8 : k*n+j+8]
			t1 := tab[(k+1)*n+j : (k+1)*n+j+8 : (k+1)*n+j+8]
			a0 = fold(a0 + c0*uint64(t0[0]) + c1*uint64(t1[0]))
			a1 = fold(a1 + c0*uint64(t0[1]) + c1*uint64(t1[1]))
			a2 = fold(a2 + c0*uint64(t0[2]) + c1*uint64(t1[2]))
			a3 = fold(a3 + c0*uint64(t0[3]) + c1*uint64(t1[3]))
			a4 = fold(a4 + c0*uint64(t0[4]) + c1*uint64(t1[4]))
			a5 = fold(a5 + c0*uint64(t0[5]) + c1*uint64(t1[5]))
			a6 = fold(a6 + c0*uint64(t0[6]) + c1*uint64(t1[6]))
			a7 = fold(a7 + c0*uint64(t0[7]) + c1*uint64(t1[7]))
		}
		if k < w {
			c := uint64(coeffs[k])
			t0 := tab[k*n+j : k*n+j+8 : k*n+j+8]
			a0 = fold(a0 + c*uint64(t0[0]))
			a1 = fold(a1 + c*uint64(t0[1]))
			a2 = fold(a2 + c*uint64(t0[2]))
			a3 = fold(a3 + c*uint64(t0[3]))
			a4 = fold(a4 + c*uint64(t0[4]))
			a5 = fold(a5 + c*uint64(t0[5]))
			a6 = fold(a6 + c*uint64(t0[6]))
			a7 = fold(a7 + c*uint64(t0[7]))
		}
		dst[j] = reduceWide(a0)
		dst[j+1] = reduceWide(a1)
		dst[j+2] = reduceWide(a2)
		dst[j+3] = reduceWide(a3)
		dst[j+4] = reduceWide(a4)
		dst[j+5] = reduceWide(a5)
		dst[j+6] = reduceWide(a6)
		dst[j+7] = reduceWide(a7)
	}
	if j+4 <= n {
		evalBlock4(dst, coeffs, tab, n, j)
		j += 4
	}
	evalColumnsTail(dst, coeffs, tab, n, j)
}

// evalColumnsQuad8 is the generic-wide variant: the 8-wide layout with
// coefficients consumed in QUADS under the quad budget (one fold per
// four coefficients; the accumulator rides just below uint64 overflow).
// Written so a vectorizing backend — or the AVX2 slot, which uses the
// same schedule in ymm lanes — maps each accumulator to a SIMD lane.
func evalColumnsQuad8(dst, coeffs, tab []Elem, n int) {
	w := len(coeffs)
	j := 0
	for ; j+8 <= n; j += 8 {
		var a0, a1, a2, a3, a4, a5, a6, a7 uint64
		k := 0
		for ; k+4 <= w; k += 4 {
			c0, c1 := uint64(coeffs[k]), uint64(coeffs[k+1])
			c2, c3 := uint64(coeffs[k+2]), uint64(coeffs[k+3])
			t0 := tab[k*n+j : k*n+j+8 : k*n+j+8]
			t1 := tab[(k+1)*n+j : (k+1)*n+j+8 : (k+1)*n+j+8]
			t2 := tab[(k+2)*n+j : (k+2)*n+j+8 : (k+2)*n+j+8]
			t3 := tab[(k+3)*n+j : (k+3)*n+j+8 : (k+3)*n+j+8]
			a0 = fold(a0 + c0*uint64(t0[0]) + c1*uint64(t1[0]) + c2*uint64(t2[0]) + c3*uint64(t3[0]))
			a1 = fold(a1 + c0*uint64(t0[1]) + c1*uint64(t1[1]) + c2*uint64(t2[1]) + c3*uint64(t3[1]))
			a2 = fold(a2 + c0*uint64(t0[2]) + c1*uint64(t1[2]) + c2*uint64(t2[2]) + c3*uint64(t3[2]))
			a3 = fold(a3 + c0*uint64(t0[3]) + c1*uint64(t1[3]) + c2*uint64(t2[3]) + c3*uint64(t3[3]))
			a4 = fold(a4 + c0*uint64(t0[4]) + c1*uint64(t1[4]) + c2*uint64(t2[4]) + c3*uint64(t3[4]))
			a5 = fold(a5 + c0*uint64(t0[5]) + c1*uint64(t1[5]) + c2*uint64(t2[5]) + c3*uint64(t3[5]))
			a6 = fold(a6 + c0*uint64(t0[6]) + c1*uint64(t1[6]) + c2*uint64(t2[6]) + c3*uint64(t3[6]))
			a7 = fold(a7 + c0*uint64(t0[7]) + c1*uint64(t1[7]) + c2*uint64(t2[7]) + c3*uint64(t3[7]))
		}
		if k+2 <= w {
			c0, c1 := uint64(coeffs[k]), uint64(coeffs[k+1])
			t0 := tab[k*n+j : k*n+j+8 : k*n+j+8]
			t1 := tab[(k+1)*n+j : (k+1)*n+j+8 : (k+1)*n+j+8]
			a0 = fold(a0 + c0*uint64(t0[0]) + c1*uint64(t1[0]))
			a1 = fold(a1 + c0*uint64(t0[1]) + c1*uint64(t1[1]))
			a2 = fold(a2 + c0*uint64(t0[2]) + c1*uint64(t1[2]))
			a3 = fold(a3 + c0*uint64(t0[3]) + c1*uint64(t1[3]))
			a4 = fold(a4 + c0*uint64(t0[4]) + c1*uint64(t1[4]))
			a5 = fold(a5 + c0*uint64(t0[5]) + c1*uint64(t1[5]))
			a6 = fold(a6 + c0*uint64(t0[6]) + c1*uint64(t1[6]))
			a7 = fold(a7 + c0*uint64(t0[7]) + c1*uint64(t1[7]))
			k += 2
		}
		if k < w {
			c := uint64(coeffs[k])
			t0 := tab[k*n+j : k*n+j+8 : k*n+j+8]
			a0 = fold(a0 + c*uint64(t0[0]))
			a1 = fold(a1 + c*uint64(t0[1]))
			a2 = fold(a2 + c*uint64(t0[2]))
			a3 = fold(a3 + c*uint64(t0[3]))
			a4 = fold(a4 + c*uint64(t0[4]))
			a5 = fold(a5 + c*uint64(t0[5]))
			a6 = fold(a6 + c*uint64(t0[6]))
			a7 = fold(a7 + c*uint64(t0[7]))
		}
		dst[j] = reduceWide(a0)
		dst[j+1] = reduceWide(a1)
		dst[j+2] = reduceWide(a2)
		dst[j+3] = reduceWide(a3)
		dst[j+4] = reduceWide(a4)
		dst[j+5] = reduceWide(a5)
		dst[j+6] = reduceWide(a6)
		dst[j+7] = reduceWide(a7)
	}
	if j+4 <= n {
		evalBlock4(dst, coeffs, tab, n, j)
		j += 4
	}
	evalColumnsTail(dst, coeffs, tab, n, j)
}
