// Package sim is the deterministic lockstep simulation engine for the
// paper's synchronous model: a global beat system over a fully connected
// network in which every message sent at beat r arrives before beat r+1,
// up to f nodes are Byzantine (driven by an adversary.Adversary with
// rushing and private channels), and transient faults can scramble node
// state and inject phantom messages.
//
// All randomness derives from a single seed, so every run replays
// exactly.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/field"
	"ssbyzclock/internal/obs"
	"ssbyzclock/internal/pool"
	"ssbyzclock/internal/proto"
	"ssbyzclock/internal/wire"
)

// PoolMode selects how the engine pools beat-scoped message payloads
// (see package pool and proto.Message's lifetime contract).
type PoolMode uint8

const (
	// PoolAuto (the zero value) follows the SSBYZ_POOL environment
	// variable: pooled unless it says "off", poisoned when it says
	// "poison".
	PoolAuto PoolMode = iota
	// PoolOn pools payload buffers regardless of the environment.
	PoolOn
	// PoolOff allocates every payload fresh — the reference side of the
	// pooled-vs-unpooled differential harness, selectable forever.
	PoolOff
	// PoolPoison pools and scribbles recycled buffers so any illegally
	// retained reference fails loudly (tests).
	PoolPoison
)

// NodeFactory builds one node's protocol instance.
type NodeFactory func(env proto.Env) proto.Protocol

// Config describes one simulated cluster.
type Config struct {
	// N is the cluster size, F the number of Byzantine nodes.
	N, F int
	// Seed drives every random choice of the run (node randomness,
	// adversary randomness, scrambling).
	Seed int64
	// Faulty lists the adversary-controlled node ids. Empty means the
	// last F ids.
	Faulty []int
	// NewAdversary builds the adversary; nil means Passive (faulty nodes
	// follow the protocol).
	NewAdversary func(ctx *adversary.Context) adversary.Adversary
	// ScrambleStart overwrites every honest node's state with arbitrary
	// values before the first beat. Convergence experiments need it:
	// freshly constructed nodes are often already synchronized, whereas
	// the paper's claims quantify over arbitrary initial states.
	ScrambleStart bool
	// CountBytes additionally tallies the wire-encoded size of every
	// honest message into HonestBytes (slower; used by experiment E8).
	CountBytes bool
	// Workers is the number of goroutines the per-node-independent
	// phases (Compose, Deliver, byte accounting) fan out over. 0 selects
	// GOMAXPROCS; 1 runs fully inline. Every worker count replays
	// byte-identically from the same seed: work assignment is
	// deterministic, phase outputs go to per-node slots, and the
	// adversary, metrics and inbox merge run sequentially between the
	// parallel phases.
	Workers int
	// Pool selects payload pooling (default: the SSBYZ_POOL environment
	// variable). Pooled and unpooled runs replay byte-identically from
	// the same seed; pooling only changes where compose payloads'
	// memory comes from.
	Pool PoolMode
	// Pools supplies externally owned per-node payload pools (length N).
	// When set, the engine hands them to the node envs but does NOT
	// recycle them — the owner does, after the Deliver phase. The
	// multi-tenant driver uses this to point every tenant node at a
	// shared per-worker arena view; when nil the engine owns per-node
	// pools per the Pool mode.
	Pools []*pool.Node
	// Batches supplies per-node deferred evaluation batchers (length N,
	// entries may repeat). When set, node i's env carries Batches[i] and
	// compose paths enqueue their grid evaluations instead of running
	// them inline; the owner must flush every batcher after its compose
	// fan-out, before the exchange phase reads any payload. Nil (the
	// single-tenant default) selects immediate evaluation.
	Batches []*field.EvalBatch
	// Links injects transport faults (loss, duplication, whole-beat
	// delays, inbox reordering, partitions) into honest-destination
	// links, per the schedule's pure verdicts. Nil means an ideal
	// network. Three link classes are exempt, matching the model and the
	// networked runtime: self-links (a node's loopback is not a wire),
	// links into faulty nodes (the rushing adversary's taps are ideal
	// private channels — the intercept phase stays pre-fault), and
	// phantom injections (they model the network's own garbage, not
	// traffic). Message metrics still count faulted sends: they tally
	// what protocols emit, not what the wire loses.
	Links faultnet.Schedule
	// Metrics, when non-nil, attaches the engine to an observability
	// registry: beat, message, byte and pool-recycle counters accumulate
	// there as the engine steps (series names in PERF.md). Metrics never
	// feed back into behavior — an instrumented run is byte-identical to
	// a nil-registry run (the instrumented-vs-nil differential harness
	// pins it) — and the nil default costs one branch per beat. Engines
	// sharing a registry (tenants, restarted clusters) accumulate into
	// the same series.
	Metrics *obs.Registry
}

// engineMetrics is the engine's handle bundle plus the cumulative
// values already flushed, so each beat adds exact deltas even though
// several engines may share the registry's series.
type engineMetrics struct {
	beats, honestMsgs, faultyMsgs, honestBytes, poolRecycled *obs.Counter

	lastHonestMsgs, lastFaultyMsgs, lastHonestBytes uint64
}

// newEngineMetrics registers the engine series on r (nil r returns
// nil: the un-instrumented fast path).
func newEngineMetrics(r *obs.Registry) *engineMetrics {
	if r == nil {
		return nil
	}
	return &engineMetrics{
		beats:        r.Counter("ssbyz_engine_beats_total", "Lockstep beats executed by the engine."),
		honestMsgs:   r.Counter("ssbyz_engine_honest_msgs_total", "Messages emitted by honest nodes (broadcast counts as N)."),
		faultyMsgs:   r.Counter("ssbyz_engine_faulty_msgs_total", "Messages emitted by adversary-controlled nodes."),
		honestBytes:  r.Counter("ssbyz_engine_honest_bytes_total", "Wire-encoded bytes of honest traffic (requires Config.CountBytes)."),
		poolRecycled: r.Counter("ssbyz_engine_pool_recycled_total", "Beat-scoped payload buffers recycled to engine-owned pools."),
	}
}

// Engine simulates one cluster. Create with New, then call Step (or Run)
// and inspect node protocols via Node.
type Engine struct {
	cfg    Config
	nodes  []proto.Protocol  // all n, including faulty (adversary's copies)
	enders []proto.BeatEnder // nodes[i] as a BeatEnder, nil if not one
	faulty []int
	isBad  []bool
	adv    adversary.Adversary
	advCtx *adversary.Context
	beat   uint64
	sched  *Scheduler
	met    *engineMetrics

	// pools hold each node's beat-scoped payload buffers (nil slices when
	// pooling is off). Compose paths lease from their node's pool; the
	// engine recycles every lease after the Deliver phase, when the
	// beat's messages are dead per the proto.Message lifetime contract.
	// Pools are keyed by node — not by scheduler worker — so the reuse
	// pattern, hence every seeded run, is identical at every worker
	// count.
	pools []*pool.Node

	scrambleRng *rand.Rand
	phantoms    []proto.Recv

	// delayed holds fault-delayed deliveries keyed by due beat. Entries
	// carry proto.Clone copies (the pooled originals die at the sending
	// beat's recycle phase — this queue is the engine's side of the
	// message-lifetime ownership boundary) plus the ordering key the
	// networked runtime derives from frame headers, so both stacks slot
	// late messages into inboxes identically.
	delayed map[uint64][]delayedRecv

	// Per-beat scratch, reused across Steps so the lockstep loop is
	// allocation-free at steady state. Safe because Compose results are
	// consumed within the beat and Deliver must not retain its inbox
	// slice (see proto.Protocol).
	composed     [][]proto.Send
	visible      []adversary.Intercept
	visSlab      *visSlab
	inboxes      [][]proto.Recv
	ibxSlab      *inboxSlab
	defaultSends []adversary.Sends
	byteCounts   []uint64

	// Metrics, cumulative across beats. Broadcast counts as N messages.
	HonestMsgs uint64
	FaultyMsgs uint64
	// HonestBytes is the cumulative wire size of honest traffic; only
	// tallied when Config.CountBytes is set.
	HonestBytes uint64
}

// New builds an engine. It panics on malformed configs: configs are
// constructed by tests and benchmarks, not from external input.
func New(cfg Config, factory NodeFactory) *Engine {
	if cfg.N <= 0 || cfg.F < 0 || cfg.F >= cfg.N {
		panic(fmt.Sprintf("sim: bad config n=%d f=%d", cfg.N, cfg.F))
	}
	e := &Engine{cfg: cfg, met: newEngineMetrics(cfg.Metrics)}
	e.faulty = append([]int(nil), cfg.Faulty...)
	if len(e.faulty) == 0 {
		for i := cfg.N - cfg.F; i < cfg.N; i++ {
			e.faulty = append(e.faulty, i)
		}
	}
	if len(e.faulty) != cfg.F {
		panic(fmt.Sprintf("sim: %d faulty ids for f=%d", len(e.faulty), cfg.F))
	}
	e.isBad = make([]bool, cfg.N)
	for _, id := range e.faulty {
		if id < 0 || id >= cfg.N {
			panic(fmt.Sprintf("sim: faulty id %d out of range", id))
		}
		e.isBad[id] = true
	}
	pooled, poison := resolvePoolMode(cfg.Pool)
	var extPools []*pool.Node
	if cfg.Pools != nil {
		// Externally owned pools: use them for the envs, own (and
		// recycle) nothing. The owner decided the pooling question.
		if len(cfg.Pools) != cfg.N {
			panic(fmt.Sprintf("sim: %d external pools for n=%d", len(cfg.Pools), cfg.N))
		}
		extPools = cfg.Pools
	} else if pooled {
		e.pools = make([]*pool.Node, cfg.N)
		for i := range e.pools {
			e.pools[i] = &pool.Node{}
			e.pools[i].SetPoison(poison)
		}
	}
	if cfg.Batches != nil && len(cfg.Batches) != cfg.N {
		panic(fmt.Sprintf("sim: %d batchers for n=%d", len(cfg.Batches), cfg.N))
	}
	e.nodes = make([]proto.Protocol, cfg.N)
	for i := 0; i < cfg.N; i++ {
		env := proto.Env{N: cfg.N, F: cfg.F, ID: i, Rng: rngFor(cfg.Seed, uint64(i))}
		if extPools != nil {
			env.Pool = extPools[i]
		} else if pooled {
			env.Pool = e.pools[i]
		}
		if cfg.Batches != nil {
			env.Batch = cfg.Batches[i]
		}
		e.nodes[i] = factory(env)
	}
	e.enders = make([]proto.BeatEnder, cfg.N)
	for i, n := range e.nodes {
		e.enders[i], _ = n.(proto.BeatEnder)
	}
	e.composed = make([][]proto.Send, cfg.N)
	e.advCtx = &adversary.Context{
		N: cfg.N, F: cfg.F,
		Faulty: append([]int(nil), e.faulty...),
		Rng:    rngFor(cfg.Seed, 1<<32),
		FaultyNode: func(id int) proto.Protocol {
			if id >= 0 && id < cfg.N && e.isBad[id] {
				return e.nodes[id]
			}
			return nil
		},
	}
	if cfg.NewAdversary != nil {
		e.adv = cfg.NewAdversary(e.advCtx)
	} else {
		e.adv = adversary.Passive{}
	}
	e.sched = NewScheduler(cfg.Workers)
	e.scrambleRng = rngFor(cfg.Seed, 1<<33)
	if cfg.ScrambleStart {
		e.ScrambleHonest()
	}
	return e
}

// ResolvePoolMode reports how a PoolMode setting resolves against the
// SSBYZ_POOL environment: whether payloads are pooled at all and
// whether recycled buffers are poisoned. Exported for the networked
// runtime, which manages per-node pools of its own under the same
// setting.
func ResolvePoolMode(m PoolMode) (pooled, poison bool) { return resolvePoolMode(m) }

// resolvePoolMode maps a Config.Pool setting to (pooled, poison).
func resolvePoolMode(m PoolMode) (pooled, poison bool) {
	if m == PoolAuto {
		switch pool.EnvMode() {
		case pool.ModeOff:
			m = PoolOff
		case pool.ModePoison:
			m = PoolPoison
		default:
			m = PoolOn
		}
	}
	return m != PoolOff, m == PoolPoison
}

// NodeRng returns the random stream node id derives from seed — the
// exact stream New hands that node's proto.Env. Exported so the
// networked runtime (package noderuntime) builds protocol instances
// that replay this engine bit for bit.
func NodeRng(seed int64, id int) *rand.Rand { return rngFor(seed, uint64(id)) }

// AdversaryRng returns the adversary's stream for seed (see NodeRng).
func AdversaryRng(seed int64) *rand.Rand { return rngFor(seed, 1<<32) }

// ScrambleRng returns the state-scrambling stream for seed (see
// NodeRng).
func ScrambleRng(seed int64) *rand.Rand { return rngFor(seed, 1<<33) }

// Beat returns the next beat number to execute (the count of completed
// beats).
func (e *Engine) Beat() uint64 { return e.beat }

// N returns the cluster size.
func (e *Engine) N() int { return e.cfg.N }

// F returns the Byzantine bound.
func (e *Engine) F() int { return e.cfg.F }

// Node returns node i's protocol instance (faulty nodes return the
// adversary's honest-copy instance).
func (e *Engine) Node(i int) proto.Protocol { return e.nodes[i] }

// IsFaulty reports whether node i is adversary-controlled.
func (e *Engine) IsFaulty(i int) bool { return e.isBad[i] }

// HonestIDs returns the non-faulty node ids in ascending order.
func (e *Engine) HonestIDs() []int {
	out := make([]int, 0, e.cfg.N-e.cfg.F)
	for i := 0; i < e.cfg.N; i++ {
		if !e.isBad[i] {
			out = append(out, i)
		}
	}
	return out
}

// Step executes one beat as three explicit phases. Compose and Deliver
// are per-node independent (the paper's beat system exchanges all of a
// round's messages between them), so both fan out over the scheduler's
// workers; the rushing adversary, the metrics and the inbox merge run
// sequentially in between, which keeps any worker count byte-identical
// to the sequential engine. The per-beat slices live on the engine and
// are reused, so a steady-state beat allocates only what the protocols
// themselves allocate.
func (e *Engine) Step() {
	beat := e.beat
	e.composePhase(beat)
	e.ExchangePhase()
	e.deliverPhase(beat)
	e.FinishBeat()
}

// The phased stepping API below decomposes Step so an external driver
// — the multi-tenant engine — can interleave many engines' phases
// under ONE scheduler: fan ComposeNode over (tenant × node) work
// units, flush any deferred evaluation batchers, fan ExchangePhase
// over tenants, fan DeliverNode over units, recycle, then FinishBeat.
// Calling, for every i, ComposeNode(i), then ExchangePhase(), then
// DeliverNode(i) for every i, then FinishBeat() is byte-identical to
// one Step(): Step is exactly that sequence run on the engine's own
// scheduler.

// ComposeNode runs node i's compose for the current beat (the parallel
// part of the compose phase). Safe to call concurrently for distinct
// i; the caller must complete all N calls before ExchangePhase.
func (e *Engine) ComposeNode(i int) {
	e.composed[i] = e.nodes[i].Compose(e.beat)
}

// ExchangePhase runs the sequential middle of the beat: the rushing
// adversary's intercept, the deterministic inbox merge, and byte
// accounting when configured. All ComposeNode calls must have
// completed (and any deferred evaluation batchers been flushed) first.
func (e *Engine) ExchangePhase() {
	faultySends := e.interceptPhase(e.beat)
	e.mergeInboxes(e.beat, faultySends)
	if e.cfg.CountBytes {
		e.countBytes()
	}
}

// DeliverNode runs node i's deliver for the current beat (the parallel
// part of the deliver phase). Safe to call concurrently for distinct
// i, after ExchangePhase.
func (e *Engine) DeliverNode(i int) {
	e.nodes[i].Deliver(e.beat, e.inboxes[i])
}

// FinishBeat recycles the engine's own pools (externally supplied
// pools are the owner's to recycle, after all DeliverNode calls), fires
// each node's BeatEnder hook — every message of the beat is dead here,
// so protocols park their per-beat backing in process pools — and
// advances the beat counter. The engine's own references to the beat's
// sends are dropped alongside, so parked backing pins nothing.
func (e *Engine) FinishBeat() {
	e.recyclePhase()
	for i, be := range e.enders {
		e.composed[i] = nil
		if be != nil {
			be.EndBeat()
		}
	}
	e.releaseBeatScratch()
	e.beat++
	e.flushMetrics()
}

// flushMetrics adds this beat's metric deltas to the attached registry
// (no-op without one). It runs after the beat's phases, so a scrape
// between beats always reads a phase-consistent cut.
func (e *Engine) flushMetrics() {
	m := e.met
	if m == nil {
		return
	}
	m.beats.Inc()
	m.honestMsgs.Add(e.HonestMsgs - m.lastHonestMsgs)
	m.lastHonestMsgs = e.HonestMsgs
	m.faultyMsgs.Add(e.FaultyMsgs - m.lastFaultyMsgs)
	m.lastFaultyMsgs = e.FaultyMsgs
	m.honestBytes.Add(e.HonestBytes - m.lastHonestBytes)
	m.lastHonestBytes = e.HonestBytes
}

// recyclePhase returns every payload buffer leased during this beat's
// Compose to its node's pool. It runs strictly after the Deliver phase
// barrier — delivered messages may be read concurrently by several
// nodes' Deliver calls right up to that barrier — and fans out over the
// scheduler like the other per-node-independent phases (poison mode
// scribbles every buffer, which is real memory traffic at n=16).
func (e *Engine) recyclePhase() {
	if e.pools == nil {
		return
	}
	met := e.met
	e.sched.ForEach(len(e.pools), func(_ *WorkerScratch, i int) {
		if met != nil {
			met.poolRecycled.Add(uint64(e.pools[i].Leased()))
		}
		e.pools[i].Recycle()
	})
}

// composePhase: every node (honest and the faulty nodes' honest copies)
// composes its messages, in parallel across nodes.
func (e *Engine) composePhase(beat uint64) {
	composed := e.composed
	e.sched.ForEach(e.cfg.N, func(_ *WorkerScratch, i int) {
		composed[i] = e.nodes[i].Compose(beat)
	})
}

// interceptPhase: the rushing adversary sees honest traffic addressed to
// faulty nodes (private channels: honest-to-honest unicast is invisible)
// and decides the faulty nodes' actual messages. Adversaries are
// stateful and run on the engine's goroutine.
func (e *Engine) interceptPhase(beat uint64) []adversary.Sends {
	n := e.cfg.N
	visible := e.acquireVisible()
	for i := 0; i < n; i++ {
		if e.isBad[i] {
			continue
		}
		for _, s := range e.composed[i] {
			if s.To == proto.Broadcast {
				for _, bad := range e.faulty {
					visible = append(visible, adversary.Intercept{From: i, To: bad, Msg: s.Msg})
				}
			} else if s.To >= 0 && s.To < n && e.isBad[s.To] {
				visible = append(visible, adversary.Intercept{From: i, To: s.To, Msg: s.Msg})
			}
		}
	}
	e.visSlab.s = visible
	e.visible = visible
	if e.defaultSends == nil {
		e.defaultSends = make([]adversary.Sends, len(e.faulty))
	}
	defaultSends := e.defaultSends
	for k, id := range e.faulty {
		defaultSends[k] = adversary.Sends{From: id, Out: e.composed[id]}
	}
	return e.adv.Act(beat, defaultSends, visible)
}

// delayedRecv is one fault-delayed delivery in flight. The sort key
// (sendBeat, badFrom, from, seq) is the canonical late-arrival order
// both stacks share: the networked runtime reads the same fields out of
// frame headers.
type delayedRecv struct {
	to       int
	sendBeat uint64
	badFrom  bool
	from     int
	seq      uint32
	recv     proto.Recv
}

// mergeInboxes deterministically builds every node's inbox — phantoms,
// then fault-delayed messages due this beat (in canonical late-arrival
// order), then honest sends in node order, then the adversary's sends
// in returned order — applies the link-fault schedule, and tallies the
// message metrics. Malformed destinations (negative non-broadcast or
// >= n) are dropped without delivery or tally, whether honest or
// adversarial.
func (e *Engine) mergeInboxes(beat uint64, faultySends []adversary.Sends) {
	n := e.cfg.N
	inboxes := e.acquireInboxes(n)
	if len(e.phantoms) > 0 {
		for i := 0; i < n; i++ {
			if !e.isBad[i] {
				inboxes[i] = append(inboxes[i], e.phantoms...)
			}
		}
		e.phantoms = nil
	}
	if due := e.delayed[beat]; len(due) > 0 {
		sort.SliceStable(due, func(a, b int) bool {
			x, y := due[a], due[b]
			if x.sendBeat != y.sendBeat {
				return x.sendBeat < y.sendBeat
			}
			if x.badFrom != y.badFrom {
				return y.badFrom
			}
			// Honest seqs are per-sender, adversary seqs are a single
			// global sequence — exactly what frame headers carry.
			if !x.badFrom && x.from != y.from {
				return x.from < y.from
			}
			return x.seq < y.seq
		})
		for _, d := range due {
			inboxes[d.to] = append(inboxes[d.to], d.recv)
		}
		delete(e.delayed, beat)
	}
	deliver := func(from, to int, m proto.Message, seq uint32) {
		// The schedule rules on honest-destination, non-self links only;
		// see Config.Links for why the other classes are exempt.
		if e.cfg.Links != nil && from != to && !e.isBad[to] {
			v := e.cfg.Links.Verdict(beat, from, to)
			if v.Drop {
				return
			}
			if v.Delay > 0 {
				e.delayLink(beat, from, to, seq, m, v)
				return
			}
			inboxes[to] = append(inboxes[to], proto.Recv{From: from, Msg: m})
			if v.Dup {
				inboxes[to] = append(inboxes[to], proto.Recv{From: from, Msg: m})
			}
			return
		}
		inboxes[to] = append(inboxes[to], proto.Recv{From: from, Msg: m})
	}
	fanout := func(from int, s proto.Send, seq uint32, honest bool) {
		count := uint64(1)
		if s.To == proto.Broadcast {
			count = uint64(n)
			for to := 0; to < n; to++ {
				deliver(from, to, s.Msg, seq)
			}
		} else if s.To >= 0 && s.To < n {
			deliver(from, s.To, s.Msg, seq)
		} else {
			return
		}
		if honest {
			e.HonestMsgs += count
		} else {
			e.FaultyMsgs += count
		}
	}
	for i := 0; i < n; i++ {
		if e.isBad[i] {
			continue
		}
		for seq, s := range e.composed[i] {
			fanout(i, s, uint32(seq), true)
		}
	}
	// The adversary's sends number sequentially across all its nodes in
	// Act-return order — the same global sequence the networked
	// adversary host stamps into its frames.
	advSeq := uint32(0)
	for _, fs := range faultySends {
		if fs.From < 0 || fs.From >= n || !e.isBad[fs.From] {
			continue // identity cannot be forged (Definition 2.2)
		}
		for _, s := range fs.Out {
			fanout(fs.From, s, advSeq, false)
			advSeq++
		}
	}
	e.shuffleInboxes(beat)
}

// delayLink queues a fault-delayed delivery. The message is deep-copied
// (proto.Clone) because the original's pooled payload is recycled when
// this beat ends; unregistered message types (test doubles) are never
// pooled, so they are retained as-is.
func (e *Engine) delayLink(beat uint64, from, to int, seq uint32, m proto.Message, v faultnet.Verdict) {
	c, err := proto.Clone(m)
	if err != nil {
		c = m
	}
	if e.delayed == nil {
		e.delayed = make(map[uint64][]delayedRecv)
	}
	due := beat + v.Delay
	d := delayedRecv{
		to: to, sendBeat: beat, badFrom: e.isBad[from], from: from, seq: seq,
		recv: proto.Recv{From: from, Msg: c},
	}
	e.delayed[due] = append(e.delayed[due], d)
	if v.Dup {
		e.delayed[due] = append(e.delayed[due], d)
	}
}

// shuffleInboxes applies the schedule's per-node inbox permutations —
// the reordering fault. faultnet.ShuffleOrder is shared with the
// networked runtime, so both stacks permute identically.
func (e *Engine) shuffleInboxes(beat uint64) {
	if e.cfg.Links == nil {
		return
	}
	for i := 0; i < e.cfg.N; i++ {
		if e.isBad[i] || len(e.inboxes[i]) < 2 {
			continue
		}
		seed, ok := e.cfg.Links.Shuffle(beat, i)
		if !ok {
			continue
		}
		order := faultnet.ShuffleOrder(seed, len(e.inboxes[i]))
		tmp := make([]proto.Recv, len(order))
		for k, j := range order {
			tmp[k] = e.inboxes[i][j]
		}
		copy(e.inboxes[i], tmp)
	}
}

// countBytes tallies the wire size of delivered honest traffic into
// HonestBytes (experiment E8). Encoding is the expensive part, so it
// fans out over nodes with per-worker append buffers; the per-node
// subtotals are summed in index order so the cumulative metric is
// deterministic. Dropped sends (malformed destinations) are not
// tallied, matching mergeInboxes.
func (e *Engine) countBytes() {
	n := e.cfg.N
	if e.byteCounts == nil {
		e.byteCounts = make([]uint64, n)
	}
	counts := e.byteCounts
	e.sched.ForEach(n, func(ws *WorkerScratch, i int) {
		counts[i] = 0
		if e.isBad[i] {
			return
		}
		var sum uint64
		for _, s := range e.composed[i] {
			mult := uint64(1)
			if s.To == proto.Broadcast {
				mult = uint64(n)
			} else if s.To < 0 || s.To >= n {
				continue // dropped, never delivered
			}
			buf, err := wire.AppendTo(ws.Buf[:0], s.Msg)
			ws.Buf = buf[:0]
			if err != nil {
				continue // unregistered types count as size 0, as before
			}
			sum += mult * uint64(len(buf))
		}
		counts[i] = sum
	})
	for _, c := range counts {
		e.HonestBytes += c
	}
}

// deliverPhase: every node consumes its inbox, in parallel across nodes.
// Inboxes may share Message values (broadcasts); the proto.Protocol
// contract makes received messages immutable, so concurrent reads are
// safe.
func (e *Engine) deliverPhase(beat uint64) {
	inboxes := e.inboxes
	e.sched.ForEach(e.cfg.N, func(_ *WorkerScratch, i int) {
		e.nodes[i].Deliver(beat, inboxes[i])
	})
}

// Run executes the given number of beats.
func (e *Engine) Run(beats int) {
	for i := 0; i < beats; i++ {
		e.Step()
	}
}

// ScrambleHonest models a transient fault hitting every honest node:
// each node implementing proto.Scrambler gets its state overwritten with
// arbitrary values.
func (e *Engine) ScrambleHonest() {
	for i := 0; i < e.cfg.N; i++ {
		if e.isBad[i] {
			continue
		}
		if s, ok := e.nodes[i].(proto.Scrambler); ok {
			s.Scramble(e.scrambleRng)
		}
	}
}

// InjectPhantoms queues stale garbage messages: at the next Step, every
// honest node additionally receives each message attributed to a random
// sender. This models the network's own transient faults — messages left
// in buffers from before the network became coherent (Definition 2.2's
// "phantom" messages, delivered one last time). The messages are
// retained until the next Step, so callers must pass messages they own
// (hand-built values or proto.Clone copies), never live beat payloads.
func (e *Engine) InjectPhantoms(msgs []proto.Message) {
	for _, m := range msgs {
		e.phantoms = append(e.phantoms, proto.Recv{From: e.scrambleRng.Intn(e.cfg.N), Msg: m})
	}
}
