package sim

import (
	"runtime"
	"sync"
)

// Scheduler fans per-node-independent phase work over a fixed worker
// count. The paper's beat system makes Compose and Deliver independent
// across nodes within a phase (Section 2: all round-r messages are
// exchanged between the two phases), so the engine hands each phase to
// ForEach and synchronizes on its return.
//
// Determinism: work assignment is a pure function of (n, workers) —
// contiguous index blocks — and every per-index closure writes only to
// its own index's output slot, so a run is byte-identical for every
// worker count, including 1. Workers own a private WorkerScratch, giving
// phase closures allocation-free access to per-goroutine buffers.
type Scheduler struct {
	workers int
	scratch []*WorkerScratch
}

// WorkerScratch is the per-worker scratch arena handed to every phase
// closure. Buffers grow on demand and are reused across beats; they must
// not be retained beyond the closure invocation.
type WorkerScratch struct {
	// Buf is a reusable byte buffer (wire encoding during CountBytes
	// accounting).
	Buf []byte
}

// NewScheduler builds a scheduler with the given worker count; 0 (or any
// non-positive value) selects runtime.GOMAXPROCS(0).
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{workers: workers, scratch: make([]*WorkerScratch, workers)}
	for i := range s.scratch {
		s.scratch[i] = &WorkerScratch{}
	}
	return s
}

// Workers returns the configured worker count.
func (s *Scheduler) Workers() int { return s.workers }

// WorkerFor returns the worker index ForEach(n, ·) assigns item i to —
// the same contiguous-block arithmetic ForEach runs. Drivers that give
// each worker exclusive resources (the multi-tenant engine's pool
// arenas and evaluation batchers) use it to bind item i's resources to
// the goroutine that will actually process i, for every phase that
// ForEach fans out over the same n.
func (s *Scheduler) WorkerFor(n, i int) int {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		return 0
	}
	chunk := (n + w - 1) / w
	return i / chunk
}

// ForEach invokes fn(ws, i) for every i in [0, n) and returns when all
// invocations have finished. With one worker (or n <= 1) it runs inline
// on the calling goroutine — zero overhead and trivially sequential.
// Otherwise indices are split into contiguous blocks, one per worker;
// the caller's goroutine processes block 0 while the remaining blocks
// run on fresh goroutines. fn must confine its writes to per-index data
// (plus its own WorkerScratch) and must not panic across goroutines.
func (s *Scheduler) ForEach(n int, fn func(ws *WorkerScratch, i int)) {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		ws := s.scratch[0]
		for i := 0; i < n; i++ {
			fn(ws, i)
		}
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for k := 1; k < w; k++ {
		lo := k * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(ws *WorkerScratch, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(ws, i)
			}
		}(s.scratch[k], lo, hi)
	}
	ws := s.scratch[0]
	for i := 0; i < chunk; i++ {
		fn(ws, i)
	}
	wg.Wait()
}
