package sim_test

import (
	"reflect"
	"testing"

	"ssbyzclock/internal/adversary"
	"ssbyzclock/internal/coin"
	"ssbyzclock/internal/core"
	"ssbyzclock/internal/faultnet"
	"ssbyzclock/internal/sim"
)

// faultedConfig is a cluster under every fault kind at once.
func faultedConfig(seed int64, links faultnet.Schedule) sim.Config {
	return sim.Config{
		N: 7, F: 2, Seed: seed, ScrambleStart: true, Links: links,
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary {
			return &adversary.ClockSplitter{Ctx: ctx}
		},
	}
}

func clockTrajectory(cfg sim.Config, beats int) [][]uint64 {
	e := sim.New(cfg, core.NewClockSyncProtocol(16, coin.FMFactory{}))
	var out [][]uint64
	for i := 0; i < beats; i++ {
		e.Step()
		st := sim.ReadClocks(e)
		out = append(out, append([]uint64(nil), st.Values...))
	}
	return out
}

// TestFaultedRunReplaysExactly: link faults are part of the seeded
// determinism contract — an identical schedule replays bit for bit,
// under every worker count and pool mode difference the engine allows.
func TestFaultedRunReplaysExactly(t *testing.T) {
	mk := func() faultnet.Schedule {
		s, err := faultnet.Parse("loss20+dup10+delay10+reorder+partition")
		if err != nil {
			t.Fatal(err)
		}
		s.Seed = 77
		return s
	}
	a := clockTrajectory(faultedConfig(5, mk()), 48)
	b := clockTrajectory(faultedConfig(5, mk()), 48)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fault schedules diverged")
	}
	cfg := faultedConfig(5, mk())
	cfg.Workers = 4
	if c := clockTrajectory(cfg, 48); !reflect.DeepEqual(a, c) {
		t.Fatal("fault schedule replay depends on worker count")
	}
	other := mk().(*faultnet.HashSchedule)
	other.Seed = 78
	if d := clockTrajectory(faultedConfig(5, other), 48); reflect.DeepEqual(a, d) {
		t.Fatal("fault seed has no effect")
	}
}

// TestFaultsChangeTheRun: a faulted run must differ from the ideal
// network on the same seed (otherwise Links is dead code).
func TestFaultsChangeTheRun(t *testing.T) {
	sched := &faultnet.HashSchedule{Seed: 1, LossPct: 30}
	ideal := clockTrajectory(faultedConfig(9, nil), 32)
	lossy := clockTrajectory(faultedConfig(9, sched), 32)
	if reflect.DeepEqual(ideal, lossy) {
		t.Fatal("30% loss left the run untouched")
	}
}

// TestTotalLossStillTalliesAndExemptsAdversary: metrics count what
// protocols emit regardless of the wire, and links into faulty nodes
// are never faulted (the rushing adversary's taps are ideal).
func TestTotalLossStillTalliesAndExemptsAdversary(t *testing.T) {
	tap := &tapAdversary{}
	cfg := sim.Config{
		N: 4, F: 1, Seed: 3,
		Links: &faultnet.HashSchedule{LossPct: 100},
		NewAdversary: func(ctx *adversary.Context) adversary.Adversary { return tap },
	}
	e := sim.New(cfg, core.NewTwoClockProtocol(coin.FMFactory{}))
	e.Run(10)
	if e.HonestMsgs == 0 {
		t.Fatal("total loss erased the honest message tally")
	}
	if tap.seen == 0 {
		t.Fatal("total loss cut the adversary's intercept taps")
	}
}

// tapAdversary counts its intercept taps and otherwise behaves.
type tapAdversary struct{ seen int }

func (a *tapAdversary) Act(_ uint64, def []adversary.Sends, vis []adversary.Intercept) []adversary.Sends {
	a.seen += len(vis)
	return def
}

// TestDelayedDeliverySurvivesPoolRecycle: a delayed message outlives its
// beat, so the engine must deep-copy it off the pooled payload before
// the recycle phase. Poison mode makes any aliasing fail loudly.
func TestDelayedDeliverySurvivesPoolRecycle(t *testing.T) {
	sched := &faultnet.HashSchedule{Seed: 13, DelayPct: 60, MaxDelay: 3}
	cfg := faultedConfig(21, sched)
	cfg.Pool = sim.PoolPoison
	a := clockTrajectory(cfg, 48)
	cfg2 := faultedConfig(21, sched)
	cfg2.Pool = sim.PoolOff
	b := clockTrajectory(cfg2, 48)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("delayed deliveries read recycled pool memory (poison vs unpooled diverged)")
	}
}
