package sim

import "math/rand"

// splitmixSource is a compact rand.Source64: a SplitMix64 counter
// generator. The standard library's default source is a lagged-
// Fibonacci generator with ~4.9KB of state — invisible for one engine,
// but a multiplexed node hosts n+2 streams per tenant, which at T=1e5
// was tens of kilobytes of resident RNG state per tenant and the
// second-largest entry in the footprint profile. SplitMix64 carries 8
// bytes of state, passes the statistical batteries the protocol's
// quality measurements care about (the coin layer already leans on the
// same mixer for beacon derivation), and its streams for distinct salts
// are independent by construction of the seeding mix.
//
// Changing the source changes the concrete random streams, so seeds
// reproduce different (equally valid) executions than pre-compaction
// builds; all determinism contracts are within-build, and every
// differential harness derives both sides from rngFor.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// rngFor derives an independent deterministic stream from seed and
// salt: the (seed, salt) pair is avalanche-mixed into the stream's
// starting counter, so distinct salts give uncorrelated streams.
func rngFor(seed int64, salt uint64) *rand.Rand {
	x := uint64(seed) ^ salt
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return rand.New(&splitmixSource{state: x ^ (x >> 31)})
}
